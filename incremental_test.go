package repro

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/stringer"
	"repro/internal/workload"
)

// chainFingerprint is routeFingerprint over a bare router: every placed
// segment and via of every connection in canonical order.
func chainFingerprint(r *core.Router) string {
	var sb strings.Builder
	for i := range r.Conns {
		rt := r.RouteOf(i)
		fmt.Fprintf(&sb, "conn %d method %v\n", i, rt.Method)
		for _, ps := range rt.Segs {
			fmt.Fprintf(&sb, "  seg L%d ch%d %v\n", ps.Layer, ps.Seg.Channel(), ps.Seg.Interval())
		}
		for _, pv := range rt.Vias {
			fmt.Fprintf(&sb, "  via %v\n", pv.At)
		}
	}
	return sb.String()
}

// rectFree reports whether every grid point of r is free on every layer.
func rectFree(b *board.Board, r geom.Rect) bool {
	for li := 0; li < b.NumLayers(); li++ {
		for y := r.MinY; y <= r.MaxY; y++ {
			for x := r.MinX; x <= r.MaxX; x++ {
				if !b.FreeAt(li, geom.Pt(x, y)) {
					return false
				}
			}
		}
	}
	return true
}

// findFreeRect scans outward from the (fx, fy) fractional board
// position for a w×h rectangle that is metal-free on a pins-only board,
// so PlaceKeepout succeeds. Where the keepout lands shapes the test: a
// central one crosses the read region of most Lee floods and forces a
// wide re-route, a corner one disturbs only the routes that actually
// pass nearby.
func findFreeRect(b *board.Board, fx, fy float64, w, h int) (geom.Rect, bool) {
	bounds := b.Cfg.Bounds()
	cx := bounds.MinX + int(fx*float64(bounds.MaxX-bounds.MinX))
	cy := bounds.MinY + int(fy*float64(bounds.MaxY-bounds.MinY))
	try := func(dx, dy int) (geom.Rect, bool) {
		r := geom.R(cx+dx*2, cy+dy*2, cx+dx*2+w-1, cy+dy*2+h-1)
		return r, bounds.Contains(r) && rectFree(b, r)
	}
	for ring := 0; ring < 300; ring++ {
		for d := -ring; d <= ring; d++ {
			for _, cand := range [][2]int{{d, ring}, {d, -ring}, {ring, d}, {-ring, d}} {
				if r, ok := try(cand[0], cand[1]); ok {
					return r, true
				}
			}
		}
	}
	return geom.Rect{}, false
}

// incrementalFixture is the shared scenario: a routed Table 1 board, a
// three-part edit (keepout, net removal, connection re-add), the edited
// board builder, and the from-scratch oracle on the edited design.
type incrementalFixture struct {
	base      *experiment.Run
	edits     []core.Edit
	conns2    []core.Connection
	opts      core.Options
	newBoard  func(t *testing.T) *board.Board
	oracle    *core.Router
	oracleRes core.Result
}

// blockOnly restricts the fixture's edit to the keepout: no net is
// removed or added. A vacated route in a congested region legitimately
// changes its neighbors' best paths, and the divergence propagates — the
// from-scratch oracle diverges identically — so the expansion-budget
// test, whose point is the cost of a *non-disruptive* edit, reserves
// free space instead.
func buildIncrementalFixture(t *testing.T, spec workload.Spec, engine core.Engine, kx, ky float64, blockOnly bool) *incrementalFixture {
	t.Helper()
	d, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Engine = engine
	opts.RecordRegions = true

	base, err := experiment.RouteDesign(d, opts, stringer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Result.Metrics.Routed == 0 {
		t.Fatal("degenerate fixture: nothing routed")
	}

	// The keepout: a small rectangle near the requested position that is
	// metal-free on the *routed* base board. No existing route crossed
	// it, so it models the realistic edit — reserving space that is
	// actually available — rather than one that severs live routes;
	// searches that merely scanned the area still re-run.
	block, ok := findFreeRect(base.Board, kx, ky, 6, 6)
	if !ok {
		t.Fatal("no free rectangle for the keepout edit")
	}

	// The removed net: the net of the shortest non-trivial connection —
	// a local edit, so its vacated metal dirties a small rectangle
	// rather than a board-spanning bus corridor. The connection is
	// immediately re-added under a new net name, exercising both the
	// removal and addition paths on pins that certainly exist.
	conns := base.Strung.Conns
	var removed core.Connection
	found := false
	for _, c := range conns {
		if c.A == c.B {
			continue
		}
		if !found || c.A.ManhattanDist(c.B) < removed.A.ManhattanDist(removed.B) {
			removed, found = c, true
		}
	}
	if !found {
		t.Fatal("no non-trivial connection to remove")
	}
	edits := []core.Edit{
		{Op: core.EditBlock, Rect: block},
	}
	if !blockOnly {
		edits = append(edits,
			core.Edit{Op: core.EditRemoveNet, Net: removed.Net},
			core.Edit{Op: core.EditAddConn, Conn: core.Connection{
				A: removed.A, B: removed.B, Net: removed.Net + "_moved", Class: removed.Class,
			}})
	}

	newBoard := func(t *testing.T) *board.Board {
		t.Helper()
		b, err := board.New(d.GridConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := d.PlacePins(b); err != nil {
			t.Fatal(err)
		}
		if err := b.PlaceKeepout(block); err != nil {
			t.Fatal(err)
		}
		return b
	}

	// The oracle: the edited design routed from scratch.
	conns2 := core.EditConns(conns, edits)
	ob := newBoard(t)
	or, err := core.New(ob, conns2, opts)
	if err != nil {
		t.Fatal(err)
	}
	ores := or.Route()
	if ores.Aborted != core.AbortNone {
		t.Fatalf("oracle run aborted: %v (%v)", ores.Aborted, ores.Invariant)
	}
	if err := ob.Audit(); err != nil {
		t.Fatalf("oracle board fails audit: %v", err)
	}
	return &incrementalFixture{
		base: base, edits: edits, conns2: conns2, opts: opts,
		newBoard: newBoard, oracle: or, oracleRes: ores,
	}
}

// checkAgainstOracle demands the replayed board be indistinguishable
// from the from-scratch oracle: audit-clean, equal board fingerprint,
// and an identical segment/via chain for every connection.
func (fx *incrementalFixture) checkAgainstOracle(t *testing.T, b *board.Board, r *core.Router) {
	t.Helper()
	if err := b.Audit(); err != nil {
		t.Errorf("replayed board fails audit: %v", err)
	}
	if got, want := b.Fingerprint(), fx.oracle.B.Fingerprint(); got != want {
		t.Errorf("replayed board fingerprint %016x, want %016x (differs from from-scratch route)", got, want)
	}
	if got, want := chainFingerprint(r), chainFingerprint(fx.oracle); got != want {
		gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("route chains diverge at line %d:\n incremental: %s\n oracle:      %s", i, gl[i], wl[i])
			}
		}
		t.Fatalf("route chains differ in length: %d vs %d lines", len(gl), len(wl))
	}
}

// TestIncrementalRerouteEquivalence routes a scaled Table 1 board, edits
// the design (new keepout, one net removed, one connection re-added),
// and replays with Reroute. The replayed board must match a from-scratch
// route of the edited design exactly, while expanding at most 10% of the
// nodes the full route expands (ISSUE acceptance: an edit touching ≤5%
// of connections re-routes in ≤10% of the full-board expansions).
func TestIncrementalRerouteEquivalence(t *testing.T) {
	for _, engine := range []core.Engine{core.EngineClassic, core.EngineGoal} {
		t.Run(engine.String(), func(t *testing.T) {
			fx := buildIncrementalFixture(t, workload.Table1Specs()[3].Scale(3), engine, 0.5, 0.5, false)

			b2 := fx.newBoard(t)
			nr, err := fx.base.Router.Reroute(b2, fx.edits, nil)
			if err != nil {
				t.Fatal(err)
			}
			res := nr.Route()
			if res.Aborted != core.AbortNone {
				t.Fatalf("incremental run aborted: %v (%v)", res.Aborted, res.Invariant)
			}
			fx.checkAgainstOracle(t, b2, nr)

			adopted, rerouted := nr.IncStats()
			if adopted == 0 {
				t.Error("incremental run adopted no memos; every connection re-routed")
			}
			t.Logf("incremental: %d adopted, %d rerouted; expansions %d vs full %d",
				adopted, rerouted, res.Metrics.LeeExpansions, fx.oracleRes.Metrics.LeeExpansions)
		})
	}
}

// mazeCompoundDesign builds the expansion-budget scenario: a walled
// compound whose interior is a keepout maze — every net inside must
// snake through the teeth, so the board's node expansions concentrate
// in Lee floods whose read regions the wall *closes* — plus a sparse
// region outside the wall carrying cheap straight nets, one of which
// the test edits. The generalized Lee search reads entire maximal free
// intervals (the paper's across-the-board expansion), so on an open
// board nearly every flood observes nearly every channel and any edit
// legitimately perturbs it; the wall is what makes "the edit touches
// ≤5% of the connections" true by construction rather than by luck.
func mazeCompoundDesign() *netlist.Design {
	sip4 := netlist.SIP(4, false)
	sip16 := netlist.SIP(16, false)
	mk := func(name string, pkg *netlist.Package, atX, atY int) *netlist.Part {
		return &netlist.Part{Name: name, Pkg: pkg, At: geom.Pt(atX, atY), Tech: netlist.TTL}
	}
	a := mk("A", sip4, 7, 6)    // maze top row, grid y 18
	b := mk("B", sip4, 7, 34)   // maze bottom row, grid y 102
	c := mk("C", sip16, 40, 6)  // outside, grid y 18
	e := mk("E", sip16, 40, 10) // outside, grid y 30
	d := &netlist.Design{
		Name: "maze-compound", ViaCols: 60, ViaRows: 40, Layers: 2, Pitch: 3,
		Parts: []*netlist.Part{a, b, c, e},
		Keepouts: []geom.Rect{
			// The compound wall: interior grid [15..90]×[15..105].
			geom.R(12, 12, 93, 14), geom.R(12, 106, 93, 108),
			geom.R(12, 15, 14, 105), geom.R(91, 15, 93, 105),
			// Maze teeth, alternating left- and right-attached.
			geom.R(15, 30, 75, 32), geom.R(33, 48, 90, 50),
			geom.R(15, 66, 75, 68), geom.R(33, 84, 90, 86),
		},
	}
	pair := func(name string, pa *netlist.Part, pb *netlist.Part, pin int) *netlist.Net {
		return &netlist.Net{Name: name, Tech: netlist.TTL, Pins: []netlist.NetPin{
			{Ref: netlist.PinRef{Part: pa, Pin: pin}, Func: netlist.Output},
			{Ref: netlist.PinRef{Part: pb, Pin: pin}, Func: netlist.Input},
		}}
	}
	for i := 1; i <= 4; i++ {
		d.Nets = append(d.Nets, pair(fmt.Sprintf("MAZE%d", i), a, b, i))
	}
	for i := 1; i <= 16; i++ {
		d.Nets = append(d.Nets, pair(fmt.Sprintf("OUT%d", i), c, e, i))
	}
	return d
}

// TestIncrementalRerouteExpansionBudget pins the headline incremental
// economy (ISSUE acceptance: an edit touching ≤5% of the connections
// re-routes in ≤10% of the full-board node expansions) on the walled
// maze-compound design: removing and re-adding one of the twenty-one
// nets outside the wall must not re-run any of the maze floods inside,
// so the replay expands ≤10% of what the from-scratch route of the
// edited design expands — while still matching it exactly.
func TestIncrementalRerouteExpansionBudget(t *testing.T) {
	d := mazeCompoundDesign()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.RecordRegions = true

	base, err := experiment.RouteDesign(d, opts, stringer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Result.Metrics.Failed != 0 {
		t.Fatalf("base run failed %d connections", base.Result.Metrics.Failed)
	}
	if base.Result.Metrics.LeeExpansions < 200 {
		t.Fatalf("degenerate maze: only %d Lee expansions in the base run", base.Result.Metrics.LeeExpansions)
	}

	conns := base.Strung.Conns
	var edited core.Connection
	for _, c := range conns {
		if c.Net == "OUT6" {
			edited = c
			break
		}
	}
	edits := []core.Edit{
		{Op: core.EditRemoveNet, Net: "OUT6"},
		{Op: core.EditAddConn, Conn: core.Connection{
			A: edited.A, B: edited.B, Net: "OUT6_moved", Class: edited.Class,
		}},
	}
	if n := len(conns); 1*20 > n {
		t.Fatalf("edit touches 1 of %d connections, more than the 5%% premise", n)
	}

	newBoard := func() *board.Board {
		b, err := board.New(d.GridConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := d.PlacePins(b); err != nil {
			t.Fatal(err)
		}
		return b
	}

	conns2 := core.EditConns(conns, edits)
	ob := newBoard()
	or, err := core.New(ob, conns2, opts)
	if err != nil {
		t.Fatal(err)
	}
	ores := or.Route()
	if ores.Aborted != core.AbortNone {
		t.Fatalf("oracle run aborted: %v (%v)", ores.Aborted, ores.Invariant)
	}

	b2 := newBoard()
	nr, err := base.Router.Reroute(b2, edits, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := nr.Route()
	if res.Aborted != core.AbortNone {
		t.Fatalf("incremental run aborted: %v (%v)", res.Aborted, res.Invariant)
	}
	if err := b2.Audit(); err != nil {
		t.Errorf("replayed board fails audit: %v", err)
	}
	if got, want := b2.Fingerprint(), ob.Fingerprint(); got != want {
		t.Errorf("replayed board fingerprint %016x, want %016x (differs from from-scratch route)", got, want)
	}
	if got, want := chainFingerprint(nr), chainFingerprint(or); got != want {
		t.Error("replayed route chains differ from the from-scratch route")
	}

	adopted, rerouted := nr.IncStats()
	full := ores.Metrics.LeeExpansions
	t.Logf("incremental: %d adopted, %d rerouted; expansions %d vs full %d",
		adopted, rerouted, res.Metrics.LeeExpansions, full)
	if res.Metrics.LeeExpansions*10 > full {
		t.Errorf("incremental run expanded %d nodes, more than 10%% of the full route's %d",
			res.Metrics.LeeExpansions, full)
	}
}

// TestIncrementalRerouteParallel replays the same edit with Workers=4:
// the concurrent merge loop adopts memos at merge turns and must land on
// the same board as the sequential oracle.
func TestIncrementalRerouteParallel(t *testing.T) {
	fx := buildIncrementalFixture(t, workload.Table1Specs()[3].Scale(3), core.EngineClassic, 0.5, 0.5, false)

	b2 := fx.newBoard(t)
	nr, err := fx.base.Router.Reroute(b2, fx.edits, func(o *core.Options) { o.Workers = 4 })
	if err != nil {
		t.Fatal(err)
	}
	res := nr.Route()
	if res.Aborted != core.AbortNone {
		t.Fatalf("incremental run aborted: %v (%v)", res.Aborted, res.Invariant)
	}
	fx.checkAgainstOracle(t, b2, nr)
	if adopted, _ := nr.IncStats(); adopted == 0 {
		t.Error("parallel incremental run adopted no memos")
	}
}

// TestIncrementalRerouteResume cuts a checkpoint partway through the
// incremental replay and resumes it on a fresh edited board. Memos and
// the dirty set are process state, not checkpoint state, so the resumed
// run re-routes the remainder with real searches — landing on the same
// final board proves memo adoption is indistinguishable from searching.
func TestIncrementalRerouteResume(t *testing.T) {
	fx := buildIncrementalFixture(t, workload.Table1Specs()[3].Scale(3), core.EngineClassic, 0.5, 0.5, false)

	var mid *core.Checkpoint
	cut := len(fx.conns2) / 2
	seen := 0
	b2 := fx.newBoard(t)
	nr, err := fx.base.Router.Reroute(b2, fx.edits, func(o *core.Options) {
		o.CheckpointEvery = 1
		o.CheckpointSink = func(cp *core.Checkpoint) error {
			if seen++; seen == cut {
				mid = cp
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := nr.Route(); res.Aborted != core.AbortNone {
		t.Fatalf("incremental run aborted: %v (%v)", res.Aborted, res.Invariant)
	}
	fx.checkAgainstOracle(t, b2, nr)
	if mid == nil {
		t.Fatalf("replay finished before %d checkpoints were cut", cut)
	}

	b3 := fx.newBoard(t)
	opts := fx.opts
	rr, err := core.Resume(b3, fx.conns2, opts, mid)
	if err != nil {
		t.Fatal(err)
	}
	if res := rr.Route(); res.Aborted != core.AbortNone {
		t.Fatalf("resumed run aborted: %v (%v)", res.Aborted, res.Invariant)
	}
	fx.checkAgainstOracle(t, b3, rr)
}

// TestRerouteRejectsAlgorithmicTweaks pins the tweak guard: operational
// options may change on replay, algorithmic ones may not.
func TestRerouteRejectsAlgorithmicTweaks(t *testing.T) {
	fx := buildIncrementalFixture(t, workload.Table1Specs()[3].Scale(3), core.EngineClassic, 0.5, 0.5, false)
	b2 := fx.newBoard(t)
	if _, err := fx.base.Router.Reroute(b2, fx.edits, func(o *core.Options) {
		o.Engine = core.EngineGoal
	}); err == nil {
		t.Fatal("Reroute accepted a tweak that changed the search engine")
	}
	if _, err := fx.base.Router.Reroute(b2, fx.edits, func(o *core.Options) {
		o.Radius++
	}); err == nil {
		t.Fatal("Reroute accepted a tweak that changed the via radius")
	}
}

func boardFor(d *netlist.Design) (*board.Board, error) {
	b, err := board.New(d.GridConfig())
	if err != nil {
		return nil, err
	}
	if err := d.PlacePins(b); err != nil {
		return nil, err
	}
	return b, nil
}
