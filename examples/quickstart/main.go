// Quickstart: build a small board by hand, string its nets, route it, and
// verify the result — the minimal end-to-end tour of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/render"
	"repro/internal/stringer"
	"repro/internal/verify"
)

func main() {
	// A 3×2 inch board: two DIP24 logic parts and a resistor pack.
	dip := netlist.DIP(24, 3)
	sip := netlist.SIP(12, true)
	u1 := &netlist.Part{Name: "U1", Pkg: dip, At: geom.Pt(2, 2), Tech: netlist.ECL}
	u2 := &netlist.Part{Name: "U2", Pkg: dip, At: geom.Pt(16, 10), Tech: netlist.ECL}
	rt := &netlist.Part{Name: "RT1", Pkg: sip, At: geom.Pt(2, 16), Tech: netlist.ECL}

	d := &netlist.Design{
		Name: "quickstart", ViaCols: 30, ViaRows: 20, Layers: 4,
		Parts: []*netlist.Part{u1, u2, rt},
	}
	pin := func(p *netlist.Part, n int, f netlist.PinFunc) netlist.NetPin {
		return netlist.NetPin{Ref: netlist.PinRef{Part: p, Pin: n}, Func: f}
	}
	// Four ECL nets from U1 outputs to U2 inputs; the stringer will add
	// a terminating resistor to each.
	for i := 0; i < 4; i++ {
		d.Nets = append(d.Nets, &netlist.Net{
			Name: fmt.Sprintf("DATA%d", i), Tech: netlist.ECL,
			Pins: []netlist.NetPin{pin(u1, 1+i, netlist.Output), pin(u2, 5+i, netlist.Input)},
		})
	}
	if err := d.Validate(); err != nil {
		log.Fatal(err)
	}

	// Board setup: drill every part pin through all signal layers.
	b, err := board.New(d.GridConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := d.PlacePins(b); err != nil {
		log.Fatal(err)
	}

	// Stringing (Section 3): nets become ordered pin-to-pin connections.
	sr, err := stringer.String(d, stringer.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stringer: %d nets -> %d connections\n", len(d.Nets), len(sr.Conns))
	for net, term := range sr.TermAssignments {
		fmt.Printf("  net %s terminates at %s\n", net, term)
	}

	// Routing (Sections 5-8).
	r, err := core.New(b, sr.Conns, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res := r.Route()
	fmt.Println("router:", res)

	// Independent connectivity audit.
	if err := verify.Routed(b, r); err != nil {
		log.Fatal("verification failed: ", err)
	}
	fmt.Println("all connections verified electrically continuous")

	// Figure 3's routing-grid unit cell, and the routed board.
	for name, draw := range map[string]func(*os.File) error{
		"grid.svg":   func(f *os.File) error { return render.GridCell(f, 3, 3) },
		"routes.svg": func(f *os.File) error { return render.Routes(f, b, r) },
	} {
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := draw(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Println("wrote", name)
	}
}
