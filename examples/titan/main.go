// Titan: regenerate the paper's appendix figures for a synthetic stand-in
// of the Titan floating-point coprocessor board (coproc in Table 1):
// the placement (Figure 19), the routing problem (Figure 20), a routed
// signal layer (Figure 21) and a generated power plane (Figure 22).
//
//	go run ./examples/titan            # full-size board, ~seconds
//	go run ./examples/titan -scale 2   # quick reduced-size run
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/power"
	"repro/internal/render"
	"repro/internal/stats"
	"repro/internal/verify"
	"repro/internal/workload"
)

func main() {
	scale := flag.Int("scale", 1, "shrink the board by this factor")
	flag.Parse()

	spec, _ := workload.Table1Spec("coproc")
	spec = spec.Scale(*scale)

	start := time.Now()
	run, err := experiment.RouteSpec(spec, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(stats.Header())
	fmt.Println(run.Row().Format())
	fmt.Printf("total pipeline time %v\n", time.Since(start))

	if err := verify.Routed(run.Board, run.Router); err != nil {
		log.Fatal("verification failed: ", err)
	}

	emit := func(name string, draw func(*os.File) error) {
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := draw(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Println("wrote", name)
	}
	emit("fig19-placement.svg", func(f *os.File) error { return render.Placement(f, run.Design) })
	emit("fig20-problem.svg", func(f *os.File) error { return render.Problem(f, run.Board, run.Strung.Conns) })
	emit("fig21-layer0.svg", func(f *os.File) error { return render.SignalLayer(f, run.Board, 0) })

	plane, err := power.Generate(run.Board, run.Design, nil, "VEE", power.Options{})
	if err != nil {
		log.Fatal(err)
	}
	emit("fig22-vee-plane.svg", func(f *os.File) error { return render.Plane(f, run.Board, plane) })
	a, t, _ := plane.Counts()
	fmt.Printf("VEE plane: %d antipads, %d thermal reliefs\n", a, t)
}
