// Smt: surface-mount parts via dispersion patterns (Section 11). A
// fine-pitch QFP's pads contact only the top routing layer, breaking
// grr's every-pin-reaches-every-layer assumption; the smd package
// automates the "hand-designed dispersion pattern" the original flow
// used — a short top-layer trace from each pad to a dedicated via, which
// then serves as the routable endpoint. The routed board is checked with
// the DRC afterwards.
//
//	go run ./examples/smt
package main

import (
	"fmt"
	"log"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/smd"
	"repro/internal/verify"
)

func main() {
	cfg := grid.NewConfig(40, 30, 3, 4)
	b, err := board.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A 24-pad QFP at 2-grid (66 mil) pad pitch — finer than the 100-mil
	// via grid — in the middle-left of the board.
	qfp := smd.QFP("U1", geom.Pt(24, 36), 6, 2)
	disp, err := smd.Place(b, qfp, smd.Options{SearchRadius: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dispersed %d pads of %s to vias\n", len(disp.ViaOf), qfp.Name)

	// Through-hole logic on the right to wire the QFP to.
	var conns []core.Connection
	for i := 0; i < 8; i++ {
		pin := cfg.GridOf(geom.Pt(30, 4+3*i))
		if err := b.PlacePin(pin); err != nil {
			log.Fatal(err)
		}
		conns = append(conns, core.Connection{
			A: disp.ViaOf[i], B: pin, Net: fmt.Sprintf("SIG%d", i),
		})
	}

	r, err := core.New(b, conns, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res := r.Route()
	fmt.Println("router:", res)
	if !res.Complete() {
		log.Fatalf("unrouted: %v", res.FailedConns)
	}
	if err := verify.Routed(b, r); err != nil {
		log.Fatal("verification failed: ", err)
	}
	if violations := drc.Check(b, grid.DefaultProcess); len(violations) > 0 {
		for _, v := range violations {
			fmt.Println("drc:", v)
		}
		log.Fatal("design rules violated")
	}
	fmt.Println("routed from dispersed SMD pads; DRC clean")
}
