// Clocktree: the length-tuning scenario of Section 10.1 and Figure 16.
// A clock buffer drives eight pipeline registers; for the clock edges to
// arrive simultaneously, every branch must be tuned to the same
// propagation delay even though the registers sit at very different
// distances. Signals run ~6 in/ns (10% faster on the outer layers), so
// tuning works in hundreds of picoseconds.
//
//	go run ./examples/clocktree
package main

import (
	"fmt"
	"log"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/tuning"
	"repro/internal/verify"
)

func main() {
	cfg := grid.NewConfig(60, 40, 3, 4)
	b, err := board.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The buffer output near the board's left edge, registers scattered
	// across the board.
	root := cfg.GridOf(geom.Pt(4, 20))
	mustPin(b, root)
	leafVias := []geom.Point{
		{X: 12, Y: 18}, {X: 16, Y: 30}, {X: 22, Y: 6}, {X: 30, Y: 24},
		{X: 38, Y: 10}, {X: 44, Y: 34}, {X: 50, Y: 16}, {X: 56, Y: 26},
	}
	var conns []core.Connection
	for i, lv := range leafVias {
		g := cfg.GridOf(lv)
		mustPin(b, g)
		conns = append(conns, core.Connection{A: root, B: g, Net: fmt.Sprintf("CLK%d", i), Class: "ECL"})
	}

	r, err := core.New(b, conns, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if res := r.Route(); !res.Complete() {
		log.Fatalf("routing failed: %v", res.FailedConns)
	}

	tuner := tuning.New(b, r, tuning.DefaultSpeeds(4), tuning.DefaultOptions())
	fmt.Println("branch   before(ps)")
	worst := 0.0
	for i := range conns {
		d := tuner.DelayOf(i)
		fmt.Printf("CLK%d     %8.0f\n", i, d)
		if d > worst {
			worst = d
		}
	}

	// Tune every branch to the slowest branch plus margin.
	target := worst + 120
	fmt.Printf("\ntuning all branches to %.0f ps (slowest + margin)\n\n", target)
	for i := range conns {
		r.Conns[i].TargetDelayPs = target
	}
	results := tuner.TuneAll()

	fmt.Println("branch   after(ps)  rounds  tuned")
	maxSkew := 0.0
	for _, res := range results {
		fmt.Printf("CLK%d     %8.0f  %6d  %v\n", res.Conn, res.AchievedPs, res.Rounds, res.Tuned)
		if skew := res.AchievedPs - target; skew > maxSkew {
			maxSkew = skew
		} else if -skew > maxSkew {
			maxSkew = -skew
		}
		if !res.Tuned {
			log.Fatalf("branch CLK%d could not be tuned", res.Conn)
		}
	}
	fmt.Printf("\nworst skew from target: %.0f ps (tolerance %.0f ps)\n", maxSkew, tuner.Opts.TolerancePs)

	if err := verify.Routed(b, r); err != nil {
		log.Fatal("verification failed after tuning: ", err)
	}
	fmt.Println("all tuned branches verified electrically continuous")
}

func mustPin(b *board.Board, p geom.Point) {
	if err := b.PlacePin(p); err != nil {
		log.Fatal(err)
	}
}
