// Mixedtech: the ECL/TTL separation of Section 10.2. A board carries ECL
// logic on the left and TTL memory parts on the right; each signal layer
// is tesselated into technology tiles and the board is routed as two
// superimposed problems — TTL tiles are filled with blocking metal while
// ECL routes, and vice versa — so no ECL trace ever runs beside a noisy
// 5V TTL trace.
//
//	go run ./examples/mixedtech
package main

import (
	"fmt"
	"log"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/stringer"
	"repro/internal/tiles"
	"repro/internal/verify"
	"repro/internal/workload"
)

func main() {
	spec := workload.Spec{
		Name: "mixed", ViaCols: 70, ViaRows: 45, Layers: 4,
		TargetConns: 220, NetSizeMin: 2, NetSizeMax: 3,
		Locality: 24, MarginX: 2, MarginY: 2,
		TTLFraction: 0.4, // the left 40% of part columns are TTL
		Seed:        5,
	}
	d, err := workload.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}

	b, err := board.New(d.GridConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := d.PlacePins(b); err != nil {
		log.Fatal(err)
	}
	sr, err := stringer.String(d, stringer.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Tesselate: every layer splits at the technology boundary. The
	// workload generator assigns TTL to the leftmost part columns, so
	// the tile edge follows the rightmost TTL part.
	boundary := 0
	for _, p := range d.Parts {
		if p.Tech.String() == "TTL" {
			right := b.Cfg.GridOf(p.At.Add(geom.Pt(12, 0))).X
			if right > boundary {
				boundary = right
			}
		}
	}
	plan := &tiles.Plan{}
	for li := 0; li < b.NumLayers(); li++ {
		plan.Add(li, geom.R(0, 0, boundary, b.Cfg.Height-1), "TTL")
		plan.Add(li, geom.R(boundary+1, 0, b.Cfg.Width-1, b.Cfg.Height-1), "ECL")
	}
	fmt.Printf("tesselation: TTL tiles x<=%d, ECL tiles x>%d on all %d layers\n",
		boundary, boundary, b.NumLayers())

	passes, err := tiles.RouteMixed(b, sr.Conns, core.DefaultOptions(), plan)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range passes {
		m := p.Result.Metrics
		fmt.Printf("%-4s pass: %s\n", p.Class, p.Result)
		if !p.Result.Complete() {
			log.Fatalf("%s pass left %d connections unrouted", p.Class, m.Failed)
		}
		if err := verify.Routed(b, p.Router); err != nil {
			log.Fatal("verification failed: ", err)
		}
	}
	if err := b.Audit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("both technology passes complete; board audit clean")
}
