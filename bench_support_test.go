package repro

import (
	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tiles"
)

// mixedPlan tesselates every layer at the technology boundary of a
// workload-generated mixed board (TTL part columns on the left).
func mixedPlan(bd *board.Board, d *netlist.Design) *tiles.Plan {
	boundary := 0
	for _, p := range d.Parts {
		if p.Tech == netlist.TTL {
			right := bd.Cfg.GridOf(p.At.Add(geom.Pt(12, 0))).X
			if right > boundary {
				boundary = right
			}
		}
	}
	plan := &tiles.Plan{}
	for li := 0; li < bd.NumLayers(); li++ {
		plan.Add(li, geom.R(0, 0, boundary, bd.Cfg.Height-1), "TTL")
		plan.Add(li, geom.R(boundary+1, 0, bd.Cfg.Width-1, bd.Cfg.Height-1), "ECL")
	}
	return plan
}

func routeMixed(bd *board.Board, conns []core.Connection, plan *tiles.Plan) ([]tiles.PassResult, error) {
	return tiles.RouteMixed(bd, conns, core.DefaultOptions(), plan)
}
