package obs

import (
	"math"
	"sort"
	"sync"
)

// Latency instruments for the fail-slow machinery (DESIGN §14). The
// registry's Histogram is built for scraping — fixed buckets, no
// quantile extraction — but slow-node detection and hedge-delay
// derivation need two things a scrape series cannot give: a recent
// average that forgets the past at a controlled rate (EWMA) and an
// exact percentile over a bounded window of recent samples (Window).
// Both are standalone values, not registry series: they feed decisions
// (candidate demotion, hedge timers, admission estimates), and the
// decisions' outcomes are what the registry counts.

// EWMA is a thread-safe exponentially weighted moving average. The
// zero value is NOT ready; use NewEWMA. An EWMA with no samples yet
// reports 0 and Samples() == 0, so callers can require a minimum
// sample count before trusting it.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	value float64
	n     int64
}

// NewEWMA builds an EWMA with smoothing factor alpha in (0, 1]: each
// sample moves the average alpha of the way toward itself. Alpha
// outside the range is clamped to 0.2, a forgiving default that needs
// roughly a dozen samples to converge.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		alpha = 0.2
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one sample in. The first sample seeds the average
// directly — warming up from zero would underreport early latencies,
// which is exactly when a fail-slow detector must not be blind.
func (e *EWMA) Observe(v float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n == 0 {
		e.value = v
	} else {
		e.value += e.alpha * (v - e.value)
	}
	e.n++
}

// Value returns the current average (0 before any sample).
func (e *EWMA) Value() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.value
}

// Samples returns how many observations have been folded in.
func (e *EWMA) Samples() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// Window is a thread-safe fixed-capacity ring of recent samples with
// exact percentile extraction. Old samples fall out as new ones
// arrive, so a node that was slow yesterday does not poison today's
// hedge delay. The zero value is NOT ready; use NewWindow.
type Window struct {
	mu   sync.Mutex
	buf  []float64
	next int
	full bool
}

// NewWindow builds a window holding the most recent max samples
// (minimum 1).
func NewWindow(max int) *Window {
	if max < 1 {
		max = 1
	}
	return &Window{buf: make([]float64, 0, max)}
}

// Observe records one sample, evicting the oldest when full.
func (w *Window) Observe(v float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.buf) < cap(w.buf) {
		w.buf = append(w.buf, v)
		return
	}
	w.full = true
	w.buf[w.next] = v
	w.next = (w.next + 1) % cap(w.buf)
}

// Len returns the number of samples currently held.
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.buf)
}

// Percentile returns the p-th percentile (p in [0, 1]) of the held
// samples by nearest-rank over a sorted copy, or 0 when empty. p is
// clamped into range; p = 0.95 with 20 samples returns the 19th
// smallest.
func (w *Window) Percentile(p float64) float64 {
	w.mu.Lock()
	sorted := append([]float64(nil), w.buf...)
	w.mu.Unlock()
	if len(sorted) == 0 {
		return 0
	}
	sort.Float64s(sorted)
	if math.IsNaN(p) || p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}
