package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file is the read side of the exposition format: a line-by-line
// parser strict enough to catch a malformed emitter. The handler tests
// and the CI smoke job scrape a live grrd and run every line through
// ParseExposition; a bad escape, an undeclared family, or an
// unparsable value fails the build rather than the first real scrape.

// ParseExposition reads Prometheus text exposition and returns the
// value of every series, keyed by the full series name as written
// (e.g. `grr_jobs_retried_total{cause="panic"}`). It enforces the
// subset the Registry emits: every sample must follow a "# TYPE"
// declaration for its family, label values must be properly quoted,
// and values must parse as floats. Histogram _bucket/_sum/_count
// samples appear as ordinary series under their suffixed names.
func ParseExposition(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	types := make(map[string]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseTypeLine(line, types); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			continue
		}
		name, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := name
		if i := indexByte(fam, '{'); i >= 0 {
			fam = fam[:i]
		}
		if familyOf(fam, types) == "" {
			return nil, fmt.Errorf("line %d: sample %s has no # TYPE declaration", lineNo, fam)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, name)
		}
		out[name] = value
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseTypeLine handles "# TYPE name kind" and ignores other comments.
func parseTypeLine(line string, types map[string]string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[1] != "TYPE" {
		return nil // ordinary comment or HELP; tolerated
	}
	if len(fields) != 4 {
		return fmt.Errorf("malformed TYPE line %q", line)
	}
	name, kind := fields[2], fields[3]
	if !validMetricName(name) {
		return fmt.Errorf("TYPE line declares bad metric name %q", name)
	}
	switch kind {
	case "counter", "gauge", "histogram", "summary", "untyped":
	default:
		return fmt.Errorf("TYPE line declares unknown kind %q", kind)
	}
	if prev, ok := types[name]; ok && prev != kind {
		return fmt.Errorf("family %s re-declared as %s (was %s)", name, kind, prev)
	}
	types[name] = kind
	return nil
}

// familyOf resolves a sample name to its declared family, accounting
// for the histogram suffixes that share the base family's TYPE line.
func familyOf(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if k, ok := types[base]; ok && (k == "histogram" || k == "summary") {
				return base
			}
		}
	}
	return ""
}

// parseSample splits `name{labels} value` into the full series name
// and its float value, validating both halves.
func parseSample(line string) (name string, value float64, err error) {
	// The value starts after the last space outside any label quoting;
	// since quoted label values may contain spaces, scan from the end.
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return "", 0, fmt.Errorf("sample %q has no value", line)
	}
	name, val := line[:i], line[i+1:]
	value, err = strconv.ParseFloat(val, 64)
	if err != nil {
		return "", 0, fmt.Errorf("sample %q: bad value %q", line, val)
	}
	bare := name
	if j := indexByte(name, '{'); j >= 0 {
		if name[len(name)-1] != '}' {
			return "", 0, fmt.Errorf("sample %q: unterminated label set", line)
		}
		if _, err := parseLabels(name[j+1 : len(name)-1]); err != nil {
			return "", 0, fmt.Errorf("sample %q: %v", line, err)
		}
		bare = name[:j]
	}
	if !validMetricName(bare) {
		return "", 0, fmt.Errorf("sample %q: bad metric name %q", line, bare)
	}
	return name, value, nil
}

// parseLabels validates a brace-less `k="v",k2="v2"` label string and
// returns the pairs in order. Escapes inside values follow the
// exposition format: \\, \", \n.
func parseLabels(s string) ([][2]string, error) {
	var pairs [][2]string
	i := 0
	for i < len(s) {
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j == len(s) {
			return nil, fmt.Errorf("label %q missing '='", s[i:])
		}
		key := s[i:j]
		if !validLabelName(key) {
			return nil, fmt.Errorf("bad label name %q", key)
		}
		j++ // past '='
		if j >= len(s) || s[j] != '"' {
			return nil, fmt.Errorf("label %s value not quoted", key)
		}
		j++
		var val strings.Builder
		closed := false
		for j < len(s) {
			c := s[j]
			if c == '\\' {
				if j+1 >= len(s) {
					return nil, fmt.Errorf("label %s: dangling escape", key)
				}
				switch s[j+1] {
				case '\\', '"':
					val.WriteByte(s[j+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("label %s: bad escape \\%c", key, s[j+1])
				}
				j += 2
				continue
			}
			if c == '"' {
				closed = true
				j++
				break
			}
			val.WriteByte(c)
			j++
		}
		if !closed {
			return nil, fmt.Errorf("label %s value not closed", key)
		}
		pairs = append(pairs, [2]string{key, val.String()})
		if j < len(s) {
			if s[j] != ',' {
				return nil, fmt.Errorf("junk %q after label %s", s[j:], key)
			}
			j++
			if j == len(s) {
				return nil, fmt.Errorf("trailing ',' in label set %q", s)
			}
		}
		i = j
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("empty label set")
	}
	return pairs, nil
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
