package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Logger writes structured logfmt lines:
//
//	ts=2026-08-05T12:00:00.000Z event=job_running job=j42 attempt=2
//
// A nil *Logger is a valid no-op receiver, so instrumented code logs
// unconditionally and callers that don't care pass nothing. With
// derives a child logger whose lines all carry fixed fields (the
// daemon stamps every job-scoped line with job=ID this way); children
// share the parent's writer and mutex, so lines never interleave.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	now   func() time.Time
	fixed string // pre-rendered " k=v" pairs appended to every line
}

// NewLogger returns a logger writing logfmt lines to w. A nil w
// returns a nil logger (no-op).
func NewLogger(w io.Writer) *Logger {
	if w == nil {
		return nil
	}
	return &Logger{mu: &sync.Mutex{}, w: w, now: time.Now}
}

// With returns a child logger that appends the given key/value pairs
// to every line. Pairs are rendered once, here, not per line.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	var b strings.Builder
	b.WriteString(l.fixed)
	appendPairs(&b, kv)
	return &Logger{mu: l.mu, w: l.w, now: l.now, fixed: b.String()}
}

// Log writes one line: ts=..., event=<event>, the fixed fields, then
// the given key/value pairs in order. Values render with %v; values
// containing spaces or quotes are quoted.
func (l *Logger) Log(event string, kv ...any) {
	if l == nil {
		return
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(l.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" event=")
	b.WriteString(event)
	b.WriteString(l.fixed)
	appendPairs(&b, kv)
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

func appendPairs(b *strings.Builder, kv []any) {
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		fmt.Fprintf(b, "%v", kv[i])
		b.WriteByte('=')
		b.WriteString(logValue(kv[i+1]))
	}
	if len(kv)%2 != 0 {
		b.WriteString(" !ODD_KV=")
		b.WriteString(logValue(kv[len(kv)-1]))
	}
}

func logValue(v any) string {
	s := fmt.Sprintf("%v", v)
	if strings.ContainsAny(s, " \"=\n") {
		return fmt.Sprintf("%q", s)
	}
	if s == "" {
		return `""`
	}
	return s
}

// DumpTable writes the registry as an aligned human-readable table,
// series sorted by name — the grr -stats output. One line per series;
// histograms render as "count=N sum=S".
func (r *Registry) DumpTable(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(a, b int) bool { return fams[a].name < fams[b].name })
	for _, f := range fams {
		srs := append([]*series(nil), f.series...)
		sort.Slice(srs, func(a, b int) bool { return srs[a].labels < srs[b].labels })
		for _, s := range srs {
			switch f.kind {
			case "counter":
				fmt.Fprintf(w, "%-56s %d\n", seriesName(f.name, s.labels), s.c.Value())
			case "gauge":
				fmt.Fprintf(w, "%-56s %d\n", seriesName(f.name, s.labels), s.g.Value())
			case "histogram":
				fmt.Fprintf(w, "%-56s count=%d sum=%.6f\n",
					seriesName(f.name, s.labels), s.h.Count(), s.h.Sum())
			}
		}
	}
}
