// Package obs is the dependency-free observability layer shared by the
// router, the grrd job daemon, and the grr CLI: a concurrency-safe
// metrics registry (counters, gauges, fixed-bucket histograms) with a
// Prometheus-text-format exporter, plus a small structured logger
// (log.go) and an exposition parser/validator (expo.go) that the tests
// and the CI smoke job scrape with.
//
// Design constraints, in order:
//
//   - Observation is lock-free and allocation-free. A Counter or Gauge
//     is one atomic word; a Histogram is a fixed array of atomic
//     bucket counts plus a CAS-updated float sum. The router's Lee
//     flood observes through pre-resolved handles and never touches
//     the registry map, so instrumentation adds zero allocations to
//     the hot path (core's alloc-regression test pins this down).
//   - Registration is idempotent: asking for an existing series
//     returns the existing handle, so many routers (the parallel
//     Table 1 sweep, every grrd job attempt) can share one registry
//     and their counts aggregate.
//   - No client library. The Prometheus text exposition is a
//     line-oriented format a page of code can emit and parse; a
//     vendored client would be the only third-party dependency in the
//     repo and would bring its own registry model, default process
//     metrics, and allocation profile. DESIGN §10 has the longer
//     argument.
//
// Series are named in full at registration, labels inline:
//
//	reg.Counter("grr_jobs_done_total")
//	reg.Counter(`grr_jobs_retried_total{cause="panic"}`)
//	reg.Histogram(`grr_router_phase_seconds{phase="lee"}`, obs.DurationBuckets())
//
// All series of one family (the name before "{") must share one metric
// type; Registry panics on conflicts and malformed names at
// registration time, which the tests and the lint-metrics check reach.
package obs

import (
	"bytes"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing series. The zero value is
// usable, but handles normally come from Registry.Counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative n is a programmer error (counters are
// monotonic); it is not checked on the hot path, but the lint and the
// exposition tests will notice a counter that shrinks.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a series that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. Observe is
// lock-free and allocation-free: one atomic add on the bucket plus a
// CAS loop folding the value into the float sum.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf bucket implicit
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Uint64  // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DurationBuckets returns the default latency bucket bounds, in
// seconds: half a millisecond up to 30 s in a roughly 1-2.5-5
// progression. Fits both a single Lee flood and a whole routing job.
func DurationBuckets() []float64 {
	return []float64{
		0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 1, 2.5, 5, 10, 30,
	}
}

// series is one registered time series: a family member with a fixed
// label string and exactly one live metric.
type series struct {
	labels string // `k="v",k2="v2"` without braces; "" when unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	kind   string // "counter", "gauge", "histogram"
	series []*series
	byLbl  map[string]*series
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Registration takes the registry lock;
// observation through the returned handles never does.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter series for name (registering it on first
// use). Panics on a malformed name or a type conflict with an existing
// family — programmer errors the tests and lint-metrics catch.
func (r *Registry) Counter(name string) *Counter {
	s := r.register(name, "counter", nil)
	return s.c
}

// Gauge returns the gauge series for name, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	s := r.register(name, "gauge", nil)
	return s.g
}

// Histogram returns the histogram series for name, registering it with
// the given ascending bucket upper bounds on first use. A later call
// for the same series returns the existing histogram; the new bounds
// must match.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram " + name + " needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram " + name + " bounds must ascend")
		}
	}
	s := r.register(name, "histogram", bounds)
	return s.h
}

func (r *Registry) register(full, kind string, bounds []float64) *series {
	name, labels, err := splitSeries(full)
	if err != nil {
		panic("obs: " + err.Error())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kind, byLbl: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: %s registered as %s and %s", name, f.kind, kind))
	}
	if s := f.byLbl[labels]; s != nil {
		if kind == "histogram" && len(s.h.bounds) != len(bounds) {
			panic("obs: histogram " + full + " re-registered with different buckets")
		}
		return s
	}
	s := &series{labels: labels}
	switch kind {
	case "counter":
		s.c = &Counter{}
	case "gauge":
		s.g = &Gauge{}
	case "histogram":
		s.h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
	}
	f.byLbl[labels] = s
	f.series = append(f.series, s)
	return s
}

// splitSeries validates a full series name and splits it into the
// family name and the brace-less label string.
func splitSeries(full string) (name, labels string, err error) {
	name = full
	if i := indexByte(full, '{'); i >= 0 {
		if len(full) == 0 || full[len(full)-1] != '}' {
			return "", "", fmt.Errorf("series %q: unterminated label set", full)
		}
		name, labels = full[:i], full[i+1:len(full)-1]
	}
	if !validMetricName(name) {
		return "", "", fmt.Errorf("series %q: bad metric name %q", full, name)
	}
	if labels != "" {
		if _, err := parseLabels(labels); err != nil {
			return "", "", fmt.Errorf("series %q: %v", full, err)
		}
	}
	return name, labels, nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// WriteTo renders the registry as Prometheus text exposition: families
// sorted by name, one "# TYPE" line each, series sorted by label
// string. It implements io.WriterTo.
func (r *Registry) WriteTo(w interface{ Write([]byte) (int, error) }) (int64, error) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(a, b int) bool { return fams[a].name < fams[b].name })

	var buf bytes.Buffer
	for _, f := range fams {
		fmt.Fprintf(&buf, "# TYPE %s %s\n", f.name, f.kind)
		srs := append([]*series(nil), f.series...)
		sort.Slice(srs, func(a, b int) bool { return srs[a].labels < srs[b].labels })
		for _, s := range srs {
			switch f.kind {
			case "counter":
				fmt.Fprintf(&buf, "%s %d\n", seriesName(f.name, s.labels), s.c.Value())
			case "gauge":
				fmt.Fprintf(&buf, "%s %d\n", seriesName(f.name, s.labels), s.g.Value())
			case "histogram":
				writeHistogram(&buf, f.name, s)
			}
		}
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// writeHistogram emits the conventional _bucket/_sum/_count triplet
// with cumulative bucket counts.
func writeHistogram(buf *bytes.Buffer, name string, s *series) {
	h := s.h
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		le := strconv.FormatFloat(b, 'g', -1, 64)
		fmt.Fprintf(buf, "%s_bucket{%s} %d\n", name, joinLabels(s.labels, `le="`+le+`"`), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(buf, "%s_bucket{%s} %d\n", name, joinLabels(s.labels, `le="+Inf"`), cum)
	fmt.Fprintf(buf, "%s_sum%s %s\n", name, braced(s.labels), strconv.FormatFloat(h.Sum(), 'g', -1, 64))
	fmt.Fprintf(buf, "%s_count%s %d\n", name, braced(s.labels), cum)
}

func joinLabels(labels, le string) string {
	if labels == "" {
		return le
	}
	return labels + "," + le
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// ServeHTTP makes the registry a drop-in scrape handler: grrd mounts it
// at GET /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WriteTo(w)
}
