package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("grr_test_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Idempotent registration returns the same handle.
	if r.Counter("grr_test_total") != c {
		t.Fatalf("re-registration returned a different counter")
	}
	g := r.Gauge("grr_test_depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter(`grr_test_total{cause="panic"}`)
	b := r.Counter(`grr_test_total{cause="conflict"}`)
	if a == b {
		t.Fatalf("distinct label sets shared a counter")
	}
	a.Inc()
	if b.Value() != 0 {
		t.Fatalf("labeled counters not independent")
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("grr_test_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 56.05 {
		t.Fatalf("sum = %g, want 56.05", got)
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	vals, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition did not parse: %v\n%s", err, buf.String())
	}
	// Buckets are cumulative.
	want := map[string]float64{
		`grr_test_seconds_bucket{le="0.1"}`:  1,
		`grr_test_seconds_bucket{le="1"}`:    3,
		`grr_test_seconds_bucket{le="10"}`:   4,
		`grr_test_seconds_bucket{le="+Inf"}`: 5,
		`grr_test_seconds_count`:             5,
	}
	for k, v := range want {
		if vals[k] != v {
			t.Errorf("%s = %g, want %g\n%s", k, vals[k], v, buf.String())
		}
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"type conflict", func(r *Registry) {
			r.Counter("grr_x_total")
			r.Gauge("grr_x_total")
		}},
		{"bad metric name", func(r *Registry) { r.Counter("9grr") }},
		{"unterminated labels", func(r *Registry) { r.Counter(`grr_x{a="b"`) }},
		{"unquoted label value", func(r *Registry) { r.Counter(`grr_x{a=b}`) }},
		{"histogram bounds descend", func(r *Registry) {
			r.Histogram("grr_x_seconds", []float64{2, 1})
		}},
		{"histogram bounds changed", func(r *Registry) {
			r.Histogram("grr_x_seconds", []float64{1})
			r.Histogram("grr_x_seconds", []float64{1, 2})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic")
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

// TestRegistryConcurrent hammers registration, observation, and export
// from many goroutines; its value is running under -race (make check
// runs the suite with the race detector on).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("grr_conc_total")
			h := r.Histogram("grr_conc_seconds", DurationBuckets())
			ga := r.Gauge("grr_conc_depth")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-4)
				ga.Add(1)
				ga.Add(-1)
				if i%100 == 0 {
					// Concurrent registration of a fresh labeled series.
					r.Counter(`grr_conc_total{lane="` + string(rune('a'+i/100)) + `"}`).Inc()
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		var buf bytes.Buffer
		if _, err := r.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseExposition(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("concurrent exposition malformed: %v", err)
		}
		select {
		case <-done:
			if got := r.Counter("grr_conc_total").Value(); got != 8000 {
				t.Fatalf("lost updates: counter = %d, want 8000", got)
			}
			return
		default:
		}
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	bad := []string{
		"grr_x 1\n",                                     // no TYPE declaration
		"# TYPE grr_x counter\ngrr_x one\n",             // unparsable value
		"# TYPE grr_x counter\ngrr_x{a=\"b} 1\n",        // unterminated quote
		"# TYPE grr_x counter\ngrr_x 1\ngrr_x 2\n",      // duplicate series
		"# TYPE grr_x counter\n# TYPE grr_x gauge\n",    // family re-typed
		"# TYPE grr_x counter\ngrr_x{a=\"b\"extra} 1\n", // junk after label
	}
	for _, s := range bad {
		if _, err := ParseExposition(strings.NewReader(s)); err == nil {
			t.Errorf("accepted malformed exposition %q", s)
		}
	}
}

func TestParseExpositionEscapes(t *testing.T) {
	in := "# TYPE grr_x counter\n" +
		"grr_x{path=\"a\\\\b\\\"c\\nd\"} 3\n"
	vals, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 {
		t.Fatalf("got %d series, want 1", len(vals))
	}
	for _, v := range vals {
		if v != 3 {
			t.Fatalf("value = %g, want 3", v)
		}
	}
}

func TestLoggerFormatsAndNilSafety(t *testing.T) {
	var nilLogger *Logger
	nilLogger.Log("noop", "k", "v") // must not panic
	if nilLogger.With("job", "j1") != nil {
		t.Fatalf("nil logger With() should stay nil")
	}

	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.now = func() time.Time { return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC) }
	jl := l.With("job", "j42")
	jl.Log("job_running", "attempt", 2, "msg", "has space")
	got := buf.String()
	want := `ts=2026-08-05T12:00:00.000Z event=job_running job=j42 attempt=2 msg="has space"` + "\n"
	if got != want {
		t.Fatalf("line = %q, want %q", got, want)
	}
}

func TestLoggerConcurrentLinesDoNotInterleave(t *testing.T) {
	var buf lockedBuffer
	l := NewLogger(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			jl := l.With("worker", g)
			for i := 0; i < 200; i++ {
				jl.Log("tick", "i", i)
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 800 {
		t.Fatalf("got %d lines, want 800", len(lines))
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "ts=") || !strings.Contains(ln, " event=tick ") {
			t.Fatalf("mangled line %q", ln)
		}
	}
}

// lockedBuffer guards concurrent String() against the logger's writes;
// the logger serializes its own Write calls through its mutex.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestDumpTable(t *testing.T) {
	r := NewRegistry()
	r.Counter("grr_b_total").Add(2)
	r.Gauge("grr_a_depth").Set(1)
	r.Histogram("grr_c_seconds", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	r.DumpTable(&buf)
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	// Sorted by family name.
	if !strings.HasPrefix(lines[0], "grr_a_depth") ||
		!strings.HasPrefix(lines[1], "grr_b_total") ||
		!strings.HasPrefix(lines[2], "grr_c_seconds") {
		t.Fatalf("unsorted dump:\n%s", buf.String())
	}
	if !strings.Contains(lines[2], "count=1 sum=0.5") {
		t.Fatalf("histogram line = %q", lines[2])
	}
}
