package drc

import (
	"testing"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/layer"
	"repro/internal/stringer"
	"repro/internal/workload"
)

func cleanBoard(t *testing.T) *board.Board {
	t.Helper()
	b, err := board.New(grid.NewConfig(20, 20, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCleanRoutedBoardPasses(t *testing.T) {
	d, err := workload.Generate(workload.SmallSpec(21))
	if err != nil {
		t.Fatal(err)
	}
	b, err := board.New(d.GridConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PlacePins(b); err != nil {
		t.Fatal(err)
	}
	sr, err := stringer.String(d, stringer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.New(b, sr.Conns, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res := r.Route(); !res.Complete() {
		t.Fatal("routing failed")
	}
	if vs := Check(b, grid.DefaultProcess); len(vs) != 0 {
		t.Fatalf("clean board reported violations: %v", vs)
	}
}

func TestHoleSpacingOnGridAlwaysLegal(t *testing.T) {
	b := cleanBoard(t)
	// Fill every via site with a pin: worst-case on-grid hole density is
	// legal by construction.
	for vx := 0; vx < 20; vx++ {
		for vy := 0; vy < 20; vy++ {
			if err := b.PlacePin(b.Cfg.GridOf(geom.Pt(vx, vy))); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, v := range Check(b, grid.DefaultProcess) {
		if v.Kind == HoleSpacing {
			t.Fatalf("on-grid holes flagged: %v", v)
		}
	}
}

func TestOffGridHoleSpacingViolation(t *testing.T) {
	b := cleanBoard(t)
	if err := b.PlacePin(geom.Pt(9, 9)); err != nil {
		t.Fatal(err)
	}
	// An off-grid hole one cell away: 33 mils apart, far below the
	// 68-mil pad+space minimum.
	if err := b.PlacePinOffGrid(geom.Pt(10, 9)); err != nil {
		t.Fatal(err)
	}
	vs := Check(b, grid.DefaultProcess)
	found := false
	for _, v := range vs {
		if v.Kind == HoleSpacing {
			found = true
		}
	}
	if !found {
		t.Fatalf("adjacent holes not flagged: %v", vs)
	}
}

func TestOffGridHoleFarApartLegal(t *testing.T) {
	b := cleanBoard(t)
	if err := b.PlacePinOffGrid(geom.Pt(10, 10)); err != nil {
		t.Fatal(err)
	}
	if err := b.PlacePinOffGrid(geom.Pt(20, 20)); err != nil {
		t.Fatal(err)
	}
	for _, v := range Check(b, grid.DefaultProcess) {
		if v.Kind == HoleSpacing {
			t.Fatalf("distant off-grid holes flagged: %v", v)
		}
	}
}

func TestPadClearanceViolation(t *testing.T) {
	b := cleanBoard(t)
	h := geom.Pt(10, 10)
	if err := b.PlacePinOffGrid(h); err != nil {
		t.Fatal(err)
	}
	// Foreign trace through the cell right of the hole on layer 0
	// (vertical layer: channel = x).
	if b.AddSegment(0, 11, 8, 12, 42) == nil {
		t.Fatal("setup add failed")
	}
	vs := Check(b, grid.DefaultProcess)
	found := false
	for _, v := range vs {
		if v.Kind == PadClearance && v.At == geom.Pt(11, 10) {
			found = true
		}
	}
	if !found {
		t.Fatalf("foreign metal beside off-grid pad not flagged: %v", vs)
	}
}

func TestPadClearanceOwnMetalAllowed(t *testing.T) {
	b := cleanBoard(t)
	h := geom.Pt(10, 10)
	if err := b.PlacePinOffGrid(h); err != nil {
		t.Fatal(err)
	}
	// The hole's own connection metal beside it is the normal touch
	// pattern, not a violation. Off-grid pins are owned by PinOwner;
	// place PinOwner metal beside it.
	if b.AddSegment(0, 11, 10, 10, layer.PinOwner) == nil {
		t.Fatal("setup add failed")
	}
	for _, v := range Check(b, grid.DefaultProcess) {
		if v.Kind == PadClearance {
			t.Fatalf("own metal flagged: %v", v)
		}
	}
}

func TestStructureViolationSurfaces(t *testing.T) {
	b := cleanBoard(t)
	b.Vias.Inc(geom.Pt(3, 3)) // corrupt the via map directly
	vs := Check(b, grid.DefaultProcess)
	if len(vs) == 0 || vs[0].Kind != Structure {
		t.Fatalf("corruption not reported: %v", vs)
	}
	if vs[0].String() == "" {
		t.Error("empty violation string")
	}
}
