// Package drc is a design-rule checker for routed boards. The routing
// grid guarantees most of the Figure 1 manufacturing rules by
// construction — "the points of the grid are spaced so that parallel
// traces on adjacent grid lines are legal" — so the checker focuses on
// what the grid model does NOT guarantee:
//
//   - minimum center-to-center spacing between drilled holes, which only
//     holds automatically when every hole is on the via grid; the
//     Section 11 off-grid pin extension can violate it;
//   - pad clearance around off-grid holes: a 60-mil pad centered off the
//     via grid reaches within trace-spacing distance of the adjacent
//     grid cells, so foreign metal there is a short risk;
//   - structural sanity: metal within the board outline and via-map
//     consistency (delegated to board.Audit).
//
// The checker is read-only and reports every violation it finds.
package drc

import (
	"fmt"

	"repro/internal/board"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/layer"
)

// Kind classifies a violation.
type Kind string

const (
	HoleSpacing  Kind = "hole-spacing"  // drilled holes too close
	PadClearance Kind = "pad-clearance" // foreign metal inside a pad's clearance zone
	Structure    Kind = "structure"     // board bookkeeping inconsistency
)

// Violation is one detected rule breach.
type Violation struct {
	Kind   Kind
	At     geom.Point // grid units
	Layer  int        // -1 when the violation is not layer-specific
	Detail string
}

func (v Violation) String() string {
	if v.Layer >= 0 {
		return fmt.Sprintf("%s at %v layer %d: %s", v.Kind, v.At, v.Layer, v.Detail)
	}
	return fmt.Sprintf("%s at %v: %s", v.Kind, v.At, v.Detail)
}

// Check runs all rules against the board under the given process and
// returns every violation found (empty slice = clean).
func Check(b *board.Board, proc grid.Process) []Violation {
	var out []Violation
	out = append(out, checkStructure(b)...)
	holes := collectHoles(b)
	out = append(out, checkHoleSpacing(b, proc, holes)...)
	out = append(out, checkPadClearance(b, proc)...)
	return out
}

// collectHoles returns every drilled hole: via sites occupied on all
// layers, plus the off-grid holes the board tracks separately.
func collectHoles(b *board.Board) []geom.Point {
	var holes []geom.Point
	layers := b.NumLayers()
	for vy := 0; vy < b.Cfg.ViaRows(); vy++ {
		for vx := 0; vx < b.Cfg.ViaCols(); vx++ {
			if b.Vias.Count(geom.Pt(vx, vy)) == layers {
				holes = append(holes, b.Cfg.GridOf(geom.Pt(vx, vy)))
			}
		}
	}
	return append(holes, b.OffGridHoles...)
}

// gridMils returns the physical size of one grid step. The model
// approximates the paper's irregular 42/16 spacing (Figure 3) with a
// uniform pitch; rules are checked against the conservative uniform
// value.
func gridMils(b *board.Board) float64 { return 100.0 / float64(b.Cfg.Pitch) }

// checkHoleSpacing verifies that no two drilled holes sit closer than a
// pad diameter plus trace spacing, center to center. On-grid holes are
// a full via pitch apart by construction; the rule bites when off-grid
// holes appear.
func checkHoleSpacing(b *board.Board, proc grid.Process, holes []geom.Point) []Violation {
	minMils := float64(proc.ViaPadMils + proc.TraceSpaceMils)
	minCells := int(minMils/gridMils(b)) + 1 // strictly-closer threshold in grid units

	// Bucket holes by coarse cell so the pairwise check stays local.
	bucket := make(map[geom.Point][]geom.Point)
	key := func(p geom.Point) geom.Point { return geom.Pt(p.X/minCells, p.Y/minCells) }
	for _, h := range holes {
		bucket[key(h)] = append(bucket[key(h)], h)
	}
	var out []Violation
	for _, h := range holes {
		k := key(h)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, o := range bucket[geom.Pt(k.X+dx, k.Y+dy)] {
					if o == h || (o.X < h.X || (o.X == h.X && o.Y <= h.Y)) {
						continue // each unordered pair once
					}
					if h.ChebyshevDist(o) < minCells {
						out = append(out, Violation{
							Kind: HoleSpacing, At: h, Layer: -1,
							Detail: fmt.Sprintf("hole at %v within %d grid units (< %d required)", o, h.ChebyshevDist(o), minCells),
						})
					}
				}
			}
		}
	}
	return out
}

// checkPadClearance flags foreign metal in the clearance zone of
// off-grid holes. A pad centered between grid lines overlaps its
// 4-neighbor cells: pad radius 30 mils vs 33-mil cell pitch leaves less
// than the 8-mil spacing to a foreign trace through the neighbor cell.
func checkPadClearance(b *board.Board, proc grid.Process) []Violation {
	var out []Violation
	for _, h := range b.OffGridHoles {
		owners := make(map[layer.ConnID]bool)
		for li := range b.Layers {
			if o := b.OwnerAt(li, h); o != layer.NoConn {
				owners[o] = true
			}
		}
		for _, d := range [4]geom.Point{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}} {
			n := h.Add(d)
			if !n.In(b.Cfg.Bounds()) {
				continue
			}
			for li := range b.Layers {
				o := b.OwnerAt(li, n)
				if o == layer.NoConn || owners[o] {
					continue // free, or metal of the hole's own connection
				}
				out = append(out, Violation{
					Kind: PadClearance, At: n, Layer: li,
					Detail: fmt.Sprintf("metal of %d inside the pad clearance of the off-grid hole at %v", o, h),
				})
			}
		}
	}
	return out
}

// checkStructure wraps board.Audit as a violation.
func checkStructure(b *board.Board) []Violation {
	if err := b.Audit(); err != nil {
		return []Violation{{Kind: Structure, Layer: -1, Detail: err.Error()}}
	}
	return nil
}
