package photoplot

import (
	"strings"
	"testing"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/stringer"
	"repro/internal/workload"
)

func routed(t *testing.T) (*board.Board, *core.Router, *power.Plane) {
	t.Helper()
	d, err := workload.Generate(workload.SmallSpec(17))
	if err != nil {
		t.Fatal(err)
	}
	b, err := board.New(d.GridConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PlacePins(b); err != nil {
		t.Fatal(err)
	}
	sr, err := stringer.String(d, stringer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.New(b, sr.Conns, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res := r.Route(); !res.Complete() {
		t.Fatal("routing failed")
	}
	plane, err := power.Generate(b, d, nil, "VCC", power.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return b, r, plane
}

func TestWriteLayerStructure(t *testing.T) {
	b, r, _ := routed(t)
	var sb strings.Builder
	if err := WriteLayer(&sb, b, r, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"%FSLAX34Y34*%", "%MOIN*%", "%ADD10C,0.0080*%", "%ADD11C,0.0600*%", "D01*", "D02*", "D03*", "M02*"} {
		if !strings.Contains(out, want) {
			t.Errorf("layer plot missing %q", want)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "M02*") {
		t.Error("plot does not end with M02*")
	}
	// One pad flash per drilled hole.
	flashes := strings.Count(out, "D03*")
	if flashes != len(holes(b)) {
		t.Errorf("flashes = %d, holes = %d", flashes, len(holes(b)))
	}
}

func TestLayerDrawsOnlyOwnTraces(t *testing.T) {
	b, r, _ := routed(t)
	// Collect total draw command counts per layer; the sum over layers
	// must be positive and layers must differ from each other (V and H
	// content differ).
	counts := make([]int, b.NumLayers())
	for li := range b.Layers {
		var sb strings.Builder
		if err := WriteLayer(&sb, b, r, li); err != nil {
			t.Fatal(err)
		}
		counts[li] = strings.Count(sb.String(), "D01*")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Fatal("no draw commands on any layer")
	}
}

func TestWritePlaneStructure(t *testing.T) {
	b, _, plane := routed(t)
	var sb strings.Builder
	if err := WritePlane(&sb, b, plane); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"G36*", "G37*", "%LPC*%", "%LPD*%", "M02*"} {
		if !strings.Contains(out, want) {
			t.Errorf("plane plot missing %q", want)
		}
	}
	anti, thermal, clear := plane.Counts()
	// Clear flashes: one per feature; dark flashes: one per thermal.
	if got := strings.Count(out, "D03*"); got != anti+clear+2*thermal {
		t.Errorf("flashes = %d, want %d", got, anti+clear+2*thermal)
	}
}

func TestWriteDrill(t *testing.T) {
	b, _, _ := routed(t)
	var sb strings.Builder
	if err := WriteDrill(&sb, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "M48") || !strings.Contains(out, "T01C0.0370") || !strings.HasSuffix(strings.TrimSpace(out), "M30") {
		t.Errorf("drill file malformed:\n%s", out[:120])
	}
	hits := strings.Count(out, "X")
	if hits != len(holes(b)) {
		t.Errorf("drill hits = %d, holes = %d", hits, len(holes(b)))
	}
}

// TestCoordConversion checks the 3.4-format conversion: one via pitch
// (100 mils) is 1000 tenth-mils.
func TestCoordConversion(t *testing.T) {
	d, err := workload.Generate(workload.SmallSpec(17))
	if err != nil {
		t.Fatal(err)
	}
	b, err := board.New(d.GridConfig())
	if err != nil {
		t.Fatal(err)
	}
	pl := newPlot(nil, b)
	if got := pl.coord(3); got != 1000 { // 3 grid units = 1 via pitch = 0.1 in
		t.Errorf("coord(3) = %d, want 1000", got)
	}
	if got := pl.coord(0); got != 0 {
		t.Errorf("coord(0) = %d", got)
	}
}
