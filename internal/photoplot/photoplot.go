// Package photoplot writes routed layers and power planes as RS-274X
// (extended Gerber) photoplot files — the manufacturing output of the
// original flow ("The rectilinear grr output was postprocessed to
// generate this photoplot", Section 13). Signal layers emit each
// connection's smoothed polyline (diagonal corner cuts included, as in
// Figure 21) drawn with a trace aperture plus flashed pads at every
// drilled hole; power planes emit a dark copper region with clear
// (LPC) flashes for antipads, thermals and clearances.
package photoplot

import (
	"fmt"
	"io"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/post"
	"repro/internal/power"
)

// Apertures used by the writer (D-codes).
const (
	apTrace = 10 // round, trace width
	apPad   = 11 // round, via/pin pad
	apHole  = 12 // round, antipad clearance
)

type plot struct {
	w        io.Writer
	err      error
	gridMils float64
}

func newPlot(w io.Writer, b *board.Board) *plot {
	return &plot{w: w, gridMils: 100.0 / float64(b.Cfg.Pitch)}
}

func (p *plot) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// coord converts grid units to the 3.4 inch format (tenth-mil integers).
func (p *plot) coord(gridUnits float64) int {
	return int(gridUnits*p.gridMils*10 + 0.5)
}

func (p *plot) header(apertures map[int]float64) {
	p.printf("%%FSLAX34Y34*%%\n%%MOIN*%%\n%%LPD*%%\n")
	for _, d := range [3]int{apTrace, apPad, apHole} {
		if in, ok := apertures[d]; ok {
			p.printf("%%ADD%dC,%.4f*%%\n", d, in)
		}
	}
}

func (p *plot) footer() { p.printf("M02*\n") }

func (p *plot) moveTo(x, y float64) {
	p.printf("X%dY%dD02*\n", p.coord(x), p.coord(y))
}

func (p *plot) drawTo(x, y float64) {
	p.printf("X%dY%dD01*\n", p.coord(x), p.coord(y))
}

func (p *plot) flash(x, y float64) {
	p.printf("X%dY%dD03*\n", p.coord(x), p.coord(y))
}

func (p *plot) selectAperture(d int) { p.printf("D%d*\n", d) }

// WriteLayer emits one signal layer: smoothed connection polylines with
// the trace aperture and a flashed pad at every hole contacting the
// layer.
func WriteLayer(w io.Writer, b *board.Board, r *core.Router, li int) error {
	pl := newPlot(w, b)
	pl.header(map[int]float64{
		apTrace: 0.008, // the Figure 1 8-mil trace
		apPad:   0.060, // the Figure 1 60-mil pad
	})

	pl.selectAperture(apTrace)
	for i := range r.Conns {
		rt := r.RouteOf(i)
		if rt.Method == core.NotRouted || rt.Method == core.Trivial {
			continue
		}
		poly, err := post.Polyline(b, &r.Conns[i], rt)
		if err != nil {
			return err
		}
		for _, seg := range post.Smooth(poly, 0.5) {
			if seg.Layer != li || len(seg.Points) < 2 {
				continue
			}
			pl.moveTo(seg.Points[0].X, seg.Points[0].Y)
			for _, pt := range seg.Points[1:] {
				pl.drawTo(pt.X, pt.Y)
			}
		}
	}

	// Pads: every drilled hole contacts every layer.
	pl.selectAperture(apPad)
	for _, h := range holes(b) {
		pl.flash(float64(h.X), float64(h.Y))
	}
	pl.footer()
	return pl.err
}

// WritePlane emits a power plane: a dark copper region covering the board
// with clear flashes where metal is etched away (antipads, clearances)
// and clear rings for thermals (approximated as a clear flash followed by
// a dark pad core, leaving an annular gap the spokes would bridge).
func WritePlane(w io.Writer, b *board.Board, plane *power.Plane) error {
	pl := newPlot(w, b)
	pl.header(map[int]float64{apPad: 0.060, apHole: 0.080})

	// Solid copper: a G36/G37 region over the whole board.
	wdt, hgt := float64(b.Cfg.Width-1), float64(b.Cfg.Height-1)
	pl.printf("G36*\n")
	pl.moveTo(0, 0)
	pl.drawTo(wdt, 0)
	pl.drawTo(wdt, hgt)
	pl.drawTo(0, hgt)
	pl.drawTo(0, 0)
	pl.printf("G37*\n")

	// Etch the features in clear polarity.
	pl.printf("%%LPC*%%\n")
	for _, f := range plane.Features {
		switch f.Kind {
		case power.Antipad, power.Clearance:
			pl.selectAperture(apHole)
			pl.flash(float64(f.At.X), float64(f.At.Y))
		case power.Thermal:
			pl.selectAperture(apHole)
			pl.flash(float64(f.At.X), float64(f.At.Y))
		}
	}
	// Restore the pad core of each thermal in dark polarity: the annular
	// clear ring between core and plane is what limits heat flow.
	pl.printf("%%LPD*%%\n")
	pl.selectAperture(apPad)
	for _, f := range plane.Features {
		if f.Kind == power.Thermal {
			pl.flash(float64(f.At.X), float64(f.At.Y))
		}
	}
	pl.footer()
	return pl.err
}

// holes lists every drilled hole: fully-occupied via sites plus off-grid
// holes.
func holes(b *board.Board) []geom.Point {
	var out []geom.Point
	layers := b.NumLayers()
	for vy := 0; vy < b.Cfg.ViaRows(); vy++ {
		for vx := 0; vx < b.Cfg.ViaCols(); vx++ {
			if b.Vias.Count(geom.Pt(vx, vy)) == layers {
				out = append(out, b.Cfg.GridOf(geom.Pt(vx, vy)))
			}
		}
	}
	return append(out, b.OffGridHoles...)
}

// WriteDrill emits the board's drill file in a simple Excellon-like
// format: one tool (the Figure 1 37-mil drill) and one hit per hole.
func WriteDrill(w io.Writer, b *board.Board) error {
	pl := newPlot(w, b)
	pl.printf("M48\nINCH\nT01C0.0370\n%%\nT01\n")
	for _, h := range holes(b) {
		pl.printf("X%06dY%06d\n", pl.coord(float64(h.X)), pl.coord(float64(h.Y)))
	}
	pl.printf("M30\n")
	return pl.err
}
