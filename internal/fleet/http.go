package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/server"
)

// Handler exposes the coordinator over HTTP. The job surface mirrors a
// single grrd — clients talk to the fleet exactly as they would talk
// to one daemon — plus the fleet-control endpoints the agents use:
//
//	POST /jobs      submit; placed on a worker (202), served from the
//	                route cache (200), or shed with 429 + Retry-After
//	                when no node can take it
//	GET  /jobs      fleet-wide job list (proxied node views merged with
//	                the coordinator's own results and pending handoffs)
//	GET  /jobs/{id} one job, proxied to its current owner; terminal
//	                results are served from the coordinator even after
//	                the node that computed them is gone
//	POST /join      agent registration {node, addr, journal, epoch}
//	POST /heartbeat agent liveness + load {node, epoch, load}; 410 once
//	                the node is fenced — the zombie's cue that its jobs
//	                have moved on
//	GET  /nodes     the coordinator's fleet view
//	GET  /healthz   liveness
//	GET  /readyz    200 while at least one node is schedulable
//	GET  /metrics   fleet series (only when Config.Metrics is set)
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", c.handleSubmit)
	mux.HandleFunc("POST /jobs/batch", c.handleBatch)
	mux.HandleFunc("GET /jobs", c.handleList)
	mux.HandleFunc("GET /jobs/{id}", c.handleStatus)
	mux.HandleFunc("POST /join", c.handleJoin)
	mux.HandleFunc("POST /heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /hedge/claim", c.handleClaim)
	mux.HandleFunc("GET /nodes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Nodes())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if len(c.candidates(0)) == 0 {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no schedulable nodes"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	if c.cfg.Metrics != nil {
		mux.Handle("GET /metrics", c.cfg.Metrics)
	}
	return mux
}

// joinRequest is the agent registration / heartbeat payload.
type joinRequest struct {
	Node    string      `json:"node"`
	Addr    string      `json:"addr,omitempty"`
	Journal string      `json:"journal,omitempty"`
	Epoch   uint64      `json:"epoch"`
	Load    server.Load `json:"load"`
}

type httpError struct {
	Error string `json:"error"`
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad join: " + err.Error()})
		return
	}
	if err := c.Join(req.Node, req.Addr, req.Journal, req.Epoch, req.Load); err != nil {
		writeJSON(w, http.StatusConflict, httpError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "joined"})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad heartbeat: " + err.Error()})
		return
	}
	err := c.Heartbeat(req.Node, req.Epoch, req.Load)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	case errors.Is(err, errFencedNode):
		// 410, not 404: the node existed and is deliberately gone. The
		// zombie must not re-join with the same journal — and cannot, the
		// fenced EPOCH file refuses it at startup.
		writeJSON(w, http.StatusGone, httpError{Error: err.Error()})
	default:
		// Unknown node: the coordinator restarted and lost its view. 404
		// tells the agent to re-join, which rebuilds it.
		writeJSON(w, http.StatusNotFound, httpError{Error: err.Error()})
	}
}

// handleSubmit admits one job into the fleet: route-cache lookup
// first, then rendezvous-ordered forwarding with per-node transport
// retries. Admission refusals walk to the next candidate; when every
// node refuses, the strongest Retry-After seen propagates to the
// client — a shrunken pool looks exactly like one saturated grrd.
func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "reading body: " + err.Error()})
		return
	}
	var spec server.JobSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad job spec: " + err.Error()})
		return
	}
	p := c.placeJob(spec, body)
	if p.cacheHit {
		w.Header().Set("X-Grr-Cache", "hit")
		writeJSON(w, http.StatusOK, p.st)
		return
	}
	if p.accepted {
		w.Header().Set("X-Grr-Node", p.node)
		writeJSON(w, http.StatusAccepted, p.st)
		return
	}
	if p.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(p.retryAfter))
	}
	writeJSON(w, p.code, httpError{Error: p.errMsg})
}

// placement is the result of routing one submission through the cache,
// candidate ordering and forwarding pipeline.
type placement struct {
	st         server.Status
	node       string
	cacheHit   bool
	accepted   bool
	code       int    // refusal status code when not accepted
	retryAfter int    // seconds; 0 = no hint
	errMsg     string // refusal detail
}

// placeJob runs one submission through the fleet: route-cache lookup,
// then rendezvous-ordered forwarding with the per-hop deadline
// decrement of DESIGN §14 — before every forward the job's remaining
// budget is recomputed, so each node sees only what is actually left,
// and a budget that dies mid-walk stops the walk with 504. Used by both
// the single-submit and batch handlers.
func (c *Coordinator) placeJob(spec server.JobSpec, body []byte) placement {
	key := specKey(spec)
	if st, ok := c.cache.get(key); ok {
		c.obs.cacheHits.Inc()
		return placement{st: st, cacheHit: true}
	}
	c.obs.cacheMisses.Inc()

	// Pin the absolute deadline at admission: deadline_ms is relative,
	// and "now" must not drift while we walk candidates.
	var deadline time.Time
	if spec.DeadlineMs != nil {
		v := *spec.DeadlineMs
		if v <= 0 || v > server.MaxDeadlineMs {
			return placement{code: http.StatusBadRequest,
				errMsg: fmt.Sprintf("fleet: deadline_ms must be in (0, %d], got %d", server.MaxDeadlineMs, v)}
		}
		deadline = time.Now().Add(time.Duration(v) * time.Millisecond)
	}

	cands := c.candidates(key)
	retryAfter, sawDeadline := 0, false
	for _, n := range cands {
		fbody := body
		if !deadline.IsZero() {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				sawDeadline = true
				break // the budget died while we walked; stop burning it
			}
			ms := remaining.Milliseconds()
			if ms < 1 {
				ms = 1
			}
			hop := spec
			hop.DeadlineMs = &ms
			fbody, _ = json.Marshal(hop)
		}
		st, done, ra, code := c.forward(n, fbody)
		if done {
			c.mu.Lock()
			c.assign[st.ID] = assignment{node: n.Name, key: key, created: time.Now(), deadline: deadline}
			c.mu.Unlock()
			c.obs.forwarded.Inc()
			c.log.Log("fleet_forward", "job", st.ID, "node", n.Name)
			return placement{st: st, node: n.Name, accepted: true}
		}
		if code == http.StatusGatewayTimeout {
			sawDeadline = true
		}
		if ra > retryAfter {
			retryAfter = ra
		}
	}
	if retryAfter < 1 {
		retryAfter = 1
	}
	msg := "fleet: no node accepted the job"
	if len(cands) == 0 {
		msg = "fleet: no schedulable nodes"
	}
	if sawDeadline {
		// At least one refusal was the deadline itself (or the budget
		// expired mid-walk): the truthful answer is 504, not 429 — more
		// capacity would not have saved this job, more time would have.
		c.obs.deadlineRejects.Inc()
		return placement{code: http.StatusGatewayTimeout, retryAfter: retryAfter,
			errMsg: "fleet: deadline cannot be met by any node"}
	}
	c.obs.rejected.Inc()
	return placement{code: http.StatusTooManyRequests, retryAfter: retryAfter, errMsg: msg}
}

// handleBatch fans a BatchRequest out through the normal placement
// pipeline, one job at a time — each item inherits the batch envelope
// deadline unless it carries its own, and reports its own acceptance
// or refusal. 200 whenever the batch itself was well-formed.
func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req server.BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad batch: " + err.Error()})
		return
	}
	if len(req.Jobs) == 0 {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad batch: no jobs"})
		return
	}
	if len(req.Jobs) > server.MaxBatchJobs {
		writeJSON(w, http.StatusBadRequest,
			httpError{Error: fmt.Sprintf("bad batch: %d jobs exceeds the %d maximum", len(req.Jobs), server.MaxBatchJobs)})
		return
	}
	resp := server.BatchResponse{Jobs: make([]server.BatchResult, len(req.Jobs))}
	for i, spec := range req.Jobs {
		if spec.DeadlineMs == nil {
			spec.DeadlineMs = req.DeadlineMs
		}
		body, err := json.Marshal(spec)
		if err != nil {
			resp.Jobs[i] = server.BatchResult{Error: err.Error(), Code: http.StatusBadRequest}
			continue
		}
		p := c.placeJob(spec, body)
		if p.cacheHit || p.accepted {
			st := p.st
			resp.Jobs[i] = server.BatchResult{Status: &st}
			resp.Accepted++
			continue
		}
		resp.Jobs[i] = server.BatchResult{Error: p.errMsg, Code: p.code}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleClaim arbitrates a hedge commit claim from a worker node.
func (c *Coordinator) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req claimRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad claim: " + err.Error()})
		return
	}
	if req.Job == "" || req.Node == "" || req.Token == 0 {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad claim: job, node and token are required"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"win": c.Claim(req.Job, req.Node, req.Token)})
}

// forward delivers one submission to one node with bounded transport
// retries. It returns the accepted Status, or done=false with the
// node's Retry-After hint (seconds; 0 when none was offered) and the
// refusal status code. Every round-trip — success or failure — trains
// the node's forward-latency EWMA, the fail-slow signal the node
// cannot misreport.
func (c *Coordinator) forward(n *node, body []byte) (st server.Status, done bool, retryAfter, code int) {
	t0 := time.Now()
	defer func() {
		d := time.Since(t0)
		c.obs.forwardSeconds.Observe(d.Seconds())
		c.noteForward(n.Name, d)
	}()
	for attempt := 1; attempt <= c.cfg.ForwardAttempts; attempt++ {
		resp, err := c.client.Post(n.Addr+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			// Transport failure: the node may be partitioned or mid-restart.
			// Back off and retry — the same classifier shape grrd applies to
			// its own transient faults.
			c.obs.forwardRetries.Inc()
			c.cfg.Logf("fleet: forwarding to %s (attempt %d): %v", n.Name, attempt, err)
			if attempt < c.cfg.ForwardAttempts {
				c.sleep(c.backoff(attempt))
			}
			continue
		}
		func() {
			defer resp.Body.Close()
			code = resp.StatusCode
			switch resp.StatusCode {
			case http.StatusAccepted:
				done = json.NewDecoder(resp.Body).Decode(&st) == nil
			case http.StatusTooManyRequests, http.StatusServiceUnavailable,
				http.StatusInsufficientStorage, http.StatusGatewayTimeout:
				// Load sheds (429/503/507) and deadline refusals (504) come
				// with a Retry-After and mean "try the next candidate", not
				// "the spec is bad".
				if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
					retryAfter = s
				}
			default:
				// 400s: the spec is bad everywhere; no Retry-After, the loop
				// ends and the client gets the refusal.
				var e httpError
				_ = json.NewDecoder(resp.Body).Decode(&e)
				c.cfg.Logf("fleet: node %s refused job: %d %s", n.Name, resp.StatusCode, e.Error)
			}
		}()
		return st, done, retryAfter, code
	}
	return server.Status{}, false, 0, 0
}

// handleStatus serves one job's status: the coordinator's own results
// first (they outlive their node), then a pending-handoff synthesis,
// then a proxy to the current owner.
func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c.mu.Lock()
	if st, ok := c.results[id]; ok {
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, st)
		return
	}
	for _, rec := range c.pending {
		if rec.ID == id {
			st := rec.Status()
			c.mu.Unlock()
			// In the coordinator's hands between owners: report it as the
			// journal last saw it. It will be queued on a peer shortly.
			writeJSON(w, http.StatusOK, st)
			return
		}
	}
	a, ok := c.assign[id]
	var addr string
	if ok {
		if n, live := c.nodes[a.node]; live {
			addr = n.Addr
		}
	}
	c.mu.Unlock()

	if !ok {
		writeJSON(w, http.StatusNotFound, httpError{Error: "unknown job"})
		return
	}
	if addr == "" {
		writeJSON(w, http.StatusServiceUnavailable, httpError{Error: "job owner unavailable; failover in progress"})
		return
	}
	resp, err := c.client.Get(addr + "/jobs/" + id)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, httpError{Error: "job owner unreachable: " + err.Error()})
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resp.StatusCode)
		w.Write(b)
		return
	}
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		writeJSON(w, http.StatusBadGateway, httpError{Error: "bad status from owner: " + err.Error()})
		return
	}
	if st.State.Terminal() {
		c.noteTerminal(id, st)
	}
	writeJSON(w, http.StatusOK, st)
}

// handleList merges every alive node's job list with the
// coordinator's own results and pending records. A node's live view
// wins over the coordinator's stale copy; results of dead nodes appear
// only here.
func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	byID := make(map[string]server.Status)
	c.mu.Lock()
	for id, st := range c.results {
		byID[id] = st
	}
	for _, rec := range c.pending {
		byID[rec.ID] = rec.Status()
	}
	var addrs []string
	for _, n := range c.nodes {
		if n.alive() {
			addrs = append(addrs, n.Addr)
		}
	}
	c.mu.Unlock()

	for _, addr := range addrs {
		resp, err := c.client.Get(addr + "/jobs")
		if err != nil {
			continue
		}
		var sts []server.Status
		err = json.NewDecoder(resp.Body).Decode(&sts)
		resp.Body.Close()
		if err != nil {
			continue
		}
		for _, st := range sts {
			byID[st.ID] = st
		}
	}
	out := make([]server.Status, 0, len(byID))
	for _, st := range byID {
		out = append(out, st)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	writeJSON(w, http.StatusOK, out)
}

// stealFrom asks one node to relinquish a queued job; nil when it had
// nothing to give.
func (c *Coordinator) stealFrom(addr string) (*server.Job, error) {
	resp, err := c.client.Post(addr+"/fleet/steal", "", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return server.DecodeRecord(resp.Body)
	case http.StatusNoContent:
		return nil, nil
	default:
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("fleet: steal: %d %s", resp.StatusCode, bytes.TrimSpace(b))
	}
}

// handoff delivers a detached record to the best available node (by
// rendezvous over the record's ID) and returns the adopting node's
// name.
func (c *Coordinator) handoff(rec *server.Job) (string, error) {
	h := fnv.New64a()
	h.Write([]byte(rec.ID))
	cands := c.candidates(h.Sum64())
	if len(cands) == 0 {
		return "", fmt.Errorf("fleet: no schedulable node for %s", rec.ID)
	}
	var lastErr error
	for _, n := range cands {
		if _, err := c.handoffTo(n.Name, rec); err != nil {
			lastErr = err
			continue
		}
		return n.Name, nil
	}
	return "", lastErr
}

// handoffTo delivers a record to one named node. A 409 duplicate
// counts as success: the node already owns a live copy — exactly the
// state handoff was trying to reach.
func (c *Coordinator) handoffTo(nodeName string, rec *server.Job) (string, error) {
	c.mu.Lock()
	n, ok := c.nodes[nodeName]
	var addr string
	if ok {
		addr = n.Addr
	}
	c.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("fleet: unknown node %s", nodeName)
	}
	var buf bytes.Buffer
	if err := rec.EncodeRecord(&buf); err != nil {
		return "", fmt.Errorf("fleet: encoding %s: %w", rec.ID, err)
	}
	resp, err := c.client.Post(addr+"/fleet/handoff", "application/x-grrdjob", &buf)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted, http.StatusConflict:
		return nodeName, nil
	default:
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return "", fmt.Errorf("fleet: handoff of %s to %s: %d %s",
			rec.ID, nodeName, resp.StatusCode, bytes.TrimSpace(b))
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
