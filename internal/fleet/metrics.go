package fleet

import "repro/internal/obs"

// nodeStates are the health postures the per-state node gauge is
// pre-registered for (the server's health strings plus "fenced", which
// the coordinator assigns itself).
var nodeStates = [...]string{"ready", "saturated", "draining", "fenced", "disk_degraded"}

// fleetObs bundles the coordinator's registry handles; like serverObs
// it always exists — a nil Config.Metrics gets a private registry — so
// call sites never nil-check.
type fleetObs struct {
	reg *obs.Registry

	joined     *obs.Counter
	heartbeats *obs.Counter
	fenced     *obs.Counter

	forwarded      *obs.Counter
	forwardRetries *obs.Counter
	rejected       *obs.Counter
	forwardSeconds *obs.Histogram

	recoveredJobs *obs.Counter
	handoffs      *obs.Counter
	steals        *obs.Counter

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter

	pendingGauge *obs.Gauge
	nodesByState map[string]*obs.Gauge

	// Tail-latency contract (DESIGN §14): slow-posture detection,
	// hedged execution, and deadline-aware admission.
	slowNodes       *obs.Gauge
	slowTransitions *obs.Counter
	hedgeLaunched   *obs.Counter
	hedgeClaimWins  *obs.Counter
	hedgeClaimLoss  *obs.Counter
	hedgeCancels    *obs.Counter
	deadlineRejects *obs.Counter
}

func newFleetObs(reg *obs.Registry) *fleetObs {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	o := &fleetObs{
		reg:        reg,
		joined:     reg.Counter("grr_fleet_joins_total"),
		heartbeats: reg.Counter("grr_fleet_heartbeats_total"),
		fenced:     reg.Counter("grr_fleet_nodes_fenced_total"),

		forwarded:      reg.Counter("grr_fleet_jobs_forwarded_total"),
		forwardRetries: reg.Counter("grr_fleet_forward_retries_total"),
		rejected:       reg.Counter("grr_fleet_rejects_total"),
		forwardSeconds: reg.Histogram("grr_fleet_forward_seconds", obs.DurationBuckets()),

		recoveredJobs: reg.Counter("grr_fleet_jobs_recovered_total"),
		handoffs:      reg.Counter("grr_fleet_handoffs_total"),
		steals:        reg.Counter("grr_fleet_steals_total"),

		cacheHits:   reg.Counter("grr_fleet_cache_hits_total"),
		cacheMisses: reg.Counter("grr_fleet_cache_misses_total"),

		pendingGauge: reg.Gauge("grr_fleet_handoffs_pending"),
		nodesByState: make(map[string]*obs.Gauge, len(nodeStates)),

		slowNodes:       reg.Gauge("grr_fleet_slow_nodes"),
		slowTransitions: reg.Counter("grr_fleet_slow_transitions_total"),
		hedgeLaunched:   reg.Counter("grr_hedge_launched_total"),
		hedgeClaimWins:  reg.Counter(`grr_hedge_claims_total{result="win"}`),
		hedgeClaimLoss:  reg.Counter(`grr_hedge_claims_total{result="lose"}`),
		hedgeCancels:    reg.Counter("grr_hedge_cancels_total"),
		deadlineRejects: reg.Counter("grr_deadline_rejects_total"),
	}
	for _, st := range nodeStates {
		o.nodesByState[st] = reg.Gauge(`grr_fleet_nodes{state="` + st + `"}`)
	}
	return o
}
