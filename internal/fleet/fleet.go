// Package fleet turns a set of grrd daemons into one fault-tolerant
// routing service. A Coordinator fronts N worker nodes:
//
//   - jobs are admitted at the coordinator and placed by rendezvous
//     hashing over the live, unsaturated nodes, then forwarded with
//     bounded retry and jittered exponential backoff (the same shape
//     grrd uses for its own job retries);
//   - workers heartbeat their occupancy (the server.Load report); a
//     node that misses its deadline is FENCED — its journal epoch is
//     bumped with the fenced marker, so a zombie that was merely
//     partitioned can never journal (and thus never double-commit)
//     again — and its live jobs are recovered from the journal and
//     resumed on peers, bit-identically, from their last durable
//     checkpoint;
//   - an idle node pulls queued work from the most-loaded peer through
//     the coordinator (work stealing), keeping the fleet busy without
//     the workers knowing about each other;
//   - results of completed jobs are cached by design fingerprint, so
//     resubmitting an identical board costs nothing — the router is
//     deterministic, the previous answer IS the answer.
//
// Degradation is graceful in both directions: a worker that cannot
// reach the coordinator keeps serving its local queue (the agent just
// retries joining), and a coordinator whose pool has shrunk to nothing
// sheds load with 429 + Retry-After exactly like a single saturated
// grrd.
//
// The fencing model assumes the coordinator can reach each node's
// journal directory through the filesystem (shared storage or
// single-host supervision). What travels over HTTP is job records in
// the checksummed grrdjob format — a truncated transfer fails its
// checksum, it cannot admit half a job.
package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// Config parameterizes a Coordinator. Zero values get defaults from
// New.
type Config struct {
	// HeartbeatEvery is the cadence workers are expected to beat at
	// (default 1s). The coordinator also sweeps at this cadence.
	HeartbeatEvery time.Duration
	// HeartbeatMiss is how many consecutive beats a node may miss
	// before it is declared dead and fenced (default 3): the failover
	// deadline is HeartbeatEvery × HeartbeatMiss.
	HeartbeatMiss int
	// ForwardAttempts bounds transport-level retries per node while
	// forwarding one job (default 3). Admission refusals (429/503) are
	// not retried on the same node — the next candidate is tried.
	ForwardAttempts int
	// RetryBase and RetryMax shape the forwarding backoff exactly like
	// server.Config shapes job retries: attempt n waits roughly
	// RetryBase·2ⁿ⁻¹ jittered to [d/2, d), capped at RetryMax
	// (defaults 10ms, 2s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetrySeed seeds the backoff jitter (0 = fixed default seed; the
	// coordinator's jitter has no correctness role).
	RetrySeed int64
	// CacheSize bounds the design-fingerprint route cache (default 64
	// entries, FIFO; 0 uses the default, negative disables caching).
	CacheSize int
	// Transport is the HTTP transport for all coordinator→node calls —
	// the seam the chaos tests wire a faultinject.Partition into. Nil
	// uses http.DefaultTransport.
	Transport http.RoundTripper
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
	// Log, when set, receives structured fleet-lifecycle lines (join,
	// heartbeat-miss, fence, handoff, steal). Nil is fine.
	Log *obs.Logger
	// Metrics, when set, is the registry the coordinator publishes
	// fleet series into (and serves at /metrics).
	Metrics *obs.Registry
	// Hedge enables hedged execution (DESIGN §14): a job still running
	// after max(Hedge, p95 of recent completions) gets a second copy on
	// a healthy peer, first durable result wins. Zero or negative
	// disables hedging entirely — the fleet behaves byte-identically to
	// one without the hedging code.
	Hedge time.Duration
	// SlowFactor tunes fail-slow detection: a node latches the slow
	// posture when any of its latency signals (coordinator-observed
	// forward latency, reported queue-wait, reported journal-write
	// latency) exceeds SlowFactor × the fleet median for that signal,
	// and unlatches below half that threshold (default 3).
	SlowFactor float64
}

func (c *Config) setDefaults() {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.HeartbeatMiss <= 0 {
		c.HeartbeatMiss = 3
	}
	if c.ForwardAttempts <= 0 {
		c.ForwardAttempts = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 10 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Second
	}
	if c.RetrySeed == 0 {
		c.RetrySeed = 1
	}
	if c.CacheSize == 0 {
		c.CacheSize = 64
	}
	if c.SlowFactor <= 0 {
		c.SlowFactor = 3
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// NodeView is the exported name of the coordinator's per-worker state,
// as served by GET /nodes and returned by Nodes.
type NodeView = node

// node is the coordinator's view of one worker.
type node struct {
	Name    string      `json:"node"`
	Addr    string      `json:"addr"`    // base URL, e.g. http://127.0.0.1:8377
	Journal string      `json:"journal"` // journal dir (reachable via the filesystem)
	Epoch   uint64      `json:"epoch"`
	Load    server.Load `json:"load"`
	Fenced  bool        `json:"fenced"`
	// Slow is the latched fail-slow posture (DESIGN §14): the node is
	// alive and correct but dragging the fleet's tail, so placement
	// demotes it below every healthy ready node — demoted, not fenced,
	// because a slow answer is still an answer.
	Slow bool `json:"slow,omitempty"`

	lastBeat time.Time
	// fwd tracks coordinator-observed forward latency to this node
	// (seconds) — the one fail-slow signal the node cannot misreport.
	fwd *obs.EWMA
}

// alive reports whether the node is scheduling-eligible at all.
func (n *node) alive() bool { return !n.Fenced }

// assignment tracks where a job lives and, when known, its spec key
// for the route cache.
type assignment struct {
	node string
	key  uint64 // 0 = unknown (recovered jobs lose theirs; harmless)
	// created is when the coordinator placed the job (zero for jobs it
	// learned about through recovery); the hedge trigger and the
	// completion-latency window measure from it.
	created time.Time
	// deadline is the job's absolute deadline as of admission here;
	// zero = none. Hedging a job whose deadline passed is pointless.
	deadline time.Time
}

// Coordinator is the fleet's front door and failure detector.
type Coordinator struct {
	cfg    Config
	client *http.Client
	obs    *fleetObs
	log    *obs.Logger
	cache  *routeCache

	mu      sync.Mutex
	nodes   map[string]*node
	assign  map[string]assignment    // jobID → owner
	results map[string]server.Status // terminal statuses (survive node death)
	pending []*server.Job            // recovered/stolen records awaiting a home
	hedges  map[string]hedgeState    // jobID → outstanding hedge copy
	claims  map[string]claimant      // jobID → commit-claim winner (first claimant)
	// window holds recent job completion latencies (seconds); its p95
	// sets the hedge delay once enough samples exist.
	window *obs.Window
	rng    *rand.Rand

	stop   chan struct{}
	stopWg sync.WaitGroup
	once   sync.Once
}

// New builds a Coordinator and starts its sweep loop (failure
// detection, handoff delivery, work stealing). Close stops it.
func New(cfg Config) *Coordinator {
	cfg.setDefaults()
	c := &Coordinator{
		cfg:     cfg,
		client:  &http.Client{Transport: cfg.Transport, Timeout: 30 * time.Second},
		obs:     newFleetObs(cfg.Metrics),
		log:     cfg.Log,
		cache:   newRouteCache(cfg.CacheSize),
		nodes:   make(map[string]*node),
		assign:  make(map[string]assignment),
		results: make(map[string]server.Status),
		hedges:  make(map[string]hedgeState),
		claims:  make(map[string]claimant),
		window:  obs.NewWindow(256),
		rng:     rand.New(rand.NewSource(cfg.RetrySeed)),
		stop:    make(chan struct{}),
	}
	c.stopWg.Add(1)
	go c.sweepLoop()
	return c
}

// Close stops the sweep loop. In-flight HTTP handlers finish on their
// own; the coordinator serves until its listener closes.
func (c *Coordinator) Close() {
	c.once.Do(func() { close(c.stop) })
	c.stopWg.Wait()
}

// Join registers (or re-registers) a worker. A known name is replaced
// wholesale: a rejoin is a new incarnation — the server itself refuses
// to start on a fenced journal dir, so an incarnation that made it far
// enough to join is journaling somewhere legitimate.
func (c *Coordinator) Join(name, addr, journal string, epoch uint64, load server.Load) error {
	if name == "" || addr == "" {
		return errors.New("fleet: join needs node name and addr")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.nodes[name]; ok && old.alive() && old.Journal != journal {
		// Two live daemons claiming one name but different journals is
		// operator error, and accepting the second would let them shadow
		// each other's jobs. First writer wins.
		return fmt.Errorf("fleet: node %s already joined with journal %s", name, old.Journal)
	}
	c.nodes[name] = &node{
		Name: name, Addr: addr, Journal: journal, Epoch: epoch,
		Load: load, lastBeat: time.Now(), fwd: obs.NewEWMA(0.3),
	}
	c.obs.joined.Inc()
	c.publishNodeGauges()
	c.cfg.Logf("fleet: node %s joined (%s, journal %s, epoch %d)", name, addr, journal, epoch)
	c.log.Log("fleet_join", "node", name, "addr", addr, "epoch", epoch)
	return nil
}

// errFencedNode marks a heartbeat or join from an incarnation the
// fleet has already fenced: the HTTP layer answers 410 Gone.
var errFencedNode = errors.New("fleet: node is fenced")

// Heartbeat records a beat from a worker. An unknown name asks the
// agent to re-join; a fenced node (or a stale epoch — a zombie from a
// previous incarnation) is told it is gone.
func (c *Coordinator) Heartbeat(name string, epoch uint64, load server.Load) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[name]
	if !ok {
		return fmt.Errorf("fleet: unknown node %s", name)
	}
	if n.Fenced || epoch != n.Epoch {
		return fmt.Errorf("%w: %s (epoch %d, fleet has %d)", errFencedNode, name, epoch, n.Epoch)
	}
	n.lastBeat = time.Now()
	n.Load = load
	c.obs.heartbeats.Inc()
	c.publishNodeGauges()
	return nil
}

// Nodes returns the coordinator's current fleet view, sorted by name.
func (c *Coordinator) Nodes() []node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]node, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, *n)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// sweepLoop is the coordinator's heartbeat: every HeartbeatEvery it
// checks deadlines, fences the dead, delivers pending handoffs, and
// brokers one work-steal.
func (c *Coordinator) sweepLoop() {
	defer c.stopWg.Done()
	t := time.NewTicker(c.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.sweep()
		}
	}
}

// sweep runs one round of failure detection and rebalancing.
func (c *Coordinator) sweep() {
	deadline := time.Duration(c.cfg.HeartbeatMiss) * c.cfg.HeartbeatEvery
	now := time.Now()

	c.mu.Lock()
	var dead []*node
	for _, n := range c.nodes {
		if n.alive() && now.Sub(n.lastBeat) > deadline {
			n.Fenced = true // claim it under the lock; fence outside
			dead = append(dead, n)
		}
	}
	c.publishNodeGauges()
	c.mu.Unlock()

	for _, n := range dead {
		c.fence(n)
	}
	c.updateSlow()
	c.deliverPending()
	c.stealOnce()
	c.hedgeSweep()
}

// fence finalizes a dead node: bump its journal epoch with the fenced
// marker (from this instant every journal write the zombie attempts is
// refused — it cannot double-commit), then recover its jobs from the
// journal: terminal records become servable results, live records go
// to the pending-handoff list for resumption on a peer.
func (c *Coordinator) fence(n *node) {
	c.obs.fenced.Inc()
	epoch, err := server.FenceJournal(n.Journal)
	if err != nil {
		// The journal dir is gone or unwritable. Nothing to recover from —
		// but also nothing a zombie could commit to. Log and move on.
		c.cfg.Logf("fleet: fencing %s: %v", n.Name, err)
		c.log.Log("fleet_fence_error", "node", n.Name, "err", err.Error())
		return
	}
	c.cfg.Logf("fleet: node %s missed its heartbeat deadline; fenced at epoch %d", n.Name, epoch)
	c.log.Log("fleet_fence", "node", n.Name, "epoch", epoch)

	recs, err := server.LoadRecords(n.Journal, func(path string, err error) {
		c.cfg.Logf("fleet: skipping corrupt record %s: %v", path, err)
	})
	if err != nil {
		c.cfg.Logf("fleet: reading %s journal: %v", n.Name, err)
		return
	}
	c.mu.Lock()
	terminal := make(map[string]bool)
	for _, rec := range recs {
		if rec.State.Live() {
			c.pending = append(c.pending, rec)
			c.obs.recoveredJobs.Inc()
			c.log.Log("fleet_job_recovered", "job", rec.ID, "from", n.Name,
				"state", string(rec.State), "attempt", rec.Attempt)
			continue
		}
		if rec.State.Terminal() {
			// The node is gone but its answers are not: serve them from here.
			terminal[rec.ID] = true
			c.noteTerminalLocked(rec.ID, rec.Status())
		}
	}
	// A commit claim won by the fenced node is void unless its journal
	// actually holds the terminal record: the epoch fence guarantees it
	// can never write one now, so releasing the claim lets the surviving
	// copy (or a re-homed one) win and finish the job. Outstanding
	// hedges on the fenced node are forgotten the same way — their live
	// records are already on the pending list above.
	for id, w := range c.claims {
		if w.node == n.Name && !terminal[id] {
			delete(c.claims, id)
		}
	}
	for id, h := range c.hedges {
		if h.node == n.Name {
			delete(c.hedges, id)
		}
	}
	c.obs.pendingGauge.Set(int64(len(c.pending)))
	c.mu.Unlock()
}

// deliverPending tries to re-home every recovered/stolen record. A
// record that finds no taker stays pending for the next sweep — jobs
// are never dropped, they wait for capacity.
func (c *Coordinator) deliverPending() {
	c.mu.Lock()
	pending := c.pending
	c.pending = nil
	c.mu.Unlock()

	var keep []*server.Job
	for _, rec := range pending {
		target, err := c.handoff(rec)
		if err != nil {
			keep = append(keep, rec)
			c.cfg.Logf("fleet: no home for %s yet: %v", rec.ID, err)
			continue
		}
		c.mu.Lock()
		a := c.assign[rec.ID]
		a.node = target
		a.deadline = rec.Deadline // the record carries the end-to-end budget
		c.assign[rec.ID] = a
		c.mu.Unlock()
		c.obs.handoffs.Inc()
		c.log.Log("fleet_handoff", "job", rec.ID, "to", target, "attempt", rec.Attempt)
	}
	c.mu.Lock()
	c.pending = append(c.pending, keep...)
	c.obs.pendingGauge.Set(int64(len(c.pending)))
	c.mu.Unlock()
}

// stealOnce brokers at most one steal per sweep: the idlest ready node
// pulls one queued job from the most-loaded peer. One per sweep keeps
// rebalancing gentle — a persistent imbalance drains over a few
// sweeps; a transient one often resolves itself first.
func (c *Coordinator) stealOnce() {
	diskDegraded := func(n *node) bool { return n.Load.Disk == "degraded" }
	c.mu.Lock()
	var donor, thief *node
	for _, n := range c.nodes {
		if !n.alive() {
			continue
		}
		// Donors: anything with queued work that is not leaving. Saturated
		// nodes are prime donors (that is what the /readyz split is for);
		// draining and fenced nodes are drain-only — their queue is the
		// failover path's business, not the stealer's. A disk-degraded
		// donor outranks every healthy one: its queue cannot run locally
		// until the disk heals, so moving it is never premature.
		if n.Load.Queued > 0 && n.Load.Health != server.HealthDraining &&
			(donor == nil ||
				(diskDegraded(n) && !diskDegraded(donor)) ||
				(diskDegraded(n) == diskDegraded(donor) && n.Load.Queued > donor.Load.Queued)) {
			donor = n
		}
		// Thieves: ready nodes with free capacity, idlest first.
		if n.Load.Health == server.HealthReady && n.Load.Live < n.Load.Slots &&
			(thief == nil || n.Load.Live < thief.Load.Live) {
			thief = n
		}
	}
	if donor == nil || thief == nil || donor == thief {
		c.mu.Unlock()
		return
	}
	if !diskDegraded(donor) &&
		thief.Load.Live >= donor.Load.Queued+donor.Load.Live-1 {
		// No imbalance worth moving a checkpoint over the network for.
		// (Unless the donor's disk is down — then its queued jobs run
		// nowhere at all, and any thief with a free slot beats that.)
		c.mu.Unlock()
		return
	}
	donorName, donorAddr, thiefName := donor.Name, donor.Addr, thief.Name
	c.mu.Unlock()

	rec, err := c.stealFrom(donorAddr)
	if err != nil {
		c.cfg.Logf("fleet: stealing from %s: %v", donorName, err)
		return
	}
	if rec == nil {
		return // queue emptied itself between heartbeat and steal
	}
	target, err := c.handoffTo(thiefName, rec)
	if err != nil {
		// The thief would not take it; give it back to the donor, and if
		// even that fails, park it as pending — it is journaled as
		// handed_off on the donor, so nothing is lost either way.
		if _, backErr := c.handoffTo(donorName, rec); backErr != nil {
			c.mu.Lock()
			c.pending = append(c.pending, rec)
			c.obs.pendingGauge.Set(int64(len(c.pending)))
			c.mu.Unlock()
		}
		return
	}
	c.mu.Lock()
	a := c.assign[rec.ID]
	a.node = target
	a.deadline = rec.Deadline
	c.assign[rec.ID] = a
	c.mu.Unlock()
	c.obs.steals.Inc()
	c.log.Log("fleet_steal", "job", rec.ID, "from", donorName, "to", thiefName)
}

// candidates returns scheduling-eligible nodes for a job key, best
// first: ready nodes by descending rendezvous score, then saturated
// nodes (they shed load themselves, but they are alive and their
// refusal carries a Retry-After worth propagating). Draining, fenced
// and disk-degraded nodes never appear — the last would only answer
// 507, so admissions route around it until its self-probe reports the
// disk healed and its heartbeat turns ready again.
// A slow node is demoted, not excluded: every healthy ready node
// outranks every slow ready node, and slow ready nodes still outrank
// saturated ones — slow capacity beats no capacity. Within each tier
// the order is deterministic: descending rendezvous score, node name
// breaking exact score ties (a regression test pins this — equal-load,
// equal-slot fleets must place identically on every coordinator).
func (c *Coordinator) candidates(key uint64) []*node {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ready, slow, saturated []*node
	for _, n := range c.nodes {
		if !n.alive() {
			continue
		}
		switch n.Load.Health {
		case server.HealthReady:
			if n.Slow {
				slow = append(slow, n)
			} else {
				ready = append(ready, n)
			}
		case server.HealthSaturated:
			saturated = append(saturated, n)
		}
	}
	byScore := func(list []*node) {
		sort.Slice(list, func(a, b int) bool {
			return candidateLess(list[a].Name, list[b].Name,
				rendezvous(list[a].Name, key), rendezvous(list[b].Name, key))
		})
	}
	byScore(ready)
	byScore(slow)
	byScore(saturated)
	return append(append(ready, slow...), saturated...)
}

// candidateLess is the within-tier candidate order: descending
// rendezvous score, node name breaking exact score ties. The tiebreak
// is part of the placement contract — two coordinators looking at the
// same fleet must walk candidates identically.
func candidateLess(nameA, nameB string, scoreA, scoreB uint64) bool {
	if scoreA != scoreB {
		return scoreA > scoreB
	}
	return nameA < nameB
}

// backoff computes the jittered delay before transport retry
// attempt+1 — the same shape as the server's job-retry backoff.
func (c *Coordinator) backoff(attempt int) time.Duration {
	d := c.cfg.RetryBase << (attempt - 1)
	if d > c.cfg.RetryMax || d <= 0 {
		d = c.cfg.RetryMax
	}
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	c.mu.Lock()
	jit := c.rng.Int63n(half + 1)
	c.mu.Unlock()
	return time.Duration(half + jit)
}

// sleep waits d or until the coordinator stops.
func (c *Coordinator) sleep(d time.Duration) {
	select {
	case <-c.stop:
	case <-time.After(d):
	}
}

// publishNodeGauges refreshes the per-health node-count gauges.
// Callers hold mu.
func (c *Coordinator) publishNodeGauges() {
	counts := map[string]int64{}
	for _, n := range c.nodes {
		switch {
		case n.Fenced:
			counts["fenced"]++
		default:
			counts[n.Load.Health]++
		}
	}
	for state, g := range c.obs.nodesByState {
		g.Set(counts[state])
	}
}
