package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/boardio"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/server"
	"repro/internal/stringer"
	"repro/internal/workload"
)

// buildSpec generates a small seeded board as a JobSpec; distinct
// seeds are distinct but reproducible routing problems.
func buildSpec(t *testing.T, seed int64) server.JobSpec {
	t.Helper()
	d, err := workload.Generate(workload.TinySpec(seed))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := boardio.WriteDesign(&sb, d); err != nil {
		t.Fatal(err)
	}
	return server.JobSpec{Design: sb.String(), Options: map[string]int64{"checkpointevery": 1}}
}

// oracle routes spec directly — no daemon, no fleet — and returns the
// deterministic fingerprint every fleet path must reproduce.
func oracle(t *testing.T, spec server.JobSpec) uint64 {
	t.Helper()
	d, err := boardio.ReadDesign(strings.NewReader(spec.Design))
	if err != nil {
		t.Fatal(err)
	}
	strung, err := stringer.String(d, stringer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	for name, v := range spec.Options {
		if err := boardio.ApplyOption(&opts, name, v); err != nil {
			t.Fatal(err)
		}
	}
	snap := &boardio.Snapshot{
		Design: d, Conns: strung.Conns, Opts: opts,
		Check: &core.Checkpoint{
			PrevUnrouted: len(strung.Conns) + 1,
			Routes:       make([]core.ConnRoute, len(strung.Conns)),
		},
	}
	b, r, err := snap.Restore()
	if err != nil {
		t.Fatal(err)
	}
	res := r.Route()
	if res.Aborted != core.AbortNone || !res.Complete() {
		t.Fatalf("oracle run did not complete: %v", res)
	}
	if err := b.Audit(); err != nil {
		t.Fatal(err)
	}
	return b.Fingerprint()
}

func TestSpecKey(t *testing.T) {
	a := buildSpec(t, 1)
	if specKey(a) != specKey(buildSpec(t, 1)) {
		t.Error("identical specs key differently")
	}
	if specKey(a) == specKey(buildSpec(t, 2)) {
		t.Error("different designs share a key")
	}
	b := buildSpec(t, 1)
	b.Options["radius"] = 3
	if specKey(a) == specKey(b) {
		t.Error("different options share a key")
	}
	c := buildSpec(t, 1)
	c.Conns = "synthetic"
	if specKey(a) == specKey(c) {
		t.Error("different conns share a key")
	}
}

// TestSpecKeyEngine is the regression test for the cache-keying bug:
// the search engine (and every other algorithmic option) must be part
// of the route-cache key, or a cached classic-engine result would be
// served for a goal-engine request — a silent answer swap, since the
// two engines may route the same board differently.
func TestSpecKeyEngine(t *testing.T) {
	classic := buildSpec(t, 1)
	goal := buildSpec(t, 1)
	goal.Options["engine"] = int64(core.EngineGoal)
	if specKey(classic) == specKey(goal) {
		t.Fatal("classic and goal engine requests share a cache key")
	}

	// Cost options are algorithmic too.
	cost := buildSpec(t, 1)
	cost.Options["cost"] = 1
	if specKey(classic) == specKey(cost) {
		t.Error("different cost functions share a cache key")
	}

	// The key hashes the RESOLVED vector: spelling out a default is the
	// same problem as omitting it, and must hit the same cache entry.
	explicit := buildSpec(t, 1)
	explicit.Options["engine"] = int64(core.EngineClassic)
	if specKey(classic) != specKey(explicit) {
		t.Error("explicit default engine keys differently from an absent one")
	}

	// Unknown option names (the node rejects them with a 400) must not
	// alias a valid spec.
	bogus := buildSpec(t, 1)
	bogus.Options["engin"] = int64(core.EngineGoal) // misspelled
	if specKey(bogus) == specKey(classic) || specKey(bogus) == specKey(goal) {
		t.Error("unknown option name aliases a valid spec")
	}
}

func TestRouteCacheFIFO(t *testing.T) {
	rc := newRouteCache(2)
	done := func(id string) server.Status { return server.Status{ID: id, State: server.StateDone} }
	rc.put(1, done("a"))
	rc.put(2, done("b"))
	rc.put(3, done("c")) // evicts 1
	if _, ok := rc.get(1); ok {
		t.Error("oldest entry not evicted")
	}
	for _, k := range []uint64{2, 3} {
		if _, ok := rc.get(k); !ok {
			t.Errorf("entry %d missing", k)
		}
	}
	// Non-terminal and failed statuses are never cached: only a done
	// answer is a reusable answer.
	rc.put(4, server.Status{ID: "d", State: server.StateFailed})
	if _, ok := rc.get(4); ok {
		t.Error("failed status cached")
	}
	if rc.len() != 2 {
		t.Errorf("cache size = %d, want 2", rc.len())
	}

	off := newRouteCache(-1)
	off.put(9, done("z"))
	if _, ok := off.get(9); ok {
		t.Error("disabled cache stored an entry")
	}
}

// TestRendezvousStability: removing one node only moves the keys that
// node owned — every other key keeps its winner. This is the property
// that makes failover cheap: the survivors' assignments don't churn.
func TestRendezvousStability(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	winner := func(key uint64, pool []string) string {
		best, bestScore := "", uint64(0)
		for _, n := range pool {
			if s := rendezvous(n, key); best == "" || s > bestScore {
				best, bestScore = n, s
			}
		}
		return best
	}
	moved, kept := 0, 0
	for key := uint64(0); key < 500; key++ {
		before := winner(key, nodes)
		after := winner(key, nodes[:3]) // drop "d"
		if before == "d" {
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %d moved from %s to %s though its node survived", key, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved %d kept %d of 500", moved, kept)
	}
}

// fleetNode is one in-process worker: a real server.Server behind a
// real listener, with a running Agent.
type fleetNode struct {
	name   string
	srv    *server.Server
	ts     *httptest.Server
	cancel context.CancelFunc
}

// startNode boots a worker and joins it to the coordinator at coordURL.
func startNode(t *testing.T, name, coordURL string, cfg server.Config,
	client *http.Client, drop func() bool) *fleetNode {
	t.Helper()
	cfg.NodeName = name
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.RetryBase == 0 {
		cfg.RetryBase = time.Millisecond
		cfg.RetryMax = 20 * time.Millisecond
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	agent := NewAgent(AgentConfig{
		Node: name, Addr: ts.URL, Journal: cfg.JournalDir,
		Coordinator: coordURL, Server: s,
		Every:         20 * time.Millisecond,
		Client:        client,
		DropHeartbeat: drop,
	})
	go agent.Run(ctx)
	n := &fleetNode{name: name, srv: s, ts: ts, cancel: cancel}
	t.Cleanup(func() {
		n.cancel()
		n.ts.Close()
		// Drain before the test framework deletes the journal dir under a
		// still-running worker.
		dctx, dcancel := context.WithTimeout(context.Background(), 2*time.Second)
		n.srv.Drain(dctx)
		dcancel()
	})
	return n
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

// submit posts a spec through the coordinator, retrying 429s (the
// fleet sheds load when saturated; a client that wants the job in just
// asks again).
func submit(t *testing.T, coordURL string, spec server.JobSpec) server.Status {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Post(coordURL+"/jobs", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		var st server.Status
		decodeErr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusOK:
			if decodeErr != nil {
				t.Fatal(decodeErr)
			}
			return st
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			time.Sleep(10 * time.Millisecond)
		default:
			t.Fatalf("submit: unexpected status %d", resp.StatusCode)
		}
	}
	t.Fatal("submit: fleet never accepted the job")
	return server.Status{}
}

// coordStatus polls one job through the coordinator.
func coordStatus(t *testing.T, coordURL, id string) (server.Status, bool) {
	t.Helper()
	resp, err := http.Get(coordURL + "/jobs/" + id)
	if err != nil {
		return server.Status{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return server.Status{}, false
	}
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return server.Status{}, false
	}
	return st, true
}

func waitJobDone(t *testing.T, coordURL, id string, timeout time.Duration) server.Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if st, ok := coordStatus(t, coordURL, id); ok && st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, _ := coordStatus(t, coordURL, id)
	t.Fatalf("job %s never finished via the coordinator (last: %+v)", id, st)
	return server.Status{}
}

// TestWorkStealingRebalances: a node wedged on a long job with work
// queued behind it loses that queued work to an idle peer — through
// the coordinator's steal broker, not any worker-to-worker chatter —
// and the stolen job finishes on the thief with the oracle
// fingerprint.
func TestWorkStealingRebalances(t *testing.T) {
	c := New(Config{
		HeartbeatEvery: 25 * time.Millisecond,
		HeartbeatMiss:  40, // failover off: this test is about stealing, not fencing
		CacheSize:      -1,
		Logf:           t.Logf,
	})
	ts := httptest.NewServer(c.Handler())
	defer func() {
		ts.Close()
		c.Close()
	}()

	spec := buildSpec(t, 7)
	want := oracle(t, spec)

	// Node "busy": worker pool of one, first job wedges mid-mutation.
	blk := faultinject.BlockAt(1)
	t.Cleanup(blk.Release)
	var first atomic.Bool
	busyCfg := server.Config{
		QueueDepth: 4, JournalDir: t.TempDir(), Logf: t.Logf,
		BoardHook: func(b *board.Board) {
			if first.CompareAndSwap(false, true) {
				b.Interpose(blk)
			}
		},
	}
	busy := startNode(t, "busy", ts.URL, busyCfg, nil, nil)

	if _, err := busy.srv.Submit(spec); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, blk.Fired, "blocker never fired")
	queued, err := busy.srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// An idle peer joins; within a few sweeps the coordinator moves the
	// queued job over and it completes there.
	idle := startNode(t, "idle", ts.URL,
		server.Config{QueueDepth: 4, JournalDir: t.TempDir(), Logf: t.Logf}, nil, nil)

	fin := waitJobDone(t, ts.URL, queued.ID, 20*time.Second)
	blk.Release()
	if fin.State != server.StateDone {
		t.Fatalf("stolen job: %+v", fin)
	}
	if wantS := fmt.Sprintf("%016x", want); fin.Fingerprint != wantS {
		t.Errorf("stolen job fingerprint = %s, want %s", fin.Fingerprint, wantS)
	}
	// It ran on the thief: the donor's copy is handed_off, the thief's
	// is done.
	if st, ok := busy.srv.Status(queued.ID); !ok || st.State != server.StateHandedOff {
		t.Errorf("donor copy = %+v, want handed_off", st)
	}
	if st, ok := idle.srv.Status(queued.ID); !ok || st.State != server.StateDone {
		t.Errorf("thief copy = %+v, want done", st)
	}
}

// TestCoordinatorDegradesToRetryAfter: with every node gone saturated
// — or no nodes at all — the coordinator sheds load like a single
// busy grrd: 429 with a Retry-After, never a hang or a 500.
func TestCoordinatorDegradesToRetryAfter(t *testing.T) {
	c := New(Config{HeartbeatEvery: 25 * time.Millisecond, CacheSize: -1, Logf: t.Logf})
	ts := httptest.NewServer(c.Handler())
	defer func() {
		ts.Close()
		c.Close()
	}()

	body, _ := json.Marshal(buildSpec(t, 3))
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit with no nodes = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After")
	}
	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("empty-fleet readyz = %d, want 503", rz.StatusCode)
	}
}
