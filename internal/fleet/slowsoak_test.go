package fleet

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/faultinject"
	"repro/internal/server"
	"repro/internal/simfs"
)

// TestFleetSlowSoak is the fail-slow exam (DESIGN §14): four workers,
// one of which is not dead but *slow* — every board mutation stalls
// and every journal write drags — and a stream of deadline-carrying
// jobs. The test runs the same workload twice in one process:
//
//   - baseline: hedging off. Jobs placed on the slow node before the
//     coordinator latches its slow posture run to completion at the
//     slow node's pace; the tail is whatever the straggler makes it.
//   - hedged: Hedge=40ms. The same stragglers get a second copy on a
//     healthy peer once they outrun the delay, the first durable
//     result wins the coordinator's claim ledger, and the loser is
//     superseded.
//
// The contract:
//
//   - the hedged tail (p99) is strictly below the baseline tail, in
//     the same process, same seeds, same slow node;
//   - zero jobs lost, zero duplicated: every job reaches done with the
//     oracle fingerprint, and is committed done in exactly ONE journal
//     fleet-wide — a losing hedge that also committed would show up
//     here as two;
//   - the coordinator actually latched the slow node's posture, and
//     actually launched hedges (the win is causal, not luck).
func TestFleetSlowSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("fail-slow soak; run without -short")
	}

	const (
		numSeeds = 6
		numJobs  = 80 // per phase; two phases ≥ 150 total
	)
	deadlineMs := int64(60_000)

	specs := make([]server.JobSpec, numSeeds)
	wantFP := make([]string, numSeeds)
	for i := range specs {
		specs[i] = buildSpec(t, int64(700+i))
		specs[i].DeadlineMs = &deadlineMs
		wantFP[i] = oracleFP(t, specs[i])
	}

	base := runSlowPhase(t, "baseline", 0, specs, wantFP, numJobs)
	hedged := runSlowPhase(t, "hedged", 40*time.Millisecond, specs, wantFP, numJobs)

	if base.hedges != 0 {
		t.Errorf("baseline phase launched %d hedges with hedging off", base.hedges)
	}
	if hedged.hedges == 0 {
		t.Error("hedged phase launched no hedges — the tail comparison proves nothing")
	}
	if !hedged.sawSlow {
		t.Error("coordinator never latched the slow node's posture in the hedged phase")
	}

	bp99, hp99 := p99(base.lats), p99(hedged.lats)
	t.Logf("p99: baseline=%v hedged=%v (hedges launched: %d)", bp99, hp99, hedged.hedges)
	if hp99 >= bp99 {
		t.Errorf("hedged p99 %v not below no-hedge baseline p99 %v", hp99, bp99)
	}
}

type slowPhase struct {
	lats    []time.Duration
	hedges  int64
	sawSlow bool
}

// runSlowPhase boots a fresh coordinator and four workers (n4 slow on
// both CPU and disk), pushes numJobs deadline-carrying jobs through
// sequentially, and returns the per-job latencies. Before returning it
// asserts the phase's own zero-loss/zero-dup contract across all four
// journals.
func runSlowPhase(t *testing.T, name string, hedge time.Duration,
	specs []server.JobSpec, wantFP []string, numJobs int) slowPhase {
	t.Helper()
	var out slowPhase
	ok := t.Run(name, func(t *testing.T) {
		c := New(Config{
			HeartbeatEvery: 25 * time.Millisecond,
			HeartbeatMiss:  40, // nobody dies in this test; fencing would hide fail-slow
			RetryBase:      2 * time.Millisecond,
			RetryMax:       20 * time.Millisecond,
			CacheSize:      -1, // every submission must be routed, not remembered
			Hedge:          hedge,
			Logf:           t.Logf,
		})
		ts := httptest.NewServer(c.Handler())
		defer func() {
			ts.Close()
			c.Close()
		}()

		agentClient := &http.Client{Timeout: 10 * time.Second}
		journals := make(map[string]string, 4)
		for _, nn := range []string{"n1", "n2", "n3", "n4"} {
			cfg := server.Config{
				Workers:     2,
				QueueDepth:  8,
				MaxAttempts: 12,
				JournalDir:  t.TempDir(),
				RetryBase:   time.Millisecond,
				RetryMax:    20 * time.Millisecond,
				// Every worker arbitrates token-carrying commits through
				// the coordinator — exactly the production wiring.
				ClaimCommit: ClaimClient(ts.URL, nn, nil),
				Logf:        t.Logf,
			}
			if nn == "n4" {
				// The fail-slow node: every board mutation stalls 2ms and
				// every journal file operation drags 2ms. It is healthy by
				// every liveness measure — it heartbeats, it answers, it
				// finishes jobs — just far too slowly.
				slow := faultinject.NewSlowNode(2*time.Millisecond, 1)
				cfg.BoardHook = func(b *board.Board) { b.Interpose(slow) }
				prev := simfs.Swap(faultinject.NewSlowDisk(simfs.OS(), cfg.JournalDir, 2*time.Millisecond))
				t.Cleanup(func() { simfs.Swap(prev) })
			}
			journals[nn] = cfg.JournalDir
			startNode(t, nn, ts.URL, cfg, agentClient, nil)
		}
		waitFor(t, 10*time.Second, func() bool { return len(c.Nodes()) == 4 },
			"fleet never assembled")

		ids := make([]string, 0, numJobs)
		seed := make(map[string]int, numJobs)
		for i := 0; i < numJobs; i++ {
			t0 := time.Now()
			st := submit(t, ts.URL, specs[i%len(specs)])
			fin := waitJobDone(t, ts.URL, st.ID, 60*time.Second)
			out.lats = append(out.lats, time.Since(t0))
			if fin.State != server.StateDone {
				t.Fatalf("job %s: %+v", st.ID, fin)
			}
			if fin.AuditOK == nil || !*fin.AuditOK {
				t.Errorf("job %s finished without a clean audit: %+v", st.ID, fin)
			}
			if want := wantFP[i%len(specs)]; fin.Fingerprint != want {
				t.Errorf("job %s fingerprint = %s, want %s", st.ID, fin.Fingerprint, want)
			}
			ids = append(ids, st.ID)
			seed[st.ID] = i % len(specs)
			if !out.sawSlow {
				for _, n := range c.Nodes() {
					if n.Name == "n4" && n.Slow {
						out.sawSlow = true
					}
				}
			}
		}
		out.hedges = c.obs.hedgeLaunched.Value()

		// Zero loss, zero duplication: each job committed done in exactly
		// one journal. A losing hedge that slipped past the claim ledger
		// would commit a second done here.
		doneIn := make(map[string][]string)
		for nn, dir := range journals {
			recs, err := server.LoadRecords(dir, func(path string, err error) {
				t.Errorf("%s: corrupt journal record %s: %v", nn, path, err)
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, rec := range recs {
				if rec.State == server.StateDone {
					doneIn[rec.ID] = append(doneIn[rec.ID], nn)
				}
			}
		}
		for _, id := range ids {
			switch owners := doneIn[id]; len(owners) {
			case 1:
			case 0:
				t.Errorf("job %s reported done but committed in no journal", id)
			default:
				t.Errorf("job %s committed done on %d nodes (%v) — hedge fencing violated",
					id, len(owners), owners)
			}
		}
	})
	if !ok {
		t.Fatalf("%s phase failed", name)
	}
	return out
}

// oracleFP formats the oracle fingerprint the way Status reports it.
func oracleFP(t *testing.T, spec server.JobSpec) string {
	t.Helper()
	return fmt.Sprintf("%016x", oracle(t, spec))
}

// p99 is the nearest-rank 99th percentile.
func p99(lats []time.Duration) time.Duration {
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	idx := (99*len(s) + 99) / 100
	if idx > len(s) {
		idx = len(s)
	}
	return s[idx-1]
}
