package fleet

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// TestCandidateOrderDeterministic pins the placement contract: for a
// fixed fleet and key, candidates() returns one exact order — healthy
// ready nodes by descending rendezvous score, then slow ready nodes,
// then saturated ones, with the node name breaking exact score ties —
// and returns it identically on every call. Two coordinators looking
// at the same fleet must walk candidates in the same order, or
// placement (and hedge targeting) diverges between them.
func TestCandidateOrderDeterministic(t *testing.T) {
	c := New(Config{HeartbeatEvery: time.Hour, Logf: t.Logf})
	defer c.Close()

	mk := func(name string, health string, slow, fenced bool) *node {
		return &node{
			Name: name, Load: server.Load{Health: health},
			Slow: slow, Fenced: fenced,
			lastBeat: time.Now(), fwd: obs.NewEWMA(0.3),
		}
	}
	c.mu.Lock()
	for _, n := range []*node{
		mk("alpha", server.HealthReady, false, false),
		mk("bravo", server.HealthReady, false, false),
		mk("carol", server.HealthReady, true, false),  // slow: demoted
		mk("delta", server.HealthSaturated, false, false),
		mk("echo", server.HealthReady, false, true), // fenced: excluded
		mk("foxtrot", server.HealthDraining, false, false),
	} {
		c.nodes[n.Name] = n
	}
	c.mu.Unlock()

	for key := uint64(0); key < 64; key++ {
		got := c.candidates(key)
		names := make([]string, len(got))
		for i, n := range got {
			names[i] = n.Name
		}
		// Exactly the four schedulable nodes, no more, no less.
		if len(names) != 4 {
			t.Fatalf("key %d: candidates = %v, want 4 schedulable nodes", key, names)
		}
		// Tier walls: both healthy ready nodes before the slow one,
		// the slow one before the saturated one.
		if names[2] != "carol" || names[3] != "delta" {
			t.Fatalf("key %d: tier order violated: %v", key, names)
		}
		// Within the healthy tier, descending rendezvous score.
		if sa, sb := rendezvous(names[0], key), rendezvous(names[1], key); sa < sb {
			t.Fatalf("key %d: healthy tier not score-descending: %v", key, names)
		}
		// Byte-for-byte repeatable.
		again := c.candidates(key)
		for i := range again {
			if again[i].Name != names[i] {
				t.Fatalf("key %d: order changed between calls: %v then %v", key, names, again)
			}
		}
	}

	// The tie rule itself: equal scores fall back to name order, in
	// both argument orders (a strict weak ordering, not a coin flip).
	if !candidateLess("a", "b", 7, 7) || candidateLess("b", "a", 7, 7) {
		t.Error("equal scores must order by name, ascending")
	}
	if !candidateLess("b", "a", 9, 7) || candidateLess("a", "b", 7, 9) {
		t.Error("unequal scores must order by score, descending")
	}
}
