package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"

	"repro/internal/boardio"
	"repro/internal/core"
	"repro/internal/server"
)

// specKey fingerprints a job spec: FNV-64a over the design text, the
// connection list, and the RESOLVED router-option vector — the spec's
// options applied over core.DefaultOptions, every recognized name in
// codec order, exactly as the node's buildSnapshot resolves them. Two
// submissions with the same key describe the same routing problem —
// and the router being deterministic, the same problem has the same
// answer, which is what makes the route cache sound.
//
// Hashing the resolved vector instead of the raw submission map does
// two things: a spec that spells out a default keys identically to one
// that omits it, and — the part that is a correctness guarantee, not a
// hit-rate nicety — every algorithmic option the codec knows (engine,
// cost function, radius, …) is structurally present in the key, so a
// classic-engine result can never be served for a goal-engine request
// no matter how either spec happened to spell its options. Unrecognized
// option names (the node will reject the spec with a 400 anyway) are
// hashed raw so a bad spec at least never aliases a good one.
func specKey(spec server.JobSpec) uint64 {
	h := fnv.New64a()
	h.Write([]byte(spec.Design))
	h.Write([]byte{0})
	h.Write([]byte(spec.Conns))
	h.Write([]byte{0})
	opts := core.DefaultOptions()
	var unknown []string
	for k, v := range spec.Options {
		if err := boardio.ApplyOption(&opts, k, v); err != nil {
			unknown = append(unknown, k)
		}
	}
	for i, v := range boardio.OptionInts(&opts) {
		h.Write([]byte(strconv.Itoa(i)))
		h.Write([]byte{'='})
		h.Write([]byte(strconv.FormatInt(v, 10)))
		h.Write([]byte{0})
	}
	sort.Strings(unknown)
	for _, k := range unknown {
		h.Write([]byte(k))
		h.Write([]byte{'='})
		h.Write([]byte(strconv.FormatInt(spec.Options[k], 10)))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// rendezvous scores one (node, job-key) pair for highest-random-weight
// placement: every coordinator computes the same ranking from the same
// fleet view, no shared state needed, and a node joining or leaving
// only reshuffles the jobs that hashed to it.
func rendezvous(nodeName string, key uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(nodeName))
	h.Write([]byte{0})
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(key >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()
}

// routeCache remembers terminal done Statuses by spec key, bounded
// FIFO: routing answers are immutable (deterministic router, immutable
// spec), so eviction is purely about memory, and FIFO is as good as
// anything for a correctness-free eviction choice.
type routeCache struct {
	mu    sync.Mutex
	max   int
	order []uint64
	byKey map[uint64]server.Status
}

// newRouteCache builds a cache holding at most max entries; max < 0
// disables caching entirely (every lookup misses, every put drops).
func newRouteCache(max int) *routeCache {
	return &routeCache{max: max, byKey: make(map[uint64]server.Status)}
}

func (rc *routeCache) get(key uint64) (server.Status, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	st, ok := rc.byKey[key]
	return st, ok
}

func (rc *routeCache) put(key uint64, st server.Status) {
	if rc.max < 0 || st.State != server.StateDone {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if _, ok := rc.byKey[key]; ok {
		return
	}
	for len(rc.order) >= rc.max {
		evict := rc.order[0]
		rc.order = rc.order[1:]
		delete(rc.byKey, evict)
	}
	rc.byKey[key] = st
	rc.order = append(rc.order, key)
}

func (rc *routeCache) len() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return len(rc.byKey)
}
