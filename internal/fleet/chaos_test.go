package fleet

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/server"
)

// TestFleetChaosSoak is the fleet's survival exam: four workers behind
// one coordinator, two hundred-plus jobs, and a scripted campaign of
// network partitions, heartbeat loss (a zombie that keeps routing
// while the fleet fences it), and a full node kill. The contract that
// has to hold through all of it is the same absolute one the
// single-node soak enforces:
//
//   - no job is lost — every submitted job reaches done through the
//     coordinator's front door;
//   - no job is duplicated — no job ID is committed done in more than
//     one node's journal (the epoch fence makes a zombie's commits
//     bounce, so this is a real invariant, not luck);
//   - every result is bit-identical — fingerprint and router metrics —
//     to a quiet, fleet-free run of the same spec;
//   - fenced nodes stay fenced on disk.
//
// The chaos is deterministic (scripted at fixed submission indices,
// seeded workloads), so a failure reproduces.
func TestFleetChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak; run without -short")
	}

	const (
		numSeeds = 6
		numJobs  = 210
	)

	part := faultinject.NewPartition()
	c := New(Config{
		HeartbeatEvery: 50 * time.Millisecond,
		// A generous fencing deadline (20 missed beats = 1s): all five
		// nodes, the coordinator and the race detector share one Go
		// runtime here, and a scheduler stall that would never hit a
		// real fleet can easily silence every agent for 200ms at once.
		// The scripted kills mute heartbeats outright, so they still
		// fence promptly at this deadline.
		HeartbeatMiss: 20,
		RetryBase:     2 * time.Millisecond,
		RetryMax:      20 * time.Millisecond,
		CacheSize:     -1, // every submission must be routed, not remembered
		Transport:     part.RoundTripper(nil),
		Logf:          t.Logf,
	})
	ts := httptest.NewServer(c.Handler())
	defer func() {
		ts.Close()
		c.Close()
	}()

	// Baselines before any chaos: one direct run per seed.
	specs := make([]server.JobSpec, numSeeds)
	wantFP := make([]string, numSeeds)
	for i := range specs {
		specs[i] = buildSpec(t, int64(300+i))
		wantFP[i] = fmt.Sprintf("%016x", oracle(t, specs[i]))
	}

	agentClient := &http.Client{Transport: part.RoundTripper(nil), Timeout: 10 * time.Second}
	nodeCfg := func() server.Config {
		return server.Config{
			Workers:     2,
			QueueDepth:  8,
			MaxAttempts: 12,
			JournalDir:  t.TempDir(),
			RetryBase:   time.Millisecond,
			RetryMax:    20 * time.Millisecond,
			Logf:        t.Logf,
		}
	}
	names := []string{"n1", "n2", "n3", "n4"}
	nodes := make(map[string]*fleetNode, len(names)+1)
	journals := make(map[string]string, len(names)+1)
	for _, name := range names {
		name := name
		cfg := nodeCfg()
		journals[name] = cfg.JournalDir
		nodes[name] = startNode(t, name, ts.URL, cfg, agentClient,
			func() bool { return part.HeartbeatDropped(name) })
	}
	waitFor(t, 10*time.Second, func() bool { return len(c.Nodes()) == len(names) },
		"fleet never assembled")

	host := func(n *fleetNode) string { return strings.TrimPrefix(n.ts.URL, "http://") }

	// The campaign, keyed to submission index:
	//   #50  n2 partitioned from the coordinator (heartbeats still
	//        flow: unreachable, not dead — forwards and status proxies
	//        to it fail until it heals at #80);
	//   #90  n3 goes zombie: heartbeats muted, server still routing.
	//        The fleet fences it and re-homes its jobs; its own journal
	//        writes bounce off the epoch fence;
	//   #140 n4 killed outright: partitioned AND muted;
	//   #150 a fresh node n5 joins mid-chaos to absorb the load.
	ids := make([]string, 0, numJobs)
	seed := make(map[string]int, numJobs)
	for i := 0; i < numJobs; i++ {
		switch i {
		case 50:
			part.Block(host(nodes["n2"]))
		case 80:
			part.Heal(host(nodes["n2"]))
		case 90:
			part.MuteHeartbeats("n3")
		case 140:
			part.Block(host(nodes["n4"]))
			part.MuteHeartbeats("n4")
		case 150:
			cfg := nodeCfg()
			journals["n5"] = cfg.JournalDir
			nodes["n5"] = startNode(t, "n5", ts.URL, cfg, agentClient,
				func() bool { return part.HeartbeatDropped("n5") })
		}
		st := submit(t, ts.URL, specs[i%numSeeds])
		if _, dup := seed[st.ID]; dup {
			t.Fatalf("job ID %s assigned twice", st.ID)
		}
		ids = append(ids, st.ID)
		seed[st.ID] = i % numSeeds
	}

	// Everything lands: done, audited, bit-identical to the oracle.
	for _, id := range ids {
		fin := waitJobDone(t, ts.URL, id, 60*time.Second)
		if fin.State != server.StateDone {
			t.Fatalf("job %s: %+v", id, fin)
		}
		if fin.AuditOK == nil || !*fin.AuditOK {
			t.Errorf("job %s finished without a clean audit: %+v", id, fin)
		}
		if want := wantFP[seed[id]]; fin.Fingerprint != want {
			t.Errorf("job %s fingerprint = %s, want %s", id, fin.Fingerprint, want)
		}
	}

	// The fenced nodes are fenced on disk, durably.
	for _, name := range []string{"n3", "n4"} {
		epoch, fenced, err := server.ReadEpoch(journals[name])
		if err != nil {
			t.Fatal(err)
		}
		if !fenced || epoch < 2 {
			t.Errorf("%s journal epoch = %d fenced=%v, want fenced at ≥2", name, epoch, fenced)
		}
	}

	// Zero duplication, zero loss, across every journal including the
	// fenced ones: each submitted job is committed done in exactly one
	// journal directory fleet-wide. (A zombie double-commit would show
	// up as two.)
	doneIn := make(map[string][]string)
	for name, dir := range journals {
		recs, err := server.LoadRecords(dir, func(path string, err error) {
			t.Errorf("%s: corrupt journal record %s: %v", name, path, err)
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if rec.State == server.StateDone {
				doneIn[rec.ID] = append(doneIn[rec.ID], name)
			}
		}
	}
	for _, id := range ids {
		switch owners := doneIn[id]; len(owners) {
		case 1:
		case 0:
			t.Errorf("job %s reported done but committed in no journal", id)
		default:
			t.Errorf("job %s committed done on %d nodes (%v) — fencing violated",
				id, len(owners), owners)
		}
	}
}
