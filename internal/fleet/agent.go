package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/server"
)

// AgentConfig parameterizes the worker-side fleet loop.
type AgentConfig struct {
	// Node is this worker's fleet-unique name; Addr is its serving base
	// URL ("http://host:port"); Journal its journal directory as the
	// coordinator will reach it through the filesystem.
	Node, Addr, Journal string
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// Server supplies the heartbeat payload (its Load report and epoch).
	Server *server.Server
	// Every is the heartbeat cadence; it must match (or beat) the
	// coordinator's HeartbeatEvery or the node will be fenced for
	// punctuality (default 1s).
	Every time.Duration
	// Client issues the join/heartbeat requests (nil: a default client;
	// chaos tests install a faultinject.Partition transport here).
	Client *http.Client
	// DropHeartbeat, when set, is consulted before each beat: true
	// drops it on the floor. The heartbeat-loss seam — the node stays
	// healthy, the coordinator stops hearing from it.
	DropHeartbeat func() bool
	// Logf receives operational lines (default: discard).
	Logf func(format string, args ...any)
}

// Agent is the worker-side half of the fleet protocol: join the
// coordinator, then heartbeat occupancy until the context ends.
// Coordinator unavailability degrades gracefully — the agent keeps
// retrying while grrd keeps serving its local queue; nothing on this
// path can stall or fail the daemon itself.
type Agent struct {
	cfg    AgentConfig
	client *http.Client
	joined bool
	gone   bool
}

// NewAgent builds an Agent; Run starts it.
func NewAgent(cfg AgentConfig) *Agent {
	if cfg.Every <= 0 {
		cfg.Every = time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return &Agent{cfg: cfg, client: client}
}

// Run joins and heartbeats until ctx is done. It only returns on ctx
// cancellation: every failure mode (coordinator down, fenced, network
// flapping) is survivable and retried — fleet membership is best
// effort from the worker's side.
func (a *Agent) Run(ctx context.Context) {
	t := time.NewTicker(a.cfg.Every)
	defer t.Stop()
	a.tick(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			a.tick(ctx)
		}
	}
}

// tick performs one agent step: (re-)join if needed, else heartbeat.
func (a *Agent) tick(ctx context.Context) {
	if !a.joined {
		if err := a.post(ctx, "/join"); err != nil {
			a.cfg.Logf("grrd: fleet join: %v (serving standalone, will retry)", err)
			return
		}
		a.joined = true
		a.gone = false
		a.cfg.Logf("grrd: joined fleet at %s as %s", a.cfg.Coordinator, a.cfg.Node)
		return
	}
	if a.cfg.DropHeartbeat != nil && a.cfg.DropHeartbeat() {
		return
	}
	err := a.post(ctx, "/heartbeat")
	switch {
	case err == nil:
	case errors.Is(err, errGone):
		// Fenced: our jobs have been handed to peers. The server will
		// latch fenced on its next journal write; all the agent does is
		// stop pestering the coordinator and say why once.
		if !a.gone {
			a.gone = true
			a.cfg.Logf("grrd: fleet says this node is fenced; local journal writes will be refused")
		}
	case errors.Is(err, errUnknown):
		// Coordinator restarted and lost its view; re-join next tick.
		a.joined = false
	default:
		a.cfg.Logf("grrd: fleet heartbeat: %v", err)
	}
}

// errGone and errUnknown classify the two coordinator responses the
// agent reacts to structurally (410: fenced; 404: re-join).
var (
	errGone    = errors.New("fleet: agent fenced")
	errUnknown = errors.New("fleet: agent unknown to coordinator")
)

// post sends one join/heartbeat request.
func (a *Agent) post(ctx context.Context, path string) error {
	load := a.cfg.Server.Load()
	load.Node = a.cfg.Node
	payload := joinRequest{
		Node:    a.cfg.Node,
		Addr:    a.cfg.Addr,
		Journal: a.cfg.Journal,
		Epoch:   load.Epoch,
		Load:    load,
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		a.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusGone:
		return errGone
	case http.StatusNotFound:
		return errUnknown
	default:
		return fmt.Errorf("fleet: %s: unexpected status %d", path, resp.StatusCode)
	}
}
