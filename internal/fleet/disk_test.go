package fleet

import (
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/faultinject"
	"repro/internal/server"
	"repro/internal/simfs"
)

// TestFleetRoutesAroundDiskDegradedNode: a node whose journal disk
// goes ENOSPC mid-run must not become a black hole. The coordinator —
// told via the heartbeat's Load.Disk field — routes new submissions to
// healthy peers, steals the stuck node's queued jobs (bypassing the
// imbalance guard: a job on a dead disk runs nowhere), and once the
// injection clears, the node self-probes back to ready and finishes
// its parked job locally. Every job lands on its oracle fingerprint.
func TestFleetRoutesAroundDiskDegradedNode(t *testing.T) {
	inj := simfs.NewInjectFS(nil)
	prevFS := simfs.Swap(inj)
	t.Cleanup(func() { simfs.Swap(prevFS) })

	c := New(Config{
		HeartbeatEvery: 25 * time.Millisecond,
		HeartbeatMiss:  40, // failover off: this test is about disk posture, not fencing
		CacheSize:      -1,
		Logf:           t.Logf,
	})
	ts := httptest.NewServer(c.Handler())
	defer func() {
		ts.Close()
		c.Close()
	}()

	specs := make([]server.JobSpec, 4)
	oracles := make([]string, 4)
	for i := range specs {
		specs[i] = buildSpec(t, int64(71+i))
		oracles[i] = fmt.Sprintf("%016x", oracle(t, specs[i]))
	}

	// Node "bravo": worker pool of one; the first job wedges mid-route so
	// more work can queue behind it before the disk fault lands.
	bravoDir := t.TempDir()
	blk := faultinject.BlockAt(1)
	t.Cleanup(blk.Release)
	var first atomic.Bool
	bravo := startNode(t, "bravo", ts.URL, server.Config{
		QueueDepth: 4, JournalDir: bravoDir, Logf: t.Logf,
		DiskProbeEvery: 25 * time.Millisecond,
		BoardHook: func(b *board.Board) {
			if first.CompareAndSwap(false, true) {
				b.Interpose(blk)
			}
		},
	}, nil, nil)

	wedged, err := bravo.srv.Submit(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, blk.Fired, "blocker never fired")
	q1, err := bravo.srv.Submit(specs[1])
	if err != nil {
		t.Fatal(err)
	}
	q2, err := bravo.srv.Submit(specs[2])
	if err != nil {
		t.Fatal(err)
	}

	// Kill bravo's journal disk (only bravo's: rules match by path), then
	// let the wedged job run into it — its next checkpoint write latches
	// the degraded posture and parks the job.
	inj.Arm(&simfs.Rule{Op: simfs.OpCreate, Path: bravoDir, Sticky: true, Err: syscall.ENOSPC})
	blk.Release()
	waitFor(t, 10*time.Second, bravo.srv.DiskDegraded, "bravo never latched disk-degraded")

	// A healthy peer joins. The coordinator must see bravo's posture...
	alpha := startNode(t, "alpha", ts.URL, server.Config{
		QueueDepth: 4, JournalDir: t.TempDir(), Logf: t.Logf,
	}, nil, nil)
	nodeView := func(name string) (server.Load, bool) {
		for _, n := range c.Nodes() {
			if n.Name == name {
				return n.Load, true
			}
		}
		return server.Load{}, false
	}
	waitFor(t, 10*time.Second, func() bool {
		bl, bok := nodeView("bravo")
		_, aok := nodeView("alpha")
		return bok && aok && bl.Disk == "degraded" && bl.Health == server.HealthDiskDegraded
	}, "coordinator never saw bravo as disk_degraded")

	// ...route new submissions around it...
	routed := submit(t, ts.URL, specs[3])
	fin := waitJobDone(t, ts.URL, routed.ID, 20*time.Second)
	if fin.State != server.StateDone || fin.Fingerprint != oracles[3] {
		t.Fatalf("routed-around job = %+v, want done @ %s", fin, oracles[3])
	}
	if _, ok := bravo.srv.Status(routed.ID); ok {
		t.Error("submission was routed to the disk-degraded node")
	}
	if st, ok := alpha.srv.Status(routed.ID); !ok || st.State != server.StateDone {
		t.Errorf("healthy peer does not own the routed job: %+v", st)
	}

	// ...and steal its queued jobs, which finish on the healthy peer.
	for i, q := range []server.Status{q1, q2} {
		fin := waitJobDone(t, ts.URL, q.ID, 20*time.Second)
		if fin.State != server.StateDone || fin.Fingerprint != oracles[i+1] {
			t.Fatalf("stolen job %s = %+v, want done @ %s", q.ID, fin, oracles[i+1])
		}
		if st, ok := bravo.srv.Status(q.ID); !ok || st.State != server.StateHandedOff {
			t.Errorf("donor copy of %s = %+v, want handed_off", q.ID, st)
		}
		if st, ok := alpha.srv.Status(q.ID); !ok || st.State != server.StateDone {
			t.Errorf("thief copy of %s = %+v, want done", q.ID, st)
		}
	}

	// Clear the injection: bravo's self-probe heals the posture with no
	// restart, the parked job finishes — unparked locally, or already
	// stolen to the healthy peer, both with the oracle result — and the
	// coordinator sees the node ready again.
	inj.Disarm()
	waitFor(t, 10*time.Second, func() bool { return !bravo.srv.DiskDegraded() }, "bravo never recovered")
	fin = waitJobDone(t, ts.URL, wedged.ID, 20*time.Second)
	if fin.State != server.StateDone || fin.Fingerprint != oracles[0] {
		t.Fatalf("parked job after heal = %+v, want done @ %s", fin, oracles[0])
	}
	waitFor(t, 10*time.Second, func() bool {
		bl, ok := nodeView("bravo")
		return ok && bl.Disk == "" && bl.Health == server.HealthReady
	}, "coordinator never saw bravo return to ready")
}
