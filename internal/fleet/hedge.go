package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/server"
)

// Fail-slow detection and hedged execution — the coordinator's half of
// the fleet's tail-latency contract (DESIGN §14).
//
// Fail-STOP nodes miss heartbeats and get fenced; fail-SLOW nodes beat
// on time and answer every probe, they just take ten times longer than
// their peers — the classic sick-machine failure mode heartbeats cannot
// see. The coordinator watches three latency signals per node (its own
// forward latency, the node's reported queue-wait, the node's reported
// journal-write latency), latches a `slow` posture on the outlier, and
// demotes — never fences — it in placement. For jobs already stuck on a
// slow node, a hedge launches a second copy on a healthy peer; the
// commit claim (first claimant wins) guarantees exactly one copy
// journals "done", and the loser is cancelled and steps aside as
// handed_off.

// hedgeState tracks one outstanding hedge copy.
type hedgeState struct {
	node  string
	token uint64
}

// claimant records who won a job's commit claim.
type claimant struct {
	node  string
	token uint64
}

// Per-job hedge tokens: the original copy is armed with token 1, the
// hedge copy travels with token 2. The claim is keyed on (node, token),
// so even a copy that migrated nodes cannot be confused with its rival.
const (
	tokenPrimary = 1
	tokenHedge   = 2
)

// maxHedgesPerSweep bounds hedge launches per sweep — hedging is a
// tail-latency repair, not a second scheduler; a fleet-wide slowdown
// should surface as saturation, not double load.
const maxHedgesPerSweep = 8

// slowFloorMs is the absolute floor (milliseconds) below which a
// latency signal is never "slow": with every node fast, ratios between
// microsecond noise must not latch postures.
const slowFloorMs = 1.0

// noteForward feeds one coordinator→node round-trip into the node's
// forward-latency EWMA. Failures count double time naturally: a
// timed-out Post took as long as its timeout.
func (c *Coordinator) noteForward(name string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.nodes[name]; ok && n.fwd != nil {
		n.fwd.Observe(d.Seconds() * 1000)
	}
}

// noteTerminalLocked records a job's terminal status: servable result,
// route-cache entry, and a completion-latency sample for the hedge
// trigger. Callers hold mu.
func (c *Coordinator) noteTerminalLocked(id string, st server.Status) {
	_, seen := c.results[id]
	c.results[id] = st
	a, ok := c.assign[id]
	if !ok {
		return
	}
	if a.key != 0 && st.State == server.StateDone {
		c.cache.put(a.key, st)
	}
	if !seen && !a.created.IsZero() {
		c.window.Observe(time.Since(a.created).Seconds())
	}
}

// noteTerminal is noteTerminalLocked for callers not holding mu.
func (c *Coordinator) noteTerminal(id string, st server.Status) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.noteTerminalLocked(id, st)
}

// lowerMedian returns the lower median of vs (biased toward the
// majority for even counts: in a fleet of 2 with one sick node, the
// healthy node's value IS the baseline).
func lowerMedian(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	return s[(len(s)-1)/2]
}

// updateSlow re-evaluates every alive node's fail-slow posture against
// the fleet medians. Latch when any signal exceeds SlowFactor × median
// (and the absolute floor); unlatch when every signal is back under
// half the latch threshold — the hysteresis keeps a borderline node
// from flapping between postures every sweep.
func (c *Coordinator) updateSlow() {
	c.mu.Lock()
	defer c.mu.Unlock()

	type signals struct {
		n   *node
		fwd float64 // coordinator-observed forward latency, ms (0 = no data)
		qw  float64 // node-reported queue wait, ms
		dw  float64 // node-reported journal-write latency, ms
	}
	var all []signals
	for _, n := range c.nodes {
		if !n.alive() {
			continue
		}
		sig := signals{n: n, qw: n.Load.QueueWaitMs, dw: n.Load.DiskWriteMs}
		if n.fwd != nil && n.fwd.Samples() >= 3 {
			sig.fwd = n.fwd.Value()
		}
		all = append(all, sig)
	}
	if len(all) < 2 {
		return // "slower than the fleet" needs a fleet to compare against
	}

	collect := func(get func(signals) float64) []float64 {
		var vs []float64
		for _, s := range all {
			if v := get(s); v > 0 {
				vs = append(vs, v)
			}
		}
		return vs
	}
	medians := [3]float64{
		lowerMedian(collect(func(s signals) float64 { return s.fwd })),
		lowerMedian(collect(func(s signals) float64 { return s.qw })),
		lowerMedian(collect(func(s signals) float64 { return s.dw })),
	}

	slowCount := int64(0)
	for _, s := range all {
		vals := [3]float64{s.fwd, s.qw, s.dw}
		latch, clear := false, true
		for i, v := range vals {
			m := medians[i]
			if v <= 0 || m <= 0 {
				continue
			}
			threshold := c.cfg.SlowFactor * m
			if threshold < slowFloorMs {
				threshold = slowFloorMs
			}
			if v > threshold {
				latch = true
			}
			if v > threshold/2 {
				clear = false
			}
		}
		switch {
		case latch && !s.n.Slow:
			s.n.Slow = true
			c.obs.slowTransitions.Inc()
			c.cfg.Logf("fleet: node %s latched slow (fwd %.1fms, queue %.1fms, disk %.1fms)",
				s.n.Name, s.fwd, s.qw, s.dw)
			c.log.Log("fleet_slow", "node", s.n.Name, "slow", true)
		case clear && s.n.Slow:
			s.n.Slow = false
			c.obs.slowTransitions.Inc()
			c.cfg.Logf("fleet: node %s recovered from slow posture", s.n.Name)
			c.log.Log("fleet_slow", "node", s.n.Name, "slow", false)
		}
		if s.n.Slow {
			slowCount++
		}
	}
	c.obs.slowNodes.Set(slowCount)
}

// hedgeDelay is how long a job may run before it earns a hedge:
// the p95 of recent fleet completions once enough samples exist, but
// never below the configured floor.
func (c *Coordinator) hedgeDelay() time.Duration {
	d := c.cfg.Hedge
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.window.Len() >= 8 {
		if p := time.Duration(c.window.Percentile(0.95) * float64(time.Second)); p > d {
			d = p
		}
	}
	return d
}

// hedgeSweep scans for jobs that have outrun the hedge delay and
// launches at most maxHedgesPerSweep hedge copies.
func (c *Coordinator) hedgeSweep() {
	if c.cfg.Hedge <= 0 {
		return
	}
	delay := c.hedgeDelay()
	now := time.Now()

	type target struct {
		id       string
		owner    string
		key      uint64
		deadline time.Time
	}
	var due []target
	c.mu.Lock()
	for id, a := range c.assign {
		if len(due) >= maxHedgesPerSweep {
			break
		}
		if a.created.IsZero() || now.Sub(a.created) < delay {
			continue
		}
		if _, done := c.results[id]; done {
			continue
		}
		if _, hedged := c.hedges[id]; hedged {
			continue
		}
		if !a.deadline.IsZero() && now.After(a.deadline) {
			continue // past its deadline; a second copy helps nobody
		}
		n, ok := c.nodes[a.node]
		if !ok || !n.alive() {
			continue // fencing/failover owns this job's fate
		}
		due = append(due, target{id: id, owner: a.node, key: a.key, deadline: a.deadline})
	}
	c.mu.Unlock()

	for _, t := range due {
		c.hedge(t.id, t.owner, t.key)
	}
}

// hedge launches one hedge copy of job id: confirm the original is
// still running, arm the owner's commit claim, read the owner's durable
// record, and hand a token-2 copy to the best healthy peer. Every
// bail-out is safe — an armed original without a hedge just claims
// unopposed and wins.
func (c *Coordinator) hedge(id, owner string, key uint64) {
	c.mu.Lock()
	n, ok := c.nodes[owner]
	var addr, journal string
	if ok {
		addr, journal = n.Addr, n.Journal
	}
	c.mu.Unlock()
	if !ok {
		return
	}

	// The status poll catches jobs that finished since the sweep
	// snapshot — and captures the result while at it.
	if st, ok := c.pollStatus(addr, id); ok && st.State.Terminal() {
		c.noteTerminal(id, st)
		return
	}

	// Arm the claim gate on the owner BEFORE the hedge copy exists:
	// from this moment the original cannot journal a terminal state
	// without winning the claim, so whatever the journal read below
	// sees, both copies are gated.
	st, armed, err := c.armClaim(addr, id, tokenPrimary)
	if err != nil {
		c.cfg.Logf("fleet: arming claim for %s on %s: %v", id, owner, err)
		return
	}
	if !armed {
		if st.Terminal() {
			if pst, ok := c.pollStatus(addr, id); ok {
				c.noteTerminal(id, pst)
			}
		}
		return // settled, handed off, or mid-commit: no hedge today
	}

	rec, err := server.LoadRecord(journal, id)
	if err != nil {
		c.cfg.Logf("fleet: reading %s record for hedge: %v", id, err)
		return
	}
	if !rec.State.Live() {
		return // settled between arm and read; the claim is now unopposed
	}
	rec.HedgeToken = tokenHedge

	// Healthiest peer first: non-slow ready nodes, never the owner.
	for _, cand := range c.candidates(key) {
		c.mu.Lock()
		name, slow := cand.Name, cand.Slow
		c.mu.Unlock()
		if name == owner || slow {
			continue
		}
		if _, err := c.handoffTo(name, rec); err != nil {
			c.cfg.Logf("fleet: hedging %s to %s: %v", id, name, err)
			continue
		}
		c.mu.Lock()
		c.hedges[id] = hedgeState{node: name, token: tokenHedge}
		c.mu.Unlock()
		c.obs.hedgeLaunched.Inc()
		c.cfg.Logf("fleet: hedged %s: original on %s, hedge on %s", id, owner, name)
		c.log.Log("fleet_hedge", "job", id, "owner", owner, "hedge", name)
		return
	}
	// No taker: the original stays armed and claims unopposed. Harmless.
}

// Claim arbitrates a commit: the first (node, token) pair to claim a
// job wins and may journal its terminal state; every later claimant
// loses and must step aside. An unclaimed unknown job wins by default —
// fail-open, because refusing would wedge a job whose coordinator
// restarted and lost its hedge bookkeeping.
func (c *Coordinator) Claim(id, nodeName string, token uint64) bool {
	c.mu.Lock()
	if w, ok := c.claims[id]; ok {
		win := w.node == nodeName && w.token == token
		c.mu.Unlock()
		if win {
			c.obs.hedgeClaimWins.Inc() // idempotent re-claim by the winner
		} else {
			c.obs.hedgeClaimLoss.Inc()
		}
		return win
	}
	c.claims[id] = claimant{node: nodeName, token: token}
	// Repoint the assignment at the winner and find the losing copy.
	a := c.assign[id]
	loser := ""
	if h, ok := c.hedges[id]; ok {
		if h.node == nodeName {
			loser = a.node
		} else {
			loser = h.node
		}
	} else if a.node != "" && a.node != nodeName {
		loser = a.node
	}
	a.node = nodeName
	c.assign[id] = a
	var loserAddr string
	if loser != "" {
		if n, ok := c.nodes[loser]; ok && n.alive() {
			loserAddr = n.Addr
		}
	}
	c.mu.Unlock()

	c.obs.hedgeClaimWins.Inc()
	c.log.Log("fleet_claim", "job", id, "winner", nodeName, "token", int(token))
	if loserAddr != "" {
		go c.cancelOn(loserAddr, loser, id)
	}
	return true
}

// cancelOn tells the losing copy's node to stop working on the job.
// Best-effort: a missed cancel costs wasted routing, never correctness
// — the loser's own commit claim will tell it to step aside.
func (c *Coordinator) cancelOn(addr, nodeName, id string) {
	resp, err := c.client.Post(addr+"/jobs/"+id+"/cancel", "application/json", nil)
	if err != nil {
		c.cfg.Logf("fleet: cancelling %s on %s: %v", id, nodeName, err)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	c.obs.hedgeCancels.Inc()
	c.log.Log("fleet_hedge_cancel", "job", id, "node", nodeName)
}

// pollStatus fetches one job's status from a node; ok=false on any
// transport or decode trouble.
func (c *Coordinator) pollStatus(addr, id string) (server.Status, bool) {
	resp, err := c.client.Get(addr + "/jobs/" + id)
	if err != nil {
		return server.Status{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return server.Status{}, false
	}
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return server.Status{}, false
	}
	return st, true
}

// armClaim asks a node to gate a job behind the commit claim.
func (c *Coordinator) armClaim(addr, id string, token uint64) (server.State, bool, error) {
	body, _ := json.Marshal(map[string]any{"job": id, "token": token})
	resp, err := c.client.Post(addr+"/fleet/hedge-arm", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return "", false, fmt.Errorf("arm: %d %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	var out struct {
		State server.State `json:"state"`
		Armed bool         `json:"armed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", false, err
	}
	return out.State, out.Armed, nil
}

// claimRequest is the POST /hedge/claim payload a node sends before
// journaling a terminal state for a hedge-gated job.
type claimRequest struct {
	Job   string `json:"job"`
	Node  string `json:"node"`
	Token uint64 `json:"token"`
}

// ClaimClient builds the server.Config.ClaimCommit implementation for a
// worker node: it claims (job, token) at the coordinator on behalf of
// nodeName. A transport failure surfaces as an error — the server
// retries a few times and, for the done path, falls back to a normal
// transient retry, so a briefly unreachable coordinator delays a hedged
// commit rather than corrupting it.
func ClaimClient(coordinator, nodeName string, client *http.Client) func(string, uint64) (bool, error) {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return func(jobID string, token uint64) (bool, error) {
		body, err := json.Marshal(claimRequest{Job: jobID, Node: nodeName, Token: token})
		if err != nil {
			return false, err
		}
		resp, err := client.Post(coordinator+"/hedge/claim", "application/json", bytes.NewReader(body))
		if err != nil {
			return false, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			return false, fmt.Errorf("fleet: claim: %d %s", resp.StatusCode, bytes.TrimSpace(b))
		}
		var out struct {
			Win bool `json:"win"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return false, err
		}
		return out.Win, nil
	}
}
