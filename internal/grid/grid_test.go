package grid

import (
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestDefaultProcess(t *testing.T) {
	if err := DefaultProcess.Validate(); err != nil {
		t.Fatalf("the paper's Figure 1 process should validate: %v", err)
	}
	if DefaultProcess.Pitch() != 3 {
		t.Errorf("pitch = %d, want 3 (two traces between vias)", DefaultProcess.Pitch())
	}
}

func TestProcessValidateRejects(t *testing.T) {
	p := DefaultProcess
	p.TracksBetweenVia = 4 // 100 mils cannot fit 4 tracks plus a 60-mil pad
	if err := p.Validate(); err == nil {
		t.Error("overfull process accepted")
	}
	p = DefaultProcess
	p.TracksBetweenVia = -1
	if err := p.Validate(); err == nil {
		t.Error("negative track count accepted")
	}
}

func TestNewConfig(t *testing.T) {
	c := NewConfig(10, 20, 3, 4)
	if c.Width != 28 || c.Height != 58 {
		t.Errorf("extents %dx%d, want 28x58", c.Width, c.Height)
	}
	if c.ViaCols() != 10 || c.ViaRows() != 20 {
		t.Errorf("via grid %dx%d, want 10x20", c.ViaCols(), c.ViaRows())
	}
	want := []Orientation{Vertical, Horizontal, Vertical, Horizontal}
	for i, o := range c.Layers {
		if o != want[i] {
			t.Errorf("layer %d = %v, want %v", i, o, want[i])
		}
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	bad := []Config{
		{Width: 0, Height: 5, Pitch: 3, Layers: []Orientation{Vertical}},
		{Width: 5, Height: 5, Pitch: 0, Layers: []Orientation{Vertical}},
		{Width: 5, Height: 5, Pitch: 3, Layers: nil},
		{Width: 5, Height: 5, Pitch: 3, Layers: []Orientation{Vertical, Vertical}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
	// A single layer of one orientation is allowed (degenerate but legal).
	one := Config{Width: 5, Height: 5, Pitch: 3, Layers: []Orientation{Vertical}}
	if err := one.Validate(); err != nil {
		t.Errorf("single-layer config rejected: %v", err)
	}
}

func TestViaSiteRoundTrip(t *testing.T) {
	c := NewConfig(10, 10, 3, 2)
	for vx := 0; vx < 10; vx++ {
		for vy := 0; vy < 10; vy++ {
			v := geom.Pt(vx, vy)
			g := c.GridOf(v)
			if !c.IsViaSite(g) {
				t.Fatalf("GridOf(%v) = %v is not a via site", v, g)
			}
			if got := c.ViaOf(g); got != v {
				t.Fatalf("ViaOf(GridOf(%v)) = %v", v, got)
			}
		}
	}
	if c.IsViaSite(geom.Pt(1, 0)) || c.IsViaSite(geom.Pt(0, 2)) || c.IsViaSite(geom.Pt(4, 4)) {
		t.Error("off-grid points reported as via sites")
	}
}

func TestViaOfPanicsOffGrid(t *testing.T) {
	c := NewConfig(10, 10, 3, 2)
	defer func() {
		if recover() == nil {
			t.Error("ViaOf should panic for off-grid points")
		}
	}()
	c.ViaOf(geom.Pt(1, 1))
}

func TestNearestViaSite(t *testing.T) {
	c := NewConfig(10, 10, 3, 2)
	cases := []struct{ in, want geom.Point }{
		{geom.Pt(0, 0), geom.Pt(0, 0)},
		{geom.Pt(1, 1), geom.Pt(0, 0)},
		{geom.Pt(2, 2), geom.Pt(3, 3)},
		{geom.Pt(26, 26), geom.Pt(27, 27)},
		{geom.Pt(27, 25), geom.Pt(27, 24)},
	}
	for _, cse := range cases {
		if got := c.NearestViaSite(cse.in); got != cse.want {
			t.Errorf("NearestViaSite(%v) = %v, want %v", cse.in, got, cse.want)
		}
	}
}

func TestNearestViaSiteAlwaysOnGridQuick(t *testing.T) {
	c := NewConfig(12, 9, 3, 2)
	f := func(x, y uint8) bool {
		p := geom.Pt(int(x)%c.Width, int(y)%c.Height)
		v := c.NearestViaSite(p)
		return c.IsViaSite(v) && v.In(c.Bounds())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestViaDist(t *testing.T) {
	c := NewConfig(10, 10, 3, 2)
	dx, dy := c.ViaDist(geom.Pt(0, 0), geom.Pt(9, 6))
	if dx != 3 || dy != 2 {
		t.Errorf("ViaDist = (%d,%d), want (3,2)", dx, dy)
	}
	dx, dy = c.ViaDist(geom.Pt(6, 3), geom.Pt(0, 3))
	if dx != 2 || dy != 0 {
		t.Errorf("ViaDist = (%d,%d), want (2,0)", dx, dy)
	}
}

func TestChanPosRoundTrip(t *testing.T) {
	c := NewConfig(5, 7, 3, 2)
	for _, o := range []Orientation{Horizontal, Vertical} {
		for x := 0; x < c.Width; x++ {
			for y := 0; y < c.Height; y++ {
				p := geom.Pt(x, y)
				ch, pos := c.ChanPos(o, p)
				if got := c.PointAt(o, ch, pos); got != p {
					t.Fatalf("PointAt(ChanPos(%v)) = %v on %v layer", p, got, o)
				}
				if ch < 0 || ch >= c.ChannelCount(o) || pos < 0 || pos >= c.ChannelLength(o) {
					t.Fatalf("ChanPos(%v) out of range on %v layer", p, o)
				}
			}
		}
	}
}

func TestChanSpan(t *testing.T) {
	c := NewConfig(5, 7, 3, 2)
	r := geom.R(1, 2, 3, 5)
	chans, pos := c.ChanSpan(Horizontal, r)
	if chans != geom.Iv(2, 5) || pos != geom.Iv(1, 3) {
		t.Errorf("Horizontal ChanSpan = %v,%v", chans, pos)
	}
	chans, pos = c.ChanSpan(Vertical, r)
	if chans != geom.Iv(1, 3) || pos != geom.Iv(2, 5) {
		t.Errorf("Vertical ChanSpan = %v,%v", chans, pos)
	}
}

func TestOrientation(t *testing.T) {
	if Horizontal.Opposite() != Vertical || Vertical.Opposite() != Horizontal {
		t.Error("Opposite wrong")
	}
	if Horizontal.String() != "H" || Vertical.String() != "V" {
		t.Error("String wrong")
	}
}
