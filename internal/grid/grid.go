// Package grid defines the routing-grid model of the paper's Section 4:
// a fine routing grid with an embedded, coarser via grid, a stack of
// signal layers with preferred orientations, and the manufacturing
// dimensions of Figure 1 that motivate the grid spacing.
//
// Grid units are dimensionless integers. The via grid is embedded so that
// a via site occurs wherever both coordinates are multiples of Pitch
// (Pitch = TracksBetweenVias + 1; the paper's process allows two traces
// between 100-mil via pads, giving Pitch 3 and the irregular 42/16/16-mil
// physical spacing of Figure 3).
package grid

import (
	"fmt"

	"repro/internal/geom"
)

// Orientation is the preferred trace direction of a signal layer.
// Channels run along the preferred direction: a Horizontal layer's
// channels are rows (indexed by y), a Vertical layer's channels are
// columns (indexed by x).
type Orientation uint8

const (
	Horizontal Orientation = iota
	Vertical
)

func (o Orientation) String() string {
	if o == Horizontal {
		return "H"
	}
	return "V"
}

// Opposite returns the other orientation.
func (o Orientation) Opposite() Orientation {
	if o == Horizontal {
		return Vertical
	}
	return Horizontal
}

// Process captures the board manufacturing dimensions from Figure 1.
// It exists to derive and document the grid model; the router itself
// works purely in grid units.
type Process struct {
	TraceWidthMils   int // minimum trace width (8 in the paper)
	TraceSpaceMils   int // minimum trace-to-trace spacing (8)
	ViaPadMils       int // via pad diameter (60)
	ViaDrillMils     int // via drill diameter (37)
	PinPitchMils     int // minimum pin pitch of any part (100)
	TracksBetweenVia int // routing tracks fitting between adjacent via pads (2)
}

// DefaultProcess is the example process of Figure 1.
var DefaultProcess = Process{
	TraceWidthMils:   8,
	TraceSpaceMils:   8,
	ViaPadMils:       60,
	ViaDrillMils:     37,
	PinPitchMils:     100,
	TracksBetweenVia: 2,
}

// Pitch returns the number of routing grid units between adjacent via
// sites (TracksBetweenVia + 1).
func (p Process) Pitch() int { return p.TracksBetweenVia + 1 }

// Validate checks that the process can actually fit the stated number of
// tracks between via pads.
func (p Process) Validate() error {
	if p.TracksBetweenVia < 0 {
		return fmt.Errorf("grid: negative TracksBetweenVia %d", p.TracksBetweenVia)
	}
	need := p.ViaPadMils + p.TracksBetweenVia*(p.TraceWidthMils+p.TraceSpaceMils) + p.TraceSpaceMils
	if p.PinPitchMils < need {
		return fmt.Errorf("grid: pin pitch %d mils cannot fit %d tracks plus a %d-mil via pad (needs %d mils)",
			p.PinPitchMils, p.TracksBetweenVia, p.ViaPadMils, need)
	}
	return nil
}

// Config describes one routing problem's board geometry: the extent of
// the routing grid, the via-grid pitch, and the layer stack.
type Config struct {
	// Width and Height are the routing-grid extents; valid grid
	// coordinates are 0..Width-1 and 0..Height-1.
	Width, Height int
	// Pitch is the via-grid embedding: grid points with both
	// coordinates divisible by Pitch are via sites.
	Pitch int
	// Layers lists the preferred orientation of each signal layer,
	// outermost first. Power layers are not routed and do not appear.
	Layers []Orientation
}

// NewConfig builds a Config spanning viaCols × viaRows via sites with the
// given pitch and an alternating V/H layer stack of the given depth
// (layer 0 vertical, layer 1 horizontal, ...). Alternating stacks are the
// common practical choice; callers needing a custom stack fill Layers
// directly.
func NewConfig(viaCols, viaRows, pitch, layers int) Config {
	c := Config{
		Width:  (viaCols-1)*pitch + 1,
		Height: (viaRows-1)*pitch + 1,
		Pitch:  pitch,
		Layers: make([]Orientation, layers),
	}
	for i := range c.Layers {
		if i%2 == 0 {
			c.Layers[i] = Vertical
		} else {
			c.Layers[i] = Horizontal
		}
	}
	return c
}

// Validate reports configuration errors: non-positive extents, a pitch
// that does not embed at least one via site, or an empty/unbalanced
// layer stack (routing needs at least one layer of each orientation to
// make L-shaped connections; a single-orientation stack can only route
// straight lines).
func (c Config) Validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("grid: non-positive board extent %dx%d", c.Width, c.Height)
	}
	if c.Pitch <= 0 {
		return fmt.Errorf("grid: non-positive via pitch %d", c.Pitch)
	}
	if len(c.Layers) == 0 {
		return fmt.Errorf("grid: no signal layers")
	}
	var h, v int
	for _, o := range c.Layers {
		if o == Horizontal {
			h++
		} else {
			v++
		}
	}
	if len(c.Layers) > 1 && (h == 0 || v == 0) {
		return fmt.Errorf("grid: layer stack has %d horizontal and %d vertical layers; need at least one of each", h, v)
	}
	return nil
}

// Bounds returns the full board rectangle in grid units.
func (c Config) Bounds() geom.Rect {
	return geom.R(0, 0, c.Width-1, c.Height-1)
}

// ViaCols returns the number of via-grid columns.
func (c Config) ViaCols() int { return (c.Width-1)/c.Pitch + 1 }

// ViaRows returns the number of via-grid rows.
func (c Config) ViaRows() int { return (c.Height-1)/c.Pitch + 1 }

// IsViaSite reports whether grid point p lies on the via grid.
func (c Config) IsViaSite(p geom.Point) bool {
	return p.X%c.Pitch == 0 && p.Y%c.Pitch == 0
}

// ViaOf converts a grid point on the via grid to via coordinates
// (integer quotients of the grid coordinates, as in the paper's via map).
// It panics if p is not a via site: via coordinates of an off-grid point
// are a logic error, not a recoverable condition.
func (c Config) ViaOf(p geom.Point) geom.Point {
	if !c.IsViaSite(p) {
		panic(fmt.Sprintf("grid: %v is not a via site (pitch %d)", p, c.Pitch))
	}
	return geom.Pt(p.X/c.Pitch, p.Y/c.Pitch)
}

// GridOf converts via coordinates back to the grid point of that site.
func (c Config) GridOf(via geom.Point) geom.Point {
	return geom.Pt(via.X*c.Pitch, via.Y*c.Pitch)
}

// NearestViaSite returns the via site closest to grid point p
// (ties resolve toward lower coordinates), clamped to the board.
func (c Config) NearestViaSite(p geom.Point) geom.Point {
	round := func(v, limit int) int {
		q := (v + c.Pitch/2) / c.Pitch * c.Pitch
		if q < 0 {
			q = 0
		}
		if q > limit {
			q = (limit / c.Pitch) * c.Pitch
		}
		return q
	}
	return geom.Pt(round(p.X, c.Width-1), round(p.Y, c.Height-1))
}

// ViaDist returns the separation of two grid points in whole via units
// along each axis (the dx, dy of Sections 6 and 8.1). The points need not
// be via sites; distances are measured in floor-divided via units.
func (c Config) ViaDist(a, b geom.Point) (dx, dy int) {
	dx = absDiff(a.X, b.X) / c.Pitch
	dy = absDiff(a.Y, b.Y) / c.Pitch
	return dx, dy
}

// ChannelCount returns how many channels a layer of orientation o has on
// this board.
func (c Config) ChannelCount(o Orientation) int {
	if o == Horizontal {
		return c.Height
	}
	return c.Width
}

// ChannelLength returns the extent of each channel (number of positions
// along the preferred direction) for orientation o.
func (c Config) ChannelLength(o Orientation) int {
	if o == Horizontal {
		return c.Width
	}
	return c.Height
}

// ChanPos splits grid point p into (channel index, position along
// channel) for a layer of orientation o.
func (c Config) ChanPos(o Orientation, p geom.Point) (ch, pos int) {
	if o == Horizontal {
		return p.Y, p.X
	}
	return p.X, p.Y
}

// PointAt reassembles a grid point from channel index and position for a
// layer of orientation o. It is the inverse of ChanPos.
func (c Config) PointAt(o Orientation, ch, pos int) geom.Point {
	if o == Horizontal {
		return geom.Pt(pos, ch)
	}
	return geom.Pt(ch, pos)
}

// ChanSpan projects rectangle r onto (channel range, position range) for
// orientation o.
func (c Config) ChanSpan(o Orientation, r geom.Rect) (chans, pos geom.Interval) {
	if o == Horizontal {
		return geom.Iv(r.MinY, r.MaxY), geom.Iv(r.MinX, r.MaxX)
	}
	return geom.Iv(r.MinX, r.MaxX), geom.Iv(r.MinY, r.MaxY)
}

func absDiff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}
