package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/board"
	"repro/internal/boardio"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/simfs"
	"repro/internal/stringer"
)

// Load-shedding and lifecycle sentinels; the HTTP layer maps them to
// status codes (429, 503).
var (
	// ErrQueueFull: admission would exceed QueueDepth. The client should
	// back off and retry.
	ErrQueueFull = errors.New("server: job queue full")
	// ErrDraining: the daemon is shutting down and admits nothing.
	ErrDraining = errors.New("server: draining")
	// ErrInternal marks daemon-side admission failures (journal I/O),
	// as opposed to bad job specs.
	ErrInternal = errors.New("server: internal error")
	// ErrDuplicate: Adopt was offered a job ID this node already owns in
	// a live or terminal state (not handed_off, which re-adopts cleanly).
	ErrDuplicate = errors.New("server: job already present")
	// ErrDeadline: the job's remaining deadline budget cannot cover its
	// estimated routing cost. The HTTP layer maps it to 504 Gateway
	// Timeout + Retry-After — a fast-fail at admission beats burning a
	// worker on an answer the client will have stopped waiting for.
	ErrDeadline = errors.New("server: deadline cannot be met")
)

// Submission bounds enforced with 400s (request hardening): deadline_ms
// must be in (0, MaxDeadlineMs] and an explicit "workers" option in
// [1, MaxWorkersOption]. Both are generous — the point is rejecting
// nonsense (negative, zero, or absurd values from buggy or hostile
// clients) before it reaches the queue, not constraining real use.
const (
	MaxDeadlineMs    = int64(24 * 60 * 60 * 1000) // 24h
	MaxWorkersOption = int64(4096)
)

// Config parameterizes a Server. The zero value of every field gets a
// sensible default from New; only JournalDir is required.
type Config struct {
	// NodeName, when set, namespaces this node's job IDs
	// ("job-<name>-000042" instead of "job-000042") so IDs stay unique
	// across a fleet and a handed-off job keeps its identity on the new
	// owner. Standalone daemons leave it empty and keep the old format.
	NodeName string
	// Workers is the routing worker pool size (default 4).
	Workers int
	// CPUSlots bounds the total routing goroutines the daemon may run at
	// once: with a full pool, each of the Workers jobs is allowed at most
	// CPUSlots/Workers intra-board workers (core.Options.Workers, the
	// "workers" job option), so jobs × per-job parallelism can never
	// oversubscribe the machine. Jobs asking for more are clamped at
	// admission, not rejected. Default: GOMAXPROCS, but never below
	// Workers — the pool itself is always allowed to run.
	CPUSlots int
	// QueueDepth bounds the live jobs — queued, running or awaiting
	// retry — the daemon will hold (default 16). Beyond it, Submit sheds
	// load with ErrQueueFull. Jobs recovered from the journal at startup
	// are admitted on top of this bound: they were accepted before the
	// crash, and re-shedding them would turn a restart into data loss.
	QueueDepth int
	// JournalDir is the job journal directory (required; created if
	// missing).
	JournalDir string
	// MaxAttempts bounds executions per job, across daemon restarts
	// (default 3). Each transient failure — conflict, injected fault,
	// panic, checkpoint-write error — costs one attempt.
	MaxAttempts int
	// RetryBase and RetryMax shape the retry backoff: attempt n waits
	// roughly RetryBase·2ⁿ⁻¹, jittered to [d/2, d), capped at RetryMax
	// (defaults 10ms, 2s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetrySeed seeds the jitter RNG, so tests replay schedules. Zero
	// means "derive from entropy": every daemon start jitters its retry
	// schedule differently, so a restarted fleet whose jobs all failed
	// together does not retry in lockstep. Tests pin explicit seeds.
	RetrySeed int64
	// MaxTimeBudget caps the per-job routing time budget; a job asking
	// for more (or for none) gets exactly this much. Zero leaves job
	// budgets alone.
	MaxTimeBudget time.Duration
	// CheckpointEvery is the checkpoint cadence for jobs that don't set
	// their own (default 8 routing attempts).
	CheckpointEvery int
	// BoardHook, when set, is applied to every job's board after restore
	// and before routing — the seam the fault-injection tests use to
	// install interposers (veto schedules, crashers, blockers).
	BoardHook func(*board.Board)
	// OnCrash is invoked when a worker recovers a faultinject.Crash —
	// the simulated-SIGKILL panic. grrd installs os.Exit so the process
	// dies exactly as a real kill would; when nil the crash is treated
	// as one more transient failure and retried.
	OnCrash func(faultinject.Crash)
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
	// Log, when set, receives structured job-lifecycle lines (submit →
	// running → retrying → done/failed) stamped with job IDs. Nil is
	// fine: the obs.Logger is nil-safe.
	Log *obs.Logger
	// Metrics, when set, is the registry the daemon publishes into:
	// queue depth, slots in use, admission rejects, retries by cause,
	// job latency histograms, journal write/replay counts — and, via
	// core.Options.Metrics, the router's own search and phase-timing
	// series. When nil the server still counts into a private registry
	// (the code never branches), it just isn't scraped.
	Metrics *obs.Registry
	// DrainBudget advertises how long a graceful drain may take; it
	// derives the Retry-After header on 503 draining responses
	// (default 30s). grrd wires its -drain-grace flag here.
	DrainBudget time.Duration
	// DiskProbeEvery is how often a disk-degraded daemon re-probes its
	// journal directory with a full atomic write to see whether the
	// disk healed (default 5s; negative disables the probe, leaving the
	// posture latched until restart). It also derives the Retry-After
	// header on 507 disk-degraded responses.
	DiskProbeEvery time.Duration
	// MaxBodyBytes caps the HTTP request body of job submissions,
	// single and batch (default 16 MiB). Oversize requests are refused
	// with 413 before any parsing happens.
	MaxBodyBytes int64
	// ConnCost, when positive, fixes the per-connection routing-cost
	// estimate the deadline admission check uses (remaining budget <
	// conns × estimate → ErrDeadline). Zero (the default) learns the
	// estimate from this node's own completed attempts — an EWMA of
	// attempt seconds per connection — and refuses nothing until at
	// least three attempts have trained it.
	ConnCost time.Duration
	// ClaimCommit, when set, is the fleet's hedged-execution commit
	// gate: before journaling a terminal state for a job whose record
	// carries a hedge token, the node asks the coordinator whether this
	// copy won the first-durable-result race. false means a peer's copy
	// won — the local copy flips to handed_off instead of committing.
	// Nil (standalone, or a fleet without hedging) commits immediately,
	// byte-identically to the pre-hedging paths.
	ClaimCommit func(jobID string, token uint64) (win bool, err error)
}

func (c *Config) setDefaults() error {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.CPUSlots <= 0 {
		c.CPUSlots = runtime.GOMAXPROCS(0)
	}
	if c.CPUSlots < c.Workers {
		c.CPUSlots = c.Workers
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 10 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Second
	}
	if c.RetrySeed == 0 {
		c.RetrySeed = entropySeed()
	}
	if c.DrainBudget <= 0 {
		c.DrainBudget = 30 * time.Second
	}
	if c.DiskProbeEvery == 0 {
		c.DiskProbeEvery = 5 * time.Second
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 8
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.JournalDir == "" {
		return errors.New("server: Config.JournalDir is required")
	}
	return nil
}

// Server is the grrd job daemon: a bounded queue feeding a bounded
// worker pool, with every job mirrored to the on-disk journal.
type Server struct {
	cfg Config
	obs *serverObs
	log *obs.Logger

	// Retry-After values for the load-shedding responses, derived from
	// Config at startup (backoff base, drain budget, disk probe
	// cadence) instead of hardcoded.
	retryAfterFull  string
	retryAfterDrain string
	retryAfterDisk  string

	// diskDegraded latches true when a journal write fails with a disk
	// errno (see disk.go) and clears when the self-probe succeeds.
	diskDegraded atomic.Bool

	// epoch is the journal epoch this node owns; fenced flips true the
	// first time a journal write is refused because the epoch moved on
	// (the fleet coordinator handed this node's jobs to a peer). A
	// fenced node stops admitting and fails its in-flight work without
	// journaling — the authoritative records live elsewhere now.
	epoch  uint64
	fenced atomic.Bool

	// runningN counts attempts executing right now — the heartbeat
	// load report's "running" (the obs gauge tracks the same value for
	// scrapes; this one is readable).
	runningN atomic.Int64

	// parkedN counts disk-parked jobs. They report as queued in Load —
	// they are waiting work a peer could steal — but live outside the
	// queue channel, so the channel length alone undercounts them.
	parkedN atomic.Int64

	// Fail-slow signals (DESIGN §14). queueWait and diskLat feed the
	// heartbeat Load report (milliseconds) so the coordinator can spot
	// a node whose jobs wait too long or whose journal writes drag;
	// connCost learns attempt-seconds-per-connection for the deadline
	// admission estimate.
	queueWait *obs.EWMA
	diskLat   *obs.EWMA
	connCost  *obs.EWMA

	mu   sync.Mutex
	jobs map[string]*Job
	seq  int
	rng  *rand.Rand
	// retained caches completed runs' routers for incremental edits
	// (edit.go); retainedOrder is its FIFO eviction order.
	retained      map[string]*retainedRun
	retainedOrder []string
	// adopting marks job IDs whose adopted record is mid-write, so a
	// second concurrent handoff of the same ID is refused instead of
	// racing the first one's journal write.
	adopting map[string]bool

	// queue carries runnable jobs to workers; slots is the admission
	// semaphore. Every live (non-terminal) job holds one slot, acquired
	// at Submit (or journal recovery) and released at its terminal
	// transition — so both channels' shared capacity bounds live jobs,
	// and sends to queue can never block.
	queue chan *Job
	slots chan struct{}

	draining    atomic.Bool
	drainCtx    context.Context
	drainCancel context.CancelFunc
	wg          sync.WaitGroup
}

// New builds a Server: recovers the journal in cfg.JournalDir, requeues
// every non-terminal job it finds, and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if err := ensureDir(cfg.JournalDir); err != nil {
		return nil, err
	}
	// Adopt the journal's epoch, or stamp a fresh directory with epoch 1.
	// A fenced directory is refused outright: its jobs were handed to
	// peers, and running them again here would duplicate work the fleet
	// already owns elsewhere — a fenced node restarts with a fresh dir.
	epoch, fenced, err := ReadEpoch(cfg.JournalDir)
	if err != nil {
		return nil, err
	}
	if fenced {
		return nil, fmt.Errorf("%w: %s was fenced at epoch %d; start with a fresh journal directory",
			ErrFenced, cfg.JournalDir, epoch)
	}
	if epoch == 0 {
		epoch = 1
		if err := WriteEpoch(cfg.JournalDir, epoch, false); err != nil {
			return nil, err
		}
	}
	o := newServerObs(cfg.Metrics)
	// A crashed probe can leave its scratch file behind; it is never a
	// job record, so sweep it with the stale temp files.
	simfs.Current().Remove(filepath.Join(cfg.JournalDir, diskProbeFile))
	recovered, scan, err := loadJournal(cfg.JournalDir, func(path string, err error) {
		o.journalCorrupt.Inc()
		cfg.Logf("grrd: quarantining corrupt job record %s: %v", path, err)
	})
	if err != nil {
		return nil, err
	}
	o.diskTmpCleaned.Add(int64(scan.tmpCleaned))
	o.journalQuarantined.Add(int64(scan.quarantined))
	if scan.tmpCleaned > 0 || scan.quarantined > 0 {
		cfg.Logf("grrd: journal scan: %d stale tmp removed, %d corrupt records quarantined",
			scan.tmpCleaned, scan.quarantined)
	}
	live := 0
	for _, j := range recovered {
		if j.State.Live() {
			live++
		}
	}

	depth := cfg.QueueDepth + live
	s := &Server{
		cfg:             cfg,
		obs:             o,
		log:             cfg.Log,
		epoch:           epoch,
		retryAfterFull:  retryAfterSeconds(cfg.RetryBase),
		retryAfterDrain: retryAfterSeconds(cfg.DrainBudget),
		retryAfterDisk:  retryAfterSeconds(cfg.DiskProbeEvery),
		jobs:            make(map[string]*Job),
		adopting:        make(map[string]bool),
		retained:        make(map[string]*retainedRun),
		rng:             rand.New(rand.NewSource(cfg.RetrySeed)),
		queue:           make(chan *Job, depth),
		slots:           make(chan struct{}, depth),
		queueWait:       obs.NewEWMA(0.3),
		diskLat:         obs.NewEWMA(0.3),
		connCost:        obs.NewEWMA(0.2),
	}
	s.drainCtx, s.drainCancel = context.WithCancel(context.Background())

	for _, j := range recovered {
		s.jobs[j.ID] = j
		o.journalReplayed.Inc()
		if n := jobSeq(j.ID); n >= s.seq {
			s.seq = n + 1
		}
		if !j.State.Live() {
			// Terminal records republish as history; handed_off records
			// stay visible but are never requeued — a peer owns them.
			continue
		}
		// The job was admitted before the crash; its slot is part of the
		// extended capacity, so this can never block.
		s.slots <- struct{}{}
		prev := j.State
		j.State = StateQueued
		j.created = time.Now()
		j.enqueuedAt = j.created
		// A recovered record carrying a hedge token is one copy of a
		// hedged job: it must still win the commit claim before settling.
		j.claimRequired = j.HedgeToken != 0
		if err := s.saveJob(j); err != nil {
			return nil, err
		}
		o.recovered.Inc()
		cfg.Logf("grrd: recovered %s (%s, attempt %d, %d/%d routed)",
			j.ID, prev, j.Attempt, j.snap.Check.Metrics.Routed, len(j.snap.Conns))
		s.log.Log("job_recovered", "job", j.ID, "prev", string(prev),
			"attempt", j.Attempt, "routed", j.snap.Check.Metrics.Routed)
		s.queue <- j
		s.channelGauges()
	}

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if cfg.DiskProbeEvery > 0 {
		s.wg.Add(1)
		go s.diskProbeLoop()
	}
	return s, nil
}

// jobSeq extracts the sequence number from a job ID — "job-000042" or
// the fleet form "job-<node>-000042" (the node name may itself contain
// dashes; the sequence is always the final segment).
func jobSeq(id string) int {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return -1
	}
	if i := strings.LastIndexByte(rest, '-'); i >= 0 {
		rest = rest[i+1:]
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// newID mints the next job ID. Callers hold the server mutex.
func (s *Server) newID() string {
	n := s.seq
	s.seq++
	if s.cfg.NodeName != "" {
		return fmt.Sprintf("job-%s-%06d", s.cfg.NodeName, n)
	}
	return fmt.Sprintf("job-%06d", n)
}

// Submit admits a job: parse and validate the spec, journal it, queue
// it. It returns the queued job's status, or ErrQueueFull / ErrDraining
// when admission is refused.
func (s *Server) Submit(spec JobSpec) (Status, error) {
	if s.draining.Load() {
		s.obs.rejectDrain.Inc()
		return Status{}, ErrDraining
	}
	if s.fenced.Load() {
		return Status{}, ErrFenced
	}
	if s.diskDegraded.Load() {
		// Admitting a job means promising it a durable record; a degraded
		// disk cannot make that promise.
		s.obs.rejectDisk.Inc()
		return Status{}, ErrDiskDegraded
	}
	budget, err := validateDeadline(spec)
	if err != nil {
		s.obs.rejectSpec.Inc()
		return Status{}, err
	}
	snap, err := buildSnapshot(spec, s.cfg)
	if err != nil {
		s.obs.rejectSpec.Inc()
		return Status{}, err
	}
	var deadline time.Time
	if budget > 0 {
		deadline = time.Now().Add(budget)
		if err := s.admitDeadline(deadline, len(snap.Conns)); err != nil {
			s.obs.deadlineRefused.Inc()
			return Status{}, err
		}
	}

	select {
	case s.slots <- struct{}{}:
	default:
		s.obs.rejectFull.Inc()
		return Status{}, ErrQueueFull
	}

	s.mu.Lock()
	id := s.newID()
	s.mu.Unlock()
	now := time.Now()
	j := &Job{ID: id, State: StateQueued, snap: snap, created: now, Deadline: deadline, enqueuedAt: now}
	rec := *j

	// Journal BEFORE publishing the job in s.jobs: the instant a queued
	// job is visible there, Steal may flip it to handed_off and write its
	// own record — publishing first would race two writers on the same
	// journal file and let Steal release a slot the failed admission path
	// would release again.
	if err := s.saveJob(&rec); err != nil {
		<-s.slots
		s.obs.rejectJournal.Inc()
		s.channelGauges()
		return Status{}, fmt.Errorf("%w: journaling job: %v", ErrInternal, err)
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.mu.Unlock()
	s.obs.submitted.Inc()
	s.queue <- j
	s.channelGauges()
	s.log.Log("job_submitted", "job", id, "conns", len(snap.Conns))
	return rec.status(), nil
}

// buildSnapshot turns a JobSpec into the zero-progress snapshot the job
// is admitted (and journaled) with. A spec error here is permanent: the
// client sent a bad job.
func buildSnapshot(spec JobSpec, cfg Config) (*boardio.Snapshot, error) {
	d, err := boardio.ReadDesign(strings.NewReader(spec.Design))
	if err != nil {
		return nil, fmt.Errorf("server: design: %w", err)
	}
	var conns []core.Connection
	if spec.Conns != "" {
		conns, err = boardio.ReadConnections(strings.NewReader(spec.Conns))
		if err != nil {
			return nil, fmt.Errorf("server: conns: %w", err)
		}
	} else {
		strung, err := stringer.String(d, stringer.Options{})
		if err != nil {
			return nil, fmt.Errorf("server: stringing nets: %w", err)
		}
		conns = strung.Conns
	}

	// Request hardening: an explicit "workers" option must be sane
	// before the clamp below quietly adjusts it — zero, negative and
	// absurd values are client bugs, and a 400 tells the client so.
	if w, ok := spec.Options["workers"]; ok && (w <= 0 || w > MaxWorkersOption) {
		return nil, fmt.Errorf("server: workers option must be in [1, %d], got %d", MaxWorkersOption, w)
	}

	opts := core.DefaultOptions()
	for name, v := range spec.Options {
		if err := boardio.ApplyOption(&opts, name, v); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = cfg.CheckpointEvery
	}
	if cfg.MaxTimeBudget > 0 && (opts.TimeBudget <= 0 || opts.TimeBudget > cfg.MaxTimeBudget) {
		opts.TimeBudget = cfg.MaxTimeBudget
	}
	// Clamp per-job intra-board parallelism (the "workers" option) so a
	// full worker pool cannot oversubscribe the machine. Harmless to the
	// result either way: -jc N is bit-identical to sequential routing.
	if maxJC := cfg.CPUSlots / cfg.Workers; opts.Workers > maxJC {
		opts.Workers = maxJC
	}
	if opts.Workers < 0 {
		opts.Workers = 0
	}
	return &boardio.Snapshot{
		Design: d,
		Conns:  conns,
		Opts:   opts,
		Check:  freshCheckpoint(len(conns)),
	}, nil
}

// Status reports one job.
func (s *Server) Status(id string) (Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Status{}, false
	}
	return j.status(), true
}

// Jobs lists every known job, sorted by ID.
func (s *Server) Jobs() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.status())
	}
	sortStatuses(out)
	return out
}

// Ready reports whether the daemon accepts jobs (false once draining).
func (s *Server) Ready() bool { return !s.draining.Load() }

// Saturated reports whether every admission slot is held by a live job:
// the next Submit would shed load with ErrQueueFull. A saturated node is
// healthy — it is the fleet's steal-from candidate, not a drain-only one.
func (s *Server) Saturated() bool { return len(s.slots) == cap(s.slots) }

// Fenced reports whether a journal write has been refused because the
// epoch moved on — this node's jobs were handed to peers.
func (s *Server) Fenced() bool { return s.fenced.Load() }

// Epoch returns the journal epoch this node adopted at startup.
func (s *Server) Epoch() uint64 { return s.epoch }

// Health condenses the daemon's admission posture into the strings the
// /readyz body and the fleet heartbeat carry. The fleet scheduler keys
// off them: "saturated" nodes are steal-from candidates that will free
// up, "draining" and "fenced" nodes only ever shrink.
const (
	HealthReady     = "ready"
	HealthSaturated = "saturated"
	HealthDraining  = "draining"
	HealthFenced    = "fenced"
	// HealthDiskDegraded: the journal disk refuses writes; the node
	// holds its jobs (parked at their last durable checkpoint) and
	// self-probes, but admits nothing. Unlike draining/fenced it is
	// expected to return — and unlike saturated it is a steal-from
	// candidate whose queue should be moved, not waited on.
	HealthDiskDegraded = "disk_degraded"
)

// Health reports the daemon's current admission posture. Fenced and
// draining outrank disk_degraded: a node that is leaving is leaving,
// whatever its disk thinks.
func (s *Server) Health() string {
	switch {
	case s.fenced.Load():
		return HealthFenced
	case s.draining.Load():
		return HealthDraining
	case s.diskDegraded.Load():
		return HealthDiskDegraded
	case s.Saturated():
		return HealthSaturated
	default:
		return HealthReady
	}
}

// Load is the occupancy report a fleet heartbeat carries: how much work
// this node holds and whether it can take more.
type Load struct {
	Node    string `json:"node,omitempty"` // filled in by the fleet agent
	Epoch   uint64 `json:"epoch,omitempty"`
	Health  string `json:"health"`
	Live    int    `json:"live"`     // jobs holding admission slots
	Queued  int    `json:"queued"`   // jobs waiting for a worker
	Running int    `json:"running"`  // attempts executing right now
	Slots   int    `json:"slots"`    // total admission capacity
	Workers int    `json:"workers"`  // routing worker pool size
	// Disk is "" while the journal disk is healthy and "degraded" once
	// the disk posture latches — a dedicated field (not just Health)
	// because Health is a priority collapse: a draining node's disk
	// state would otherwise be invisible to the coordinator.
	Disk string `json:"disk,omitempty"`
	// QueueWaitMs and DiskWriteMs are the node's fail-slow signals
	// (DESIGN §14): EWMAs of how long jobs sit queued before a worker
	// picks them up, and of journal-write latency. The coordinator
	// compares them across the fleet to latch a slow posture — a node
	// can be "ready" by every health check above and still be the one
	// dragging the tail. Omitted until there is at least one sample.
	QueueWaitMs float64 `json:"queue_wait_ms,omitempty"`
	DiskWriteMs float64 `json:"disk_write_ms,omitempty"`
}

// Load snapshots the node's occupancy for heartbeats and scheduling.
func (s *Server) Load() Load {
	l := Load{
		Epoch:   s.epoch,
		Health:  s.Health(),
		Live:    len(s.slots),
		Queued:  len(s.queue) + int(s.parkedN.Load()),
		Running: int(s.runningN.Load()),
		Slots:   cap(s.slots),
		Workers: s.cfg.Workers,
	}
	if s.diskDegraded.Load() {
		l.Disk = "degraded"
	}
	if s.queueWait.Samples() > 0 {
		l.QueueWaitMs = s.queueWait.Value()
	}
	if s.diskLat.Samples() > 0 {
		l.DiskWriteMs = s.diskLat.Value()
	}
	return l
}

// Steal relinquishes one waiting job to the fleet: the newest queued
// (or disk-parked — work this node cannot run until its disk heals)
// job flips to handed_off (journaled), its admission slot is released,
// and a detached copy of its record — checkpoint included — is
// returned for delivery to a peer. Returns nil when nothing is
// stealable (only running, retrying or terminal jobs here). The stale
// queue-channel entry is skipped by the worker that eventually
// receives it.
func (s *Server) Steal() (*Job, error) {
	s.mu.Lock()
	var victim *Job
	stealable := func(j *Job) bool {
		return j.State == StateQueued || (j.parked && j.State == StateInterrupted)
	}
	for _, j := range s.jobs {
		if !stealable(j) {
			continue
		}
		if victim == nil || j.ID > victim.ID {
			victim = j // LIFO: steal the freshest work, classic work-stealing order
		}
	}
	if victim == nil {
		s.mu.Unlock()
		return nil, nil
	}
	prevState, prevParked := victim.State, victim.parked
	victim.State = StateHandedOff
	victim.parked = false
	rec := *victim
	s.mu.Unlock()

	if err := s.saveJob(&rec); err != nil {
		if errors.Is(err, ErrFenced) || !s.diskDegraded.Load() {
			// Could not journal the handoff — the job stays ours, in the
			// state it was waiting in (a parked victim must go back to
			// parked: there is no queue-channel entry to run it from).
			s.mu.Lock()
			if victim.State == StateHandedOff {
				victim.State = prevState
				victim.parked = prevParked
			}
			s.mu.Unlock()
			return nil, fmt.Errorf("journaling steal of %s: %w", rec.ID, err)
		}
		// Disk-degraded donor: the handoff record cannot be written, but
		// reverting would trap the job on a node that cannot run it —
		// moving queued work OFF a degraded disk is the whole point of
		// the coordinator stealing here. Hand it off anyway and re-write
		// the record when the disk heals. The residual hazard is narrow:
		// a crash+restart before healing re-runs the job from its last
		// durable record, duplicating deterministic work on this node —
		// never producing a different result.
		s.mu.Lock()
		victim.unjournaled = true
		s.mu.Unlock()
		s.cfg.Logf("grrd: handing off %s without a journal record (disk degraded): %v", rec.ID, err)
		s.log.Log("job_stolen_unjournaled", "job", rec.ID, "err", err.Error())
	}
	if prevParked {
		s.parkedN.Add(-1)
	}
	<-s.slots
	s.channelGauges()
	s.obs.stolen.Inc()
	s.log.Log("job_stolen", "job", rec.ID, "attempt", rec.Attempt,
		"routed", rec.snap.Check.Metrics.Routed)
	return &rec, nil
}

// Adopt admits a job handed over by the fleet — a steal from a loaded
// peer, or the recovered record of a fenced node — preserving its ID,
// attempt count and checkpoint, so routing resumes exactly where the
// previous owner durably left off. An ID this node already knows is
// re-adopted only from handed_off (a hand-back after a failed onward
// delivery); any other state is ErrDuplicate.
func (s *Server) Adopt(rec *Job) (Status, error) {
	if s.draining.Load() {
		s.obs.rejectDrain.Inc()
		return Status{}, ErrDraining
	}
	if s.fenced.Load() {
		return Status{}, ErrFenced
	}
	if s.diskDegraded.Load() {
		s.obs.rejectDisk.Inc()
		return Status{}, ErrDiskDegraded
	}
	if rec.ID == "" || rec.snap == nil {
		return Status{}, fmt.Errorf("server: adopt: record missing id or snapshot")
	}

	select {
	case s.slots <- struct{}{}:
	default:
		s.obs.rejectFull.Inc()
		return Status{}, ErrQueueFull
	}

	s.mu.Lock()
	j, exists := s.jobs[rec.ID]
	if exists && j.State != StateHandedOff {
		state := j.State
		s.mu.Unlock()
		<-s.slots
		return Status{}, fmt.Errorf("%w: %s is %s here", ErrDuplicate, rec.ID, state)
	}
	if s.adopting[rec.ID] {
		s.mu.Unlock()
		<-s.slots
		return Status{}, fmt.Errorf("%w: %s adoption already in flight", ErrDuplicate, rec.ID)
	}
	s.adopting[rec.ID] = true
	if !exists {
		j = &Job{ID: rec.ID}
		s.jobs[rec.ID] = j
	}
	// The job stays in handed_off — in transfer, not stealable, skipped
	// by workers — until its adopted record is durable; flipping to
	// queued first would let Steal race this write on the same file.
	j.State = StateHandedOff
	j.Attempt = rec.Attempt
	j.Err = rec.Err
	j.Aborted = rec.Aborted
	j.snap = rec.snap
	j.created = time.Now()
	j.enqueuedAt = j.created
	// The deadline and hedge token travel with the record: the budget is
	// end-to-end and a hedge copy must claim its commit wherever it runs.
	j.Deadline = rec.Deadline
	j.HedgeToken = rec.HedgeToken
	j.claimRequired = rec.HedgeToken != 0
	j.superseded = false
	j.committing = false
	if n := jobSeq(rec.ID); n >= s.seq {
		s.seq = n + 1 // insurance against ID reuse if names ever collide
	}
	out := *j
	out.State = StateQueued
	s.mu.Unlock()

	if err := s.saveJob(&out); err != nil {
		s.mu.Lock()
		delete(s.adopting, rec.ID)
		if !exists {
			delete(s.jobs, rec.ID)
		}
		s.mu.Unlock()
		<-s.slots
		s.channelGauges()
		return Status{}, fmt.Errorf("%w: journaling adopted job: %v", ErrInternal, err)
	}
	s.mu.Lock()
	delete(s.adopting, rec.ID)
	j.State = StateQueued
	s.mu.Unlock()
	s.obs.adopted.Inc()
	s.queue <- j
	s.channelGauges()
	s.log.Log("job_adopted", "job", out.ID, "attempt", out.Attempt,
		"routed", out.snap.Check.Metrics.Routed)
	return out.status(), nil
}

// Drain shuts the daemon down gracefully: admission stops (Ready flips
// false), pending retries and in-flight jobs are checkpointed to the
// journal as interrupted, and the worker pool exits. Running jobs stop
// at their next connection boundary — the router flushes a final
// checkpoint through its sink on the way out, so no committed work is
// lost. ctx bounds the wait; on ctx expiry workers may still be
// running, but the journal is consistent (running jobs simply recover
// as of their last checkpoint).
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return errors.New("server: already draining")
	}
	s.log.Log("drain_begin")

	// Disarm pending retries: a timer we stop before it fires will never
	// enqueue, so its job parks as interrupted.
	s.mu.Lock()
	var park []*Job
	for _, j := range s.jobs {
		if j.State == StateRetrying && j.stopRetry != nil && j.stopRetry() {
			j.stopRetry = nil
			j.State = StateInterrupted
			park = append(park, j)
		}
	}
	recs := make([]Job, len(park))
	for i, j := range park {
		recs[i] = *j
	}
	s.mu.Unlock()
	for i := range recs {
		if err := s.saveJob(&recs[i]); err != nil {
			s.cfg.Logf("grrd: journaling parked %s: %v", recs[i].ID, err)
		}
		s.obs.interrupted.Inc()
		s.log.Log("job_interrupted", "job", recs[i].ID, "parked", true)
	}

	// Cancel the run context: workers stop picking up jobs, and running
	// routers abort at their next connection boundary.
	s.drainCancel()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		s.log.Log("drain_end")
		return nil
	case <-ctx.Done():
		s.log.Log("drain_end", "err", ctx.Err().Error())
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		// Bias shutdown over work: a ready drainCtx always wins, even if
		// the queue is also ready.
		select {
		case <-s.drainCtx.Done():
			return
		default:
		}
		select {
		case <-s.drainCtx.Done():
			return
		case j := <-s.queue:
			s.channelGauges()
			s.runJob(j)
		}
	}
}

// runJob executes one attempt of j and routes the outcome: done,
// interrupted (drain), retry, or failed.
func (s *Server) runJob(j *Job) {
	s.mu.Lock()
	if j.State != StateQueued {
		// The queue entry went stale: the job was stolen by a peer (or
		// otherwise resolved) between enqueue and pickup. Its slot was
		// released by whoever changed the state; nothing to do here.
		s.mu.Unlock()
		return
	}
	j.State = StateRunning
	j.Attempt++
	j.stopRetry = nil
	j.committing = false // a fresh attempt begins; no terminal commit in flight
	attempt := j.Attempt
	var waited time.Duration
	if !j.enqueuedAt.IsZero() {
		waited = time.Since(j.enqueuedAt)
	}
	rec := *j
	s.mu.Unlock()
	s.obs.attempts.Inc()
	s.obs.running.Add(1)
	s.runningN.Add(1)
	defer func() {
		s.obs.running.Add(-1)
		s.runningN.Add(-1)
	}()
	if waited > 0 {
		s.queueWait.Observe(waited.Seconds() * 1000)
		s.obs.queueWaitSeconds.Observe(waited.Seconds())
	}
	s.log.Log("job_running", "job", j.ID, "attempt", attempt)
	if !rec.Deadline.IsZero() && time.Now().After(rec.Deadline) {
		// The deadline expired while the job sat queued: fail fast
		// instead of burning a worker on an answer nobody is waiting for.
		s.obs.deadlineExceeded.Inc()
		s.settle(j, attempt, outcome{permanent: fmt.Errorf(
			"deadline exceeded %v before attempt %d started",
			time.Since(rec.Deadline).Round(time.Millisecond), attempt)})
		return
	}
	if err := s.saveJob(&rec); err != nil {
		// Can't record that the job is running — journal trouble. Treat
		// like any transient fault.
		s.settle(j, attempt, outcome{transient: err, cause: causeJournal})
		return
	}

	t0 := time.Now()
	out := s.execute(j)
	dur := time.Since(t0)
	s.obs.attemptSeconds.Observe(dur.Seconds())
	if out.res != nil && out.res.Metrics.Connections > 0 {
		// Train the deadline-admission estimate on completed attempts:
		// seconds of routing per connection, smoothed.
		s.connCost.Observe(dur.Seconds() / float64(out.res.Metrics.Connections))
	}
	s.settle(j, attempt, out)
}

// outcome is the classified result of one execution attempt. Exactly
// one field is meaningful.
type outcome struct {
	res         *core.Result // finished (possibly incomplete) run
	fingerprint uint64
	auditErr    error
	// retain carries the run's router to the retention cache when the
	// job routed with recordregions; incAdopted/incRerouted are the
	// replay stats of an incremental edit attempt (both zero otherwise).
	retain      *retainedRun
	incAdopted  int
	incRerouted int

	interrupted *core.Result // drain abort; checkpoint already flushed
	transient   error        // retryable failure
	permanent   error        // non-retryable failure

	// cause tags a transient failure for grr_jobs_retried_total (one of
	// the cause* constants in metrics.go).
	cause string
}

// execute runs one routing attempt with panic isolation. A panic —
// from the router, an interposer, or injected faults — is contained to
// this job and classified transient; a faultinject.Crash additionally
// triggers the OnCrash hook (grrd: die like a real SIGKILL).
func (s *Server) execute(j *Job) (out outcome) {
	defer func() {
		if p := recover(); p != nil {
			if c, ok := p.(faultinject.Crash); ok && s.cfg.OnCrash != nil {
				s.cfg.OnCrash(c)
			}
			out = outcome{transient: fmt.Errorf("panic: %v", p), cause: causePanic}
		}
	}()

	s.mu.Lock()
	snap := j.snap
	deadline := j.Deadline
	s.mu.Unlock()

	// Per-attempt context: the drain context, narrowed by the job's
	// deadline when it has one, and cancellable by Supersede when a
	// hedge peer's result wins the commit race. core.RouteContext merges
	// the context deadline into the abort machinery — sooner wins.
	var ctx context.Context
	var cancel context.CancelFunc
	if deadline.IsZero() {
		ctx, cancel = context.WithCancel(s.drainCtx)
	} else {
		ctx, cancel = context.WithDeadline(s.drainCtx, deadline)
	}
	defer cancel()
	s.mu.Lock()
	j.cancelRun = cancel
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		j.cancelRun = nil
		s.mu.Unlock()
	}()

	// Run from a shallow copy: the sink, cadence and registry are
	// runtime-only and must not leak into the journaled snapshot.
	run := *snap
	run.Opts.Metrics = s.obs.reg
	run.Opts.CheckpointSink = func(cp *core.Checkpoint) error {
		next := *snap
		next.Check = cp
		s.mu.Lock()
		j.snap = &next
		rec := *j
		s.mu.Unlock()
		// Through saveJob, not saveJobRecord directly: mid-run checkpoints
		// are journal writes like any other — counted, and refused with
		// ErrFenced once the epoch moves on, which is what stops a zombie
		// from checkpointing over a job a peer now owns.
		return s.saveJob(&rec)
	}

	if !deadline.IsZero() {
		// The last hop of deadline propagation: the remaining end-to-end
		// budget clamps the router's own time budget (before Restore hands
		// the options to the router), so the abort fires at the deadline
		// even if the client asked for more routing time.
		run.Opts.ClampTimeBudget(time.Until(deadline))
	}

	b, r, incremental := s.rerouteIncremental(&run, j)
	if !incremental {
		var err error
		b, r, err = run.Restore()
		if err != nil {
			// The journaled checkpoint does not fit its own design: nothing a
			// retry can fix.
			return outcome{permanent: fmt.Errorf("restore: %w", err)}
		}
	}
	if s.cfg.BoardHook != nil {
		s.cfg.BoardHook(b)
	}

	res := r.RouteContext(ctx)
	switch res.Aborted {
	case core.AbortNone:
		out := outcome{res: &res, fingerprint: b.Fingerprint(), auditErr: b.Audit()}
		if incremental {
			out.incAdopted, out.incRerouted = r.IncStats()
		}
		if run.Opts.RecordRegions && out.auditErr == nil {
			out.retain = &retainedRun{router: r}
		}
		return out
	case core.AbortCancelled:
		return outcome{interrupted: &res}
	case core.AbortTime:
		// Within 10ms of the deadline the two time aborts are the same
		// event (the clamp above set the budget from the deadline); report
		// it as the deadline so clients and metrics see the right cause.
		if !deadline.IsZero() && time.Now().After(deadline.Add(-10*time.Millisecond)) {
			s.obs.deadlineExceeded.Inc()
			return outcome{permanent: fmt.Errorf("deadline exceeded after %d/%d routed", res.Metrics.Routed, res.Metrics.Connections)}
		}
		return outcome{permanent: fmt.Errorf("time budget exhausted after %d/%d routed", res.Metrics.Routed, res.Metrics.Connections)}
	case core.AbortCheckpoint:
		return outcome{transient: fmt.Errorf("checkpoint write: %w", res.Invariant), cause: causeCheckpoint}
	default: // AbortInvariant
		var ce *board.ConflictError
		if errors.As(res.Invariant, &ce) {
			return outcome{transient: fmt.Errorf("rollback conflict: %w", res.Invariant), cause: causeConflict}
		}
		return outcome{permanent: fmt.Errorf("invariant: %w", res.Invariant)}
	}
}

// settle applies an attempt's outcome to the job and journals the
// transition.
func (s *Server) settle(j *Job, attempt int, out outcome) {
	switch {
	case out.res != nil:
		if out.auditErr != nil {
			// A board that fails its final audit is corrupt state, not an
			// answer; retry from the last good checkpoint.
			s.retryOrFail(j, attempt, fmt.Errorf("final audit: %w", out.auditErr), causeAudit)
			return
		}
		// Hedge commit gate (DESIGN §14): a job carrying a hedge token
		// must win the coordinator's first-durable-result claim before
		// its done record may be journaled. Losing means a peer's copy
		// already committed — this copy steps aside as handed_off.
		win, err := s.claimTerminal(j)
		if err != nil {
			s.retryOrFail(j, attempt, fmt.Errorf("hedge commit claim: %w", err), causeHedge)
			return
		}
		if !win {
			s.supersedeFromRun(j, "lost the hedge commit race")
			return
		}
		m := out.res.Metrics
		s.mu.Lock()
		// Fold the final metrics into the snapshot so the journal record
		// carries them; the routes stay at the last checkpoint, which is
		// all a terminal record needs.
		next := *j.snap
		next.Check = checkpointWithMetrics(next.Check, m)
		j.snap = &next
		rec := *j
		s.mu.Unlock()
		rec.State = StateDone
		rec.Err = ""
		rec.Aborted = ""
		rec.Fingerprint = out.fingerprint
		rec.AuditOK = true
		rec.Metrics = &m
		// Journal the terminal record, then free capacity, then publish:
		// anyone who observes the job as done can rely on the journal
		// carrying its result and on its slot being available again.
		if err := s.saveJob(&rec); err != nil {
			s.cfg.Logf("grrd: journaling %s done: %v", j.ID, err)
		}
		<-s.slots
		s.channelGauges()
		s.mu.Lock()
		j.State = rec.State
		j.Err = rec.Err
		j.Aborted = rec.Aborted
		j.Fingerprint = rec.Fingerprint
		j.AuditOK = rec.AuditOK
		j.Metrics = rec.Metrics
		j.incAdopted, j.incRerouted = out.incAdopted, out.incRerouted
		created := j.created
		s.mu.Unlock()
		s.obs.done.Inc()
		s.observeJobDone(created)
		if out.retain != nil {
			// The run recorded regions: keep its router so POST
			// /jobs/{id}/edit can re-route edits incrementally.
			s.retain(j.ID, out.retain)
		}
		if out.incAdopted+out.incRerouted > 0 {
			s.log.Log("job_incremental", "job", j.ID,
				"adopted", out.incAdopted, "rerouted", out.incRerouted)
		}
		s.cfg.Logf("grrd: %s done: %v", j.ID, out.res)
		s.log.Log("job_done", "job", j.ID, "attempt", attempt,
			"routed", m.Routed, "conns", m.Connections,
			"fingerprint", fmt.Sprintf("%016x", rec.Fingerprint))

	case out.interrupted != nil:
		s.mu.Lock()
		superseded := j.superseded
		s.mu.Unlock()
		if superseded {
			// Not a drain: the coordinator cancelled this copy because a
			// hedge peer's result won. Step aside — the winner's journal
			// is the authoritative record.
			s.supersedeFromRun(j, "cancelled: a hedge peer's result won")
			return
		}
		s.mu.Lock()
		j.State = StateInterrupted
		j.Aborted = core.AbortCancelled.String()
		rec := *j
		s.mu.Unlock()
		if err := s.saveJob(&rec); err != nil {
			s.cfg.Logf("grrd: journaling %s interrupted: %v", j.ID, err)
		}
		s.obs.interrupted.Inc()
		s.cfg.Logf("grrd: %s interrupted by drain (%d/%d routed)",
			j.ID, out.interrupted.Metrics.Routed, out.interrupted.Metrics.Connections)
		s.log.Log("job_interrupted", "job", j.ID,
			"routed", out.interrupted.Metrics.Routed, "conns", out.interrupted.Metrics.Connections)
		// The slot is deliberately not released: the job is still live,
		// and the daemon is draining — nothing else will want it.

	case out.transient != nil:
		if errors.Is(out.transient, ErrFenced) {
			// Fenced mid-run (the checkpoint sink was refused): the job now
			// runs on a peer. Fail it locally without retry — every further
			// journal write would be refused too.
			s.fail(j, out.transient)
			return
		}
		if isDiskError(out.transient) {
			// The attempt died because the disk refused a journal or
			// checkpoint write (the failing saveJob already latched the
			// degraded posture). Retrying into the same wall would burn the
			// job's attempts on the machine's fault: park it until the
			// self-probe sees the disk heal.
			s.parkOnDisk(j, out.transient)
			return
		}
		s.retryOrFail(j, attempt, out.transient, out.cause)

	default:
		s.fail(j, out.permanent)
	}
}

// observeJobDone records end-to-end job latency (admission to terminal
// state). Jobs recovered from a journal restart count from recovery
// time — the daemon can only speak for its own lifetime.
func (s *Server) observeJobDone(created time.Time) {
	if !created.IsZero() {
		s.obs.jobSeconds.Observe(time.Since(created).Seconds())
	}
}

// retryOrFail schedules another attempt with jittered exponential
// backoff, or fails the job once attempts are exhausted. During a drain
// the job parks as interrupted instead — a restarted daemon retries it.
func (s *Server) retryOrFail(j *Job, attempt int, cause error, causeTag string) {
	if attempt >= s.cfg.MaxAttempts {
		s.fail(j, fmt.Errorf("attempt %d/%d: %w", attempt, s.cfg.MaxAttempts, cause))
		return
	}

	d := s.backoff(attempt)

	// Journal the retrying state BEFORE arming the timer: a short backoff
	// could otherwise fire requeue while this record is still being
	// written, racing two atomic writes on the same journal file.
	s.mu.Lock()
	j.State = StateRetrying
	j.Err = cause.Error()
	rec := *j
	s.mu.Unlock()
	if err := s.saveJob(&rec); err != nil {
		if errors.Is(err, ErrFenced) {
			// No point scheduling a retry this node may never journal: the
			// peer that adopted the job is the one retrying it now.
			s.fail(j, fmt.Errorf("%w (while retrying: %v)", err, cause))
			return
		}
		s.cfg.Logf("grrd: journaling retrying %s: %v", j.ID, err)
	}

	s.mu.Lock()
	if s.draining.Load() {
		// Drain won the race to this point; it saw no armed timer to
		// stop, so park the job here.
		j.State = StateInterrupted
		rec := *j
		s.mu.Unlock()
		if err := s.saveJob(&rec); err != nil {
			s.cfg.Logf("grrd: journaling parked %s: %v", j.ID, err)
		}
		s.obs.interrupted.Inc()
		s.log.Log("job_interrupted", "job", j.ID, "parked", true)
		return
	}
	t := time.AfterFunc(d, func() { s.requeue(j) })
	j.stopRetry = t.Stop
	s.mu.Unlock()
	s.obs.retry(causeTag)
	s.cfg.Logf("grrd: %s attempt %d failed (%v), retrying in %v", j.ID, attempt, cause, d)
	s.log.Log("job_retrying", "job", j.ID, "attempt", attempt,
		"cause", causeTag, "backoff", d.String(), "err", cause.Error())
}

// backoff computes the jittered delay before retry attempt+1:
// RetryBase·2^(attempt-1) capped at RetryMax, uniformly jittered down
// to half that, so synchronized failures don't retry in lockstep.
func (s *Server) backoff(attempt int) time.Duration {
	d := s.cfg.RetryBase << (attempt - 1)
	if d > s.cfg.RetryMax || d <= 0 {
		d = s.cfg.RetryMax
	}
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	s.mu.Lock()
	jit := s.rng.Int63n(half + 1)
	s.mu.Unlock()
	return time.Duration(half + jit)
}

// requeue moves a retrying job back onto the queue when its backoff
// timer fires.
func (s *Server) requeue(j *Job) {
	s.mu.Lock()
	if j.State != StateRetrying {
		s.mu.Unlock()
		return
	}
	rec := *j
	rec.State = StateQueued
	s.mu.Unlock()
	// Journal the queued record while the job still reads as retrying:
	// a job only becomes stealable once it IS queued, so the write can
	// never race a Steal writing the same file.
	if err := s.saveJob(&rec); err != nil {
		s.cfg.Logf("grrd: journaling requeued %s: %v", j.ID, err)
	}
	s.mu.Lock()
	if j.State != StateRetrying {
		// A drain parked it while the record was being written.
		s.mu.Unlock()
		return
	}
	j.State = StateQueued
	j.stopRetry = nil
	j.enqueuedAt = time.Now()
	s.mu.Unlock()
	s.queue <- j
	s.channelGauges()
	s.log.Log("job_requeued", "job", j.ID, "attempt", rec.Attempt)
}

// fail marks j permanently failed: journal the terminal record, free
// the slot, then publish, so anyone who observes the job as failed can
// rely on the journal agreeing and on its capacity being available.
func (s *Server) fail(j *Job, cause error) {
	if win, err := s.claimTerminal(j); err != nil {
		// The claim arbiter is unreachable from the giving-up path.
		// Commit the failure locally anyway: a failed record can never
		// violate done-in-exactly-one — only done commits race — and if a
		// peer's copy later wins, its journal is authoritative (§14).
		s.cfg.Logf("grrd: %s failing without a commit claim: %v", j.ID, err)
	} else if !win {
		s.supersedeFromRun(j, "lost the hedge commit race")
		return
	}
	s.mu.Lock()
	rec := *j
	s.mu.Unlock()
	rec.State = StateFailed
	rec.Err = cause.Error()
	if err := s.saveJob(&rec); err != nil {
		s.cfg.Logf("grrd: journaling failed %s: %v", j.ID, err)
	}
	<-s.slots
	s.channelGauges()
	s.mu.Lock()
	j.State = rec.State
	j.Err = rec.Err
	created := j.created
	s.mu.Unlock()
	s.obs.failed.Inc()
	s.observeJobDone(created)
	s.cfg.Logf("grrd: %s failed: %v", j.ID, cause)
	s.log.Log("job_failed", "job", j.ID, "attempt", rec.Attempt, "err", cause.Error())
}

// checkpointWithMetrics returns cp with its metrics replaced.
func checkpointWithMetrics(cp *core.Checkpoint, m core.Metrics) *core.Checkpoint {
	next := *cp
	next.Metrics = m
	return &next
}

func ensureDir(dir string) error {
	return simfs.Current().MkdirAll(dir, 0o777)
}

func sortStatuses(sts []Status) {
	sort.Slice(sts, func(a, b int) bool { return sts[a].ID < sts[b].ID })
}
