package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/boardio"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/workload"
)

// testSpec builds a JobSpec from a small generated workload design
// (seeded, so each seed is a distinct but reproducible board), with
// nets strung server-side.
func testSpec(t *testing.T, seed int64, options map[string]int64) JobSpec {
	t.Helper()
	d, err := workload.Generate(workload.TinySpec(seed))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := boardio.WriteDesign(&sb, d); err != nil {
		t.Fatal(err)
	}
	return JobSpec{Design: sb.String(), Options: options}
}

// testConfig returns a Config suitable for fast tests; callers override
// fields as needed.
func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Workers:    1,
		QueueDepth: 4,
		JournalDir: t.TempDir(),
		RetryBase:  time.Millisecond,
		RetryMax:   20 * time.Millisecond,
		Logf:       t.Logf,
	}
}

// baseline routes the spec directly — no daemon, no checkpoints — and
// returns the deterministic final fingerprint and metrics every daemon
// path must reproduce bit-identically.
func baseline(t *testing.T, spec JobSpec, cfg Config) (uint64, core.Metrics) {
	t.Helper()
	if err := cfg.setDefaults(); err != nil {
		t.Fatal(err)
	}
	snap, err := buildSnapshot(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, r, err := snap.Restore()
	if err != nil {
		t.Fatal(err)
	}
	res := r.Route()
	if res.Aborted != core.AbortNone {
		t.Fatalf("baseline run aborted: %v", res)
	}
	if err := b.Audit(); err != nil {
		t.Fatalf("baseline board inconsistent: %v", err)
	}
	return b.Fingerprint(), res.Metrics
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, s *Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := s.Status(id)
		if !ok {
			t.Fatalf("job %s unknown", id)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := s.Status(id)
	t.Fatalf("job %s never reached a terminal state (last: %+v)", id, st)
	return Status{}
}

func drainServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestJournalRoundTrip: a job record survives write→read bit-exactly,
// and corruption or truncation is detected, not silently accepted.
func TestJournalRoundTrip(t *testing.T) {
	cfg := testConfig(t)
	if err := cfg.setDefaults(); err != nil {
		t.Fatal(err)
	}
	snap, err := buildSnapshot(testSpec(t, 5, map[string]int64{"nodebudget": 12345}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	j := &Job{
		ID:      "job-000007",
		State:   StateRetrying,
		Attempt: 2,
		Err:     `transient "quoted" failure`,
		Aborted: "cancelled",
		snap:    snap,
	}

	var buf bytes.Buffer
	if err := writeJobRecord(&buf, j); err != nil {
		t.Fatal(err)
	}
	got, err := readJobRecord(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != j.ID || got.State != j.State || got.Attempt != j.Attempt ||
		got.Err != j.Err || got.Aborted != j.Aborted {
		t.Errorf("round trip changed header:\n got  %+v\n want %+v", got, j)
	}
	if len(got.snap.Conns) != len(snap.Conns) || got.snap.Opts.NodeBudget != 12345 {
		t.Errorf("round trip changed snapshot: %d conns, nodebudget %d",
			len(got.snap.Conns), got.snap.Opts.NodeBudget)
	}

	// Flip one byte mid-file: the whole-file checksum must catch it.
	bad := bytes.Clone(buf.Bytes())
	bad[len(bad)/3] ^= 0x40
	if _, err := readJobRecord(bytes.NewReader(bad)); err == nil {
		t.Error("corrupt record accepted")
	}
	// Truncate: no trailer, must be rejected.
	if _, err := readJobRecord(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("truncated record accepted")
	}
}

// TestSubmitToCompletion: the straight-line path — submit, route, done —
// must finish bit-identically to a direct, daemon-free run.
func TestSubmitToCompletion(t *testing.T) {
	cfg := testConfig(t)
	spec := testSpec(t, 6, nil)
	wantFP, wantM := baseline(t, spec, cfg)

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer drainServer(t, s)

	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued {
		t.Fatalf("submitted job state = %s, want queued", st.State)
	}
	fin := waitTerminal(t, s, st.ID)
	if fin.State != StateDone || fin.AuditOK == nil || !*fin.AuditOK {
		t.Fatalf("job did not finish clean: %+v", fin)
	}
	if fp := fingerprintString(wantFP); fin.Fingerprint != fp {
		t.Errorf("fingerprint = %s, want %s", fin.Fingerprint, fp)
	}
	if *fin.Metrics != wantM {
		t.Errorf("metrics diverged from direct run:\n got  %+v\n want %+v", *fin.Metrics, wantM)
	}

	// The journal's terminal record carries the result too.
	j, err := readJobPath(journalPath(cfg.JournalDir, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateDone || j.Fingerprint != wantFP || !j.AuditOK {
		t.Errorf("journal record wrong: %+v", j)
	}
}

func fingerprintString(fp uint64) string {
	var s Status
	j := Job{State: StateDone, Fingerprint: fp, AuditOK: true}
	s = j.status()
	return s.Fingerprint
}

// TestAdmissionControl: QueueDepth bounds live jobs; beyond it Submit
// sheds load with ErrQueueFull and the HTTP layer answers 429 with a
// Retry-After, instead of queueing unboundedly.
func TestAdmissionControl(t *testing.T) {
	cfg := testConfig(t)
	cfg.QueueDepth = 2
	blk := faultinject.BlockAt(1)
	var first atomic.Bool
	cfg.BoardHook = func(b *board.Board) {
		if first.CompareAndSwap(false, true) {
			b.Interpose(blk)
		}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := testSpec(t, 5, nil)
	st1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick job 1 up and wedge inside a mutation:
	// it now holds a slot as running.
	waitCond(t, blk.Fired, "blocker never fired")
	if _, err := s.Submit(spec); err != nil {
		t.Fatalf("second submit (fills the queue): %v", err)
	}
	if _, err := s.Submit(spec); err != ErrQueueFull {
		t.Fatalf("third submit: err = %v, want ErrQueueFull", err)
	}

	// Same refusal over HTTP: 429 + Retry-After.
	resp := postJob(t, ts.URL, spec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("POST /jobs status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After")
	}

	blk.Release()
	fin := waitTerminal(t, s, st1.ID)
	if fin.State != StateDone {
		t.Fatalf("job 1 state = %s after release: %+v", fin.State, fin)
	}
	drainServer(t, s)
}

func postJob(t *testing.T, base string, spec JobSpec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp
}

func waitCond(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal(msg)
}

// TestDrainCheckpointsAndRecovers is the graceful-shutdown contract
// end-to-end: drain flips readiness, the in-flight job aborts at a
// connection boundary and lands in the journal as interrupted, the
// queued job stays journaled as queued, and a restarted daemon finishes
// both bit-identically to never-interrupted runs.
func TestDrainCheckpointsAndRecovers(t *testing.T) {
	cfg := testConfig(t)
	spec := testSpec(t, 6, map[string]int64{"checkpointevery": 1})
	wantFP, wantM := baseline(t, spec, cfg)

	blk := faultinject.BlockAt(3)
	var first atomic.Bool
	hookCfg := cfg
	hookCfg.BoardHook = func(b *board.Board) {
		if first.CompareAndSwap(false, true) {
			b.Interpose(blk)
		}
	}
	s, err := New(hookCfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	st1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, blk.Fired, "blocker never fired")

	// Drain while job 1 is wedged mid-mutation and job 2 is queued.
	drainErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	go func() { drainErr <- s.Drain(ctx) }()

	// Readiness flips immediately; liveness stays up; admission refuses.
	waitCond(t, func() bool { return !s.Ready() }, "Ready never flipped")
	if resp := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("GET /readyz while draining = %d, want 503", resp.StatusCode)
	}
	if resp := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("GET /healthz while draining = %d, want 200", resp.StatusCode)
	}
	if resp := postJob(t, ts.URL, spec); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST /jobs while draining = %d, want 503", resp.StatusCode)
	}

	blk.Release()
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()

	fin1, ok := s.Status(st1.ID)
	if !ok || fin1.State != StateInterrupted {
		t.Fatalf("drained running job state = %+v, want interrupted", fin1)
	}
	fin2, ok := s.Status(st2.ID)
	if !ok || fin2.State != StateQueued {
		t.Fatalf("drained queued job state = %+v, want queued", fin2)
	}

	// Restart on the same journal: both jobs must complete and match the
	// uninterrupted baseline exactly.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer drainServer(t, s2)
	for _, id := range []string{st1.ID, st2.ID} {
		fin := waitTerminal(t, s2, id)
		if fin.State != StateDone || fin.AuditOK == nil || !*fin.AuditOK {
			t.Fatalf("recovered %s did not finish clean: %+v", id, fin)
		}
		if fin.Fingerprint != fingerprintString(wantFP) {
			t.Errorf("recovered %s fingerprint = %s, want %s", id, fin.Fingerprint, fingerprintString(wantFP))
		}
		if *fin.Metrics != wantM {
			t.Errorf("recovered %s metrics diverged:\n got  %+v\n want %+v", id, *fin.Metrics, wantM)
		}
	}
}

func get(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp
}

// TestRetryOnCheckpointWriteFailure: a journal write that fails mid-run
// aborts the attempt (AbortCheckpoint), is classified transient, and
// the retry — resuming from the last durable record — still converges
// on the baseline result.
func TestRetryOnCheckpointWriteFailure(t *testing.T) {
	cfg := testConfig(t)
	spec := testSpec(t, 6, map[string]int64{"checkpointevery": 1})
	wantFP, _ := baseline(t, spec, cfg)

	// Atomic writes for this one-job, one-worker sequence: #1 queued
	// (Submit), #2 running, #3 the first mid-run checkpoint — fail that
	// one and only that one.
	var writes atomic.Int64
	prev := boardio.SetIOSeam(&boardio.IOSeam{
		WrapWriter: func(w io.Writer) io.Writer {
			if writes.Add(1) == 3 {
				return faultinject.FailWrites(w, 1)
			}
			return w
		},
	})
	defer boardio.SetIOSeam(prev)

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer drainServer(t, s)

	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, s, st.ID)
	if fin.State != StateDone || fin.Attempt != 2 {
		t.Fatalf("job = %+v, want done on attempt 2", fin)
	}
	if fin.Fingerprint != fingerprintString(wantFP) {
		t.Errorf("fingerprint = %s, want %s", fin.Fingerprint, fingerprintString(wantFP))
	}
	if fin.Error != "" {
		t.Errorf("done job still carries error %q", fin.Error)
	}
}

// TestCrashedAttemptIsRetried: a faultinject.Crash — the simulated
// SIGKILL, a panic from inside a board mutation — is contained by the
// worker's panic isolation when no OnCrash hook is installed, and the
// retry resumes from the last durable checkpoint to the exact baseline
// board. (cmd/grrd wires OnCrash to os.Exit and covers the real
// process-death path.)
func TestCrashedAttemptIsRetried(t *testing.T) {
	cfg := testConfig(t)
	spec := testSpec(t, 6, map[string]int64{"checkpointevery": 1})
	wantFP, wantM := baseline(t, spec, cfg)

	var first atomic.Bool
	cfg.BoardHook = func(b *board.Board) {
		if first.CompareAndSwap(false, true) {
			b.Interpose(faultinject.CrashAt(7))
		}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer drainServer(t, s)

	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, s, st.ID)
	if fin.State != StateDone || fin.Attempt != 2 {
		t.Fatalf("job = %+v, want done on attempt 2", fin)
	}
	if fin.Fingerprint != fingerprintString(wantFP) || *fin.Metrics != wantM {
		t.Errorf("crashed-and-retried job diverged from baseline:\n got  %s %+v\n want %s %+v",
			fin.Fingerprint, *fin.Metrics, fingerprintString(wantFP), wantM)
	}
}

// TestAttemptsExhausted: a job that fails on every attempt lands in
// failed with the cause recorded, and its slot is released so the
// queue does not leak capacity.
func TestAttemptsExhausted(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxAttempts = 2
	cfg.QueueDepth = 1
	cfg.BoardHook = func(b *board.Board) {
		b.Interpose(faultinject.CrashAt(1))
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer drainServer(t, s)

	spec := testSpec(t, 5, nil)
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, s, st.ID)
	if fin.State != StateFailed || fin.Attempt != 2 {
		t.Fatalf("job = %+v, want failed after 2 attempts", fin)
	}
	if !strings.Contains(fin.Error, "panic") {
		t.Errorf("failure cause %q does not name the panic", fin.Error)
	}
	// The slot must be free again: with QueueDepth 1, a fresh submit
	// succeeds only if the failed job released it. (It will also fail;
	// admission is what's under test.)
	if _, err := s.Submit(spec); err != nil {
		t.Fatalf("submit after failure: %v (slot leaked?)", err)
	}
}

// TestBadSpecRejected: spec errors are permanent client errors — no
// slot consumed, HTTP 400.
func TestBadSpecRejected(t *testing.T) {
	cfg := testConfig(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, err := s.Submit(JobSpec{Design: "not a design"}); err == nil {
		t.Error("garbage design accepted")
	}
	spec := testSpec(t, 5, map[string]int64{"no-such-option": 1})
	if _, err := s.Submit(spec); err == nil {
		t.Error("unknown option accepted")
	}
	if resp := postJob(t, ts.URL, spec); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("POST bad spec = %d, want 400", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown job = %d, want 404", resp.StatusCode)
	}
}

// TestRecoverySkipsCorruptRecord: one externally damaged journal file
// must not prevent recovery of the healthy jobs next to it.
func TestRecoverySkipsCorruptRecord(t *testing.T) {
	cfg := testConfig(t)
	spec := testSpec(t, 5, nil)

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, st.ID)
	drainServer(t, s)

	// Plant a corrupt record beside the good one.
	if err := writeFile(journalPath(cfg.JournalDir, "job-000999"), "grrdjob v1\ngarbage\n"); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var warned []string
	cfg.Logf = func(format string, args ...any) {
		mu.Lock()
		warned = append(warned, format)
		mu.Unlock()
		t.Logf(format, args...)
	}
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer drainServer(t, s2)
	if _, ok := s2.Status(st.ID); !ok {
		t.Error("healthy job lost during recovery")
	}
	if _, ok := s2.Status("job-000999"); ok {
		t.Error("corrupt record resurrected as a job")
	}
	mu.Lock()
	n := len(warned)
	mu.Unlock()
	if n == 0 {
		t.Error("corrupt record skipped silently")
	}
}

func writeFile(path, content string) error {
	return boardio.AtomicWrite(path, func(w io.Writer) error {
		_, err := io.WriteString(w, content)
		return err
	})
}

// TestJobWorkersClampedToCPUSlots: per-job intra-board parallelism (the
// "workers" job option) is admitted but clamped so that a full worker
// pool can never run more than CPUSlots routing goroutines in total.
func TestJobWorkersClampedToCPUSlots(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 2
	cfg.CPUSlots = 8
	if err := cfg.setDefaults(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		ask, want int64
	}{
		{64, 4}, // 8 slots / 2 pool workers = 4 per job, max
		{4, 4},  // exactly at the bound
		{3, 3},  // within the bound: passes through
		{1, 1},
	}
	for _, c := range cases {
		snap, err := buildSnapshot(testSpec(t, 1, map[string]int64{"workers": c.ask}), cfg)
		if err != nil {
			t.Fatalf("workers=%d rejected: %v", c.ask, err)
		}
		if got := int64(snap.Opts.Workers); got != c.want {
			t.Errorf("workers=%d admitted as %d, want %d", c.ask, got, c.want)
		}
	}
	// Nonsense values are client errors, rejected outright (request
	// hardening), not silently normalized.
	for _, bad := range []int64{0, -5, MaxWorkersOption + 1} {
		if _, err := buildSnapshot(testSpec(t, 1, map[string]int64{"workers": bad}), cfg); err == nil {
			t.Errorf("workers=%d admitted, want rejection", bad)
		}
	}

	// Defaulting: CPUSlots never drops below the pool size, so on any
	// machine a job asking for 1 worker (sequential engine) is untouched.
	one := testConfig(t)
	one.Workers = 4
	if err := one.setDefaults(); err != nil {
		t.Fatal(err)
	}
	if one.CPUSlots < one.Workers {
		t.Errorf("CPUSlots defaulted to %d, below the pool size %d", one.CPUSlots, one.Workers)
	}
}

// TestSubmitConcurrentJobMatchesSequential: a job routed with intra-board
// workers must finish bit-identically to the daemon-free sequential run —
// the grrd-level restatement of the -jc determinism contract.
func TestSubmitConcurrentJobMatchesSequential(t *testing.T) {
	cfg := testConfig(t)
	cfg.CPUSlots = 8 // Workers=1, so jobs may use up to 8 intra-board workers
	spec := testSpec(t, 6, nil)
	wantFP, wantM := baseline(t, spec, cfg)

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer drainServer(t, s)

	st, err := s.Submit(testSpec(t, 6, map[string]int64{"workers": 4}))
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, s, st.ID)
	if fin.State != StateDone || fin.AuditOK == nil || !*fin.AuditOK {
		t.Fatalf("job did not finish clean: %+v", fin)
	}
	if fp := fingerprintString(wantFP); fin.Fingerprint != fp {
		t.Errorf("fingerprint = %s, want %s", fin.Fingerprint, fp)
	}
	if *fin.Metrics != wantM {
		t.Errorf("metrics diverged from sequential run:\n got  %+v\n want %+v", *fin.Metrics, wantM)
	}
}
