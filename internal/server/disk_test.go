package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"
	"time"

	"repro/internal/simfs"
)

// pollUntil spins until cond holds or the deadline passes.
func pollUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestDiskDegradedLifecycle drives the full degraded-posture loop with
// a real injected ENOSPC: the running job parks instead of failing,
// admissions shed with 507 + Retry-After, /readyz says why, and once
// the injection clears the self-probe heals the node — the parked job
// resumes and finishes bit-identical to the baseline, with no operator
// intervention.
func TestDiskDegradedLifecycle(t *testing.T) {
	spec := testSpec(t, 41, map[string]int64{"checkpointevery": 1})
	cfg := testConfig(t)
	cfg.DiskProbeEvery = 20 * time.Millisecond
	wantFP, _ := baseline(t, spec, cfg)

	inj := simfs.NewInjectFS(nil)
	prev := simfs.Swap(inj)
	t.Cleanup(func() { simfs.Swap(prev) })

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Atomic-write creates for this one-job sequence: #1 queued
	// (Submit), #2 running, #3 the first mid-run checkpoint. Fail #3
	// and, sticky, everything after — including the self-probe's
	// scratch file, so the node stays degraded until Disarm.
	inj.Arm(&simfs.Rule{Op: simfs.OpCreate, N: 3, Sticky: true, Err: syscall.ENOSPC})

	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	pollUntil(t, "disk-degraded latch", s.DiskDegraded)
	pollUntil(t, "job to park", func() bool {
		js, _ := s.Status(st.ID)
		return js.State == StateInterrupted
	})
	if h := s.Health(); h != HealthDiskDegraded {
		t.Fatalf("Health = %q, want %q", h, HealthDiskDegraded)
	}
	if d := s.Load().Disk; d != "degraded" {
		t.Fatalf("Load.Disk = %q, want degraded", d)
	}
	if _, err := s.Submit(spec); !errors.Is(err, ErrDiskDegraded) {
		t.Fatalf("Submit while degraded: err = %v, want ErrDiskDegraded", err)
	}

	// /readyz: 503 naming the posture, with a Retry-After hint.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while degraded: %d, want 503", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte(HealthDiskDegraded)) {
		t.Fatalf("readyz body %q does not name disk_degraded", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("readyz while degraded has no Retry-After")
	}

	// POST /jobs: 507 Insufficient Storage with a Retry-After hint.
	payload, _ := json.Marshal(spec)
	resp, err = http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("submit while degraded: %d, want 507", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("507 response has no Retry-After")
	}

	// Clear the injection: the next self-probe must heal the posture and
	// unpark the job, which then finishes on the oracle fingerprint.
	inj.Disarm()
	pollUntil(t, "disk to recover", func() bool { return !s.DiskDegraded() })
	fin := waitTerminal(t, s, st.ID)
	if fin.State != StateDone {
		t.Fatalf("parked job ended %s (%s), want done", fin.State, fin.Error)
	}
	if fin.Fingerprint != fingerprintString(wantFP) {
		t.Errorf("fingerprint after park/unpark = %s, want %s", fin.Fingerprint, fingerprintString(wantFP))
	}
	if h := s.Health(); h != HealthReady {
		t.Errorf("Health after recovery = %q, want ready", h)
	}
	if _, err := s.Submit(testSpec(t, 42, nil)); err != nil {
		t.Errorf("Submit after recovery: %v", err)
	}
}

// TestDiskProbeDisabled: a negative DiskProbeEvery turns the probe
// loop off entirely; a healthy server does no probe I/O either way.
func TestDiskProbeDisabled(t *testing.T) {
	cfg := testConfig(t)
	cfg.DiskProbeEvery = -1

	l := simfs.NewLogFS(cfg.JournalDir)
	prev := simfs.Swap(l)
	t.Cleanup(func() { simfs.Swap(prev) })

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := l.Len()
	time.Sleep(50 * time.Millisecond)
	if n := l.Len(); n != base {
		t.Errorf("idle server with probe disabled did %d filesystem ops", n-base)
	}
	drainServer(t, s)
}
