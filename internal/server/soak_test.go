package server

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/faultinject"
)

// TestServerSoak pushes a few hundred jobs through a small worker pool
// while a seeded fault injector randomly crashes attempts mid-mutation,
// and a drain/restart cycle lands in the middle of the run. The contract
// under all that churn is absolute: no job is lost, none is duplicated,
// every one ends done with a clean audit and the exact fingerprint a
// quiet, daemon-free run of the same spec produces.
func TestServerSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; run without -short")
	}

	const (
		numSeeds = 8
		numJobs  = 300
	)
	cfg := Config{
		Workers:    4,
		QueueDepth: 32,
		JournalDir: t.TempDir(),
		// Crash streaks are random; give jobs enough attempts that the
		// odds of exhausting them are negligible (0.3^12 per job).
		MaxAttempts: 12,
		RetryBase:   time.Millisecond,
		RetryMax:    20 * time.Millisecond,
		Logf:        t.Logf,
	}

	// Baselines first, before fault injection is wired in: one direct
	// run per seed gives the fingerprint every daemon job must match.
	specs := make([]JobSpec, numSeeds)
	wantFP := make([]uint64, numSeeds)
	wantM := make([]core.Metrics, numSeeds)
	for i := range specs {
		specs[i] = testSpec(t, int64(100+i), nil)
		wantFP[i], wantM[i] = baseline(t, specs[i], cfg)
	}

	// Roughly a third of attempt boards get a crasher armed at a random
	// early mutation; the rest run clean. Workers call the hook
	// concurrently, so the rng is mutex-guarded.
	var (
		mu      sync.Mutex
		rng     = rand.New(rand.NewSource(20260805))
		crashes int
	)
	cfg.BoardHook = func(b *board.Board) {
		mu.Lock()
		defer mu.Unlock()
		if rng.Intn(10) < 3 {
			crashes++
			b.Interpose(faultinject.CrashAt(uint64(1 + rng.Intn(40))))
		}
	}

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	jobSeed := make(map[string]int, numJobs)
	submit := func(s *Server, i int) {
		t.Helper()
		for {
			st, err := s.Submit(specs[i%numSeeds])
			if err == nil {
				if _, dup := jobSeed[st.ID]; dup {
					t.Fatalf("duplicate job ID %s", st.ID)
				}
				jobSeed[st.ID] = i % numSeeds
				return
			}
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("submit %d: %v", i, err)
			}
			time.Sleep(time.Millisecond) // shed load, retry
		}
	}

	for i := 0; i < numJobs/2; i++ {
		submit(s, i)
	}

	// Mid-soak restart: drain checkpoints everything in flight, then a
	// fresh server on the same journal picks the backlog up and keeps
	// absorbing the remaining submissions.
	drainServer(t, s)
	s, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := numJobs / 2; i < numJobs; i++ {
		submit(s, i)
	}

	for id := range jobSeed {
		waitTerminal(t, s, id)
	}
	verifySoakPopulation(t, s, jobSeed, wantFP, wantM, crashes)
	drainServer(t, s)

	// The journal alone must reconstruct the whole population, terminal
	// results included: a post-soak restart sees all jobs done with the
	// same fingerprints, not a fresh queue.
	s, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	verifySoakPopulation(t, s, jobSeed, wantFP, wantM, crashes)
	drainServer(t, s)
}

// verifySoakPopulation checks the zero-lost / zero-duplicated / all-done
// contract against per-seed baselines.
func verifySoakPopulation(t *testing.T, s *Server, jobSeed map[string]int, wantFP []uint64, wantM []core.Metrics, crashes int) {
	t.Helper()
	if got := len(s.Jobs()); got != len(jobSeed) {
		t.Errorf("server reports %d jobs, want %d", got, len(jobSeed))
	}
	retried, maxAttempt := 0, 0
	for id, seed := range jobSeed {
		st, ok := s.Status(id)
		if !ok {
			t.Errorf("job %s lost", id)
			continue
		}
		if st.State != StateDone {
			t.Errorf("job %s (seed %d): state %s after attempt %d, err %q",
				id, seed, st.State, st.Attempt, st.Error)
			continue
		}
		if fp := fingerprintString(wantFP[seed]); st.Fingerprint != fp {
			t.Errorf("job %s (seed %d): fingerprint %s, want %s", id, seed, st.Fingerprint, fp)
		}
		if st.AuditOK == nil || !*st.AuditOK {
			t.Errorf("job %s (seed %d): audit not clean: %+v", id, seed, st)
		}
		if st.Metrics == nil || *st.Metrics != wantM[seed] {
			t.Errorf("job %s (seed %d): metrics diverged:\n got  %+v\n want %+v",
				id, seed, st.Metrics, wantM[seed])
		}
		if st.Attempt > 1 {
			retried++
		}
		if st.Attempt > maxAttempt {
			maxAttempt = st.Attempt
		}
	}
	t.Logf("soak: %d jobs done, %d crashers armed, %d jobs retried (max attempt %d)",
		len(jobSeed), crashes, retried, maxAttempt)
}
