package server

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/simfs"
)

// traceServer runs two tiny jobs to completion on a server whose
// journal I/O is recorded through LogFS, returning the op trace, the
// job IDs in submission order, and each job's oracle fingerprint.
func traceServer(t *testing.T) (ops []simfs.Op, ids []string, oracle map[string]string) {
	t.Helper()
	specs := []JobSpec{
		testSpec(t, 31, nil),
		testSpec(t, 32, nil),
	}
	cfg := testConfig(t)
	cfg.DiskProbeEvery = -1 // keep the trace to job+epoch writes only

	fps := make([]string, len(specs))
	for i, spec := range specs {
		fp, _ := baseline(t, spec, cfg)
		fps[i] = fmt.Sprintf("%016x", fp)
	}

	l := simfs.NewLogFS(cfg.JournalDir)
	prev := simfs.Swap(l)
	defer simfs.Swap(prev)

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle = make(map[string]string, len(specs))
	for i, spec := range specs {
		st, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
		oracle[st.ID] = fps[i]
	}
	for _, id := range ids {
		if st := waitTerminal(t, s, id); st.State != StateDone {
			t.Fatalf("traced job %s ended %s: %+v", id, st.State, st)
		}
	}
	drainServer(t, s)
	return l.Ops(), ids, oracle
}

// TestServerCrashEnumeration is the end-to-end crash-consistency
// harness: every op-boundary crash point of a real two-job run, in
// every durability mode, is materialized and recovered with the real
// server.New. Recovery must never see a corrupt record, done jobs must
// stay done with the oracle fingerprint, live jobs must run to the same
// fingerprint, and (strict mode) a job never disappears once durable.
func TestServerCrashEnumeration(t *testing.T) {
	if testing.Short() {
		t.Skip("crash enumeration boots hundreds of servers")
	}
	ops, ids, oracle := traceServer(t)
	if len(ops) == 0 {
		t.Fatal("LogFS recorded no ops — the journal is not going through simfs")
	}
	t.Logf("trace: %d ops, %d crash points per mode", len(ops), len(ops)+1)

	for _, mode := range []simfs.Mode{simfs.ModeFlushed, simfs.ModeStrict, simfs.ModeTorn} {
		everPresent := map[string]bool{}
		for n := 0; n <= len(ops); n++ {
			st := simfs.Replay(ops[:n], mode)
			dir := t.TempDir()
			if err := simfs.Materialize(st, dir); err != nil {
				t.Fatal(err)
			}

			cfg := testConfig(t)
			cfg.JournalDir = dir
			cfg.DiskProbeEvery = -1
			var corrupt []string
			cfg.Logf = func(format string, args ...any) {
				line := fmt.Sprintf(format, args...)
				if strings.Contains(line, "quarantining corrupt job record") {
					corrupt = append(corrupt, line)
				}
				t.Logf("recovery[%v@%d]: %s", mode, n, line)
			}
			srv, err := New(cfg)
			if err != nil {
				t.Fatalf("mode %v crash@%d: recovery refused the journal: %v", mode, n, err)
			}
			if len(corrupt) > 0 {
				t.Fatalf("mode %v crash@%d: recovery saw corrupt records (atomic writes must prevent this): %q",
					mode, n, corrupt)
			}

			for _, id := range ids {
				js, ok := srv.Status(id)
				if !ok {
					if everPresent[id] {
						t.Fatalf("mode %v crash@%d: job %s vanished after being durable", mode, n, id)
					}
					continue
				}
				everPresent[id] = true
				if !js.State.Terminal() {
					js = waitTerminal(t, srv, id)
				}
				if js.State != StateDone {
					t.Fatalf("mode %v crash@%d: job %s recovered to %s (%s), want done",
						mode, n, id, js.State, js.Error)
				}
				if js.Fingerprint != oracle[id] {
					t.Fatalf("mode %v crash@%d: job %s fingerprint %s, oracle %s — recovery is not bit-identical",
						mode, n, id, js.Fingerprint, oracle[id])
				}
			}
			drainServer(t, srv)
		}
		// The full trace must recover both jobs.
		for _, id := range ids {
			if !everPresent[id] {
				t.Errorf("mode %v: job %s never became durable across the whole trace", mode, id)
			}
		}
	}
}

// TestEpochFenceCrashEnumeration: fencing a journal must itself be
// crash-atomic. At every crash point of WriteEpoch+FenceJournal, the
// epoch file parses to exactly the old token, the new fenced token, or
// (strict mode, before the first commit) absence — never garbage — and
// once the fenced token is visible, server.New refuses the directory.
func TestEpochFenceCrashEnumeration(t *testing.T) {
	root := t.TempDir()
	l := simfs.NewLogFS(root)
	prev := simfs.Swap(l)
	if err := WriteEpoch(root, 1, false); err != nil {
		simfs.Swap(prev)
		t.Fatal(err)
	}
	if n, err := FenceJournal(root); err != nil || n != 2 {
		simfs.Swap(prev)
		t.Fatalf("FenceJournal = %d, %v", n, err)
	}
	simfs.Swap(prev)
	ops := l.Ops()

	for _, mode := range []simfs.Mode{simfs.ModeFlushed, simfs.ModeStrict, simfs.ModeTorn} {
		for n := 0; n <= len(ops); n++ {
			st := simfs.Replay(ops[:n], mode)
			dir := t.TempDir()
			if err := simfs.Materialize(st, dir); err != nil {
				t.Fatal(err)
			}
			epoch, fenced, err := ReadEpoch(dir)
			if err != nil {
				t.Fatalf("mode %v crash@%d: ReadEpoch: %v — a torn epoch token escaped AtomicWrite", mode, n, err)
			}
			switch {
			case epoch == 0 && !fenced: // pre-commit, strict mode only
			case epoch == 1 && !fenced: // old owner's token
			case epoch == 2 && fenced: // fence committed
			default:
				t.Fatalf("mode %v crash@%d: epoch (%d, fenced=%v) is neither old nor new token", mode, n, epoch, fenced)
			}
			if fenced {
				cfg := testConfig(t)
				cfg.JournalDir = dir
				cfg.DiskProbeEvery = -1
				if _, err := New(cfg); !errors.Is(err, ErrFenced) {
					t.Fatalf("mode %v crash@%d: New on fenced journal: err = %v, want ErrFenced", mode, n, err)
				}
			}
		}
	}
}
