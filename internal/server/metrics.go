package server

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"time"

	"repro/internal/obs"
)

// Retry causes, as reported in grr_jobs_retried_total{cause=...}. The
// set is closed: every transient classification in execute/settle maps
// to exactly one of these, so the series are pre-registered and the
// label values never come from error text.
const (
	causePanic      = "panic"
	causeCheckpoint = "checkpoint"
	causeConflict   = "conflict"
	causeAudit      = "audit"
	causeJournal    = "journal"
	causeHedge      = "hedge"
)

var retryCauses = [...]string{causePanic, causeCheckpoint, causeConflict, causeAudit, causeJournal, causeHedge}

// serverObs bundles the daemon's registry handles. It always exists —
// New backs it with a private registry when Config.Metrics is nil — so
// call sites never nil-check; a scrape handler is only mounted when the
// operator supplied the registry.
type serverObs struct {
	reg *obs.Registry

	submitted   *obs.Counter
	recovered   *obs.Counter
	done        *obs.Counter
	failed      *obs.Counter
	interrupted *obs.Counter
	attempts    *obs.Counter
	retried     map[string]*obs.Counter

	rejectFull    *obs.Counter
	rejectDrain   *obs.Counter
	rejectSpec    *obs.Counter
	rejectJournal *obs.Counter
	rejectDisk    *obs.Counter

	queueDepth *obs.Gauge
	slotsInUse *obs.Gauge
	running    *obs.Gauge

	attemptSeconds *obs.Histogram
	jobSeconds     *obs.Histogram

	journalWrites    *obs.Counter
	journalWriteErrs *obs.Counter
	journalReplayed  *obs.Counter
	journalCorrupt   *obs.Counter

	stolen        *obs.Counter
	adopted       *obs.Counter
	journalFenced *obs.Counter

	diskDegradedG      *obs.Gauge
	diskErrors         *obs.Counter
	diskProbes         *obs.Counter
	diskProbeFailures  *obs.Counter
	diskRecoveries     *obs.Counter
	diskParked         *obs.Counter
	diskTmpCleaned     *obs.Counter
	journalQuarantined *obs.Counter

	// Tail-latency contract (DESIGN §14): deadline admission/expiry,
	// queue-wait (the node's own fail-slow signal), and the hedge commit
	// claim outcomes seen from this node's side of the protocol.
	deadlineRefused  *obs.Counter
	deadlineExceeded *obs.Counter
	queueWaitSeconds *obs.Histogram
	claimWins        *obs.Counter
	claimLosses      *obs.Counter
	superseded       *obs.Counter
}

func newServerObs(reg *obs.Registry) *serverObs {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	o := &serverObs{
		reg:         reg,
		submitted:   reg.Counter("grr_jobs_submitted_total"),
		recovered:   reg.Counter("grr_jobs_recovered_total"),
		done:        reg.Counter("grr_jobs_done_total"),
		failed:      reg.Counter("grr_jobs_failed_total"),
		interrupted: reg.Counter("grr_jobs_interrupted_total"),
		attempts:    reg.Counter("grr_job_attempts_total"),
		retried:     make(map[string]*obs.Counter, len(retryCauses)),

		rejectFull:    reg.Counter(`grr_admission_rejects_total{reason="queue_full"}`),
		rejectDrain:   reg.Counter(`grr_admission_rejects_total{reason="draining"}`),
		rejectSpec:    reg.Counter(`grr_admission_rejects_total{reason="bad_spec"}`),
		rejectJournal: reg.Counter(`grr_admission_rejects_total{reason="journal"}`),
		rejectDisk:    reg.Counter(`grr_admission_rejects_total{reason="disk_degraded"}`),

		queueDepth: reg.Gauge("grr_queue_depth"),
		slotsInUse: reg.Gauge("grr_slots_in_use"),
		running:    reg.Gauge("grr_jobs_running"),

		attemptSeconds: reg.Histogram("grr_job_attempt_seconds", obs.DurationBuckets()),
		jobSeconds:     reg.Histogram("grr_job_seconds", obs.DurationBuckets()),

		journalWrites:    reg.Counter("grr_journal_writes_total"),
		journalWriteErrs: reg.Counter("grr_journal_write_errors_total"),
		journalReplayed:  reg.Counter("grr_journal_records_replayed_total"),
		journalCorrupt:   reg.Counter("grr_journal_records_corrupt_total"),

		stolen:        reg.Counter("grr_jobs_stolen_total"),
		adopted:       reg.Counter("grr_jobs_adopted_total"),
		journalFenced: reg.Counter("grr_journal_writes_fenced_total"),

		diskDegradedG:      reg.Gauge("grr_disk_degraded"),
		diskErrors:         reg.Counter("grr_disk_errors_total"),
		diskProbes:         reg.Counter("grr_disk_probes_total"),
		diskProbeFailures:  reg.Counter("grr_disk_probe_failures_total"),
		diskRecoveries:     reg.Counter("grr_disk_recoveries_total"),
		diskParked:         reg.Counter("grr_disk_jobs_parked_total"),
		diskTmpCleaned:     reg.Counter("grr_disk_tmp_cleaned_total"),
		journalQuarantined: reg.Counter("grr_journal_records_quarantined_total"),

		deadlineRefused:  reg.Counter("grr_deadline_refused_total"),
		deadlineExceeded: reg.Counter("grr_deadline_exceeded_total"),
		queueWaitSeconds: reg.Histogram("grr_queue_wait_seconds", obs.DurationBuckets()),
		claimWins:        reg.Counter(`grr_hedge_claim_attempts_total{result="win"}`),
		claimLosses:      reg.Counter(`grr_hedge_claim_attempts_total{result="lose"}`),
		superseded:       reg.Counter("grr_hedge_superseded_total"),
	}
	for _, cause := range retryCauses {
		o.retried[cause] = reg.Counter(`grr_jobs_retried_total{cause="` + cause + `"}`)
	}
	return o
}

// retry counts one scheduled retry under its cause; an unknown cause
// (a programming error) is folded into "panic" rather than minting an
// unbounded label value at runtime.
func (o *serverObs) retry(cause string) {
	c, ok := o.retried[cause]
	if !ok {
		c = o.retried[causePanic]
	}
	c.Inc()
}

// claim counts one resolved commit-claim by outcome.
func (o *serverObs) claim(win bool) {
	if win {
		o.claimWins.Inc()
	} else {
		o.claimLosses.Inc()
	}
}

// channels publishes the current queue/slot occupancy. Called after
// every channel operation; the values are instantaneous reads, which is
// all a gauge promises.
func (s *Server) channelGauges() {
	s.obs.queueDepth.Set(int64(len(s.queue)))
	s.obs.slotsInUse.Set(int64(len(s.slots)))
}

// saveJob journals one job record through saveJobRecord, counting
// writes and write failures. All journal writes in the server go
// through here — and every one re-checks the journal epoch first, so a
// node whose jobs were fenced over to a peer (epoch bumped in its
// journal dir) is refused before it can double-commit anything. The
// first refusal latches s.fenced: the node stops admitting and fails
// its in-flight work without journaling.
func (s *Server) saveJob(rec *Job) error {
	if err := checkEpoch(s.cfg.JournalDir, s.epoch); err != nil {
		if errors.Is(err, ErrFenced) && s.fenced.CompareAndSwap(false, true) {
			s.cfg.Logf("grrd: journal fenced, refusing write for %s: %v", rec.ID, err)
			s.log.Log("journal_fenced", "job", rec.ID, "epoch", s.epoch)
		}
		s.obs.journalFenced.Inc()
		// A checkEpoch failure that is not a fence is a failed read of the
		// EPOCH file — possibly the disk, so classify it too.
		s.noteDiskError(err)
		return err
	}
	t0 := time.Now()
	err := saveJobRecord(s.cfg.JournalDir, rec)
	s.obs.journalWrites.Inc()
	if err != nil {
		s.obs.journalWriteErrs.Inc()
		s.noteDiskError(err)
		return err
	}
	// Journal-write latency is the disk half of the node's fail-slow
	// signal; only successful writes train it (failures latch the
	// degraded posture instead — a different failure mode).
	s.diskLat.Observe(float64(time.Since(t0).Microseconds()) / 1000)
	return nil
}

// entropySeed derives a non-zero RNG seed from the OS entropy pool,
// falling back to the wall clock if that fails. Used when
// Config.RetrySeed is zero, so every daemon restart jitters its retry
// schedule differently — a restarted fleet must not retry in lockstep.
func entropySeed() int64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return time.Now().UnixNano() | 1
	}
	n := int64(binary.LittleEndian.Uint64(b[:]))
	if n == 0 {
		n = 1
	}
	return n
}
