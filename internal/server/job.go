// Package server implements grrd, the fault-tolerant board-routing job
// daemon. It composes the router's budget/abort machinery (DESIGN §7)
// and the checkpoint/resume machinery (DESIGN §8) into a long-lived
// service whose failure domain is one job, not the process:
//
//   - jobs are admitted into a bounded queue and run on a bounded worker
//     pool with per-job panic isolation and deadline propagation into
//     core.RouteContext;
//   - a full queue sheds load with ErrQueueFull (HTTP 429 + Retry-After)
//     instead of growing without bound;
//   - transient failures — rollback conflicts surfacing as invariant
//     aborts, injected faults, journal-write errors, panics — are
//     retried with exponential backoff and jitter, resuming from the
//     job's last durable checkpoint;
//   - SIGTERM drains gracefully: admission stops (readiness flips),
//     in-flight jobs abort at their next connection boundary and flush a
//     final checkpoint to the journal;
//   - every job lives in a crash-safe on-disk journal (atomic rename,
//     fsync, whole-file checksum, the boardio snapshot codec), so a
//     SIGKILL'd daemon restarts, resumes interrupted jobs with
//     core.Resume, and — the router being deterministic — finishes them
//     bit-identically to an uninterrupted run.
package server

import (
	"context"
	"fmt"
	"time"

	"repro/internal/boardio"
	"repro/internal/core"
)

// State is a job's lifecycle position. States are serialized verbatim
// into the journal and the HTTP status JSON.
type State string

const (
	// StateQueued: admitted and journaled, waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: a worker is routing it (checkpointing as it goes).
	StateRunning State = "running"
	// StateRetrying: failed transiently; scheduled for another attempt
	// after a backoff.
	StateRetrying State = "retrying"
	// StateInterrupted: checkpointed by a graceful drain. A restarted
	// daemon requeues it, as it does any non-terminal job it finds.
	StateInterrupted State = "interrupted"
	// StateDone: finished; fingerprint, audit verdict and metrics are
	// recorded. A job that ran out of passes with connections unrouted
	// is still done — an infeasible board is an answer, not a failure.
	StateDone State = "done"
	// StateFailed: gave up — attempts exhausted, budget expired, or a
	// permanent error.
	StateFailed State = "failed"
	// StateHandedOff: this node relinquished the job to a peer — stolen
	// while queued, or recovered from this journal by the fleet
	// coordinator after the node was fenced. Locally final: the node
	// never runs it again and a restart never requeues it; the
	// authoritative record now lives in the new owner's journal.
	StateHandedOff State = "handed_off"
)

// Terminal reports whether the job reached a final answer (done or
// failed). A handed-off job is NOT terminal: it is still live somewhere,
// just not here — use Live to ask whether THIS node still owns it.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Live reports whether this node still owns the job: false once it is
// terminal or handed off to a peer. Recovery requeues exactly the live
// records; steal and fencing flip jobs to handed_off so a restarted (or
// zombie) node cannot run work a peer now owns.
func (s State) Live() bool { return !s.Terminal() && s != StateHandedOff }

func parseState(v string) (State, error) {
	switch s := State(v); s {
	case StateQueued, StateRunning, StateRetrying, StateInterrupted, StateDone, StateFailed, StateHandedOff:
		return s, nil
	}
	return "", fmt.Errorf("server: unknown job state %q", v)
}

// JobSpec is the client-facing submission payload: a .brd design, an
// optional pre-strung .con connection list (default: the design's nets
// are strung with the standard chain stringer), and router options as
// the snapshot codec's name→integer map (boardio.OptionNames).
type JobSpec struct {
	Design  string           `json:"design"`
	Conns   string           `json:"conns,omitempty"`
	Options map[string]int64 `json:"options,omitempty"`
	// DeadlineMs, when present, is the end-to-end budget the client
	// grants this job, in milliseconds from admission. It must be
	// positive and at most MaxDeadlineMs — a pointer so "absent" (no
	// deadline, the default) is distinguishable from an explicit zero,
	// which is rejected. Each forwarding hop decrements it by the time
	// already spent, and the worker clamps core.Options.TimeBudget to
	// what is left (DESIGN §14).
	DeadlineMs *int64 `json:"deadline_ms,omitempty"`
}

// Job is the server's record of one routing job. All fields are guarded
// by the owning Server's mutex; snap's Design/Conns/Opts are immutable
// after admission and its Check pointer is swapped wholesale at each
// checkpoint, so a journal writer can serialize a consistent record
// without holding the lock.
type Job struct {
	ID      string
	State   State
	Attempt int    // executions started (1-based; 0 = never ran)
	Err     string // last failure detail, cleared on success
	Aborted string // abort reason of the last interrupted run

	// snap is the routing problem plus its latest durable checkpoint —
	// exactly what a worker (or a restarted daemon) resumes from.
	snap *boardio.Snapshot

	// Results of a completed run.
	Fingerprint uint64
	AuditOK     bool
	Metrics     *core.Metrics

	// Deadline is the absolute wall-clock instant the client's
	// deadline_ms budget expires; zero when the job has none. Journaled
	// (as unix nanos), so a handed-off or recovered job keeps its
	// deadline — the budget is end-to-end, not per-owner.
	Deadline time.Time

	// HedgeToken is the per-job attempt token of the hedged-execution
	// protocol (DESIGN §14): 0 for a normal job, assigned by the fleet
	// coordinator the moment a hedge exists for this job. Journaled
	// when non-zero; a token-carrying record must win the coordinator's
	// commit claim before journaling a terminal state.
	HedgeToken uint64

	// stopRetry cancels a pending backoff timer; nil when none is armed.
	stopRetry func() bool

	// claimRequired marks a job that must win the coordinator's commit
	// claim before its terminal state may be journaled — set by
	// ArmClaim (the coordinator is about to hedge) or on adopting /
	// recovering a record whose HedgeToken is non-zero. Runtime-only:
	// the journaled token re-derives it.
	claimRequired bool

	// superseded marks a copy that lost the hedge race (or was
	// cancelled by the coordinator): its running attempt is aborted and
	// its record flips to handed_off — the winner's journal is
	// authoritative. Runtime-only.
	superseded bool

	// committing marks a terminal commit in flight: set (under the
	// server mutex) the moment claimTerminal decides whether a claim is
	// required, cleared when a fresh attempt starts. ArmClaim refuses to
	// arm a committing job — closing the window where a hedge could be
	// launched between the claim decision and the terminal journal
	// write, which would let both copies commit. Runtime-only.
	committing bool

	// cancelRun aborts the in-flight attempt's context; nil when no
	// attempt is running. Runtime-only.
	cancelRun context.CancelFunc

	// enqueuedAt is when the job last entered the run queue; the
	// queue-wait signal the heartbeat Load reports is measured from it.
	// Runtime-only.
	enqueuedAt time.Time

	// parked marks an interrupted job shelved by the disk-degraded
	// posture (slot retained, requeued when the disk heals). Runtime-
	// only: a restarted daemon requeues interrupted jobs anyway.
	parked bool

	// unjournaled marks a handed_off job whose handoff record could not
	// be written because the disk was degraded; the record is re-written
	// when the disk heals. Runtime-only.
	unjournaled bool

	// created is when this process admitted (or recovered) the job —
	// runtime-only, for the grr_job_seconds latency histogram. Not
	// journaled: a restarted daemon measures from recovery.
	created time.Time

	// editParent and edits mark a job derived via POST /jobs/{id}/edit:
	// the finished job it edits and the design deltas applied. Runtime-
	// only — the snapshot already IS the edited problem, so recovery and
	// handoff route it from scratch; these fields merely enable the
	// incremental fast path while the parent's router is retained.
	editParent string
	edits      []core.Edit

	// incAdopted/incRerouted are the winning attempt's incremental
	// replay stats (both zero when the job routed from scratch).
	// Runtime-only — diagnostics, not part of the result.
	incAdopted  int
	incRerouted int
}

// Status is the JSON shape served by GET /jobs/{id}.
type Status struct {
	ID      string `json:"id"`
	State   State  `json:"state"`
	Attempt int    `json:"attempt"`
	Conns   int    `json:"conns"`
	Routed  int    `json:"routed"`
	Error   string `json:"error,omitempty"`
	Aborted string `json:"aborted,omitempty"`
	// Fingerprint and AuditOK are set once the job is done: the board's
	// FNV-64a fingerprint (the bit-identity witness of crash recovery)
	// and whether the final invariant audit passed.
	Fingerprint string        `json:"fingerprint,omitempty"`
	AuditOK     *bool         `json:"audit_ok,omitempty"`
	Metrics     *core.Metrics `json:"metrics,omitempty"`
	// DeadlineMs is the remaining deadline budget in milliseconds
	// (rounded up, possibly negative once overdue), present only while
	// a deadline-carrying job is still live.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// Status snapshots a detached job record — one produced by
// DecodeRecord or LoadRecords, which nothing else mutates. For jobs
// owned by a live Server, use Server.Status instead.
func (j *Job) Status() Status { return j.status() }

// Snapshot returns the job's routing snapshot (problem + latest durable
// checkpoint). Same detached-record caveat as Status.
func (j *Job) Snapshot() *boardio.Snapshot { return j.snap }

// status snapshots the job. Callers hold the server mutex.
func (j *Job) status() Status {
	st := Status{
		ID:      j.ID,
		State:   j.State,
		Attempt: j.Attempt,
		Error:   j.Err,
		Aborted: j.Aborted,
	}
	if j.snap != nil {
		st.Conns = len(j.snap.Conns)
		st.Routed = j.snap.Check.Metrics.Routed
	}
	if j.Metrics != nil {
		m := *j.Metrics
		st.Metrics = &m
		st.Routed = m.Routed
	}
	if j.State == StateDone {
		st.Fingerprint = fmt.Sprintf("%016x", j.Fingerprint)
		ok := j.AuditOK
		st.AuditOK = &ok
	}
	if !j.Deadline.IsZero() && j.State.Live() {
		ms := time.Until(j.Deadline).Milliseconds()
		if ms == 0 {
			ms = 1 // still ahead of the deadline by sub-millisecond; 0 would read as "none"
		}
		st.DeadlineMs = ms
	}
	return st
}

// freshCheckpoint is the zero-progress checkpoint a job is admitted
// with: no routes, cursor at pass 0 position 0, and the fresh-run
// progress sentinel (conns+1, matching core's initial prevUnrouted), so
// resuming from it is bit-identical to a fresh Route call.
func freshCheckpoint(conns int) *core.Checkpoint {
	return &core.Checkpoint{
		PrevUnrouted: conns + 1,
		Routes:       make([]core.ConnRoute, conns),
	}
}
