package server

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/faultinject"
)

// blockFirstJob wires a blocker into cfg so the FIRST job's first
// segment placement wedges until released — the deterministic way to
// hold one job running while others queue behind it.
func blockFirstJob(cfg *Config) *faultinject.Blocker {
	blk := faultinject.BlockAt(1)
	var first atomic.Bool
	cfg.BoardHook = func(b *board.Board) {
		if first.CompareAndSwap(false, true) {
			b.Interpose(blk)
		}
	}
	return blk
}

// TestStealAndAdoptResume: the node-side halves of work stealing. A
// queued job stolen from one server is journaled handed_off there
// (never to run locally again, even across a restart), and adopting
// its record on a second server finishes it with the baseline
// fingerprint — the handoff moved the job, bit-identically, without
// either node knowing about the other.
func TestStealAndAdoptResume(t *testing.T) {
	cfgA := testConfig(t)
	cfgA.QueueDepth = 4
	blk := blockFirstJob(&cfgA)
	a, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}

	spec := testSpec(t, 5, nil)
	wantFP, wantM := baseline(t, spec, cfgA)

	if _, err := a.Submit(spec); err != nil {
		t.Fatal(err)
	}
	waitCond(t, blk.Fired, "blocker never fired")
	st2, err := a.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st3, err := a.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Newest queued job goes first (LIFO), and the handoff is durable
	// before the record leaves the building.
	rec, err := a.Steal()
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.ID != st3.ID {
		t.Fatalf("stole %+v, want %s", rec, st3.ID)
	}
	if st, _ := a.Status(st3.ID); st.State != StateHandedOff {
		t.Fatalf("donor-side state = %s, want %s", st.State, StateHandedOff)
	}
	onDisk, err := LoadRecords(cfgA.JournalDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range onDisk {
		if j.ID == st3.ID {
			found = true
			if j.State != StateHandedOff {
				t.Errorf("journaled state = %s, want %s", j.State, StateHandedOff)
			}
		}
	}
	if !found {
		t.Fatalf("stolen job %s missing from donor journal", st3.ID)
	}

	// Adopt on a second, unrelated server: the job keeps its identity
	// and finishes exactly like an unmoved run.
	cfgB := testConfig(t)
	cfgB.NodeName = "b"
	b, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	adopted, err := b.Adopt(rec)
	if err != nil {
		t.Fatal(err)
	}
	if adopted.ID != st3.ID {
		t.Fatalf("adopted ID = %s, want %s", adopted.ID, st3.ID)
	}
	fin := waitTerminal(t, b, st3.ID)
	if fin.State != StateDone || fin.Fingerprint != fingerprintString(wantFP) {
		t.Fatalf("adopted job finished %+v, want done with fingerprint %s",
			fin, fingerprintString(wantFP))
	}
	if *fin.Metrics != wantM {
		t.Errorf("adopted metrics diverged:\n got  %+v\n want %+v", *fin.Metrics, wantM)
	}

	// A second adoption of the same record is a duplicate, not a requeue.
	if _, err := b.Adopt(rec); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("re-adopt err = %v, want ErrDuplicate", err)
	}

	// The donor still runs everything it did not give away, and skips
	// the stolen job's stale queue entry.
	blk.Release()
	if fin := waitTerminal(t, a, st2.ID); fin.State != StateDone {
		t.Fatalf("remaining queued job: %+v", fin)
	}
	if st, _ := a.Status(st3.ID); st.State != StateHandedOff {
		t.Fatalf("stolen job ran on the donor after all: %+v", st)
	}
	drainServer(t, a)

	// Across a donor restart the handed-off job stays handed off:
	// recovery requeues live jobs, and this one is not live here.
	a2, err := New(Config{
		Workers: 1, QueueDepth: 4, JournalDir: cfgA.JournalDir,
		RetryBase: time.Millisecond, RetryMax: 20 * time.Millisecond, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := a2.Status(st3.ID); !ok || st.State != StateHandedOff {
		t.Fatalf("after restart, stolen job = %+v, want visible handed_off", st)
	}
	drainServer(t, a2)
	drainServer(t, b)
}

// TestStealNothingQueued: a server with only running (or no) jobs has
// nothing to give.
func TestStealNothingQueued(t *testing.T) {
	cfg := testConfig(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec, err := s.Steal(); err != nil || rec != nil {
		t.Fatalf("steal from empty server = (%v, %v), want (nil, nil)", rec, err)
	}
	drainServer(t, s)
}

// TestJournalFencing is the zombie witness: once the journal epoch is
// bumped with the fenced marker, every journal write this server
// attempts is refused, admission latches shut, in-flight work fails
// without committing, and a fresh daemon refuses to start on the
// fenced directory. The on-disk journal never changes after the fence
// — exactly the guarantee that lets a coordinator hand the jobs to a
// peer without a double-commit window.
func TestJournalFencing(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxAttempts = 1
	blk := blockFirstJob(&cfg)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != 1 {
		t.Fatalf("fresh journal epoch = %d, want 1", got)
	}

	spec := testSpec(t, 5, map[string]int64{"checkpointevery": 1})
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, blk.Fired, "blocker never fired")

	// The coordinator's move: bump the epoch out from under the node.
	epoch, err := FenceJournal(cfg.JournalDir)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("fenced epoch = %d, want 2", epoch)
	}
	before, err := LoadRecords(cfg.JournalDir, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Unblock: the running job's next checkpoint write is refused, and
	// the job fails locally instead of retrying into a wall.
	blk.Release()
	fin := waitTerminal(t, s, st.ID)
	if fin.State != StateFailed || !strings.Contains(fin.Error, "fenced") {
		t.Fatalf("zombie job = %+v, want failed with a fencing error", fin)
	}
	if !s.Fenced() || s.Health() != HealthFenced {
		t.Errorf("server did not latch fenced (health %s)", s.Health())
	}

	// Admission is shut in both layers.
	if _, err := s.Submit(spec); !errors.Is(err, ErrFenced) {
		t.Fatalf("submit on fenced server: err = %v, want ErrFenced", err)
	}
	if _, err := s.Adopt(before[0]); !errors.Is(err, ErrFenced) {
		t.Fatalf("adopt on fenced server: err = %v, want ErrFenced", err)
	}

	// Nothing was committed after the fence: the journal still reads
	// exactly as it did the instant the epoch moved.
	after, err := LoadRecords(cfg.JournalDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("journal grew after fencing: %d → %d records", len(before), len(after))
	}
	for i := range before {
		if before[i].ID != after[i].ID || before[i].State != after[i].State ||
			before[i].Attempt != after[i].Attempt {
			t.Errorf("record %s changed after fencing: %s/%d → %s/%d",
				before[i].ID, before[i].State, before[i].Attempt,
				after[i].State, after[i].Attempt)
		}
	}

	// A restart on the fenced directory is refused outright: the jobs
	// now live elsewhere, and re-running them here would duplicate work.
	if _, err := New(Config{JournalDir: cfg.JournalDir, Logf: t.Logf}); !errors.Is(err, ErrFenced) {
		t.Fatalf("New on fenced dir: err = %v, want ErrFenced", err)
	}
}

// TestReadyzHealthSplit pins the coordinator-facing health contract:
// /readyz names WHY the node is not ready, because the fleet scheduler
// treats the answers differently — saturated nodes are steal-from
// candidates that will free up, draining nodes only ever shrink.
func TestReadyzHealthSplit(t *testing.T) {
	readyz := func(ts *httptest.Server) (int, string, string) {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Retry-After")
	}

	t.Run("saturated", func(t *testing.T) {
		cfg := testConfig(t)
		cfg.QueueDepth = 1
		blk := blockFirstJob(&cfg)
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()

		code, body, _ := readyz(ts)
		if code != http.StatusOK || !strings.Contains(body, HealthReady) {
			t.Fatalf("idle readyz = %d %q, want 200 ready", code, body)
		}

		if _, err := s.Submit(testSpec(t, 5, nil)); err != nil {
			t.Fatal(err)
		}
		waitCond(t, blk.Fired, "blocker never fired")
		code, body, retryAfter := readyz(ts)
		if code != http.StatusServiceUnavailable || !strings.Contains(body, HealthSaturated) {
			t.Fatalf("saturated readyz = %d %q, want 503 saturated", code, body)
		}
		if strings.Contains(body, HealthDraining) {
			t.Errorf("saturated body %q conflates draining", body)
		}
		if retryAfter == "" {
			t.Error("saturated readyz carries no Retry-After")
		}
		blk.Release()
		drainServer(t, s)
	})

	t.Run("draining", func(t *testing.T) {
		cfg := testConfig(t)
		cfg.DrainBudget = 90 * time.Second
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		drainServer(t, s)

		code, body, retryAfter := readyz(ts)
		if code != http.StatusServiceUnavailable || !strings.Contains(body, HealthDraining) {
			t.Fatalf("draining readyz = %d %q, want 503 draining", code, body)
		}
		if strings.Contains(body, HealthSaturated) {
			t.Errorf("draining body %q conflates saturated", body)
		}
		// The drain hint advertises the drain horizon, not the backoff.
		if retryAfter != "90" {
			t.Errorf("draining Retry-After = %q, want 90 (the DrainBudget)", retryAfter)
		}
	})
}

// TestRetryAfterArithmetic pins the Retry-After derivation at the
// DrainBudget (and RetryBase) edges: sub-second budgets round up to
// the HTTP minimum of 1, fractional seconds round up not down, and
// whole seconds pass through exactly.
func TestRetryAfterArithmetic(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{time.Nanosecond, "1"},
		{time.Millisecond, "1"},
		{999 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1001 * time.Millisecond, "2"},
		{1500 * time.Millisecond, "2"},
		{30 * time.Second, "30"},
		{59999 * time.Millisecond, "60"},
		{10 * time.Minute, "600"},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", c.d, got, c.want)
		}
	}

	// End to end at an edge value: a 1ns DrainBudget survives
	// setDefaults (it is positive) and yields the minimum legal hint.
	cfg := testConfig(t)
	cfg.DrainBudget = time.Nanosecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	drainServer(t, s)
	resp := postJob(t, ts.URL, testSpec(t, 5, nil))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining POST /jobs = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After with 1ns DrainBudget = %q, want \"1\"", got)
	}
}
