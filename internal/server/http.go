package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/boardio"
)

// Handler exposes the daemon over HTTP:
//
//	POST /jobs      submit a JobSpec; 202 + Status, or 429/503 with
//	                Retry-After when shedding load or draining
//	GET  /jobs      list all jobs
//	GET  /jobs/{id} one job's Status (404 if unknown)
//	POST /jobs/{id}/edit  derive a new job from a finished one by
//	                applying an edit script (the boardio edits format);
//	                202 + the derived job's Status, 404 unknown parent,
//	                409 parent not done, else the usual submit codes
//	GET  /healthz   liveness: 200 while the process serves at all
//	GET  /readyz    readiness: 200 ready, 503 with a body naming WHY
//	                not — "draining", "saturated" or "fenced" — so a
//	                fleet scheduler can tell "will free up, steal from
//	                it" (saturated) apart from "only ever shrinks"
//	                (draining, fenced)
//	GET  /load      the Load occupancy report (fleet heartbeats relay it)
//	POST /fleet/steal    relinquish one queued job: 200 + its journal
//	                     record, 204 when nothing is stealable
//	POST /fleet/handoff  adopt a journal record from a peer: 202 +
//	                     Status, or the usual 429/503 shedding
//	GET  /metrics   Prometheus text exposition of the daemon's registry
//	                (only when Config.Metrics is set)
//
// Liveness and readiness are deliberately distinct: a draining daemon
// is alive (it is still finishing checkpoints and answering status
// polls) but not ready, so a load balancer stops sending it work
// without killing it mid-drain.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("POST /jobs/batch", s.handleBatch)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /jobs/{id}/edit", s.handleEdit)
	mux.HandleFunc("POST /fleet/hedge-arm", s.handleHedgeArm)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /load", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, s.Load())
	})
	mux.HandleFunc("POST /fleet/steal", s.handleSteal)
	mux.HandleFunc("POST /fleet/handoff", s.handleHandoff)
	if s.cfg.Metrics != nil {
		mux.Handle("GET /metrics", s.cfg.Metrics)
	}
	return mux
}

// handleReadyz answers readiness with a body that names the posture.
// Ready and saturated nodes both keep their place in the fleet ("ready"
// is 200; "saturated" is 503 so plain load balancers back off too, but
// the body tells the fleet scheduler it is a steal-from candidate that
// will free up). Draining and fenced nodes are leaving: drain-only.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	code := http.StatusOK
	if h != HealthReady {
		code = http.StatusServiceUnavailable
	}
	switch h {
	case HealthSaturated:
		// Saturated is temporary: a slot frees after roughly one backoff.
		w.Header().Set("Retry-After", s.retryAfterFull)
	case HealthDraining:
		w.Header().Set("Retry-After", s.retryAfterDrain)
	case HealthDiskDegraded:
		// The disk is re-probed every DiskProbeEvery; that is the soonest
		// the posture can clear.
		w.Header().Set("Retry-After", s.retryAfterDisk)
	}
	s.writeJSON(w, code, map[string]string{"status": h})
}

// handleSteal pops one queued job for a peer: its full journal record
// (checkpoint included) is the response body, in the grrdjob format.
// The job is already flipped to handed_off and journaled before a byte
// is written, so a half-delivered response can at worst strand the job
// as handed_off here — never run it in two places.
func (s *Server) handleSteal(w http.ResponseWriter, r *http.Request) {
	if s.fenced.Load() || s.draining.Load() {
		// A leaving node's queue is the coordinator's to recover wholesale,
		// not to nibble at job by job.
		s.writeJSON(w, http.StatusServiceUnavailable, httpError{Error: "node is " + s.Health()})
		return
	}
	rec, err := s.Steal()
	if err != nil {
		s.writeJSON(w, http.StatusInternalServerError, httpError{Error: err.Error()})
		return
	}
	if rec == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/x-grrdjob")
	if err := rec.EncodeRecord(w); err != nil {
		s.log.Log("http_write_error", "job", rec.ID, "err", err.Error())
	}
}

// handleHandoff adopts a journal record a peer (or the coordinator)
// delivers. The record travels in the same checksummed grrdjob format
// the journal uses on disk — a truncated or corrupted transfer fails
// the checksum and is rejected, it cannot admit a half-job.
func (s *Server) handleHandoff(w http.ResponseWriter, r *http.Request) {
	rec, err := DecodeRecord(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, httpError{Error: "bad job record: " + err.Error()})
		return
	}
	st, err := s.Adopt(rec)
	switch {
	case err == nil:
		s.writeJSON(w, http.StatusAccepted, st)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", s.retryAfterFull)
		s.writeJSON(w, http.StatusTooManyRequests, httpError{Error: err.Error()})
	case errors.Is(err, ErrDraining), errors.Is(err, ErrFenced):
		w.Header().Set("Retry-After", s.retryAfterDrain)
		s.writeJSON(w, http.StatusServiceUnavailable, httpError{Error: err.Error()})
	case errors.Is(err, ErrDiskDegraded):
		w.Header().Set("Retry-After", s.retryAfterDisk)
		s.writeJSON(w, http.StatusInsufficientStorage, httpError{Error: err.Error()})
	case errors.Is(err, ErrDuplicate):
		s.writeJSON(w, http.StatusConflict, httpError{Error: err.Error()})
	case errors.Is(err, ErrInternal):
		s.writeJSON(w, http.StatusInternalServerError, httpError{Error: err.Error()})
	default:
		s.writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
	}
}

// httpError is the uniform error payload.
type httpError struct {
	Error string `json:"error"`
}

// submitCode maps a Submit/Adopt refusal to its HTTP status and
// Retry-After hint ("" = none). One table for single submits, batch
// items and the coordinator's forward path, so the codes can't drift.
func (s *Server) submitCode(err error) (code int, retryAfter string) {
	switch {
	case errors.Is(err, ErrQueueFull):
		// Shed load, don't queue unboundedly: tell the client when to
		// come back. A slot frees after roughly one backoff interval, so
		// the hint derives from Config.RetryBase, not a hardcoded guess.
		return http.StatusTooManyRequests, s.retryAfterFull
	case errors.Is(err, ErrDraining):
		// A draining daemon is gone for good after at most DrainBudget;
		// steer the client to its replacement on that horizon.
		return http.StatusServiceUnavailable, s.retryAfterDrain
	case errors.Is(err, ErrDiskDegraded):
		// 507 Insufficient Storage: the truthful code for "this node's
		// disk cannot take your job". Retry-After points at the next
		// self-probe; fleet clients treat it like any other shed.
		return http.StatusInsufficientStorage, s.retryAfterDisk
	case errors.Is(err, ErrDeadline):
		// 504 Gateway Timeout: the job's deadline budget cannot cover
		// its estimated cost here. Retry-After hints at the backoff
		// horizon — a less loaded (or faster) node may still make it.
		return http.StatusGatewayTimeout, s.retryAfterFull
	case errors.Is(err, ErrInternal):
		return http.StatusInternalServerError, ""
	default:
		// Submit validates the spec before touching the queue, so any
		// other error is a client-side spec problem.
		return http.StatusBadRequest, ""
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.writeJSON(w, bodyErrCode(err), httpError{Error: "bad job spec: " + err.Error()})
		return
	}
	st, err := s.Submit(spec)
	if err == nil {
		s.writeJSON(w, http.StatusAccepted, st)
		return
	}
	code, ra := s.submitCode(err)
	if ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	s.writeJSON(w, code, httpError{Error: err.Error()})
}

// bodyErrCode distinguishes an oversize body (413, the MaxBodyBytes
// hardening cap) from a malformed one (400).
func bodyErrCode(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// BatchRequest is the POST /jobs/batch payload: up to MaxBatchJobs
// specs submitted in one request. DeadlineMs, when set, is the batch
// envelope deadline: every job that does not carry its own deadline_ms
// inherits it. Each job gets the same absolute deadline — the batch
// routes in parallel across the fleet, so dividing the budget among
// jobs would punish parallelism the fleet actually delivers.
type BatchRequest struct {
	Jobs       []JobSpec `json:"jobs"`
	DeadlineMs *int64    `json:"deadline_ms,omitempty"`
}

// BatchResult is one job's outcome within a batch response: its queued
// Status, or the refusal error plus the HTTP status code a single
// submit would have answered with.
type BatchResult struct {
	Status *Status `json:"status,omitempty"`
	Error  string  `json:"error,omitempty"`
	Code   int     `json:"code,omitempty"`
}

// BatchResponse is the POST /jobs/batch response body.
type BatchResponse struct {
	Jobs     []BatchResult `json:"jobs"`
	Accepted int           `json:"accepted"`
}

// MaxBatchJobs bounds one batch request (request hardening: a batch is
// a convenience, not a bulk-import channel).
const MaxBatchJobs = 256

// handleBatch admits N jobs in one request. Admission is per-job:
// accepted jobs run even when siblings are refused, and each item
// reports its own status or refusal. The response is 200 whenever the
// batch itself was well-formed — per-item codes live in the items.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeJSON(w, bodyErrCode(err), httpError{Error: "bad batch: " + err.Error()})
		return
	}
	if len(req.Jobs) == 0 {
		s.writeJSON(w, http.StatusBadRequest, httpError{Error: "bad batch: no jobs"})
		return
	}
	if len(req.Jobs) > MaxBatchJobs {
		s.writeJSON(w, http.StatusBadRequest,
			httpError{Error: fmt.Sprintf("bad batch: %d jobs exceeds the %d maximum", len(req.Jobs), MaxBatchJobs)})
		return
	}
	resp := BatchResponse{Jobs: make([]BatchResult, len(req.Jobs))}
	for i, spec := range req.Jobs {
		if spec.DeadlineMs == nil {
			spec.DeadlineMs = req.DeadlineMs
		}
		st, err := s.Submit(spec)
		if err != nil {
			code, _ := s.submitCode(err)
			resp.Jobs[i] = BatchResult{Error: err.Error(), Code: code}
			continue
		}
		resp.Jobs[i] = BatchResult{Status: &st}
		resp.Accepted++
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// editRequest is the POST /jobs/{id}/edit payload: the edit script in
// the boardio edits text format, plus an optional deadline for the
// derived job.
type editRequest struct {
	Edits      string `json:"edits"`
	DeadlineMs *int64 `json:"deadline_ms,omitempty"`
}

// handleEdit derives a new job from a finished one (DESIGN §15). The
// derived job is an ordinary submission — journaled, retried, pollable
// at GET /jobs/{id} — whose first attempt re-routes incrementally when
// the parent's run is still retained.
func (s *Server) handleEdit(w http.ResponseWriter, r *http.Request) {
	var req editRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeJSON(w, bodyErrCode(err), httpError{Error: "bad edit request: " + err.Error()})
		return
	}
	edits, err := boardio.ReadEdits(strings.NewReader(req.Edits))
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
		return
	}
	st, err := s.SubmitEdit(r.PathValue("id"), edits, req.DeadlineMs)
	switch {
	case err == nil:
		s.writeJSON(w, http.StatusAccepted, st)
	case errors.Is(err, ErrUnknownJob):
		s.writeJSON(w, http.StatusNotFound, httpError{Error: err.Error()})
	case errors.Is(err, ErrNotDone):
		s.writeJSON(w, http.StatusConflict, httpError{Error: err.Error()})
	default:
		code, ra := s.submitCode(err)
		if ra != "" {
			w.Header().Set("Retry-After", ra)
		}
		s.writeJSON(w, code, httpError{Error: err.Error()})
	}
}

// handleCancel is the coordinator's supersede signal: a hedge peer's
// result won, stop working on this copy. Idempotent — cancelling a
// settled or already-superseded job reports its state and changes
// nothing.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Supersede(r.PathValue("id"))
	if err != nil {
		s.writeJSON(w, http.StatusNotFound, httpError{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"state": string(st)})
}

// hedgeArmRequest is the POST /fleet/hedge-arm payload.
type hedgeArmRequest struct {
	Job   string `json:"job"`
	Token uint64 `json:"token"`
}

// handleHedgeArm gates a job behind the coordinator's commit claim
// before a hedge is launched. The response reports the job's state and
// whether the gate actually armed — the coordinator skips the hedge
// when it didn't (job terminal, handed off, or mid-commit).
func (s *Server) handleHedgeArm(w http.ResponseWriter, r *http.Request) {
	var req hedgeArmRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, httpError{Error: "bad arm request: " + err.Error()})
		return
	}
	if req.Job == "" || req.Token == 0 {
		s.writeJSON(w, http.StatusBadRequest, httpError{Error: "bad arm request: job and token are required"})
		return
	}
	st, armed, err := s.ArmClaim(req.Job, req.Token)
	if err != nil {
		s.writeJSON(w, http.StatusNotFound, httpError{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"state": string(st), "armed": armed})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, httpError{Error: "unknown job"})
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

// writeJSON renders one response. An Encode error here is a client
// that hung up mid-body (or a marshal bug) — nothing to send them, but
// not something to drop silently either.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Log("http_write_error", "status", code, "err", err.Error())
	}
}

// retryAfterSeconds renders a duration as the whole-second Retry-After
// value, rounded up and at least 1 — HTTP has no sub-second form.
func retryAfterSeconds(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
