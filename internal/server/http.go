package server

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strconv"
	"time"
)

// Handler exposes the daemon over HTTP:
//
//	POST /jobs      submit a JobSpec; 202 + Status, or 429/503 with
//	                Retry-After when shedding load or draining
//	GET  /jobs      list all jobs
//	GET  /jobs/{id} one job's Status (404 if unknown)
//	GET  /healthz   liveness: 200 while the process serves at all
//	GET  /readyz    readiness: 200 ready, 503 with a body naming WHY
//	                not — "draining", "saturated" or "fenced" — so a
//	                fleet scheduler can tell "will free up, steal from
//	                it" (saturated) apart from "only ever shrinks"
//	                (draining, fenced)
//	GET  /load      the Load occupancy report (fleet heartbeats relay it)
//	POST /fleet/steal    relinquish one queued job: 200 + its journal
//	                     record, 204 when nothing is stealable
//	POST /fleet/handoff  adopt a journal record from a peer: 202 +
//	                     Status, or the usual 429/503 shedding
//	GET  /metrics   Prometheus text exposition of the daemon's registry
//	                (only when Config.Metrics is set)
//
// Liveness and readiness are deliberately distinct: a draining daemon
// is alive (it is still finishing checkpoints and answering status
// polls) but not ready, so a load balancer stops sending it work
// without killing it mid-drain.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /load", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, s.Load())
	})
	mux.HandleFunc("POST /fleet/steal", s.handleSteal)
	mux.HandleFunc("POST /fleet/handoff", s.handleHandoff)
	if s.cfg.Metrics != nil {
		mux.Handle("GET /metrics", s.cfg.Metrics)
	}
	return mux
}

// handleReadyz answers readiness with a body that names the posture.
// Ready and saturated nodes both keep their place in the fleet ("ready"
// is 200; "saturated" is 503 so plain load balancers back off too, but
// the body tells the fleet scheduler it is a steal-from candidate that
// will free up). Draining and fenced nodes are leaving: drain-only.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	code := http.StatusOK
	if h != HealthReady {
		code = http.StatusServiceUnavailable
	}
	switch h {
	case HealthSaturated:
		// Saturated is temporary: a slot frees after roughly one backoff.
		w.Header().Set("Retry-After", s.retryAfterFull)
	case HealthDraining:
		w.Header().Set("Retry-After", s.retryAfterDrain)
	case HealthDiskDegraded:
		// The disk is re-probed every DiskProbeEvery; that is the soonest
		// the posture can clear.
		w.Header().Set("Retry-After", s.retryAfterDisk)
	}
	s.writeJSON(w, code, map[string]string{"status": h})
}

// handleSteal pops one queued job for a peer: its full journal record
// (checkpoint included) is the response body, in the grrdjob format.
// The job is already flipped to handed_off and journaled before a byte
// is written, so a half-delivered response can at worst strand the job
// as handed_off here — never run it in two places.
func (s *Server) handleSteal(w http.ResponseWriter, r *http.Request) {
	if s.fenced.Load() || s.draining.Load() {
		// A leaving node's queue is the coordinator's to recover wholesale,
		// not to nibble at job by job.
		s.writeJSON(w, http.StatusServiceUnavailable, httpError{Error: "node is " + s.Health()})
		return
	}
	rec, err := s.Steal()
	if err != nil {
		s.writeJSON(w, http.StatusInternalServerError, httpError{Error: err.Error()})
		return
	}
	if rec == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/x-grrdjob")
	if err := rec.EncodeRecord(w); err != nil {
		s.log.Log("http_write_error", "job", rec.ID, "err", err.Error())
	}
}

// handleHandoff adopts a journal record a peer (or the coordinator)
// delivers. The record travels in the same checksummed grrdjob format
// the journal uses on disk — a truncated or corrupted transfer fails
// the checksum and is rejected, it cannot admit a half-job.
func (s *Server) handleHandoff(w http.ResponseWriter, r *http.Request) {
	rec, err := DecodeRecord(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, httpError{Error: "bad job record: " + err.Error()})
		return
	}
	st, err := s.Adopt(rec)
	switch {
	case err == nil:
		s.writeJSON(w, http.StatusAccepted, st)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", s.retryAfterFull)
		s.writeJSON(w, http.StatusTooManyRequests, httpError{Error: err.Error()})
	case errors.Is(err, ErrDraining), errors.Is(err, ErrFenced):
		w.Header().Set("Retry-After", s.retryAfterDrain)
		s.writeJSON(w, http.StatusServiceUnavailable, httpError{Error: err.Error()})
	case errors.Is(err, ErrDiskDegraded):
		w.Header().Set("Retry-After", s.retryAfterDisk)
		s.writeJSON(w, http.StatusInsufficientStorage, httpError{Error: err.Error()})
	case errors.Is(err, ErrDuplicate):
		s.writeJSON(w, http.StatusConflict, httpError{Error: err.Error()})
	case errors.Is(err, ErrInternal):
		s.writeJSON(w, http.StatusInternalServerError, httpError{Error: err.Error()})
	default:
		s.writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
	}
}

// httpError is the uniform error payload.
type httpError struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.writeJSON(w, http.StatusBadRequest, httpError{Error: "bad job spec: " + err.Error()})
		return
	}
	st, err := s.Submit(spec)
	switch {
	case err == nil:
		s.writeJSON(w, http.StatusAccepted, st)
	case errors.Is(err, ErrQueueFull):
		// Shed load, don't queue unboundedly: tell the client when to
		// come back. A slot frees after roughly one backoff interval, so
		// the hint derives from Config.RetryBase, not a hardcoded guess.
		w.Header().Set("Retry-After", s.retryAfterFull)
		s.writeJSON(w, http.StatusTooManyRequests, httpError{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		// A draining daemon is gone for good after at most DrainBudget;
		// steer the client to its replacement on that horizon.
		w.Header().Set("Retry-After", s.retryAfterDrain)
		s.writeJSON(w, http.StatusServiceUnavailable, httpError{Error: err.Error()})
	case errors.Is(err, ErrDiskDegraded):
		// 507 Insufficient Storage: the truthful code for "this node's
		// disk cannot take your job". Retry-After points at the next
		// self-probe; fleet clients treat it like any other shed.
		w.Header().Set("Retry-After", s.retryAfterDisk)
		s.writeJSON(w, http.StatusInsufficientStorage, httpError{Error: err.Error()})
	case errors.Is(err, ErrInternal):
		s.writeJSON(w, http.StatusInternalServerError, httpError{Error: err.Error()})
	default:
		// Submit validates the spec before touching the queue, so any
		// other error is a client-side spec problem.
		s.writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, httpError{Error: "unknown job"})
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

// writeJSON renders one response. An Encode error here is a client
// that hung up mid-body (or a marshal bug) — nothing to send them, but
// not something to drop silently either.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Log("http_write_error", "status", code, "err", err.Error())
	}
}

// retryAfterSeconds renders a duration as the whole-second Retry-After
// value, rounded up and at least 1 — HTTP has no sub-second form.
func retryAfterSeconds(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
