package server

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Handler exposes the daemon over HTTP:
//
//	POST /jobs      submit a JobSpec; 202 + Status, or 429/503 with
//	                Retry-After when shedding load or draining
//	GET  /jobs      list all jobs
//	GET  /jobs/{id} one job's Status (404 if unknown)
//	GET  /healthz   liveness: 200 while the process serves at all
//	GET  /readyz    readiness: 200 while accepting jobs, 503 draining
//
// Liveness and readiness are deliberately distinct: a draining daemon
// is alive (it is still finishing checkpoints and answering status
// polls) but not ready, so a load balancer stops sending it work
// without killing it mid-drain.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	return mux
}

// httpError is the uniform error payload.
type httpError struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad job spec: " + err.Error()})
		return
	}
	st, err := s.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, st)
	case errors.Is(err, ErrQueueFull):
		// Shed load, don't queue unboundedly: tell the client when to
		// come back instead of making it guess.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, httpError{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, httpError{Error: err.Error()})
	case errors.Is(err, ErrInternal):
		writeJSON(w, http.StatusInternalServerError, httpError{Error: err.Error()})
	default:
		// Submit validates the spec before touching the queue, so any
		// other error is a client-side spec problem.
		writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, httpError{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
