package server

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/boardio"
	"repro/internal/simfs"
)

// The job journal is one file per job, <dir>/<id>.job, rewritten in full
// via boardio.AtomicWrite at every state transition and every durable
// checkpoint. The format wraps the snapshot codec:
//
//	grrdjob v1
//	id <job id>
//	state <queued|running|retrying|interrupted|done|failed>
//	attempt <n>
//	error <quoted string>            last failure, "" when none
//	aborted <quoted string>          abort reason of the last stop, "" when none
//	deadline <unix nanos>            absolute client deadline; omitted when none
//	token <n>                        hedge attempt token; omitted when 0
//	result <16-hex fingerprint> <audit 0/1>   done jobs only
//	snapshot begin
//	...WriteSnapshot lines (with their own checksum)...
//	snapshot end
//	checksum <16 hex digits>         FNV-64a over every preceding byte
//
// Atomic rename means a crash leaves either the previous record or the
// new one; the whole-file checksum catches the remaining hazard — a
// torn or bit-rotted file from outside the daemon — so recovery never
// trusts a corrupt record. Terminal jobs keep their journal entry (it
// is the system of record a client polls after a restart); non-terminal
// entries are what a restarted daemon requeues.

const journalExt = ".job"

func journalPath(dir, id string) string { return filepath.Join(dir, id+journalExt) }

// fnv64a matches the snapshot codec's whole-file hash.
func fnv64a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// writeJobRecord serializes j. The caller must guarantee the fields it
// reads are stable: either it holds the server mutex, or it passed a
// private copy.
func writeJobRecord(w io.Writer, j *Job) error {
	var sb strings.Builder
	fmt.Fprintln(&sb, "grrdjob v1")
	fmt.Fprintf(&sb, "id %s\n", j.ID)
	fmt.Fprintf(&sb, "state %s\n", j.State)
	fmt.Fprintf(&sb, "attempt %d\n", j.Attempt)
	fmt.Fprintf(&sb, "error %s\n", strconv.Quote(j.Err))
	fmt.Fprintf(&sb, "aborted %s\n", strconv.Quote(j.Aborted))
	// Deadline and token lines are emitted only when set: a job with
	// neither writes the exact bytes the pre-hedging format wrote.
	if !j.Deadline.IsZero() {
		fmt.Fprintf(&sb, "deadline %d\n", j.Deadline.UnixNano())
	}
	if j.HedgeToken != 0 {
		fmt.Fprintf(&sb, "token %d\n", j.HedgeToken)
	}
	if j.State == StateDone {
		fmt.Fprintf(&sb, "result %016x %d\n", j.Fingerprint, boolDigit(j.AuditOK))
	}
	fmt.Fprintln(&sb, "snapshot begin")
	if err := boardio.WriteSnapshot(&sb, j.snap); err != nil {
		return err
	}
	fmt.Fprintln(&sb, "snapshot end")
	fmt.Fprintf(&sb, "checksum %016x\n", fnv64a([]byte(sb.String())))
	_, err := io.WriteString(w, sb.String())
	return err
}

func boolDigit(b bool) int {
	if b {
		return 1
	}
	return 0
}

// readJobRecord parses and validates one journal record.
func readJobRecord(r io.Reader) (*Job, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}

	// Split off and verify the whole-file checksum trailer.
	const tag = "checksum "
	i := strings.LastIndex(string(data), "\n"+tag)
	if i < 0 {
		return nil, fmt.Errorf("server: job record has no checksum trailer (truncated?)")
	}
	body := string(data[:i+1])
	trailer := strings.TrimSpace(string(data[i+1+len(tag):]))
	want, err := strconv.ParseUint(trailer, 16, 64)
	if err != nil {
		return nil, fmt.Errorf("server: bad job record checksum %q", trailer)
	}
	if got := fnv64a([]byte(body)); got != want {
		return nil, fmt.Errorf("server: job record checksum mismatch: file says %016x, content hashes to %016x", want, got)
	}

	lines := strings.Split(body, "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != "grrdjob v1" {
		return nil, fmt.Errorf("server: job record: want header \"grrdjob v1\"")
	}

	j := &Job{}
	var haveSnap bool
	for ln := 1; ln < len(lines); ln++ {
		line := strings.TrimSpace(lines[ln])
		if line == "" {
			continue
		}
		key, rest, _ := strings.Cut(line, " ")
		switch key {
		case "id":
			j.ID = rest
		case "state":
			st, err := parseState(rest)
			if err != nil {
				return nil, err
			}
			j.State = st
		case "attempt":
			n, err := strconv.Atoi(rest)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("server: job record: bad attempt %q", rest)
			}
			j.Attempt = n
		case "error":
			s, err := strconv.Unquote(rest)
			if err != nil {
				return nil, fmt.Errorf("server: job record: bad error field %q", rest)
			}
			j.Err = s
		case "aborted":
			s, err := strconv.Unquote(rest)
			if err != nil {
				return nil, fmt.Errorf("server: job record: bad aborted field %q", rest)
			}
			j.Aborted = s
		case "deadline":
			ns, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("server: job record: bad deadline %q", rest)
			}
			j.Deadline = time.Unix(0, ns)
		case "token":
			tok, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("server: job record: bad token %q", rest)
			}
			j.HedgeToken = tok
		case "result":
			f := strings.Fields(rest)
			if len(f) != 2 {
				return nil, fmt.Errorf("server: job record: result needs fingerprint audit")
			}
			fp, err := strconv.ParseUint(f[0], 16, 64)
			if err != nil {
				return nil, fmt.Errorf("server: job record: bad fingerprint %q", f[0])
			}
			j.Fingerprint = fp
			j.AuditOK = f[1] == "1"
		case "snapshot":
			if rest != "begin" {
				return nil, fmt.Errorf("server: job record: want \"snapshot begin\"")
			}
			var sb strings.Builder
			terminated := false
			for ln++; ln < len(lines); ln++ {
				if strings.TrimSpace(lines[ln]) == "snapshot end" {
					terminated = true
					break
				}
				sb.WriteString(lines[ln])
				sb.WriteByte('\n')
			}
			if !terminated {
				return nil, fmt.Errorf("server: job record: unterminated snapshot block")
			}
			snap, err := boardio.ReadSnapshot(strings.NewReader(sb.String()))
			if err != nil {
				return nil, fmt.Errorf("server: job record snapshot: %w", err)
			}
			j.snap = snap
			haveSnap = true
		default:
			return nil, fmt.Errorf("server: job record: unknown directive %q", key)
		}
	}
	if j.ID == "" || j.State == "" || !haveSnap {
		return nil, fmt.Errorf("server: job record missing id, state or snapshot")
	}
	if j.State == StateDone {
		m := j.snap.Check.Metrics
		j.Metrics = &m
	}
	return j, nil
}

// saveJobRecord writes j's record crash-safely. It goes through
// boardio.AtomicWrite, so the fault-injection I/O seam applies: a
// checkpoint sink that cannot persist surfaces an error here, aborts
// the run with AbortCheckpoint, and lands on the retry path.
func saveJobRecord(dir string, j *Job) error {
	return boardio.AtomicWrite(journalPath(dir, j.ID), func(w io.Writer) error {
		return writeJobRecord(w, j)
	})
}

// corruptDir is where recovery quarantines unreadable records.
const corruptDir = "corrupt"

// journalScan reports the housekeeping a journal recovery scan did
// alongside the replayed records.
type journalScan struct {
	tmpCleaned  int // stale *.tmp files from interrupted atomic writes
	quarantined int // corrupt records moved into corrupt/
}

// loadJournal reads every job record in dir, sorted by ID. A record
// that fails to parse is reported through warn and quarantined into
// dir/corrupt — one corrupt file (necessarily external damage, given
// the atomic writes) must not take down recovery of the healthy jobs,
// but leaving it in place would re-parse (and re-warn about) it on
// every restart, and operators deserve to find the evidence in one
// spot. Leftover .tmp files from an interrupted atomic write are
// deleted.
func loadJournal(dir string, warn func(path string, err error)) ([]*Job, journalScan, error) {
	fsys := simfs.Current()
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, journalScan{}, err
	}
	var jobs []*Job
	var scan journalScan
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			if fsys.Remove(filepath.Join(dir, name)) == nil {
				scan.tmpCleaned++
			}
			continue
		}
		if !strings.HasSuffix(name, journalExt) {
			continue
		}
		path := filepath.Join(dir, name)
		j, err := readJobPath(path)
		if err != nil {
			warn(path, err)
			if quarantine(fsys, dir, name) {
				scan.quarantined++
			}
			continue
		}
		if want := strings.TrimSuffix(name, journalExt); j.ID != want {
			warn(path, fmt.Errorf("server: job record claims id %q", j.ID))
			if quarantine(fsys, dir, name) {
				scan.quarantined++
			}
			continue
		}
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].ID < jobs[b].ID })
	return jobs, scan, nil
}

// quarantine moves one corrupt record into dir/corrupt, fsyncing both
// directories so the move survives a crash. Best-effort: a false
// return leaves the record where it was, to be warned about again next
// time — never worth failing recovery over.
func quarantine(fsys simfs.FS, dir, name string) bool {
	qdir := filepath.Join(dir, corruptDir)
	if err := fsys.MkdirAll(qdir, 0o777); err != nil {
		return false
	}
	if err := fsys.Rename(filepath.Join(dir, name), filepath.Join(qdir, name)); err != nil {
		return false
	}
	boardio.SyncDir(qdir)
	boardio.SyncDir(dir)
	return true
}

func readJobPath(path string) (*Job, error) {
	f, err := simfs.Current().Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	j, err := readJobRecord(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return j, nil
}

// Exported record codec — the fleet layer ships job records between
// nodes (steal, handoff) and reads a fenced node's journal directly, in
// exactly the on-disk format, so a handed-off job carries its checkpoint
// bit-for-bit.

// EncodeRecord serializes j in the grrdjob v1 journal format.
func (j *Job) EncodeRecord(w io.Writer) error { return writeJobRecord(w, j) }

// DecodeRecord parses and validates one grrdjob v1 record.
func DecodeRecord(r io.Reader) (*Job, error) { return readJobRecord(r) }

// SaveRecord writes j's record into dir crash-safely, bypassing any
// server's fence guard — it is the fleet coordinator's write path into
// a journal it has fenced and now owns.
func SaveRecord(dir string, j *Job) error { return saveJobRecord(dir, j) }

// LoadRecord reads one job's record from dir — the coordinator's read
// path when it hedges a still-running job: the copy the healthy peer
// adopts is the owner's last durable checkpoint, read straight off the
// shared filesystem. Atomic rename means a concurrent checkpoint write
// yields either the previous record or the new one, never a torn read
// the checksum would miss.
func LoadRecord(dir, id string) (*Job, error) {
	return readJobPath(journalPath(dir, id))
}

// LoadRecords reads every job record in dir, sorted by ID, reporting
// (and quarantining) corrupt files through warn. It is loadJournal
// exported for the fleet coordinator's post-fence recovery scan.
func LoadRecords(dir string, warn func(path string, err error)) ([]*Job, error) {
	jobs, _, err := loadJournal(dir, warn)
	return jobs, err
}

// Journal fencing. The journal directory carries an epoch file,
// "EPOCH", holding a monotonic epoch token:
//
//	epoch <n>\n          — owned by the node that started at epoch n
//	epoch <n> fenced\n   — the coordinator revoked the journal at n
//
// A server adopts the epoch it finds at startup (creating epoch 1 on a
// fresh directory) and re-checks the file around every journal write:
// any change — a bumped number or the fenced marker — means a newer
// owner exists, the write is refused with ErrFenced, and the node stops
// committing. That is what makes failover safe against zombies: a
// partitioned-but-alive node whose jobs were handed to a peer cannot
// double-commit results into a journal it no longer owns. (The check
// brackets the atomic rename rather than being transactional with it;
// the residual window is noted in DESIGN §12.3.)

// ErrFenced means this node's journal epoch has been revoked by the
// fleet coordinator: the job now runs on a peer, and every further
// journal write here must fail rather than double-commit.
var ErrFenced = errors.New("server: journal fenced (epoch revoked)")

const epochFile = "EPOCH"

func epochPath(dir string) string { return filepath.Join(dir, epochFile) }

// ReadEpoch reports the journal directory's epoch token. A missing file
// is epoch 0 (fresh directory), not an error.
func ReadEpoch(dir string) (epoch uint64, fenced bool, err error) {
	data, err := simfs.Current().ReadFile(epochPath(dir))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	f := strings.Fields(string(data))
	if len(f) < 2 || f[0] != "epoch" {
		return 0, false, fmt.Errorf("server: malformed epoch file %s: %q", epochPath(dir), string(data))
	}
	n, err := strconv.ParseUint(f[1], 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("server: bad epoch %q in %s", f[1], epochPath(dir))
	}
	return n, len(f) > 2 && f[2] == "fenced", nil
}

// WriteEpoch stamps the journal directory with an epoch token.
func WriteEpoch(dir string, epoch uint64, fenced bool) error {
	return boardio.AtomicWrite(epochPath(dir), func(w io.Writer) error {
		line := fmt.Sprintf("epoch %d\n", epoch)
		if fenced {
			line = fmt.Sprintf("epoch %d fenced\n", epoch)
		}
		_, err := io.WriteString(w, line)
		return err
	})
}

// FenceJournal revokes dir's current epoch: it bumps the token and sets
// the fenced marker, so the (possibly still running) previous owner's
// next journal write fails with ErrFenced and a future server refuses
// to start on the directory at all. Returns the new epoch. Idempotent:
// fencing an already-fenced journal bumps again, which is harmless —
// no server ever owns a fenced epoch.
func FenceJournal(dir string) (uint64, error) {
	n, _, err := ReadEpoch(dir)
	if err != nil {
		return 0, err
	}
	if err := WriteEpoch(dir, n+1, true); err != nil {
		return 0, err
	}
	return n + 1, nil
}

// checkEpoch verifies that dir still carries exactly epoch own with no
// fence marker, returning ErrFenced otherwise.
func checkEpoch(dir string, own uint64) error {
	n, fenced, err := ReadEpoch(dir)
	if err != nil {
		return err
	}
	if fenced || n != own {
		return fmt.Errorf("%w: journal at epoch %d (fenced=%v), this node owns %d", ErrFenced, n, fenced, own)
	}
	return nil
}
