package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/faultinject"
)

// TestDeadlineValidation: deadline_ms is hardened at the front door —
// non-positive and absurd values are 400s, not silent adoption.
func TestDeadlineValidation(t *testing.T) {
	s, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, ms := range []int64{0, -1, MaxDeadlineMs + 1} {
		spec := testSpec(t, 5, nil)
		spec.DeadlineMs = &ms
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("deadline_ms=%d accepted by Submit", ms)
		}
		resp := postJob(t, ts.URL, spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST deadline_ms=%d = %d, want 400", ms, resp.StatusCode)
		}
	}

	ms := int64(60_000)
	spec := testSpec(t, 5, nil)
	spec.DeadlineMs = &ms
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("valid deadline refused: %v", err)
	}
	waitTerminal(t, s, st.ID)
}

// TestDeadlineRefusedWhenUnaffordable: a budget that cannot cover the
// job's estimated cost is refused at admission with 504 + Retry-After,
// not accepted and doomed.
func TestDeadlineRefusedWhenUnaffordable(t *testing.T) {
	cfg := testConfig(t)
	cfg.ConnCost = time.Second // every connection "costs" a second
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ms := int64(50) // a tiny board still has >0 connections: 50ms < 1s·conns
	spec := testSpec(t, 5, nil)
	spec.DeadlineMs = &ms
	if _, err := s.Submit(spec); err == nil {
		t.Fatal("unaffordable deadline accepted by Submit")
	}
	resp := postJob(t, ts.URL, spec)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("POST unaffordable deadline = %d, want 504", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("504 refusal carries no Retry-After")
	}
}

// TestDeadlineExceededFailsJob: a deadline that expires mid-route
// fails the job permanently — no retry loop burns attempts on a corpse
// — and the failure names the deadline.
func TestDeadlineExceededFailsJob(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxAttempts = 5
	slow := faultinject.NewSlowNode(5*time.Millisecond, 1)
	cfg.BoardHook = func(b *board.Board) { b.Interpose(slow) }
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer drainServer(t, s)

	ms := int64(30) // the slow interposer makes the route outrun this
	spec := testSpec(t, 5, nil)
	spec.DeadlineMs = &ms
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, s, st.ID)
	if fin.State != StateFailed {
		t.Fatalf("job state = %s, want failed (status %+v)", fin.State, fin)
	}
	if !strings.Contains(fin.Error, "deadline") {
		t.Errorf("failure does not name the deadline: %q", fin.Error)
	}
}

// TestMaxBodyRejected: request hardening — a body over MaxBodyBytes is
// refused with 413 before it is buffered whole.
func TestMaxBodyRejected(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxBodyBytes = 1024
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big, err := json.Marshal(JobSpec{Design: strings.Repeat("x", 4096)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized POST = %d, want 413", resp.StatusCode)
	}

	// A normal-sized spec still fits comfortably under the default cap.
	s2, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer drainServer(t, s2)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if resp := postJob(t, ts2.URL, testSpec(t, 5, nil)); resp.StatusCode != http.StatusAccepted {
		t.Errorf("normal POST = %d, want 202", resp.StatusCode)
	}
}

// TestJournalDeadlineTokenRoundTrip: the deadline and hedge-token
// directives survive write→parse exactly, and a record carrying
// neither serializes without those lines at all — the byte-identical
// guarantee for the no-hedge, no-deadline path.
func TestJournalDeadlineTokenRoundTrip(t *testing.T) {
	cfg := testConfig(t)
	if err := cfg.setDefaults(); err != nil {
		t.Fatal(err)
	}
	snap, err := buildSnapshot(testSpec(t, 5, nil), cfg)
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Unix(0, 1754600000123456789)
	j := &Job{
		ID: "job-000042", State: StateQueued, snap: snap,
		Deadline: deadline, HedgeToken: 2,
	}
	var buf bytes.Buffer
	if err := writeJobRecord(&buf, j); err != nil {
		t.Fatal(err)
	}
	rec, err := readJobRecord(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Deadline.Equal(deadline) {
		t.Errorf("deadline = %v, want %v", rec.Deadline, deadline)
	}
	if rec.HedgeToken != 2 {
		t.Errorf("token = %d, want 2", rec.HedgeToken)
	}

	plain := &Job{ID: "job-000043", State: StateQueued, snap: snap}
	buf.Reset()
	if err := writeJobRecord(&buf, plain); err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{"deadline ", "token "} {
		if bytes.Contains(buf.Bytes(), []byte("\n"+dir)) {
			t.Errorf("record without %s carries a %q line:\n%s", strings.TrimSpace(dir), dir, buf.String())
		}
	}
}

// TestBatchSubmit: POST /jobs/batch fans out through the normal
// admission path — per-item verdicts, envelope deadline inheritance,
// bounded batch size.
func TestBatchSubmit(t *testing.T) {
	cfg := testConfig(t)
	cfg.QueueDepth = 8
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	envelope := int64(60_000)
	req := BatchRequest{
		Jobs: []JobSpec{
			testSpec(t, 5, nil),
			{Design: "not a design"},
			testSpec(t, 6, nil),
		},
		DeadlineMs: &envelope,
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d, want 200", resp.StatusCode)
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.Accepted != 2 || len(br.Jobs) != 3 {
		t.Fatalf("accepted %d of %d results, want 2 of 3", br.Accepted, len(br.Jobs))
	}
	if br.Jobs[1].Status != nil || br.Jobs[1].Code != http.StatusBadRequest {
		t.Errorf("bad item verdict = %+v, want code 400", br.Jobs[1])
	}
	for _, i := range []int{0, 2} {
		if br.Jobs[i].Status == nil {
			t.Fatalf("item %d refused: %+v", i, br.Jobs[i])
		}
		fin := waitTerminal(t, s, br.Jobs[i].Status.ID)
		if fin.State != StateDone {
			t.Errorf("item %d: %+v", i, fin)
		}
	}

	// The envelope deadline reached the journal: both accepted jobs
	// carry a non-zero absolute deadline in their durable records.
	recs, err := LoadRecords(cfg.JournalDir, func(path string, err error) {
		t.Errorf("corrupt journal record %s: %v", path, err)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Deadline.IsZero() {
			t.Errorf("job %s journaled without the envelope deadline", rec.ID)
		}
	}

	// An oversized batch is refused whole.
	huge := BatchRequest{Jobs: make([]JobSpec, MaxBatchJobs+1)}
	body, err = json.Marshal(huge)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Post(ts.URL+"/jobs/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch = %d, want 400", resp2.StatusCode)
	}
}
