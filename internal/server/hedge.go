package server

import (
	"fmt"
	"time"
)

// Hedged execution and deadline propagation — the node-side half of the
// fleet's tail-latency contract (DESIGN §14).
//
// Hedging gives one job two live copies on two nodes; exactly one may
// journal a terminal "done". The gate is a commit claim: the fleet
// coordinator marks both copies with a per-job attempt token (1 for the
// original, 2 for the hedge), and a token-carrying copy must win
// Config.ClaimCommit — first claimant wins — before its terminal record
// is written. The loser flips to handed_off, exactly as if the job had
// been stolen: locally final, never re-run, the winner's journal
// authoritative. Jobs that were never hedged carry no token and never
// claim, so the standalone and no-hedge fleet paths are byte-identical
// to the pre-hedging server.

// validateDeadline checks a submission's deadline_ms bound and converts
// it to a duration (0 = no deadline). Violations are client errors: the
// HTTP layer maps them to 400.
func validateDeadline(spec JobSpec) (time.Duration, error) {
	if spec.DeadlineMs == nil {
		return 0, nil
	}
	v := *spec.DeadlineMs
	if v <= 0 {
		return 0, fmt.Errorf("server: deadline_ms must be positive, got %d", v)
	}
	if v > MaxDeadlineMs {
		return 0, fmt.Errorf("server: deadline_ms %d exceeds the %d ms maximum", v, MaxDeadlineMs)
	}
	return time.Duration(v) * time.Millisecond, nil
}

// admitDeadline refuses a job whose remaining budget cannot cover its
// estimated routing cost — the 504-style fast-fail of DESIGN §14. With
// no usable estimate yet it refuses only already-expired deadlines.
func (s *Server) admitDeadline(deadline time.Time, conns int) error {
	remaining := time.Until(deadline)
	if remaining <= 0 {
		return fmt.Errorf("%w: deadline already expired", ErrDeadline)
	}
	if est := s.estimateCost(conns); est > 0 && remaining < est {
		return fmt.Errorf("%w: %v remaining, estimated cost %v for %d connections",
			ErrDeadline, remaining.Round(time.Millisecond), est.Round(time.Millisecond), conns)
	}
	return nil
}

// estimateCost predicts how long routing conns connections takes here:
// Config.ConnCost when pinned, otherwise the EWMA learned from this
// node's own completed attempts. Zero means "no estimate yet" (fewer
// than three attempts trained it) — admission then only rejects
// deadlines that have already expired.
func (s *Server) estimateCost(conns int) time.Duration {
	if s.cfg.ConnCost > 0 {
		return time.Duration(conns) * s.cfg.ConnCost
	}
	if s.connCost.Samples() < 3 {
		return 0
	}
	return time.Duration(float64(conns) * s.connCost.Value() * float64(time.Second))
}

// ArmClaim marks a job as hedge-gated with the given token: from now on
// this node must win the coordinator's commit claim before journaling a
// terminal state for it. The coordinator calls it on the current owner
// immediately before launching a hedge; the returned state lets it skip
// the hedge when the job already settled. armed=false without error
// means the job exists but could not be gated — it is terminal, already
// handed off, or mid-commit (committing): in every case launching a
// hedge now would be useless or unsafe, so the coordinator backs off.
func (s *Server) ArmClaim(id string, token uint64) (st State, armed bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return "", false, fmt.Errorf("server: unknown job %s", id)
	}
	if !j.State.Live() || j.committing {
		return j.State, false, nil
	}
	j.claimRequired = true
	j.HedgeToken = token
	return j.State, true, nil
}

// claimTerminal asks the fleet's commit gate — when this copy is hedge-
// gated and a gate is configured — whether it may journal a terminal
// state. It also latches j.committing under the same lock hold that
// reads claimRequired, so ArmClaim can never slip a hedge in between
// the decision below and the journal write that follows it.
func (s *Server) claimTerminal(j *Job) (win bool, err error) {
	s.mu.Lock()
	j.committing = true
	required := j.claimRequired && j.State.Live()
	id, token := j.ID, j.HedgeToken
	s.mu.Unlock()
	if !required || s.cfg.ClaimCommit == nil {
		return true, nil
	}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			select {
			case <-s.drainCtx.Done():
				return false, lastErr
			case <-time.After(50 * time.Millisecond << (attempt - 1)):
			}
		}
		win, err := s.cfg.ClaimCommit(id, token)
		if err == nil {
			s.obs.claim(win)
			return win, nil
		}
		lastErr = err
	}
	return false, lastErr
}

// Supersede cancels this node's copy of a hedged job because a peer's
// copy won (or is about to win) the commit race. A running attempt is
// aborted through its context and steps aside when it unwinds; a
// waiting copy — queued, retrying, parked — flips to handed_off right
// here, under one lock hold, so a worker cannot start it mid-cancel.
// Terminal and handed-off copies are left alone. Returns the state the
// job was in when the cancel landed.
func (s *Server) Supersede(id string) (State, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return "", fmt.Errorf("server: unknown job %s", id)
	}
	st := j.State
	if !st.Live() {
		s.mu.Unlock()
		return st, nil
	}
	if st == StateRunning {
		j.superseded = true
		cancel := j.cancelRun
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return st, nil
	}
	if j.stopRetry != nil {
		j.stopRetry()
		j.stopRetry = nil
	}
	wasParked := j.parked
	j.State = StateHandedOff
	j.parked = false
	j.superseded = true
	rec := *j
	s.mu.Unlock()
	s.finishSupersede(j, &rec, wasParked, "cancelled by coordinator")
	return st, nil
}

// supersedeFromRun steps a losing copy aside from its own settle path:
// the attempt that just finished (or was cancelled) belongs to this
// goroutine, so no other flip can race it — Supersede never touches
// running jobs directly.
func (s *Server) supersedeFromRun(j *Job, reason string) {
	s.mu.Lock()
	if !j.State.Live() {
		s.mu.Unlock()
		return
	}
	wasParked := j.parked
	j.State = StateHandedOff
	j.parked = false
	j.superseded = true
	rec := *j
	s.mu.Unlock()
	s.finishSupersede(j, &rec, wasParked, reason)
}

// finishSupersede journals the handed_off record and releases the
// loser's admission slot — the same bookkeeping as a steal, because a
// supersede IS a handoff: the job lives on, just not here.
func (s *Server) finishSupersede(j *Job, rec *Job, wasParked bool, reason string) {
	rec.Err = ""
	if err := s.saveJob(rec); err != nil {
		s.cfg.Logf("grrd: journaling superseded %s: %v", j.ID, err)
	}
	if wasParked {
		s.parkedN.Add(-1)
	}
	<-s.slots
	s.channelGauges()
	s.obs.superseded.Inc()
	s.cfg.Logf("grrd: %s superseded: %s", j.ID, reason)
	s.log.Log("job_superseded", "job", j.ID, "reason", reason)
}
