package server

import (
	"errors"
	"io"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/boardio"
	"repro/internal/simfs"
)

// Disk-fault degradation. A journal write that fails with a disk errno
// (ENOSPC, EIO, quota, read-only remount) latches the daemon into a
// degraded posture instead of letting every job burn its retry budget
// against a disk that cannot take writes:
//
//   - admission stops: Submit/Adopt refuse with ErrDiskDegraded, which
//     the HTTP layer maps to 507 Insufficient Storage + Retry-After;
//   - /readyz reports 503 "disk_degraded" and the fleet heartbeat
//     carries Load.Disk="degraded", so the coordinator routes new work
//     and steals queued work away from the node;
//   - in-flight jobs whose attempt died on a disk error park as
//     interrupted (keeping their admission slot) rather than retrying
//     into the same wall — their last durable checkpoint is intact;
//   - a self-probe (a small AtomicWrite into the journal directory,
//     every Config.DiskProbeEvery) clears the posture when the disk
//     takes writes again, requeuing the parked jobs.
//
// The posture is deliberately pessimistic-in, optimistic-out: one disk
// errno is enough to latch it, and one full atomic write (create,
// write, fsync, rename, directory fsync) is enough to clear it.

// ErrDiskDegraded refuses admission while the journal disk cannot take
// writes. HTTP maps it to 507 Insufficient Storage.
var ErrDiskDegraded = errors.New("server: disk degraded, not accepting jobs")

// diskProbeFile is the self-probe's scratch name inside the journal
// directory. Never parsed by recovery (no .job suffix); a stale one
// left by a crash is removed at startup.
const diskProbeFile = "DISKPROBE"

// diskErrnos are the write errors that mean "the disk, not the data":
// full, quota-exhausted, failing media, remounted read-only. Anything
// else (bad path, permission, checksum) keeps the normal retry path —
// degrading on those would turn a software bug into an outage.
var diskErrnos = [...]syscall.Errno{syscall.ENOSPC, syscall.EIO, syscall.EDQUOT, syscall.EROFS}

// isDiskError classifies err by errno, through any number of wrapping
// layers — injected faults carry real errnos for exactly this reason.
func isDiskError(err error) bool {
	for _, errno := range diskErrnos {
		if errors.Is(err, errno) {
			return true
		}
	}
	return false
}

// noteDiskError inspects a failed journal write and latches the
// degraded posture when the failure is the disk's fault.
func (s *Server) noteDiskError(err error) {
	if !isDiskError(err) {
		return
	}
	s.obs.diskErrors.Inc()
	if !s.diskDegraded.CompareAndSwap(false, true) {
		return
	}
	s.obs.diskDegradedG.Set(1)
	s.cfg.Logf("grrd: disk degraded, refusing new work: %v", err)
	s.log.Log("disk_degraded", "err", err.Error())
}

// DiskDegraded reports whether the degraded-disk posture is latched.
func (s *Server) DiskDegraded() bool { return s.diskDegraded.Load() }

// diskProbeLoop periodically re-tests the disk while degraded. It does
// no I/O at all while the posture is clear, so a healthy daemon's
// operation log stays exactly the jobs' own writes.
func (s *Server) diskProbeLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.DiskProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-s.drainCtx.Done():
			return
		case <-t.C:
			if !s.diskDegraded.Load() {
				continue
			}
			s.obs.diskProbes.Inc()
			if err := s.probeDisk(); err != nil {
				s.obs.diskProbeFailures.Inc()
				s.log.Log("disk_probe_failed", "err", err.Error())
				continue
			}
			s.exitDiskDegraded()
		}
	}
}

// probeDisk exercises the full durable-write path — create, write,
// fsync, rename, directory fsync, unlink — in the journal directory.
// Only a disk that can do all of that is healed enough to journal jobs.
func (s *Server) probeDisk() error {
	path := filepath.Join(s.cfg.JournalDir, diskProbeFile)
	err := boardio.AtomicWrite(path, func(w io.Writer) error {
		_, werr := io.WriteString(w, "probe\n")
		return werr
	})
	if err != nil {
		return err
	}
	return simfs.Current().Remove(path)
}

// exitDiskDegraded clears the posture and requeues the jobs that
// parked on disk errors.
func (s *Server) exitDiskDegraded() {
	if !s.diskDegraded.CompareAndSwap(true, false) {
		return
	}
	s.obs.diskDegradedG.Set(0)
	s.obs.diskRecoveries.Inc()
	s.cfg.Logf("grrd: disk recovered, resuming admissions")
	s.log.Log("disk_recovered")
	s.rejournalHandoffs()
	s.unparkAll()
}

// rejournalHandoffs writes the handed_off records that Steal could not
// journal while the disk was down, closing the window in which a
// crash+restart would re-run a job that now lives on a peer.
func (s *Server) rejournalHandoffs() {
	s.mu.Lock()
	var pending []*Job
	for _, j := range s.jobs {
		if j.unjournaled && j.State == StateHandedOff {
			pending = append(pending, j)
		}
	}
	s.mu.Unlock()
	for _, j := range pending {
		s.mu.Lock()
		rec := *j
		s.mu.Unlock()
		if err := s.saveJob(&rec); err != nil {
			s.cfg.Logf("grrd: re-journaling handoff of %s: %v", j.ID, err)
			continue
		}
		s.mu.Lock()
		j.unjournaled = false
		s.mu.Unlock()
		s.log.Log("handoff_rejournaled", "job", j.ID)
	}
}

// parkOnDisk shelves a job whose attempt died on a disk error: it goes
// to interrupted (the same state a graceful drain uses) with the
// parked mark, keeps its admission slot, and waits for the disk to
// heal instead of spending attempts. Parking does not count against
// MaxAttempts for the same reason drain doesn't — the job did nothing
// wrong.
func (s *Server) parkOnDisk(j *Job, cause error) {
	s.mu.Lock()
	j.State = StateInterrupted
	j.parked = true
	j.Err = cause.Error()
	rec := *j
	s.mu.Unlock()
	s.parkedN.Add(1)
	// Best-effort: with the disk down this journal write usually fails
	// too, leaving the on-disk record at running/retrying — which is
	// exactly what a crashed daemon would leave, and recovery requeues
	// those. Durability is not lost, only freshness.
	if err := s.saveJob(&rec); err != nil {
		s.cfg.Logf("grrd: journaling parked %s: %v", j.ID, err)
	}
	s.obs.diskParked.Inc()
	s.obs.interrupted.Inc()
	s.cfg.Logf("grrd: %s parked on disk error: %v", j.ID, cause)
	s.log.Log("job_parked_disk", "job", j.ID, "attempt", j.Attempt, "err", cause.Error())
}

// unparkAll requeues every disk-parked job after the disk heals. Same
// anti-race shape as requeue: journal the queued record while the job
// still reads interrupted, so it cannot be stolen (and concurrently
// journaled) before its record is durable.
func (s *Server) unparkAll() {
	s.mu.Lock()
	var parked []*Job
	for _, j := range s.jobs {
		if j.parked && j.State == StateInterrupted {
			parked = append(parked, j)
		}
	}
	s.mu.Unlock()
	for _, j := range parked {
		s.mu.Lock()
		if !j.parked || j.State != StateInterrupted {
			s.mu.Unlock()
			continue
		}
		rec := *j
		rec.State = StateQueued
		s.mu.Unlock()
		if err := s.saveJob(&rec); err != nil {
			// The disk flapped again mid-recovery; the job stays parked
			// for the next successful probe.
			s.cfg.Logf("grrd: journaling unparked %s: %v", j.ID, err)
			continue
		}
		s.mu.Lock()
		if !j.parked || j.State != StateInterrupted {
			s.mu.Unlock()
			continue
		}
		j.parked = false
		j.State = StateQueued
		s.mu.Unlock()
		s.parkedN.Add(-1)
		s.queue <- j
		s.channelGauges()
		s.log.Log("job_unparked", "job", j.ID, "attempt", rec.Attempt)
	}
}
