package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/board"
	"repro/internal/boardio"
	"repro/internal/core"
	"repro/internal/faultinject"
)

// postEdit POSTs an edit script against a job and returns the response.
func postEdit(t *testing.T, base, id, edits string) *http.Response {
	t.Helper()
	body, err := json.Marshal(editRequest{Edits: edits})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs/"+id+"/edit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestEditEndpoint: POST /jobs/{id}/edit derives a new job whose final
// board is bit-identical to routing the edited problem from scratch —
// the incremental fast path is invisible in the result — and the
// derived job spends no more search than the from-scratch route.
func TestEditEndpoint(t *testing.T) {
	cfg := testConfig(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer drainServer(t, s)

	spec := testSpec(t, 6, map[string]int64{"recordregions": 1})
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, s, st.ID)
	if fin.State != StateDone {
		t.Fatalf("parent did not finish: %+v", fin)
	}

	// The parent's router must be in the retention cache now.
	s.mu.Lock()
	parentSnap := s.jobs[st.ID].snap
	_, retained := s.retained[st.ID]
	s.mu.Unlock()
	if !retained {
		t.Fatalf("done recordregions job %s not retained for edits", st.ID)
	}

	// Edit: rip out one net and re-add its connection under a new name —
	// the same endpoints, so the edited problem stays routable.
	victim := parentSnap.Conns[0]
	editsText := fmt.Sprintf("remove-net %s\nadd-conn %d %d %d %d %s - 0\n",
		victim.Net, victim.A.X, victim.A.Y, victim.B.X, victim.B.Y, victim.Net+"_MOVED")
	edits, err := boardio.ReadEdits(bytes.NewReader([]byte(editsText)))
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: the edited snapshot routed from scratch.
	editedSnap, err := editSnapshot(parentSnap, edits)
	if err != nil {
		t.Fatal(err)
	}
	ob, or, err := editedSnap.Restore()
	if err != nil {
		t.Fatal(err)
	}
	ores := or.Route()
	if ores.Aborted != core.AbortNone {
		t.Fatalf("oracle run aborted: %v", ores)
	}
	if err := ob.Audit(); err != nil {
		t.Fatalf("oracle board inconsistent: %v", err)
	}

	resp := postEdit(t, ts.URL, st.ID, editsText)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs/{id}/edit status = %d, want 202", resp.StatusCode)
	}
	var child Status
	if err := json.NewDecoder(resp.Body).Decode(&child); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if child.ID == st.ID {
		t.Fatal("edit reused the parent's job ID")
	}

	cfin := waitTerminal(t, s, child.ID)
	if cfin.State != StateDone || cfin.AuditOK == nil || !*cfin.AuditOK {
		t.Fatalf("derived job did not finish clean: %+v", cfin)
	}
	if want := fingerprintString(ob.Fingerprint()); cfin.Fingerprint != want {
		t.Errorf("derived fingerprint = %s, want %s (from-scratch route of the edited problem)",
			cfin.Fingerprint, want)
	}
	if cfin.Metrics.Routed != ores.Metrics.Routed || cfin.Metrics.Connections != ores.Metrics.Connections {
		t.Errorf("derived routed %d/%d, oracle %d/%d",
			cfin.Metrics.Routed, cfin.Metrics.Connections,
			ores.Metrics.Routed, ores.Metrics.Connections)
	}
	// Adopted routes skip the Lee search entirely, so the incremental
	// attempt can only spend less search than (or, with nothing
	// adoptable, exactly as much as) the oracle.
	if cfin.Metrics.LeeExpansions > ores.Metrics.LeeExpansions {
		t.Errorf("incremental attempt expanded %d nodes, from-scratch %d — fast path never ran",
			cfin.Metrics.LeeExpansions, ores.Metrics.LeeExpansions)
	}
	// And the fast path must actually have run: a from-scratch attempt
	// leaves both replay counters at zero.
	s.mu.Lock()
	adopted, rerouted := s.jobs[child.ID].incAdopted, s.jobs[child.ID].incRerouted
	s.mu.Unlock()
	if adopted+rerouted == 0 {
		t.Error("derived job routed from scratch; expected the incremental replay path")
	}
	if adopted == 0 {
		t.Error("incremental replay adopted no routes; edits this small should leave most memos intact")
	}

	// The parent, untouched, is still done with its original result.
	pst, ok := s.Status(st.ID)
	if !ok || pst.State != StateDone || pst.Fingerprint != fin.Fingerprint {
		t.Errorf("parent mutated by the edit: %+v", pst)
	}
}

// TestEditEndpointRefusals: the edit endpoint's error contract — 404
// for an unknown parent, 409 for one that is not done yet, 400 for a
// bad script or an edit that doesn't fit the parent's board.
func TestEditEndpointRefusals(t *testing.T) {
	cfg := testConfig(t)
	blk := faultinject.BlockAt(1)
	var first atomic.Bool
	cfg.BoardHook = func(b *board.Board) {
		if first.CompareAndSwap(false, true) {
			b.Interpose(blk)
		}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp := postEdit(t, ts.URL, "job-999999", "remove-net N1\n"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("edit of unknown job: status = %d, want 404", resp.StatusCode)
	}

	// Wedge the first job mid-route: editing a running job is a 409.
	spec := testSpec(t, 5, map[string]int64{"recordregions": 1})
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, blk.Fired, "blocker never fired")
	if resp := postEdit(t, ts.URL, st.ID, "remove-net N1\n"); resp.StatusCode != http.StatusConflict {
		t.Errorf("edit of a running job: status = %d, want 409", resp.StatusCode)
	}
	blk.Release()
	if fin := waitTerminal(t, s, st.ID); fin.State != StateDone {
		t.Fatalf("job never finished after release: %+v", fin)
	}

	if resp := postEdit(t, ts.URL, st.ID, "bogus 1 2\n"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed script: status = %d, want 400", resp.StatusCode)
	}
	if resp := postEdit(t, ts.URL, st.ID, "block 0 0 100000 100000\n"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-bounds block: status = %d, want 400", resp.StatusCode)
	}
	drainServer(t, s)
}
