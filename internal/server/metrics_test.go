package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// scrape GETs /metrics and returns the parsed exposition.
func scrape(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 text exposition", ct)
	}
	vals, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition malformed: %v", err)
	}
	return vals
}

// TestMetricsEndpoint scrapes a daemon that has routed one job to
// completion: the exposition must parse line-by-line and carry the job
// lifecycle, latency and router-phase series the ISSUE promises.
func TestMetricsEndpoint(t *testing.T) {
	cfg := testConfig(t)
	cfg.Metrics = obs.NewRegistry()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, err := s.Submit(testSpec(t, 5, nil))
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitTerminal(t, s, st.ID); fin.State != StateDone {
		t.Fatalf("job state = %s: %+v", fin.State, fin)
	}
	drainServer(t, s)

	vals := scrape(t, ts.URL)
	for name, want := range map[string]float64{
		"grr_jobs_submitted_total": 1,
		"grr_jobs_done_total":      1,
		"grr_jobs_failed_total":    0,
		"grr_job_attempts_total":   1,
		"grr_queue_depth":          0,
		"grr_slots_in_use":         0,
		"grr_jobs_running":         0,
	} {
		if got := vals[name]; got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	// The job's routing work flowed into the router series.
	if vals["grr_router_routed_total"] == 0 {
		t.Error("grr_router_routed_total is zero after a routed job")
	}
	if vals["grr_router_connections_total"] == 0 {
		t.Error("grr_router_connections_total is zero after a routed job")
	}
	if vals[`grr_router_phase_seconds_count{phase="zero_via"}`] == 0 {
		t.Error("zero_via phase histogram empty after a routed job")
	}
	// Latency histograms observed the attempt and the whole job.
	if vals["grr_job_attempt_seconds_count"] != 1 {
		t.Errorf("grr_job_attempt_seconds_count = %g, want 1", vals["grr_job_attempt_seconds_count"])
	}
	if vals["grr_job_seconds_count"] != 1 {
		t.Errorf("grr_job_seconds_count = %g, want 1", vals["grr_job_seconds_count"])
	}
	// Every journaled transition was counted.
	if vals["grr_journal_writes_total"] < 3 { // queued, running, done at minimum
		t.Errorf("grr_journal_writes_total = %g, want >= 3", vals["grr_journal_writes_total"])
	}
}

// TestMetricsEndpointAbsentWithoutRegistry: a daemon built without a
// registry must not expose a scrape surface at all.
func TestMetricsEndpointAbsentWithoutRegistry(t *testing.T) {
	s, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer drainServer(t, s)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics without a registry: status = %d, want 404", resp.StatusCode)
	}
}

// backoffSchedule draws the server's first n jittered backoff delays.
func backoffSchedule(s *Server, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = s.backoff(1)
	}
	return out
}

// TestRetrySeedEntropy pins the lockstep-retry bugfix: seed 0 means
// "derive from entropy", so two daemon (re)starts jitter differently;
// explicitly pinned seeds still replay identical schedules for tests.
func TestRetrySeedEntropy(t *testing.T) {
	mk := func(seed int64) *Server {
		cfg := testConfig(t)
		cfg.RetrySeed = seed
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { drainServer(t, s) })
		return s
	}
	equal := func(a, b []time.Duration) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	const n = 16
	if equal(backoffSchedule(mk(0), n), backoffSchedule(mk(0), n)) {
		t.Error("two seed-0 daemons drew identical jitter schedules — restarts retry in lockstep")
	}
	if !equal(backoffSchedule(mk(7), n), backoffSchedule(mk(7), n)) {
		t.Error("two seed-7 daemons drew different schedules — pinned seeds must replay")
	}
}

// TestRetryAfterDerivedFromConfig: the 429/503 Retry-After hints come
// from Config (backoff base, drain budget), not hardcoded constants.
func TestRetryAfterDerivedFromConfig(t *testing.T) {
	cfg := testConfig(t)
	cfg.RetryBase = 3 * time.Second
	cfg.DrainBudget = 45 * time.Second
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if s.retryAfterFull != "3" || s.retryAfterDrain != "45" {
		t.Fatalf("derived Retry-After = (%q, %q), want (3, 45)", s.retryAfterFull, s.retryAfterDrain)
	}

	drainServer(t, s)
	resp := postJob(t, ts.URL, testSpec(t, 5, nil))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining: status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "45" {
		t.Errorf("draining Retry-After = %q, want 45 (DrainBudget)", got)
	}
}

// TestDrainRecoveryMetricsConsistency drives the full drain → restart →
// finish cycle with a registry on each side and checks the books
// balance: the draining daemon counts its interrupted jobs, the
// restarted daemon counts the replayed records and recovered jobs, and
// once everything lands the occupancy gauges are back to zero with
// done-counts matching the jobs.
func TestDrainRecoveryMetricsConsistency(t *testing.T) {
	cfg := testConfig(t)
	cfg.Metrics = obs.NewRegistry()
	spec := testSpec(t, 6, map[string]int64{"checkpointevery": 1})

	blk := faultinject.BlockAt(3)
	var first atomic.Bool
	hookCfg := cfg
	hookCfg.BoardHook = func(b *board.Board) {
		if first.CompareAndSwap(false, true) {
			b.Interpose(blk)
		}
	}
	s, err := New(hookCfg)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, blk.Fired, "blocker never fired")

	// Drain while job 1 is wedged mid-mutation and job 2 is queued.
	go blk.Release()
	drainServer(t, s)
	if got := cfg.Metrics.Counter("grr_jobs_interrupted_total").Value(); got != 1 {
		t.Errorf("interrupted after drain = %d, want 1 (the wedged job)", got)
	}

	// Restart over the same journal with a fresh registry.
	cfg2 := testConfig(t)
	cfg2.JournalDir = cfg.JournalDir
	cfg2.Metrics = obs.NewRegistry()
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg2.Metrics.Counter("grr_jobs_recovered_total").Value(); got != 2 {
		t.Errorf("recovered = %d, want 2", got)
	}
	if got := cfg2.Metrics.Counter("grr_journal_records_replayed_total").Value(); got < 2 {
		t.Errorf("journal records replayed = %d, want >= 2", got)
	}

	fin1 := waitTerminal(t, s2, st1.ID)
	fin2 := waitTerminal(t, s2, st2.ID)
	drainServer(t, s2)
	if fin1.State != StateDone || fin2.State != StateDone {
		t.Fatalf("recovered jobs ended (%s, %s), want both done", fin1.State, fin2.State)
	}
	reg := cfg2.Metrics
	if got := reg.Counter("grr_jobs_done_total").Value(); got != 2 {
		t.Errorf("done = %d, want 2", got)
	}
	if got := reg.Histogram("grr_job_seconds", obs.DurationBuckets()).Count(); got != 2 {
		t.Errorf("grr_job_seconds count = %d, want 2", got)
	}
	for _, g := range []string{"grr_queue_depth", "grr_slots_in_use", "grr_jobs_running"} {
		if got := reg.Gauge(g).Value(); got != 0 {
			t.Errorf("%s = %d after everything settled, want 0", g, got)
		}
	}
}
