package server

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/board"
	"repro/internal/boardio"
	"repro/internal/core"
	"repro/internal/geom"
)

// This file is grrd's design-edit path (DESIGN §15): POST
// /jobs/{id}/edit derives a NEW job from a finished one by applying an
// edit script (block / remove-net / add-conn) to its design and
// connection list. The derived job is admitted, journaled and retried
// exactly like any submission — its snapshot IS the edited problem, so
// crash recovery and handoff need no knowledge of its ancestry.
//
// Incremental re-routing is purely an optimization layered on top:
// when the parent ran with recordregions and its router is still in
// the retention cache, the derived job's first attempt re-routes
// through core.Reroute — adopting every recorded route the edits did
// not disturb — instead of searching from scratch. Both paths produce
// the identical board (core's incremental contract), so a retry or a
// recovered record falling back to the from-scratch path changes
// nothing but the node count.

// Edit-path sentinels; the HTTP layer maps them to 404 and 409.
var (
	ErrUnknownJob = errors.New("server: unknown job")
	ErrNotDone    = errors.New("server: job is not done")
)

// maxRetained bounds the retention cache: routers are live board-sized
// structures, so only the most recent handful of editable runs is kept.
const maxRetained = 4

// retainedRun is one completed run kept for incremental edits.
type retainedRun struct {
	router *core.Router
}

// retain caches a completed job's router, evicting the oldest entry
// beyond maxRetained.
func (s *Server) retain(id string, run *retainedRun) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.retained[id]; !ok {
		s.retainedOrder = append(s.retainedOrder, id)
		if len(s.retainedOrder) > maxRetained {
			evict := s.retainedOrder[0]
			s.retainedOrder = s.retainedOrder[1:]
			delete(s.retained, evict)
		}
	}
	s.retained[id] = run
}

// SubmitEdit admits a job derived from parentID by applying edits: the
// parent's design with block rectangles appended as keepouts, its
// connection list with removed nets trivialized and added connections
// appended, and its router options verbatim (the incremental path may
// only run under the options the parent's regions were recorded with).
// The parent must be done. Admission control — draining, fencing, disk
// posture, queue slots, journaling — is exactly Submit's.
func (s *Server) SubmitEdit(parentID string, edits []core.Edit, deadlineMs *int64) (Status, error) {
	if s.draining.Load() {
		s.obs.rejectDrain.Inc()
		return Status{}, ErrDraining
	}
	if s.fenced.Load() {
		return Status{}, ErrFenced
	}
	if s.diskDegraded.Load() {
		s.obs.rejectDisk.Inc()
		return Status{}, ErrDiskDegraded
	}
	if len(edits) == 0 {
		s.obs.rejectSpec.Inc()
		return Status{}, fmt.Errorf("server: edit: no edits")
	}
	var budget time.Duration
	if deadlineMs != nil {
		ms := *deadlineMs
		if ms <= 0 || ms > MaxDeadlineMs {
			s.obs.rejectSpec.Inc()
			return Status{}, fmt.Errorf("server: deadline_ms must be in (0, %d], got %d", MaxDeadlineMs, ms)
		}
		budget = time.Duration(ms) * time.Millisecond
	}

	s.mu.Lock()
	parent, ok := s.jobs[parentID]
	var parentSnap *boardio.Snapshot
	var parentState State
	if ok {
		parentSnap = parent.snap
		parentState = parent.State
	}
	s.mu.Unlock()
	if !ok || parentSnap == nil {
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownJob, parentID)
	}
	if parentState != StateDone {
		return Status{}, fmt.Errorf("%w: %s is %s", ErrNotDone, parentID, parentState)
	}

	snap, err := editSnapshot(parentSnap, edits)
	if err != nil {
		s.obs.rejectSpec.Inc()
		return Status{}, err
	}
	var deadline time.Time
	if budget > 0 {
		deadline = time.Now().Add(budget)
		if err := s.admitDeadline(deadline, len(snap.Conns)); err != nil {
			s.obs.deadlineRefused.Inc()
			return Status{}, err
		}
	}

	select {
	case s.slots <- struct{}{}:
	default:
		s.obs.rejectFull.Inc()
		return Status{}, ErrQueueFull
	}

	s.mu.Lock()
	id := s.newID()
	s.mu.Unlock()
	now := time.Now()
	j := &Job{
		ID: id, State: StateQueued, snap: snap, created: now, Deadline: deadline,
		enqueuedAt: now, editParent: parentID, edits: edits,
	}
	rec := *j
	if err := s.saveJob(&rec); err != nil {
		<-s.slots
		s.obs.rejectJournal.Inc()
		s.channelGauges()
		return Status{}, fmt.Errorf("%w: journaling job: %v", ErrInternal, err)
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.mu.Unlock()
	s.obs.submitted.Inc()
	s.queue <- j
	s.channelGauges()
	s.log.Log("job_edit_submitted", "job", id, "parent", parentID,
		"edits", len(edits), "conns", len(snap.Conns))
	return rec.status(), nil
}

// editSnapshot materializes the edited problem: the parent design plus
// block keepouts, the edited connection list, the parent's options, a
// zero-progress checkpoint. Validation is eager — a bad edit script is
// the client's mistake and earns a 400, not a failed job.
func editSnapshot(parent *boardio.Snapshot, edits []core.Edit) (*boardio.Snapshot, error) {
	d2 := *parent.Design
	d2.Keepouts = append([]geom.Rect(nil), parent.Design.Keepouts...)
	bounds := d2.GridConfig().Bounds()
	for i, e := range edits {
		switch e.Op {
		case core.EditBlock:
			if e.Rect.Empty() || !bounds.Contains(e.Rect) {
				return nil, fmt.Errorf("server: edit %d: block %v outside the %v routing grid", i, e.Rect, bounds)
			}
			d2.Keepouts = append(d2.Keepouts, e.Rect)
		case core.EditRemoveNet:
			if e.Net == "" {
				return nil, fmt.Errorf("server: edit %d: remove-net needs a net name", i)
			}
		case core.EditAddConn:
			if !e.Conn.A.In(bounds) || !e.Conn.B.In(bounds) {
				return nil, fmt.Errorf("server: edit %d: add-conn %v-%v outside the %v routing grid",
					i, e.Conn.A, e.Conn.B, bounds)
			}
		default:
			return nil, fmt.Errorf("server: edit %d: unknown op %d", i, e.Op)
		}
	}
	// Trial-place the edited board now: a block rectangle overlapping a
	// pin (or existing keepout) would otherwise fail every attempt of
	// the derived job.
	b, err := board.New(d2.GridConfig())
	if err != nil {
		return nil, fmt.Errorf("server: edit: %w", err)
	}
	if err := d2.PlacePins(b); err != nil {
		return nil, fmt.Errorf("server: edit: %w", err)
	}
	opts := parent.Opts
	opts.CheckpointSink = nil // runtime-only; workers re-attach
	conns2 := core.EditConns(parent.Conns, edits)
	return &boardio.Snapshot{
		Design: &d2,
		Conns:  conns2,
		Opts:   opts,
		Check:  freshCheckpoint(len(conns2)),
	}, nil
}

// rerouteIncremental attempts the incremental fast path for an edit
// job: a fresh edited board re-routed through the retained parent
// router. Returns ok=false — with no side effects — whenever the
// preconditions fail (no retained parent, options without regions, or
// the job has already made durable progress a replay would discard);
// the caller then takes the ordinary Restore path.
func (s *Server) rerouteIncremental(run *boardio.Snapshot, j *Job) (*board.Board, *core.Router, bool) {
	s.mu.Lock()
	edits := j.edits
	parent := s.retained[j.editParent]
	s.mu.Unlock()
	if parent == nil || len(edits) == 0 {
		return nil, nil, false
	}
	cp := run.Check
	if cp.Pass != 0 || cp.NextPos != 0 || cp.Metrics.Connections != 0 {
		// A prior attempt checkpointed real progress; resume it instead
		// of replaying from the top.
		return nil, nil, false
	}
	b2, err := board.New(run.Design.GridConfig())
	if err != nil {
		return nil, nil, false
	}
	if err := run.Design.PlacePins(b2); err != nil {
		return nil, nil, false
	}
	r2, err := parent.router.Reroute(b2, edits, func(o *core.Options) {
		// Operational overlay only — algorithmic options must stay the
		// parent's, and Reroute rejects a tweak that changes them.
		o.Metrics = run.Opts.Metrics
		o.CheckpointSink = run.Opts.CheckpointSink
		o.CheckpointEvery = run.Opts.CheckpointEvery
		o.TimeBudget = run.Opts.TimeBudget
		o.Workers = run.Opts.Workers
		o.Paranoid = run.Opts.Paranoid
	})
	if err != nil {
		s.cfg.Logf("grrd: %s: incremental reroute unavailable (%v); routing from scratch", j.ID, err)
		return nil, nil, false
	}
	return b2, r2, true
}
