// Package boardio reads and writes the line-oriented text formats that
// connect the command-line tools: board designs (.brd), stringer output
// (.con) and routed results (.rte). The formats are deliberately plain —
// whitespace-separated fields, '#' comments — in the spirit of the
// original toolchain's stringer→router pipeline.
package boardio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/layer"
	"repro/internal/netlist"
)

// WriteDesign serializes a design:
//
//	board <name> <viaCols> <viaRows> <layers> <pitch>
//	keepout <minx> <miny> <maxx> <maxy>
//	package <name> <terminator 0|1> <x,y> <x,y> ...
//	part <name> <package> <x> <y> <tech>
//	net <name> <tech> <delayps> <part.pin/func> ...
//
// keepout rectangles are in routing-grid units (netlist.Design.Keepouts).
func WriteDesign(w io.Writer, d *netlist.Design) error {
	bw := bufio.NewWriter(w)
	pitch := d.Pitch
	if pitch == 0 {
		pitch = 3
	}
	fmt.Fprintf(bw, "board %s %d %d %d %d\n", nameOr(d.Name, "unnamed"), d.ViaCols, d.ViaRows, d.Layers, pitch)
	for _, r := range d.Keepouts {
		fmt.Fprintf(bw, "keepout %d %d %d %d\n", r.MinX, r.MinY, r.MaxX, r.MaxY)
	}

	pkgs := map[*netlist.Package]bool{}
	for _, p := range d.Parts {
		if !pkgs[p.Pkg] {
			pkgs[p.Pkg] = true
			term := 0
			if p.Pkg.Terminator {
				term = 1
			}
			fmt.Fprintf(bw, "package %s %d", p.Pkg.Name, term)
			for _, o := range p.Pkg.Offsets {
				fmt.Fprintf(bw, " %d,%d", o.X, o.Y)
			}
			fmt.Fprintln(bw)
		}
	}
	for _, p := range d.Parts {
		fmt.Fprintf(bw, "part %s %s %d %d %s\n", p.Name, p.Pkg.Name, p.At.X, p.At.Y, p.Tech)
	}
	for _, n := range d.Nets {
		fmt.Fprintf(bw, "net %s %s %g", n.Name, n.Tech, n.TargetDelayPs)
		for _, np := range n.Pins {
			fmt.Fprintf(bw, " %s.%d/%s", np.Ref.Part.Name, np.Ref.Pin, np.Func)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadDesign parses the WriteDesign format.
func ReadDesign(r io.Reader) (*netlist.Design, error) {
	d := &netlist.Design{}
	pkgs := map[string]*netlist.Package{}
	parts := map[string]*netlist.Part{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		fail := func(why string) error {
			return fmt.Errorf("boardio: line %d: %s: %q", lineNo, why, line)
		}
		switch f[0] {
		case "board":
			if len(f) != 6 {
				return nil, fail("board needs name cols rows layers pitch")
			}
			d.Name = f[1]
			var err error
			if d.ViaCols, err = strconv.Atoi(f[2]); err != nil {
				return nil, fail(err.Error())
			}
			if d.ViaRows, err = strconv.Atoi(f[3]); err != nil {
				return nil, fail(err.Error())
			}
			if d.Layers, err = strconv.Atoi(f[4]); err != nil {
				return nil, fail(err.Error())
			}
			if d.Pitch, err = strconv.Atoi(f[5]); err != nil {
				return nil, fail(err.Error())
			}
			// Geometry must be positive: a design with, say, -3 layers
			// parses numerically but poisons every later grid/board
			// computation (found by FuzzReadDesign).
			if d.ViaCols < 1 || d.ViaRows < 1 || d.Layers < 1 || d.Pitch < 1 {
				return nil, fail("board dimensions must be positive")
			}
		case "keepout":
			if len(f) != 5 {
				return nil, fail("keepout needs minx miny maxx maxy")
			}
			vals, err := atois(f[1:])
			if err != nil {
				return nil, fail(err.Error())
			}
			d.Keepouts = append(d.Keepouts, geom.R(vals[0], vals[1], vals[2], vals[3]))
		case "package":
			if len(f) < 4 {
				return nil, fail("package needs name terminator offsets...")
			}
			p := &netlist.Package{Name: f[1], Terminator: f[2] == "1"}
			for _, of := range f[3:] {
				var x, y int
				if _, err := fmt.Sscanf(of, "%d,%d", &x, &y); err != nil {
					return nil, fail("bad offset " + of)
				}
				p.Offsets = append(p.Offsets, geom.Pt(x, y))
			}
			pkgs[p.Name] = p
		case "part":
			if len(f) != 6 {
				return nil, fail("part needs name package x y tech")
			}
			pkg := pkgs[f[2]]
			if pkg == nil {
				return nil, fail("unknown package " + f[2])
			}
			x, err1 := strconv.Atoi(f[3])
			y, err2 := strconv.Atoi(f[4])
			if err1 != nil || err2 != nil {
				return nil, fail("bad coordinates")
			}
			tech, err := parseTech(f[5])
			if err != nil {
				return nil, fail(err.Error())
			}
			part := &netlist.Part{Name: f[1], Pkg: pkg, At: geom.Pt(x, y), Tech: tech}
			if parts[part.Name] != nil {
				return nil, fail("duplicate part " + part.Name)
			}
			parts[part.Name] = part
			d.Parts = append(d.Parts, part)
		case "net":
			if len(f) < 5 {
				return nil, fail("net needs name tech delay pins...")
			}
			tech, err := parseTech(f[2])
			if err != nil {
				return nil, fail(err.Error())
			}
			delay, err := strconv.ParseFloat(f[3], 64)
			if err != nil {
				return nil, fail("bad delay")
			}
			n := &netlist.Net{Name: f[1], Tech: tech, TargetDelayPs: delay}
			for _, ps := range f[4:] {
				np, err := parseNetPin(ps, parts)
				if err != nil {
					return nil, fail(err.Error())
				}
				n.Pins = append(n.Pins, np)
			}
			d.Nets = append(d.Nets, n)
		default:
			return nil, fail("unknown directive")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if d.ViaCols == 0 {
		return nil, fmt.Errorf("boardio: no board line")
	}
	return d, d.Validate()
}

func parseTech(s string) (netlist.Tech, error) {
	switch s {
	case "ECL":
		return netlist.ECL, nil
	case "TTL":
		return netlist.TTL, nil
	}
	return 0, fmt.Errorf("unknown tech %q", s)
}

func parseNetPin(s string, parts map[string]*netlist.Part) (netlist.NetPin, error) {
	var np netlist.NetPin
	slash := strings.LastIndexByte(s, '/')
	if slash < 0 {
		return np, fmt.Errorf("pin %q lacks /func", s)
	}
	switch s[slash+1:] {
	case "out":
		np.Func = netlist.Output
	case "in":
		np.Func = netlist.Input
	case "term":
		np.Func = netlist.Termination
	default:
		return np, fmt.Errorf("unknown pin func %q", s[slash+1:])
	}
	dot := strings.LastIndexByte(s[:slash], '.')
	if dot < 0 {
		return np, fmt.Errorf("pin %q lacks part.pin", s)
	}
	part := parts[s[:dot]]
	if part == nil {
		return np, fmt.Errorf("unknown part %q", s[:dot])
	}
	pin, err := strconv.Atoi(s[dot+1 : slash])
	if err != nil {
		return np, fmt.Errorf("bad pin number in %q", s)
	}
	np.Ref = netlist.PinRef{Part: part, Pin: pin}
	return np, nil
}

// WriteConnections serializes a connection list (grid coordinates):
//
//	conn <ax> <ay> <bx> <by> <net> <class> <delayps>
func WriteConnections(w io.Writer, conns []core.Connection) error {
	bw := bufio.NewWriter(w)
	for _, c := range conns {
		fmt.Fprintf(bw, "conn %d %d %d %d %s %s %g\n",
			c.A.X, c.A.Y, c.B.X, c.B.Y, nameOr(c.Net, "-"), nameOr(c.Class, "-"), c.TargetDelayPs)
	}
	return bw.Flush()
}

// ReadConnections parses the WriteConnections format.
func ReadConnections(r io.Reader) ([]core.Connection, error) {
	var out []core.Connection
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if f[0] != "conn" || len(f) != 8 {
			return nil, fmt.Errorf("boardio: line %d: want \"conn ax ay bx by net class delay\": %q", lineNo, line)
		}
		var c core.Connection
		coords := make([]int, 4)
		for i := 0; i < 4; i++ {
			v, err := strconv.Atoi(f[i+1])
			if err != nil {
				return nil, fmt.Errorf("boardio: line %d: bad coordinate %q", lineNo, f[i+1])
			}
			coords[i] = v
		}
		c.A, c.B = geom.Pt(coords[0], coords[1]), geom.Pt(coords[2], coords[3])
		if f[5] != "-" {
			c.Net = f[5]
		}
		if f[6] != "-" {
			c.Class = f[6]
		}
		delay, err := strconv.ParseFloat(f[7], 64)
		if err != nil {
			return nil, fmt.Errorf("boardio: line %d: bad delay %q", lineNo, f[7])
		}
		c.TargetDelayPs = delay
		out = append(out, c)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteRoutes serializes routing results:
//
//	route <index> <method> <net>
//	seg <layer> <x1> <y1> <x2> <y2>
//	via <x> <y>
func WriteRoutes(w io.Writer, r *core.Router) error {
	bw := bufio.NewWriter(w)
	for i := range r.Conns {
		rt := r.RouteOf(i)
		fmt.Fprintf(bw, "route %d %s %s\n", i, rt.Method, nameOr(r.Conns[i].Net, "-"))
		for _, ps := range rt.Segs {
			o := r.B.Layers[ps.Layer].Orient
			a := r.B.Cfg.PointAt(o, ps.Seg.Channel(), ps.Seg.Lo)
			z := r.B.Cfg.PointAt(o, ps.Seg.Channel(), ps.Seg.Hi)
			fmt.Fprintf(bw, "seg %d %d %d %d %d\n", ps.Layer, a.X, a.Y, z.X, z.Y)
		}
		for _, pv := range rt.Vias {
			fmt.Fprintf(bw, "via %d %d\n", pv.At.X, pv.At.Y)
		}
	}
	return bw.Flush()
}

func nameOr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// RouteRecord is one parsed route from a .rte file.
type RouteRecord struct {
	Index  int
	Method string
	Net    string
	Segs   []SegRecord
	Vias   []geom.Point
}

// SegRecord is one trace segment: a straight run on one layer between two
// grid points (axis-aligned along the layer's channel direction).
type SegRecord struct {
	Layer int
	A, B  geom.Point
}

// ReadRoutes parses the WriteRoutes format.
func ReadRoutes(r io.Reader) ([]RouteRecord, error) {
	var out []RouteRecord
	var cur *RouteRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		fail := func(why string) error {
			return fmt.Errorf("boardio: line %d: %s: %q", lineNo, why, line)
		}
		switch f[0] {
		case "route":
			if len(f) != 4 {
				return nil, fail("route needs index method net")
			}
			idx, err := strconv.Atoi(f[1])
			if err != nil {
				return nil, fail("bad index")
			}
			out = append(out, RouteRecord{Index: idx, Method: f[2], Net: f[3]})
			cur = &out[len(out)-1]
		case "seg":
			if cur == nil {
				return nil, fail("seg before route")
			}
			if len(f) != 6 {
				return nil, fail("seg needs layer x1 y1 x2 y2")
			}
			var vals [5]int
			for i := range vals {
				v, err := strconv.Atoi(f[i+1])
				if err != nil {
					return nil, fail("bad number " + f[i+1])
				}
				vals[i] = v
			}
			cur.Segs = append(cur.Segs, SegRecord{
				Layer: vals[0],
				A:     geom.Pt(vals[1], vals[2]),
				B:     geom.Pt(vals[3], vals[4]),
			})
		case "via":
			if cur == nil {
				return nil, fail("via before route")
			}
			if len(f) != 3 {
				return nil, fail("via needs x y")
			}
			x, err1 := strconv.Atoi(f[1])
			y, err2 := strconv.Atoi(f[2])
			if err1 != nil || err2 != nil {
				return nil, fail("bad coordinates")
			}
			cur.Vias = append(cur.Vias, geom.Pt(x, y))
		default:
			return nil, fail("unknown directive")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ApplyRoutes re-creates recorded routes on a board whose pins are
// already placed: vias first, then segments, each owned by the record's
// index plus idBase. A collision (the board differs from the one the
// routes were saved from) aborts with an error; partially applied records
// are left in place for inspection.
func ApplyRoutes(b *board.Board, recs []RouteRecord, idBase int) error {
	for _, rec := range recs {
		id := layer.ConnID(rec.Index + idBase)
		for _, v := range rec.Vias {
			if _, ok := b.PlaceVia(v, id); !ok {
				return fmt.Errorf("boardio: route %d: via %v collides", rec.Index, v)
			}
		}
		for _, sr := range rec.Segs {
			if sr.Layer < 0 || sr.Layer >= b.NumLayers() {
				return fmt.Errorf("boardio: route %d: layer %d out of range", rec.Index, sr.Layer)
			}
			l := b.Layers[sr.Layer]
			chA, posA := b.Cfg.ChanPos(l.Orient, sr.A)
			chB, posB := b.Cfg.ChanPos(l.Orient, sr.B)
			if chA != chB {
				return fmt.Errorf("boardio: route %d: segment %v-%v not along layer %d channels",
					rec.Index, sr.A, sr.B, sr.Layer)
			}
			lo, hi := min(posA, posB), max(posA, posB)
			if b.AddSegment(sr.Layer, chA, lo, hi, id) == nil {
				return fmt.Errorf("boardio: route %d: segment %v-%v collides", rec.Index, sr.A, sr.B)
			}
		}
	}
	return nil
}
