package boardio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/stringer"
	"repro/internal/workload"
)

// FuzzReadDesign asserts the .brd parser never panics and that every
// accepted design survives a write/re-read round trip. The parser is
// pure (no board allocation), so arbitrary dimensions cannot OOM the
// fuzzer — ReadDesign must reject anything a later board.New would
// choke on.
func FuzzReadDesign(f *testing.F) {
	f.Add("board b1 8 8 2 3\n")
	f.Add("board b1 8 8 2 3\npackage dip 0 0,0 1,0\npart u1 dip 1 1 TTL\npart u2 dip 4 4 ECL\nnet n1 TTL 0 u1.1/out u2.2/in\n")
	f.Add("# comment\n\nboard x 2 2 1 3\n")
	f.Add("board b -3 5 2 3\n")
	f.Add("board b 5 5 -2 3\npart")
	f.Add("net n TTL 1e309 a.1/out\n")
	f.Add("package p 1 9999999999999999999,0\n")

	f.Fuzz(func(t *testing.T, in string) {
		d, err := ReadDesign(strings.NewReader(in))
		if err != nil {
			return // rejection is fine; panicking is not
		}
		if d.ViaCols < 1 || d.ViaRows < 1 || d.Layers < 1 || d.Pitch < 1 {
			t.Fatalf("accepted non-positive geometry: %dx%d layers=%d pitch=%d",
				d.ViaCols, d.ViaRows, d.Layers, d.Pitch)
		}
		var buf bytes.Buffer
		if err := WriteDesign(&buf, d); err != nil {
			t.Fatalf("accepted design fails to serialize: %v", err)
		}
		d2, err := ReadDesign(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v\ninput: %q\nwritten: %q", err, in, buf.String())
		}
		if len(d2.Parts) != len(d.Parts) || len(d2.Nets) != len(d.Nets) {
			t.Fatalf("round trip lost content: %d/%d parts, %d/%d nets",
				len(d2.Parts), len(d.Parts), len(d2.Nets), len(d.Nets))
		}
	})
}

// FuzzReadSnapshot asserts the snapshot decoder never panics on hostile
// input and that anything it accepts re-serializes canonically: writing
// the parse and re-reading that must reproduce the bytes exactly. The
// seed corpus includes a genuine mid-route snapshot (so the fuzzer
// mutates from a structurally valid file, past the checksum check) plus
// hand-written truncations and count mismatches.
func FuzzReadSnapshot(f *testing.F) {
	// f.Add(string(seedSnapshot(f)))
	f.Add("snapshot v1\n")
	f.Add("snapshot v1\nchecksum 0000000000000000\n")
	f.Add("snapshot v1\ncursor 0 0 0\nmetrics 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0\n")
	f.Add("snapshot v1\ncroute 0 2 1048577 0\n")
	f.Add("snapshot v1\ncroute 0 2 2 0\ncseg 0 0 0 1\n")
	f.Add("checksum ffffffffffffffff\n")

	f.Fuzz(func(t *testing.T, in string) {
		s, err := ReadSnapshot(strings.NewReader(in))
		if err != nil {
			return // rejection is fine; panicking is not
		}
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, s); err != nil {
			t.Fatalf("accepted snapshot fails to serialize: %v", err)
		}
		s2, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("canonical form rejected: %v", err)
		}
		var buf2 bytes.Buffer
		if err := WriteSnapshot(&buf2, s2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("snapshot serialization is not idempotent")
		}
	})
}

// seedSnapshot builds a real checkpoint snapshot for the fuzz corpus.
func seedSnapshot(f *testing.F) []byte {
	f.Helper()
	d, err := workload.Generate(workload.Table1Specs()[0].Scale(4))
	if err != nil {
		f.Fatal(err)
	}
	strung, err := stringer.String(d, stringer.Options{})
	if err != nil {
		f.Fatal(err)
	}
	b, err := board.New(d.GridConfig())
	if err != nil {
		f.Fatal(err)
	}
	if err := d.PlacePins(b); err != nil {
		f.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.CheckpointEvery = 1
	var last *core.Checkpoint
	opts.CheckpointSink = func(cp *core.Checkpoint) error { last = cp; return nil }
	r, err := core.New(b, strung.Conns, opts)
	if err != nil {
		f.Fatal(err)
	}
	r.Route()
	if last == nil {
		f.Fatal("seed route cut no checkpoint")
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, &Snapshot{Design: d, Conns: strung.Conns, Opts: opts, Check: last}); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadConnections asserts the .con parser never panics and accepted
// lists survive a write/re-read round trip with coordinates intact.
func FuzzReadConnections(f *testing.F) {
	f.Add("conn 1 1 4 4 n1 bus 0\n")
	f.Add("conn 0 0 0 0 - - 0\n# trailing comment\n")
	f.Add("conn 1 1 4 4 n1 bus NaN\n")
	f.Add("conn -5 2 4 999999999999 x y 1.5\n")
	f.Add("conn 1 1\n")

	f.Fuzz(func(t *testing.T, in string) {
		conns, err := ReadConnections(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteConnections(&buf, conns); err != nil {
			t.Fatalf("accepted connections fail to serialize: %v", err)
		}
		conns2, err := ReadConnections(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v\nwritten: %q", err, buf.String())
		}
		if len(conns2) != len(conns) {
			t.Fatalf("round trip lost connections: %d -> %d", len(conns), len(conns2))
		}
		for i := range conns {
			// Delay is deliberately excluded: NaN never compares equal.
			if conns2[i].A != conns[i].A || conns2[i].B != conns[i].B ||
				conns2[i].Net != conns[i].Net || conns2[i].Class != conns[i].Class {
				t.Fatalf("connection %d changed: %+v -> %+v", i, conns[i], conns2[i])
			}
		}
	})
}
