package boardio

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/stringer"
	"repro/internal/workload"
)

// testSnapshot builds a small valid snapshot for I/O-path tests.
func testSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	d, err := workload.Generate(workload.SmallSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	strung, err := stringer.String(d, stringer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp := cutCheckpoint(t, d, strung.Conns)
	return &Snapshot{Design: d, Conns: strung.Conns, Opts: core.DefaultOptions(), Check: cp}
}

// TestSaveSnapshotInjectedWriteFailure drives the atomic-write failure
// path through the I/O seam: a failing write must surface the injected
// error, remove the temporary file, and leave the previous good snapshot
// untouched.
func TestSaveSnapshotInjectedWriteFailure(t *testing.T) {
	snap := testSnapshot(t)
	path := filepath.Join(t.TempDir(), "run.snap")

	if err := SaveSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	prev := SetIOSeam(&IOSeam{
		WrapWriter: func(w io.Writer) io.Writer { return faultinject.FailWrites(w, 1) },
	})
	defer SetIOSeam(prev)

	if err := SaveSnapshot(path, snap); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("save with failing writer: err = %v, want ErrInjected", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("failed save left its temporary file behind")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(good) {
		t.Error("failed save clobbered the previous good snapshot")
	}

	// With the seam restored, saving and loading work again.
	SetIOSeam(prev)
	if err := SaveSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
}

// TestLoadSnapshotInjectedReadFailure exercises the reader side of the
// seam: a failing read surfaces as a load error naming the path.
func TestLoadSnapshotInjectedReadFailure(t *testing.T) {
	snap := testSnapshot(t)
	path := filepath.Join(t.TempDir(), "run.snap")
	if err := SaveSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}

	prev := SetIOSeam(&IOSeam{
		WrapReader: func(r io.Reader) io.Reader { return faultinject.FailReads(r, 1) },
	})
	defer SetIOSeam(prev)

	if _, err := LoadSnapshot(path); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("load with failing reader: err = %v, want ErrInjected", err)
	}
}

// TestSnapshotTruncatedTrailer is the deterministic regression test for
// truncation at the section/trailer boundary: a snapshot cut anywhere
// inside (or just before) its checksum trailer — the exact shape a crash
// mid-write produces — must be rejected, never parsed as a shorter but
// "valid" snapshot. This was previously covered only by whatever the
// fuzz corpus happened to contain.
func TestSnapshotTruncatedTrailer(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, testSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Locate the trailer: the final "checksum ..." line.
	i := bytes.LastIndex(data, []byte("\nchecksum "))
	if i < 0 {
		t.Fatal("snapshot has no checksum trailer")
	}
	trailerStart := i + 1 // first byte of "checksum"

	cuts := []struct {
		name string
		at   int
	}{
		{"before-trailer", trailerStart},                  // last section complete, trailer absent
		{"mid-keyword", trailerStart + len("check")},      // inside the tag
		{"after-tag", trailerStart + len("checksum ")},    // tag complete, no digits
		{"mid-digits", trailerStart + len("checksum ") + 7}, // half the hash
		{"last-digit-lost", len(data) - 2},                // hash one hex digit short
	}
	for _, c := range cuts {
		t.Run(c.name, func(t *testing.T) {
			if c.at <= 0 || c.at >= len(data) {
				t.Fatalf("cut point %d out of range (len %d)", c.at, len(data))
			}
			if _, err := ReadSnapshot(bytes.NewReader(data[:c.at])); err == nil {
				t.Errorf("snapshot truncated at byte %d accepted", c.at)
			}
		})
	}

	// Sanity: the untruncated bytes still parse.
	if _, err := ReadSnapshot(bytes.NewReader(data)); err != nil {
		t.Fatalf("untruncated snapshot rejected: %v", err)
	}
}

func TestApplyOptionRoundTrip(t *testing.T) {
	var o core.Options
	for _, name := range OptionNames() {
		if err := ApplyOption(&o, name, 1); err != nil {
			t.Errorf("ApplyOption(%q): %v", name, err)
		}
	}
	if o.Radius != 1 || !o.Sort || !o.Paranoid || o.NodeBudget != 1 {
		t.Errorf("options not applied: %+v", o)
	}
	if err := ApplyOption(&o, "bogus", 1); err == nil {
		t.Error("unknown option accepted")
	}
}

func TestMetricsIntsRoundTrip(t *testing.T) {
	m := core.Metrics{Connections: 3, Routed: 2, Failed: 1, RipUps: 7, WireLength: 99}
	m.ByMethod[core.Lee] = 2
	got, err := MetricsFromInts(MetricsInts(m))
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Errorf("round trip changed metrics:\n got  %+v\n want %+v", got, m)
	}
	if _, err := MetricsFromInts([]int{1, 2, 3}); err == nil {
		t.Error("short metrics vector accepted")
	}
}
