package boardio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/stringer"
	"repro/internal/workload"
)

// testSnapshot builds a small valid snapshot for I/O-path tests.
func testSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	d, err := workload.Generate(workload.SmallSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	strung, err := stringer.String(d, stringer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp := cutCheckpoint(t, d, strung.Conns)
	return &Snapshot{Design: d, Conns: strung.Conns, Opts: core.DefaultOptions(), Check: cp}
}

// TestSaveSnapshotInjectedWriteFailure drives the atomic-write failure
// path through the I/O seam: a failing write must surface the injected
// error, remove the temporary file, and leave the previous good snapshot
// untouched.
func TestSaveSnapshotInjectedWriteFailure(t *testing.T) {
	snap := testSnapshot(t)
	path := filepath.Join(t.TempDir(), "run.snap")

	if err := SaveSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	prev := SetIOSeam(&IOSeam{
		WrapWriter: func(w io.Writer) io.Writer { return faultinject.FailWrites(w, 1) },
	})
	defer SetIOSeam(prev)

	if err := SaveSnapshot(path, snap); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("save with failing writer: err = %v, want ErrInjected", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("failed save left its temporary file behind")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(good) {
		t.Error("failed save clobbered the previous good snapshot")
	}

	// With the seam restored, saving and loading work again.
	SetIOSeam(prev)
	if err := SaveSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
}

// TestLoadSnapshotInjectedReadFailure exercises the reader side of the
// seam: a failing read surfaces as a load error naming the path.
func TestLoadSnapshotInjectedReadFailure(t *testing.T) {
	snap := testSnapshot(t)
	path := filepath.Join(t.TempDir(), "run.snap")
	if err := SaveSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}

	prev := SetIOSeam(&IOSeam{
		WrapReader: func(r io.Reader) io.Reader { return faultinject.FailReads(r, 1) },
	})
	defer SetIOSeam(prev)

	if _, err := LoadSnapshot(path); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("load with failing reader: err = %v, want ErrInjected", err)
	}
}

func TestApplyOptionRoundTrip(t *testing.T) {
	var o core.Options
	for _, name := range OptionNames() {
		if err := ApplyOption(&o, name, 1); err != nil {
			t.Errorf("ApplyOption(%q): %v", name, err)
		}
	}
	if o.Radius != 1 || !o.Sort || !o.Paranoid || o.NodeBudget != 1 {
		t.Errorf("options not applied: %+v", o)
	}
	if err := ApplyOption(&o, "bogus", 1); err == nil {
		t.Error("unknown option accepted")
	}
}

func TestMetricsIntsRoundTrip(t *testing.T) {
	m := core.Metrics{Connections: 3, Routed: 2, Failed: 1, RipUps: 7, WireLength: 99}
	m.ByMethod[core.Lee] = 2
	got, err := MetricsFromInts(MetricsInts(m))
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Errorf("round trip changed metrics:\n got  %+v\n want %+v", got, m)
	}
	if _, err := MetricsFromInts([]int{1, 2, 3}); err == nil {
		t.Error("short metrics vector accepted")
	}
}
