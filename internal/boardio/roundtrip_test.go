package boardio

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/stringer"
	"repro/internal/workload"
)

// TestRoundTripProperty is one property harness over both persistence
// codecs: for a spread of generated designs, the text formats
// (WriteDesign/ReadDesign, WriteConnections/ReadConnections) and the
// snapshot codec must all be write/read idempotent — re-serializing the
// parse of a serialization reproduces the bytes exactly. The snapshot
// half runs against a real mid-route checkpoint, not a synthetic one.
func TestRoundTripProperty(t *testing.T) {
	specs := []workload.Spec{
		workload.Table1Specs()[0].Scale(4),
		workload.Table1Specs()[3].Scale(6),
		workload.Table1Specs()[7].Scale(8),
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			d, err := workload.Generate(spec)
			if err != nil {
				t.Fatal(err)
			}

			// Design text format: serialize, parse, re-serialize, compare.
			var d1 bytes.Buffer
			if err := WriteDesign(&d1, d); err != nil {
				t.Fatal(err)
			}
			d2, err := ReadDesign(bytes.NewReader(d1.Bytes()))
			if err != nil {
				t.Fatalf("generated design does not parse: %v", err)
			}
			var d3 bytes.Buffer
			if err := WriteDesign(&d3, d2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(d1.Bytes(), d3.Bytes()) {
				t.Error("design serialization is not idempotent")
			}

			// Connections text format, on the design's strung connections.
			strung, err := stringer.String(d, stringer.Options{})
			if err != nil {
				t.Fatal(err)
			}
			var c1 bytes.Buffer
			if err := WriteConnections(&c1, strung.Conns); err != nil {
				t.Fatal(err)
			}
			conns, err := ReadConnections(bytes.NewReader(c1.Bytes()))
			if err != nil {
				t.Fatalf("strung connections do not parse: %v", err)
			}
			var c2 bytes.Buffer
			if err := WriteConnections(&c2, conns); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
				t.Error("connection serialization is not idempotent")
			}

			// Snapshot codec, against a checkpoint cut mid-route.
			cp := cutCheckpoint(t, d2, conns)
			snap := &Snapshot{Design: d2, Conns: conns, Opts: core.DefaultOptions(), Check: cp}
			var s1 bytes.Buffer
			if err := WriteSnapshot(&s1, snap); err != nil {
				t.Fatal(err)
			}
			snap2, err := ReadSnapshot(bytes.NewReader(s1.Bytes()))
			if err != nil {
				t.Fatalf("snapshot does not parse: %v", err)
			}
			var s2 bytes.Buffer
			if err := WriteSnapshot(&s2, snap2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
				t.Error("snapshot serialization is not idempotent")
			}
			if snap2.Check.Pass != cp.Pass || snap2.Check.NextPos != cp.NextPos ||
				snap2.Check.PrevUnrouted != cp.PrevUnrouted || snap2.Check.Metrics != cp.Metrics {
				t.Error("snapshot round trip changed the cursor or metrics")
			}
			if _, _, err := snap2.Restore(); err != nil {
				t.Errorf("round-tripped snapshot does not restore: %v", err)
			}

			// Every single-byte corruption of the body must be rejected:
			// the trailer checksum is whole-file.
			corrupt := append([]byte(nil), s1.Bytes()...)
			for _, i := range []int{0, len(corrupt) / 2, len(corrupt) - 20} {
				orig := corrupt[i]
				corrupt[i] ^= 0x20
				if _, err := ReadSnapshot(bytes.NewReader(corrupt)); err == nil {
					t.Errorf("corrupted byte %d accepted", i)
				}
				corrupt[i] = orig
			}
			// Truncation — the expected crash-time corruption — likewise.
			if _, err := ReadSnapshot(bytes.NewReader(s1.Bytes()[:s1.Len()*2/3])); err == nil {
				t.Error("truncated snapshot accepted")
			}
		})
	}
}

// cutCheckpoint routes conns on a fresh board built from d, cutting a
// checkpoint after every attempt, and returns the last one.
func cutCheckpoint(t *testing.T, d *netlist.Design, conns []core.Connection) *core.Checkpoint {
	t.Helper()
	b, err := board.New(d.GridConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PlacePins(b); err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.CheckpointEvery = 1
	var last *core.Checkpoint
	opts.CheckpointSink = func(cp *core.Checkpoint) error { last = cp; return nil }
	r, err := core.New(b, conns, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res := r.Route(); res.Aborted != core.AbortNone {
		t.Fatalf("checkpointed route aborted: %v (%v)", res.Aborted, res.Invariant)
	}
	if last == nil {
		t.Fatal("no checkpoint was cut")
	}
	return last
}

// TestSaveSnapshotAtomic checks the tmp+rename discipline: a successful
// save leaves no temporary behind, and the saved file loads back.
func TestSaveSnapshotAtomic(t *testing.T) {
	d, err := workload.Generate(workload.Table1Specs()[0].Scale(4))
	if err != nil {
		t.Fatal(err)
	}
	strung, err := stringer.String(d, stringer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp := cutCheckpoint(t, d, strung.Conns)
	snap := &Snapshot{Design: d, Conns: strung.Conns, Opts: core.DefaultOptions(), Check: cp}

	path := filepath.Join(t.TempDir(), "run.snap")
	if err := SaveSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path + ".tmp"); err == nil {
		t.Error("temporary file left behind after a successful save")
	}
	got, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Check.Metrics != cp.Metrics {
		t.Error("loaded snapshot lost metrics")
	}
}
