package boardio

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/simfs"
)

// This file is the checkpoint snapshot codec: everything grr needs to
// resume an interrupted routing run, in one self-describing text file.
// The format is line-oriented and sectioned, reusing the .brd and .con
// formats verbatim for the design and connection blocks:
//
//	snapshot v1
//	option <name> <integer>          router options (booleans as 0/1)
//	cursor <pass> <nextpos> <prevunrouted>
//	metrics <22 integers>            core.Metrics, field order below
//	design begin / ... / design end  WriteDesign lines
//	conns begin / ... / conns end    WriteConnections lines
//	croute <idx> <method> <nsegs> <nvias>   one per connection, ascending
//	cseg <layer> <ch> <lo> <hi>             nsegs per croute
//	cvia <x> <y>                            nvias per croute
//	checksum <16 hex digits>         FNV-64a over every preceding byte
//
// The trailing checksum catches truncation — the expected corruption for
// a file written moments before a crash; SaveSnapshot additionally
// writes via rename so a torn write can never replace a good snapshot.

// Snapshot bundles a resumable routing run.
type Snapshot struct {
	Design *netlist.Design
	Conns  []core.Connection
	// Opts are the router options of the interrupted run. CheckpointSink
	// is a function and is not serialized; callers re-attach it (and may
	// overlay a fresh TimeBudget) before Restore.
	Opts  core.Options
	Check *core.Checkpoint
}

// maxSnapshotBytes bounds how much ReadSnapshot will buffer; a snapshot
// beyond it is rejected, not truncated.
const maxSnapshotBytes = 1 << 26

// fnv64a hashes b with FNV-64a, matching the board/viamap fingerprint
// constants.
func fnv64a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// MetricsInts flattens m into its canonical 22-integer serialization
// order — the snapshot codec's `metrics` line and the grrd job journal
// both use it. MetricsFromInts is its inverse; the two must change
// together.
func MetricsInts(m core.Metrics) []int { return metricsInts(m) }

// MetricsFromInts rebuilds a Metrics from its MetricsInts serialization.
func MetricsFromInts(v []int) (core.Metrics, error) {
	if want := len(metricsInts(core.Metrics{})); len(v) != want {
		return core.Metrics{}, fmt.Errorf("boardio: metrics need %d integers, got %d", want, len(v))
	}
	return unpackMetrics(v), nil
}

// metricsInts flattens m into its canonical 22-integer serialization
// order. unpackMetrics is its inverse; the two must change together.
func metricsInts(m core.Metrics) []int {
	out := []int{m.Connections, m.Routed, m.Failed}
	out = append(out, m.ByMethod[:]...)
	return append(out,
		m.RipUps, m.PutBacks, m.ReRouted, m.ViasAdded, m.LeeExpansions, m.LeeBlocked,
		m.FailNoVictims, m.FailRounds, m.FailNodeBudget, m.TraceCalls, m.ViasCalls,
		m.Passes, m.WireLength)
}

func unpackMetrics(v []int) core.Metrics {
	var m core.Metrics
	m.Connections, m.Routed, m.Failed = v[0], v[1], v[2]
	copy(m.ByMethod[:], v[3:9])
	m.RipUps, m.PutBacks, m.ReRouted, m.ViasAdded, m.LeeExpansions, m.LeeBlocked = v[9], v[10], v[11], v[12], v[13], v[14]
	m.FailNoVictims, m.FailRounds, m.FailNodeBudget, m.TraceCalls, m.ViasCalls = v[15], v[16], v[17], v[18], v[19]
	m.Passes, m.WireLength = v[20], v[21]
	return m
}

// optionField serializes one router option. Booleans travel as 0/1 and
// TimeBudget as nanoseconds, so every value is one integer.
type optionField struct {
	name string
	get  func(*core.Options) int64
	set  func(*core.Options, int64)
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

var optionFields = []optionField{
	{"radius", func(o *core.Options) int64 { return int64(o.Radius) }, func(o *core.Options, v int64) { o.Radius = int(v) }},
	{"sort", func(o *core.Options) int64 { return boolInt(o.Sort) }, func(o *core.Options, v int64) { o.Sort = v != 0 }},
	{"cost", func(o *core.Options) int64 { return int64(o.Cost) }, func(o *core.Options, v int64) { o.Cost = core.CostFn(v) }},
	{"bidirectional", func(o *core.Options) int64 { return boolInt(o.Bidirectional) }, func(o *core.Options, v int64) { o.Bidirectional = v != 0 }},
	{"maxripuprounds", func(o *core.Options) int64 { return int64(o.MaxRipupRounds) }, func(o *core.Options, v int64) { o.MaxRipupRounds = int(v) }},
	{"ripupradius", func(o *core.Options) int64 { return int64(o.RipupRadius) }, func(o *core.Options, v int64) { o.RipupRadius = int(v) }},
	{"costcapfactor", func(o *core.Options) int64 { return int64(o.CostCapFactor) }, func(o *core.Options, v int64) { o.CostCapFactor = int(v) }},
	{"maxpasses", func(o *core.Options) int64 { return int64(o.MaxPasses) }, func(o *core.Options, v int64) { o.MaxPasses = int(v) }},
	{"allowoffgrid", func(o *core.Options) int64 { return boolInt(o.AllowOffGrid) }, func(o *core.Options, v int64) { o.AllowOffGrid = v != 0 }},
	{"idbase", func(o *core.Options) int64 { return int64(o.IDBase) }, func(o *core.Options, v int64) { o.IDBase = int(v) }},
	{"escalate", func(o *core.Options) int64 { return boolInt(o.Escalate) }, func(o *core.Options, v int64) { o.Escalate = v != 0 }},
	{"timebudgetns", func(o *core.Options) int64 { return int64(o.TimeBudget) }, func(o *core.Options, v int64) { o.TimeBudget = time.Duration(v) }},
	{"nodebudget", func(o *core.Options) int64 { return int64(o.NodeBudget) }, func(o *core.Options, v int64) { o.NodeBudget = int(v) }},
	{"paranoid", func(o *core.Options) int64 { return boolInt(o.Paranoid) }, func(o *core.Options, v int64) { o.Paranoid = v != 0 }},
	{"checkpointevery", func(o *core.Options) int64 { return int64(o.CheckpointEvery) }, func(o *core.Options, v int64) { o.CheckpointEvery = int(v) }},
	{"workers", func(o *core.Options) int64 { return int64(o.Workers) }, func(o *core.Options, v int64) { o.Workers = int(v) }},
	// engine and recordregions postdate the fields above; snapshots
	// written before them simply omit the lines, and the zero values they
	// decode to (EngineClassic, regions off) are exactly what those runs
	// used. engine is algorithmic — resume refuses a conflicting -engine.
	{"engine", func(o *core.Options) int64 { return int64(o.Engine) }, func(o *core.Options, v int64) { o.Engine = core.Engine(v) }},
	{"recordregions", func(o *core.Options) int64 { return boolInt(o.RecordRegions) }, func(o *core.Options, v int64) { o.RecordRegions = v != 0 }},
}

// OptionNames lists the router options the snapshot codec — and the
// grrd job API, which accepts them as a name→integer map — understand,
// in serialization order.
func OptionNames() []string {
	names := make([]string, len(optionFields))
	for i, f := range optionFields {
		names[i] = f.name
	}
	return names
}

// OptionInts returns every recognized option's integer serialization
// from o, in OptionNames order — the resolved option vector. The
// fleet's route-cache key hashes this vector rather than the raw
// submission map, so a spec that spells out a default keys identically
// to one that omits it, and an algorithmic option (engine, cost
// weights) is structurally guaranteed a slot in the key.
func OptionInts(o *core.Options) []int64 {
	vals := make([]int64, len(optionFields))
	for i, f := range optionFields {
		vals[i] = f.get(o)
	}
	return vals
}

// ApplyOption sets the named router option on o from its integer
// serialization (booleans as 0/1, the time budget as nanoseconds),
// exactly as the snapshot reader would. Unknown names are an error.
func ApplyOption(o *core.Options, name string, v int64) error {
	for _, f := range optionFields {
		if f.name == name {
			f.set(o, v)
			return nil
		}
	}
	return fmt.Errorf("boardio: unknown router option %q", name)
}

// WriteSnapshot serializes s with a trailing whole-file checksum.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	if s.Design == nil || s.Check == nil {
		return fmt.Errorf("boardio: snapshot needs a design and a checkpoint")
	}
	if len(s.Check.Routes) != len(s.Conns) {
		return fmt.Errorf("boardio: snapshot checkpoint holds %d routes for %d connections",
			len(s.Check.Routes), len(s.Conns))
	}
	var buf bytes.Buffer
	fmt.Fprintln(&buf, "snapshot v1")
	for _, f := range optionFields {
		fmt.Fprintf(&buf, "option %s %d\n", f.name, f.get(&s.Opts))
	}
	cp := s.Check
	fmt.Fprintf(&buf, "cursor %d %d %d\n", cp.Pass, cp.NextPos, cp.PrevUnrouted)
	fmt.Fprint(&buf, "metrics")
	for _, v := range metricsInts(cp.Metrics) {
		fmt.Fprintf(&buf, " %d", v)
	}
	fmt.Fprintln(&buf)
	fmt.Fprintln(&buf, "design begin")
	if err := WriteDesign(&buf, s.Design); err != nil {
		return err
	}
	fmt.Fprintln(&buf, "design end")
	fmt.Fprintln(&buf, "conns begin")
	if err := WriteConnections(&buf, s.Conns); err != nil {
		return err
	}
	fmt.Fprintln(&buf, "conns end")
	for i, cr := range cp.Routes {
		fmt.Fprintf(&buf, "croute %d %d %d %d\n", i, cr.Method, len(cr.Segs), len(cr.Vias))
		for _, cs := range cr.Segs {
			fmt.Fprintf(&buf, "cseg %d %d %d %d\n", cs.Layer, cs.Ch, cs.Lo, cs.Hi)
		}
		for _, v := range cr.Vias {
			fmt.Fprintf(&buf, "cvia %d %d\n", v.X, v.Y)
		}
	}
	fmt.Fprintf(&buf, "checksum %016x\n", fnv64a(buf.Bytes()))
	_, err := w.Write(buf.Bytes())
	return err
}

// ReadSnapshot parses and validates the WriteSnapshot format. The
// checksum must match and every structural count must be internally
// consistent; board-level feasibility (do the routes actually fit) is
// checked later by core.Resume.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxSnapshotBytes+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxSnapshotBytes {
		return nil, fmt.Errorf("boardio: snapshot exceeds %d bytes", maxSnapshotBytes)
	}
	body, err := verifyChecksum(data)
	if err != nil {
		return nil, err
	}

	s := &Snapshot{Check: &core.Checkpoint{}}
	opts := make(map[string]func(*core.Options, int64))
	for _, f := range optionFields {
		opts[f.name] = f.set
	}

	lines := strings.Split(string(body), "\n")
	ln := 0
	fail := func(why string) error {
		return fmt.Errorf("boardio: snapshot line %d: %s", ln, why)
	}
	next := func() (string, bool) {
		for ln < len(lines) {
			l := strings.TrimSpace(lines[ln])
			ln++
			if l == "" || strings.HasPrefix(l, "#") {
				continue
			}
			return l, true
		}
		return "", false
	}
	// collect gathers the raw lines of a begin/end block.
	collect := func(end string) (string, error) {
		var sb strings.Builder
		for ln < len(lines) {
			l := lines[ln]
			ln++
			if strings.TrimSpace(l) == end {
				return sb.String(), nil
			}
			sb.WriteString(l)
			sb.WriteByte('\n')
		}
		return "", fail("unterminated block (missing " + end + ")")
	}

	first, ok := next()
	if !ok || first != "snapshot v1" {
		return nil, fail("want header \"snapshot v1\"")
	}

	var haveCursor, haveMetrics bool
	var cur *core.ConnRoute
	var needSegs, needVias int
	closeRoute := func() error {
		if cur != nil && (needSegs != 0 || needVias != 0) {
			return fail(fmt.Sprintf("croute %d short of %d cseg and %d cvia lines",
				len(s.Check.Routes)-1, needSegs, needVias))
		}
		cur = nil
		return nil
	}

	for {
		line, ok := next()
		if !ok {
			break
		}
		f := strings.Fields(line)
		switch f[0] {
		case "option":
			if len(f) != 3 {
				return nil, fail("option needs name value")
			}
			set := opts[f[1]]
			if set == nil {
				return nil, fail("unknown option " + f[1])
			}
			v, err := strconv.ParseInt(f[2], 10, 64)
			if err != nil {
				return nil, fail("bad option value " + f[2])
			}
			set(&s.Opts, v)
		case "cursor":
			if len(f) != 4 {
				return nil, fail("cursor needs pass nextpos prevunrouted")
			}
			vals, err := atois(f[1:])
			if err != nil {
				return nil, fail(err.Error())
			}
			s.Check.Pass, s.Check.NextPos, s.Check.PrevUnrouted = vals[0], vals[1], vals[2]
			if s.Check.Pass < 0 || s.Check.NextPos < 0 || s.Check.PrevUnrouted < 0 {
				return nil, fail("negative cursor")
			}
			haveCursor = true
		case "metrics":
			want := len(metricsInts(core.Metrics{}))
			if len(f)-1 != want {
				return nil, fail(fmt.Sprintf("metrics needs %d integers, got %d", want, len(f)-1))
			}
			vals, err := atois(f[1:])
			if err != nil {
				return nil, fail(err.Error())
			}
			s.Check.Metrics = unpackMetrics(vals)
			haveMetrics = true
		case "design":
			if len(f) != 2 || f[1] != "begin" {
				return nil, fail("want \"design begin\"")
			}
			block, err := collect("design end")
			if err != nil {
				return nil, err
			}
			d, err := ReadDesign(strings.NewReader(block))
			if err != nil {
				return nil, fmt.Errorf("boardio: snapshot design block: %w", err)
			}
			s.Design = d
		case "conns":
			if len(f) != 2 || f[1] != "begin" {
				return nil, fail("want \"conns begin\"")
			}
			block, err := collect("conns end")
			if err != nil {
				return nil, err
			}
			conns, err := ReadConnections(strings.NewReader(block))
			if err != nil {
				return nil, fmt.Errorf("boardio: snapshot conns block: %w", err)
			}
			s.Conns = conns
		case "croute":
			if err := closeRoute(); err != nil {
				return nil, err
			}
			if len(f) != 5 {
				return nil, fail("croute needs idx method nsegs nvias")
			}
			vals, err := atois(f[1:])
			if err != nil {
				return nil, fail(err.Error())
			}
			idx, method, nsegs, nvias := vals[0], vals[1], vals[2], vals[3]
			if idx != len(s.Check.Routes) {
				return nil, fail(fmt.Sprintf("croute index %d out of order (want %d)", idx, len(s.Check.Routes)))
			}
			if method < 0 || core.Method(method) > core.PutBack {
				return nil, fail("unknown method " + f[2])
			}
			if nsegs < 0 || nvias < 0 || nsegs > 1<<20 || nvias > 1<<20 {
				return nil, fail("implausible croute counts")
			}
			s.Check.Routes = append(s.Check.Routes, core.ConnRoute{Method: core.Method(method)})
			cur = &s.Check.Routes[len(s.Check.Routes)-1]
			needSegs, needVias = nsegs, nvias
		case "cseg":
			if cur == nil || needSegs == 0 {
				return nil, fail("unexpected cseg")
			}
			if len(f) != 5 {
				return nil, fail("cseg needs layer ch lo hi")
			}
			vals, err := atois(f[1:])
			if err != nil {
				return nil, fail(err.Error())
			}
			cur.Segs = append(cur.Segs, core.CheckpointSeg{Layer: vals[0], Ch: vals[1], Lo: vals[2], Hi: vals[3]})
			needSegs--
		case "cvia":
			if cur == nil || needVias == 0 {
				return nil, fail("unexpected cvia")
			}
			if len(f) != 3 {
				return nil, fail("cvia needs x y")
			}
			vals, err := atois(f[1:])
			if err != nil {
				return nil, fail(err.Error())
			}
			cur.Vias = append(cur.Vias, geom.Pt(vals[0], vals[1]))
			needVias--
		default:
			return nil, fail("unknown directive " + f[0])
		}
	}
	if err := closeRoute(); err != nil {
		return nil, err
	}
	if s.Design == nil {
		return nil, fmt.Errorf("boardio: snapshot has no design block")
	}
	if !haveCursor || !haveMetrics {
		return nil, fmt.Errorf("boardio: snapshot missing cursor or metrics")
	}
	if len(s.Check.Routes) != len(s.Conns) {
		return nil, fmt.Errorf("boardio: snapshot holds %d croute records for %d connections",
			len(s.Check.Routes), len(s.Conns))
	}
	return s, nil
}

// verifyChecksum splits data into body and trailer, validating the
// FNV-64a whole-body checksum.
func verifyChecksum(data []byte) ([]byte, error) {
	const tag = "checksum "
	i := bytes.LastIndex(data, []byte("\n"+tag))
	if i < 0 {
		if !bytes.HasPrefix(data, []byte(tag)) {
			return nil, fmt.Errorf("boardio: snapshot has no checksum trailer (truncated?)")
		}
		i = -1 // degenerate: checksum is the first line, body is empty
	}
	body := data[:i+1]
	trailer := strings.TrimSpace(string(data[i+1:]))
	rest, ok := strings.CutPrefix(trailer, tag)
	if !ok {
		return nil, fmt.Errorf("boardio: snapshot has no checksum trailer (truncated?)")
	}
	want, err := strconv.ParseUint(strings.TrimSpace(rest), 16, 64)
	if err != nil {
		return nil, fmt.Errorf("boardio: bad snapshot checksum %q", rest)
	}
	if got := fnv64a(body); got != want {
		return nil, fmt.Errorf("boardio: snapshot checksum mismatch: file says %016x, content hashes to %016x", want, got)
	}
	return body, nil
}

func atois(fields []string) ([]int, error) {
	out := make([]int, len(fields))
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out[i] = v
	}
	return out, nil
}

// IOSeam interposes on the file I/O of AtomicWrite and LoadSnapshot.
// When installed (SetIOSeam), WrapWriter wraps the temp-file writer of
// every atomic write and WrapReader wraps the file reader of every load,
// letting internal/faultinject fail the Nth read or write of a real
// on-disk operation without any filesystem trickery. Either hook may be
// nil to leave that direction untouched.
type IOSeam struct {
	WrapWriter func(io.Writer) io.Writer
	WrapReader func(io.Reader) io.Reader
}

// ioSeam is the installed seam; nil means direct I/O. It is an atomic
// pointer so fault-injection tests can flip it while snapshot writers
// run on other goroutines.
var ioSeam atomic.Pointer[IOSeam]

// SetIOSeam installs s as the package's I/O seam (nil restores direct
// I/O) and returns the previously installed seam so tests can restore
// it.
func SetIOSeam(s *IOSeam) *IOSeam {
	return ioSeam.Swap(s)
}

// AtomicWrite writes a file crash-safely: write produces the bytes into
// a temporary file in path's directory, the temp file is fsynced and
// closed, and only then renamed over path. A crash at any point leaves
// either the previous file or the new one, never a torn or — because of
// the fsync — a zero-length file that the rename made visible before
// the data reached disk. After the rename the parent directory is
// fsynced too: the file fsync makes the *bytes* durable, but the rename
// itself lives in the directory, and without the directory sync a crash
// right after AtomicWrite returns can roll the name back to the old
// file (or to nothing, for a first write) even though the caller was
// told the record was durable. Any failure removes the temp file and
// leaves path untouched. The snapshot codec and the grrd job journal
// both persist through it.
func AtomicWrite(path string, write func(io.Writer) error) error {
	fsys := simfs.Current()
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	var w io.Writer = f
	if s := ioSeam.Load(); s != nil && s.WrapWriter != nil {
		w = s.WrapWriter(f)
	}
	err = write(w)
	if err == nil {
		// The rename only makes durable content visible: sync before it,
		// or a crash between rename and writeback leaves a good name on
		// an empty file. A *failed* fsync is terminal for this write: the
		// kernel may have dropped the dirty pages already, so the temp
		// file's state is unknown and must never be renamed into place.
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("%s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return err
	}
	return SyncDir(filepath.Dir(path))
}

// SyncDir fsyncs a directory, making any rename inside it durable.
// Platforms whose filesystems refuse to fsync directories report
// EINVAL/ENOTSUP; those are ignored — there is nothing more the code
// can do, and failing the write would be worse than the status quo.
// Exported because the journal layer also moves files (quarantine)
// and owes them the same durability.
func SyncDir(dir string) error {
	d, err := simfs.Current().OpenDir(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("fsync %s: %w", dir, err)
	}
	return nil
}

// RemoveStaleTmp deletes leftover "*.tmp" files in dir — the droppings
// of atomic writes that crashed between create and rename. They are
// dead weight (recovery never reads them) but they accumulate across
// crashes and alarm operators, so every startup path sweeps its
// durable directories through here. Returns how many were removed;
// errors on individual removes are ignored (the next sweep retries).
func RemoveStaleTmp(dir string) int {
	fsys := simfs.Current()
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		if fsys.Remove(filepath.Join(dir, e.Name())) == nil {
			n++
		}
	}
	return n
}

// SaveSnapshot writes s to path via AtomicWrite: a crash mid-write can
// never destroy the previous good snapshot or leave a truncated new one.
func SaveSnapshot(path string, s *Snapshot) error {
	return AtomicWrite(path, func(w io.Writer) error {
		return WriteSnapshot(w, s)
	})
}

// LoadSnapshot reads a snapshot from path.
func LoadSnapshot(path string) (*Snapshot, error) {
	f, err := simfs.Current().Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if s := ioSeam.Load(); s != nil && s.WrapReader != nil {
		r = s.WrapReader(f)
	}
	s, err := ReadSnapshot(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Restore rebuilds the snapshot's board — pins placed, checkpointed
// routes re-created — and a router that resumes from the checkpoint
// cursor. The snapshot's own options are used; overlay changes (a fresh
// TimeBudget, a re-attached CheckpointSink) on s.Opts before calling.
func (s *Snapshot) Restore() (*board.Board, *core.Router, error) {
	b, err := board.New(s.Design.GridConfig())
	if err != nil {
		return nil, nil, err
	}
	if err := s.Design.PlacePins(b); err != nil {
		return nil, nil, err
	}
	r, err := core.Resume(b, s.Conns, s.Opts, s.Check)
	if err != nil {
		return nil, nil, err
	}
	return b, r, nil
}
