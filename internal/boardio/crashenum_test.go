package boardio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/simfs"
)

// TestSnapshotCrashEnumeration is the ALICE-style harness over the
// snapshot path: three successive SaveSnapshots are traced through
// LogFS, then every op-boundary crash point is replayed in every
// durability mode. The invariant — AtomicWrite's whole reason to
// exist — is that the snapshot file, when present, is bit-identical
// to one of the three complete versions and always loads cleanly.
func TestSnapshotCrashEnumeration(t *testing.T) {
	snaps := []*Snapshot{testSnapshot(t), testSnapshot(t), testSnapshot(t)}
	// Give each version distinct bytes via the checkpoint cursor.
	for i, s := range snaps {
		s.Check.Pass = i + 1
	}
	versions := make([][]byte, len(snaps))
	for i, s := range snaps {
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, s); err != nil {
			t.Fatal(err)
		}
		versions[i] = buf.Bytes()
	}

	root := t.TempDir()
	l := simfs.NewLogFS(root)
	prev := simfs.Swap(l)
	path := filepath.Join(root, "run.snap")
	for _, s := range snaps {
		if err := SaveSnapshot(path, s); err != nil {
			simfs.Swap(prev)
			t.Fatal(err)
		}
	}
	simfs.Swap(prev)
	ops := l.Ops()
	if len(ops) == 0 {
		t.Fatal("LogFS recorded no ops — AtomicWrite is not going through simfs")
	}

	for _, mode := range []simfs.Mode{simfs.ModeFlushed, simfs.ModeStrict, simfs.ModeTorn} {
		lastSeen := -1 // version index, for monotonicity
		for n := 0; n <= len(ops); n++ {
			st := simfs.Replay(ops[:n], mode)
			data, ok := st.Files["run.snap"]
			if !ok {
				continue // absent is legal only before the first commit; checked below
			}
			ver := -1
			for i, v := range versions {
				if bytes.Equal(data, v) {
					ver = i
					break
				}
			}
			if ver < 0 {
				t.Fatalf("mode %v crash@%d/%d: run.snap (%d bytes) matches no complete version — torn or empty snapshot escaped AtomicWrite",
					mode, n, len(ops), len(data))
			}
			if ver < lastSeen {
				t.Errorf("mode %v crash@%d: snapshot went backwards, v%d after v%d", mode, n, ver+1, lastSeen+1)
			}
			lastSeen = ver

			// The materialized state must load with the real reader.
			out := t.TempDir()
			if err := simfs.Materialize(st, out); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadSnapshot(filepath.Join(out, "run.snap"))
			if err != nil {
				t.Fatalf("mode %v crash@%d: LoadSnapshot: %v", mode, n, err)
			}
			if loaded.Check.Pass != ver+1 {
				t.Fatalf("mode %v crash@%d: loaded pass %d, want %d", mode, n, loaded.Check.Pass, ver+1)
			}
		}
		if lastSeen != len(versions)-1 {
			t.Errorf("mode %v: full replay ends at version %d, want %d", mode, lastSeen+1, len(versions))
		}
	}
}

// swapInject installs an InjectFS for the test and restores the OS
// filesystem on cleanup.
func swapInject(t *testing.T) *simfs.InjectFS {
	t.Helper()
	inj := simfs.NewInjectFS(nil)
	prev := simfs.Swap(inj)
	t.Cleanup(func() { simfs.Swap(prev) })
	return inj
}

// TestAtomicWriteFsyncFailure: a failed file fsync means the kernel may
// already have dropped the dirty pages, so the write must be abandoned —
// error surfaced, temp file removed, target untouched (fsyncgate rule:
// never rename a file whose durability is unknown).
func TestAtomicWriteFsyncFailure(t *testing.T) {
	snap := testSnapshot(t)
	path := filepath.Join(t.TempDir(), "run.snap")
	if err := SaveSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	inj := swapInject(t)
	inj.Arm(&simfs.Rule{Op: simfs.OpSync, Path: "run.snap.tmp", Err: syscall.EIO})
	if err := SaveSnapshot(path, snap); !errors.Is(err, syscall.EIO) {
		t.Fatalf("save with failing fsync: err = %v, want EIO", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("failed fsync left the temporary file behind")
	}
	after, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(after, good) {
		t.Errorf("failed fsync disturbed the previous snapshot (err=%v)", err)
	}
}

// TestAtomicWriteSyncDirFailure: a genuine error fsyncing the parent
// directory must surface — the rename is not durable without it.
func TestAtomicWriteSyncDirFailure(t *testing.T) {
	snap := testSnapshot(t)
	path := filepath.Join(t.TempDir(), "run.snap")

	inj := swapInject(t)
	inj.Arm(&simfs.Rule{Op: simfs.OpSyncDir, Err: syscall.EIO})
	if err := SaveSnapshot(path, snap); !errors.Is(err, syscall.EIO) {
		t.Fatalf("save with failing dir fsync: err = %v, want EIO", err)
	}
}

// TestSyncDirToleratesEINVAL: filesystems that refuse to fsync
// directories (EINVAL/ENOTSUP) must not fail the write — there is
// nothing better the code can do.
func TestSyncDirToleratesEINVAL(t *testing.T) {
	dir := t.TempDir()
	inj := swapInject(t)
	inj.Arm(&simfs.Rule{Op: simfs.OpSyncDir, Sticky: true, Err: syscall.EINVAL})
	if err := SyncDir(dir); err != nil {
		t.Fatalf("SyncDir with EINVAL: %v, want nil", err)
	}
}

// TestAtomicWriteENOSPCOnCreate: disk-full at create surfaces the real
// errno (the server's degraded-posture classifier keys on it) and the
// target is untouched.
func TestAtomicWriteENOSPCOnCreate(t *testing.T) {
	snap := testSnapshot(t)
	path := filepath.Join(t.TempDir(), "run.snap")

	inj := swapInject(t)
	inj.Arm(&simfs.Rule{Op: simfs.OpCreate, Path: "run.snap.tmp", Err: syscall.ENOSPC})
	if err := SaveSnapshot(path, snap); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("save with full disk: err = %v, want ENOSPC", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("failed create somehow produced the target file")
	}
}

// TestAtomicWriteShortWrite: a short write (torn by the kernel) must
// fail the save and never reach the target name.
func TestAtomicWriteShortWrite(t *testing.T) {
	snap := testSnapshot(t)
	path := filepath.Join(t.TempDir(), "run.snap")

	inj := swapInject(t)
	inj.Arm(&simfs.Rule{Op: simfs.OpWrite, Path: "run.snap.tmp", Err: syscall.ENOSPC, Short: 10})
	if err := SaveSnapshot(path, snap); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("save with short write: err = %v, want ENOSPC", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("short write reached the target name")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("short write left its temporary file behind")
	}
}

// TestRemoveStaleTmp: the startup sweep removes atomic-write droppings
// and nothing else.
func TestRemoveStaleTmp(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"a.tmp", "b.snap.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "keep.snap"), []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub.tmp"), 0o777); err != nil {
		t.Fatal(err)
	}
	if n := RemoveStaleTmp(dir); n != 2 {
		t.Fatalf("RemoveStaleTmp = %d, want 2", n)
	}
	if _, err := os.Stat(filepath.Join(dir, "keep.snap")); err != nil {
		t.Error("sweep removed a non-tmp file")
	}
	if _, err := os.Stat(filepath.Join(dir, "sub.tmp")); err != nil {
		t.Error("sweep removed a directory")
	}
	if n := RemoveStaleTmp(dir); n != 0 {
		t.Fatalf("second sweep = %d, want 0", n)
	}
}
