package boardio

import (
	"strings"
	"testing"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/stringer"
	"repro/internal/workload"
)

func TestDesignRoundTrip(t *testing.T) {
	d, err := workload.Generate(workload.SmallSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteDesign(&sb, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDesign(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadDesign: %v\n%s", err, sb.String()[:200])
	}
	if got.Name != d.Name || got.ViaCols != d.ViaCols || got.ViaRows != d.ViaRows ||
		got.Layers != d.Layers || got.Pitch != 3 {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Parts) != len(d.Parts) || len(got.Nets) != len(d.Nets) {
		t.Fatalf("parts %d/%d nets %d/%d", len(got.Parts), len(d.Parts), len(got.Nets), len(d.Nets))
	}
	for i := range d.Parts {
		if got.Parts[i].Name != d.Parts[i].Name || got.Parts[i].At != d.Parts[i].At ||
			got.Parts[i].Tech != d.Parts[i].Tech || got.Parts[i].Pkg.Pins() != d.Parts[i].Pkg.Pins() {
			t.Fatalf("part %d mismatch", i)
		}
	}
	for i := range d.Nets {
		a, b := d.Nets[i], got.Nets[i]
		if a.Name != b.Name || a.Tech != b.Tech || len(a.Pins) != len(b.Pins) {
			t.Fatalf("net %d mismatch", i)
		}
		for j := range a.Pins {
			if a.Pins[j].Ref.Pos() != b.Pins[j].Ref.Pos() || a.Pins[j].Func != b.Pins[j].Func {
				t.Fatalf("net %d pin %d mismatch", i, j)
			}
		}
	}
	// The round-tripped design must string identically.
	s1, err := stringer.String(d, stringer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := stringer.String(got, stringer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Conns) != len(s2.Conns) {
		t.Fatalf("stringing differs: %d vs %d conns", len(s1.Conns), len(s2.Conns))
	}
	for i := range s1.Conns {
		if s1.Conns[i].A != s2.Conns[i].A || s1.Conns[i].B != s2.Conns[i].B {
			t.Fatalf("conn %d differs", i)
		}
	}
}

func TestConnectionsRoundTrip(t *testing.T) {
	conns := []core.Connection{
		{A: geom.Pt(0, 3), B: geom.Pt(9, 3), Net: "N1", Class: "ECL", TargetDelayPs: 450},
		{A: geom.Pt(6, 6), B: geom.Pt(12, 0)},
	}
	var sb strings.Builder
	if err := WriteConnections(&sb, conns); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConnections(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d conns", len(got))
	}
	for i := range conns {
		if got[i] != conns[i] {
			t.Errorf("conn %d: %+v != %+v", i, got[i], conns[i])
		}
	}
}

func TestReadDesignErrors(t *testing.T) {
	cases := map[string]string{
		"no board line":   "part U1 DIP24 0 0 ECL",
		"bad directive":   "board x 5 5 2 3\nfrobnicate",
		"unknown package": "board x 30 30 2 3\npart U1 NOPE 0 0 ECL",
		"bad tech":        "board x 30 30 2 3\npackage P 0 0,0\npart U1 P 0 0 CMOS",
		"bad offset":      "board x 30 30 2 3\npackage P 0 zap",
		"unknown part":    "board x 30 30 2 3\npackage P 0 0,0 1,0\npart U1 P 0 0 ECL\nnet N ECL 0 U9.1/out U1.2/in",
		"bad pin func":    "board x 30 30 2 3\npackage P 0 0,0 1,0\npart U1 P 0 0 ECL\nnet N ECL 0 U1.1/sideways U1.2/in",
		"duplicate part":  "board x 30 30 2 3\npackage P 0 0,0\npart U1 P 0 0 ECL\npart U1 P 5 5 ECL",
	}
	for name, input := range cases {
		if _, err := ReadDesign(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadConnectionsErrors(t *testing.T) {
	for name, input := range map[string]string{
		"short line": "conn 1 2 3",
		"bad coord":  "conn a 2 3 4 - - 0",
		"bad delay":  "conn 1 2 3 4 - - x",
		"not conn":   "link 1 2 3 4 - - 0",
	} {
		if _, err := ReadConnections(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCommentsAndBlanksIgnored(t *testing.T) {
	input := "# heading\n\nconn 1 2 3 4 - - 0\n  # trailing comment line\n"
	got, err := ReadConnections(strings.NewReader(input))
	if err != nil || len(got) != 1 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestWriteRoutes(t *testing.T) {
	d, err := workload.Generate(workload.SmallSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := board.New(d.GridConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PlacePins(b); err != nil {
		t.Fatal(err)
	}
	sr, err := stringer.String(d, stringer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.New(b, sr.Conns, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res := r.Route()
	var sb strings.Builder
	if err := WriteRoutes(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "route ") != len(sr.Conns) {
		t.Errorf("route lines = %d, want %d", strings.Count(out, "route "), len(sr.Conns))
	}
	viaLines := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "via ") {
			viaLines++
		}
	}
	if viaLines != res.Metrics.ViasAdded {
		t.Errorf("via lines = %d, want %d", viaLines, res.Metrics.ViasAdded)
	}
	if !strings.Contains(out, "seg ") {
		t.Error("no segments written")
	}
}

func TestRoutesRoundTripAndApply(t *testing.T) {
	d, err := workload.Generate(workload.SmallSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	b1, err := board.New(d.GridConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PlacePins(b1); err != nil {
		t.Fatal(err)
	}
	sr, err := stringer.String(d, stringer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.New(b1, sr.Conns, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res := r.Route(); !res.Complete() {
		t.Fatal("routing failed")
	}

	var sb strings.Builder
	if err := WriteRoutes(&sb, r); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadRoutes(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(sr.Conns) {
		t.Fatalf("records = %d, conns = %d", len(recs), len(sr.Conns))
	}

	// Apply onto a fresh board with pins only: the layers must end up
	// cell-for-cell identical to the routed original.
	b2, err := board.New(d.GridConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PlacePins(b2); err != nil {
		t.Fatal(err)
	}
	if err := ApplyRoutes(b2, recs, 0); err != nil {
		t.Fatal(err)
	}
	for li := range b1.Layers {
		if b1.Layers[li].Dump() != b2.Layers[li].Dump() {
			t.Fatalf("layer %d differs after apply", li)
		}
	}
	if err := b2.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyRoutesDetectsCollision(t *testing.T) {
	d, err := workload.Generate(workload.SmallSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	b1, err := board.New(d.GridConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PlacePins(b1); err != nil {
		t.Fatal(err)
	}
	sr, err := stringer.String(d, stringer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.New(b1, sr.Conns, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r.Route()
	var sb strings.Builder
	if err := WriteRoutes(&sb, r); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadRoutes(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	// Applying onto the ALREADY routed board must collide immediately.
	if err := ApplyRoutes(b1, recs, 0); err == nil {
		t.Fatal("collision not detected")
	}
}

func TestReadRoutesErrors(t *testing.T) {
	for name, input := range map[string]string{
		"seg before route": "seg 0 1 2 3 4",
		"via before route": "via 1 2",
		"bad route":        "route x lee N",
		"bad seg":          "route 0 lee N\nseg a 1 2 3 4",
		"bad via":          "route 0 lee N\nvia a 2",
		"unknown":          "zorch",
	} {
		if _, err := ReadRoutes(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
