package boardio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/geom"
)

// This file is the edit-script codec: the design deltas incremental
// re-routing accepts (core.Edit), as a line-oriented text format shared
// by `grr -edits` and grrd's POST /jobs/{id}/edit body:
//
//	block <minx> <miny> <maxx> <maxy>          new keepout, grid units
//	remove-net <name>                          drop every connection of the net
//	add-conn <ax> <ay> <bx> <by> <net> <class> <delayps>
//
// add-conn reuses the .con field layout ("-" for an empty net or class).
// Blank lines and '#' comments are ignored, as in every boardio format.

// WriteEdits serializes an edit list.
func WriteEdits(w io.Writer, edits []core.Edit) error {
	bw := bufio.NewWriter(w)
	for i, e := range edits {
		switch e.Op {
		case core.EditBlock:
			fmt.Fprintf(bw, "block %d %d %d %d\n", e.Rect.MinX, e.Rect.MinY, e.Rect.MaxX, e.Rect.MaxY)
		case core.EditRemoveNet:
			fmt.Fprintf(bw, "remove-net %s\n", e.Net)
		case core.EditAddConn:
			c := e.Conn
			fmt.Fprintf(bw, "add-conn %d %d %d %d %s %s %g\n",
				c.A.X, c.A.Y, c.B.X, c.B.Y, nameOr(c.Net, "-"), nameOr(c.Class, "-"), c.TargetDelayPs)
		default:
			return fmt.Errorf("boardio: edit %d has unknown op %d", i, e.Op)
		}
	}
	return bw.Flush()
}

// ReadEdits parses the WriteEdits format.
func ReadEdits(r io.Reader) ([]core.Edit, error) {
	var out []core.Edit
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		fail := func(why string) error {
			return fmt.Errorf("boardio: edits line %d: %s: %q", lineNo, why, line)
		}
		switch f[0] {
		case "block":
			if len(f) != 5 {
				return nil, fail("block needs minx miny maxx maxy")
			}
			vals, err := atois(f[1:])
			if err != nil {
				return nil, fail(err.Error())
			}
			rect := geom.R(vals[0], vals[1], vals[2], vals[3])
			if rect.Empty() {
				return nil, fail("empty block rectangle")
			}
			out = append(out, core.Edit{Op: core.EditBlock, Rect: rect})
		case "remove-net":
			if len(f) != 2 {
				return nil, fail("remove-net needs a net name")
			}
			out = append(out, core.Edit{Op: core.EditRemoveNet, Net: f[1]})
		case "add-conn":
			if len(f) != 8 {
				return nil, fail("add-conn needs ax ay bx by net class delay")
			}
			coords, err := atois(f[1:5])
			if err != nil {
				return nil, fail(err.Error())
			}
			delay, err := strconv.ParseFloat(f[7], 64)
			if err != nil {
				return nil, fail("bad delay " + f[7])
			}
			c := core.Connection{
				A: geom.Pt(coords[0], coords[1]), B: geom.Pt(coords[2], coords[3]),
				TargetDelayPs: delay,
			}
			if f[5] != "-" {
				c.Net = f[5]
			}
			if f[6] != "-" {
				c.Class = f[6]
			}
			out = append(out, core.Edit{Op: core.EditAddConn, Conn: c})
		default:
			return nil, fail("unknown edit directive " + f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
