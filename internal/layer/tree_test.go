package layer

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

func TestTreeChannelBasics(t *testing.T) {
	tc := NewTreeChannel(30)
	if !tc.Add(5, 10, 1) {
		t.Fatal("Add failed")
	}
	if tc.Add(8, 12, 2) {
		t.Error("overlapping Add accepted")
	}
	if !tc.Add(11, 15, 2) {
		t.Fatal("adjacent Add failed")
	}
	if tc.Len() != 2 {
		t.Errorf("Len = %d", tc.Len())
	}
	if tc.Free(7) || !tc.Free(4) || tc.Free(-1) || tc.Free(30) {
		t.Error("Free misjudges")
	}
	if tc.OwnerAt(12) != 2 || tc.OwnerAt(4) != NoConn {
		t.Error("OwnerAt misjudges")
	}
	if !tc.RemoveAt(7) {
		t.Fatal("RemoveAt failed")
	}
	if tc.RemoveAt(7) {
		t.Error("double remove succeeded")
	}
	iv, ok := tc.FreeInterval(4)
	if !ok || iv != geom.Iv(0, 10) {
		t.Errorf("FreeInterval = %v,%v", iv, ok)
	}
	if msg := tc.audit(); msg != "" {
		t.Errorf("audit: %s", msg)
	}
}

// TestTreeMatchesList drives the tree and the linked-list channel with
// identical random operation sequences and demands identical observable
// behaviour; this is the differential test behind the E-CHAN ablation.
func TestTreeMatchesList(t *testing.T) {
	const length = 80
	rng := rand.New(rand.NewSource(9))

	for trial := 0; trial < 30; trial++ {
		list := NewLayer(grid.Vertical, 0, 1, length).Chan(0)
		tree := NewTreeChannel(length)

		for op := 0; op < 500; op++ {
			switch rng.Intn(3) {
			case 0:
				lo := rng.Intn(length)
				hi := min(length-1, lo+rng.Intn(7))
				id := ConnID(rng.Intn(10))
				gotList := list.Add(lo, hi, id) != nil
				gotTree := tree.Add(lo, hi, id)
				if gotList != gotTree {
					t.Fatalf("trial %d: Add(%d,%d) list=%v tree=%v", trial, lo, hi, gotList, gotTree)
				}
			case 1:
				pos := rng.Intn(length)
				s := list.SegmentAt(pos)
				ok := tree.RemoveAt(pos)
				if (s != nil) != ok {
					t.Fatalf("trial %d: RemoveAt(%d) list=%v tree=%v", trial, pos, s != nil, ok)
				}
				if s != nil {
					list.Remove(s)
				}
			case 2:
				pos := rng.Intn(length+4) - 2
				if list.Free(pos) != tree.Free(pos) {
					t.Fatalf("trial %d: Free(%d) differs", trial, pos)
				}
				li, lok := list.FreeInterval(pos)
				ti, tok := tree.FreeInterval(pos)
				if lok != tok || (lok && li != ti) {
					t.Fatalf("trial %d: FreeInterval(%d): list %v,%v tree %v,%v", trial, pos, li, lok, ti, tok)
				}
			}
			if msg := tree.audit(); msg != "" {
				t.Fatalf("trial %d: tree audit: %s", trial, msg)
			}
		}
		if list.Len() != tree.Len() {
			t.Fatalf("trial %d: Len list=%d tree=%d", trial, list.Len(), tree.Len())
		}
	}
}

func TestTreeDeleteShapes(t *testing.T) {
	// Exercise all three BST deletion cases: leaf, one child, two
	// children (with and without adjacent successor).
	build := func() *TreeChannel {
		tc := NewTreeChannel(100)
		for _, iv := range [][2]int{{50, 51}, {20, 21}, {80, 81}, {10, 11}, {30, 31}, {70, 71}, {90, 91}, {60, 61}} {
			if !tc.Add(iv[0], iv[1], 1) {
				panic("setup")
			}
		}
		return tc
	}
	for _, pos := range []int{10, 20, 50, 80, 90, 30} {
		tc := build()
		if !tc.RemoveAt(pos) {
			t.Fatalf("RemoveAt(%d) failed", pos)
		}
		if msg := tc.audit(); msg != "" {
			t.Fatalf("after RemoveAt(%d): %s", pos, msg)
		}
		if !tc.Free(pos) {
			t.Fatalf("RemoveAt(%d) left position occupied", pos)
		}
	}
}
