// Package layer implements the paper's Section 4 data representation for
// one signal layer: an array of channels, each holding a doubly linked,
// position-sorted list of segments with a moving head-of-list cursor.
//
// Free space is never stored; it is inferred from the gaps between
// segments. The moving cursor exploits the strong locality of the access
// pattern while routing a single connection — the change from a binary
// tree of segments to this structure halved grr's running time
// (Section 12; the tree variant is kept in this package for the
// corresponding ablation benchmark).
package layer

import (
	"fmt"
	"strings"

	"repro/internal/geom"
	"repro/internal/grid"
)

// ConnID identifies the owner of a segment. Non-negative IDs are routable
// connections; negative IDs are permanent obstacles that the router must
// never rip up.
type ConnID int32

const (
	// NoConn marks "no owner"; it never appears in a stored segment.
	NoConn ConnID = -100
	// PinOwner marks the unit segments occupying pin sites on every layer.
	PinOwner ConnID = -1
	// FillOwner marks temporary tesselation fill (Section 10.2). Fill is
	// permanent from the router's point of view but removable by the
	// tiles package between passes.
	FillOwner ConnID = -2
	// KeepoutOwner marks board-level keepouts (mounting holes, edges).
	KeepoutOwner ConnID = -3
)

// Permanent reports whether segments owned by id may never be ripped up.
func (id ConnID) Permanent() bool { return id < 0 }

// Segment is a used interval [Lo, Hi] of one channel, owned by one
// connection. Segments of a channel never overlap and are kept sorted.
type Segment struct {
	Lo, Hi int
	Owner  ConnID

	prev, next *Segment
	ch         *Channel
}

// Interval returns the occupied range of s.
func (s *Segment) Interval() geom.Interval { return geom.Iv(s.Lo, s.Hi) }

// Channel returns the channel index s lives in, and is only valid while s
// is stored.
func (s *Segment) Channel() int { return s.ch.index }

// Stored reports whether s is currently linked into a channel. A false
// result means the segment handle is stale (its metal was removed).
func (s *Segment) Stored() bool { return s.ch != nil }

// Next returns the next-higher segment in the same channel, or nil.
func (s *Segment) Next() *Segment { return s.next }

// Prev returns the next-lower segment in the same channel, or nil.
func (s *Segment) Prev() *Segment { return s.prev }

// Channel is one routing channel: a doubly linked list of segments sorted
// by position, plus the moving cursor that makes localized probes cheap.
type Channel struct {
	head, tail *Segment
	cursor     *Segment
	length     int
	index      int
	count      int
}

// Layer is one signal layer of the board.
type Layer struct {
	Orient grid.Orientation
	Index  int // position in the board's layer stack

	chans   []Channel
	chanLen int
}

// NewLayer builds an empty layer with the given orientation, channel
// count and channel length, occupying stack position index.
func NewLayer(orient grid.Orientation, index, numChans, chanLen int) *Layer {
	l := &Layer{
		Orient:  orient,
		Index:   index,
		chans:   make([]Channel, numChans),
		chanLen: chanLen,
	}
	for i := range l.chans {
		l.chans[i].length = chanLen
		l.chans[i].index = i
	}
	return l
}

// NumChannels returns the number of channels on the layer.
func (l *Layer) NumChannels() int { return len(l.chans) }

// ChannelLength returns the number of positions along each channel.
func (l *Layer) ChannelLength() int { return l.chanLen }

// Chan returns channel i.
func (l *Layer) Chan(i int) *Channel { return &l.chans[i] }

// Add inserts a segment [lo, hi] owned by owner into channel ch.
// It returns nil if the interval is out of range or collides with an
// existing segment; collisions are an expected outcome while probing
// alternatives, not an error condition.
func (l *Layer) Add(ch, lo, hi int, owner ConnID) *Segment {
	if ch < 0 || ch >= len(l.chans) {
		return nil
	}
	return l.chans[ch].Add(lo, hi, owner)
}

// Remove unlinks a previously added segment.
func (l *Layer) Remove(s *Segment) { s.ch.Remove(s) }

// Index returns the channel index of c within its layer.
func (c *Channel) Index() int { return c.index }

// Len returns the number of segments stored in c.
func (c *Channel) Len() int { return c.count }

// locate positions the cursor on the segment with the smallest Hi >= pos
// and returns it (nil if every segment ends below pos, i.e. pos is above
// the last segment). Starting the walk from the previous cursor position
// is the paper's "moving head-of-list pointer".
func (c *Channel) locate(pos int) *Segment {
	s := c.cursor
	if s == nil {
		s = c.head
		if s == nil {
			return nil
		}
	}
	// Walk toward pos from wherever the last operation left the cursor.
	for s.Hi < pos {
		if s.next == nil {
			c.cursor = s
			return nil
		}
		s = s.next
	}
	for s.prev != nil && s.prev.Hi >= pos {
		s = s.prev
	}
	c.cursor = s
	return s
}

// Add inserts [lo, hi] owned by owner, returning the new segment or nil
// if the interval is invalid, out of channel bounds, or not free.
func (c *Channel) Add(lo, hi int, owner ConnID) *Segment {
	if lo > hi || lo < 0 || hi >= c.length {
		return nil
	}
	after := c.locate(lo) // first segment with Hi >= lo
	if after != nil && after.Lo <= hi {
		return nil // collision
	}
	s := &Segment{Lo: lo, Hi: hi, Owner: owner, ch: c}
	if after == nil {
		// Append at tail.
		s.prev = c.tail
		if c.tail != nil {
			c.tail.next = s
		} else {
			c.head = s
		}
		c.tail = s
	} else {
		s.next = after
		s.prev = after.prev
		after.prev = s
		if s.prev != nil {
			s.prev.next = s
		} else {
			c.head = s
		}
	}
	c.cursor = s
	c.count++
	return s
}

// Remove unlinks s from c. Removing a segment that is not stored in c is
// a logic error and panics.
func (c *Channel) Remove(s *Segment) {
	if s.ch != c {
		panic("layer: Remove of segment from wrong channel")
	}
	if s.prev != nil {
		s.prev.next = s.next
	} else {
		c.head = s.next
	}
	if s.next != nil {
		s.next.prev = s.prev
	} else {
		c.tail = s.prev
	}
	if c.cursor == s {
		if s.next != nil {
			c.cursor = s.next
		} else {
			c.cursor = s.prev
		}
	}
	s.prev, s.next, s.ch = nil, nil, nil
	c.count--
}

// SegmentAt returns the segment covering pos, or nil if pos is free or
// out of range.
func (c *Channel) SegmentAt(pos int) *Segment {
	if pos < 0 || pos >= c.length {
		return nil
	}
	s := c.locate(pos)
	if s != nil && s.Lo <= pos {
		return s
	}
	return nil
}

// Free reports whether pos is unoccupied (false for out-of-range
// positions: off-board space is not usable).
func (c *Channel) Free(pos int) bool {
	if pos < 0 || pos >= c.length {
		return false
	}
	return c.SegmentAt(pos) == nil
}

// FreeInterval returns the maximal free interval containing pos.
// ok is false if pos is occupied or out of range.
func (c *Channel) FreeInterval(pos int) (iv geom.Interval, ok bool) {
	if pos < 0 || pos >= c.length {
		return geom.Interval{}, false
	}
	s := c.locate(pos)
	if s != nil && s.Lo <= pos {
		return geom.Interval{}, false
	}
	lo, hi := 0, c.length-1
	if s != nil {
		hi = s.Lo - 1
		if s.prev != nil {
			lo = s.prev.Hi + 1
		}
	} else if c.tail != nil {
		lo = c.tail.Hi + 1
	}
	return geom.Iv(lo, hi), true
}

// VisitFree calls f for every maximal free interval of c that overlaps
// win, in increasing order, passing the *unclipped* maximal interval.
// Iteration stops early if f returns false. Callers clip to win
// themselves when needed; the unclipped bounds identify the interval
// uniquely, which the search algorithms use as a visited-set key.
func (c *Channel) VisitFree(win geom.Interval, f func(iv geom.Interval) bool) {
	win = win.Intersect(geom.Iv(0, c.length-1))
	if win.Empty() {
		return
	}
	s := c.locate(win.Lo) // first segment with Hi >= win.Lo
	lo := 0
	if s == nil {
		if c.tail != nil {
			lo = c.tail.Hi + 1
		}
		if lo <= c.length-1 {
			f(geom.Iv(lo, c.length-1))
		}
		return
	}
	if s.prev != nil {
		lo = s.prev.Hi + 1
	}
	for {
		if lo <= s.Lo-1 {
			iv := geom.Iv(lo, s.Lo-1)
			if iv.Overlaps(win) && !f(iv) {
				return
			}
			if iv.Lo > win.Hi {
				return
			}
		}
		lo = s.Hi + 1
		if lo > win.Hi {
			return
		}
		if s.next == nil {
			if lo <= c.length-1 {
				f(geom.Iv(lo, c.length-1))
			}
			return
		}
		s = s.next
	}
}

// VisitUsed calls f for every segment of c overlapping win, in increasing
// order. Iteration stops early if f returns false.
func (c *Channel) VisitUsed(win geom.Interval, f func(s *Segment) bool) {
	win = win.Intersect(geom.Iv(0, c.length-1))
	if win.Empty() {
		return
	}
	s := c.locate(win.Lo)
	for s != nil && s.Lo <= win.Hi {
		if !f(s) {
			return
		}
		s = s.next
	}
}

// VisitSegments calls f for every stored segment of the layer, in
// channel order and position order within each channel — a canonical
// traversal, so two layers holding the same metal visit it identically
// regardless of insertion history. Iteration stops early if f returns
// false. Board fingerprinting and snapshot serialization are built on
// it.
func (l *Layer) VisitSegments(f func(ch int, s *Segment) bool) {
	for i := range l.chans {
		for s := l.chans[i].head; s != nil; s = s.next {
			if !f(i, s) {
				return
			}
		}
	}
}

// audit validates the channel invariants, returning a description of the
// first violation found, or "" if the channel is consistent. Tests use it
// after randomized operation sequences.
func (c *Channel) audit() string {
	var prev *Segment
	n := 0
	for s := c.head; s != nil; s = s.next {
		n++
		if s.ch != c {
			return fmt.Sprintf("segment %v has wrong channel backref", s.Interval())
		}
		if s.Lo > s.Hi || s.Lo < 0 || s.Hi >= c.length {
			return fmt.Sprintf("segment %v out of bounds (len %d)", s.Interval(), c.length)
		}
		if s.prev != prev {
			return fmt.Sprintf("segment %v has broken prev link", s.Interval())
		}
		if prev != nil && prev.Hi >= s.Lo {
			return fmt.Sprintf("segments %v and %v overlap or are unsorted", prev.Interval(), s.Interval())
		}
		prev = s
	}
	if c.tail != prev {
		return "tail does not point at last segment"
	}
	if n != c.count {
		return fmt.Sprintf("count %d but %d segments linked", c.count, n)
	}
	if c.cursor != nil {
		found := false
		for s := c.head; s != nil; s = s.next {
			if s == c.cursor {
				found = true
				break
			}
		}
		if !found {
			return "cursor points at unlinked segment"
		}
	}
	return ""
}

// Audit validates every channel of the layer; see Channel audit.
func (l *Layer) Audit() error {
	for i := range l.chans {
		if msg := l.chans[i].audit(); msg != "" {
			return fmt.Errorf("layer %d channel %d: %s", l.Index, i, msg)
		}
	}
	return nil
}

// Dump renders the layer as ASCII art for debugging: one row per channel,
// '.' for free and the last hex digit of the owner for used positions.
func (l *Layer) Dump() string {
	var b strings.Builder
	for i := range l.chans {
		row := make([]byte, l.chanLen)
		for j := range row {
			row[j] = '.'
		}
		for s := l.chans[i].head; s != nil; s = s.next {
			mark := byte('#')
			if s.Owner >= 0 {
				mark = "0123456789abcdef"[int(s.Owner)%16]
			} else {
				switch s.Owner {
				case PinOwner:
					mark = 'P'
				case FillOwner:
					mark = 'F'
				case KeepoutOwner:
					mark = 'K'
				}
			}
			for p := s.Lo; p <= s.Hi; p++ {
				row[p] = mark
			}
		}
		fmt.Fprintf(&b, "%4d |%s|\n", i, row)
	}
	return b.String()
}
