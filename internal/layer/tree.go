package layer

import (
	"fmt"

	"repro/internal/geom"
)

// TreeChannel is the binary-search-tree channel representation that early
// versions of grr used (Section 12). Segments are keyed by Lo in an
// unbalanced BST. The paper reports that replacing this structure with
// the doubly linked list and moving cursor halved total running time,
// because channel access while routing one connection is highly
// localized, not random; the ablation benchmark E-CHAN replays
// router-like op traces against both structures.
//
// TreeChannel mirrors the Channel API closely enough for the benchmark
// and for differential tests, but the router proper always uses Channel.
type TreeChannel struct {
	root   *treeNode
	length int
	count  int
}

type treeNode struct {
	lo, hi int
	owner  ConnID

	left, right, parent *treeNode
}

// NewTreeChannel builds an empty tree channel with the given length.
func NewTreeChannel(length int) *TreeChannel {
	return &TreeChannel{length: length}
}

// Len returns the number of stored segments.
func (t *TreeChannel) Len() int { return t.count }

// Add inserts [lo, hi]; it returns false on bounds violation or collision.
func (t *TreeChannel) Add(lo, hi int, owner ConnID) bool {
	if lo > hi || lo < 0 || hi >= t.length {
		return false
	}
	if pred := t.floor(lo); pred != nil && pred.hi >= lo {
		return false
	}
	if succ := t.ceil(lo); succ != nil && succ.lo <= hi {
		return false
	}
	n := &treeNode{lo: lo, hi: hi, owner: owner}
	if t.root == nil {
		t.root = n
	} else {
		cur := t.root
		for {
			if lo < cur.lo {
				if cur.left == nil {
					cur.left = n
					n.parent = cur
					break
				}
				cur = cur.left
			} else {
				if cur.right == nil {
					cur.right = n
					n.parent = cur
					break
				}
				cur = cur.right
			}
		}
	}
	t.count++
	return true
}

// RemoveAt deletes the segment covering pos; it returns false if pos is
// free.
func (t *TreeChannel) RemoveAt(pos int) bool {
	n := t.nodeAt(pos)
	if n == nil {
		return false
	}
	t.delete(n)
	t.count--
	return true
}

// Free reports whether pos is unoccupied and in range.
func (t *TreeChannel) Free(pos int) bool {
	if pos < 0 || pos >= t.length {
		return false
	}
	return t.nodeAt(pos) == nil
}

// OwnerAt returns the owner of the segment covering pos, or NoConn.
func (t *TreeChannel) OwnerAt(pos int) ConnID {
	if n := t.nodeAt(pos); n != nil {
		return n.owner
	}
	return NoConn
}

// FreeInterval returns the maximal free interval containing pos.
func (t *TreeChannel) FreeInterval(pos int) (geom.Interval, bool) {
	if pos < 0 || pos >= t.length || t.nodeAt(pos) != nil {
		return geom.Interval{}, false
	}
	lo, hi := 0, t.length-1
	if pred := t.floor(pos); pred != nil {
		lo = pred.hi + 1
	}
	if succ := t.ceil(pos); succ != nil {
		hi = succ.lo - 1
	}
	return geom.Iv(lo, hi), true
}

// nodeAt returns the node covering pos, if any. Because segments never
// overlap, the covering node is the floor node (greatest lo <= pos) when
// its hi reaches pos.
func (t *TreeChannel) nodeAt(pos int) *treeNode {
	if n := t.floor(pos); n != nil && n.hi >= pos {
		return n
	}
	return nil
}

// floor returns the node with the greatest lo <= pos.
func (t *TreeChannel) floor(pos int) *treeNode {
	var best *treeNode
	cur := t.root
	for cur != nil {
		if cur.lo <= pos {
			best = cur
			cur = cur.right
		} else {
			cur = cur.left
		}
	}
	return best
}

// ceil returns the node with the smallest lo > pos.
func (t *TreeChannel) ceil(pos int) *treeNode {
	var best *treeNode
	cur := t.root
	for cur != nil {
		if cur.lo > pos {
			best = cur
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
	return best
}

func (t *TreeChannel) replaceChild(old, repl *treeNode) {
	p := old.parent
	if repl != nil {
		repl.parent = p
	}
	switch {
	case p == nil:
		t.root = repl
	case p.left == old:
		p.left = repl
	default:
		p.right = repl
	}
}

func (t *TreeChannel) delete(n *treeNode) {
	switch {
	case n.left == nil:
		t.replaceChild(n, n.right)
	case n.right == nil:
		t.replaceChild(n, n.left)
	default:
		// Splice in the in-order successor.
		s := n.right
		for s.left != nil {
			s = s.left
		}
		if s.parent != n {
			t.replaceChild(s, s.right)
			s.right = n.right
			s.right.parent = s
		}
		t.replaceChild(n, s)
		s.left = n.left
		s.left.parent = s
	}
	n.left, n.right, n.parent = nil, nil, nil
}

// audit validates BST order and segment disjointness for tests.
func (t *TreeChannel) audit() string {
	prevHi := -1
	n := 0
	bad := ""
	var walk func(nd *treeNode)
	walk = func(nd *treeNode) {
		if nd == nil || bad != "" {
			return
		}
		walk(nd.left)
		if bad != "" {
			return
		}
		n++
		if nd.lo > nd.hi || nd.lo < 0 || nd.hi >= t.length {
			bad = fmt.Sprintf("node [%d..%d] out of bounds", nd.lo, nd.hi)
			return
		}
		if nd.lo <= prevHi {
			bad = fmt.Sprintf("node [%d..%d] overlaps predecessor ending at %d", nd.lo, nd.hi, prevHi)
			return
		}
		prevHi = nd.hi
		walk(nd.right)
	}
	walk(t.root)
	if bad == "" && n != t.count {
		bad = fmt.Sprintf("count %d but %d nodes", t.count, n)
	}
	return bad
}
