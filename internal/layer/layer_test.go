package layer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/grid"
)

func TestChannelAddRemoveBasics(t *testing.T) {
	l := NewLayer(grid.Vertical, 0, 4, 30)
	c := l.Chan(1)

	s1 := c.Add(5, 10, 1)
	if s1 == nil {
		t.Fatal("Add of free interval failed")
	}
	if c.Add(8, 12, 2) != nil {
		t.Error("overlapping Add accepted")
	}
	if c.Add(10, 10, 2) != nil {
		t.Error("Add over occupied endpoint accepted")
	}
	s2 := c.Add(11, 11, 2)
	if s2 == nil {
		t.Fatal("adjacent Add failed")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	c.Remove(s1)
	if !c.Free(7) {
		t.Error("removed space not free")
	}
	if msg := c.audit(); msg != "" {
		t.Errorf("audit: %s", msg)
	}
}

func TestChannelAddRejectsOutOfRange(t *testing.T) {
	l := NewLayer(grid.Horizontal, 0, 2, 10)
	c := l.Chan(0)
	for _, iv := range [][2]int{{-1, 3}, {5, 10}, {7, 6}, {10, 10}} {
		if c.Add(iv[0], iv[1], 1) != nil {
			t.Errorf("Add(%d,%d) accepted", iv[0], iv[1])
		}
	}
	if l.Add(2, 0, 1, 1) != nil || l.Add(-1, 0, 1, 1) != nil {
		t.Error("Layer.Add with bad channel accepted")
	}
}

func TestFreeInterval(t *testing.T) {
	l := NewLayer(grid.Vertical, 0, 1, 20)
	c := l.Chan(0)
	c.Add(5, 7, 1)
	c.Add(12, 14, 2)

	cases := []struct {
		pos  int
		want geom.Interval
		ok   bool
	}{
		{0, geom.Iv(0, 4), true},
		{4, geom.Iv(0, 4), true},
		{5, geom.Interval{}, false},
		{9, geom.Iv(8, 11), true},
		{13, geom.Interval{}, false},
		{15, geom.Iv(15, 19), true},
		{19, geom.Iv(15, 19), true},
		{-1, geom.Interval{}, false},
		{20, geom.Interval{}, false},
	}
	for _, cse := range cases {
		got, ok := c.FreeInterval(cse.pos)
		if ok != cse.ok || (ok && got != cse.want) {
			t.Errorf("FreeInterval(%d) = %v,%v; want %v,%v", cse.pos, got, ok, cse.want, cse.ok)
		}
	}
}

func TestVisitFreeEnumeratesGaps(t *testing.T) {
	l := NewLayer(grid.Vertical, 0, 1, 20)
	c := l.Chan(0)
	c.Add(3, 4, 1)
	c.Add(8, 8, 2)
	c.Add(15, 19, 3)

	var got []geom.Interval
	c.VisitFree(geom.Iv(0, 19), func(iv geom.Interval) bool {
		got = append(got, iv)
		return true
	})
	want := []geom.Interval{geom.Iv(0, 2), geom.Iv(5, 7), geom.Iv(9, 14)}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}

	// A window touching only part of the channel sees only overlapping
	// gaps, but with their full (unclipped) extents.
	got = got[:0]
	c.VisitFree(geom.Iv(6, 9), func(iv geom.Interval) bool {
		got = append(got, iv)
		return true
	})
	want = []geom.Interval{geom.Iv(5, 7), geom.Iv(9, 14)}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("windowed: got %v, want %v", got, want)
	}

	// Early stop.
	n := 0
	c.VisitFree(geom.Iv(0, 19), func(geom.Interval) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestVisitFreeEmptyChannel(t *testing.T) {
	l := NewLayer(grid.Vertical, 0, 1, 10)
	var got []geom.Interval
	l.Chan(0).VisitFree(geom.Iv(2, 5), func(iv geom.Interval) bool {
		got = append(got, iv)
		return true
	})
	if len(got) != 1 || got[0] != geom.Iv(0, 9) {
		t.Fatalf("got %v, want the whole channel", got)
	}
}

func TestVisitUsed(t *testing.T) {
	l := NewLayer(grid.Horizontal, 0, 1, 20)
	c := l.Chan(0)
	c.Add(2, 4, 7)
	c.Add(10, 12, 8)
	var owners []ConnID
	c.VisitUsed(geom.Iv(4, 10), func(s *Segment) bool {
		owners = append(owners, s.Owner)
		return true
	})
	if len(owners) != 2 || owners[0] != 7 || owners[1] != 8 {
		t.Fatalf("owners = %v", owners)
	}
	owners = owners[:0]
	c.VisitUsed(geom.Iv(5, 9), func(s *Segment) bool {
		owners = append(owners, s.Owner)
		return true
	})
	if len(owners) != 0 {
		t.Fatalf("window between segments returned %v", owners)
	}
}

// TestChannelRandomOpsAgainstBitmap drives a channel with random
// operations and cross-checks every observation against a brute-force
// bitmap oracle.
func TestChannelRandomOpsAgainstBitmap(t *testing.T) {
	const length = 64
	rng := rand.New(rand.NewSource(42))

	for trial := 0; trial < 50; trial++ {
		l := NewLayer(grid.Vertical, 0, 1, length)
		c := l.Chan(0)
		var bitmap [length]ConnID
		for i := range bitmap {
			bitmap[i] = NoConn
		}
		live := make(map[*Segment]struct{})

		for op := 0; op < 400; op++ {
			switch rng.Intn(4) {
			case 0: // add
				lo := rng.Intn(length)
				hi := lo + rng.Intn(6)
				if hi >= length {
					hi = length - 1
				}
				id := ConnID(rng.Intn(30))
				free := true
				for p := lo; p <= hi; p++ {
					if bitmap[p] != NoConn {
						free = false
						break
					}
				}
				s := c.Add(lo, hi, id)
				if (s != nil) != free {
					t.Fatalf("trial %d op %d: Add(%d,%d) = %v, free=%v", trial, op, lo, hi, s != nil, free)
				}
				if s != nil {
					for p := lo; p <= hi; p++ {
						bitmap[p] = id
					}
					live[s] = struct{}{}
				}
			case 1: // remove a random live segment
				for s := range live {
					for p := s.Lo; p <= s.Hi; p++ {
						bitmap[p] = NoConn
					}
					c.Remove(s)
					delete(live, s)
					break
				}
			case 2: // probe
				pos := rng.Intn(length)
				if got := c.Free(pos); got != (bitmap[pos] == NoConn) {
					t.Fatalf("trial %d: Free(%d) = %v", trial, pos, got)
				}
				if s := c.SegmentAt(pos); s != nil {
					if bitmap[pos] != s.Owner {
						t.Fatalf("trial %d: SegmentAt(%d) owner %d, want %d", trial, pos, s.Owner, bitmap[pos])
					}
				} else if bitmap[pos] != NoConn {
					t.Fatalf("trial %d: SegmentAt(%d) = nil, want owner %d", trial, pos, bitmap[pos])
				}
			case 3: // free-interval query
				pos := rng.Intn(length)
				iv, ok := c.FreeInterval(pos)
				if ok != (bitmap[pos] == NoConn) {
					t.Fatalf("trial %d: FreeInterval(%d) ok=%v", trial, pos, ok)
				}
				if ok {
					lo, hi := pos, pos
					for lo > 0 && bitmap[lo-1] == NoConn {
						lo--
					}
					for hi < length-1 && bitmap[hi+1] == NoConn {
						hi++
					}
					if iv != geom.Iv(lo, hi) {
						t.Fatalf("trial %d: FreeInterval(%d) = %v, want %v", trial, pos, iv, geom.Iv(lo, hi))
					}
				}
			}
			if msg := c.audit(); msg != "" {
				t.Fatalf("trial %d op %d: audit: %s", trial, op, msg)
			}
		}
	}
}

func TestLayerAuditAndDump(t *testing.T) {
	l := NewLayer(grid.Horizontal, 2, 3, 12)
	l.Add(0, 2, 5, 3)
	l.Add(1, 0, 0, PinOwner)
	l.Add(1, 4, 6, FillOwner)
	if err := l.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
	dump := l.Dump()
	if len(dump) == 0 {
		t.Fatal("empty dump")
	}
}

func TestRemoveWrongChannelPanics(t *testing.T) {
	l := NewLayer(grid.Vertical, 0, 2, 10)
	s := l.Chan(0).Add(1, 2, 1)
	defer func() {
		if recover() == nil {
			t.Error("Remove from wrong channel should panic")
		}
	}()
	l.Chan(1).Remove(s)
}

func TestConnIDPermanence(t *testing.T) {
	if ConnID(0).Permanent() || ConnID(7).Permanent() {
		t.Error("routable IDs reported permanent")
	}
	for _, id := range []ConnID{PinOwner, FillOwner, KeepoutOwner} {
		if !id.Permanent() {
			t.Errorf("%d should be permanent", id)
		}
	}
}

// TestCursorLocality exercises the moving head-of-list pointer: probes
// that walk the channel in both directions must stay correct.
func TestCursorLocality(t *testing.T) {
	l := NewLayer(grid.Vertical, 0, 1, 300)
	c := l.Chan(0)
	for i := 0; i < 100; i++ {
		if c.Add(i*3, i*3, ConnID(i%20)) == nil {
			t.Fatal("setup add failed")
		}
	}
	// Ascending then descending sweeps.
	for pos := 0; pos < 300; pos++ {
		want := pos%3 != 0
		if got := c.Free(pos); got != want {
			t.Fatalf("ascending Free(%d) = %v", pos, got)
		}
	}
	for pos := 299; pos >= 0; pos-- {
		want := pos%3 != 0
		if got := c.Free(pos); got != want {
			t.Fatalf("descending Free(%d) = %v", pos, got)
		}
	}
	// Random jumps.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		pos := rng.Intn(300)
		if got := c.Free(pos); got != (pos%3 != 0) {
			t.Fatalf("random Free(%d) = %v", pos, got)
		}
	}
}

// TestChannelQuickProperty drives Add with quick-generated intervals and
// checks the fundamental invariant: an Add succeeds exactly when every
// covered position was free, and afterwards exactly those positions are
// occupied.
func TestChannelQuickProperty(t *testing.T) {
	type op struct{ Lo, Hi uint8 }
	f := func(ops []op) bool {
		const length = 100
		l := NewLayer(grid.Vertical, 0, 1, length)
		c := l.Chan(0)
		var occupied [length]bool
		for _, o := range ops {
			lo, hi := int(o.Lo)%length, int(o.Lo)%length+int(o.Hi)%7
			if hi >= length {
				hi = length - 1
			}
			free := true
			for p := lo; p <= hi; p++ {
				if occupied[p] {
					free = false
					break
				}
			}
			s := c.Add(lo, hi, 1)
			if (s != nil) != free {
				return false
			}
			if s != nil {
				for p := lo; p <= hi; p++ {
					occupied[p] = true
				}
			}
			if msg := c.audit(); msg != "" {
				return false
			}
		}
		for p := 0; p < length; p++ {
			if c.Free(p) == occupied[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSegmentStored checks the stale-handle marker used by the verifier.
func TestSegmentStored(t *testing.T) {
	l := NewLayer(grid.Vertical, 0, 1, 10)
	s := l.Chan(0).Add(2, 4, 1)
	if !s.Stored() {
		t.Fatal("live segment not stored")
	}
	l.Chan(0).Remove(s)
	if s.Stored() {
		t.Fatal("removed segment still stored")
	}
}
