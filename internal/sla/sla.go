// Package sla implements the paper's three single-layer algorithms
// (Section 7): Trace, Vias and Obstructions. All three are variations of
// one depth-first enumeration of the free space on a single layer, whose
// cost is proportional to the number of free segments examined rather
// than to the distance covered — "in the absence of obstacles, it is just
// as fast to make a connection across the board as to the neighboring
// pin".
//
// Everything the multiple-layer algorithms need to know about a layer is
// expressed through these three procedures. The procedures are hot (the
// router calls Vias once per layer per wavefront expansion), so they run
// on a reusable Searcher that amortizes the visited set and buffers; the
// package-level functions are convenience wrappers for tests and casual
// callers.
package sla

import (
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/layer"
	"sort"
)

// Run is one materializable piece of a trace: an occupied interval of one
// channel. Consecutive runs of a trace live in adjacent channels and
// share exactly one position (the junction where the trace jogs across).
type Run struct {
	Chan int
	Span geom.Interval
}

// Searcher carries the reusable state for the single-layer searches. It
// is not safe for concurrent use; give each goroutine its own.
type Searcher struct {
	cfg grid.Config

	// visited is an epoch-stamped set of maximal free intervals, keyed
	// by (channel, interval start): an entry is visited in the current
	// search iff its stored epoch matches. Epoch-stamping avoids
	// clearing the map on every call.
	visited map[uint64]uint32
	epoch   uint32

	// Per-call scratch, reused across calls.
	l      *layer.Layer
	chans  geom.Interval
	poswin geom.Interval

	path     []node
	outVias  []geom.Point
	outConns []layer.ConnID
	nbuf     []node
	sbuf     []node // start nodes; separate from nbuf, which Trace's DFS owns
	viaFree  func(geom.Point) bool
	seenConn map[layer.ConnID]struct{}

	// Read-extent tracking (DESIGN §11). With track set, every channel
	// window a search scans and every via site it probes through viaFree
	// is accumulated into per-orientation bounding boxes, so the
	// concurrent router can test whether a later board mutation could
	// have changed this search's result. Off by default; the cost when
	// off is one branch per scan.
	track  bool
	tbox   [2]trackBox // indexed by grid.Orientation
	viaBox geom.Rect
}

// trackBox is a bounding box in one orientation's (channel, position)
// coordinates. Empty when chs.Lo > chs.Hi.
type trackBox struct {
	chs, pos geom.Interval
}

// NewSearcher builds a Searcher for boards using cfg.
func NewSearcher(cfg grid.Config) *Searcher {
	return &Searcher{
		cfg:      cfg,
		visited:  make(map[uint64]uint32, 1024),
		seenConn: make(map[layer.ConnID]struct{}, 16),
	}
}

// TrackReads enables or disables read-extent tracking and resets the
// accumulated extents either way.
func (s *Searcher) TrackReads(on bool) {
	s.track = on
	s.ResetReads()
}

// ResetReads clears the accumulated read extents; the concurrent
// router's workers call it before each connection attempt.
func (s *Searcher) ResetReads() {
	for i := range s.tbox {
		s.tbox[i] = trackBox{chs: geom.Iv(0, -1), pos: geom.Iv(0, -1)}
	}
	s.viaBox = geom.R(0, 0, -1, -1)
}

// ReadExtent returns conservative grid-coordinate bounding boxes of
// everything the searches since the last reset read: cells covers every
// channel cell whose occupancy could have influenced any result
// (scanned windows and reached free intervals, widened by one cell so
// the bounding segments that delimit each free interval are included);
// vias covers every via site probed through a viaFree callback. Either
// rectangle may be empty.
func (s *Searcher) ReadExtent() (cells, vias geom.Rect) {
	cells = geom.R(0, 0, -1, -1)
	for o := range s.tbox {
		tb := s.tbox[o]
		if tb.chs.Empty() || tb.pos.Empty() {
			continue
		}
		orient := grid.Orientation(o)
		cells = cells.Union(geom.Bounding(
			s.cfg.PointAt(orient, tb.chs.Lo, tb.pos.Lo),
			s.cfg.PointAt(orient, tb.chs.Hi, tb.pos.Hi),
		))
	}
	return cells, s.viaBox
}

// noteScan records that a search read the free/used structure of
// channel ch over [lo, hi] on the current layer. The position window is
// widened by one cell each side: a maximal free interval's extent is
// delimited by the occupied cells just beyond it, so those cells are
// part of what the scan observed.
func (s *Searcher) noteScan(ch, lo, hi int) {
	if !s.track {
		return
	}
	tb := &s.tbox[s.l.Orient]
	if tb.chs.Empty() {
		tb.chs = geom.Iv(ch, ch)
		tb.pos = geom.Iv(lo-1, hi+1)
		return
	}
	tb.chs = geom.Iv(min(tb.chs.Lo, ch), max(tb.chs.Hi, ch))
	tb.pos = geom.Iv(min(tb.pos.Lo, lo-1), max(tb.pos.Hi, hi+1))
}

// noteVia records that a search probed via site p through viaFree.
func (s *Searcher) noteVia(p geom.Point) {
	if !s.track {
		return
	}
	s.viaBox = s.viaBox.Union(geom.Bounding(p, p))
}

// node is one visited maximal free interval, with its box-clipped
// effective range.
type node struct {
	ch  int
	iv  geom.Interval // unclipped maximal free interval (identity)
	eff geom.Interval // iv clipped to the box
}

func visitKey(ch, lo int) uint64 {
	return uint64(uint32(ch))<<32 | uint64(uint32(lo))
}

// begin resets the per-call state for a search on l within box.
func (s *Searcher) begin(l *layer.Layer, box geom.Rect) {
	s.l = l
	chans, poswin := s.cfg.ChanSpan(l.Orient, box)
	s.chans = chans.Intersect(geom.Iv(0, l.NumChannels()-1))
	s.poswin = poswin.Intersect(geom.Iv(0, l.ChannelLength()-1))
	s.epoch++
	if s.epoch == 0 || len(s.visited) > 1<<20 {
		// Epoch wrapped or the stale-key population grew too large:
		// start a fresh map.
		s.visited = make(map[uint64]uint32, 1024)
		s.epoch = 1
	}
}

func (s *Searcher) mark(n node) bool {
	k := visitKey(n.ch, n.iv.Lo)
	if s.visited[k] == s.epoch {
		return false
	}
	s.visited[k] = s.epoch
	return true
}

// startNodes appends to dst the free intervals that touch point p:
// intervals of p's channel overlapping [pos-1, pos+1]. The endpoint cell
// itself is normally occupied by the pin or via being connected, so
// "touching" means covering an adjacent cell along the channel (the
// physical trace then extends into the pad).
func (s *Searcher) startNodes(dst []node, p geom.Point) []node {
	ch, pos := s.cfg.ChanPos(s.l.Orient, p)
	if !s.chans.Contains(ch) {
		return dst
	}
	touch := geom.Iv(pos-1, pos+1).Intersect(s.poswin)
	if touch.Empty() {
		return dst
	}
	s.noteScan(ch, touch.Lo, touch.Hi)
	s.l.Chan(ch).VisitFree(touch, func(iv geom.Interval) bool {
		eff := iv.Intersect(s.poswin)
		s.noteScan(ch, eff.Lo, eff.Hi)
		dst = append(dst, node{ch: ch, iv: iv, eff: eff})
		return true
	})
	return dst
}

// touches reports whether node n can terminate a trace at point p: n lies
// in p's channel and covers a cell adjacent to p along the channel.
func (s *Searcher) touches(n node, p geom.Point) bool {
	ch, pos := s.cfg.ChanPos(s.l.Orient, p)
	return n.ch == ch && (n.eff.Contains(pos-1) || n.eff.Contains(pos+1))
}

// Trace answers "is there a trace between a and b on layer l lying
// entirely within box?" (Section 7.1). On success it returns the chain of
// channel runs from a to b, trimmed so consecutive runs share a single
// junction point; the caller materializes them. The returned runs never
// cover the endpoint cells themselves: the first and last runs stop at a
// cell adjacent to a and b along their channels. The returned slice is
// owned by the caller.
func (s *Searcher) Trace(l *layer.Layer, a, b geom.Point, box geom.Rect) ([]Run, bool) {
	if a == b {
		return nil, false
	}
	s.begin(l, box)
	dstCh, dstPos := s.cfg.ChanPos(l.Orient, b)

	s.path = s.path[:0]
	var dfs func(n node) bool
	dfs = func(n node) bool {
		if !s.mark(n) {
			return false
		}
		if s.touches(n, b) {
			s.path = append(s.path, n)
			return true
		}
		// Enumerate the free intervals of the two adjacent channels that
		// overlap this one, best-to-worst by distance to the destination
		// (the paper: "the one nearest the destination is searched
		// first").
		base := len(s.nbuf)
		for _, ch := range [2]int{n.ch - 1, n.ch + 1} {
			if !s.chans.Contains(ch) {
				continue
			}
			s.noteScan(ch, n.eff.Lo, n.eff.Hi)
			s.l.Chan(ch).VisitFree(n.eff, func(iv geom.Interval) bool {
				eff := iv.Intersect(s.poswin)
				s.noteScan(ch, eff.Lo, eff.Hi)
				s.nbuf = append(s.nbuf, node{ch: ch, iv: iv, eff: eff})
				return true
			})
		}
		// Candidate lists here can exceed a dozen entries, and the exact
		// permutation sort.Slice gives equal-distance candidates steers
		// the DFS; replacing it with a differently tie-ordered sort
		// changes route choices (and so the recorded Table 1 metrics)
		// even though any order is "correct".
		cand := s.nbuf[base:]
		sort.Slice(cand, func(i, j int) bool {
			di := absInt(cand[i].ch-dstCh) + cand[i].eff.DistTo(dstPos)
			dj := absInt(cand[j].ch-dstCh) + cand[j].eff.DistTo(dstPos)
			return di < dj
		})
		for i := range cand {
			if dfs(cand[i]) {
				s.path = append(s.path, n)
				s.nbuf = s.nbuf[:base]
				return true
			}
		}
		s.nbuf = s.nbuf[:base]
		return false
	}

	s.nbuf = s.nbuf[:0]
	s.sbuf = s.startNodes(s.sbuf[:0], a)
	starts := s.sbuf
	for i := 1; i < len(starts); i++ {
		for j := i; j > 0 && starts[j].eff.DistTo(dstPos) < starts[j-1].eff.DistTo(dstPos); j-- {
			starts[j], starts[j-1] = starts[j-1], starts[j]
		}
	}
	for _, st := range starts {
		if dfs(st) {
			reverse(s.path) // built during unwinding, b-end first
			return s.trim(l.Orient, a, b), true
		}
	}
	return nil, false
}

// trim converts the node path (a-end first) into runs, cutting the large
// overlaps between consecutive free intervals back to single junction
// points (Section 7.1, Figure 7). Junctions are assigned back-to-front,
// each clamped toward its successor: this both snaps the route into
// L shapes where the free space allows and guarantees that consecutive
// runs share exactly one cell (no doubled-back parallel metal).
func (s *Searcher) trim(o grid.Orientation, a, b geom.Point) []Run {
	path := s.path
	_, posA := s.cfg.ChanPos(o, a)
	_, posB := s.cfg.ChanPos(o, b)

	// Choose the touch cells: prefer the side of each endpoint that faces
	// the route, falling back to whichever side is available.
	touchOf := func(n node, pos, towards int) int {
		near, far := pos-1, pos+1
		if towards > pos {
			near, far = pos+1, pos-1
		}
		if n.eff.Contains(near) {
			return near
		}
		return far
	}
	last := len(path) - 1
	tb := touchOf(path[last], posB, posA)

	// junc[i] is the crossing point between path[i] and path[i+1].
	junc := make([]int, last)
	next := tb
	for i := last - 1; i >= 0; i-- {
		overlap := path[i].eff.Intersect(path[i+1].eff)
		junc[i] = overlap.Clamp(next)
		next = junc[i]
	}
	entry := touchOf(path[0], posA, next)

	runs := make([]Run, len(path))
	for i := range path {
		exit := tb
		if i < last {
			exit = junc[i]
		}
		runs[i] = Run{Chan: path[i].ch, Span: geom.Iv(min(entry, exit), max(entry, exit))}
		entry = exit
	}
	return runs
}

// Vias answers "what via sites are reachable from point a on layer l by
// paths lying entirely within box?" (Section 7.2). The enumeration is
// exhaustive; every free via site covered by reachable free space is
// reported, provided the covering interval also contains an adjacent
// cell, so that a later Trace call to the site can terminate. viaFree
// filters sites by global availability (the via map); pass nil to accept
// every site on the via grid.
//
// The returned slice is reused by the next Searcher call; consume it
// before calling again.
func (s *Searcher) Vias(l *layer.Layer, a geom.Point, box geom.Rect, viaFree func(geom.Point) bool) []geom.Point {
	s.begin(l, box)
	s.outVias = s.outVias[:0]
	s.viaFree = viaFree

	// viasDFS never touches nbuf, so the start nodes can live in it
	// directly; startNodes(nil, ...) would allocate a fresh slice on
	// every call, and Vias runs once per layer per wavefront expansion.
	s.nbuf = s.startNodes(s.nbuf[:0], a)
	for _, st := range s.nbuf {
		s.viasDFS(st)
	}
	return s.outVias
}

func (s *Searcher) viasDFS(n node) {
	if !s.mark(n) {
		return
	}
	s.collectVias(n)
	for _, ch := range [2]int{n.ch - 1, n.ch + 1} {
		if !s.chans.Contains(ch) {
			continue
		}
		s.noteScan(ch, n.eff.Lo, n.eff.Hi)
		s.l.Chan(ch).VisitFree(n.eff, func(iv geom.Interval) bool {
			eff := iv.Intersect(s.poswin)
			s.noteScan(ch, eff.Lo, eff.Hi)
			s.viasDFS(node{ch: ch, iv: iv, eff: eff})
			return true
		})
	}
}

func (s *Searcher) collectVias(n node) {
	pitch := s.cfg.Pitch
	if n.ch%pitch != 0 {
		return
	}
	first := n.eff.Lo
	if r := first % pitch; r != 0 {
		first += pitch - r
	}
	for pos := first; pos <= n.eff.Hi; pos += pitch {
		if !n.eff.Contains(pos-1) && !n.eff.Contains(pos+1) {
			continue // a trace could never terminate at this site
		}
		p := s.cfg.PointAt(s.l.Orient, n.ch, pos)
		if s.viaFree != nil {
			s.noteVia(p)
		}
		if s.viaFree == nil || s.viaFree(p) {
			s.outVias = append(s.outVias, p)
		}
	}
}

// Obstructions answers "what connections are near point a on layer l
// lying in box?" (Section 7.3): the owners of the used segments that
// bound the free space reachable from a. Permanent owners (pins, fills,
// keepouts) are never reported, since they cannot be ripped up.
//
// The returned slice is reused by the next Searcher call; consume it
// before calling again.
func (s *Searcher) Obstructions(l *layer.Layer, a geom.Point, box geom.Rect) []layer.ConnID {
	s.begin(l, box)
	s.outConns = s.outConns[:0]
	clear(s.seenConn)

	// The segments at and around a itself are obstacles too.
	ch, pos := s.cfg.ChanPos(l.Orient, a)
	if s.chans.Contains(ch) {
		s.l.Chan(ch).VisitUsed(geom.Iv(pos-1, pos+1), func(seg *layer.Segment) bool {
			s.noteConn(seg.Owner)
			return true
		})
	}
	s.nbuf = s.startNodes(s.nbuf[:0], a)
	for _, st := range s.nbuf {
		s.obstructionsDFS(st)
	}
	return s.outConns
}

func (s *Searcher) noteConn(id layer.ConnID) {
	if id.Permanent() {
		return
	}
	if _, dup := s.seenConn[id]; !dup {
		s.seenConn[id] = struct{}{}
		s.outConns = append(s.outConns, id)
	}
}

func (s *Searcher) obstructionsDFS(n node) {
	if !s.mark(n) {
		return
	}
	// The segments bounding the interval within its own channel.
	c := s.l.Chan(n.ch)
	if n.iv.Lo > 0 {
		if seg := c.SegmentAt(n.iv.Lo - 1); seg != nil {
			s.noteConn(seg.Owner)
		}
	}
	if n.iv.Hi < s.l.ChannelLength()-1 {
		if seg := c.SegmentAt(n.iv.Hi + 1); seg != nil {
			s.noteConn(seg.Owner)
		}
	}
	for _, ch := range [2]int{n.ch - 1, n.ch + 1} {
		if !s.chans.Contains(ch) {
			continue
		}
		// Record used segments alongside the reachable free space...
		s.l.Chan(ch).VisitUsed(n.eff, func(seg *layer.Segment) bool {
			s.noteConn(seg.Owner)
			return true
		})
		// ...and keep expanding through the free intervals.
		s.l.Chan(ch).VisitFree(n.eff, func(iv geom.Interval) bool {
			s.obstructionsDFS(node{ch: ch, iv: iv, eff: iv.Intersect(s.poswin)})
			return true
		})
	}
}

// Trace is the one-shot form of Searcher.Trace.
func Trace(cfg grid.Config, l *layer.Layer, a, b geom.Point, box geom.Rect) ([]Run, bool) {
	return NewSearcher(cfg).Trace(l, a, b, box)
}

// Vias is the one-shot form of Searcher.Vias.
func Vias(cfg grid.Config, l *layer.Layer, a geom.Point, box geom.Rect, viaFree func(geom.Point) bool) []geom.Point {
	return NewSearcher(cfg).Vias(l, a, box, viaFree)
}

// Obstructions is the one-shot form of Searcher.Obstructions.
func Obstructions(cfg grid.Config, l *layer.Layer, a geom.Point, box geom.Rect) []layer.ConnID {
	return NewSearcher(cfg).Obstructions(l, a, box)
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func reverse(p []node) {
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
}
