package sla

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/layer"
)

// randomLayer builds a layer with random obstacles, leaving endpoints'
// cells occupied by single-cell "pins" so the touch rules apply.
func randomLayer(rng *rand.Rand, orient grid.Orientation, chans, length, obstacles int) *layer.Layer {
	l := layer.NewLayer(orient, 0, chans, length)
	for i := 0; i < obstacles; i++ {
		ch := rng.Intn(chans)
		lo := rng.Intn(length)
		hi := min(length-1, lo+rng.Intn(6))
		l.Add(ch, lo, hi, layer.ConnID(i)) // collisions silently skipped
	}
	return l
}

// occupied reports whether the grid point is used on the layer.
func occupied(cfg grid.Config, l *layer.Layer, p geom.Point) bool {
	ch, pos := cfg.ChanPos(l.Orient, p)
	return !l.Chan(ch).Free(pos)
}

// bfsReachable floods the free cells of l inside box starting from the
// touch cells of a (cells adjacent to a along its channel), returning the
// visited set.
func bfsReachable(cfg grid.Config, l *layer.Layer, a geom.Point, box geom.Rect) map[geom.Point]bool {
	box = box.Intersect(cfg.Bounds())
	seen := make(map[geom.Point]bool)
	var queue []geom.Point
	ch, pos := cfg.ChanPos(l.Orient, a)
	for _, d := range []int{-1, 1} {
		p := cfg.PointAt(l.Orient, ch, pos+d)
		if p.In(box) && !occupied(cfg, l, p) {
			seen[p] = true
			queue = append(queue, p)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range []geom.Point{
			{X: cur.X + 1, Y: cur.Y}, {X: cur.X - 1, Y: cur.Y},
			{X: cur.X, Y: cur.Y + 1}, {X: cur.X, Y: cur.Y - 1},
		} {
			if n.In(box) && !seen[n] && !occupied(cfg, l, n) {
				seen[n] = true
				queue = append(queue, n)
			}
		}
	}
	return seen
}

// TestTraceMatchesBFSReachability: Trace must succeed exactly when
// 4-connected BFS over the free cells links a touch cell of a to a touch
// cell of b within the box.
func TestTraceMatchesBFSReachability(t *testing.T) {
	cfg := grid.NewConfig(8, 8, 3, 2)
	rng := rand.New(rand.NewSource(11))

	for trial := 0; trial < 400; trial++ {
		orient := grid.Orientation(rng.Intn(2))
		l := randomLayer(rng, orient, cfg.ChannelCount(orient), cfg.ChannelLength(orient), rng.Intn(40))

		// Endpoints on the via grid with their cells forcibly occupied.
		a := cfg.GridOf(geom.Pt(rng.Intn(8), rng.Intn(8)))
		b := cfg.GridOf(geom.Pt(rng.Intn(8), rng.Intn(8)))
		if a == b {
			continue
		}
		for _, p := range []geom.Point{a, b} {
			ch, pos := cfg.ChanPos(orient, p)
			l.Chan(ch).Add(pos, pos, layer.PinOwner) // may already be occupied; fine
		}
		box := geom.Bounding(a, b).Expand(rng.Intn(6)).Intersect(cfg.Bounds())

		reach := bfsReachable(cfg, l, a, box)
		chB, posB := cfg.ChanPos(orient, b)
		wantOK := false
		for _, d := range []int{-1, 1} {
			p := cfg.PointAt(orient, chB, posB+d)
			if reach[p] {
				wantOK = true
			}
		}

		runs, ok := Trace(cfg, l, a, b, box)
		if ok != wantOK {
			t.Fatalf("trial %d: Trace=%v, BFS=%v (a=%v b=%v box=%v orient=%v)\n%s",
				trial, ok, wantOK, a, b, box, orient, l.Dump())
		}
		if ok {
			validateRuns(t, cfg, l, runs, a, b, box, trial)
		}
	}
}

// validateRuns checks the structural contract of a Trace result: runs in
// free space inside the box, consecutive runs in adjacent channels
// sharing a junction, first/last runs touching the endpoints.
func validateRuns(t *testing.T, cfg grid.Config, l *layer.Layer, runs []Run, a, b geom.Point, box geom.Rect, trial int) {
	t.Helper()
	if len(runs) == 0 {
		t.Fatalf("trial %d: empty run list", trial)
	}
	chans, poswin := cfg.ChanSpan(l.Orient, box)
	for i, r := range runs {
		if !chans.Contains(r.Chan) || !poswin.Contains(r.Span.Lo) || !poswin.Contains(r.Span.Hi) {
			t.Fatalf("trial %d: run %d %v outside box", trial, i, r)
		}
		for pos := r.Span.Lo; pos <= r.Span.Hi; pos++ {
			if !l.Chan(r.Chan).Free(pos) {
				t.Fatalf("trial %d: run %d covers occupied cell (%d,%d)", trial, i, r.Chan, pos)
			}
		}
		if i > 0 {
			prev := runs[i-1]
			if absInt(prev.Chan-r.Chan) != 1 {
				t.Fatalf("trial %d: runs %d,%d not in adjacent channels", trial, i-1, i)
			}
			inter := prev.Span.Intersect(r.Span)
			if inter.Len() != 1 {
				t.Fatalf("trial %d: junction overlap %v, want single point", trial, inter)
			}
		}
	}
	chA, posA := cfg.ChanPos(l.Orient, a)
	chB, posB := cfg.ChanPos(l.Orient, b)
	first, last := runs[0], runs[len(runs)-1]
	if first.Chan != chA || (!first.Span.Contains(posA-1) && !first.Span.Contains(posA+1)) {
		t.Fatalf("trial %d: first run %v does not touch a=%v", trial, first, a)
	}
	if last.Chan != chB || (!last.Span.Contains(posB-1) && !last.Span.Contains(posB+1)) {
		t.Fatalf("trial %d: last run %v does not touch b=%v", trial, last, b)
	}
}

// TestViasMatchesBFS: the Vias result must equal the set of free via
// sites covered (with an adjacent cell) by BFS-reachable free space.
func TestViasMatchesBFS(t *testing.T) {
	cfg := grid.NewConfig(8, 8, 3, 2)
	rng := rand.New(rand.NewSource(23))

	for trial := 0; trial < 400; trial++ {
		orient := grid.Orientation(rng.Intn(2))
		l := randomLayer(rng, orient, cfg.ChannelCount(orient), cfg.ChannelLength(orient), rng.Intn(40))
		a := cfg.GridOf(geom.Pt(rng.Intn(8), rng.Intn(8)))
		ch, pos := cfg.ChanPos(orient, a)
		l.Chan(ch).Add(pos, pos, layer.PinOwner)
		box := geom.Bounding(a, a).Expand(3 + rng.Intn(12)).Intersect(cfg.Bounds())

		got := append([]geom.Point(nil), Vias(cfg, l, a, box, nil)...)

		reach := bfsReachable(cfg, l, a, box)
		var want []geom.Point
		for vx := 0; vx < 8; vx++ {
			for vy := 0; vy < 8; vy++ {
				p := cfg.GridOf(geom.Pt(vx, vy))
				if !reach[p] {
					continue
				}
				// The covering interval must extend to an adjacent cell
				// along the channel for a trace to terminate there.
				c, q := cfg.ChanPos(orient, p)
				prev := cfg.PointAt(orient, c, q-1)
				next := cfg.PointAt(orient, c, q+1)
				if reach[prev] || reach[next] {
					want = append(want, p)
				}
			}
		}
		sortPoints(got)
		sortPoints(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %v, want %v (a=%v box=%v)\n%s", trial, got, want, a, box, l.Dump())
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v, want %v", trial, got, want)
			}
		}
	}
}

func TestViasRespectsFreePredicate(t *testing.T) {
	cfg := grid.NewConfig(6, 6, 3, 2)
	l := layer.NewLayer(grid.Vertical, 0, cfg.Width, cfg.Height)
	a := cfg.GridOf(geom.Pt(2, 2))
	ch, pos := cfg.ChanPos(grid.Vertical, a)
	l.Chan(ch).Add(pos, pos, layer.PinOwner)

	all := Vias(cfg, l, a, cfg.Bounds(), nil)
	if len(all) == 0 {
		t.Fatal("no vias on an empty layer")
	}
	banned := all[0]
	filtered := Vias(cfg, l, a, cfg.Bounds(), func(p geom.Point) bool { return p != banned })
	if len(filtered) != len(all)-1 {
		t.Fatalf("filter removed %d, want 1", len(all)-len(filtered))
	}
	for _, p := range filtered {
		if p == banned {
			t.Fatal("banned via returned")
		}
	}
}

func TestViasNeverReturnsStart(t *testing.T) {
	cfg := grid.NewConfig(6, 6, 3, 2)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		orient := grid.Orientation(rng.Intn(2))
		l := randomLayer(rng, orient, cfg.ChannelCount(orient), cfg.ChannelLength(orient), rng.Intn(20))
		a := cfg.GridOf(geom.Pt(rng.Intn(6), rng.Intn(6)))
		ch, pos := cfg.ChanPos(orient, a)
		l.Chan(ch).Add(pos, pos, layer.PinOwner)
		for _, p := range Vias(cfg, l, a, cfg.Bounds(), nil) {
			if p == a {
				t.Fatalf("trial %d: Vias returned the start point", trial)
			}
		}
	}
}

func TestObstructionsFindsBlockers(t *testing.T) {
	cfg := grid.NewConfig(8, 8, 3, 2)
	l := layer.NewLayer(grid.Vertical, 0, cfg.Width, cfg.Height)

	a := cfg.GridOf(geom.Pt(3, 3)) // (9,9)
	ch, pos := cfg.ChanPos(grid.Vertical, a)
	l.Chan(ch).Add(pos, pos, layer.PinOwner)

	// Wall the point in with two connections and include one distant one.
	l.Chan(ch).Add(pos+2, pos+4, 41)  // above in the same channel
	l.Chan(ch-1).Add(pos-3, pos+3, 7) // parallel neighbor
	l.Chan(ch+4).Add(0, 5, 99)        // far away (may or may not bound free space)

	box := geom.Bounding(a, a).Expand(4).Intersect(cfg.Bounds())
	got := Obstructions(cfg, l, a, box)
	has := func(id layer.ConnID) bool {
		for _, g := range got {
			if g == id {
				return true
			}
		}
		return false
	}
	if !has(41) || !has(7) {
		t.Fatalf("Obstructions = %v, want to include 41 and 7", got)
	}
}

func TestObstructionsNeverReportsPermanent(t *testing.T) {
	cfg := grid.NewConfig(8, 8, 3, 2)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		orient := grid.Orientation(rng.Intn(2))
		l := layer.NewLayer(orient, 0, cfg.ChannelCount(orient), cfg.ChannelLength(orient))
		for i := 0; i < 30; i++ {
			ch := rng.Intn(l.NumChannels())
			lo := rng.Intn(l.ChannelLength())
			owner := layer.ConnID(rng.Intn(6)) - 3 // mixes permanent and routable
			l.Add(ch, lo, min(l.ChannelLength()-1, lo+rng.Intn(4)), owner)
		}
		a := cfg.GridOf(geom.Pt(rng.Intn(8), rng.Intn(8)))
		for _, id := range Obstructions(cfg, l, a, cfg.Bounds()) {
			if id.Permanent() {
				t.Fatalf("trial %d: permanent owner %d reported", trial, id)
			}
		}
	}
}

// TestSearcherReuse runs interleaved searches on one Searcher and
// verifies results match fresh searchers (epoch isolation).
func TestSearcherReuse(t *testing.T) {
	cfg := grid.NewConfig(8, 8, 3, 2)
	rng := rand.New(rand.NewSource(77))
	s := NewSearcher(cfg)
	for trial := 0; trial < 200; trial++ {
		orient := grid.Orientation(rng.Intn(2))
		l := randomLayer(rng, orient, cfg.ChannelCount(orient), cfg.ChannelLength(orient), rng.Intn(30))
		a := cfg.GridOf(geom.Pt(rng.Intn(8), rng.Intn(8)))
		ch, pos := cfg.ChanPos(orient, a)
		l.Chan(ch).Add(pos, pos, layer.PinOwner)

		got := append([]geom.Point(nil), s.Vias(l, a, cfg.Bounds(), nil)...)
		want := Vias(cfg, l, a, cfg.Bounds(), nil)
		if len(got) != len(want) {
			t.Fatalf("trial %d: reused searcher drifted: %v vs %v", trial, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: reused searcher drifted at %d", trial, i)
			}
		}
	}
}

func TestTraceDegenerate(t *testing.T) {
	cfg := grid.NewConfig(4, 4, 3, 2)
	l := layer.NewLayer(grid.Vertical, 0, cfg.Width, cfg.Height)
	a := geom.Pt(3, 3)
	if _, ok := Trace(cfg, l, a, a, cfg.Bounds()); ok {
		t.Error("Trace(a,a) should fail")
	}
	// Box not containing the endpoints.
	if _, ok := Trace(cfg, l, geom.Pt(0, 0), geom.Pt(9, 9), geom.R(3, 3, 6, 6)); ok {
		t.Error("Trace outside box should fail")
	}
}

func sortPoints(ps []geom.Point) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
}

// TestTraceStraightLine checks the canonical simple case produces one
// straight run between adjacent-channel touch points.
func TestTraceStraightLine(t *testing.T) {
	cfg := grid.NewConfig(8, 8, 3, 2)
	l := layer.NewLayer(grid.Horizontal, 0, cfg.Height, cfg.Width)
	a, b := geom.Pt(3, 6), geom.Pt(18, 6) // same row, 5 via units apart
	for _, p := range []geom.Point{a, b} {
		ch, pos := cfg.ChanPos(grid.Horizontal, p)
		l.Chan(ch).Add(pos, pos, layer.PinOwner)
	}
	runs, ok := Trace(cfg, l, a, b, geom.Bounding(a, b).Expand(3))
	if !ok {
		t.Fatal("straight trace failed")
	}
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want 1: %v", len(runs), runs)
	}
	if runs[0].Chan != 6 || runs[0].Span != geom.Iv(4, 17) {
		t.Errorf("run = %+v, want channel 6 span [4..17]", runs[0])
	}
}

// TestReadExtentCoversResultDeterminants is the soundness property the
// concurrent router's conflict test rests on: any mutation landing
// strictly outside the tracked read extent of a search must leave that
// search's result bit-identical. The test runs randomized traces with
// tracking on, then flips the occupancy of free cells outside the
// reported extent and demands the rerun produce exactly the same runs
// (or exactly the same failure).
func TestReadExtentCoversResultDeterminants(t *testing.T) {
	cfg := grid.NewConfig(8, 8, 3, 2)
	rng := rand.New(rand.NewSource(42))
	s := NewSearcher(cfg)
	s.TrackReads(true)

	trials, perturbed := 0, 0
	for trial := 0; trial < 300; trial++ {
		orient := grid.Orientation(rng.Intn(2))
		l := randomLayer(rng, orient, cfg.ChannelCount(orient), cfg.ChannelLength(orient), rng.Intn(30))
		a := cfg.GridOf(geom.Pt(rng.Intn(8), rng.Intn(8)))
		b := cfg.GridOf(geom.Pt(rng.Intn(8), rng.Intn(8)))
		if a == b {
			continue
		}
		for _, p := range []geom.Point{a, b} {
			ch, pos := cfg.ChanPos(orient, p)
			l.Chan(ch).Add(pos, pos, layer.PinOwner)
		}
		box := geom.Bounding(a, b).Expand(rng.Intn(5)).Intersect(cfg.Bounds())

		s.ResetReads()
		runs1, ok1 := s.Trace(l, a, b, box)
		want := append([]Run(nil), runs1...)
		cells, vias := s.ReadExtent()
		if !vias.Empty() {
			t.Fatalf("trial %d: Trace with no via predicate reported via reads %v", trial, vias)
		}
		if ok1 && cells.Empty() {
			t.Fatalf("trial %d: successful trace tracked no reads", trial)
		}
		trials++

		// Occupy a handful of free cells outside the extent and rerun.
		for i := 0; i < 30; i++ {
			p := geom.Pt(rng.Intn(cfg.Width), rng.Intn(cfg.Height))
			if p.In(cells) {
				continue
			}
			ch, pos := cfg.ChanPos(orient, p)
			seg := l.Add(ch, pos, pos, layer.ConnID(5000+i))
			if seg == nil {
				continue
			}
			perturbed++
			runs2, ok2 := s.Trace(l, a, b, box)
			if ok2 != ok1 {
				t.Fatalf("trial %d: occupying %v outside read extent %v flipped the result %v -> %v",
					trial, p, cells, ok1, ok2)
			}
			if len(runs2) != len(want) {
				t.Fatalf("trial %d: occupying %v outside read extent changed the route shape", trial, p)
			}
			for k := range want {
				if runs2[k] != want[k] {
					t.Fatalf("trial %d: occupying %v outside read extent %v changed run %d: %v -> %v",
						trial, p, cells, k, want[k], runs2[k])
				}
			}
			l.Remove(seg)
		}
	}
	if trials < 100 || perturbed < 200 {
		t.Fatalf("degenerate test: %d trials, %d perturbations", trials, perturbed)
	}
}

// TestReadExtentTracksViaProbes: every via site the search offers to the
// viaFree predicate must lie inside the reported via extent, and
// tracking must reset cleanly.
func TestReadExtentTracksViaProbes(t *testing.T) {
	cfg := grid.NewConfig(8, 8, 3, 2)
	rng := rand.New(rand.NewSource(7))
	s := NewSearcher(cfg)
	s.TrackReads(true)

	probedAny := false
	for trial := 0; trial < 100; trial++ {
		orient := grid.Orientation(rng.Intn(2))
		l := randomLayer(rng, orient, cfg.ChannelCount(orient), cfg.ChannelLength(orient), rng.Intn(25))
		a := cfg.GridOf(geom.Pt(rng.Intn(8), rng.Intn(8)))
		ch, pos := cfg.ChanPos(orient, a)
		l.Chan(ch).Add(pos, pos, layer.PinOwner)

		s.ResetReads()
		var probed []geom.Point
		s.Vias(l, a, cfg.Bounds(), func(p geom.Point) bool {
			probed = append(probed, p)
			return p.X%2 == 0 // deny some, so rejected probes are tracked too
		})
		_, vias := s.ReadExtent()
		for _, p := range probed {
			probedAny = true
			if !p.In(vias) {
				t.Fatalf("trial %d: probed via %v outside reported via extent %v", trial, p, vias)
			}
		}
	}
	if !probedAny {
		t.Fatal("degenerate test: no via was ever probed")
	}

	s.ResetReads()
	cells, vias := s.ReadExtent()
	if !cells.Empty() || !vias.Empty() {
		t.Errorf("ResetReads left extents %v / %v", cells, vias)
	}
	s.TrackReads(false)
	l := layer.NewLayer(grid.Horizontal, 0, cfg.ChannelCount(grid.Horizontal), cfg.ChannelLength(grid.Horizontal))
	a := geom.Pt(3, 6)
	l.Chan(6).Add(1, 1, layer.PinOwner)
	s.Vias(l, a, cfg.Bounds(), func(geom.Point) bool { return true })
	if cells, vias := s.ReadExtent(); !cells.Empty() || !vias.Empty() {
		t.Error("tracking disabled but extents accumulated")
	}
}
