package workload

// Table 1 presets. Connection counts and layer counts come straight from
// the paper; board dimensions are reconstructed from the described board
// classes (16×22" Titan processor boards, a PDP-11 quad board for kdj11,
// a mid-size board for the VAX 8800 memory controller) so that the part
// blocks reproduce the published pins/in² within a few percent. Locality
// is tuned so the wiring demand (%chan) lands in the published band.
//
// Scale produces reduced instances of the same family for fast test and
// benchmark runs: board edge, connection count and locality all shrink by
// the factor, keeping densities roughly constant.

// Table1Specs returns the nine rows of Table 1 in the paper's order
// (decreasing difficulty). The two kdj11 rows and two nmc rows share
// boards but differ in layer count.
func Table1Specs() []Spec {
	return []Spec{
		{Name: "kdj11-2L", ViaCols: 90, ViaRows: 105, Layers: 2, TargetConns: 1184,
			NetSizeMin: 2, NetSizeMax: 4, Locality: 66, BusFraction: 0.5, MarginX: 2, MarginY: 2, Seed: 11},
		{Name: "nmc-4L", ViaCols: 120, ViaRows: 140, Layers: 4, TargetConns: 2253,
			NetSizeMin: 2, NetSizeMax: 4, Locality: 72, BusFraction: 0.5, MarginX: 2, MarginY: 2, Seed: 23},
		{Name: "dpath", ViaCols: 160, ViaRows: 220, Layers: 6, TargetConns: 5533,
			NetSizeMin: 2, NetSizeMax: 5, Locality: 85, BusFraction: 0.8, MarginX: 1, MarginY: 1, Seed: 13},
		{Name: "coproc", ViaCols: 160, ViaRows: 220, Layers: 6, TargetConns: 5937,
			NetSizeMin: 2, NetSizeMax: 5, Locality: 65, BusFraction: 0.75, MarginX: 1, MarginY: 1, Seed: 14},
		{Name: "kdj11-4L", ViaCols: 90, ViaRows: 105, Layers: 4, TargetConns: 1184,
			NetSizeMin: 2, NetSizeMax: 4, Locality: 66, BusFraction: 0.5, MarginX: 2, MarginY: 2, Seed: 11},
		{Name: "icache", ViaCols: 160, ViaRows: 220, Layers: 6, TargetConns: 5795,
			NetSizeMin: 2, NetSizeMax: 5, Locality: 64, BusFraction: 0.7, MarginX: 1, MarginY: 1, Seed: 15},
		{Name: "nmc-6L", ViaCols: 120, ViaRows: 140, Layers: 6, TargetConns: 2253,
			NetSizeMin: 2, NetSizeMax: 4, Locality: 72, BusFraction: 0.5, MarginX: 2, MarginY: 2, Seed: 23},
		{Name: "dcache", ViaCols: 160, ViaRows: 220, Layers: 6, TargetConns: 5738,
			NetSizeMin: 2, NetSizeMax: 5, Locality: 55, BusFraction: 0.7, MarginX: 1, MarginY: 1, Seed: 16},
		{Name: "tna", ViaCols: 110, ViaRows: 160, Layers: 6, TargetConns: 2789,
			NetSizeMin: 2, NetSizeMax: 5, Locality: 58, BusFraction: 0.6, MarginX: 1, MarginY: 0, Seed: 17},
	}
}

// Table1Spec returns the named row, or false.
func Table1Spec(name string) (Spec, bool) {
	for _, s := range Table1Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Scale shrinks a spec by the given integer divisor for fast runs:
// board edges, connection target and locality divide by it. Scale(1)
// returns the spec unchanged.
func (s Spec) Scale(div int) Spec {
	if div <= 1 {
		return s
	}
	out := s
	out.Name = s.Name + "-scaled"
	out.ViaCols = max(blockW+4, s.ViaCols/div)
	out.ViaRows = max(blockH+4, s.ViaRows/div)
	out.TargetConns = max(8, s.TargetConns/(div*div))
	out.Locality = max(8, s.Locality/div)
	out.BestEffort = true
	return out
}

// SmallSpec is a compact board for unit and property tests: it strings
// and routes in milliseconds while still exercising every strategy.
func SmallSpec(seed int64) Spec {
	return Spec{
		Name: "small", ViaCols: 46, ViaRows: 40, Layers: 4, TargetConns: 60,
		NetSizeMin: 2, NetSizeMax: 3, Locality: 20, MarginX: 2, MarginY: 2, Seed: seed,
	}
}

// TinySpec is the smallest non-degenerate board: a 2x2 part grid with a
// dozen two-pin nets, routing in well under a millisecond. Soak and
// service tests push hundreds of these through a daemon; each seed is a
// distinct but reproducible job.
func TinySpec(seed int64) Spec {
	return Spec{
		Name: "tiny", ViaCols: 32, ViaRows: 20, Layers: 2, TargetConns: 12,
		NetSizeMin: 2, NetSizeMax: 2, Locality: 14, MarginX: 2, MarginY: 2, Seed: seed,
	}
}
