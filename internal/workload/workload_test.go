package workload

import (
	"testing"

	"repro/internal/netlist"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(SmallSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(SmallSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Parts) != len(b.Parts) || len(a.Nets) != len(b.Nets) {
		t.Fatalf("runs differ: %d/%d parts, %d/%d nets", len(a.Parts), len(b.Parts), len(a.Nets), len(b.Nets))
	}
	for i := range a.Nets {
		if a.Nets[i].Name != b.Nets[i].Name || len(a.Nets[i].Pins) != len(b.Nets[i].Pins) {
			t.Fatalf("net %d differs", i)
		}
		for j := range a.Nets[i].Pins {
			if a.Nets[i].Pins[j].Ref.Pos() != b.Nets[i].Pins[j].Ref.Pos() {
				t.Fatalf("net %d pin %d differs", i, j)
			}
		}
	}
}

func TestGenerateValidates(t *testing.T) {
	d, err := Generate(SmallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("generated design invalid: %v", err)
	}
}

func TestGenerateMeetsTarget(t *testing.T) {
	spec := SmallSpec(2)
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	conns := 0
	for _, n := range d.Nets {
		conns += len(n.Pins) - 1
		if n.Tech == netlist.ECL {
			conns++
		}
	}
	if conns < spec.TargetConns {
		t.Errorf("conns %d < target %d", conns, spec.TargetConns)
	}
}

func TestNoPinReuseAcrossNets(t *testing.T) {
	d, err := Generate(SmallSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	for _, n := range d.Nets {
		for _, p := range n.Pins {
			key := p.Ref.String()
			if prev, dup := seen[key]; dup {
				t.Fatalf("pin %s in nets %s and %s", key, prev, n.Name)
			}
			seen[key] = n.Name
		}
	}
}

func TestEveryNetHasOneOutputFirst(t *testing.T) {
	d, err := Generate(SmallSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range d.Nets {
		if len(n.Pins) < 2 {
			t.Fatalf("net %s too small", n.Name)
		}
		if n.Pins[0].Func != netlist.Output {
			t.Errorf("net %s does not start with an output", n.Name)
		}
	}
}

func TestBusNetsAreParallel(t *testing.T) {
	spec := SmallSpec(6)
	spec.BusFraction = 1.0
	spec.TargetConns = 40
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// All nets must be 2-pin, and consecutive nets of one bus shift both
	// endpoints by the same offset (parallel bits).
	for _, n := range d.Nets {
		if len(n.Pins) != 2 {
			t.Fatalf("bus net %s has %d pins", n.Name, len(n.Pins))
		}
	}
	parallel := 0
	for i := 1; i < len(d.Nets); i++ {
		a0 := d.Nets[i-1].Pins[0].Ref.Pos()
		a1 := d.Nets[i-1].Pins[1].Ref.Pos()
		b0 := d.Nets[i].Pins[0].Ref.Pos()
		b1 := d.Nets[i].Pins[1].Ref.Pos()
		if b0.Sub(a0) == b1.Sub(a1) {
			parallel++
		}
	}
	if parallel == 0 {
		t.Error("no parallel consecutive bus bits found")
	}
}

func TestTable1SpecsComplete(t *testing.T) {
	specs := Table1Specs()
	if len(specs) != 9 {
		t.Fatalf("%d specs, want 9 (Table 1 rows)", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		names[s.Name] = true
	}
	for _, want := range []string{"kdj11-2L", "kdj11-4L", "nmc-4L", "nmc-6L", "dpath", "coproc", "icache", "dcache", "tna"} {
		if !names[want] {
			t.Errorf("missing board %s", want)
		}
	}
	if _, ok := Table1Spec("coproc"); !ok {
		t.Error("Table1Spec lookup failed")
	}
	if _, ok := Table1Spec("nosuch"); ok {
		t.Error("Table1Spec found a ghost")
	}
}

func TestKdj11RowsShareBoards(t *testing.T) {
	a, _ := Table1Spec("kdj11-2L")
	b, _ := Table1Spec("kdj11-4L")
	a.Name, b.Name = "", ""
	a.Layers, b.Layers = 0, 0
	if a != b {
		t.Error("kdj11 rows should differ only in layer count")
	}
}

func TestScale(t *testing.T) {
	spec, _ := Table1Spec("coproc")
	s := spec.Scale(2)
	if s.ViaCols != spec.ViaCols/2 || s.TargetConns != spec.TargetConns/4 {
		t.Errorf("scale wrong: %+v", s)
	}
	if !s.BestEffort {
		t.Error("scaled specs must be best-effort")
	}
	if spec.Scale(1) != spec {
		t.Error("Scale(1) must be identity")
	}
	if _, err := Generate(s.Scale(2)); err != nil {
		t.Errorf("doubly scaled spec fails: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	bad := Spec{ViaCols: 5, ViaRows: 5, Layers: 2, NetSizeMin: 2, NetSizeMax: 3}
	if err := bad.Validate(); err == nil {
		t.Error("tiny board accepted")
	}
	bad = SmallSpec(1)
	bad.Layers = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero layers accepted")
	}
	bad = SmallSpec(1)
	bad.NetSizeMin = 1
	if err := bad.Validate(); err == nil {
		t.Error("1-pin nets accepted")
	}
}

func TestTTLFractionTagsParts(t *testing.T) {
	spec := SmallSpec(7)
	spec.TTLFraction = 0.5
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var ecl, ttl int
	for _, p := range d.Parts {
		switch p.Tech {
		case netlist.ECL:
			ecl++
		case netlist.TTL:
			ttl++
		}
	}
	if ecl == 0 || ttl == 0 {
		t.Errorf("ecl=%d ttl=%d; want a mix", ecl, ttl)
	}
	// Nets must be technology-pure.
	for _, n := range d.Nets {
		for _, p := range n.Pins {
			if p.Ref.Part.Tech != n.Tech {
				t.Fatalf("net %s (%v) uses %v part", n.Name, n.Tech, p.Ref.Part.Tech)
			}
		}
	}
}
