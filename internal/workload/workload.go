// Package workload generates synthetic routing problems in the style of
// the paper's Table 1 boards. The original Titan, kdj11 and nmc netlists
// are proprietary, so each board is replaced by a deterministic synthetic
// equivalent matching its externally visible parameters: board area,
// layer count, connection count and pin density. Boards are populated
// with 24-pin DIP logic parts, each flanked by a 12-pin SIP resistor pack
// (the Titan coprocessor arrangement of Figure 19), and locality-biased
// multi-pin ECL nets.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// Spec parameterizes one synthetic board.
type Spec struct {
	Name    string
	ViaCols int // board width in via units (100 mil each)
	ViaRows int // board height in via units
	Layers  int // signal layers

	// TargetConns stops net generation once the stringer would emit at
	// least this many pin-to-pin connections (each net of k pins
	// contributes k-1, plus 1 for the ECL termination).
	TargetConns int

	// NetSizeMin/Max bound the logic pins per net (before termination).
	NetSizeMin, NetSizeMax int

	// Locality is the net spread: input parts are drawn from a window of
	// roughly this many via units around the output part. Larger values
	// raise Table 1's %chan (wiring demand).
	Locality int

	// BusFraction is the fraction of connections emitted as buses:
	// groups of parallel two-pin nets between consecutive pins of two
	// parts. Real datapath boards (the Titan dpath/coproc class) are
	// dominated by such buses, which nest into parallel straight runs;
	// purely random nets overstate crossing congestion at a given %chan.
	BusFraction float64

	// MarginX/Y is the spacing in via units between part blocks; smaller
	// margins raise pin density (Table 1 "pins/in²").
	MarginX, MarginY int

	// TTLFraction assigns roughly this fraction of part columns to TTL
	// (0 for the pure-ECL Table 1 boards; used by the mixed-technology
	// example).
	TTLFraction float64

	// BestEffort accepts a design that falls short of TargetConns when
	// the pin supply runs out (scaled-down boards have coarser part
	// granularity than the originals); without it a shortfall is an
	// error.
	BestEffort bool

	Seed int64
}

// Validate reports obviously unusable specs.
func (s Spec) Validate() error {
	if s.ViaCols < blockW+2 || s.ViaRows < blockH+2 {
		return fmt.Errorf("workload: board %dx%d via units cannot fit one part block", s.ViaCols, s.ViaRows)
	}
	if s.Layers <= 0 {
		return fmt.Errorf("workload: no layers")
	}
	if s.NetSizeMin < 2 || s.NetSizeMax < s.NetSizeMin {
		return fmt.Errorf("workload: bad net size range %d..%d", s.NetSizeMin, s.NetSizeMax)
	}
	return nil
}

// Block geometry in via units: a DIP24 (two rows of 12, 3 via units
// apart) with a SIP12 resistor pack two rows below it.
const (
	dipRowSpan = 3
	blockW     = 12
	blockH     = 6 // DIP rows at y+0 and y+3, SIP row at y+5
)

// Generate builds the synthetic design for spec. The same spec and seed
// always produce the identical design.
func Generate(spec Spec) (*netlist.Design, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	d := &netlist.Design{
		Name:    spec.Name,
		ViaCols: spec.ViaCols,
		ViaRows: spec.ViaRows,
		Layers:  spec.Layers,
		Pitch:   3,
	}

	dip := netlist.DIP(24, dipRowSpan)
	sip := netlist.SIP(12, true)

	cellW := blockW + spec.MarginX
	cellH := blockH + spec.MarginY
	// Leave a one-via-unit rim so edge pins keep free routing space.
	cols := (spec.ViaCols - 2) / cellW
	rows := (spec.ViaRows - 2) / cellH
	if cols < 1 || rows < 1 {
		return nil, fmt.Errorf("workload: %s: no room for part blocks", spec.Name)
	}

	type block struct {
		dip *netlist.Part
		at  geom.Point // block origin, via units
	}
	var blocks []block
	ttlCols := int(spec.TTLFraction * float64(cols))
	for by := 0; by < rows; by++ {
		for bx := 0; bx < cols; bx++ {
			at := geom.Pt(1+bx*cellW, 1+by*cellH)
			tech := netlist.ECL
			if bx < ttlCols {
				tech = netlist.TTL
			}
			dp := &netlist.Part{
				Name: fmt.Sprintf("U%d_%d", bx, by),
				Pkg:  dip,
				At:   at,
				Tech: tech,
			}
			rp := &netlist.Part{
				Name: fmt.Sprintf("R%d_%d", bx, by),
				Pkg:  sip,
				At:   at.Add(geom.Pt(0, blockH-1)),
				Tech: tech,
			}
			d.Parts = append(d.Parts, dp, rp)
			blocks = append(blocks, block{dip: dp, at: at})
		}
	}

	// Free logic pins per DIP part. Pins 6 and 18 are the part's power
	// pins (VEE/VCC in the ECL convention of power.DefaultAssignment);
	// they connect to power planes, never to signal nets.
	freePins := make(map[*netlist.Part][]int)
	for _, b := range blocks {
		var pins []int
		for i := 1; i <= dip.Pins(); i++ {
			if i == 6 || i == 18 {
				continue
			}
			pins = append(pins, i)
		}
		freePins[b.dip] = pins
	}
	takePin := func(p *netlist.Part) (int, bool) {
		pins := freePins[p]
		if len(pins) == 0 {
			return 0, false
		}
		i := rng.Intn(len(pins))
		pin := pins[i]
		pins[i] = pins[len(pins)-1]
		freePins[p] = pins[:len(pins)-1]
		return pin, true
	}

	// blockAt finds the block index at grid position (bx, by).
	blockIdx := func(bx, by int) int { return by*cols + bx }

	// takeRun removes up to want pins from p whose positions are
	// consecutive along a package row, for bus generation.
	takeRun := func(p *netlist.Part, want int) []int {
		pins := freePins[p]
		if len(pins) == 0 {
			return nil
		}
		sort.Ints(pins)
		bestLo, bestLen := 0, 1
		runLo, runLen := 0, 1
		for i := 1; i < len(pins); i++ {
			if pins[i] == pins[i-1]+1 && pins[i] != p.Pkg.Pins()/2+1 {
				runLen++
			} else {
				runLo, runLen = i, 1
			}
			if runLen > bestLen {
				bestLo, bestLen = runLo, runLen
			}
			if bestLen >= want {
				break
			}
		}
		n := min(bestLen, want)
		run := append([]int(nil), pins[bestLo:bestLo+n]...)
		rest := append([]int(nil), pins[:bestLo]...)
		rest = append(rest, pins[bestLo+n:]...)
		freePins[p] = rest
		return run
	}

	conns := 0
	netNo := 0
	stuck := 0
	for conns < spec.TargetConns && stuck < 5000 {
		if rng.Float64() < spec.BusFraction {
			// A bus: parallel two-pin nets between consecutive pins of
			// two parts within the locality window.
			obx, oby := rng.Intn(cols), rng.Intn(rows)
			src := blocks[blockIdx(obx, oby)]
			radius := max(1, spec.Locality/cellW)
			dbx := clamp(obx+rng.Intn(2*radius+1)-radius, 0, cols-1)
			dby := clamp(oby+rng.Intn(2*radius+1)-radius, 0, rows-1)
			dst := blocks[blockIdx(dbx, dby)]
			if dst.dip == src.dip || dst.dip.Tech != src.dip.Tech {
				stuck++
				continue
			}
			width := 4 + rng.Intn(13) // 4..16 bits
			srcRun := takeRun(src.dip, width)
			dstRun := takeRun(dst.dip, len(srcRun))
			if len(dstRun) < len(srcRun) {
				// Return the surplus source pins.
				freePins[src.dip] = append(freePins[src.dip], srcRun[len(dstRun):]...)
				srcRun = srcRun[:len(dstRun)]
			}
			if len(srcRun) == 0 {
				stuck++
				continue
			}
			for k := range srcRun {
				net := &netlist.Net{
					Name: fmt.Sprintf("N%d", netNo),
					Tech: src.dip.Tech,
					Pins: []netlist.NetPin{
						{Ref: netlist.PinRef{Part: src.dip, Pin: srcRun[k]}, Func: netlist.Output},
						{Ref: netlist.PinRef{Part: dst.dip, Pin: dstRun[k]}, Func: netlist.Input},
					},
				}
				d.Nets = append(d.Nets, net)
				netNo++
				conns++ // the one pin-to-pin link
				if net.Tech == netlist.ECL {
					conns++ // termination added by the stringer
				}
			}
			continue
		}

		size := spec.NetSizeMin + rng.Intn(spec.NetSizeMax-spec.NetSizeMin+1)

		// Output part: any block with free pins.
		obx, oby := rng.Intn(cols), rng.Intn(rows)
		src := blocks[blockIdx(obx, oby)]
		outPin, ok := takePin(src.dip)
		if !ok {
			stuck++
			continue
		}
		srcTech := src.dip.Tech

		net := &netlist.Net{
			Name: fmt.Sprintf("N%d", netNo),
			Tech: srcTech,
			Pins: []netlist.NetPin{{Ref: netlist.PinRef{Part: src.dip, Pin: outPin}, Func: netlist.Output}},
		}

		// Input pins: parts within the locality window of the source, of
		// the same technology. Widen the window if the neighborhood is
		// exhausted.
		radius := max(1, spec.Locality/cellW)
		for tries := 0; len(net.Pins) < size && tries < 40; tries++ {
			r := radius
			if tries > 20 {
				r = radius * 4
			}
			ibx := clamp(obx+rng.Intn(2*r+1)-r, 0, cols-1)
			iby := clamp(oby+rng.Intn(2*r+1)-r, 0, rows-1)
			cand := blocks[blockIdx(ibx, iby)]
			if cand.dip == src.dip || cand.dip.Tech != srcTech {
				continue
			}
			pin, ok := takePin(cand.dip)
			if !ok {
				continue
			}
			net.Pins = append(net.Pins, netlist.NetPin{
				Ref: netlist.PinRef{Part: cand.dip, Pin: pin}, Func: netlist.Input,
			})
		}
		if len(net.Pins) < 2 {
			// Give the output pin back and note the failure.
			freePins[src.dip] = append(freePins[src.dip], outPin)
			stuck++
			continue
		}
		d.Nets = append(d.Nets, net)
		netNo++
		conns += len(net.Pins) - 1
		if net.Tech == netlist.ECL {
			conns++ // termination connection added by the stringer
		}
	}
	if conns < spec.TargetConns && !spec.BestEffort {
		return nil, fmt.Errorf("workload: %s: only %d of %d connections generated before pin exhaustion",
			spec.Name, conns, spec.TargetConns)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
