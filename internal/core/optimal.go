package core

import (
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/layer"
)

// layerAllowsDirect reports whether a direct (zero-via) connection
// between p and q may be attempted on a layer of orientation o under the
// radius constraint of Section 8.1: orthogonal movement on the layer is
// limited to radius via units.
func (r *Router) layerAllowsDirect(o grid.Orientation, p, q geom.Point) bool {
	limit := r.Opts.Radius * r.B.Cfg.Pitch
	if o == grid.Horizontal {
		return absInt(p.Y-q.Y) <= limit
	}
	return absInt(p.X-q.X) <= limit
}

// directBox is the search box for a zero-via attempt between p and q: the
// bounding rectangle grown by the radius on every side, clipped to the
// board.
func (r *Router) directBox(p, q geom.Point) geom.Rect {
	d := r.Opts.Radius * r.B.Cfg.Pitch
	return geom.Bounding(p, q).Expand(d).Intersect(r.B.Cfg.Bounds())
}

// zeroVia attempts the simplest strategy: a single trace on some layer
// whose orientation admits the connection (Section 8.1). It stops after
// the first successful Trace call.
func (r *Router) zeroVia(i int) (Route, bool) {
	c := &r.Conns[i]
	return r.zeroViaPts(c.A, c.B, r.connID(i))
}

// zeroViaPts is zeroVia for arbitrary endpoints (the tuning package
// routes stretched legs between waypoint vias).
func (r *Router) zeroViaPts(a, b geom.Point, id layer.ConnID) (Route, bool) {
	box := r.directBox(a, b)
	for li, l := range r.B.Layers {
		if !r.layerAllowsDirect(l.Orient, a, b) {
			continue
		}
		r.metrics.TraceCalls++
		runs, ok := r.search.Trace(l, a, b, box)
		if !ok {
			continue
		}
		var rt Route
		if r.materialize(&rt, li, runs, id) {
			return rt, true
		}
	}
	return Route{}, false
}

// oneVia attempts the divide-and-conquer one-via strategy of Section 8.1:
// choose an intermediate via v near one of the two corners of the
// rectangle bounding a and b, then solve the two zero-via subproblems
// a–v and v–b. Candidates are enumerated best-to-worst — the corner
// centers first, since connections to them block the fewest channels.
func (r *Router) oneVia(i int) (Route, bool) {
	c := &r.Conns[i]
	return r.oneViaPts(c.A, c.B, r.connID(i))
}

// oneViaPts is oneVia for arbitrary endpoints.
func (r *Router) oneViaPts(a, b geom.Point, id layer.ConnID) (Route, bool) {
	cfg := r.B.Cfg
	bounds := cfg.Bounds()
	pitch := cfg.Pitch
	rad := r.Opts.Radius

	// Snap the corners to the via grid: with off-grid endpoints
	// (Section 11 extension) the geometric corner may not be a legal via
	// site.
	corners := [2]geom.Point{
		cfg.NearestViaSite(geom.Pt(b.X, a.Y)),
		cfg.NearestViaSite(geom.Pt(a.X, b.Y)),
	}

	// Candidate dedup runs on the scratch's generation-stamped dense
	// store instead of a per-call map: oneVia is probed for nearly every
	// connection, so the map allocation was pure routing overhead.
	sc := &r.scratch
	sc.beginVisited()
	for d := 0; d <= 2*rad; d++ {
		for dx := -rad; dx <= rad; dx++ {
			dy := d - absInt(dx)
			if dy < 0 || dy > rad {
				continue
			}
			for _, sy := range [2]int{1, -1} {
				if dy == 0 && sy == -1 {
					continue
				}
				for _, corner := range corners {
					v := geom.Pt(corner.X+dx*pitch, corner.Y+sy*dy*pitch)
					if !sc.tryVisit(v) {
						continue
					}
					if rt, ok := r.tryOneViaCandidate(a, b, id, v, bounds); ok {
						return rt, true
					}
				}
			}
		}
	}
	return Route{}, false
}

// tryOneViaCandidate drills v and attempts the two zero-via legs.
func (r *Router) tryOneViaCandidate(a, b geom.Point, id layer.ConnID, v geom.Point, bounds geom.Rect) (Route, bool) {
	if !v.In(bounds) || v == a || v == b {
		return Route{}, false
	}
	r.trackPt(v)
	if !r.B.ViaFree(v) {
		return Route{}, false
	}
	var rt Route
	// Drill first: tracing toward an already-occupied endpoint keeps the
	// single-layer touch rules uniform (traces always stop beside the
	// target cell).
	if !r.drill(&rt, v, id) {
		return Route{}, false
	}
	if r.traceLeg(&rt, a, v, id) && r.traceLeg(&rt, v, b, id) {
		return rt, true
	}
	r.rollback(&rt)
	return Route{}, false
}

// traceLeg routes the zero-via leg p–q on the first layer that admits it.
// On a materialization collision rt has already been rolled back, so the
// leg simply reports failure.
func (r *Router) traceLeg(rt *Route, p, q geom.Point, id layer.ConnID) bool {
	box := r.directBox(p, q)
	for li, l := range r.B.Layers {
		if !r.layerAllowsDirect(l.Orient, p, q) {
			continue
		}
		r.metrics.TraceCalls++
		runs, ok := r.search.Trace(l, p, q, box)
		if !ok {
			continue
		}
		return r.materialize(rt, li, runs, id)
	}
	return false
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
