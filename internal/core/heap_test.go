package core

import (
	"container/heap"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// refHeap is a container/heap oracle with the exact (cost, seq) order the
// typed leeHeap implements. Since seq is unique per push, the order is a
// strict total order, so any correct heap must pop the same sequence.
type refHeap []leeItem

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return leeItemLess(h[i], h[j]) }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(leeItem)) }
func (h *refHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// TestLeeHeapMatchesContainerHeap fuzzes the typed heap against the
// container/heap oracle with random push/pop interleavings: every pop
// must return the identical item. This is the property that makes the
// container/heap → leeHeap swap behavior-preserving for routing.
func TestLeeHeapMatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for trial := 0; trial < 50; trial++ {
		var got leeHeap
		ref := &refHeap{}
		seq := 0
		for op := 0; op < 400; op++ {
			if got.len() == 0 || rng.Intn(3) != 0 {
				it := leeItem{
					cost: int64(rng.Intn(40)), // narrow range forces cost ties
					seq:  seq,
					p:    geom.Pt(rng.Intn(100), rng.Intn(100)),
				}
				seq++
				got.push(it)
				heap.Push(ref, it)
				if got.top() != (*ref)[0] {
					t.Fatalf("trial %d op %d: top %+v, oracle %+v", trial, op, got.top(), (*ref)[0])
				}
			} else {
				g, w := got.pop(), heap.Pop(ref).(leeItem)
				if g != w {
					t.Fatalf("trial %d op %d: popped %+v, oracle popped %+v", trial, op, g, w)
				}
			}
		}
		for got.len() > 0 {
			g, w := got.pop(), heap.Pop(ref).(leeItem)
			if g != w {
				t.Fatalf("trial %d drain: popped %+v, oracle popped %+v", trial, g, w)
			}
		}
		if ref.Len() != 0 {
			t.Fatalf("trial %d: oracle still holds %d items", trial, ref.Len())
		}
	}
}

// TestLeeHeapSeqTieBreak pushes equal-cost items in shuffled order and
// checks they pop in push (seq) order — the FIFO-among-ties rule the
// original container/heap search relied on for deterministic expansion.
func TestLeeHeapSeqTieBreak(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h leeHeap
	perm := rng.Perm(64)
	for _, s := range perm {
		h.push(leeItem{cost: 17, seq: s, p: geom.Pt(s, s)})
	}
	for want := 0; want < 64; want++ {
		it := h.pop()
		if it.seq != want {
			t.Fatalf("equal-cost items popped out of seq order: got seq %d, want %d", it.seq, want)
		}
	}
}

// TestLeeHeapReuseAfterReset verifies reset recycles the backing array:
// steady-state searches must not re-grow the heap.
func TestLeeHeapReuseAfterReset(t *testing.T) {
	var h leeHeap
	for i := 0; i < 1000; i++ {
		h.push(leeItem{cost: int64(i % 13), seq: i})
	}
	h.reset()
	if h.len() != 0 {
		t.Fatalf("len after reset = %d", h.len())
	}
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < 1000; i++ {
			h.push(leeItem{cost: int64((i * 7) % 13), seq: i})
		}
		h.reset()
	})
	if allocs != 0 {
		t.Errorf("push after reset allocated %.1f times per refill; backing array not reused", allocs)
	}
}
