package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/geom"
)

// TestPreCancelledContextAborts: a context cancelled before RouteContext
// even starts must stop the run before the first connection, reporting
// AbortCancelled with every connection failed and the board untouched.
func TestPreCancelledContextAborts(t *testing.T) {
	b := emptyBoard(t, 12, 12, 2)
	a := pinAt(t, b, geom.Pt(1, 5))
	c := pinAt(t, b, geom.Pt(9, 5))
	r := mustRouter(t, b, []Connection{{A: a, B: c}}, DefaultOptions())

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := r.RouteContext(ctx)
	if res.Aborted != AbortCancelled {
		t.Fatalf("Aborted = %v, want %v", res.Aborted, AbortCancelled)
	}
	if res.Complete() {
		t.Error("aborted result claims completeness")
	}
	if res.Metrics.Routed != 0 || len(res.FailedConns) != 1 {
		t.Errorf("pre-cancelled run still routed: %+v", res.Metrics)
	}
	if err := b.Audit(); err != nil {
		t.Errorf("board inconsistent after aborted run: %v", err)
	}
	if !strings.Contains(res.String(), "cancelled") {
		t.Errorf("result string hides the abort: %q", res.String())
	}
}

// TestTimeBudgetAbortsBeforeWork: an already-expired time budget stops
// the run at the first checkpoint with AbortTime.
func TestTimeBudgetAbortsBeforeWork(t *testing.T) {
	b := emptyBoard(t, 12, 12, 2)
	a := pinAt(t, b, geom.Pt(1, 5))
	c := pinAt(t, b, geom.Pt(9, 5))
	opts := DefaultOptions()
	opts.TimeBudget = time.Nanosecond
	r := mustRouter(t, b, []Connection{{A: a, B: c}}, opts)

	res := r.Route()
	if res.Aborted != AbortTime {
		t.Fatalf("Aborted = %v, want %v", res.Aborted, AbortTime)
	}
	if res.Metrics.Routed != 0 {
		t.Errorf("routed %d connections on an expired budget", res.Metrics.Routed)
	}
	if err := b.Audit(); err != nil {
		t.Errorf("board inconsistent: %v", err)
	}
}

// TestTimeBudgetAbortsMidFlood starts a Lee flood that can never succeed
// (the target is walled off) under a budget that expires while the
// wavefront is growing: the stride checkpoint inside the search must cut
// it short instead of letting the flood exhaust the board.
func TestTimeBudgetAbortsMidFlood(t *testing.T) {
	b := emptyBoard(t, 40, 40, 2)
	a := pinAt(t, b, geom.Pt(2, 2))
	c := pinAt(t, b, geom.Pt(35, 35))
	wallOff(t, b, c)
	opts := DefaultOptions()
	opts.Bidirectional = false
	opts.CostCapFactor = 0 // the flood would cover the whole board
	opts.Escalate = false
	opts.TimeBudget = time.Millisecond
	r := mustRouter(t, b, []Connection{{A: a, B: c}}, opts)

	// Burn the budget so the mid-search checkpoint, not the
	// per-connection one, has to trigger... unless the clock already
	// expired, which the first checkpoint catches equally well.
	start := time.Now()
	res := r.Route()
	elapsed := time.Since(start)
	if res.Aborted != AbortTime {
		t.Fatalf("Aborted = %v, want %v", res.Aborted, AbortTime)
	}
	// The full flood is >500 expansions of real work plus rip-up rounds;
	// an entire unbudgeted Route here takes well over a millisecond. The
	// abort must land quickly — allow generous slack for slow machines.
	if elapsed > 2*time.Second {
		t.Errorf("aborted route took %v", elapsed)
	}
	if err := b.Audit(); err != nil {
		t.Errorf("board inconsistent after mid-search abort: %v", err)
	}
}

// TestNodeBudgetFailsConnection caps a hopeless flood at 200 expansions:
// the connection must fail with FailNodeBudget counted and the search
// charged no more than the budget, while the run itself finishes
// normally (a node budget is per-connection, not per-route).
func TestNodeBudgetFailsConnection(t *testing.T) {
	b := emptyBoard(t, 40, 40, 2)
	a := pinAt(t, b, geom.Pt(2, 2))
	c := pinAt(t, b, geom.Pt(35, 35))
	wallOff(t, b, c)
	opts := DefaultOptions()
	opts.Bidirectional = false
	opts.CostCapFactor = 0
	opts.Escalate = false
	opts.NodeBudget = 200
	r := mustRouter(t, b, []Connection{{A: a, B: c}}, opts)

	res := r.Route()
	if res.Aborted != AbortNone {
		t.Fatalf("node budget aborted the whole run: %v", res.Aborted)
	}
	if len(res.FailedConns) != 1 {
		t.Fatalf("walled connection routed? %+v", res.Metrics)
	}
	if res.Metrics.FailNodeBudget == 0 {
		t.Error("FailNodeBudget not counted")
	}
	// Each pass retries the connection once; every attempt is clamped to
	// the budget. Without the budget this flood runs >500 expansions per
	// attempt (see TestLeeSteadyStateAllocs).
	perAttempt := res.Metrics.LeeExpansions / res.Metrics.Passes
	if perAttempt > opts.NodeBudget {
		t.Errorf("%d expansions per attempt, budget %d", perAttempt, opts.NodeBudget)
	}
	if err := b.Audit(); err != nil {
		t.Errorf("board inconsistent: %v", err)
	}
}

// TestBudgetsUnsetChangeNothing pins the bit-identical guarantee: with
// no budget, no deadline and a background context, the new abort
// machinery must be fully dormant — same metrics, same realization as a
// plain Route on an identical board.
func TestBudgetsUnsetChangeNothing(t *testing.T) {
	_, r1, res1 := buildDense(t)
	b2, r2 := buildDenseRouter(t)
	res2 := r2.RouteContext(context.Background())

	if res1.Metrics != res2.Metrics {
		t.Errorf("metrics differ:\n Route        %+v\n RouteContext %+v", res1.Metrics, res2.Metrics)
	}
	if res2.Aborted != AbortNone || res2.Invariant != nil {
		t.Errorf("unbudgeted run reports abort state: %+v", res2)
	}
	for i := range r1.Conns {
		if r1.RouteOf(i).Method != r2.RouteOf(i).Method {
			t.Errorf("connection %d method differs: %v vs %v",
				i, r1.RouteOf(i).Method, r2.RouteOf(i).Method)
		}
	}
	if err := b2.Audit(); err != nil {
		t.Error(err)
	}
}

// buildDenseRouter is buildDense stopping short of the Route call.
func buildDenseRouter(t testing.TB) (*board.Board, *Router) {
	return buildDenseRouterOpts(t, DefaultOptions())
}

// buildDenseRouterOpts is buildDenseRouter under caller-chosen options
// (the obs tests route the same board with a registry armed).
func buildDenseRouterOpts(t testing.TB, opts Options) (*board.Board, *Router) {
	t.Helper()
	b := emptyBoard(t, 20, 8, 2)
	var conns []Connection
	for i := 0; i < 6; i++ {
		a := pinAt(t, b, geom.Pt(1, 1+i))
		c := pinAt(t, b, geom.Pt(18, 1+i))
		conns = append(conns, Connection{A: a, B: c})
	}
	for i := 0; i < 4; i++ {
		a := pinAt(t, b, geom.Pt(4+3*i, 0))
		c := pinAt(t, b, geom.Pt(5+3*i, 7))
		conns = append(conns, Connection{A: a, B: c})
	}
	return b, mustRouter(t, b, conns, opts)
}
