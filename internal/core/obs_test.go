package core

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/obs"
)

// TestInstrumentedRunBitIdentical pins the ISSUE's determinism
// guarantee: routing with a registry armed reads the clock but never
// feeds it back into the algorithm, so metrics, per-connection methods,
// and the realized board must match a bare run exactly.
func TestInstrumentedRunBitIdentical(t *testing.T) {
	b1, r1, res1 := buildDense(t)

	opts := DefaultOptions()
	opts.Metrics = obs.NewRegistry()
	b2, r2 := buildDenseRouterOpts(t, opts)
	res2 := r2.Route()

	if res1.Metrics != res2.Metrics {
		t.Errorf("metrics differ:\n bare         %+v\n instrumented %+v", res1.Metrics, res2.Metrics)
	}
	for i := range r1.Conns {
		if r1.RouteOf(i).Method != r2.RouteOf(i).Method {
			t.Errorf("connection %d method differs: %v vs %v",
				i, r1.RouteOf(i).Method, r2.RouteOf(i).Method)
		}
	}
	if f1, f2 := b1.Fingerprint(), b2.Fingerprint(); f1 != f2 {
		t.Errorf("board fingerprints differ: %#x vs %#x", f1, f2)
	}
}

// TestRegistryMatchesMetricsStruct: after a run, every flushed counter
// and gauge must agree with the one-shot Metrics struct — the registry
// is a live view of the same numbers, not a second bookkeeping system
// that can drift.
func TestRegistryMatchesMetricsStruct(t *testing.T) {
	reg := obs.NewRegistry()
	opts := DefaultOptions()
	opts.Metrics = reg
	b, r := buildDenseRouterOpts(t, opts)
	res := r.Route()
	if err := b.Audit(); err != nil {
		t.Fatal(err)
	}
	m := res.Metrics

	counters := map[string]int{
		"grr_router_lee_expansions_total":                      m.LeeExpansions,
		"grr_router_lee_blocked_total":                         m.LeeBlocked,
		"grr_router_rip_ups_total":                             m.RipUps,
		"grr_router_put_backs_total":                           m.PutBacks,
		"grr_router_rerouted_total":                            m.ReRouted,
		"grr_router_trace_calls_total":                         m.TraceCalls,
		"grr_router_via_queries_total":                         m.ViasCalls,
		"grr_router_passes_total":                              m.Passes,
		"grr_router_connections_total":                         m.Connections,
		"grr_router_routed_total":                              m.Routed,
		"grr_router_failed_total":                              m.Failed,
		`grr_router_route_failures_total{cause="no_victims"}`:  m.FailNoVictims,
		`grr_router_route_failures_total{cause="rounds"}`:      m.FailRounds,
		`grr_router_route_failures_total{cause="node_budget"}`: m.FailNodeBudget,
	}
	for name, want := range counters {
		if got := reg.Counter(name).Value(); got != int64(want) {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	gauges := map[string]int{
		"grr_router_wire_length_cells": m.WireLength,
		"grr_router_vias_placed":       m.ViasAdded,
	}
	for mth := Trivial; mth <= PutBack; mth++ {
		gauges[`grr_router_routed_by_method{method="`+methodLabel[mth]+`"}`] = m.ByMethod[mth]
	}
	for name, want := range gauges {
		if got := reg.Gauge(name).Value(); got != int64(want) {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}

	// The dense board routes everything with the optimal strategies, so
	// the ladder's first rungs must have been timed (the congested
	// full-ladder case — Lee, rip-up, put-back — is covered at the
	// experiment layer, which routes a scaled Table 1 board). Every
	// leePts/zeroViaT attempt lands one observation whether it
	// succeeded or not.
	if m.TraceCalls == 0 || m.WireLength == 0 {
		t.Fatalf("degenerate fixture: %+v", m)
	}
	zv := reg.Histogram(`grr_router_phase_seconds{phase="zero_via"}`, obs.DurationBuckets())
	if zv.Count() == 0 {
		t.Error("zero_via phase recorded no observations")
	}
	if reg.Histogram("grr_router_pass_seconds", obs.DurationBuckets()).Count() != int64(m.Passes) {
		t.Errorf("pass histogram count %d, want %d",
			reg.Histogram("grr_router_pass_seconds", obs.DurationBuckets()).Count(), m.Passes)
	}
}

// TestResumedRouterPublishesOnlyNewWork: a resumed router installs the
// checkpoint's counters as its already-flushed baseline, so the
// registry — which in grrd outlives many job attempts — sees only the
// expansions and passes done in this process, not a re-announcement of
// the checkpointed history.
func TestResumedRouterPublishesOnlyNewWork(t *testing.T) {
	b := emptyBoard(t, 20, 20, 2)
	var conns []Connection
	for i := 0; i < 4; i++ {
		a := pinAt(t, b, geom.Pt(1, 1+2*i))
		c := pinAt(t, b, geom.Pt(17, 1+2*i))
		conns = append(conns, Connection{A: a, B: c})
	}
	opts := DefaultOptions()
	opts.Sort = false
	opts.CheckpointEvery = 1
	var first *Checkpoint
	opts.CheckpointSink = func(cp *Checkpoint) error {
		if first == nil {
			first = cp
		}
		return nil
	}
	if res := mustRouter(t, b, conns, opts).Route(); !res.Complete() {
		t.Fatalf("baseline run incomplete: %+v", res)
	}
	if first == nil {
		t.Fatal("no checkpoint captured")
	}

	b2 := emptyBoard(t, 20, 20, 2)
	conns2 := append([]Connection(nil), conns...)
	opts2 := DefaultOptions()
	opts2.Sort = false
	reg := obs.NewRegistry()
	opts2.Metrics = reg
	r2, err := Resume(b2, conns2, opts2, first)
	if err != nil {
		t.Fatal(err)
	}
	res2 := r2.Route()
	if !res2.Complete() {
		t.Fatalf("resumed run incomplete: %+v", res2)
	}

	wantExp := res2.Metrics.LeeExpansions - first.Metrics.LeeExpansions
	if got := reg.Counter("grr_router_lee_expansions_total").Value(); got != int64(wantExp) {
		t.Errorf("registry expansions = %d, want the post-resume delta %d (total %d, checkpointed %d)",
			got, wantExp, res2.Metrics.LeeExpansions, first.Metrics.LeeExpansions)
	}
	wantWire := res2.Metrics.WireLength - first.Metrics.WireLength
	if got := reg.Gauge("grr_router_wire_length_cells").Value(); got != int64(wantWire) {
		t.Errorf("registry wire length = %d, want the post-resume delta %d", got, wantWire)
	}
}
