// Incremental re-routing (DESIGN §15). A router built with
// Options.RecordRegions remembers, per connection, either the last
// clean routing turn — zero rip-ups, committed in one ladder run: its
// metal, its method, the board region the search read, and the pass it
// happened on (a memo) — or, for every turn that was not clean, the
// union of the turn's mutation extents (churn). After a design edit,
// Reroute builds a fresh router over the edited board and connection
// list and replays: a connection's memo is adopted verbatim — the
// metal placed without searching — exactly when nothing the original
// search could have observed differs on the edited board; everything
// else goes through the ordinary ladder. The dirty-region bookkeeping
// below makes "could have observed" precise, so the replayed board is
// identical to a from-scratch route of the edited design and only the
// connections an edit actually disturbs pay for a search.
package core

import (
	"fmt"

	"repro/internal/board"
	"repro/internal/geom"
)

// connMemo is one connection's last clean routing turn, in board
// coordinates so it can be replayed onto a different Router's board.
type connMemo struct {
	pass   int
	method Method
	segs   []CheckpointSeg
	vias   []geom.Point
	// region is everything the turn read: searcher scan extents plus
	// every cell and via site the ladder probed or placed on. A memo
	// may be adopted only while the replay's dirty set is disjoint
	// from it.
	region readRegion
	// metal is the bounding box of the turn's committed placements —
	// what must enter the dirty set when the memo's connection is
	// removed or re-routed differently.
	metal geom.Rect
	// lbHash, under EngineGoal, fingerprints the full-channel picture
	// the goal heuristic read (lbIndex.fullHash): the heuristic reads
	// board-wide congestion outside the tracked region, so adoption
	// additionally requires the picture to be reproduced.
	lbHash uint64
}

// replayState is the dirty-region set of one Reroute run: every board
// rectangle on which the edited run's history is (or may be) different
// from the recorded run's. It only ever grows.
type replayState struct {
	dirty []geom.Rect
}

func (s *replayState) addDirty(r geom.Rect) {
	if !r.Empty() {
		s.dirty = append(s.dirty, r)
	}
}

// clean reports whether reg is disjoint from every dirty rectangle.
func (s *replayState) clean(reg readRegion) bool {
	for _, d := range s.dirty {
		if !reg.cells.Intersect(d).Empty() || !reg.vias.Intersect(d).Empty() {
			return false
		}
	}
	return true
}

// routeTurn is routeOne bracketed by the RecordRegions bookkeeping: on
// a replay router it first tries to adopt the connection's memo, and
// in every case it captures the turn's read region and mutation
// extents — including the deferred put-backs inside routeOne — and
// files the outcome as a memo or as churn. Without RecordRegions it is
// routeOne.
func (r *Router) routeTurn(i int) bool {
	if !r.Opts.RecordRegions {
		return r.routeOne(i)
	}
	if c := &r.Conns[i]; c.A == c.B {
		return r.routeOne(i) // Trivial: no metal, nothing to record
	}
	if r.replay != nil && !r.inEscalate {
		if m := r.memos[i]; m != nil && m.pass == r.curPass && r.memoAdopt(i, m) {
			return true
		}
	}
	r.beginTurn()
	ripBase := r.metrics.RipUps
	ok := r.routeOne(i)
	region, rect := r.endTurn()
	clean := ok && r.metrics.RipUps == ripBase && r.abortReason == AbortNone
	r.recordTurn(i, ok, clean, region, rect)
	return ok
}

// beginTurn arms the per-turn read/write accumulators.
func (r *Router) beginTurn() {
	r.turnRegion = readRegion{cells: emptyRect(), vias: emptyRect()}
	r.track = &r.turnRegion
	r.search.ResetReads()
	r.turnRect = emptyRect()
}

// endTurn disarms them and returns the turn's read region (tracked
// placements plus searcher scan extents) and mutation bounding box.
func (r *Router) endTurn() (readRegion, geom.Rect) {
	r.track = nil
	cells, vias := r.search.ReadExtent()
	region := readRegion{
		cells: r.turnRegion.cells.Union(cells),
		vias:  r.turnRegion.vias.Union(vias),
	}
	return region, r.turnRect
}

// recordTurn files one completed (non-adopted) turn of connection i:
// clean turns become the connection's memo, everything else accrues to
// its churn. On a replay router it also grows the dirty set with the
// turn's divergence from the recorded run — the turn's own mutations
// plus the recorded metal it superseded — unless the turn reproduced
// its memo exactly, in which case the boards did not diverge at all.
func (r *Router) recordTurn(i int, ok, clean bool, region readRegion, rect geom.Rect) {
	prev := r.memos[i]
	if r.replay != nil {
		if !(ok && clean && prev != nil && r.memoMatches(i, prev)) {
			r.replay.addDirty(rect)
			if prev != nil {
				r.replay.addDirty(prev.metal)
			}
		}
		r.incRerouted++
		if r.obs != nil {
			r.obs.incRerouted.Add(1)
		}
	}
	if clean && !r.inEscalate {
		r.memos[i] = r.buildMemo(i, region, rect)
		return
	}
	delete(r.memos, i)
	cur, has := r.churn[i]
	if !has {
		cur = emptyRect()
	}
	r.churn[i] = cur.Union(rect)
}

// buildMemo captures connection i's just-committed route.
func (r *Router) buildMemo(i int, region readRegion, metal geom.Rect) *connMemo {
	rt := &r.routes[i]
	m := &connMemo{
		pass:   r.curPass,
		method: rt.Method,
		region: region,
		metal:  metal,
	}
	for _, ps := range rt.Segs {
		m.segs = append(m.segs, CheckpointSeg{
			Layer: ps.Layer, Ch: ps.Seg.Channel(), Lo: ps.Seg.Lo, Hi: ps.Seg.Hi,
		})
	}
	for _, pv := range rt.Vias {
		m.vias = append(m.vias, pv.At)
	}
	if r.lb != nil {
		m.lbHash = r.lb.fullHash()
	}
	return m
}

// memoMatches reports whether connection i's current route is exactly
// the memoized one — same method, same segments in order, same vias.
func (r *Router) memoMatches(i int, m *connMemo) bool {
	rt := &r.routes[i]
	if rt.Method != m.method || len(rt.Segs) != len(m.segs) || len(rt.Vias) != len(m.vias) {
		return false
	}
	for k, ps := range rt.Segs {
		cs := m.segs[k]
		if ps.Layer != cs.Layer || ps.Seg.Channel() != cs.Ch || ps.Seg.Lo != cs.Lo || ps.Seg.Hi != cs.Hi {
			return false
		}
	}
	for k, pv := range rt.Vias {
		if pv.At != m.vias[k] {
			return false
		}
	}
	return true
}

// memoAdopt re-places connection i's memoized route on the replay
// board without searching. The caller has matched the memo's pass to
// the turn in flight; adoption further requires the memo's read region
// to be disjoint from the dirty set (so the original search could not
// have observed anything the edit changed) and, under EngineGoal, the
// lower-bound congestion picture to be reproduced. Any placement
// collision — impossible while the dirty bookkeeping is sound, but
// cheap to guard — rolls back and falls through to the real ladder.
func (r *Router) memoAdopt(i int, m *connMemo) bool {
	if r.replay == nil || !r.replay.clean(m.region) {
		return false
	}
	if r.lb != nil && r.lb.fullHash() != m.lbHash {
		return false
	}
	id := r.connID(i)
	var rt Route
	// Vias first, then trace segments: the order retrace and Resume
	// materialize in, so the via barrels split channel intervals before
	// the runs that abut them are placed.
	for _, v := range m.vias {
		pv, ok := r.tx(&rt).PlaceVia(v, id)
		if !ok {
			r.rollback(&rt)
			return false
		}
		rt.Vias = append(rt.Vias, pv)
	}
	for _, cs := range m.segs {
		s := r.tx(&rt).AddSegment(cs.Layer, cs.Ch, cs.Lo, cs.Hi, id)
		if s == nil {
			r.rollback(&rt)
			return false
		}
		rt.Segs = append(rt.Segs, PlacedSeg{Layer: cs.Layer, Seg: s})
	}
	r.commit(i, rt, m.method)
	r.incAdopted++
	if r.obs != nil {
		r.obs.incAdopted.Add(1)
	}
	return true
}

// IncStats reports the replay outcomes of an incremental run (a router
// returned by Reroute): connections adopted straight from their memo,
// and connections routed through the full ladder. Non-replay routers
// report zeros. Like SpecStats these are operational counters, kept
// out of Metrics (whose integer serialization belongs to the snapshot
// codec); the obs registry exports them as incremental metric series.
func (r *Router) IncStats() (adopted, rerouted int) {
	return r.incAdopted, r.incRerouted
}

// EditOp enumerates the design edits incremental re-routing accepts.
type EditOp uint8

const (
	// EditBlock declares a board rectangle newly forbidden. The caller
	// realizes the keepout on the edited board (board.PlaceKeepout,
	// before routing); the edit entry feeds the rectangle into the
	// dirty set so every route that read it is re-routed.
	EditBlock EditOp = iota
	// EditRemoveNet drops every connection of the named net. The
	// connections stay in the list as zero-length placeholders so the
	// surviving connections keep their indices (and thus their
	// segment-owner IDs and memos).
	EditRemoveNet
	// EditAddConn appends a new connection.
	EditAddConn
)

// Edit is one design edit. Exactly the fields its Op names are read.
type Edit struct {
	Op   EditOp
	Rect geom.Rect  // EditBlock: the newly forbidden rectangle
	Net  string     // EditRemoveNet: the net to drop
	Conn Connection // EditAddConn: the connection to add
}

// EditConns derives the edited connection list: removed nets are
// trivialized in place (A == B placeholders, preserving every other
// connection's index) and added connections are appended. Routing the
// result from scratch on the edited board is the oracle an incremental
// Reroute reproduces.
func EditConns(conns []Connection, edits []Edit) []Connection {
	out := append([]Connection(nil), conns...)
	for _, e := range edits {
		switch e.Op {
		case EditRemoveNet:
			for i := range out {
				if out[i].Net == e.Net {
					out[i].B = out[i].A
				}
			}
		case EditAddConn:
			out = append(out, e.Conn)
		}
	}
	return out
}

// algoOptions projects the options that change routed output. Reroute
// refuses a tweak that alters any of them: memos record what a search
// under the original settings did, and adopting one under different
// settings would diverge from the from-scratch oracle.
type algoOptions struct {
	Radius         int
	Sort           bool
	Cost           CostFn
	Bidirectional  bool
	Engine         Engine
	MaxRipupRounds int
	RipupRadius    int
	CostCapFactor  int
	MaxPasses      int
	AllowOffGrid   bool
	IDBase         int
	Escalate       bool
	NodeBudget     int
}

func algoOf(o Options) algoOptions {
	return algoOptions{
		Radius:         o.Radius,
		Sort:           o.Sort,
		Cost:           o.Cost,
		Bidirectional:  o.Bidirectional,
		Engine:         o.Engine,
		MaxRipupRounds: o.MaxRipupRounds,
		RipupRadius:    o.RipupRadius,
		CostCapFactor:  o.CostCapFactor,
		MaxPasses:      o.MaxPasses,
		AllowOffGrid:   o.AllowOffGrid,
		IDBase:         o.IDBase,
		Escalate:       o.Escalate,
		NodeBudget:     o.NodeBudget,
	}
}

// Reroute builds the incremental replay router for an edited design.
//
// r must have routed with Options.RecordRegions. b2 is the edited
// board, fully prepared by the caller exactly as for a fresh run: pins
// placed for the edited connection list, EditBlock keepouts realized —
// and otherwise empty. edits are the design deltas; tweak, if non-nil,
// may adjust operational options (workers, budgets, checkpointing,
// metrics) on the replay router but not algorithmic ones.
//
// The returned router has not routed yet: call Route (or RouteContext)
// on it. Its output — board Fingerprint, Audit, failed connections —
// is identical to routing EditConns(r.Conns, edits) from scratch on
// b2; only the connections the edits disturb run a real search. The
// replay router again records regions, so further edits chain.
func (r *Router) Reroute(b2 *board.Board, edits []Edit, tweak func(*Options)) (*Router, error) {
	if !r.Opts.RecordRegions {
		return nil, fmt.Errorf("core: Reroute requires a router built with Options.RecordRegions")
	}
	conns2 := EditConns(r.Conns, edits)
	opts := r.Opts
	opts.RecordRegions = true
	if tweak != nil {
		tweak(&opts)
		if algoOf(opts) != algoOf(r.Opts) {
			return nil, fmt.Errorf("core: Reroute tweak changed algorithmic options")
		}
		opts.RecordRegions = true
	}
	nr, err := New(b2, conns2, opts)
	if err != nil {
		return nil, err
	}
	rp := &replayState{}
	removed := make(map[int]bool)
	for _, e := range edits {
		switch e.Op {
		case EditBlock:
			rp.addDirty(e.Rect)
		case EditRemoveNet:
			for i := range r.Conns {
				if r.Conns[i].Net == e.Net {
					removed[i] = true
				}
			}
		}
	}
	// Seed the dirty set with everything the edited run cannot replay
	// verbatim: removed connections' recorded metal (their space is
	// newly free) and the mutation extents of every turn that was not
	// clean (rip-ups, put-backs, failures, escalation — history the
	// memos do not describe). Surviving memos transfer by index:
	// EditConns keeps indices stable.
	for i, m := range r.memos {
		if m == nil {
			// No memo: the connection's last turn was not clean (or it
			// was trivial/unrouted); whatever metal it left is already in
			// r.churn, which seeds the dirty set below.
			continue
		}
		if removed[i] {
			rp.addDirty(m.metal)
			continue
		}
		nr.memos[i] = m
	}
	for _, rect := range r.churn {
		rp.addDirty(rect)
	}
	nr.replay = rp
	return nr, nil
}
