package core

import (
	"testing"

	"repro/internal/board"
	"repro/internal/geom"
	"repro/internal/layer"
	"repro/internal/obs"
)

// wallOff rings grid point c with permanent keepout on every layer so no
// trace can reach the cell beside it.
func wallOff(tb testing.TB, b *board.Board, c geom.Point) {
	tb.Helper()
	for li := range b.Layers {
		o := b.Layers[li].Orient
		for dx := -2; dx <= 2; dx++ {
			for dy := -2; dy <= 2; dy++ {
				if dx == 0 && dy == 0 {
					continue
				}
				p := c.Add(geom.Pt(dx, dy))
				ch, pos := b.Cfg.ChanPos(o, p)
				b.AddSegment(li, ch, pos, pos, layer.KeepoutOwner)
			}
		}
	}
}

// TestLeeSteadyStateAllocs pins down the zero-allocation property of the
// scratch-backed engine: once the scratch's dense store, heaps and maps
// have grown to the search's working size, a full Lee flood must not
// allocate per expanded node. The board walls off the target with
// permanent keepout so the wavefront exhausts the whole board and the
// search fails without mutating any channel — every run after the first
// is a bit-identical steady-state replay.
//
// The "instrumented" variant runs the identical flood with an
// obs.Registry armed and holds it to the same allocation budget: phase
// timing is two clock reads bracketing the search, and metric flushing
// happens outside it, so observability must be free on the hot path.
// The "tracked" variant floods with read-region tracking armed, exactly
// as a concurrent worker's speculative attempt runs: tracking is pure
// interval arithmetic into preallocated fields, so it must fit the same
// budget. The "goal" variant floods under EngineGoal: the lower-bound
// index is consulted on every via candidate, so its query path — ensure,
// the prefix counts, the radius window — must be allocation-free too.
func TestLeeSteadyStateAllocs(t *testing.T) {
	t.Run("bare", func(t *testing.T) { leeSteadyStateAllocs(t, nil, false, EngineClassic) })
	t.Run("instrumented", func(t *testing.T) { leeSteadyStateAllocs(t, obs.NewRegistry(), false, EngineClassic) })
	t.Run("tracked", func(t *testing.T) { leeSteadyStateAllocs(t, nil, true, EngineClassic) })
	t.Run("goal", func(t *testing.T) { leeSteadyStateAllocs(t, nil, false, EngineGoal) })
}

func leeSteadyStateAllocs(t *testing.T, reg *obs.Registry, tracked bool, engine Engine) {
	b := emptyBoard(t, 40, 40, 2)
	a := pinAt(t, b, geom.Pt(2, 2))
	c := pinAt(t, b, geom.Pt(35, 35))
	wallOff(t, b, c)
	opts := DefaultOptions()
	opts.Bidirectional = false // one wavefront floods the entire board
	opts.CostCapFactor = 0     // never abandon early
	opts.Escalate = false
	opts.Metrics = reg
	opts.Engine = engine
	r := mustRouter(t, b, []Connection{{A: a, B: c}}, opts)
	id := r.connID(0)
	var region readRegion
	if tracked {
		r.search.TrackReads(true)
		region = readRegion{cells: emptyRect(), vias: emptyRect()}
		r.track = &region
	}

	// Warm up: the first flood grows the heap backing arrays and map
	// buckets to their high-water marks.
	if _, _, ok := r.leePts(a, c, id); ok {
		t.Fatal("route through a solid wall — the wall helper is broken")
	}
	before := r.Metrics().LeeExpansions
	if _, _, ok := r.leePts(a, c, id); ok {
		t.Fatal("route through a solid wall")
	}
	perRun := r.Metrics().LeeExpansions - before
	if perRun < 500 {
		t.Fatalf("only %d expansions per flood; the board is too small to measure steady state", perRun)
	}

	allocs := testing.AllocsPerRun(5, func() {
		r.leePts(a, c, id)
	})
	// A handful of fixed per-search allocations are tolerable; anything
	// scaling with the ~thousands of expanded nodes is a regression.
	if allocs > 8 {
		t.Errorf("leePts allocated %.0f objects per flood (%d expansions); want O(1), got %.4f allocs/expansion",
			allocs, perRun, allocs/float64(perRun))
	}
	if reg != nil {
		// The instrumented flood must also have timed itself: every
		// leePts call lands one Lee-phase observation.
		h := reg.Histogram(`grr_router_phase_seconds{phase="lee"}`, obs.DurationBuckets())
		if h.Count() < 7 { // 2 hand runs + 1 AllocsPerRun warm-up + 5 measured
			t.Errorf("lee phase histogram recorded %d observations, want >= 7", h.Count())
		}
	}
	t.Logf("%d expansions, %.0f allocs per flood (%.5f allocs/expansion)", perRun, allocs, allocs/float64(perRun))
}

// TestPickSideExhaustedNamesWalledSource covers the pickSide exhaustion
// path of the bidirectional search: when one wavefront cannot grow at
// all, the search must fail naming that wavefront's own source as the
// rip-up victim (hasBest is false, so victim falls back to sources[side])
// rather than some point on the healthy frontier.
func TestPickSideExhaustedNamesWalledSource(t *testing.T) {
	b := emptyBoard(t, 20, 20, 2)
	a := pinAt(t, b, geom.Pt(2, 2))
	c := pinAt(t, b, geom.Pt(15, 15))
	wallOff(t, b, c)
	opts := DefaultOptions()
	opts.Bidirectional = true
	r := mustRouter(t, b, []Connection{{A: a, B: c}}, opts)

	_, victim, ok := r.leePts(a, c, r.connID(0))
	if ok {
		t.Fatal("routed through a solid wall")
	}
	if victim != c {
		t.Errorf("rip-up victim = %v, want the walled source %v", victim, c)
	}
}
