package core

import (
	"strings"
	"testing"

	"repro/internal/board"

	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/layer"
)

// routeAcross builds a small open board with one straight connection and
// routes it, returning the board and router with the connection realized.
func routeAcross(t *testing.T) (*board.Board, *Router) {
	t.Helper()
	b := emptyBoard(t, 12, 12, 2)
	a := pinAt(t, b, geom.Pt(1, 5))
	c := pinAt(t, b, geom.Pt(9, 5))
	r := mustRouter(t, b, []Connection{{A: a, B: c}}, DefaultOptions())
	if res := r.Route(); !res.Complete() {
		t.Fatalf("setup route failed: %+v", res.Metrics)
	}
	return b, r
}

// TestPutBackReRoutesDeniedVictim rips up a routed connection, then
// denies exactly the first reinsertion attempt with a fault injector:
// putBack must fall through to routeLadder and re-route the victim fresh
// (ReRouted counted, board audit clean).
func TestPutBackReRoutesDeniedVictim(t *testing.T) {
	b, r := routeAcross(t)

	r.ripUp(0)
	if r.RouteOf(0).Method != NotRouted {
		t.Fatal("ripUp left the route realized")
	}

	inj := faultinject.FirstN(1, 0)
	b.Interpose(inj)
	r.putBack([]int{0})
	b.Interpose(nil)

	if inj.Injected() == 0 {
		t.Fatal("injector never fired; the test exercised nothing")
	}
	if got := r.metrics.ReRouted; got != 1 {
		t.Errorf("ReRouted = %d, want 1", got)
	}
	if got := r.metrics.PutBacks; got != 0 {
		t.Errorf("PutBacks = %d, want 0 (reinsertion was denied)", got)
	}
	if m := r.RouteOf(0).Method; m == NotRouted || m == PutBack {
		t.Errorf("method = %v, want a fresh ladder route", m)
	}
	if err := b.Audit(); err != nil {
		t.Errorf("board inconsistent after denied put-back: %v", err)
	}
	if err := r.auditRoutes("test"); err != nil {
		t.Errorf("route ownership broken: %v", err)
	}
}

// TestPutBackLeavesUnroutableVictimFailed denies every mutation during
// put-back: reinsertion and the routeLadder retry both fail, so the
// victim must stay NotRouted — cleanly, with nothing half-placed.
func TestPutBackLeavesUnroutableVictimFailed(t *testing.T) {
	b, r := routeAcross(t)

	r.ripUp(0)
	inj := faultinject.EveryNth(1, 1) // veto everything
	b.Interpose(inj)
	r.putBack([]int{0})
	b.Interpose(nil)

	if inj.Injected() == 0 {
		t.Fatal("injector never fired")
	}
	if m := r.RouteOf(0).Method; m != NotRouted {
		t.Errorf("method = %v, want unrouted when every placement is denied", m)
	}
	if got := r.metrics.ReRouted; got != 1 {
		t.Errorf("ReRouted = %d, want 1", got)
	}
	if err := b.Audit(); err != nil {
		t.Errorf("board inconsistent: %v", err)
	}
	if err := r.auditRoutes("test"); err != nil {
		t.Errorf("route ownership broken: %v", err)
	}
}

// TestEscalateRescuesRadiusBoundConnection drives the escalation phase:
// every free via site is blocked with keepout metal, so the only possible
// realization is a single zero-via trace — and the pins sit 2 via units
// apart vertically, one more than Radius 1 allows. The normal passes must
// fail (keepouts are unrippable: FailNoVictims), and only escalation,
// which widens the radius stage by stage, can complete the route.
func TestEscalateRescuesRadiusBoundConnection(t *testing.T) {
	build := func(escalate bool) (*Router, Result) {
		b := emptyBoard(t, 14, 14, 2)
		a := pinAt(t, b, geom.Pt(2, 4))
		c := pinAt(t, b, geom.Pt(10, 6))
		vert := 0
		if b.Layers[1].Orient == grid.Vertical {
			vert = 1
		}
		for vx := 0; vx < 14; vx++ {
			for vy := 0; vy < 14; vy++ {
				p := b.Cfg.GridOf(geom.Pt(vx, vy))
				if !b.ViaFree(p) {
					continue // pin sites stay as they are
				}
				ch, pos := b.Cfg.ChanPos(b.Layers[vert].Orient, p)
				if b.AddSegment(vert, ch, pos, pos, layer.KeepoutOwner) == nil {
					t.Fatal("via-block setup failed")
				}
			}
		}
		opts := DefaultOptions()
		opts.Escalate = escalate
		r := mustRouter(t, b, []Connection{{A: a, B: c}}, opts)
		res := r.Route()
		if err := b.Audit(); err != nil {
			t.Fatalf("board inconsistent (escalate=%v): %v", escalate, err)
		}
		return r, res
	}

	// Without escalation the radius bound must be fatal — otherwise the
	// escalating variant below proves nothing.
	_, res := build(false)
	if res.Complete() {
		t.Fatal("radius 1 no longer blocks this geometry; escalate test needs a tighter setup")
	}
	if res.Metrics.FailNoVictims == 0 {
		t.Errorf("expected FailNoVictims (keepouts are unrippable): %+v", res.Metrics)
	}
	r, res := build(true)
	if !res.Complete() {
		t.Fatalf("escalation failed to rescue the connection: %+v", res.Metrics)
	}
	if got := r.RouteOf(0).Method; got != ZeroVia {
		t.Errorf("method = %v, want zerovia found by the widened radius", got)
	}
}

// TestEveryNthFaultDrivesRollback routes the congested buildDense board
// while every 7th AddSegment is vetoed. The router sees the vetoes as
// collisions and takes its rollback/rip-up/put-back/re-route paths; the
// acceptance bar is that whatever happens, the final board passes a full
// audit and every surviving route still owns its metal.
func TestEveryNthFaultDrivesRollback(t *testing.T) {
	b, r := buildDenseRouter(t)
	inj := faultinject.EveryNth(7, 0)
	b.Interpose(inj)
	res := r.Route()
	b.Interpose(nil)

	if inj.Injected() == 0 {
		t.Fatal("schedule never fired on a dense board; test is vacuous")
	}
	if err := b.Audit(); err != nil {
		t.Errorf("board audit failed after fault-injected run: %v", err)
	}
	if err := r.auditRoutes("fault-injected run"); err != nil {
		t.Errorf("route ownership audit failed: %v", err)
	}
	// Faults only remove capacity, never add it: some connections may
	// fail, but the run itself must terminate normally.
	if res.Aborted != AbortNone {
		t.Errorf("fault injection aborted the run: %v", res.Aborted)
	}
	t.Logf("injected %d faults; routed %d/%d, rip-ups %d, re-routed %d",
		inj.Injected(), res.Metrics.Routed, res.Metrics.Connections,
		res.Metrics.RipUps, res.Metrics.ReRouted)
}

// TestSeededViaFaultsKeepBoardConsistent is the via-flavored companion:
// a seeded Bernoulli schedule denies half of all via placements on a
// board of diagonal connections that each need a layer change. The
// schedule is deterministic (seeded), so the assertion that faults fired
// is stable.
func TestSeededViaFaultsKeepBoardConsistent(t *testing.T) {
	b := emptyBoard(t, 12, 12, 2)
	var conns []Connection
	// dy = 2 via units with Radius 1: no zero-via solution exists, so
	// every connection must drill at least one via.
	for i := 0; i < 5; i++ {
		a := pinAt(t, b, geom.Pt(1, 2*i+1))
		c := pinAt(t, b, geom.Pt(9, 2*i+3))
		conns = append(conns, Connection{A: a, B: c})
	}
	r := mustRouter(t, b, conns, DefaultOptions())

	inj := faultinject.Seeded(42, 0, 0.5)
	b.Interpose(inj)
	res := r.Route()
	b.Interpose(nil)

	if inj.Injected() == 0 {
		t.Fatal("seeded schedule fired no via faults; test is vacuous")
	}
	if _, vias := inj.Calls(); vias == 0 {
		t.Fatal("no via placements intercepted — geometry no longer forces vias")
	}
	if err := b.Audit(); err != nil {
		t.Errorf("board audit failed: %v", err)
	}
	if err := r.auditRoutes("seeded via faults"); err != nil {
		t.Errorf("route ownership audit failed: %v", err)
	}
	t.Logf("vetoed %d of %d via attempts; routed %d/%d",
		inj.Injected(), func() int { _, v := inj.Calls(); return v }(),
		res.Metrics.Routed, res.Metrics.Connections)
}

// TestParanoidCatchesExternalCorruption removes a routed segment behind
// the router's back and asserts auditRoutes reports it, naming the
// connection; the clean board before the sabotage must audit green.
func TestParanoidCatchesExternalCorruption(t *testing.T) {
	b, r := routeAcross(t)

	if err := r.auditRoutes("clean"); err != nil {
		t.Fatalf("audit of an intact route failed: %v", err)
	}

	rt := r.RouteOf(0)
	if len(rt.Segs) == 0 {
		t.Fatal("routed connection has no segments to sabotage")
	}
	s := rt.Segs[0]
	b.RemoveSegment(s.Layer, s.Seg)

	err := r.auditRoutes("sabotage")
	if err == nil {
		t.Fatal("audit missed a segment removed behind the router's back")
	}
	if !strings.Contains(err.Error(), "connection 0") {
		t.Errorf("audit error does not name the connection: %v", err)
	}
}

// TestParanoidRunStaysClean routes the dense board with Paranoid on: all
// the between-pass audits must pass and the result must carry no
// invariant error — paranoia on a healthy router is free of false alarms.
func TestParanoidRunStaysClean(t *testing.T) {
	b, r := buildDenseRouter(t)
	r.Opts.Paranoid = true
	res := r.Route()
	if res.Aborted == AbortInvariant || res.Invariant != nil {
		t.Fatalf("paranoid audit false alarm: %v", res.Invariant)
	}
	if err := b.Audit(); err != nil {
		t.Error(err)
	}
}
