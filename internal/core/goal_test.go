package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/verify"
)

// goalOptions is DefaultOptions with the goal-oriented engine selected.
func goalOptions() core.Options {
	o := core.DefaultOptions()
	o.Engine = core.EngineGoal
	return o
}

// TestGoalEngineDeterministic: the goal engine inherits the classic
// engine's determinism contract — two fresh runs of the same problem
// produce bit-identical boards. The heap tie-break is the load-bearing
// part: f-cost ties (which the admissible heuristic makes far more
// common than raw-cost ties) must pop in insertion (seq) order, pinned
// by the leeHeap fuzz in heap_test.go; this test pins the end-to-end
// consequence.
func TestGoalEngineDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		b1, r1, res1 := buildSmall(t, seed, goalOptions())
		b2, r2, res2 := buildSmall(t, seed, goalOptions())
		if !res1.Complete() {
			t.Errorf("seed %d: goal engine failed %d connections: %v", seed, len(res1.FailedConns), res1.FailedConns)
		}
		if err := verify.Routed(b1, r1); err != nil {
			t.Errorf("seed %d: verification failed: %v", seed, err)
		}
		if res1.String() != res2.String() {
			t.Errorf("seed %d: results differ:\n%s\n%s", seed, res1, res2)
		}
		if f1, f2 := b1.Fingerprint(), b2.Fingerprint(); f1 != f2 {
			t.Errorf("seed %d: fingerprints differ: %016x vs %016x", seed, f1, f2)
		}
		for i := range r1.Conns {
			if m1, m2 := r1.RouteOf(i).Method, r2.RouteOf(i).Method; m1 != m2 {
				t.Fatalf("seed %d conn %d: methods differ: %v vs %v", seed, i, m1, m2)
			}
		}
	}
}

// TestGoalEngineParallelMatchesSerial: the deterministic merge order of
// the concurrent router must hold under the goal engine too — workers
// searching with lower bounds built against their shadow boards still
// commit in the serial order, so the final board is bit-identical to a
// one-worker run.
func TestGoalEngineParallelMatchesSerial(t *testing.T) {
	serial := goalOptions()
	par := goalOptions()
	par.Workers = 4
	for seed := int64(3); seed <= 5; seed++ {
		b1, _, res1 := buildSmall(t, seed, serial)
		b2, _, res2 := buildSmall(t, seed, par)
		if f1, f2 := b1.Fingerprint(), b2.Fingerprint(); f1 != f2 {
			t.Errorf("seed %d: parallel goal run diverged from serial: %016x vs %016x", seed, f1, f2)
		}
		if res1.Metrics.Routed != res2.Metrics.Routed {
			t.Errorf("seed %d: routed %d serial vs %d parallel", seed, res1.Metrics.Routed, res2.Metrics.Routed)
		}
	}
}

// TestClassicEngineUntouchedByGoalCode: selecting the classic engine is
// bit-identical to the pre-engine default — the Engine knob's zero
// value IS classic, so merely building the goal machinery must not
// perturb a classic run. (The cross-revision guarantee is carried by
// the fingerprints in testdata-free form: two in-process runs with the
// zero options value and an explicit EngineClassic.)
func TestClassicEngineUntouchedByGoalCode(t *testing.T) {
	explicit := core.DefaultOptions()
	explicit.Engine = core.EngineClassic
	b1, _, res1 := buildSmall(t, 7, core.DefaultOptions())
	b2, _, res2 := buildSmall(t, 7, explicit)
	if b1.Fingerprint() != b2.Fingerprint() || res1.String() != res2.String() {
		t.Errorf("explicit EngineClassic differs from the default:\n%s\n%s", res1, res2)
	}
}
