package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/layer"
)

// TestLBIndexMatchesFreshScan fuzzes the incremental maintenance of the
// lower-bound index against from-scratch rebuilds: after any random
// interleaving of segment adds and removes, the hook-maintained
// occupancy counts, the full-channel hash and every needsVia answer
// must match an index built by scanning the board fresh. This is the
// property that lets a goal-engine search trust a bound that has lived
// through thousands of mutations.
func TestLBIndexMatchesFreshScan(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	b := emptyBoard(t, 20, 20, 2)
	x := newLBIndex(b)
	x.ensure()

	type placed struct {
		li int
		s  *layer.Segment
	}
	var segs []placed
	checks := 0
	for step := 0; step < 4000; step++ {
		if len(segs) == 0 || rng.Intn(3) != 0 {
			li := rng.Intn(b.NumLayers())
			nch := b.Layers[li].NumChannels()
			clen := b.Layers[li].ChannelLength()
			ch := rng.Intn(nch)
			lo := rng.Intn(clen)
			hi := lo + rng.Intn(clen-lo)
			if s := b.AddSegment(li, ch, lo, hi, layer.KeepoutOwner); s != nil {
				segs = append(segs, placed{li, s})
			}
		} else {
			i := rng.Intn(len(segs))
			b.RemoveSegment(segs[i].li, segs[i].s)
			segs[i] = segs[len(segs)-1]
			segs = segs[:len(segs)-1]
		}
		if step%89 != 0 {
			continue
		}
		checks++
		fresh := &lbIndex{b: b}
		fresh.build()
		x.ensure()
		for li := range x.layers {
			for c := range x.layers[li].used {
				if x.layers[li].used[c] != fresh.layers[li].used[c] {
					t.Fatalf("step %d: layer %d channel %d: incremental count %d, fresh scan %d",
						step, li, c, x.layers[li].used[c], fresh.layers[li].used[c])
				}
			}
		}
		if xh, fh := x.fullHash(), fresh.fullHash(); xh != fh {
			t.Fatalf("step %d: congestion hash diverged: incremental %016x, fresh %016x", step, xh, fh)
		}
		bounds := b.Cfg.Bounds()
		for q := 0; q < 25; q++ {
			n := geom.Pt(bounds.MinX+rng.Intn(bounds.MaxX-bounds.MinX+1), bounds.MinY+rng.Intn(bounds.MaxY-bounds.MinY+1))
			tp := geom.Pt(bounds.MinX+rng.Intn(bounds.MaxX-bounds.MinX+1), bounds.MinY+rng.Intn(bounds.MaxY-bounds.MinY+1))
			radius := 1 + rng.Intn(3)
			if got, want := x.needsVia(n, tp, radius), fresh.needsVia(n, tp, radius); got != want {
				t.Fatalf("step %d: needsVia(%v, %v, %d) = %v incrementally, %v from a fresh scan",
					step, n, tp, radius, got, want)
			}
		}
	}
	if checks < 10 {
		t.Fatalf("only %d cross-checks ran; the fuzz loop is miswired", checks)
	}
}

// TestLBIndexRebuildsOnMissedMutation: the mutation-counter cross-check
// is the safety net that keeps a stale bound from ever mis-ordering a
// search — any revision the hook did not account for must force a full
// rebuild on the next query.
func TestLBIndexRebuildsOnMissedMutation(t *testing.T) {
	b := emptyBoard(t, 10, 10, 2)
	x := newLBIndex(b)
	x.ensure()
	builds := x.builds

	x.ensure()
	if x.builds != builds {
		t.Fatalf("in-sync ensure rebuilt the index (%d -> %d builds)", builds, x.builds)
	}

	// Simulate a mutation that bypassed the hook: the board's revision
	// counter and the index's disagree.
	x.seq--
	x.ensure()
	if x.builds != builds+1 {
		t.Fatalf("missed mutation did not force a rebuild (%d -> %d builds)", builds, x.builds)
	}
	if x.seq != b.Mutations() {
		t.Fatalf("rebuild left the index at revision %d, board at %d", x.seq, b.Mutations())
	}
}

// TestLBIndexHashTracksCongestion: the full-channel hash — the part of
// the index goal-engine memos record — must change exactly when the
// congestion picture changes, and return to its old value when the
// picture is restored.
func TestLBIndexHashTracksCongestion(t *testing.T) {
	b := emptyBoard(t, 10, 10, 2)
	x := newLBIndex(b)
	h0 := x.fullHash()

	clen := b.Layers[0].ChannelLength()
	s := b.AddSegment(0, 3, 0, clen-1, layer.KeepoutOwner)
	if s == nil {
		t.Fatal("could not fill channel 3")
	}
	h1 := x.fullHash()
	if h1 == h0 {
		t.Fatal("filling a channel did not change the congestion hash")
	}

	// A partial segment elsewhere leaves the full-channel picture alone.
	s2 := b.AddSegment(1, 5, 2, 4, layer.KeepoutOwner)
	if s2 == nil {
		t.Fatal("could not place partial segment")
	}
	if x.fullHash() != h1 {
		t.Fatal("a non-full channel changed the congestion hash")
	}

	b.RemoveSegment(1, s2)
	b.RemoveSegment(0, s)
	if x.fullHash() != h0 {
		t.Fatal("restoring the board did not restore the congestion hash")
	}
}
