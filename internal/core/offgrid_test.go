package core

import (
	"testing"

	"repro/internal/geom"
)

// These tests cover the Section 11 extension: connection endpoints at
// arbitrary grid points rather than via sites only.

func TestOffGridEndpointsRejectedByDefault(t *testing.T) {
	b := emptyBoard(t, 10, 10, 2)
	p := geom.Pt(4, 4) // not a via site (pitch 3)
	if err := b.PlacePinOffGrid(p); err != nil {
		t.Fatal(err)
	}
	q := pinAt(t, b, geom.Pt(7, 7))
	if _, err := New(b, []Connection{{A: p, B: q}}, DefaultOptions()); err == nil {
		t.Fatal("off-grid endpoint accepted without AllowOffGrid")
	}
}

func TestOffGridStraight(t *testing.T) {
	b := emptyBoard(t, 10, 10, 2)
	a, c := geom.Pt(4, 13), geom.Pt(22, 13) // same row, both off the via grid
	if err := b.PlacePinOffGrid(a); err != nil {
		t.Fatal(err)
	}
	if err := b.PlacePinOffGrid(c); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.AllowOffGrid = true
	r := mustRouter(t, b, []Connection{{A: a, B: c}}, opts)
	res := r.Route()
	if !res.Complete() {
		t.Fatalf("off-grid straight route failed: %+v", res.Metrics)
	}
	if r.RouteOf(0).Method != ZeroVia {
		t.Errorf("method = %v, want zerovia", r.RouteOf(0).Method)
	}
}

func TestOffGridLShape(t *testing.T) {
	b := emptyBoard(t, 12, 12, 2)
	a, c := geom.Pt(4, 4), geom.Pt(25, 26) // both off-grid, diagonal
	if err := b.PlacePinOffGrid(a); err != nil {
		t.Fatal(err)
	}
	if err := b.PlacePinOffGrid(c); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.AllowOffGrid = true
	r := mustRouter(t, b, []Connection{{A: a, B: c}}, opts)
	res := r.Route()
	if !res.Complete() {
		t.Fatalf("off-grid L route failed: %+v", res.Metrics)
	}
	// Any intermediate vias must sit on the via grid even though the
	// endpoints do not.
	for _, pv := range r.RouteOf(0).Vias {
		if !b.Cfg.IsViaSite(pv.At) {
			t.Errorf("intermediate via %v is off the via grid", pv.At)
		}
	}
}

func TestOffGridMixedWithOnGrid(t *testing.T) {
	b := emptyBoard(t, 14, 14, 2)
	off := geom.Pt(7, 8) // off-grid
	if err := b.PlacePinOffGrid(off); err != nil {
		t.Fatal(err)
	}
	on := pinAt(t, b, geom.Pt(10, 10))
	opts := DefaultOptions()
	opts.AllowOffGrid = true
	r := mustRouter(t, b, []Connection{{A: off, B: on}}, opts)
	if res := r.Route(); !res.Complete() {
		t.Fatalf("mixed on/off-grid route failed: %+v", res.Metrics)
	}
}

func TestOffGridManyConnectionsNoOverlap(t *testing.T) {
	b := emptyBoard(t, 20, 12, 2)
	opts := DefaultOptions()
	opts.AllowOffGrid = true
	var conns []Connection
	for i := 0; i < 5; i++ {
		a := geom.Pt(4, 4+5*i)
		c := geom.Pt(50, 5+5*i)
		if err := b.PlacePinOffGrid(a); err != nil {
			t.Fatal(err)
		}
		if err := b.PlacePinOffGrid(c); err != nil {
			t.Fatal(err)
		}
		conns = append(conns, Connection{A: a, B: c})
	}
	r := mustRouter(t, b, conns, opts)
	res := r.Route()
	if !res.Complete() {
		t.Fatalf("off-grid bundle failed: %v", res.FailedConns)
	}
	if err := b.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestPlacePinOffGridOnGridPointDelegates(t *testing.T) {
	b := emptyBoard(t, 8, 8, 2)
	if err := b.PlacePinOffGrid(geom.Pt(6, 6)); err != nil {
		t.Fatal(err)
	}
	if len(b.OffGridHoles) != 0 {
		t.Error("on-grid point recorded as off-grid hole")
	}
	if err := b.PlacePinOffGrid(geom.Pt(5, 5)); err != nil {
		t.Fatal(err)
	}
	if len(b.OffGridHoles) != 1 {
		t.Error("off-grid hole not recorded")
	}
}
