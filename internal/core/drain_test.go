package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/layer"
)

// TestContextDeadlineReportsAbortTime: a context deadline propagates
// into the router's time-budget machinery, so an expired deadline stops
// the run with AbortTime — the specific reason — not a bare
// AbortCancelled, even though the context's Done channel fires too.
func TestContextDeadlineReportsAbortTime(t *testing.T) {
	b := emptyBoard(t, 12, 12, 2)
	a := pinAt(t, b, geom.Pt(1, 5))
	c := pinAt(t, b, geom.Pt(9, 5))
	r := mustRouter(t, b, []Connection{{A: a, B: c}}, DefaultOptions())

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res := r.RouteContext(ctx)
	if res.Aborted != AbortTime {
		t.Fatalf("Aborted = %v, want %v", res.Aborted, AbortTime)
	}
	if err := b.Audit(); err != nil {
		t.Errorf("board inconsistent after deadline abort: %v", err)
	}
}

// stallOnNth implements board.Interposer: the nth AddSegment attempt
// (vetoing nothing) stalls past the given deadline, so a test can burn a
// run's time budget at a deterministic point mid-pass and watch the next
// connection boundary abort it. Unlike a goroutine-delivered cancel,
// the deadline check is synchronous, so the abort is guaranteed.
type stallOnNth struct {
	n        int
	calls    int
	deadline time.Time
}

func (c *stallOnNth) AllowAddSegment(li, ch, lo, hi int, owner layer.ConnID) bool {
	if owner.Permanent() {
		return true
	}
	c.calls++
	if c.calls == c.n {
		for !time.Now().After(c.deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	return true
}

func (c *stallOnNth) AllowPlaceVia(p geom.Point, owner layer.ConnID) bool { return true }

// TestFinalCheckpointOnAbort: with a coarse checkpoint cadence, an
// aborted run must still flush one final checkpoint at the abort
// cursor, so a drained or timed-out job resumes from the exact
// connection it stopped at instead of replaying up to CheckpointEvery-1
// attempts of committed work.
func TestFinalCheckpointOnAbort(t *testing.T) {
	b := emptyBoard(t, 20, 20, 2)
	var conns []Connection
	for i := 0; i < 4; i++ {
		a := pinAt(t, b, geom.Pt(1, 1+2*i))
		c := pinAt(t, b, geom.Pt(17, 1+2*i))
		conns = append(conns, Connection{A: a, B: c})
	}

	opts := DefaultOptions()
	opts.Sort = false
	// Cadence far beyond the attempt count: without the final flush no
	// checkpoint would ever be emitted.
	opts.CheckpointEvery = 1000
	var last *Checkpoint
	opts.CheckpointSink = func(cp *Checkpoint) error { last = cp; return nil }

	// Burn the whole time budget during the second connection's
	// placement; the run aborts at the next boundary, with one or two
	// connections already committed.
	opts.TimeBudget = 20 * time.Millisecond
	b.Interpose(&stallOnNth{n: 2, deadline: time.Now().Add(40 * time.Millisecond)})

	r := mustRouter(t, b, conns, opts)
	res := r.Route()
	if res.Aborted != AbortTime {
		t.Fatalf("Aborted = %v, want %v", res.Aborted, AbortTime)
	}
	if res.Metrics.Routed == 0 {
		t.Fatal("degenerate test: nothing routed before the cancel")
	}
	if last == nil {
		t.Fatal("cancelled run emitted no final checkpoint")
	}
	if len(last.Routes) != len(conns) {
		t.Fatalf("final checkpoint holds %d routes for %d connections", len(last.Routes), len(conns))
	}
	realized := 0
	for _, cr := range last.Routes {
		if cr.Method != NotRouted {
			realized++
		}
	}
	if realized == 0 {
		t.Error("final checkpoint records no committed work")
	}
	if err := b.Audit(); err != nil {
		t.Errorf("board inconsistent after cancelled run: %v", err)
	}

	// The flushed checkpoint must resume: replant it on a fresh board
	// and finish the route.
	b2 := emptyBoard(t, 20, 20, 2)
	var conns2 []Connection
	for i := 0; i < 4; i++ {
		a := pinAt(t, b2, geom.Pt(1, 1+2*i))
		c := pinAt(t, b2, geom.Pt(17, 1+2*i))
		conns2 = append(conns2, Connection{A: a, B: c})
	}
	opts2 := DefaultOptions()
	opts2.Sort = false
	r2, err := Resume(b2, conns2, opts2, last)
	if err != nil {
		t.Fatalf("final checkpoint does not resume: %v", err)
	}
	res2 := r2.Route()
	if !res2.Complete() {
		t.Fatalf("resumed run incomplete: %v", res2)
	}
}
