// Package core implements grr, the greedy printed circuit board router of
// the paper (Sections 5–8). It routes a list of pin-to-pin connections on
// a board.Board by applying strategies of increasing desperation to each
// connection:
//
//  1. connection sorting, so the easiest connections are attempted first
//     (Section 6);
//  2. optimal zero-via and one-via solutions under the radius parameter
//     (Section 8.1);
//  3. a generalized Lee's algorithm whose neighbors are via sites
//     reachable in one single-layer hop, searched bidirectionally under a
//     cost function (Section 8.2);
//  4. ripping up the connections blocking the most-progressed wavefront
//     point, then putting the victims back after the new connection is in
//     (Section 8.3).
//
// The outer loop (Section 8.4) makes passes over the connection list
// until everything is routed or a pass makes no progress, which is the
// symptom of an impossible problem.
package core

import (
	"fmt"
	"time"

	"repro/internal/board"
	"repro/internal/geom"
	"repro/internal/layer"
	"repro/internal/obs"
)

// Connection is one pin-to-pin connection produced by the stringer. Both
// endpoints must be pins already placed on the board (unit segments on
// every layer at via sites).
type Connection struct {
	A, B geom.Point // grid coordinates of the two pins
	Net  string     // owning net, for reporting only
	// Class tags the connection's technology ("ECL", "TTL", ...). The
	// router ignores it; the tiles package uses it to drive separated
	// routing passes.
	Class string
	// TargetDelayPs is the target delay in picoseconds for length-tuned
	// connections; zero means untuned. The router ignores it; the tuning
	// package uses it.
	TargetDelayPs float64
}

// Method records which strategy finally routed a connection.
type Method uint8

const (
	NotRouted Method = iota
	Trivial          // zero-length connection (both pins on one site)
	ZeroVia
	OneVia
	Lee
	PutBack // re-inserted unchanged after a rip-up
)

func (m Method) String() string {
	switch m {
	case Trivial:
		return "trivial"
	case ZeroVia:
		return "zerovia"
	case OneVia:
		return "onevia"
	case Lee:
		return "lee"
	case PutBack:
		return "putback"
	default:
		return "unrouted"
	}
}

// CostFn selects the Lee cost function of Section 8.2, modification 3.
type CostFn uint8

const (
	// CostDistTimesHops is the paper's production cost function:
	// distance(n, target) × hops(n, source). Each via in a path must buy
	// progress toward the target.
	CostDistTimesHops CostFn = iota
	// CostPlusOne reproduces original Lee behaviour, cost(n)=cost(p)+1:
	// minimum vias, breadth-first, slow.
	CostPlusOne
	// CostDistance is pure greed: distance(n, target) only; fast but
	// willing to spend many vias circumventing minor obstacles.
	CostDistance
)

func (c CostFn) String() string {
	switch c {
	case CostPlusOne:
		return "plus-one"
	case CostDistance:
		return "distance"
	default:
		return "dist*hops"
	}
}

// Engine selects the search engine driving the Lee flood.
type Engine uint8

const (
	// EngineClassic is the paper's wavefront, ordered by CostFn. The
	// default, bit-identical to every prior release.
	EngineClassic Engine = iota
	// EngineGoal orders the wavefront goal-oriented: accumulated path
	// cost plus an admissible, congestion-aware lower bound on the
	// remaining cost, read from the preprocessed per-layer structure of
	// lowerbound.go (DESIGN §15). It expands strictly fewer nodes than
	// classic on the Table 1 sweep; individual paths may differ, so it
	// is opt-in and algorithmic (resume refuses a snapshot taken under
	// the other engine).
	EngineGoal
)

func (e Engine) String() string {
	if e == EngineGoal {
		return "goal"
	}
	return "classic"
}

// Options tune the router. The zero value is not valid; use
// DefaultOptions.
type Options struct {
	// Radius bounds orthogonal movement on a layer, in via units
	// (Section 8.1). Typical values are 1 or 2; larger values reach more
	// vias but block more channels and are counterproductive.
	Radius int
	// Sort enables connection sorting (Section 6). Disabling it exists
	// for the E-SORT ablation.
	Sort bool
	// Cost selects the Lee cost function.
	Cost CostFn
	// Bidirectional spreads wavefronts from both ends (Section 8.2,
	// modification 2). Disabling it exists for the E-BIDIR ablation.
	Bidirectional bool
	// Engine selects the search engine ordering the Lee wavefront:
	// EngineClassic (the CostFn figure of merit, the default) or
	// EngineGoal (goal-oriented lower-bound priorities, DESIGN §15).
	// Algorithmic: it changes routed output, so resume refuses a
	// snapshot taken under a different engine.
	Engine Engine
	// RecordRegions makes the router remember, per connection, the
	// board region its successful search read and the mutation extents
	// of every turn — the state an incremental Reroute (incremental.go)
	// consumes after a design edit. Purely additive bookkeeping: routed
	// output is bit-identical with it on or off, at the cost of
	// read-extent tracking and one retained rectangle set per
	// connection.
	RecordRegions bool
	// MaxRipupRounds bounds how many rip-up/retry rounds a single
	// connection may trigger before it is declared failed for this pass.
	MaxRipupRounds int
	// RipupRadius is the half-size, in via units, of the box around the
	// best wavefront point in which Obstructions selects victims.
	RipupRadius int
	// CostCapFactor abandons a Lee search once the cheapest wavefront
	// entry exceeds this multiple of the connection's Manhattan length
	// (plus a small absolute floor). Hopeless searches then fail fast
	// into rip-up instead of flooding the board, and successful paths
	// cannot wander arbitrarily. Zero disables the cap.
	CostCapFactor int
	// MaxPasses bounds the outer loop independently of the progress
	// test, as a safety net for pathological inputs.
	MaxPasses int
	// AllowOffGrid accepts connection endpoints at arbitrary grid
	// points instead of via sites only — Section 11's recommended
	// extension. Off-grid endpoints must still be plated-through pins
	// (board.PlacePinOffGrid); intermediate vias always stay on the via
	// grid.
	AllowOffGrid bool
	// IDBase offsets the segment-owner IDs of this router's connections.
	// Routing the same board in several passes (the ECL/TTL separation
	// of Section 10.2) needs distinct ID ranges per pass so rip-up never
	// confuses a previous pass's traces with its own.
	IDBase int
	// Escalate enables a final desperation phase: connections still
	// unrouted after the normal passes are retried with the radius
	// raised by one, the Lee cost cap removed and a doubled rip-up
	// budget. The handful of connections left at the end are local
	// congestion knots that the stronger (slower) settings usually
	// crack. Disabled for ablation runs that measure the plain
	// algorithm.
	Escalate bool
	// TimeBudget bounds the wall-clock time of the whole Route call.
	// When it expires the router stops at the next abort checkpoint —
	// between connections, or mid-Lee-search on a coarse expansion
	// stride — rolls back any in-flight placement, puts rip-up victims
	// back, and returns with Result.Aborted set to AbortTime. The board
	// is always left consistent. Zero means unlimited.
	TimeBudget time.Duration
	// NodeBudget caps the Lee expansions any single connection may
	// spend (summed over its rip-up rounds and retrace retries). A
	// connection that exhausts it fails for the pass — counted in
	// Metrics.FailNodeBudget — instead of flooding the board; routing
	// continues with the next connection. Zero means unlimited.
	NodeBudget int
	// Paranoid re-audits the board between passes: the full
	// board.Audit invariant sweep plus a cross-check that every routed
	// connection still owns the metal its Route records. The first
	// violation aborts routing with Result.Aborted = AbortInvariant and
	// an error naming the pass and connection. For debugging and
	// fault-injection tests; costs one board sweep per pass. Paranoid
	// also arms board.VerifyRollbacks, so every transaction rollback is
	// checked to restore a bit-identical board.
	Paranoid bool
	// CheckpointEvery, with CheckpointSink set, emits a Checkpoint after
	// every CheckpointEvery-th routing attempt, at a connection boundary
	// (never mid-placement: the router asserts no transaction is open).
	// Zero disables checkpointing; the routing fast path is then
	// untouched and bit-identical to a checkpoint-free build.
	CheckpointEvery int
	// CheckpointSink receives each emitted Checkpoint. An error aborts
	// the run with AbortCheckpoint — a router that was asked to be
	// resumable but cannot persist its progress should stop, not burn
	// hours of unrecoverable work. The sink is a function, not a path, so
	// core stays free of serialization concerns (boardio owns the codec).
	CheckpointSink func(*Checkpoint) error
	// Metrics, when set, receives live copies of the routing counters
	// plus per-phase wall-time histograms (obs.go): deltas are flushed
	// to the registry's atomic series at connection and pass
	// boundaries, never inside a search, so the hot path stays
	// allocation-free and the routed output bit-identical. Like
	// CheckpointSink this is runtime-only state: boardio snapshots do
	// not carry it, and a resumed router publishes only the work done
	// in its own process.
	Metrics *obs.Registry
	// Workers > 1 routes connections of one board on that many worker
	// goroutines under the optimistic-concurrency engine of DESIGN §11:
	// workers search speculatively against private board snapshots and a
	// single committer validates each result in connection order, so the
	// routed output — Fingerprint, Audit, metrics, checkpoints — is
	// bit-identical to a sequential run at any worker count. Workers is
	// operational, not algorithmic: it may be changed freely on resume.
	// Values <= 1 route sequentially on the calling goroutine.
	Workers int
}

// DefaultOptions returns the configuration used for all Table 1 runs.
func DefaultOptions() Options {
	return Options{
		Radius:         1,
		Sort:           true,
		Cost:           CostDistTimesHops,
		Bidirectional:  true,
		MaxRipupRounds: 24,
		RipupRadius:    2,
		CostCapFactor:  8,
		MaxPasses:      8,
		Escalate:       true,
	}
}

// ClampTimeBudget lowers TimeBudget to remaining when that is tighter
// (or when no budget was set at all). It is the last hop of the
// service layer's deadline propagation: a job admitted with an
// end-to-end deadline has, by the time a worker picks it up, only the
// remaining slice of it to spend, and the router's own budget/abort
// machinery (AbortTime) is what enforces the cut. remaining <= 0 is
// ignored — refusing an already-expired job is the caller's admission
// decision, not a routing option.
func (o *Options) ClampTimeBudget(remaining time.Duration) {
	if remaining <= 0 {
		return
	}
	if o.TimeBudget <= 0 || remaining < o.TimeBudget {
		o.TimeBudget = remaining
	}
}

// Metrics aggregates the counters behind Table 1 and the in-text claims.
type Metrics struct {
	Connections int
	Routed      int
	Failed      int

	ByMethod [PutBack + 1]int // indexed by Method

	RipUps        int // connections ripped up (Table 1 "rip ups")
	PutBacks      int // victims re-inserted unchanged
	ReRouted      int // victims that needed full re-routing
	ViasAdded     int // vias drilled (excludes pins)
	LeeExpansions int // wavefront points expanded
	LeeBlocked    int // Lee searches that exhausted a wavefront

	// Failure reasons (per failed routeOne attempt).
	FailNoVictims  int // blocked with nothing rippable nearby
	FailRounds     int // rip-up round limit exhausted
	FailNodeBudget int // Options.NodeBudget exhausted
	TraceCalls     int
	ViasCalls      int
	Passes         int
	WireLength     int // total grid cells of placed trace segments
}

// OptimalShare returns the fraction of routed connections completed by
// the optimal strategies (trivial, zero-via, one-via, put-back); the
// paper wants this around 90% for a feasible problem.
func (m Metrics) OptimalShare() float64 {
	if m.Routed == 0 {
		return 0
	}
	opt := m.ByMethod[Trivial] + m.ByMethod[ZeroVia] + m.ByMethod[OneVia] + m.ByMethod[PutBack]
	return float64(opt) / float64(m.Routed)
}

// LeeShare returns the fraction of routed connections that needed Lee's
// algorithm (Table 1 "% lee").
func (m Metrics) LeeShare() float64 {
	if m.Routed == 0 {
		return 0
	}
	return float64(m.ByMethod[Lee]) / float64(m.Routed)
}

// ViasPerConn returns drilled vias per routed connection (Table 1
// "vias").
func (m Metrics) ViasPerConn() float64 {
	if m.Routed == 0 {
		return 0
	}
	return float64(m.ViasAdded) / float64(m.Routed)
}

// Route is the materialized realization of one connection.
type Route struct {
	Method Method
	// Segs holds every trace segment placed for the connection, with its
	// layer index.
	Segs []PlacedSeg
	// Vias holds every via drilled for the connection.
	Vias []board.PlacedVia

	// tx is the open transaction journaling this route's placements while
	// it is still speculative. Committing the route (commit) seals it;
	// abandoning the route (rollback) undoes it. Always nil on a route
	// stored in Router.routes.
	tx *board.Tx
}

// PlacedSeg pairs a live channel segment with its layer.
type PlacedSeg struct {
	Layer int
	Seg   *layer.Segment
}

// AbortReason says why a Route call stopped before running the full
// algorithm. AbortNone means it ran to its natural end (which may still
// leave connections unrouted on an infeasible board).
type AbortReason uint8

const (
	AbortNone       AbortReason = iota
	AbortTime                   // Options.TimeBudget expired
	AbortCancelled              // the RouteContext context was cancelled
	AbortInvariant              // a Paranoid audit found a broken invariant
	AbortCheckpoint             // Options.CheckpointSink returned an error
)

func (a AbortReason) String() string {
	switch a {
	case AbortTime:
		return "time budget exhausted"
	case AbortCancelled:
		return "cancelled"
	case AbortInvariant:
		return "invariant violated"
	case AbortCheckpoint:
		return "checkpoint write failed"
	default:
		return "none"
	}
}

// Result reports the outcome of a Route call.
type Result struct {
	Metrics Metrics
	// FailedConns lists the indices (into the input slice) of
	// connections left unrouted.
	FailedConns []int
	// Aborted is non-zero when routing stopped early (budget exhausted,
	// context cancelled, paranoid audit failure). The metrics then
	// describe the partial run; every connection the router did place is
	// fully realized and the board is consistent.
	Aborted AbortReason
	// Invariant carries the detail of an AbortInvariant stop: which
	// pass's audit failed and on what.
	Invariant error
}

// Complete reports whether the run finished naturally with every
// connection routed. An aborted run is never complete, even if the
// abort arrived after the last connection.
func (r Result) Complete() bool { return len(r.FailedConns) == 0 && r.Aborted == AbortNone }

func (r Result) String() string {
	m := r.Metrics
	s := fmt.Sprintf("routed %d/%d (zerovia %d, onevia %d, lee %d, putback %d, trivial %d), ripups %d, vias %d, passes %d",
		m.Routed, m.Connections, m.ByMethod[ZeroVia], m.ByMethod[OneVia], m.ByMethod[Lee],
		m.ByMethod[PutBack], m.ByMethod[Trivial], m.RipUps, m.ViasAdded, m.Passes)
	if r.Aborted != AbortNone {
		s += ", aborted: " + r.Aborted.String()
	}
	return s
}
