// Intra-board concurrent routing (DESIGN §11): with Options.Workers > 1
// the router becomes an optimistic-concurrency engine over the board's
// mutation journal. N worker goroutines route connections speculatively,
// each against its own full board clone (a read snapshot kept in sync by
// replaying the committer's mutation log), journaling placements into a
// private Tx and reporting the journal records plus a conservative
// read-region summary. A single committer — the Route goroutine —
// consumes results in the deterministic connection order, never in
// completion order: a speculative success whose region no later-logged
// mutation touched is provably the route the sequential ladder would
// have found, and is adopted by replaying its records through a master
// transaction; everything else (speculation failures, region overlaps,
// replay collisions) falls back to the ordinary sequential routeOne at
// the connection's merge turn. Adoption is therefore an optimization
// only: the routed output — Fingerprint, Audit, metrics, checkpoints —
// is bit-identical to Workers <= 1 at every worker count, and the
// sequential path remains the oracle the tests compare against.
package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/board"
	"repro/internal/geom"
	"repro/internal/obs"
)

// specWindow bounds how far past the merge position workers may claim
// work, as a multiple of the worker count: enough lookahead to keep
// every worker busy, little enough that snapshots stay fresh and a
// no-progress pass does not speculate far beyond its cutoff.
const specWindow = 4

// emptyRect is the empty-region sentinel (geom.Rect's zero value is the
// single cell at the origin, not empty).
func emptyRect() geom.Rect { return geom.R(0, 0, -1, -1) }

// readRegion accumulates the board region one connection attempt reads
// and writes: cells covers channel-cell occupancy (searcher scans plus
// every cell the attempt tried to place metal on), vias covers via-map
// probe sites. Placements appear in both their own transaction's
// journal and cells, so region disjointness between an adopted result
// and every later-logged mutation means neither could have observed or
// blocked the other.
type readRegion struct {
	cells geom.Rect
	vias  geom.Rect
}

// trackRun notes that the current attempt read (and possibly wrote) the
// cells of channel ch spanning [lo, hi] on layer li.
func (r *Router) trackRun(li, ch, lo, hi int) {
	if r.track == nil {
		return
	}
	o := r.B.Layers[li].Orient
	rect := geom.Bounding(r.B.Cfg.PointAt(o, ch, lo), r.B.Cfg.PointAt(o, ch, hi))
	r.track.cells = r.track.cells.Union(rect)
}

// trackPt notes a via probe or drill at p: the via map at p and the
// cell p on every layer.
func (r *Router) trackPt(p geom.Point) {
	if r.track == nil {
		return
	}
	pr := geom.Bounding(p, p)
	r.track.cells = r.track.cells.Union(pr)
	r.track.vias = r.track.vias.Union(pr)
}

// workerRes is one speculative routing attempt's outcome.
type workerRes struct {
	ok      bool           // the no-rip-up ladder found a route
	method  Method         // ZeroVia, OneVia, Lee or Trivial when ok
	records []board.Record // the route's journal (placements only)
	cells   geom.Rect      // read/write region: channel cells
	vias    geom.Rect      // read region: via-map probe sites
	epoch   int            // commit-log length the snapshot included
	delta   Metrics        // search counters to merge on adoption
	dirty   bool           // set at merge time: region overlaps the log tail
}

// logEntry is one committed master-board mutation: the record workers
// replay onto their shadows and the grid rectangle it touched, against
// which the committer tests speculative read regions.
type logEntry struct {
	rec  board.Record
	rect geom.Rect
}

// conc is the shared scheduler state: the commit log, the claim/merge
// cursors of the current pass, and the per-position results. The mutex
// guards everything below it; the committer additionally reads log
// without the lock, which is safe because only the committer appends.
type conc struct {
	r      *Router
	window int

	mu        sync.Mutex
	cond      *sync.Cond
	log       []logEntry
	order     []int
	methods   []Method // scheduler's mirror of routes[].Method
	nextClaim int
	mergePos  int
	claimed   map[int]bool
	results   map[int]*workerRes
	stopped   bool

	wg      sync.WaitGroup
	workers []*specWorker
}

// specWorker is one speculation goroutine: a full Router over a board
// clone, tracking reads, plus the log prefix its shadow has applied.
type specWorker struct {
	c       *conc
	rt      *Router
	applied int
	region  readRegion
	busy    *obs.Gauge // nil without a registry
}

// newConc builds the scheduler, installs the commit-log hook on the
// master board, clones one shadow per worker and starts the goroutines.
func newConc(r *Router) *conc {
	n := r.Opts.Workers
	c := &conc{
		r:       r,
		window:  max(8, n*specWindow),
		order:   r.order,
		methods: make([]Method, len(r.Conns)),
		claimed: make(map[int]bool, 64),
		results: make(map[int]*workerRes, 64),
	}
	c.cond = sync.NewCond(&c.mu)
	for i := range r.routes {
		c.methods[i] = r.routes[i].Method
	}
	r.B.OnMutate(func(rec board.Record) {
		rect := r.B.RecordRect(rec)
		c.mu.Lock()
		c.log = append(c.log, logEntry{rec: rec, rect: rect})
		c.mu.Unlock()
	})
	var busy *obs.Gauge
	if r.obs != nil {
		busy = r.obs.workersBusy
	}
	for w := 0; w < n; w++ {
		sw := &specWorker{c: c, rt: newWorkerRouter(r), busy: busy}
		c.workers = append(c.workers, sw)
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			sw.loop()
		}()
	}
	return c
}

// newWorkerRouter builds a worker's private router: a clone of the
// master board, the same options minus everything operational
// (checkpointing, observability, paranoia — a worker rolls back every
// attempt, so per-rollback fingerprint verification would dominate its
// runtime), sharing the master's cancellation flag and deadline so a
// mid-search abort reaches workers too.
func newWorkerRouter(r *Router) *Router {
	opts := r.Opts
	opts.Workers = 0
	opts.Metrics = nil
	opts.CheckpointEvery, opts.CheckpointSink = 0, nil
	opts.Paranoid = false
	wr, err := New(r.B.Clone(), r.Conns, opts)
	if err != nil {
		// New validated these exact connections for the master already.
		panic(fmt.Sprintf("core: worker router construction failed: %v", err))
	}
	wr.abortArmed = true
	wr.deadline = r.deadline
	wr.cancelled = r.cancelled
	wr.search.TrackReads(true)
	return wr
}

// beginPass resets the claim/merge cursors for a pass starting at
// startPos and wakes the workers.
func (c *conc) beginPass(startPos int) {
	c.mu.Lock()
	c.nextClaim = startPos
	c.mergePos = startPos
	clear(c.claimed)
	clear(c.results)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// findClaim returns the next claimable order position, or -1: at or
// past the claim cursor, within the speculation window of the merge
// position, unclaimed, and believed unrouted. Callers hold mu.
func (c *conc) findClaim() int {
	limit := min(c.mergePos+c.window, len(c.order))
	for pos := c.nextClaim; pos < limit; pos++ {
		if c.claimed[pos] || c.methods[c.order[pos]] != NotRouted {
			continue
		}
		return pos
	}
	return -1
}

// take consumes position pi at its merge turn. If no worker claimed it
// the committer claims it itself and returns nil (route inline); else
// it waits for the speculative result and tests its region against the
// log tail the snapshot missed.
func (c *conc) take(pi int) *workerRes {
	var t0 time.Time
	if c.r.obs != nil {
		t0 = time.Now()
	}
	c.mu.Lock()
	if !c.claimed[pi] {
		c.claimed[pi] = true
		c.mu.Unlock()
		return nil
	}
	for c.results[pi] == nil {
		c.cond.Wait()
	}
	res := c.results[pi]
	delete(c.results, pi)
	c.mu.Unlock()
	if c.r.obs != nil {
		c.r.obs.commitWait.Observe(time.Since(t0).Seconds())
	}
	// The log is append-only and only the committer (this goroutine)
	// appends, so the tail scan needs no lock.
	res.dirty = regionDirty(res, c.log[res.epoch:])
	return res
}

// regionDirty reports whether any logged mutation the speculation's
// snapshot missed touches its read/write region. Any overlap means the
// sequential ladder might have seen different board state, so the
// result cannot be proven identical and must be discarded.
func regionDirty(res *workerRes, tail []logEntry) bool {
	for k := range tail {
		rect := tail[k].rect
		if !res.cells.Intersect(rect).Empty() || !res.vias.Intersect(rect).Empty() {
			return true
		}
	}
	return false
}

// merged publishes the outcome of merge turn pi: refresh the method
// mirror, advance the merge cursor, wake waiting workers. The full
// mirror refresh is needed only when the merge ripped up or re-routed
// other connections; otherwise only position pi changed.
func (c *conc) merged(pi int, full bool) {
	c.mu.Lock()
	if full {
		for k := range c.methods {
			c.methods[k] = c.r.routes[k].Method
		}
	} else {
		i := c.order[pi]
		c.methods[i] = c.r.routes[i].Method
	}
	c.mergePos = pi + 1
	c.cond.Broadcast()
	c.mu.Unlock()
}

// shutdown stops the workers and removes the commit-log hook. Workers
// finish (or abort, when the master's deadline or cancellation flag is
// armed) their in-flight attempt first; shutdown is idempotent.
func (c *conc) shutdown() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	c.cond.Broadcast()
	c.mu.Unlock()
	c.wg.Wait()
	c.r.B.OnMutate(nil)
}

// loop is a worker goroutine: claim, sync the shadow, speculate,
// deliver, repeat.
func (w *specWorker) loop() {
	c := w.c
	for {
		c.mu.Lock()
		pos := -1
		for {
			if c.stopped {
				c.mu.Unlock()
				return
			}
			if pos = c.findClaim(); pos >= 0 {
				break
			}
			c.cond.Wait()
		}
		c.claimed[pos] = true
		if pos >= c.nextClaim {
			c.nextClaim = pos + 1
		}
		epoch := len(c.log)
		pending := c.log[w.applied:epoch]
		i := c.order[pos]
		c.mu.Unlock()

		if w.busy != nil {
			w.busy.Add(1)
		}
		for _, le := range pending {
			if err := w.rt.B.ApplyRecord(le.rec); err != nil {
				// The log is the master's serial mutation history; a
				// shadow that cannot replay it has diverged — a bug, not
				// a routing conflict.
				panic(fmt.Sprintf("core: shadow board diverged: %v", err))
			}
		}
		w.applied = epoch
		res := w.attempt(i)
		res.epoch = epoch
		if w.busy != nil {
			w.busy.Add(-1)
		}

		c.mu.Lock()
		c.results[pos] = res
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// attempt runs the speculative no-rip-up ladder — exactly the sequence
// routeOne tries before any rip-up — for connection i on the shadow,
// then rolls the route back so the shadow stays at its synced log
// prefix. The returned records and region are everything the committer
// needs to adopt or discard the result.
func (w *specWorker) attempt(i int) *workerRes {
	res := &workerRes{cells: emptyRect(), vias: emptyRect()}
	rt := w.rt
	if c := rt.Conns[i]; c.A == c.B {
		res.ok, res.method = true, Trivial
		return res
	}
	rt.search.ResetReads()
	w.region = readRegion{cells: emptyRect(), vias: emptyRect()}
	rt.track = &w.region
	before := rt.metrics
	route, method, ok := rt.speculate(i)
	rt.track = nil
	res.delta = searchDelta(before, rt.metrics)
	cells, vias := rt.search.ReadExtent()
	res.cells = w.region.cells.Union(cells)
	res.vias = w.region.vias.Union(vias)
	if !ok {
		return res
	}
	if route.tx != nil {
		res.records = route.tx.Records()
	}
	res.ok, res.method = true, method
	rt.rollback(&route)
	return res
}

// speculate is routeOne's pre-rip-up strategy ladder, returning the
// open route instead of committing it.
func (r *Router) speculate(i int) (Route, Method, bool) {
	r.beginConnBudget()
	if rt, ok := r.zeroViaT(i); ok {
		return rt, ZeroVia, true
	}
	if rt, ok := r.oneViaT(i); ok {
		return rt, OneVia, true
	}
	if rt, _, ok := r.lee(i); ok {
		return rt, Lee, true
	}
	return Route{}, NotRouted, false
}

// searchDelta extracts the search-side counter growth of one attempt:
// the counters the sequential ladder would have bumped identically.
// Everything else (ByMethod, WireLength, ViasAdded, rip-up counters) is
// produced by the master at commit time.
func searchDelta(before, after Metrics) Metrics {
	var d Metrics
	d.LeeExpansions = after.LeeExpansions - before.LeeExpansions
	d.LeeBlocked = after.LeeBlocked - before.LeeBlocked
	d.TraceCalls = after.TraceCalls - before.TraceCalls
	d.ViasCalls = after.ViasCalls - before.ViasCalls
	return d
}

// adopt replays a clean speculative result through a master
// transaction and commits it as connection i's route, folding in the
// worker's search counters. A replay collision (impossible while the
// region test is sound, but cheap to guard) rolls back and reports
// false; the caller then falls back to the sequential ladder.
func (r *Router) adopt(i int, res *workerRes) bool {
	if res.method == Trivial {
		r.routes[i] = Route{Method: Trivial}
		r.metrics.ByMethod[Trivial]++
		return true
	}
	var rt Route
	for _, rec := range res.records {
		switch rec.Kind {
		case board.OpAddSegment:
			s := r.tx(&rt).AddSegment(rec.Layer, rec.Ch, rec.Span.Lo, rec.Span.Hi, rec.Owner)
			if s == nil {
				r.rollback(&rt)
				return false
			}
			rt.Segs = append(rt.Segs, PlacedSeg{Layer: rec.Layer, Seg: s})
		case board.OpPlaceVia:
			pv, ok := r.tx(&rt).PlaceVia(rec.At, rec.Owner)
			if !ok {
				r.rollback(&rt)
				return false
			}
			rt.Vias = append(rt.Vias, pv)
		default:
			// A no-rip-up ladder journals placements only.
			r.rollback(&rt)
			return false
		}
	}
	r.metrics.LeeExpansions += res.delta.LeeExpansions
	r.metrics.LeeBlocked += res.delta.LeeBlocked
	r.metrics.TraceCalls += res.delta.TraceCalls
	r.metrics.ViasCalls += res.delta.ViasCalls
	r.commit(i, rt, res.method)
	return true
}

// mergeOne routes connection i at its merge turn: adopt the clean
// speculative result, or fall back to the full sequential routeOne
// (rip-up rights included) on the master board. It reports whether the
// speculative result was adopted as-is.
func (r *Router) mergeOne(i int, res *workerRes) bool {
	switch {
	case res == nil:
		r.routeOne(i)
	case !res.ok:
		r.specMisses++
		if r.obs != nil {
			r.obs.specMisses.Add(1)
		}
		r.routeOne(i)
	case res.dirty || !r.adopt(i, res):
		r.specConflicts++
		if r.obs != nil {
			r.obs.specConflicts.Add(1)
		}
		r.routeOne(i)
	default:
		r.specAdopted++
		if r.obs != nil {
			r.obs.specAdopted.Add(1)
		}
		return true
	}
	return false
}

// mergeTurn is mergeOne bracketed by the RecordRegions bookkeeping of
// incremental.go — the concurrent counterpart of routeTurn. On a
// replay router the memo is tried before the speculative result is
// even consumed (an adopted memo makes the speculation moot; the
// unconsumed result is discarded at the next beginPass). take defers
// consuming the worker result so that short-circuit stays cheap.
func (r *Router) mergeTurn(i int, take func() *workerRes) {
	if !r.Opts.RecordRegions {
		r.mergeOne(i, take())
		return
	}
	if c := &r.Conns[i]; c.A == c.B {
		r.mergeOne(i, take())
		return
	}
	if r.replay != nil {
		if m := r.memos[i]; m != nil && m.pass == r.curPass && r.memoAdopt(i, m) {
			return
		}
	}
	res := take()
	r.beginTurn()
	ripBase := r.metrics.RipUps
	specAdopted := r.mergeOne(i, res)
	region, rect := r.endTurn()
	if specAdopted {
		// An adopted speculation replayed journal records rather than
		// searching on the master; the worker's tracked extents are the
		// turn's true read region.
		region = readRegion{cells: res.cells, vias: res.vias}
	}
	ok := r.routes[i].Method != NotRouted
	clean := ok && r.metrics.RipUps == ripBase && r.abortReason == AbortNone
	r.recordTurn(i, ok, clean, region, rect)
}

// runConcurrent is run() with the inner loop split between speculation
// (workers) and in-order merging (this goroutine). Pass accounting,
// checkpoint cadence, escalation and the final result are bit-identical
// to the sequential loop.
func (r *Router) runConcurrent() Result {
	c := newConc(r)
	defer c.shutdown()

	r.metrics.Connections = len(r.Conns)
	prevUnrouted := len(r.Conns) + 1
	startPos := 0
	if r.resumed {
		prevUnrouted = r.resumePrev
		startPos = r.startPos
	}
	r.ckPass, r.ckPos, r.ckPrev = r.startPass, startPos, prevUnrouted
passes:
	for pass := r.startPass; pass < r.Opts.MaxPasses; pass++ {
		var passT0 time.Time
		if r.obs != nil {
			passT0 = time.Now()
		}
		c.beginPass(startPos)
		r.curPass = pass
		for pi := startPos; pi < len(r.order); pi++ {
			i := r.order[pi]
			r.ckPass, r.ckPos, r.ckPrev = pass, pi, prevUnrouted
			if r.abortCheck() {
				break passes
			}
			full := false
			if r.routes[i].Method == NotRouted {
				ripBase := r.metrics.RipUps + r.metrics.ReRouted
				r.mergeTurn(i, func() *workerRes { return c.take(pi) })
				full = r.metrics.RipUps+r.metrics.ReRouted != ripBase
				r.ckPos = pi + 1
				r.obsFlush()
				r.maybeCheckpoint(pass, pi+1, prevUnrouted)
				if r.abortReason != AbortNone {
					break passes
				}
			}
			c.merged(pi, full)
		}
		startPos = 0
		r.metrics.Passes++
		if r.obs != nil {
			r.obs.passTimes.Observe(time.Since(passT0).Seconds())
		}
		if !r.paranoidCheck(fmt.Sprintf("pass %d", pass)) {
			break
		}
		unrouted := r.countUnrouted()
		if unrouted == 0 || unrouted >= prevUnrouted {
			break
		}
		prevUnrouted = unrouted
	}
	// Escalation and the final audit run sequentially on the master;
	// stop the workers first (idempotent with the deferred shutdown).
	c.shutdown()
	return r.finish()
}
