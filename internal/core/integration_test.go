package core_test

import (
	"testing"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/stringer"
	"repro/internal/verify"
	"repro/internal/workload"
)

// buildSmall generates, strings and routes a small synthetic board,
// returning everything a test needs to inspect the outcome.
func buildSmall(t testing.TB, seed int64, opts core.Options) (*board.Board, *core.Router, core.Result) {
	t.Helper()
	d, err := workload.Generate(workload.SmallSpec(seed))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return routeDesign(t, d, opts)
}

func routeDesign(t testing.TB, d *netlist.Design, opts core.Options) (*board.Board, *core.Router, core.Result) {
	t.Helper()
	b, err := board.New(d.GridConfig())
	if err != nil {
		t.Fatalf("board: %v", err)
	}
	if err := d.PlacePins(b); err != nil {
		t.Fatalf("pins: %v", err)
	}
	sr, err := stringer.String(d, stringer.Options{})
	if err != nil {
		t.Fatalf("stringer: %v", err)
	}
	r, err := core.New(b, sr.Conns, opts)
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	res := r.Route()
	return b, r, res
}

func TestRouteSmallBoardCompletes(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		b, r, res := buildSmall(t, seed, core.DefaultOptions())
		if !res.Complete() {
			t.Errorf("seed %d: %d connections failed: %v (metrics %+v)",
				seed, len(res.FailedConns), res.FailedConns, res.Metrics)
		}
		if err := verify.Routed(b, r); err != nil {
			t.Errorf("seed %d: verification failed: %v", seed, err)
		}
		t.Logf("seed %d: %s", seed, res)
	}
}

func TestRouteIsDeterministic(t *testing.T) {
	_, r1, res1 := buildSmall(t, 7, core.DefaultOptions())
	_, r2, res2 := buildSmall(t, 7, core.DefaultOptions())
	if res1.String() != res2.String() {
		t.Fatalf("results differ:\n%s\n%s", res1, res2)
	}
	for i := range r1.Conns {
		m1, m2 := r1.RouteOf(i).Method, r2.RouteOf(i).Method
		if m1 != m2 {
			t.Fatalf("connection %d methods differ: %v vs %v", i, m1, m2)
		}
	}
}

func TestMetricsAccounting(t *testing.T) {
	_, _, res := buildSmall(t, 3, core.DefaultOptions())
	m := res.Metrics
	sum := 0
	for _, n := range m.ByMethod {
		sum += n
	}
	if sum != m.Routed {
		t.Errorf("method counts sum to %d, routed %d", sum, m.Routed)
	}
	if m.Routed+m.Failed != m.Connections {
		t.Errorf("routed %d + failed %d != connections %d", m.Routed, m.Failed, m.Connections)
	}
	if m.ViasAdded < 0 || m.WireLength <= 0 {
		t.Errorf("implausible metrics: vias %d, wire %d", m.ViasAdded, m.WireLength)
	}
}

func TestOptimalShareDominates(t *testing.T) {
	// Section 8.1: on feasible boards ~90% of connections should route
	// with the optimal (zero/one-via) strategies. Small boards are
	// uncongested, so the share should be very high.
	_, _, res := buildSmall(t, 2, core.DefaultOptions())
	if share := res.Metrics.OptimalShare(); share < 0.8 {
		t.Errorf("optimal share %.2f, want >= 0.8 (metrics %+v)", share, res.Metrics)
	}
}
