package core

import (
	"repro/internal/board"
	"repro/internal/geom"
	"repro/internal/layer"
)

// This file is the goal-oriented engine's preprocessed lower-bound
// structure (DESIGN §15): per layer, per channel, how many cells are
// occupied — enough to answer, in O(layers) per query, whether a
// wavefront point can possibly reach the target in its current
// single-layer hop, or must provably spend at least one more via.
//
// The structure is congestion-aware and incrementally maintained: it is
// built lazily from a full board scan on first query and then kept
// exact by a board mutation hook (every AddSegment/RemoveSegment —
// including the per-layer unit segments of vias — flows through
// board.mutated). A mutation-counter cross-check rebuilds from scratch
// if the hook ever missed a revision, so a stale bound can never
// mis-order a search. All storage is allocated once; the steady-state
// query path allocates nothing (the PR 1 budget, TestLeeSteadyStateAllocs,
// runs a goal-engine subtest to pin this).

// lbLayer is the per-layer occupancy summary: used cell counts per
// channel plus a lazily refreshed prefix count of completely full
// channels, so "is any channel in [lo,hi] full?" is O(1).
type lbLayer struct {
	used   []int32 // per channel: occupied cell count
	pfx    []int32 // pfx[c+1] = number of full channels in [0, c]
	pfxOK  bool
	length int32 // cells per channel; used[c] == length ⇔ channel full
}

func (l *lbLayer) refreshPfx() {
	var n int32
	for c := range l.used {
		if l.used[c] == l.length {
			n++
		}
		l.pfx[c+1] = n
	}
	l.pfxOK = true
}

// fullIn reports whether any channel in [lo, hi] (clipped to the layer)
// is completely occupied.
func (l *lbLayer) fullIn(lo, hi int) bool {
	if lo < 0 {
		lo = 0
	}
	if hi >= len(l.used) {
		hi = len(l.used) - 1
	}
	if lo > hi {
		return false
	}
	if !l.pfxOK {
		l.refreshPfx()
	}
	return l.pfx[hi+1] > l.pfx[lo]
}

// lbIndex is the board-wide lower-bound structure. One per router under
// EngineGoal (worker routers build their own against their shadow
// clones); invalidation rides the board's mutation stream.
type lbIndex struct {
	b      *board.Board
	layers []lbLayer
	built  bool
	// seq mirrors b.Mutations() while the index is in sync; a mismatch
	// on query means some mutation bypassed the hook and forces a
	// rebuild.
	seq uint64
	// hash is the lazily computed FNV-64a over the full-channel bit
	// vector — the part of the index the bound actually reads. The
	// incremental engine records it into goal-engine memos: a memo may
	// only be adopted when the congestion picture its search saw is
	// reproduced (DESIGN §15).
	hash   uint64
	hashOK bool

	// Counters behind the lower-bound metric series, flushed at obs boundaries.
	builds  int
	queries int
	hits    int
}

// newLBIndex attaches a lower-bound index to b. The hook stays for the
// board's lifetime, matching the router's.
func newLBIndex(b *board.Board) *lbIndex {
	x := &lbIndex{b: b}
	b.AddMutateHook(x.apply)
	return x
}

// apply folds one board mutation into the occupancy counts. Only
// segment records exist (vias are per-layer unit segments by the time
// they reach the mutation stream).
func (x *lbIndex) apply(rec board.Record) {
	x.seq++
	if !x.built {
		return
	}
	l := &x.layers[rec.Layer]
	n := int32(rec.Span.Hi - rec.Span.Lo + 1)
	wasFull := l.used[rec.Ch] == l.length
	if rec.Kind == board.OpAddSegment {
		l.used[rec.Ch] += n
	} else {
		l.used[rec.Ch] -= n
	}
	if (l.used[rec.Ch] == l.length) != wasFull {
		l.pfxOK = false
		x.hashOK = false
	}
}

// ensure makes the index current: first use builds it, and a mutation
// count the hook did not account for rebuilds it.
func (x *lbIndex) ensure() {
	if x.built && x.seq == x.b.Mutations() {
		return
	}
	x.build()
}

func (x *lbIndex) build() {
	b := x.b
	if x.layers == nil {
		x.layers = make([]lbLayer, len(b.Layers))
	}
	for li, l := range b.Layers {
		ll := &x.layers[li]
		ll.length = int32(l.ChannelLength())
		if ll.used == nil {
			ll.used = make([]int32, l.NumChannels())
			ll.pfx = make([]int32, l.NumChannels()+1)
		} else {
			clear(ll.used)
		}
		l.VisitSegments(func(ch int, s *layer.Segment) bool {
			ll.used[ch] += int32(s.Hi - s.Lo + 1)
			return true
		})
		ll.pfxOK = false
	}
	x.built = true
	x.seq = b.Mutations()
	x.hashOK = false
	x.builds++
}

// needsVia reports whether every remaining path from wavefront point n
// to target t must spend at least one more via than the hop it is on:
// true when, on every layer, a single-layer hop n→t is provably
// impossible. A hop on a layer needs (a) the cross-direction distance
// within the radius window the neighbor generator uses, and (b) a free
// interval in every channel between n's and t's (inclusive — the
// jogging trace must occupy a cell in each channel it crosses, and it
// crosses all of them). Both conditions are necessary, so a "true"
// answer is a sound lower bound; a "false" answer merely declines to
// strengthen the heuristic.
func (x *lbIndex) needsVia(n, t geom.Point, radius int) bool {
	x.ensure()
	x.queries++
	cfg := &x.b.Cfg
	reach := radius * cfg.Pitch
	for li := range x.layers {
		o := x.b.Layers[li].Orient
		nc, _ := cfg.ChanPos(o, n)
		tc, _ := cfg.ChanPos(o, t)
		d := nc - tc
		if d < 0 {
			d = -d
		}
		if d > reach {
			continue // off the layer's radius window: no hop here
		}
		lo, hi := nc, tc
		if lo > hi {
			lo, hi = hi, lo
		}
		if !x.layers[li].fullIn(lo, hi) {
			return false // a hop on this layer is not ruled out
		}
	}
	x.hits++
	return true
}

// fullHash returns the FNV-64a hash of the full-channel bit vector —
// the congestion picture needsVia reads. Recomputed lazily, only when
// some channel flipped between full and non-full since the last call.
func (x *lbIndex) fullHash() uint64 {
	x.ensure()
	if x.hashOK {
		return x.hash
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for li := range x.layers {
		l := &x.layers[li]
		for c := range l.used {
			if l.used[c] == l.length {
				h ^= uint64(li)<<32 ^ uint64(c)
				h *= prime64
			}
		}
	}
	x.hash = h
	x.hashOK = true
	return h
}

// goalViaPen is the goal engine's per-hop penalty, the unit in which
// the accumulated cost g() and the lower bound h() price vias. A few
// grid cells per via steers the flood along hop-frugal corridors
// without drowning the distance term.
func (r *Router) goalViaPen() int64 {
	return 4 * int64(r.B.Cfg.Pitch)
}
