package core

import (
	"testing"

	"repro/internal/board"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/layer"
)

func emptyBoard(t testing.TB, viaCols, viaRows, layers int) *board.Board {
	t.Helper()
	b, err := board.New(grid.NewConfig(viaCols, viaRows, 3, layers))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func pinAt(t testing.TB, b *board.Board, via geom.Point) geom.Point {
	t.Helper()
	p := b.Cfg.GridOf(via)
	if err := b.PlacePin(p); err != nil {
		t.Fatal(err)
	}
	return p
}

func mustRouter(t testing.TB, b *board.Board, conns []Connection, opts Options) *Router {
	t.Helper()
	r, err := New(b, conns, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSortOrderKeys(t *testing.T) {
	b := emptyBoard(t, 30, 30, 2)
	mk := func(ax, ay, bx, by int) Connection {
		return Connection{A: b.Cfg.GridOf(geom.Pt(ax, ay)), B: b.Cfg.GridOf(geom.Pt(bx, by))}
	}
	conns := []Connection{
		mk(0, 0, 10, 10), // min 10, max 10 — most diagonal, last
		mk(0, 0, 0, 3),   // min 0, max 3 — short straight
		mk(0, 0, 12, 0),  // min 0, max 12 — long straight
		mk(0, 0, 2, 9),   // min 2, max 9
		mk(0, 0, 0, 1),   // min 0, max 1 — shortest straight, first
	}
	order := SortOrder(b, conns, true)
	want := []int{4, 1, 2, 3, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	unsorted := SortOrder(b, conns, false)
	for i := range unsorted {
		if unsorted[i] != i {
			t.Fatalf("unsorted order = %v", unsorted)
		}
	}
}

func TestSortIsStable(t *testing.T) {
	b := emptyBoard(t, 30, 30, 2)
	mk := func(ax, ay, bx, by int) Connection {
		return Connection{A: b.Cfg.GridOf(geom.Pt(ax, ay)), B: b.Cfg.GridOf(geom.Pt(bx, by))}
	}
	// Three identical-key connections keep input order.
	conns := []Connection{mk(0, 0, 5, 0), mk(1, 1, 6, 1), mk(2, 2, 7, 2)}
	order := SortOrder(b, conns, true)
	for i := range order {
		if order[i] != i {
			t.Fatalf("stable sort violated: %v", order)
		}
	}
}

func TestZeroViaStraight(t *testing.T) {
	b := emptyBoard(t, 12, 12, 2)
	a := pinAt(t, b, geom.Pt(1, 5))
	c := pinAt(t, b, geom.Pt(9, 5))
	r := mustRouter(t, b, []Connection{{A: a, B: c}}, DefaultOptions())
	res := r.Route()
	if !res.Complete() {
		t.Fatal("failed")
	}
	rt := r.RouteOf(0)
	if rt.Method != ZeroVia {
		t.Fatalf("method = %v, want zerovia", rt.Method)
	}
	if len(rt.Vias) != 0 {
		t.Errorf("straight route drilled %d vias", len(rt.Vias))
	}
	// Horizontal connection must land on a horizontal layer (layer 1).
	for _, ps := range rt.Segs {
		if b.Layers[ps.Layer].Orient != grid.Horizontal {
			t.Errorf("straight horizontal run on %v layer", b.Layers[ps.Layer].Orient)
		}
	}
}

func TestOneViaL(t *testing.T) {
	b := emptyBoard(t, 12, 12, 2)
	a := pinAt(t, b, geom.Pt(1, 1))
	c := pinAt(t, b, geom.Pt(9, 9))
	r := mustRouter(t, b, []Connection{{A: a, B: c}}, DefaultOptions())
	res := r.Route()
	if !res.Complete() {
		t.Fatal("failed")
	}
	rt := r.RouteOf(0)
	if rt.Method != OneVia {
		t.Fatalf("method = %v, want onevia", rt.Method)
	}
	if len(rt.Vias) != 1 {
		t.Fatalf("L route drilled %d vias", len(rt.Vias))
	}
	// The via should be at one of the two corners (the best candidates).
	v := rt.Vias[0].At
	c1 := geom.Pt(c.X, a.Y)
	c2 := geom.Pt(a.X, c.Y)
	if v != c1 && v != c2 {
		t.Errorf("via at %v, want corner %v or %v", v, c1, c2)
	}
}

func TestTrivialConnection(t *testing.T) {
	b := emptyBoard(t, 8, 8, 2)
	a := pinAt(t, b, geom.Pt(2, 2))
	r := mustRouter(t, b, []Connection{{A: a, B: a}}, DefaultOptions())
	res := r.Route()
	if !res.Complete() || r.RouteOf(0).Method != Trivial {
		t.Fatal("self connection not trivially routed")
	}
}

func TestLeeUsedWhenOptimalBlocked(t *testing.T) {
	b := emptyBoard(t, 16, 16, 2)
	a := pinAt(t, b, geom.Pt(2, 7))
	c := pinAt(t, b, geom.Pt(13, 7))
	// Vertical wall between them on both layers spanning beyond the
	// radius-expanded direct box (radius 1 → ±3 grid rows), with free
	// space far above.
	wallX := 22
	for li := 0; li < 2; li++ {
		o := b.Layers[li].Orient
		for y := 9; y <= 33; y++ {
			ch, pos := b.Cfg.ChanPos(o, geom.Pt(wallX, y))
			if b.AddSegment(li, ch, pos, pos, layer.KeepoutOwner) == nil {
				t.Fatal("wall setup failed")
			}
		}
	}
	r := mustRouter(t, b, []Connection{{A: a, B: c}}, DefaultOptions())
	res := r.Route()
	if !res.Complete() {
		t.Fatalf("failed: %+v", res.Metrics)
	}
	if got := r.RouteOf(0).Method; got != Lee {
		t.Fatalf("method = %v, want lee", got)
	}
}

func TestRipUpFreesSpace(t *testing.T) {
	// Narrow board, 2 layers. First route a connection that occupies the
	// only corridor, then ask for one that needs it. The router must rip
	// up the first, route the second, and re-route the first.
	b := emptyBoard(t, 9, 4, 2)
	a1 := pinAt(t, b, geom.Pt(1, 1))
	b1 := pinAt(t, b, geom.Pt(7, 1))
	a2 := pinAt(t, b, geom.Pt(1, 2))
	b2 := pinAt(t, b, geom.Pt(7, 2))
	conns := []Connection{
		{A: a1, B: b1, Net: "first"},
		{A: a2, B: b2, Net: "second"},
	}
	opts := DefaultOptions()
	r := mustRouter(t, b, conns, opts)
	res := r.Route()
	if !res.Complete() {
		t.Fatalf("failed: %v (metrics %+v)", res.FailedConns, res.Metrics)
	}
}

func TestRadiusConstraintRespected(t *testing.T) {
	// dy = 2 via units: with radius 1 a direct horizontal solution is
	// not allowed; with radius 2 it is.
	b := emptyBoard(t, 14, 14, 2)
	a := pinAt(t, b, geom.Pt(2, 4))
	c := pinAt(t, b, geom.Pt(10, 6))

	opts := DefaultOptions()
	opts.Radius = 2
	r := mustRouter(t, b, []Connection{{A: a, B: c}}, opts)
	if res := r.Route(); !res.Complete() {
		t.Fatal("radius-2 route failed")
	}
	if got := r.RouteOf(0).Method; got != ZeroVia {
		t.Errorf("radius 2: method %v, want zerovia", got)
	}

	b2 := emptyBoard(t, 14, 14, 2)
	a2 := pinAt(t, b2, geom.Pt(2, 4))
	c2 := pinAt(t, b2, geom.Pt(10, 6))
	opts.Radius = 1
	r2 := mustRouter(t, b2, []Connection{{A: a2, B: c2}}, opts)
	if res := r2.Route(); !res.Complete() {
		t.Fatal("radius-1 route failed")
	}
	if got := r2.RouteOf(0).Method; got == ZeroVia {
		t.Errorf("radius 1: zero-via solution should be out of reach for dy=2")
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	b := emptyBoard(t, 8, 8, 2)
	if _, err := New(b, []Connection{{A: geom.Pt(-3, 0), B: geom.Pt(0, 0)}}, DefaultOptions()); err == nil {
		t.Error("off-board endpoint accepted")
	}
	if _, err := New(b, []Connection{{A: geom.Pt(1, 1), B: geom.Pt(0, 0)}}, DefaultOptions()); err == nil {
		t.Error("off-via-grid endpoint accepted")
	}
	opts := DefaultOptions()
	opts.Radius = -1
	if _, err := New(b, nil, opts); err == nil {
		t.Error("negative radius accepted")
	}
}

func TestCostFunctions(t *testing.T) {
	b := emptyBoard(t, 8, 8, 2)
	r := mustRouter(t, b, nil, DefaultOptions())
	n, target := geom.Pt(3, 3), geom.Pt(9, 9)

	r.Opts.Cost = CostPlusOne
	if got := r.cost(n, target, 3); got != 3 {
		t.Errorf("plus-one cost = %d", got)
	}
	r.Opts.Cost = CostDistance
	if got := r.cost(n, target, 3); got != 12 {
		t.Errorf("distance cost = %d", got)
	}
	r.Opts.Cost = CostDistTimesHops
	if got := r.cost(n, target, 3); got != 36 {
		t.Errorf("dist*hops cost = %d", got)
	}
}

func TestMethodAndCostStrings(t *testing.T) {
	for m, s := range map[Method]string{
		NotRouted: "unrouted", Trivial: "trivial", ZeroVia: "zerovia",
		OneVia: "onevia", Lee: "lee", PutBack: "putback",
	} {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
	for c, s := range map[CostFn]string{
		CostDistTimesHops: "dist*hops", CostPlusOne: "plus-one", CostDistance: "distance",
	} {
		if c.String() != s {
			t.Errorf("CostFn %d = %q, want %q", c, c.String(), s)
		}
	}
}

func TestAllCostFunctionsRoute(t *testing.T) {
	for _, cf := range []CostFn{CostDistTimesHops, CostPlusOne, CostDistance} {
		b := emptyBoard(t, 16, 16, 2)
		a := pinAt(t, b, geom.Pt(2, 7))
		c := pinAt(t, b, geom.Pt(13, 7))
		wallX := 22
		for li := 0; li < 2; li++ {
			o := b.Layers[li].Orient
			for y := 9; y <= 33; y++ {
				ch, pos := b.Cfg.ChanPos(o, geom.Pt(wallX, y))
				b.AddSegment(li, ch, pos, pos, layer.KeepoutOwner)
			}
		}
		opts := DefaultOptions()
		opts.Cost = cf
		r := mustRouter(t, b, []Connection{{A: a, B: c}}, opts)
		if res := r.Route(); !res.Complete() {
			t.Errorf("cost %v: route failed", cf)
		}
	}
}

func TestUnidirectionalRoutes(t *testing.T) {
	b := emptyBoard(t, 16, 16, 2)
	a := pinAt(t, b, geom.Pt(2, 7))
	c := pinAt(t, b, geom.Pt(13, 7))
	wallX := 22
	for li := 0; li < 2; li++ {
		o := b.Layers[li].Orient
		for y := 9; y <= 33; y++ {
			ch, pos := b.Cfg.ChanPos(o, geom.Pt(wallX, y))
			b.AddSegment(li, ch, pos, pos, layer.KeepoutOwner)
		}
	}
	opts := DefaultOptions()
	opts.Bidirectional = false
	r := mustRouter(t, b, []Connection{{A: a, B: c}}, opts)
	if res := r.Route(); !res.Complete() {
		t.Fatal("unidirectional route failed")
	}
}

func TestImpossibleProblemTerminates(t *testing.T) {
	// Completely wall off b's pin on all layers with permanent keepout:
	// the router must give up, not loop forever.
	b := emptyBoard(t, 10, 10, 2)
	a := pinAt(t, b, geom.Pt(1, 1))
	c := pinAt(t, b, geom.Pt(7, 7))
	for li := 0; li < 2; li++ {
		o := b.Layers[li].Orient
		for dx := -2; dx <= 2; dx++ {
			for dy := -2; dy <= 2; dy++ {
				if dx == 0 && dy == 0 {
					continue
				}
				p := c.Add(geom.Pt(dx, dy))
				ch, pos := b.Cfg.ChanPos(o, p)
				b.AddSegment(li, ch, pos, pos, layer.KeepoutOwner)
			}
		}
	}
	r := mustRouter(t, b, []Connection{{A: a, B: c}}, DefaultOptions())
	res := r.Route()
	if res.Complete() {
		t.Fatal("routed through a solid wall")
	}
	if res.Metrics.Failed != 1 || len(res.FailedConns) != 1 {
		t.Errorf("metrics: %+v", res.Metrics)
	}
}

func TestPutBackRestoresVictims(t *testing.T) {
	// After routing with rip-ups, every connection must again be routed
	// and the board consistent.
	_, r, res := buildDense(t)
	if res.Metrics.RipUps > 0 && res.Metrics.PutBacks == 0 && res.Metrics.ReRouted == 0 {
		t.Error("rip-ups happened but nothing was put back or re-routed")
	}
	for i := range r.Conns {
		if r.RouteOf(i).Method == NotRouted && !contains(res.FailedConns, i) {
			t.Errorf("connection %d unrouted but not reported failed", i)
		}
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// buildDense routes a deliberately congested small board.
func buildDense(t testing.TB) (*board.Board, *Router, Result) {
	t.Helper()
	b := emptyBoard(t, 20, 8, 2)
	var conns []Connection
	// Parallel long connections saturating the horizontal capacity plus
	// crossing verticals.
	for i := 0; i < 6; i++ {
		a := pinAt(t, b, geom.Pt(1, 1+i))
		c := pinAt(t, b, geom.Pt(18, 1+i))
		conns = append(conns, Connection{A: a, B: c})
	}
	for i := 0; i < 4; i++ {
		a := pinAt(t, b, geom.Pt(4+3*i, 0))
		c := pinAt(t, b, geom.Pt(5+3*i, 7))
		conns = append(conns, Connection{A: a, B: c})
	}
	r := mustRouter(t, b, conns, DefaultOptions())
	res := r.Route()
	return b, r, res
}
