package core

import (
	"time"

	"repro/internal/obs"
)

// This file threads an obs.Registry through the router without touching
// the zero-allocation search loop. The design is delta-flush: the
// router keeps accumulating into its plain Metrics struct exactly as
// before (bit-identical Table 1 counters), and obsFlush — called at
// connection and pass boundaries, never inside a search — publishes the
// delta since the last flush to pre-resolved atomic registry handles.
// The only instrumentation inside a phase is a pair of clock reads
// around it; nothing allocates (TestLeeSteadyStateAllocs runs with the
// registry armed to pin this down), and nothing reads the clock into
// the algorithm, so routed output stays bit-identical.

// Phase indices for routerObs.phase. The ladder phases time each
// strategy attempt; put_back times re-insertion of rip-up victims.
const (
	phaseZeroVia = iota
	phaseOneVia
	phaseLee
	phasePutBack
	numPhases
)

var phaseLabel = [numPhases]string{"zero_via", "one_via", "lee", "put_back"}

// methodLabel maps Method to its metric label value. NotRouted has no
// series: it is never committed, so the gauge would sit at zero.
var methodLabel = [PutBack + 1]string{"", "trivial", "zero_via", "one_via", "lee", "put_back"}

// routerObs holds the registry handles for one Router, resolved once in
// New so the flush path is pure atomic arithmetic.
type routerObs struct {
	// flushed is the Metrics snapshot already published to the
	// registry; obsFlush publishes cur-flushed and advances it. Resume
	// resets it to the checkpoint's counters so a resumed run only
	// publishes work done in this process.
	flushed Metrics

	expansions  *obs.Counter
	blocked     *obs.Counter
	ripUps      *obs.Counter
	putBacks    *obs.Counter
	reRouted    *obs.Counter
	traceCalls  *obs.Counter
	viasCalls   *obs.Counter
	passes      *obs.Counter
	connections *obs.Counter
	routedConns *obs.Counter
	failedConns *obs.Counter
	fail        [3]*obs.Counter // no_victims, rounds, node_budget

	byMethod   [PutBack + 1]*obs.Gauge // index 0 (NotRouted) unused
	wireLength *obs.Gauge
	vias       *obs.Gauge

	phase     [numPhases]*obs.Histogram
	passTimes *obs.Histogram

	// Concurrent-engine series (DESIGN §11). These are updated directly
	// at merge turns and by workers (the registry handles are atomic),
	// not flushed from Metrics: speculation outcomes are operational
	// counters and deliberately not part of the Metrics struct, whose
	// integer serialization belongs to the snapshot codec.
	workersBusy   *obs.Gauge
	specAdopted   *obs.Counter
	specConflicts *obs.Counter
	specMisses    *obs.Counter
	commitWait    *obs.Histogram

	// Goal-engine lower-bound series (DESIGN §15), delta-flushed from
	// the lbIndex's plain counters so the search loop never touches an
	// atomic: builds, needsVia queries, and queries that proved a via
	// mandatory. flushedLB is the already-published baseline.
	lbBuilds  *obs.Counter
	lbQueries *obs.Counter
	lbHits    *obs.Counter
	flushedLB [3]int

	// Incremental replay outcomes (DESIGN §15), updated directly at
	// replay turns like the speculation counters above.
	incAdopted  *obs.Counter
	incRerouted *obs.Counter
}

// newRouterObs registers (or re-resolves — registration is idempotent,
// so routers routing many boards into one registry aggregate) every
// router series. The metric name catalog lives in DESIGN §10.
func newRouterObs(reg *obs.Registry) *routerObs {
	o := &routerObs{
		expansions:  reg.Counter("grr_router_lee_expansions_total"),
		blocked:     reg.Counter("grr_router_lee_blocked_total"),
		ripUps:      reg.Counter("grr_router_rip_ups_total"),
		putBacks:    reg.Counter("grr_router_put_backs_total"),
		reRouted:    reg.Counter("grr_router_rerouted_total"),
		traceCalls:  reg.Counter("grr_router_trace_calls_total"),
		viasCalls:   reg.Counter("grr_router_via_queries_total"),
		passes:      reg.Counter("grr_router_passes_total"),
		connections: reg.Counter("grr_router_connections_total"),
		routedConns: reg.Counter("grr_router_routed_total"),
		failedConns: reg.Counter("grr_router_failed_total"),
		wireLength:  reg.Gauge("grr_router_wire_length_cells"),
		vias:        reg.Gauge("grr_router_vias_placed"),
		passTimes:   reg.Histogram("grr_router_pass_seconds", obs.DurationBuckets()),

		workersBusy:   reg.Gauge("grr_router_workers_busy"),
		specAdopted:   reg.Counter("grr_router_spec_adopted_total"),
		specConflicts: reg.Counter("grr_router_spec_conflicts_total"),
		specMisses:    reg.Counter("grr_router_spec_misses_total"),
		commitWait:    reg.Histogram("grr_router_commit_wait_seconds", obs.DurationBuckets()),

		lbBuilds:  reg.Counter("grr_lb_builds_total"),
		lbQueries: reg.Counter("grr_lb_queries_total"),
		lbHits:    reg.Counter("grr_lb_via_bound_hits_total"),

		incAdopted:  reg.Counter("grr_incremental_adopted_total"),
		incRerouted: reg.Counter("grr_incremental_rerouted_total"),
	}
	for i, cause := range [...]string{"no_victims", "rounds", "node_budget"} {
		o.fail[i] = reg.Counter(`grr_router_route_failures_total{cause="` + cause + `"}`)
	}
	for m := Trivial; m <= PutBack; m++ {
		o.byMethod[m] = reg.Gauge(`grr_router_routed_by_method{method="` + methodLabel[m] + `"}`)
	}
	for ph, name := range phaseLabel {
		o.phase[ph] = reg.Histogram(`grr_router_phase_seconds{phase="`+name+`"}`, obs.DurationBuckets())
	}
	return o
}

// obsFlush publishes the metrics accumulated since the last flush. It
// runs at connection/pass/run boundaries only and is a no-op without a
// registry.
func (r *Router) obsFlush() {
	o := r.obs
	if o == nil {
		return
	}
	cur, prev := r.metrics, o.flushed
	o.flushed = cur
	addC := func(c *obs.Counter, d int) {
		if d != 0 {
			c.Add(int64(d))
		}
	}
	addC(o.expansions, cur.LeeExpansions-prev.LeeExpansions)
	addC(o.blocked, cur.LeeBlocked-prev.LeeBlocked)
	addC(o.ripUps, cur.RipUps-prev.RipUps)
	addC(o.putBacks, cur.PutBacks-prev.PutBacks)
	addC(o.reRouted, cur.ReRouted-prev.ReRouted)
	addC(o.traceCalls, cur.TraceCalls-prev.TraceCalls)
	addC(o.viasCalls, cur.ViasCalls-prev.ViasCalls)
	addC(o.passes, cur.Passes-prev.Passes)
	addC(o.connections, cur.Connections-prev.Connections)
	addC(o.routedConns, cur.Routed-prev.Routed)
	addC(o.failedConns, cur.Failed-prev.Failed)
	addC(o.fail[0], cur.FailNoVictims-prev.FailNoVictims)
	addC(o.fail[1], cur.FailRounds-prev.FailRounds)
	addC(o.fail[2], cur.FailNodeBudget-prev.FailNodeBudget)
	// Realized-metal figures shrink when routes are ripped up or
	// unrealized, so they export as gauges, not counters.
	for m := Trivial; m <= PutBack; m++ {
		if d := cur.ByMethod[m] - prev.ByMethod[m]; d != 0 {
			o.byMethod[m].Add(int64(d))
		}
	}
	if d := cur.WireLength - prev.WireLength; d != 0 {
		o.wireLength.Add(int64(d))
	}
	if d := cur.ViasAdded - prev.ViasAdded; d != 0 {
		o.vias.Add(int64(d))
	}
	if r.lb != nil {
		addC(o.lbBuilds, r.lb.builds-o.flushedLB[0])
		addC(o.lbQueries, r.lb.queries-o.flushedLB[1])
		addC(o.lbHits, r.lb.hits-o.flushedLB[2])
		o.flushedLB = [3]int{r.lb.builds, r.lb.queries, r.lb.hits}
	}
}

// obsPhase records one phase duration; callers arrange for t0 to be
// read immediately before the phase body.
func (r *Router) obsPhase(ph int, t0 time.Time) {
	r.obs.phase[ph].Observe(time.Since(t0).Seconds())
}

// zeroViaT/oneViaT are the timed ladder entries routeOne and
// routeLadder call; without a registry they are direct calls. leePts
// (lee.go) is the equivalent wrapper for the Lee phase.
func (r *Router) zeroViaT(i int) (Route, bool) {
	if r.obs == nil {
		return r.zeroVia(i)
	}
	defer r.obsPhase(phaseZeroVia, time.Now())
	return r.zeroVia(i)
}

func (r *Router) oneViaT(i int) (Route, bool) {
	if r.obs == nil {
		return r.oneVia(i)
	}
	defer r.obsPhase(phaseOneVia, time.Now())
	return r.oneVia(i)
}
