package core

import (
	"repro/internal/geom"
	"repro/internal/grid"
)

// This file implements the reusable search state behind the generalized
// Lee engine. The paper's whole performance argument (Sections 7–8) is
// that routing time should be proportional to the few segments a search
// touches; re-allocating maps and interface-boxed heap items for every
// connection buries that win under hashing and garbage collection. A
// Router therefore owns one searchScratch for its lifetime:
//
//   - marks (and the tuned search's per-point delays) live in a dense
//     array indexed by via-grid position, invalidated per search by a
//     generation counter instead of reallocation, with a tiny map spill
//     for the off-grid endpoints of Section 11's extension;
//   - the two wavefront heaps are typed binary heaps over leeItem,
//     replacing container/heap's any-boxed items, with backing arrays
//     that persist across searches;
//   - the ban set and the tuned search's goal table are retained maps,
//     cleared (cheap when near-empty, as they almost always are) rather
//     than remade;
//   - the one-via candidate dedup store is a second generation-stamped
//     dense array shared by every oneViaPts call.
//
// In steady state a Lee search performs no heap allocations per expanded
// node; TestLeeSteadyStateAllocs pins that down.

// denseMark is one via site's slot in the dense mark store. The slot is
// live only while its gen matches the scratch's current generation.
type denseMark struct {
	gen     uint32
	mark    leeMark
	delayFs int64
}

// spillMark carries the same payload for points outside the via grid
// (off-grid connection endpoints).
type spillMark struct {
	mark    leeMark
	delayFs int64
}

// searchScratch is the per-Router arena for Lee and one-via searches.
// It is not safe for concurrent use; give each goroutine its own Router.
type searchScratch struct {
	pitch   int
	viaCols int
	bounds  geom.Rect

	gen   uint32
	dense []denseMark
	spill map[geom.Point]spillMark

	heaps    [2]leeHeap
	banned   banSet
	goalFrom map[geom.Point]hop

	visitGen uint32
	visited  []uint32

	search leeSearch
}

// init sizes the dense stores for one board. Called once per Router.
func (sc *searchScratch) init(cfg grid.Config) {
	sc.pitch = cfg.Pitch
	sc.viaCols = cfg.ViaCols()
	sc.bounds = cfg.Bounds()
	n := cfg.ViaCols() * cfg.ViaRows()
	sc.dense = make([]denseMark, n)
	sc.visited = make([]uint32, n)
	sc.spill = make(map[geom.Point]spillMark)
	sc.banned = make(banSet)
	sc.goalFrom = make(map[geom.Point]hop)
}

// denseIdx maps an on-board via site to its dense-store index, or -1 for
// off-grid or off-board points (which fall back to the spill map).
func (sc *searchScratch) denseIdx(p geom.Point) int {
	if p.X%sc.pitch != 0 || p.Y%sc.pitch != 0 || !p.In(sc.bounds) {
		return -1
	}
	return (p.Y/sc.pitch)*sc.viaCols + p.X/sc.pitch
}

// beginSearch invalidates the previous search's marks and heap contents
// and returns the embedded leeSearch, reset and seeded with the two
// sources. The caller fills in search-specific fields (ban set, cost
// cap, tuned parameters) before expanding.
func (sc *searchScratch) beginSearch(r *Router, a, b geom.Point) *leeSearch {
	sc.gen++
	if sc.gen == 0 { // generation counter wrapped: flush the stale stamps
		for i := range sc.dense {
			sc.dense[i].gen = 0
		}
		sc.gen = 1
	}
	if len(sc.spill) > 0 {
		clear(sc.spill)
	}
	sc.heaps[0].reset()
	sc.heaps[1].reset()
	s := &sc.search
	*s = leeSearch{r: r, sc: sc, sources: [2]geom.Point{a, b}}
	sc.setMark(a, leeMark{from: a, side: 0})
	sc.setMark(b, leeMark{from: b, side: 1})
	return s
}

// lookMark returns p's mark for the current search, if set.
func (sc *searchScratch) lookMark(p geom.Point) (leeMark, bool) {
	if i := sc.denseIdx(p); i >= 0 {
		if e := &sc.dense[i]; e.gen == sc.gen {
			return e.mark, true
		}
		return leeMark{}, false
	}
	m, ok := sc.spill[p]
	return m.mark, ok
}

// setMark records how p was reached in the current search.
func (sc *searchScratch) setMark(p geom.Point, m leeMark) {
	if i := sc.denseIdx(p); i >= 0 {
		sc.dense[i] = denseMark{gen: sc.gen, mark: m}
		return
	}
	sc.spill[p] = spillMark{mark: m}
}

// delayOf returns p's accumulated path delay (tuned searches only);
// unset points — the sources — read as zero, as the map did.
func (sc *searchScratch) delayOf(p geom.Point) int64 {
	if i := sc.denseIdx(p); i >= 0 {
		if e := &sc.dense[i]; e.gen == sc.gen {
			return e.delayFs
		}
		return 0
	}
	return sc.spill[p].delayFs
}

// setDelay stores p's accumulated path delay. p must have been marked in
// the current search (setMark precedes setDelay in expand).
func (sc *searchScratch) setDelay(p geom.Point, d int64) {
	if i := sc.denseIdx(p); i >= 0 {
		sc.dense[i].delayFs = d
		return
	}
	e := sc.spill[p]
	e.delayFs = d
	sc.spill[p] = e
}

// beginVisited starts a fresh one-via candidate dedup epoch.
func (sc *searchScratch) beginVisited() {
	sc.visitGen++
	if sc.visitGen == 0 {
		clear(sc.visited)
		sc.visitGen = 1
	}
}

// tryVisit reports whether via site v is new in the current dedup epoch,
// stamping it. Off-board candidates are never stamped: they are rejected
// by the bounds check immediately, so re-offering them is harmless.
func (sc *searchScratch) tryVisit(v geom.Point) bool {
	i := sc.denseIdx(v)
	if i < 0 {
		return true
	}
	if sc.visited[i] == sc.visitGen {
		return false
	}
	sc.visited[i] = sc.visitGen
	return true
}

// leeHeap is a typed binary min-heap of leeItems ordered by (cost, seq),
// replacing container/heap to avoid boxing every item in an interface
// and to reuse the backing array across searches. (cost, seq) is a
// strict total order — seq numbers are unique — so every correct heap
// pops the same globally sorted sequence; swapping the implementation
// cannot change any routing decision.
type leeHeap struct {
	a []leeItem
}

func leeItemLess(x, y leeItem) bool {
	if x.cost != y.cost {
		return x.cost < y.cost
	}
	return x.seq < y.seq
}

func (h *leeHeap) reset()       { h.a = h.a[:0] }
func (h *leeHeap) len() int     { return len(h.a) }
func (h *leeHeap) top() leeItem { return h.a[0] }

func (h *leeHeap) push(it leeItem) {
	h.a = append(h.a, it)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !leeItemLess(h.a[i], h.a[parent]) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

func (h *leeHeap) pop() leeItem {
	top := h.a[0]
	n := len(h.a) - 1
	h.a[0] = h.a[n]
	h.a = h.a[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		least := l
		if r < n && leeItemLess(h.a[r], h.a[l]) {
			least = r
		}
		if !leeItemLess(h.a[least], h.a[i]) {
			break
		}
		h.a[i], h.a[least] = h.a[least], h.a[i]
		i = least
	}
	return top
}
