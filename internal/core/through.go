package core

import (
	"repro/internal/geom"
	"repro/internal/layer"
)

// This file supports length tuning (Section 10.1): re-realizing an
// already-routed connection through explicit waypoint vias, so the tuning
// package can stretch a path with the detours of Figure 17.

// RouteThrough replaces connection i's current realization with one that
// passes through the given waypoint via sites, in order. Each leg is
// routed with the normal strategy ladder but without rip-up. On failure
// the original realization is restored exactly and false is returned.
//
// The connection must already be routed; waypoints must be via sites.
func (r *Router) RouteThrough(i int, waypoints []geom.Point) bool {
	if r.routes[i].Method == NotRouted {
		return false
	}
	c := &r.Conns[i]
	id := r.connID(i)
	for _, w := range waypoints {
		if !w.In(r.B.Cfg.Bounds()) || !r.B.Cfg.IsViaSite(w) {
			return false
		}
	}
	oldMethod := r.routes[i].Method
	r.beginConnBudget()
	ripTx := r.unrealize(i)

	var rt Route
	ok := true
	for _, w := range waypoints {
		if !r.B.ViaFree(w) || !r.drill(&rt, w, id) {
			ok = false
			break
		}
	}
	if ok {
		pts := make([]geom.Point, 0, len(waypoints)+2)
		pts = append(pts, c.A)
		pts = append(pts, waypoints...)
		pts = append(pts, c.B)
		for k := 0; k+1 < len(pts) && ok; k++ {
			ok = r.routeLegInto(&rt, pts[k], pts[k+1], id)
		}
	}
	if ok {
		ripTx.Commit() // the old realization stays off the board
		r.commit(i, rt, oldMethod)
		return true
	}
	r.rollback(&rt)
	if !r.restore(i, ripTx, oldMethod) {
		if r.abortReason == AbortNone {
			// Cannot happen: the space was just vacated and every partial
			// placement has been rolled back. Guard anyway.
			panic("core: RouteThrough failed to restore the original route")
		}
		return false
	}
	return false
}

// routeLegInto routes one leg between two occupied points, absorbing the
// placement (and its transaction) into rt. The leg tries the usual
// ladder without rip-up. A leg failure leaves rt partially built; the
// caller rolls back.
func (r *Router) routeLegInto(rt *Route, a, b geom.Point, id layer.ConnID) bool {
	if leg, ok := r.zeroViaPts(a, b, id); ok {
		r.absorb(rt, &leg)
		return true
	}
	if leg, ok := r.oneViaPts(a, b, id); ok {
		r.absorb(rt, &leg)
		return true
	}
	if leg, _, ok := r.leePts(a, b, id); ok {
		r.absorb(rt, &leg)
		return true
	}
	return false
}
