package core

import (
	"testing"

	"repro/internal/geom"
)

func routedSingle(t *testing.T) *Router {
	t.Helper()
	b := emptyBoard(t, 20, 20, 4)
	a := pinAt(t, b, geom.Pt(2, 9))
	c := pinAt(t, b, geom.Pt(16, 9))
	r := mustRouter(t, b, []Connection{{A: a, B: c}}, DefaultOptions())
	if res := r.Route(); !res.Complete() {
		t.Fatal("routing failed")
	}
	return r
}

func TestRouteThroughWaypoints(t *testing.T) {
	r := routedSingle(t)
	before := r.Metrics().WireLength

	w1 := r.B.Cfg.GridOf(geom.Pt(8, 4))
	w2 := r.B.Cfg.GridOf(geom.Pt(11, 4))
	if !r.RouteThrough(0, []geom.Point{w1, w2}) {
		t.Fatal("RouteThrough failed on an open board")
	}
	rt := r.RouteOf(0)
	if rt.Method == NotRouted {
		t.Fatal("connection lost its route")
	}
	// Both waypoints must now be drilled and owned by the connection.
	found := 0
	for _, pv := range rt.Vias {
		if pv.At == w1 || pv.At == w2 {
			found++
		}
	}
	if found != 2 {
		t.Errorf("waypoint vias drilled: %d of 2", found)
	}
	if after := r.Metrics().WireLength; after <= before {
		t.Errorf("detour did not lengthen wire: %d -> %d", before, after)
	}
	if err := r.B.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestRouteThroughRestoresOnFailure(t *testing.T) {
	r := routedSingle(t)
	beforeDump := r.B.Layers[0].Dump() + r.B.Layers[1].Dump()
	beforeMetrics := r.Metrics()

	// A waypoint off the board fails fast.
	if r.RouteThrough(0, []geom.Point{geom.Pt(-3, 0)}) {
		t.Fatal("off-board waypoint accepted")
	}
	// A waypoint on an occupied site (endpoint pin) fails after the rip
	// and must restore the original realization exactly.
	if r.RouteThrough(0, []geom.Point{r.Conns[0].A}) {
		t.Fatal("occupied waypoint accepted")
	}
	afterDump := r.B.Layers[0].Dump() + r.B.Layers[1].Dump()
	if beforeDump != afterDump {
		t.Fatal("failed RouteThrough did not restore the board")
	}
	after := r.Metrics()
	if after.WireLength != beforeMetrics.WireLength || after.ViasAdded != beforeMetrics.ViasAdded {
		t.Errorf("metrics drifted: %+v vs %+v", after, beforeMetrics)
	}
	if err := r.B.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestRouteThroughUnroutedConnection(t *testing.T) {
	b := emptyBoard(t, 10, 10, 2)
	a := pinAt(t, b, geom.Pt(1, 1))
	c := pinAt(t, b, geom.Pt(8, 8))
	r := mustRouter(t, b, []Connection{{A: a, B: c}}, DefaultOptions())
	// Not routed yet: RouteThrough must refuse.
	if r.RouteThrough(0, nil) {
		t.Fatal("RouteThrough accepted an unrouted connection")
	}
}

func TestRouteThroughPreservesMethodAndCounts(t *testing.T) {
	r := routedSingle(t)
	wasMethod := r.RouteOf(0).Method
	w := r.B.Cfg.GridOf(geom.Pt(9, 12))
	if !r.RouteThrough(0, []geom.Point{w}) {
		t.Fatal("RouteThrough failed")
	}
	if got := r.RouteOf(0).Method; got != wasMethod {
		t.Errorf("method changed: %v -> %v", wasMethod, got)
	}
	m := r.Metrics()
	sum := 0
	for _, n := range m.ByMethod {
		sum += n
	}
	if sum != m.Routed {
		t.Errorf("method counts sum %d != routed %d after RouteThrough", sum, m.Routed)
	}
}

func TestTunedLeeRoundTrip(t *testing.T) {
	r := routedSingle(t)
	cellPs := []float64{5.0, 5.5, 5.5, 5.0}
	base := 0.0
	for _, ps := range r.RouteOf(0).Segs {
		base += float64(ps.Seg.Interval().Len()) * cellPs[ps.Layer]
	}
	// A reachable target well above the base delay.
	res := r.TunedLee(0, base+300, 60, cellPs, 60)
	if !res.Ok {
		t.Fatalf("tuned lee failed: %+v (base %v)", res, base)
	}
	if res.AchievedPs < base+300-60 || res.AchievedPs > base+300+60 {
		t.Errorf("achieved %v outside target band around %v", res.AchievedPs, base+300)
	}
	if err := r.B.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestTunedLeeRestoresOnExhaustion(t *testing.T) {
	r := routedSingle(t)
	cellPs := []float64{5.0, 5.5, 5.5, 5.0}
	beforeDump := r.B.Layers[0].Dump()
	// An absurd target no path can reach within one attempt budget.
	res := r.TunedLee(0, 1e6, 10, cellPs, 3)
	if res.Ok {
		t.Fatal("impossible target reported tuned")
	}
	if r.RouteOf(0).Method == NotRouted {
		t.Fatal("connection lost after failed tuning")
	}
	if got := r.B.Layers[0].Dump(); got != beforeDump {
		t.Fatal("board not restored after failed tuning")
	}
}
