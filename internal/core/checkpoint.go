package core

import (
	"fmt"

	"repro/internal/board"
	"repro/internal/geom"
)

// This file implements the router's checkpoint/resume protocol. A
// Checkpoint is taken only at connection boundaries with no transaction
// open, so it describes a fully consistent board: the pins plus the
// metal of every committed route, nothing else. Together with the resume
// cursor (pass, position within the pass, previous pass's unrouted
// count) and the metrics — which the node-budget windows and Table 1
// reporting read — that is the router's complete state: the algorithm is
// deterministic and keeps no other history, so a resumed run finishes
// bit-identically to an uninterrupted one.
//
// Core deliberately does not serialize checkpoints; boardio's snapshot
// codec does, keeping this package free of I/O.

// Checkpoint is the router's complete routing progress at one connection
// boundary.
type Checkpoint struct {
	// Pass, NextPos, PrevUnrouted form the resume cursor: the outer-loop
	// pass, the position within r.order to route next, and the unrouted
	// count after the previous pass (the loop's progress test).
	Pass         int
	NextPos      int
	PrevUnrouted int
	Metrics      Metrics
	// Routes holds one entry per connection, in input order.
	Routes []ConnRoute
}

// ConnRoute is one connection's realization in board coordinates,
// free of live segment handles so it can be serialized.
type ConnRoute struct {
	Method Method
	Segs   []CheckpointSeg
	Vias   []geom.Point
}

// CheckpointSeg locates one trace segment.
type CheckpointSeg struct {
	Layer, Ch, Lo, Hi int
}

// maybeCheckpoint emits a checkpoint through Options.CheckpointSink
// after every CheckpointEvery-th routing attempt. nextPos is the r.order
// position the run would continue from.
func (r *Router) maybeCheckpoint(pass, nextPos, prevUnrouted int) {
	if r.Opts.CheckpointEvery <= 0 || r.Opts.CheckpointSink == nil {
		return
	}
	r.sinceCk++
	if r.sinceCk < r.Opts.CheckpointEvery {
		return
	}
	r.sinceCk = 0
	if n := r.B.OpenTxs(); n != 0 {
		r.invariantStop(fmt.Errorf("core: checkpoint at a connection boundary with %d open transaction(s)", n))
		return
	}
	if err := r.Opts.CheckpointSink(r.checkpoint(pass, nextPos, prevUnrouted)); err != nil {
		if r.invariant == nil {
			r.invariant = err
		}
		r.abortReason = AbortCheckpoint
	}
}

// emitFinalCheckpoint flushes one last checkpoint through the sink at
// the cursor where an abort stopped the run. Without it, a coarse
// CheckpointEvery could discard up to CheckpointEvery-1 attempts of
// committed work on every graceful drain; with it, a drained run resumes
// from exactly the connection it stopped at. It is a no-op when
// checkpointing is off or when the last attempt already checkpointed
// (sinceCk == 0): the abort cursor then matches the last emission up to
// skip-only iterations, which replay identically. A sink failure is
// recorded like any checkpoint failure, but cannot abort the (already
// stopped) run.
func (r *Router) emitFinalCheckpoint() {
	if r.Opts.CheckpointEvery <= 0 || r.Opts.CheckpointSink == nil || r.sinceCk == 0 {
		return
	}
	r.sinceCk = 0
	if n := r.B.OpenTxs(); n != 0 {
		r.invariantStop(fmt.Errorf("core: final checkpoint at abort with %d open transaction(s)", n))
		return
	}
	if err := r.Opts.CheckpointSink(r.checkpoint(r.ckPass, r.ckPos, r.ckPrev)); err != nil {
		if r.invariant == nil {
			r.invariant = err
		}
		r.abortReason = AbortCheckpoint
	}
}

// checkpoint captures the router's state. The caller guarantees no
// transaction is open.
func (r *Router) checkpoint(pass, nextPos, prevUnrouted int) *Checkpoint {
	cp := &Checkpoint{
		Pass:         pass,
		NextPos:      nextPos,
		PrevUnrouted: prevUnrouted,
		Metrics:      r.metrics,
		Routes:       make([]ConnRoute, len(r.routes)),
	}
	for i := range r.routes {
		rt := &r.routes[i]
		cr := ConnRoute{Method: rt.Method}
		for _, ps := range rt.Segs {
			cr.Segs = append(cr.Segs, CheckpointSeg{
				Layer: ps.Layer, Ch: ps.Seg.Channel(), Lo: ps.Seg.Lo, Hi: ps.Seg.Hi,
			})
		}
		for _, pv := range rt.Vias {
			cr.Vias = append(cr.Vias, pv.At)
		}
		cp.Routes[i] = cr
	}
	return cp
}

// Resume rebuilds a router mid-run from a checkpoint. The board must be
// in its pre-routing state (pins placed, no routes) — typically a fresh
// board rebuilt from the same design; Resume re-creates the checkpointed
// metal on it. The returned router's Route call continues from the
// checkpoint cursor and, because the algorithm is deterministic, ends in
// the same final board as the run that wrote the checkpoint.
func Resume(b *board.Board, conns []Connection, opts Options, cp *Checkpoint) (*Router, error) {
	r, err := New(b, conns, opts)
	if err != nil {
		return nil, err
	}
	if len(cp.Routes) != len(conns) {
		return nil, fmt.Errorf("core: checkpoint holds %d routes for %d connections", len(cp.Routes), len(conns))
	}
	if cp.Pass < 0 || cp.Pass >= r.Opts.MaxPasses || cp.NextPos < 0 || cp.NextPos > len(r.order) {
		return nil, fmt.Errorf("core: checkpoint cursor (pass %d, pos %d) out of range", cp.Pass, cp.NextPos)
	}
	bounds := b.Cfg.Bounds()
	for i, cr := range cp.Routes {
		if cr.Method > PutBack {
			return nil, fmt.Errorf("core: checkpoint connection %d: unknown method %d", i, cr.Method)
		}
		if cr.Method == NotRouted || cr.Method == Trivial {
			if len(cr.Segs) != 0 || len(cr.Vias) != 0 {
				return nil, fmt.Errorf("core: checkpoint connection %d: %s route carries metal", i, cr.Method)
			}
			r.routes[i] = Route{Method: cr.Method}
			continue
		}
		id := r.connID(i)
		var rt Route
		for _, v := range cr.Vias {
			if !v.In(bounds) {
				return nil, fmt.Errorf("core: checkpoint connection %d: via %v off board", i, v)
			}
			pv, ok := b.PlaceVia(v, id)
			if !ok {
				return nil, fmt.Errorf("core: checkpoint connection %d: via %v overlaps earlier metal", i, v)
			}
			rt.Vias = append(rt.Vias, pv)
		}
		for _, cs := range cr.Segs {
			if cs.Layer < 0 || cs.Layer >= b.NumLayers() {
				return nil, fmt.Errorf("core: checkpoint connection %d: layer %d out of range", i, cs.Layer)
			}
			l := b.Layers[cs.Layer]
			if cs.Ch < 0 || cs.Ch >= l.NumChannels() ||
				cs.Lo < 0 || cs.Hi >= l.ChannelLength() || cs.Lo > cs.Hi {
				return nil, fmt.Errorf("core: checkpoint connection %d: segment %+v out of range", i, cs)
			}
			s := b.AddSegment(cs.Layer, cs.Ch, cs.Lo, cs.Hi, id)
			if s == nil {
				return nil, fmt.Errorf("core: checkpoint connection %d: segment %+v overlaps earlier metal", i, cs)
			}
			rt.Segs = append(rt.Segs, PlacedSeg{Layer: cs.Layer, Seg: s})
		}
		rt.Method = cr.Method
		r.routes[i] = rt
		if r.Opts.RecordRegions {
			// A restored route has no memo — the read region of the
			// search that found it died with the checkpointing process —
			// so for incremental purposes its metal is churn: any later
			// Reroute must treat the space it occupies as dirty.
			metal := emptyRect()
			for _, v := range cr.Vias {
				metal = metal.Union(geom.Bounding(v, v))
			}
			for _, cs := range cr.Segs {
				o := b.Layers[cs.Layer].Orient
				metal = metal.Union(geom.Bounding(
					b.Cfg.PointAt(o, cs.Ch, cs.Lo), b.Cfg.PointAt(o, cs.Ch, cs.Hi)))
			}
			r.churn[i] = metal
		}
	}
	r.metrics = cp.Metrics
	if r.obs != nil {
		// A resumed router publishes only this process's work: the
		// checkpointed counters become the already-flushed baseline
		// rather than being re-announced to the registry.
		r.obs.flushed = cp.Metrics
	}
	r.startPass = cp.Pass
	r.startPos = cp.NextPos
	r.resumePrev = cp.PrevUnrouted
	r.resumed = true
	return r, nil
}
