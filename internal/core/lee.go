package core

import (
	"time"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/layer"
)

// This file implements the generalized Lee's algorithm of Section 8.2
// with all three modifications:
//
//  1. the neighbors of a via are the via sites reachable from it by a
//     single-layer trace (found with sla.Vias), so neighbors radiate in a
//     cross from the point (Figure 11);
//  2. wavefronts spread from both ends simultaneously and a connection is
//     blocked as soon as either wavefront exhausts;
//  3. wavefronts are priority queues under a selectable cost function,
//     trading the minimum-via guarantee for search speed.
//
// The search state (marks, heaps, ban set, goal table) lives in the
// Router's searchScratch (scratch.go) and is reset generationally, so a
// steady-state search allocates nothing per expanded node.

// leeMark records how a via site was reached.
type leeMark struct {
	from  geom.Point // predecessor via (the expansion point)
	layer int8       // layer of the single-layer hop from→here
	hops  int32      // vias between here and the wavefront's source
	side  uint8      // 0 = a's wavefront, 1 = b's wavefront
}

// leeItem is one priority-queue entry. Sequence numbers break cost ties
// deterministically in insertion order, matching the paper's list
// behaviour for equal costs.
type leeItem struct {
	cost int64
	seq  int
	p    geom.Point
}

// hop is one single-layer link of a retraced path.
type hop struct {
	u, v  geom.Point
	layer int
}

// banSet holds hops that met during a search but could not be retraced
// (drilling the chain's own vias can split the free interval the Vias
// call saw). Banned hops are skipped on the retry searches.
type banSet map[hop]struct{}

// abortStride is how many Lee expansions may pass between abort
// checkpoints. Coarse enough that the time.Now/atomic-load cost vanishes
// against the expansion work, fine enough that a budget or cancellation
// lands within a few hundred nodes. Must be a power of two.
const abortStride = 256

// searchAborted is the per-expansion checkpoint: free when no budget or
// context is armed, one modulo plus the latched-flag test otherwise, and
// a full clock/cancellation check every abortStride expansions. It also
// charges the expansion against the connection's node budget.
func (r *Router) searchAborted() bool {
	if cap := r.Opts.NodeBudget; cap > 0 && r.metrics.LeeExpansions-r.connExpBase >= cap {
		r.nodeBudgetHit = true
		return true
	}
	if !r.abortArmed {
		return false
	}
	if r.abortReason != AbortNone {
		return true
	}
	return r.metrics.LeeExpansions&(abortStride-1) == 0 && r.abortCheck()
}

// leeSearch carries the state of one bidirectional search. The heavy
// stores are reached through sc; leeSearch itself is embedded in the
// scratch and reset in place per search.
type leeSearch struct {
	r       *Router
	sc      *searchScratch
	sources [2]geom.Point
	banned  banSet
	// best remembers the least-cost point ever inserted into each
	// wavefront; when a wavefront exhausts, its best point made the most
	// progress toward the target and becomes the rip-up center
	// (Section 8.3).
	best     [2]geom.Point
	bestCost [2]int64
	hasBest  [2]bool
	seq      int
	costCap  int64 // abandon threshold; 0 = unlimited

	// Goal-oriented mode (Options.Engine == EngineGoal): the wavefront
	// is ordered by accumulated path cost plus the admissible lower
	// bound of lowerbound.go. The per-point accumulated costs reuse the
	// scratch's delay slots (zeroed by setMark, so sources read 0).
	goal   bool
	viaPen int64

	// Delay-targeting mode for the rejected cost-function tuner
	// (tunedlee.go). The per-point path delays live in the scratch's
	// mark store, in fixed-point picoseconds.
	tuned    bool
	uni      bool // force a single wavefront regardless of router options
	targetFs int64
	cellFs   []int64
	fastFs   int64
	bridge   hop // set by chainThrough on a meet
}

// neighborBox returns the box passed to sla.Vias when expanding p on a
// layer of orientation o: the full board along the layer's preferred
// direction, radius via units across it (the cross of Figure 11).
func (r *Router) neighborBox(p geom.Point, o grid.Orientation) geom.Rect {
	d := r.Opts.Radius * r.B.Cfg.Pitch
	var box geom.Rect
	if o == grid.Horizontal {
		box = geom.R(0, p.Y-d, r.B.Cfg.Width-1, p.Y+d)
	} else {
		box = geom.R(p.X-d, 0, p.X+d, r.B.Cfg.Height-1)
	}
	return box.Intersect(r.B.Cfg.Bounds())
}

// cost evaluates the configured cost function for a neighbor n at the
// given hop count, aiming at target.
func (r *Router) cost(n, target geom.Point, hops int32) int64 {
	switch r.Opts.Cost {
	case CostPlusOne:
		return int64(hops)
	case CostDistance:
		return int64(n.ManhattanDist(target))
	default:
		return int64(n.ManhattanDist(target)) * int64(hops)
	}
}

// lee runs the generalized Lee search for connection i. On success it
// returns the materialized route. On failure it returns the point around
// which obstructions should be ripped up. A search whose retrace fails is
// retried with the offending hop banned, up to a small limit; the
// blockage in that case is the chain's own geometry, which ripping up
// other connections cannot cure.
func (r *Router) lee(i int) (Route, geom.Point, bool) {
	c := &r.Conns[i]
	return r.leePts(c.A, c.B, r.connID(i))
}

// leePts is lee for arbitrary endpoints. It is also the Lee phase's
// timing seam: with a registry armed it brackets the whole
// search-and-retrace in two clock reads (obs.go); without one it is a
// direct call, so unbudgeted runs stay untouched. Either way it adds no
// allocations to the flood (TestLeeSteadyStateAllocs covers both).
func (r *Router) leePts(a, b geom.Point, id layer.ConnID) (Route, geom.Point, bool) {
	if r.obs == nil {
		return r.leeRun(a, b, id)
	}
	defer r.obsPhase(phaseLee, time.Now())
	return r.leeRun(a, b, id)
}

// leeRun is the retrace-retry loop around leeOnce.
func (r *Router) leeRun(a, b geom.Point, id layer.ConnID) (Route, geom.Point, bool) {
	banned := r.scratch.banned
	clear(banned)
	const maxRetraceRetries = 6
	for try := 0; ; try++ {
		rt, failed, victim, ok := r.leeOnce(a, b, id, banned)
		if ok {
			return rt, geom.Point{}, true
		}
		if failed == nil || try >= maxRetraceRetries {
			return Route{}, victim, false
		}
		banned[*failed] = struct{}{}
	}
}

// leeOnce runs a single bidirectional search. Return values: the route on
// success; the hop whose retrace failed (nil if the search itself was
// blocked); the rip-up victim point; success.
func (r *Router) leeOnce(a, b geom.Point, id layer.ConnID, banned banSet) (Route, *hop, geom.Point, bool) {
	s := r.scratch.beginSearch(r, a, b)
	s.banned = banned
	if r.Opts.Engine == EngineGoal {
		s.goal = true
		s.viaPen = r.goalViaPen()
	}
	if f := int64(r.Opts.CostCapFactor); f > 0 {
		d0 := int64(a.ManhattanDist(b))
		if r.Opts.Cost == CostPlusOne && !s.goal {
			// Hop counts, not distances: cap the path length in vias.
			d0 = 4
		}
		// The cap formula is shared with the goal engine deliberately:
		// goal estimates dominate classic ones pointwise (the via term
		// only adds), so under the same cap a provably-blocked flood is
		// abandoned no later — and usually much sooner — than classic
		// would abandon it.
		s.costCap = f * (d0 + 8*int64(r.B.Cfg.Pitch))
	}

	// Seed both wavefronts (Figures 12 and 13). In unidirectional mode
	// (the E-BIDIR ablation) b's one-hop neighborhood still has to be
	// computed once — the original algorithm's target test "the neighbor
	// is b" is unreachable here because b's cell is occupied by its pin;
	// reaching any site one hop from b is the equivalent test — but it is
	// never expanded further, so the wavefront proper grows from a only.
	if meet, chain := s.expand(a, 0); meet {
		return r.retrace(a, b, id, chain)
	}
	if meet, chain := s.expand(b, 1); meet {
		return r.retrace(a, b, id, chain)
	}

	for {
		side, ok := s.pickSide()
		if !ok {
			r.metrics.LeeBlocked++
			return Route{}, nil, s.victim(side), false
		}
		if r.searchAborted() {
			// Nothing has been placed yet (retrace only runs on a meet),
			// so failing here leaves the board untouched. The caller
			// decides whether the victim is usable; after a whole-route
			// abort it never rips up.
			return Route{}, nil, s.victim(side), false
		}
		it := s.sc.heaps[side].pop()
		if s.costCap > 0 && it.cost > s.costCap {
			// Every remaining entry on both heaps costs at least this
			// much (pickSide chose the cheaper side): the search is
			// hopeless within budget. Fail fast into rip-up.
			r.metrics.LeeBlocked++
			return Route{}, nil, s.victim(side), false
		}
		r.metrics.LeeExpansions++
		if meet, chain := s.expand(it.p, side); meet {
			return r.retrace(a, b, id, chain)
		}
	}
}

// pickSide chooses the wavefront to expand next: the one whose cheapest
// entry costs less. It returns ok=false, naming the exhausted side, when
// the search is blocked.
func (s *leeSearch) pickSide() (int, bool) {
	h := &s.sc.heaps
	if !s.r.Opts.Bidirectional || s.uni {
		if h[0].len() == 0 {
			return 0, false
		}
		return 0, true
	}
	switch {
	case h[0].len() == 0:
		return 0, false
	case h[1].len() == 0:
		return 1, false
	case h[0].top().cost <= h[1].top().cost:
		return 0, true
	default:
		return 1, true
	}
}

// victim returns the rip-up center after side's wavefront exhausted: the
// least-cost point ever inserted into it, or the source itself if the
// wavefront never grew at all.
func (s *leeSearch) victim(side int) geom.Point {
	if s.hasBest[side] {
		return s.best[side]
	}
	return s.sources[side]
}

// expand generates the neighbors of p for the given side. If a neighbor
// is already marked by the other side the wavefronts have met and the
// full via chain is returned.
func (s *leeSearch) expand(p geom.Point, side int) (bool, []hop) {
	r := s.r
	sc := s.sc
	target := s.sources[1-side]
	pm, _ := sc.lookMark(p)
	hops := pm.hops + 1

	for li, l := range r.B.Layers {
		box := r.neighborBox(p, l.Orient)
		r.metrics.ViasCalls++
		for _, n := range r.search.Vias(l, p, box, r.viaFree) {
			if _, bad := s.banned[hop{u: p, v: n, layer: li}]; bad {
				continue
			}
			if m, marked := sc.lookMark(n); marked {
				if int(m.side) != side {
					if s.uni && s.tuned {
						// Defer: queue the goal point under the tuned
						// cost; the meet happens when it pops.
						if _, seen := sc.goalFrom[n]; !seen {
							sc.goalFrom[n] = hop{u: p, v: n, layer: li}
							d := sc.delayOf(p) + int64(p.ManhattanDist(n))*s.cellFs[li]
							est := d + int64(n.ManhattanDist(target))*s.fastFs - s.targetFs
							if est < 0 {
								est = -est
							}
							s.seq++
							sc.heaps[0].push(leeItem{cost: est, seq: s.seq, p: n})
						}
						continue
					}
					// The wavefronts touch (Figure 14): build the chain
					// through the meeting point n.
					return true, s.chainThrough(p, n, li, side)
				}
				continue
			}
			sc.setMark(n, leeMark{from: p, layer: int8(li), hops: hops, side: uint8(side)})
			var cost int64
			if s.tuned {
				d := sc.delayOf(p) + int64(p.ManhattanDist(n))*s.cellFs[li]
				sc.setDelay(n, d)
				est := d + int64(n.ManhattanDist(target))*s.fastFs - s.targetFs
				if est < 0 {
					est = -est
				}
				cost = est
			} else if s.goal {
				// The classic figure of merit sharpened with the
				// preprocessed bound: the remaining-cost estimate is the
				// Manhattan distance plus one via penalty when the
				// lower-bound index proves the hop n sits on cannot reach
				// the target — every remaining path then provably spends
				// at least one more via, so the wavefront defers such
				// points and floods provably-blocked corridors last (or,
				// under the cost cap, not at all).
				h := int64(n.ManhattanDist(target))
				if r.lb.needsVia(n, target, r.Opts.Radius) {
					h += s.viaPen
				}
				cost = h * int64(hops)
			} else {
				cost = r.cost(n, target, hops)
			}
			if !s.hasBest[side] || cost < s.bestCost[side] {
				s.hasBest[side], s.bestCost[side], s.best[side] = true, cost, n
			}
			if side == 0 || (r.Opts.Bidirectional && !s.uni) {
				s.seq++
				sc.heaps[side].push(leeItem{cost: cost, seq: s.seq, p: n})
			}
		}
	}
	return false, nil
}

// chainThrough assembles the ordered hop list from source a to source b
// given that expanding p (on side) reached n, which the other side had
// already marked.
func (s *leeSearch) chainThrough(p, n geom.Point, li, side int) []hop {
	s.bridge = hop{u: p, v: n, layer: li}
	// Walk one side from a point back to its source, producing hops in
	// back-to-source order.
	walk := func(q geom.Point) []hop {
		var hs []hop
		for {
			m, _ := s.sc.lookMark(q)
			if m.from == q {
				return hs
			}
			hs = append(hs, hop{u: m.from, v: q, layer: int(m.layer)})
			q = m.from
		}
	}
	bridge := hop{u: p, v: n, layer: li}

	aSide, bSide := walk(p), walk(n)
	if side == 1 {
		aSide, bSide = walk(n), walk(p)
		bridge = hop{u: p, v: n, layer: li} // still traced from the expansion point
	}
	// aSide runs from deep point back to a: reverse it.
	chain := make([]hop, 0, len(aSide)+1+len(bSide))
	for i := len(aSide) - 1; i >= 0; i-- {
		chain = append(chain, aSide[i])
	}
	chain = append(chain, bridge)
	chain = append(chain, bSide...)
	return chain
}

// retrace materializes a met search (Figure 15): drill every interior via
// of the chain, then construct each hop's trace with Trace. A hop whose
// trace can no longer be completed (possible because drilling an interior
// via splits the free interval the earlier Vias call saw) aborts the
// route and is reported so the caller can ban it and search again.
func (r *Router) retrace(a, b geom.Point, id layer.ConnID, chain []hop) (Route, *hop, geom.Point, bool) {
	var rt Route
	for ci, h := range chain {
		for _, pt := range [2]geom.Point{h.u, h.v} {
			if pt == a || pt == b {
				continue
			}
			r.trackPt(pt)
			if r.B.ViaFree(pt) {
				if !r.drill(&rt, pt, id) {
					r.rollback(&rt)
					return Route{}, &chain[ci], pt, false
				}
			}
		}
	}
	for ci, h := range chain {
		li := h.layer
		l := r.B.Layers[li]
		box := r.neighborBox(h.u, l.Orient)
		r.metrics.TraceCalls++
		runs, ok := r.search.Trace(l, h.u, h.v, box)
		if !ok {
			r.rollback(&rt)
			return Route{}, &chain[ci], h.u, false
		}
		if !r.materialize(&rt, li, runs, id) {
			return Route{}, &chain[ci], h.u, false
		}
	}
	return rt, nil, geom.Point{}, true
}
