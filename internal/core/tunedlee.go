package core

import (
	"repro/internal/geom"
	"repro/internal/layer"
)

// This file reproduces the paper's FIRST length-tuning implementation —
// the one that was tried and rejected (Section 10.1): the Lee cost
// function is modified to prefer points whose accumulated path delay plus
// estimated remaining delay lies close to the target. Because the
// estimate cannot know which layer speeds the remaining path will use,
// "many candidate solutions for the path were found, which when completed
// with Trace proved to be too fast or too slow ... Lee's algorithm was
// overwhelmed with false solutions." The E-TUNE ablation benchmark
// measures exactly that: attempts and wall time versus the detour tuner.

// TunedLeeResult reports one cost-function tuning attempt.
type TunedLeeResult struct {
	Ok         bool
	Attempts   int     // full searches run (restarts after false solutions)
	AchievedPs float64 // delay of the final realization
}

// TunedLee re-routes connection i with a delay-targeting Lee search.
// cellPs gives the per-grid-cell delay of each layer; tolPs is the
// acceptance band around targetPs. On failure the original realization is
// restored. maxAttempts bounds the restart loop over false solutions.
func (r *Router) TunedLee(i int, targetPs, tolPs float64, cellPs []float64, maxAttempts int) TunedLeeResult {
	if r.routes[i].Method == NotRouted {
		return TunedLeeResult{}
	}
	c := &r.Conns[i]
	id := r.connID(i)
	oldMethod := r.routes[i].Method
	r.beginConnBudget()
	ripTx := r.unrealize(i)

	const fsPerPs = 1024 // fixed-point scale for integral heap costs
	cellFs := make([]int64, len(cellPs))
	fastFs := int64(1) << 62
	for li, d := range cellPs {
		cellFs[li] = int64(d * fsPerPs)
		if cellFs[li] < fastFs {
			fastFs = cellFs[li]
		}
	}
	targetFs := int64(targetPs * fsPerPs)

	measure := func(rt *Route) float64 {
		total := 0.0
		for _, ps := range rt.Segs {
			total += float64(ps.Seg.Interval().Len()) * cellPs[ps.Layer]
		}
		return total
	}

	res := TunedLeeResult{}
	banned := r.scratch.banned
	clear(banned)
	for res.Attempts < maxAttempts {
		res.Attempts++
		rt, failedHop, _, ok := r.tunedLeeOnce(c.A, c.B, id, banned, targetFs, cellFs, fastFs)
		if !ok {
			if failedHop == nil {
				break // search space exhausted
			}
			banned[*failedHop] = struct{}{}
			continue
		}
		got := measure(&rt)
		if got >= targetPs-tolPs && got <= targetPs+tolPs {
			ripTx.Commit() // the old realization stays off the board
			r.commit(i, rt, oldMethod)
			res.Ok = true
			res.AchievedPs = got
			return res
		}
		// A false solution: plausible under the cost estimate, wrong when
		// realized. Tear it down, forbid the meeting hop and search again.
		r.rollback(&rt)
		if failedHop != nil {
			banned[*failedHop] = struct{}{}
		}
	}
	if !r.restore(i, ripTx, oldMethod) {
		if r.abortReason == AbortNone {
			panic("core: TunedLee failed to restore the original route")
		}
		return res
	}
	res.AchievedPs = measure(r.RouteOf(i))
	return res
}

// tunedLeeOnce is leeOnce with the delay-targeting cost. On success the
// returned hop is the meeting bridge (so a false solution can be banned).
func (r *Router) tunedLeeOnce(a, b geom.Point, id layer.ConnID, banned banSet,
	targetFs int64, cellFs []int64, fastFs int64) (Route, *hop, geom.Point, bool) {

	// The tuned search runs unidirectionally: a bidirectional search
	// meets the instant the two frontiers touch — at neighbor generation,
	// before the cost ordering has had any say — so it always returns a
	// near-minimal path no matter the target. With a single wavefront,
	// b's one-hop ring acts as the goal set and points are only expanded
	// in target-cost order.
	sc := &r.scratch
	s := sc.beginSearch(r, a, b)
	s.banned = banned
	s.tuned, s.uni = true, true
	s.targetFs, s.cellFs, s.fastFs = targetFs, cellFs, fastFs
	clear(sc.goalFrom)

	finish := func(chain []hop) (Route, *hop, geom.Point, bool) {
		rt, failed, victim, ok := r.retrace(a, b, id, chain)
		if !ok {
			return rt, failed, victim, false
		}
		// Report the meeting bridge so TunedLee can ban this solution if
		// its realized delay misses the target.
		bridge := s.bridge
		return rt, &bridge, geom.Point{}, true
	}

	if meet, chain := s.expand(a, 0); meet {
		return finish(chain)
	}
	if meet, chain := s.expand(b, 1); meet {
		return finish(chain)
	}
	for {
		side, ok := s.pickSide()
		if !ok {
			return Route{}, nil, s.victim(side), false
		}
		if r.searchAborted() {
			return Route{}, nil, s.victim(side), false
		}
		it := sc.heaps[side].pop()
		if gf, isGoal := sc.goalFrom[it.p]; isGoal {
			if m, _ := sc.lookMark(it.p); m.side == 1 {
				// A b-ring point popped in cost order: the path delay is
				// as close to the target as the frontier allows.
				return finish(s.chainThrough(gf.u, it.p, gf.layer, 0))
			}
		}
		r.metrics.LeeExpansions++
		if meet, chain := s.expand(it.p, side); meet {
			return finish(chain)
		}
	}
}
