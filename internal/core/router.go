package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/board"
	"repro/internal/geom"
	"repro/internal/layer"
	"repro/internal/sla"
)

// Router routes a fixed list of connections on one board. Create it with
// New, then call Route once; the Router retains the realized routes for
// inspection, rendering and length tuning.
type Router struct {
	B     *board.Board
	Opts  Options
	Conns []Connection

	routes  []Route // indexed like Conns
	order   []int   // routing order (indices into Conns)
	ripped  map[int]*board.Tx
	search  *sla.Searcher
	metrics Metrics

	// scratch is the reusable Lee/one-via search state (scratch.go);
	// viaFree caches the B.ViaFree method value so the hot expansion
	// loop does not materialize a new closure per call.
	scratch searchScratch
	viaFree func(geom.Point) bool

	// obs carries the pre-resolved registry handles when
	// Options.Metrics is set, nil otherwise (obs.go). All observation
	// happens at connection/pass boundaries via obsFlush plus clock
	// reads around the ladder phases; the search loops never touch it.
	obs *routerObs

	// Abort state (see RouteContext). abortArmed is true only when a
	// time budget or a cancellable context is in play, so unbudgeted
	// runs skip even the cheap checks and stay bit-identical. The
	// cancelled flag is the only field another goroutine touches; it is
	// a pointer so the concurrent engine's worker routers can share the
	// master's flag and notice a cancellation mid-search.
	abortArmed  bool
	deadline    time.Time
	cancelled   *atomic.Bool
	abortReason AbortReason
	invariant   error

	// track, when non-nil, accumulates the read/write region of the
	// connection attempt in flight. The concurrent engine's worker
	// routers set it (concurrent.go), as does routeTurn under
	// Options.RecordRegions (incremental.go); on a plain sequential
	// router the cost is one nil check per placement.
	track *readRegion

	// lb is the goal-oriented engine's preprocessed lower-bound index
	// (lowerbound.go), nil under EngineClassic.
	lb *lbIndex

	// Incremental re-routing state (incremental.go), live only under
	// Options.RecordRegions. memos holds, per connection index, the
	// last clean (zero-rip-up) routing turn: its metal, read region and
	// pass. churn accumulates the mutation extents of every turn that
	// was not clean. turnRegion/turnRect are the per-turn accumulators
	// routeTurn resets; the board mutation hook installed by New feeds
	// turnRect. replay is non-nil on a router built by Reroute; curPass
	// and inEscalate locate the turn in flight for memo bookkeeping.
	memos      map[int]*connMemo
	churn      map[int]geom.Rect
	turnRegion readRegion
	turnRect   geom.Rect
	replay     *replayState
	curPass    int
	inEscalate bool

	// Incremental outcome counters (incremental metric series): turns
	// adopted straight from a memo, and turns an edit forced through
	// the full ladder on a replay router.
	incAdopted  int
	incRerouted int

	// Speculation outcome counters (concurrent runs only): attempts
	// adopted as-is, speculative successes discarded because a prior
	// commit overlapped their region (then re-routed sequentially), and
	// speculative failures routed sequentially at their merge turn.
	specAdopted   int
	specConflicts int
	specMisses    int

	// Per-connection node-budget state: LeeExpansions at the start of
	// the connection being routed, and whether its budget ran out.
	connExpBase   int
	nodeBudgetHit bool

	// Checkpoint/resume state. sinceCk counts routing attempts since the
	// last checkpoint; the start* fields are the resume cursor installed
	// by Resume (zero for a fresh run); the ck* fields track the current
	// outer-loop cursor so an abort can flush one final checkpoint from
	// exactly where the run stopped (emitFinalCheckpoint).
	sinceCk    int
	startPass  int
	startPos   int
	resumePrev int
	resumed    bool
	ckPass     int
	ckPos      int
	ckPrev     int
}

// New builds a router for the given board and connections. The
// connections are copied; the board is mutated by Route.
func New(b *board.Board, conns []Connection, opts Options) (*Router, error) {
	if opts.Radius < 0 {
		return nil, fmt.Errorf("core: negative radius %d", opts.Radius)
	}
	if opts.Radius == 0 {
		opts.Radius = 1
	}
	if opts.MaxRipupRounds <= 0 {
		opts.MaxRipupRounds = DefaultOptions().MaxRipupRounds
	}
	if opts.RipupRadius <= 0 {
		opts.RipupRadius = DefaultOptions().RipupRadius
	}
	if opts.MaxPasses <= 0 {
		opts.MaxPasses = DefaultOptions().MaxPasses
	}
	bounds := b.Cfg.Bounds()
	for i, c := range conns {
		if !c.A.In(bounds) || !c.B.In(bounds) {
			return nil, fmt.Errorf("core: connection %d endpoint off board: %v-%v", i, c.A, c.B)
		}
		if !opts.AllowOffGrid && (!b.Cfg.IsViaSite(c.A) || !b.Cfg.IsViaSite(c.B)) {
			return nil, fmt.Errorf("core: connection %d endpoint off via grid: %v-%v (set AllowOffGrid to permit)", i, c.A, c.B)
		}
	}
	if opts.Paranoid {
		b.VerifyRollbacks = true
	}
	r := &Router{
		B:     b,
		Opts:  opts,
		Conns: append([]Connection(nil), conns...),
	}
	r.routes = make([]Route, len(r.Conns))
	r.ripped = make(map[int]*board.Tx)
	r.cancelled = new(atomic.Bool)
	r.search = sla.NewSearcher(b.Cfg)
	r.order = SortOrder(b, r.Conns, opts.Sort)
	r.scratch.init(b.Cfg)
	r.viaFree = b.ViaFree
	if opts.Engine == EngineGoal {
		r.lb = newLBIndex(b)
	}
	if opts.RecordRegions {
		r.memos = make(map[int]*connMemo)
		r.churn = make(map[int]geom.Rect)
		r.turnRect = emptyRect()
		b.AddMutateHook(func(rec board.Record) {
			r.turnRect = r.turnRect.Union(b.RecordRect(rec))
		})
		r.search.TrackReads(true)
	}
	if opts.Metrics != nil {
		r.obs = newRouterObs(opts.Metrics)
	}
	return r, nil
}

// SortOrder returns the routing order for conns. With doSort set it
// applies the Section 6 keys — min(dx,dy) major, max(dx,dy) minor, both
// in via units — so the straightest, then shortest, connections come
// first; otherwise it returns input order.
func SortOrder(b *board.Board, conns []Connection, doSort bool) []int {
	order := make([]int, len(conns))
	for i := range order {
		order[i] = i
	}
	if !doSort {
		return order
	}
	type key struct{ straight, length int }
	keys := make([]key, len(conns))
	for i, c := range conns {
		dx, dy := b.Cfg.ViaDist(c.A, c.B)
		if dx > dy {
			dx, dy = dy, dx
		}
		keys[i] = key{dx, dy}
	}
	sort.SliceStable(order, func(a, b int) bool {
		ka, kb := keys[order[a]], keys[order[b]]
		if ka.straight != kb.straight {
			return ka.straight < kb.straight
		}
		return ka.length < kb.length
	})
	return order
}

// RouteOf returns the realized route of connection i (as indexed in the
// input slice). The route is empty if the connection failed.
func (r *Router) RouteOf(i int) *Route { return &r.routes[i] }

// Metrics returns the counters accumulated so far.
func (r *Router) Metrics() Metrics { return r.metrics }

// SpecStats reports the speculation outcomes of a concurrent run
// (Options.Workers > 1): connections adopted straight from a worker's
// speculative result, speculative successes discarded because a prior
// commit overlapped their read region, and speculative failures — all
// three re-routed sequentially at their merge turn. Sequential runs
// report zeros. These are operational counters, deliberately kept out
// of Metrics (whose integer serialization is part of the snapshot
// codec); the obs registry exports them as grr_router_spec_* series.
func (r *Router) SpecStats() (adopted, conflicts, misses int) {
	return r.specAdopted, r.specConflicts, r.specMisses
}

// Route runs the complete algorithm of Section 8.4 and returns the
// result. It may be called only once per Router.
func (r *Router) Route() Result { return r.RouteContext(context.Background()) }

// RouteContext is Route under a context: cancelling ctx (or exceeding
// Options.TimeBudget) stops routing at the next abort checkpoint.
// Checkpoints sit between connections and, inside a Lee search, on a
// coarse expansion stride, so an abort lands within milliseconds without
// taxing the zero-allocation hot loop. The board is always left
// consistent — any in-flight placement is rolled back and rip-up victims
// are put back — and the Result reports the reason in Aborted alongside
// the metrics of the partial run.
func (r *Router) RouteContext(ctx context.Context) Result {
	if d := r.Opts.TimeBudget; d > 0 {
		r.deadline = time.Now().Add(d)
		r.abortArmed = true
	}
	// A context deadline propagates into the same machinery as
	// Options.TimeBudget (whichever is sooner wins), so a caller-imposed
	// deadline — the grrd job daemon's per-job wall clock — reports
	// AbortTime rather than a bare cancellation.
	if ctx != nil {
		if dl, ok := ctx.Deadline(); ok {
			if r.deadline.IsZero() || dl.Before(r.deadline) {
				r.deadline = dl
			}
			r.abortArmed = true
		}
	}
	if ctx != nil && ctx.Done() != nil {
		r.abortArmed = true
		if ctx.Err() != nil {
			// Already cancelled: don't race the watcher goroutine.
			r.cancelled.Store(true)
		} else {
			stop := context.AfterFunc(ctx, func() { r.cancelled.Store(true) })
			defer stop()
		}
	}
	return r.run()
}

// abortCheck latches and reports the abort decision. Cheap enough for
// per-connection use; the Lee inner loop additionally gates it on
// abortArmed and a stride so unbudgeted searches pay nothing.
func (r *Router) abortCheck() bool {
	if r.abortReason != AbortNone {
		return true
	}
	if !r.abortArmed {
		return false
	}
	// Deadline before cancellation: when a context deadline expires, its
	// Done channel fires too, and the more specific reason should win.
	if !r.deadline.IsZero() && time.Now().After(r.deadline) {
		r.abortReason = AbortTime
		return true
	}
	if r.cancelled.Load() {
		r.abortReason = AbortCancelled
		return true
	}
	return false
}

// beginConnBudget opens a fresh node-budget window for one connection.
func (r *Router) beginConnBudget() {
	r.connExpBase = r.metrics.LeeExpansions
	r.nodeBudgetHit = false
}

// run is the Section 8.4 outer loop. A resumed router (see Resume)
// re-enters the loop at the checkpointed cursor — pass, position within
// the pass, and the previous pass's unrouted count — and from there
// behaves exactly like the uninterrupted run: the algorithm consumes no
// other history.
func (r *Router) run() Result {
	if r.Opts.Workers > 1 && len(r.Conns) > 0 {
		return r.runConcurrent()
	}
	r.metrics.Connections = len(r.Conns)
	prevUnrouted := len(r.Conns) + 1
	startPos := 0
	if r.resumed {
		prevUnrouted = r.resumePrev
		startPos = r.startPos
	}
	r.ckPass, r.ckPos, r.ckPrev = r.startPass, startPos, prevUnrouted
passes:
	for pass := r.startPass; pass < r.Opts.MaxPasses; pass++ {
		var passT0 time.Time
		if r.obs != nil {
			passT0 = time.Now()
		}
		r.curPass = pass
		for pi := startPos; pi < len(r.order); pi++ {
			i := r.order[pi]
			r.ckPass, r.ckPos, r.ckPrev = pass, pi, prevUnrouted
			if r.abortCheck() {
				break passes
			}
			if r.routes[i].Method == NotRouted {
				r.routeTurn(i)
				r.ckPos = pi + 1
				r.obsFlush()
				r.maybeCheckpoint(pass, pi+1, prevUnrouted)
				if r.abortReason != AbortNone {
					break passes
				}
			}
		}
		startPos = 0
		r.metrics.Passes++
		if r.obs != nil {
			r.obs.passTimes.Observe(time.Since(passT0).Seconds())
		}
		if !r.paranoidCheck(fmt.Sprintf("pass %d", pass)) {
			break
		}
		// Count what is actually unrouted at the end of the pass: rip-up
		// victims whose put-back failed are unrouted again even though
		// their own routeOne call succeeded earlier in the pass.
		unrouted := r.countUnrouted()
		if unrouted == 0 || unrouted >= prevUnrouted {
			// No progress: the problem is too hard; stop rather than rip
			// up connections indefinitely (Section 8.4).
			break
		}
		prevUnrouted = unrouted
	}
	return r.finish()
}

// countUnrouted returns the number of currently unrouted connections.
func (r *Router) countUnrouted() int {
	unrouted := 0
	for i := range r.routes {
		if r.routes[i].Method == NotRouted {
			unrouted++
		}
	}
	return unrouted
}

// finish is the tail shared by the sequential and concurrent outer
// loops: escalation, the final abort checkpoint, and result assembly.
func (r *Router) finish() Result {
	if r.Opts.Escalate && r.abortReason == AbortNone {
		unrouted := r.countUnrouted()
		// Escalation is for cracking a handful of local congestion
		// knots. A large residue means the problem is infeasible (the
		// kdj11 2-layer case); burning the stronger settings on it
		// would multiply the runtime without completing the board.
		if unrouted > 0 && unrouted <= max(20, len(r.Conns)/50) {
			r.escalate()
			r.paranoidCheck("escalation")
		}
	}

	// A budget or cancellation abort stops the run between checkpoints;
	// flush one final checkpoint at the abort cursor so a graceful drain
	// loses no committed work regardless of the checkpoint cadence.
	// Invariant and checkpoint aborts are excluded: the board is suspect
	// in the first case, the sink is the failure in the second.
	if r.abortReason == AbortTime || r.abortReason == AbortCancelled {
		r.emitFinalCheckpoint()
	}

	var res Result
	for i := range r.routes {
		if r.routes[i].Method == NotRouted {
			res.FailedConns = append(res.FailedConns, i)
		}
	}
	r.metrics.Routed = len(r.Conns) - len(res.FailedConns)
	r.metrics.Failed = len(res.FailedConns)
	r.obsFlush()
	res.Metrics = r.metrics
	res.Aborted = r.abortReason
	res.Invariant = r.invariant
	return res
}

// paranoidCheck, under Options.Paranoid, audits the board and
// cross-checks route ownership after the named phase. It reports false —
// recording the violation and aborting the run — on the first breach.
func (r *Router) paranoidCheck(phase string) bool {
	if !r.Opts.Paranoid {
		return true
	}
	if err := r.auditRoutes(phase); err != nil {
		r.abortReason = AbortInvariant
		r.invariant = err
		return false
	}
	return true
}

// auditRoutes is the paranoid invariant sweep: the board's own channel
// and via-map audit, then a check that every routed connection still owns
// the exact metal its Route records (segments stored and carrying the
// connection's ID, via segments likewise).
func (r *Router) auditRoutes(phase string) error {
	if err := r.B.Audit(); err != nil {
		return fmt.Errorf("core: paranoid audit after %s: %w", phase, err)
	}
	for i := range r.routes {
		rt := &r.routes[i]
		if rt.Method == NotRouted || rt.Method == Trivial {
			continue
		}
		id := r.connID(i)
		for _, ps := range rt.Segs {
			if !ps.Seg.Stored() {
				return fmt.Errorf("core: paranoid audit after %s: connection %d (%s): segment on layer %d removed behind the route's back",
					phase, i, rt.Method, ps.Layer)
			}
			if ps.Seg.Owner != id {
				return fmt.Errorf("core: paranoid audit after %s: connection %d (%s): segment on layer %d owned by %d, want %d",
					phase, i, rt.Method, ps.Layer, ps.Seg.Owner, id)
			}
		}
		for _, pv := range rt.Vias {
			for li, s := range pv.Segs {
				if s == nil {
					continue
				}
				if !s.Stored() || s.Owner != id {
					return fmt.Errorf("core: paranoid audit after %s: connection %d (%s): via %v layer %d no longer owned",
						phase, i, rt.Method, pv.At, li)
				}
			}
		}
	}
	return nil
}

// escalate retries the stragglers under progressively stronger, slower
// settings (see Options.Escalate). The option tweaks are restored before
// returning.
func (r *Router) escalate() {
	saved := r.Opts
	defer func() { r.Opts = saved }()
	r.Opts.CostCapFactor = 0
	r.Opts.MaxRipupRounds *= 2
	// Escalation turns run under tweaked options, so their results are
	// never memoized for incremental adoption (recordTurn files them
	// under churn); the flag also blocks memo adoption while set.
	r.inEscalate = true
	defer func() { r.inEscalate = false }()

	for stage := 1; stage <= 2; stage++ {
		r.Opts.Radius = saved.Radius + stage
		prev := len(r.Conns) + 1
		for pass := 0; pass < r.Opts.MaxPasses; pass++ {
			unrouted := 0
			for _, i := range r.order {
				if r.abortCheck() {
					return
				}
				if r.routes[i].Method == NotRouted {
					r.routeTurn(i)
					r.obsFlush()
				}
			}
			for i := range r.routes {
				if r.routes[i].Method == NotRouted {
					unrouted++
				}
			}
			if unrouted == 0 {
				return
			}
			if unrouted >= prev {
				break
			}
			prev = unrouted
		}
	}
}

// routeOne tries the strategy ladder for connection i, ripping up
// obstacles between attempts, then puts ripped victims back. It reports
// whether the connection ended up routed.
func (r *Router) routeOne(i int) bool {
	c := &r.Conns[i]
	if c.A == c.B {
		r.routes[i] = Route{Method: Trivial}
		r.metrics.ByMethod[Trivial]++
		return true
	}
	r.beginConnBudget()

	var ripped []int
	defer func() { r.putBack(ripped) }()

	for round := 0; ; round++ {
		if rt, ok := r.zeroViaT(i); ok {
			r.commit(i, rt, ZeroVia)
			return true
		}
		if rt, ok := r.oneViaT(i); ok {
			r.commit(i, rt, OneVia)
			return true
		}
		rt, best, ok := r.lee(i)
		if ok {
			r.commit(i, rt, Lee)
			return true
		}
		// An aborted or budget-exhausted search failed for reasons no
		// rip-up can cure: give up on the connection (the deferred
		// putBack still restores this round's victims).
		if r.abortReason != AbortNone {
			return false
		}
		if r.nodeBudgetHit {
			r.metrics.FailNodeBudget++
			return false
		}
		if round >= r.Opts.MaxRipupRounds {
			r.metrics.FailRounds++
			return false
		}
		victims := r.selectVictims(best, i)
		if len(victims) == 0 {
			r.metrics.FailNoVictims++
			return false // nothing rippable is in the way
		}
		for _, v := range victims {
			r.ripUp(v)
			ripped = append(ripped, v)
		}
	}
}

// commit records a successful route, sealing its transaction.
func (r *Router) commit(i int, rt Route, m Method) {
	if rt.tx != nil {
		rt.tx.Commit()
		rt.tx = nil
	}
	rt.Method = m
	r.routes[i] = rt
	r.metrics.ByMethod[m]++
	for _, ps := range rt.Segs {
		r.metrics.WireLength += ps.Seg.Interval().Len()
	}
	r.metrics.ViasAdded += len(rt.Vias)
}

// connID maps a connection index to its segment-owner ID.
func (r *Router) connID(i int) layer.ConnID { return layer.ConnID(i + r.Opts.IDBase) }

// tx returns rt's open transaction, beginning it lazily on the first
// placement so routes that never touch the board never open one.
func (r *Router) tx(rt *Route) *board.Tx {
	if rt.tx == nil {
		rt.tx = r.B.Begin()
	}
	return rt.tx
}

// invariantStop aborts the run on a broken journal invariant, keeping
// the first error.
func (r *Router) invariantStop(err error) {
	if r.invariant == nil {
		r.invariant = err
	}
	r.abortReason = AbortInvariant
}

// materialize places the runs of one single-layer trace, appending the
// created segments to rt. On a collision it rolls the whole route back
// and reports failure; collisions here are rare (they require a via
// drilled mid-materialization to have split an interval that a pending
// junction needed) and the caller simply tries another strategy.
func (r *Router) materialize(rt *Route, li int, runs []sla.Run, id layer.ConnID) bool {
	for _, run := range runs {
		r.trackRun(li, run.Chan, run.Span.Lo, run.Span.Hi)
		s := r.tx(rt).AddSegment(li, run.Chan, run.Span.Lo, run.Span.Hi, id)
		if s == nil {
			r.rollback(rt)
			return false
		}
		rt.Segs = append(rt.Segs, PlacedSeg{Layer: li, Seg: s})
	}
	return true
}

// rollback undoes everything rt has placed by rolling back its
// transaction. rt holds only placements, so the journal inverses are
// removals and cannot conflict; any error is a broken invariant
// (rollback-verification failure under Paranoid) and aborts the run.
func (r *Router) rollback(rt *Route) {
	if rt.tx != nil {
		if _, err := rt.tx.Rollback(); err != nil {
			r.invariantStop(err)
		}
		rt.tx = nil
	}
	rt.Segs, rt.Vias = nil, nil
}

// drill places a via for rt at p.
func (r *Router) drill(rt *Route, p geom.Point, id layer.ConnID) bool {
	r.trackPt(p)
	pv, ok := r.tx(rt).PlaceVia(p, id)
	if !ok {
		return false
	}
	rt.Vias = append(rt.Vias, pv)
	return true
}

// absorb merges a completed leg placement — and its open transaction —
// into rt, so the combined route commits or rolls back as one unit.
func (r *Router) absorb(rt *Route, leg *Route) {
	rt.Segs = append(rt.Segs, leg.Segs...)
	rt.Vias = append(rt.Vias, leg.Vias...)
	if leg.tx != nil {
		if rt.tx == nil {
			rt.tx = leg.tx
		} else {
			rt.tx.Adopt(leg.tx)
		}
		leg.tx = nil
	}
}

// unrealize removes connection i's realization from the board through a
// fresh transaction, adjusting the metrics. Rolling the returned
// transaction back re-creates the realization exactly (restore);
// committing it makes the removal permanent.
func (r *Router) unrealize(i int) *board.Tx {
	old := r.routes[i]
	tx := r.B.Begin()
	for _, ps := range old.Segs {
		r.metrics.WireLength -= ps.Seg.Interval().Len()
		tx.RemoveSegment(ps.Layer, ps.Seg)
	}
	for _, pv := range old.Vias {
		tx.RemoveVia(pv)
	}
	r.metrics.ViasAdded -= len(old.Vias)
	r.metrics.ByMethod[old.Method]--
	r.routes[i] = Route{Method: NotRouted}
	return tx
}

// restore re-creates connection i's unrealized route by rolling back its
// rip transaction. It reports failure if any of the space has been taken
// (the board is then back in the ripped state); a journal invariant
// breach additionally aborts the run, which the caller must check.
func (r *Router) restore(i int, tx *board.Tx, method Method) bool {
	undo, err := tx.Rollback()
	if err != nil {
		var ce *board.ConflictError
		if errors.As(err, &ce) {
			return false
		}
		r.invariantStop(err)
		return false
	}
	// The undo lists run newest-removal-first; reverse them so the
	// rebuilt Route carries its metal in the original placement order.
	var rt Route
	for k := len(undo.Vias) - 1; k >= 0; k-- {
		rt.Vias = append(rt.Vias, undo.Vias[k])
	}
	for k := len(undo.Segs) - 1; k >= 0; k-- {
		rt.Segs = append(rt.Segs, PlacedSeg{Layer: undo.Segs[k].Layer, Seg: undo.Segs[k].Seg})
	}
	r.commit(i, rt, method)
	return true
}

// ripUp removes connection v's realization from the board, retaining the
// open rip transaction so putBack can re-insert it cheaply (Section 8.3)
// by rolling it back.
func (r *Router) ripUp(v int) {
	tx := r.unrealize(v)
	r.metrics.RipUps++
	r.ripped[v] = tx
}

// putBack attempts to re-insert each ripped victim exactly where it was.
// Victims whose space was taken by the new connection stay unrouted and
// are re-routed by the pass loop (Section 8.3: "The remaining few must be
// marked for re-routing in the connection list").
func (r *Router) putBack(victims []int) {
	if r.obs != nil && len(victims) > 0 {
		defer r.obsPhase(phasePutBack, time.Now())
	}
	for _, v := range victims {
		tx, ok := r.ripped[v]
		if !ok {
			continue
		}
		delete(r.ripped, v)
		if r.routes[v].Method != NotRouted {
			// The victim was re-routed in the meantime; its old metal
			// must stay off the board.
			tx.Commit()
			continue
		}
		if r.restore(v, tx, PutBack) {
			r.metrics.PutBacks++
			continue
		}
		if r.abortReason == AbortInvariant {
			return
		}
		r.metrics.ReRouted++
		// The new connection took some of the victim's old space. Try a
		// fresh route immediately — without rip-up rights, so victims
		// cannot cascade — before leaving it for the next pass.
		r.routeLadder(v)
	}
}

// routeLadder runs the zero-via/one-via/Lee ladder once for connection i
// with no rip-up. It is used for re-routing put-back casualties.
func (r *Router) routeLadder(i int) bool {
	if r.abortCheck() {
		// Leave the victim for FailedConns rather than burn post-abort
		// time on a fresh search; the board stays consistent either way.
		return false
	}
	r.beginConnBudget()
	if rt, ok := r.zeroViaT(i); ok {
		r.commit(i, rt, ZeroVia)
		return true
	}
	if rt, ok := r.oneViaT(i); ok {
		r.commit(i, rt, OneVia)
		return true
	}
	if rt, _, ok := r.lee(i); ok {
		r.commit(i, rt, Lee)
		return true
	}
	return false
}

// selectVictims runs Obstructions on every layer around the best
// wavefront point of the failed Lee search (Section 8.3) and returns the
// rippable connections found, excluding the one being routed.
func (r *Router) selectVictims(best geom.Point, self int) []int {
	pitch := r.B.Cfg.Pitch
	box := geom.Bounding(best, best).Expand(r.Opts.RipupRadius * pitch).Intersect(r.B.Cfg.Bounds())
	seen := make(map[layer.ConnID]struct{})
	var victims []int
	for _, l := range r.B.Layers {
		for _, id := range r.search.Obstructions(l, best, box) {
			v := int(id) - r.Opts.IDBase
			if v == self || v < 0 || v >= len(r.Conns) {
				// Foreign metal (another routing pass) is never a victim.
				continue
			}
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			victims = append(victims, v)
		}
	}
	sort.Ints(victims) // deterministic rip order
	return victims
}
