// Package render draws boards, routing problems, routed signal layers and
// power planes as SVG — the analogues of the paper's Figures 19–22 — plus
// the routing-grid unit cell of Figure 3. Output uses only the standard
// library; one grid unit maps to Scale SVG user units.
package render

import (
	"fmt"
	"io"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/layer"
	"repro/internal/netlist"
	"repro/internal/post"
	"repro/internal/power"
)

// Scale is the SVG user units per routing grid unit.
const Scale = 4

type svg struct {
	w   io.Writer
	err error
}

func (s *svg) printf(format string, args ...any) {
	if s.err != nil {
		return
	}
	_, s.err = fmt.Fprintf(s.w, format, args...)
}

func (s *svg) open(wpx, hpx int, bg string) {
	s.printf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		wpx, hpx, wpx, hpx)
	s.printf(`<rect width="%d" height="%d" fill="%s"/>`+"\n", wpx, hpx, bg)
}

func (s *svg) close() { s.printf("</svg>\n") }

func px(gridUnits int) int { return gridUnits * Scale }

// Placement draws the part outlines and pins of a design (Figure 19).
func Placement(w io.Writer, d *netlist.Design) error {
	cfg := d.GridConfig()
	s := &svg{w: w}
	s.open(px(cfg.Width), px(cfg.Height), "white")
	for _, part := range d.Parts {
		span := part.Pkg.Span() // via units relative to origin
		o := cfg.GridOf(part.At)
		x := px(o.X) + px(span.MinX*cfg.Pitch) - Scale
		y := px(o.Y) + px(span.MinY*cfg.Pitch) - Scale
		wd := px((span.Width()-1)*cfg.Pitch) + 2*Scale
		ht := px((span.Height()-1)*cfg.Pitch) + 2*Scale
		s.printf(`<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#888" stroke-width="1"/>`+"\n",
			x, y, wd, ht)
		for pin := 1; pin <= part.Pkg.Pins(); pin++ {
			p := cfg.GridOf(part.PinPos(pin))
			s.printf(`<circle cx="%d" cy="%d" r="%d" fill="none" stroke="black" stroke-width="1"/>`+"\n",
				px(p.X), px(p.Y), Scale)
		}
	}
	s.close()
	return s.err
}

// Problem draws the stringer output: one line per pin-to-pin connection
// (Figure 20).
func Problem(w io.Writer, b *board.Board, conns []core.Connection) error {
	s := &svg{w: w}
	s.open(px(b.Cfg.Width), px(b.Cfg.Height), "white")
	for _, c := range conns {
		s.printf(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black" stroke-width="0.6"/>`+"\n",
			px(c.A.X), px(c.A.Y), px(c.B.X), px(c.B.Y))
	}
	s.close()
	return s.err
}

// SignalLayer draws one routed layer as a photographic positive: copper
// in black on white (Figure 21). Trace segments draw as round-capped
// strokes — the visual stand-in for the photoplot post-processing that
// rounded corners on the real boards — and every drilled site shows its
// pad.
func SignalLayer(w io.Writer, b *board.Board, li int) error {
	l := b.Layers[li]
	s := &svg{w: w}
	s.open(px(b.Cfg.Width), px(b.Cfg.Height), "white")

	traceWidth := Scale // ~8 mil trace at 33 mil grid pitch, exaggerated for visibility
	for ci := 0; ci < l.NumChannels(); ci++ {
		l.Chan(ci).VisitUsed(geom.Iv(0, l.ChannelLength()-1), func(seg *layer.Segment) bool {
			a := b.Cfg.PointAt(l.Orient, ci, seg.Lo)
			z := b.Cfg.PointAt(l.Orient, ci, seg.Hi)
			if seg.Lo == seg.Hi && b.Cfg.IsViaSite(a) {
				// A unit segment at a via site is a pad.
				s.printf(`<circle cx="%d" cy="%d" r="%d" fill="black"/>`+"\n", px(a.X), px(a.Y), Scale+1)
				return true
			}
			s.printf(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black" stroke-width="%d" stroke-linecap="round"/>`+"\n",
				px(a.X), px(a.Y), px(z.X), px(z.Y), traceWidth)
			return true
		})
	}
	s.close()
	return s.err
}

// Plane draws a power plane as a photographic negative: copper is etched
// away where the image is black (Figure 22). Antipads and mounting
// clearances are solid disks; thermal reliefs draw as a dashed ring so
// spokes of copper remain.
func Plane(w io.Writer, b *board.Board, p *power.Plane) error {
	s := &svg{w: w}
	s.open(px(b.Cfg.Width), px(b.Cfg.Height), "white")
	milsToPx := func(mils int) float64 {
		// One grid unit is 100/pitch mils.
		gridMils := 100.0 / float64(b.Cfg.Pitch)
		return float64(mils) / gridMils * Scale
	}
	for _, f := range p.Features {
		r := milsToPx(f.RadiusMils)
		switch f.Kind {
		case power.Antipad, power.Clearance:
			s.printf(`<circle cx="%d" cy="%d" r="%.1f" fill="black"/>`+"\n", px(f.At.X), px(f.At.Y), r)
		case power.Thermal:
			s.printf(`<circle cx="%d" cy="%d" r="%.1f" fill="none" stroke="black" stroke-width="%.1f" stroke-dasharray="%.1f %.1f"/>`+"\n",
				px(f.At.X), px(f.At.Y), r*0.8, r*0.4, r, r*0.5)
		}
	}
	s.close()
	return s.err
}

// GridCell draws the routing-grid unit cell of Figure 3: via sites as
// open circles, plain routing points as small filled dots, over viaCells²
// via pitches.
func GridCell(w io.Writer, pitch, viaCells int) error {
	s := &svg{w: w}
	extent := viaCells * pitch
	s.open(px(extent)+2*Scale, px(extent)+2*Scale, "white")
	for x := 0; x <= extent; x++ {
		for y := 0; y <= extent; y++ {
			cx, cy := px(x)+Scale, px(y)+Scale
			if x%pitch == 0 && y%pitch == 0 {
				s.printf(`<circle cx="%d" cy="%d" r="%d" fill="white" stroke="black" stroke-width="1"/>`+"\n",
					cx, cy, Scale-1)
			} else {
				s.printf(`<circle cx="%d" cy="%d" r="1.2" fill="black"/>`+"\n", cx, cy)
			}
		}
	}
	s.close()
	return s.err
}

// Routes draws every realized route of one router in a distinct hue over
// a light board outline — not a paper figure, but invaluable for eyeball
// debugging of small examples.
func Routes(w io.Writer, b *board.Board, r *core.Router) error {
	s := &svg{w: w}
	s.open(px(b.Cfg.Width), px(b.Cfg.Height), "white")
	for i := range r.Conns {
		rt := r.RouteOf(i)
		hue := (i * 47) % 360
		color := fmt.Sprintf("hsl(%d,70%%,45%%)", hue)
		for _, ps := range rt.Segs {
			o := b.Layers[ps.Layer].Orient
			a := b.Cfg.PointAt(o, ps.Seg.Channel(), ps.Seg.Lo)
			z := b.Cfg.PointAt(o, ps.Seg.Channel(), ps.Seg.Hi)
			s.printf(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2" stroke-linecap="round"/>`+"\n",
				px(a.X), px(a.Y), px(z.X), px(z.Y), color)
		}
		for _, pv := range rt.Vias {
			s.printf(`<circle cx="%d" cy="%d" r="%d" fill="%s"/>`+"\n", px(pv.At.X), px(pv.At.Y), Scale, color)
		}
	}
	s.close()
	return s.err
}

// SignalLayerSmooth draws one routed layer with the photoplot
// post-processing applied: each connection's path is reconstructed and
// its 90° corners are cut at 45°, reproducing the diagonal traces of
// Figure 21 (footnote 2: "local modifications were made to produce the
// rounded corners and diagonal traces"). Pads still draw at drilled
// sites.
func SignalLayerSmooth(w io.Writer, b *board.Board, r *core.Router, li int) error {
	s := &svg{w: w}
	s.open(px(b.Cfg.Width), px(b.Cfg.Height), "white")

	for i := range r.Conns {
		rt := r.RouteOf(i)
		if rt.Method == core.NotRouted || rt.Method == core.Trivial {
			continue
		}
		poly, err := post.Polyline(b, &r.Conns[i], rt)
		if err != nil {
			return err
		}
		for _, seg := range post.Smooth(poly, 0.5) {
			if seg.Layer != li {
				continue
			}
			s.printf(`<polyline fill="none" stroke="black" stroke-width="%d" stroke-linejoin="round" stroke-linecap="round" points="`, Scale)
			for _, p := range seg.Points {
				s.printf("%.1f,%.1f ", p.X*Scale, p.Y*Scale)
			}
			s.printf(`"/>` + "\n")
		}
		for _, pv := range rt.Vias {
			s.printf(`<circle cx="%d" cy="%d" r="%d" fill="black"/>`+"\n", px(pv.At.X), px(pv.At.Y), Scale+1)
		}
	}
	// Pins belong to every layer.
	l := b.Layers[li]
	for ci := 0; ci < l.NumChannels(); ci++ {
		l.Chan(ci).VisitUsed(geom.Iv(0, l.ChannelLength()-1), func(seg *layer.Segment) bool {
			if seg.Owner == layer.PinOwner {
				p := b.Cfg.PointAt(l.Orient, ci, seg.Lo)
				s.printf(`<circle cx="%d" cy="%d" r="%d" fill="black"/>`+"\n", px(p.X), px(p.Y), Scale+1)
			}
			return true
		})
	}
	s.close()
	return s.err
}
