package render

import (
	"strings"
	"testing"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/stringer"
	"repro/internal/workload"
)

func pipeline(t *testing.T) (*netlist.Design, *board.Board, []core.Connection, *core.Router) {
	t.Helper()
	d, err := workload.Generate(workload.SmallSpec(12))
	if err != nil {
		t.Fatal(err)
	}
	b, err := board.New(d.GridConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PlacePins(b); err != nil {
		t.Fatal(err)
	}
	sr, err := stringer.String(d, stringer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.New(b, sr.Conns, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res := r.Route(); !res.Complete() {
		t.Fatal("routing incomplete")
	}
	return d, b, sr.Conns, r
}

func checkSVG(t *testing.T, name, got string, wantContains ...string) {
	t.Helper()
	if !strings.HasPrefix(got, "<svg") || !strings.HasSuffix(strings.TrimSpace(got), "</svg>") {
		t.Fatalf("%s: not a complete SVG document", name)
	}
	for _, want := range wantContains {
		if !strings.Contains(got, want) {
			t.Errorf("%s: missing %q", name, want)
		}
	}
}

func TestPlacement(t *testing.T) {
	d, _, _, _ := pipeline(t)
	var sb strings.Builder
	if err := Placement(&sb, d); err != nil {
		t.Fatal(err)
	}
	checkSVG(t, "placement", sb.String(), "<rect", "<circle")
	// One outline per part plus the background rect.
	if got := strings.Count(sb.String(), "<rect"); got != len(d.Parts)+1 {
		t.Errorf("rects = %d, want %d parts + bg", got, len(d.Parts))
	}
	// One circle per pin.
	if got := strings.Count(sb.String(), "<circle"); got != d.TotalPins() {
		t.Errorf("circles = %d, want %d pins", got, d.TotalPins())
	}
}

func TestProblem(t *testing.T) {
	_, b, conns, _ := pipeline(t)
	var sb strings.Builder
	if err := Problem(&sb, b, conns); err != nil {
		t.Fatal(err)
	}
	checkSVG(t, "problem", sb.String())
	if got := strings.Count(sb.String(), "<line"); got != len(conns) {
		t.Errorf("lines = %d, want %d connections", got, len(conns))
	}
}

func TestSignalLayer(t *testing.T) {
	_, b, _, _ := pipeline(t)
	for li := range b.Layers {
		var sb strings.Builder
		if err := SignalLayer(&sb, b, li); err != nil {
			t.Fatal(err)
		}
		checkSVG(t, "layer", sb.String())
		if !strings.Contains(sb.String(), "<circle") {
			t.Errorf("layer %d: no pads drawn (pins exist on every layer)", li)
		}
	}
}

func TestPlane(t *testing.T) {
	d, b, _, _ := pipeline(t)
	plane, err := power.Generate(b, d, nil, "VCC", power.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Plane(&sb, b, plane); err != nil {
		t.Fatal(err)
	}
	anti, thermal, _ := plane.Counts()
	got := strings.Count(sb.String(), "<circle")
	if got != anti+thermal {
		t.Errorf("circles = %d, want %d features", got, anti+thermal)
	}
	// Thermals are dashed rings.
	if thermal > 0 && !strings.Contains(sb.String(), "stroke-dasharray") {
		t.Error("no thermal rings drawn")
	}
}

func TestGridCell(t *testing.T) {
	var sb strings.Builder
	if err := GridCell(&sb, 3, 2); err != nil {
		t.Fatal(err)
	}
	s := sb.String()
	checkSVG(t, "gridcell", s)
	// 7×7 points for 2 via pitches at pitch 3: 9 via sites (open) and 40
	// routing-only points (filled).
	open := strings.Count(s, `fill="white" stroke="black"`)
	if open != 9 {
		t.Errorf("open via circles = %d, want 9", open)
	}
	small := strings.Count(s, `r="1.2"`)
	if small != 40 {
		t.Errorf("routing dots = %d, want 40", small)
	}
}

func TestRoutes(t *testing.T) {
	_, b, _, r := pipeline(t)
	var sb strings.Builder
	if err := Routes(&sb, b, r); err != nil {
		t.Fatal(err)
	}
	checkSVG(t, "routes", sb.String(), "hsl(")
}

func TestSignalLayerSmooth(t *testing.T) {
	_, b, _, r := pipeline(t)
	for li := range b.Layers {
		var sb strings.Builder
		if err := SignalLayerSmooth(&sb, b, r, li); err != nil {
			t.Fatal(err)
		}
		checkSVG(t, "smooth layer", sb.String())
	}
	// At least one layer must contain polylines (the routed traces).
	var sb strings.Builder
	if err := SignalLayerSmooth(&sb, b, r, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<polyline") {
		t.Error("no smoothed polylines on layer 0")
	}
}
