package faultinject

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
)

// ErrPartitioned is the failure a partitioned request surfaces. It
// reports itself as a timeout so callers that classify network errors
// (retry loops, failure detectors) treat it exactly like a real
// unreachable peer: retryable, not a protocol error.
var ErrPartitioned = errors.New("faultinject: network partition")

// partitionError wraps ErrPartitioned for one host and satisfies the
// net.Error shape (Timeout/Temporary) without importing net.
type partitionError struct{ host string }

func (e *partitionError) Error() string   { return fmt.Sprintf("faultinject: host %s partitioned", e.host) }
func (e *partitionError) Unwrap() error   { return ErrPartitioned }
func (e *partitionError) Timeout() bool   { return true }
func (e *partitionError) Temporary() bool { return true }

// Partition is the fleet tests' network-failure seam: a mutable set of
// unreachable hosts and a separate set of heartbeat-muted nodes,
// consulted by the two places fleet traffic crosses the (simulated)
// network.
//
//   - RoundTripper wraps an http.Transport so requests to a blocked
//     host fail with ErrPartitioned instead of leaving the process —
//     both directions of job traffic (forward, steal, handoff) go
//     through it.
//   - HeartbeatDropped is the asymmetric case: the node is healthy and
//     serving, but its heartbeats never arrive. That is the failure
//     mode that distinguishes "dead" from "unreachable" — exactly what
//     a fencing failover must handle without running the job twice.
//
// All methods are safe for concurrent use; chaos tests flip hosts in
// and out while traffic flows.
type Partition struct {
	mu      sync.Mutex
	blocked map[string]bool
	muted   map[string]bool
}

// NewPartition builds an empty partition: every host reachable, every
// heartbeat delivered.
func NewPartition() *Partition {
	return &Partition{blocked: make(map[string]bool), muted: make(map[string]bool)}
}

// Block makes every request to host (as it appears in the request URL,
// "addr:port") fail with ErrPartitioned.
func (p *Partition) Block(host string) {
	p.mu.Lock()
	p.blocked[host] = true
	p.mu.Unlock()
}

// Heal restores reachability of host.
func (p *Partition) Heal(host string) {
	p.mu.Lock()
	delete(p.blocked, host)
	p.mu.Unlock()
}

// HealAll restores full connectivity and heartbeat delivery.
func (p *Partition) HealAll() {
	p.mu.Lock()
	p.blocked = make(map[string]bool)
	p.muted = make(map[string]bool)
	p.mu.Unlock()
}

// Blocked reports whether host is currently unreachable.
func (p *Partition) Blocked(host string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blocked[host]
}

// MuteHeartbeats drops node's heartbeats while leaving its job traffic
// intact — the asymmetric partition that makes a live node look dead.
func (p *Partition) MuteHeartbeats(node string) {
	p.mu.Lock()
	p.muted[node] = true
	p.mu.Unlock()
}

// UnmuteHeartbeats restores node's heartbeat delivery.
func (p *Partition) UnmuteHeartbeats(node string) {
	p.mu.Lock()
	delete(p.muted, node)
	p.mu.Unlock()
}

// HeartbeatDropped reports whether node's heartbeats are being dropped.
// The fleet agent consults it (through its heartbeat seam) before each
// send; a nil *Partition drops nothing, so production wiring passes nil.
func (p *Partition) HeartbeatDropped(node string) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.muted[node]
}

// RoundTripper wraps base (nil: http.DefaultTransport) so requests to
// blocked hosts fail without touching the network. The check runs at
// request time, so healing a host immediately restores it.
func (p *Partition) RoundTripper(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &partitionTransport{p: p, base: base}
}

type partitionTransport struct {
	p    *Partition
	base http.RoundTripper
}

func (t *partitionTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.p.Blocked(req.URL.Host) {
		return nil, &partitionError{host: req.URL.Host}
	}
	return t.base.RoundTrip(req)
}
