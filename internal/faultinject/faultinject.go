// Package faultinject drives the router's failure paths — rollback,
// put-back denial, re-route — deterministically. An Injector implements
// board.Interposer: installed with Board.Interpose, it vetoes segment and
// via placements on a reproducible schedule (every Nth call, or a seeded
// Bernoulli draw per call). A vetoed mutation is indistinguishable from a
// genuine collision, so the router exercises exactly the code it would
// run on a congested board, but where and when the test chooses.
//
// Mutations by permanent owners (pins, keepouts, plane fill) are never
// vetoed: they belong to board setup, not routing, and failing them would
// break the test scaffolding rather than the code under test.
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/geom"
	"repro/internal/layer"
)

// Op names one interceptable mutation.
type Op uint8

const (
	AddSegment Op = iota
	PlaceVia
)

func (o Op) String() string {
	if o == PlaceVia {
		return "PlaceVia"
	}
	return "AddSegment"
}

// Fault records one injected failure.
type Fault struct {
	Op    Op
	Call  int // 1-based count of intercepted calls of this op at injection
	Owner layer.ConnID
	At    geom.Point // via site for PlaceVia; zero for AddSegment
}

func (f Fault) String() string {
	return fmt.Sprintf("%s #%d owner %d at %v", f.Op, f.Call, f.Owner, f.At)
}

// Injector is a deterministic fault schedule over the board mutation
// surface. It is safe for concurrent use (parallel sweeps route several
// boards at once), though its schedule is only reproducible when a
// single board consults it.
type Injector struct {
	mu sync.Mutex

	// every-Nth schedule; 0 disables the op.
	everyAdd, everyVia int
	// first-N schedule: fail calls 1..firstAdd / 1..firstVia; 0 disables.
	firstAdd, firstVia int
	// seeded Bernoulli schedule; rng nil disables it.
	rng        *rand.Rand
	pAdd, pVia float64

	armed    bool
	addCalls int
	viaCalls int
	faults   []Fault
}

// EveryNth builds an injector failing every addN-th AddSegment and every
// viaN-th PlaceVia (1-based; 0 disables that op). It starts armed.
func EveryNth(addN, viaN int) *Injector {
	return &Injector{everyAdd: addN, everyVia: viaN, armed: true}
}

// FirstN builds an injector failing the first addN AddSegment and the
// first viaN PlaceVia attempts, then letting everything through. Useful
// for denying exactly the next placement — a put-back, say — and
// watching the recovery succeed. It starts armed.
func FirstN(addN, viaN int) *Injector {
	return &Injector{firstAdd: addN, firstVia: viaN, armed: true}
}

// Seeded builds an injector failing each AddSegment with probability
// pAdd and each PlaceVia with probability pVia, drawn from a generator
// seeded with seed: the schedule is arbitrary but exactly reproducible.
// It starts armed.
func Seeded(seed int64, pAdd, pVia float64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), pAdd: pAdd, pVia: pVia, armed: true}
}

// Arm enables fault injection; Disarm suspends it (calls pass through
// uncounted). Disarming lets a test place scaffolding mid-run without
// perturbing the schedule.
func (in *Injector) Arm() { in.mu.Lock(); in.armed = true; in.mu.Unlock() }

// Disarm suspends fault injection.
func (in *Injector) Disarm() { in.mu.Lock(); in.armed = false; in.mu.Unlock() }

// Faults returns a copy of the injected-failure log, in order.
func (in *Injector) Faults() []Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Fault(nil), in.faults...)
}

// Injected returns how many mutations have been vetoed so far.
func (in *Injector) Injected() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.faults)
}

// Calls returns how many armed AddSegment and PlaceVia attempts have
// been intercepted (vetoed or not).
func (in *Injector) Calls() (addSegment, placeVia int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.addCalls, in.viaCalls
}

// AllowAddSegment implements board.Interposer.
func (in *Injector) AllowAddSegment(li, ch, lo, hi int, owner layer.ConnID) bool {
	if owner.Permanent() {
		return true
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.armed {
		return true
	}
	in.addCalls++
	if in.due(in.everyAdd, in.firstAdd, in.pAdd, in.addCalls) {
		in.faults = append(in.faults, Fault{Op: AddSegment, Call: in.addCalls, Owner: owner})
		return false
	}
	return true
}

// AllowPlaceVia implements board.Interposer.
func (in *Injector) AllowPlaceVia(p geom.Point, owner layer.ConnID) bool {
	if owner.Permanent() {
		return true
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.armed {
		return true
	}
	in.viaCalls++
	if in.due(in.everyVia, in.firstVia, in.pVia, in.viaCalls) {
		in.faults = append(in.faults, Fault{Op: PlaceVia, Call: in.viaCalls, Owner: owner, At: p})
		return false
	}
	return true
}

// due decides whether the schedule fires on this call. Callers hold mu.
func (in *Injector) due(every, first int, p float64, call int) bool {
	if every > 0 && call%every == 0 {
		return true
	}
	if first > 0 && call <= first {
		return true
	}
	return in.rng != nil && p > 0 && in.rng.Float64() < p
}
