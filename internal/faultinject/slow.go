package faultinject

import (
	"io/fs"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/layer"
	"repro/internal/simfs"
)

// Fail-slow seams. Every other injector in this package makes
// operations FAIL — vetoed mutations, errno'd writes, blackholed
// requests. SlowNode and SlowDisk instead make them LATE: the
// operation succeeds, bit-identically, after an injected delay. That
// is the fail-slow failure mode (disk stalls, CPU contention, a lossy
// link) the fleet's slow-posture detection and hedged execution exist
// for, and because nothing errors, both seams compose freely with the
// veto/errno/partition rules — a node can be slow AND occasionally
// vetoed, exactly like a sick machine.

// SlowNode implements board.Interposer: it vetoes nothing and delays
// every Nth mutation attempt by a fixed amount, slowing a node's
// routing work without changing its output. Install it through
// server.Config.BoardHook. The delay applies before the mutation is
// allowed, so a routed board is bit-identical to an uninjected run —
// only later.
type SlowNode struct {
	delay time.Duration
	every int64
	calls atomic.Int64
}

// NewSlowNode builds a SlowNode that sleeps delay before every every-th
// mutation attempt (every < 1 means every attempt).
func NewSlowNode(delay time.Duration, every int) *SlowNode {
	if every < 1 {
		every = 1
	}
	return &SlowNode{delay: delay, every: int64(every)}
}

// Delays reports how many times the delay fired.
func (s *SlowNode) Delays() int64 { return s.calls.Load() / s.every }

func (s *SlowNode) stall() {
	if s.calls.Add(1)%s.every == 0 && s.delay > 0 {
		time.Sleep(s.delay)
	}
}

// AllowAddSegment delays, then allows.
func (s *SlowNode) AllowAddSegment(li, ch, lo, hi int, owner layer.ConnID) bool {
	s.stall()
	return true
}

// AllowPlaceVia delays, then allows.
func (s *SlowNode) AllowPlaceVia(p geom.Point, owner layer.ConnID) bool {
	s.stall()
	return true
}

// SlowDisk wraps a simfs.FS and delays every operation on paths under
// a directory prefix — a per-journal disk stall. Because simfs.Swap is
// process-global, the prefix is what confines the fault to one node in
// an in-process fleet test: only that node's journal drags, its peers'
// I/O is untouched. Reads are delayed too (a stalling disk does not
// discriminate), and no operation ever errors.
type SlowDisk struct {
	under  simfs.FS
	prefix string
	delay  time.Duration
	ops    atomic.Int64
}

// NewSlowDisk wraps under so every operation on a path under prefix is
// delayed by delay.
func NewSlowDisk(under simfs.FS, prefix string, delay time.Duration) *SlowDisk {
	return &SlowDisk{under: under, prefix: prefix, delay: delay}
}

// Delays reports how many operations were delayed.
func (d *SlowDisk) Delays() int64 { return d.ops.Load() }

func (d *SlowDisk) stall(path string) {
	if strings.HasPrefix(path, d.prefix) {
		d.ops.Add(1)
		if d.delay > 0 {
			time.Sleep(d.delay)
		}
	}
}

func (d *SlowDisk) Create(path string) (simfs.File, error) {
	d.stall(path)
	return d.under.Create(path)
}

func (d *SlowDisk) Open(path string) (simfs.File, error) {
	d.stall(path)
	return d.under.Open(path)
}

func (d *SlowDisk) OpenDir(dir string) (simfs.File, error) {
	d.stall(dir)
	return d.under.OpenDir(dir)
}

func (d *SlowDisk) Rename(from, to string) error {
	d.stall(from)
	return d.under.Rename(from, to)
}

func (d *SlowDisk) Remove(path string) error {
	d.stall(path)
	return d.under.Remove(path)
}

func (d *SlowDisk) ReadFile(path string) ([]byte, error) {
	d.stall(path)
	return d.under.ReadFile(path)
}

func (d *SlowDisk) ReadDir(dir string) ([]fs.DirEntry, error) {
	d.stall(dir)
	return d.under.ReadDir(dir)
}

func (d *SlowDisk) MkdirAll(dir string, perm fs.FileMode) error {
	d.stall(dir)
	return d.under.MkdirAll(dir, perm)
}
