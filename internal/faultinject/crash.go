package faultinject

import (
	"fmt"
	"sync"

	"repro/internal/board"
	"repro/internal/geom"
	"repro/internal/layer"
)

// Crash is the panic value a Crasher throws: a simulated process death
// at an exact mutation count. Tests recover it at the routing-call
// boundary and then exercise the checkpoint/resume path, as if the
// process had been SIGKILL'd mid-run.
type Crash struct {
	Mutation uint64       // 1-based count of the mutation that fired
	Rec      board.Record // the mutation being applied when the crash hit
}

func (c Crash) String() string {
	return fmt.Sprintf("faultinject: simulated crash at mutation %d (%v)", c.Mutation, c.Rec)
}

// Crasher implements board.Interposer and board.MutationObserver: it
// vetoes nothing, but panics with a Crash when the Nth board mutation is
// applied. Unlike the Injector's veto schedule — which exercises
// collision handling — a crash can land after ANY mutation, including
// removals mid-rip-up, which is exactly the exposure a crash-and-resume
// equivalence test needs.
type Crasher struct {
	mu    sync.Mutex
	at    uint64
	n     uint64
	armed bool
}

// CrashAt builds a crasher that panics when mutation n (1-based) is
// applied; n = 0 never fires. It starts armed.
func CrashAt(n uint64) *Crasher {
	return &Crasher{at: n, armed: n > 0}
}

// Disarm suspends the crasher (mutations pass through uncounted), so a
// test can rebuild scaffolding after recovering the Crash.
func (c *Crasher) Disarm() { c.mu.Lock(); c.armed = false; c.mu.Unlock() }

// Mutations returns how many armed mutations have been observed.
func (c *Crasher) Mutations() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// AllowAddSegment implements board.Interposer; a Crasher never vetoes.
func (c *Crasher) AllowAddSegment(li, ch, lo, hi int, owner layer.ConnID) bool { return true }

// AllowPlaceVia implements board.Interposer; a Crasher never vetoes.
func (c *Crasher) AllowPlaceVia(p geom.Point, owner layer.ConnID) bool { return true }

// ObserveMutation implements board.MutationObserver.
func (c *Crasher) ObserveMutation(rec board.Record) {
	c.mu.Lock()
	if !c.armed {
		c.mu.Unlock()
		return
	}
	c.n++
	fire := c.n == c.at
	n := c.n
	c.mu.Unlock()
	if fire {
		panic(Crash{Mutation: n, Rec: rec})
	}
}
