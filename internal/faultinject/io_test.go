package faultinject

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/layer"
)

func TestFailWritesStickyFromNth(t *testing.T) {
	var buf bytes.Buffer
	f := FailWrites(&buf, 3)

	for i := 1; i <= 2; i++ {
		if _, err := f.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d failed early: %v", i, err)
		}
	}
	for i := 3; i <= 5; i++ {
		if _, err := f.Write([]byte("no")); !errors.Is(err, ErrInjected) {
			t.Fatalf("write %d error = %v, want ErrInjected", i, err)
		}
	}
	if got := buf.String(); got != "okok" {
		t.Errorf("underlying writer saw %q, want %q", got, "okok")
	}
	if _, writes := f.Calls(); writes != 5 {
		t.Errorf("writes = %d, want 5", writes)
	}
}

func TestFailReadsStickyFromNth(t *testing.T) {
	f := FailReads(strings.NewReader("abcdef"), 2)
	p := make([]byte, 3)

	n, err := f.Read(p)
	if err != nil || n != 3 {
		t.Fatalf("first read = (%d, %v), want (3, nil)", n, err)
	}
	for i := 0; i < 2; i++ {
		if _, err := f.Read(p); !errors.Is(err, ErrInjected) {
			t.Fatalf("read after schedule fired: err = %v, want ErrInjected", err)
		}
	}
}

func TestFailZeroNeverFails(t *testing.T) {
	f := FailWrites(io.Discard, 0)
	for i := 0; i < 10; i++ {
		if _, err := f.Write([]byte("x")); err != nil {
			t.Fatalf("n=0 write %d failed: %v", i, err)
		}
	}
}

// TestBlockerHoldsNthCall drives a blocker directly: the second
// AddSegment attempt must not return until Release, and the call is
// allowed (not vetoed) once it does.
func TestBlockerHoldsNthCall(t *testing.T) {
	bl := BlockAt(2)

	if !bl.AllowAddSegment(0, 0, 0, 1, layer.ConnID(1)) {
		t.Fatal("call 1 blocked or vetoed")
	}

	done := make(chan bool)
	go func() {
		done <- bl.AllowAddSegment(0, 1, 0, 1, layer.ConnID(1))
	}()

	select {
	case <-done:
		t.Fatal("call 2 returned before Release")
	case <-time.After(20 * time.Millisecond):
	}
	if !bl.Fired() {
		t.Fatal("blocker did not report firing")
	}

	bl.Release()
	select {
	case ok := <-done:
		if !ok {
			t.Error("blocked call was vetoed; Blocker must always allow")
		}
	case <-time.After(time.Second):
		t.Fatal("call 2 still blocked after Release")
	}

	// Later calls pass straight through, and Release is idempotent.
	bl.Release()
	if !bl.AllowAddSegment(0, 2, 0, 1, layer.ConnID(1)) {
		t.Error("call 3 vetoed")
	}
}

func TestBlockerExemptsPermanentOwners(t *testing.T) {
	bl := BlockAt(1)
	done := make(chan struct{})
	go func() {
		bl.AllowAddSegment(0, 0, 0, 1, layer.ConnID(-1)) // pin placement must never block
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("permanent-owner placement blocked")
	}
	if bl.Fired() {
		t.Error("permanent-owner placement consumed the schedule")
	}
}
