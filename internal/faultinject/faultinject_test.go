package faultinject

import (
	"testing"

	"repro/internal/board"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/layer"
)

func newBoard(t *testing.T) *board.Board {
	t.Helper()
	b, err := board.New(grid.NewConfig(10, 10, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestEveryNthAddSegment(t *testing.T) {
	b := newBoard(t)
	in := EveryNth(3, 0)
	b.Interpose(in)

	placed := 0
	for i := 0; i < 9; i++ {
		if b.AddSegment(0, 0, i*2, i*2, layer.ConnID(1)) != nil {
			placed++
		}
	}
	if placed != 6 {
		t.Errorf("placed %d of 9 segments with every-3rd failing, want 6", placed)
	}
	if got := in.Injected(); got != 3 {
		t.Errorf("injected %d faults, want 3", got)
	}
	for _, f := range in.Faults() {
		if f.Op != AddSegment || f.Call%3 != 0 {
			t.Errorf("unexpected fault %v", f)
		}
	}
	if err := b.Audit(); err != nil {
		t.Errorf("board inconsistent after injected failures: %v", err)
	}
}

func TestEveryNthPlaceVia(t *testing.T) {
	b := newBoard(t)
	in := EveryNth(0, 2)
	b.Interpose(in)

	ok1, ok2 := false, false
	if _, ok := b.PlaceVia(b.Cfg.GridOf(geom.Pt(1, 1)), 1); ok {
		ok1 = true
	}
	if _, ok := b.PlaceVia(b.Cfg.GridOf(geom.Pt(2, 2)), 1); ok {
		ok2 = true
	}
	if !ok1 || ok2 {
		t.Errorf("every-2nd via: first=%v second=%v, want true,false", ok1, ok2)
	}
	if err := b.Audit(); err != nil {
		t.Errorf("board inconsistent: %v", err)
	}
}

func TestPermanentOwnersExempt(t *testing.T) {
	b := newBoard(t)
	in := EveryNth(1, 1) // fail everything that is failable
	b.Interpose(in)

	if err := b.PlacePin(b.Cfg.GridOf(geom.Pt(3, 3))); err != nil {
		t.Errorf("pin placement vetoed: %v", err)
	}
	if s := b.AddSegment(0, 0, 0, 2, layer.KeepoutOwner); s == nil {
		t.Error("keepout vetoed")
	}
	if s := b.AddSegment(0, 3, 0, 2, layer.ConnID(0)); s != nil {
		t.Error("routable segment not vetoed")
	}
	if add, _ := in.Calls(); add != 1 {
		t.Errorf("intercepted %d AddSegment calls, want 1 (permanent owners uncounted)", add)
	}
}

func TestSeededScheduleIsReproducible(t *testing.T) {
	run := func() []Fault {
		b := newBoard(t)
		in := Seeded(42, 0.5, 0)
		b.Interpose(in)
		for i := 0; i < 8; i++ {
			b.AddSegment(0, 0, i*2, i*2, layer.ConnID(2))
		}
		return in.Faults()
	}
	a, c := run(), run()
	if len(a) == 0 {
		t.Fatal("seeded schedule with p=0.5 injected nothing in 8 calls")
	}
	if len(a) != len(c) {
		t.Fatalf("runs differ: %d vs %d faults", len(a), len(c))
	}
	for i := range a {
		if a[i] != c[i] {
			t.Errorf("fault %d differs: %v vs %v", i, a[i], c[i])
		}
	}
}

func TestDisarmSuspendsSchedule(t *testing.T) {
	b := newBoard(t)
	in := EveryNth(1, 1)
	b.Interpose(in)
	in.Disarm()
	if s := b.AddSegment(0, 0, 0, 0, layer.ConnID(5)); s == nil {
		t.Error("disarmed injector still vetoed")
	}
	in.Arm()
	if s := b.AddSegment(0, 0, 4, 4, layer.ConnID(5)); s != nil {
		t.Error("re-armed injector let a doomed call through")
	}
}
