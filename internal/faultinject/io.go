package faultinject

import (
	"errors"
	"io"
	"sync"

	"repro/internal/geom"
	"repro/internal/layer"
)

// ErrInjected is the error a FailingReadWriter returns once its schedule
// fires. Tests assert on it with errors.Is to tell an injected failure
// from a genuine one.
var ErrInjected = errors.New("faultinject: injected I/O error")

// FailingReadWriter wraps an io.Reader and/or io.Writer, failing the Nth
// call (1-based) and every call after it — a device that breaks stays
// broken, which is the corruption model the snapshot and job-journal
// writers must survive. Calls before the Nth pass straight through. It
// plugs into the boardio I/O seam (boardio.SetIOSeam) to drive the
// atomic-write failure paths deterministically.
type FailingReadWriter struct {
	mu sync.Mutex

	r io.Reader
	w io.Writer

	// failRead/failWrite are 1-based call numbers at which the op starts
	// failing; 0 never fails that op.
	failRead, failWrite int
	reads, writes       int
}

// FailReads wraps r so its nth Read (1-based) and every later one return
// ErrInjected; n = 0 never fails.
func FailReads(r io.Reader, n int) *FailingReadWriter {
	return &FailingReadWriter{r: r, failRead: n}
}

// FailWrites wraps w so its nth Write (1-based) and every later one
// return ErrInjected; n = 0 never fails.
func FailWrites(w io.Writer, n int) *FailingReadWriter {
	return &FailingReadWriter{w: w, failWrite: n}
}

// Read implements io.Reader.
func (f *FailingReadWriter) Read(p []byte) (int, error) {
	f.mu.Lock()
	f.reads++
	fail := f.failRead > 0 && f.reads >= f.failRead
	f.mu.Unlock()
	if fail {
		return 0, ErrInjected
	}
	if f.r == nil {
		return 0, io.EOF
	}
	return f.r.Read(p)
}

// Write implements io.Writer.
func (f *FailingReadWriter) Write(p []byte) (int, error) {
	f.mu.Lock()
	f.writes++
	fail := f.failWrite > 0 && f.writes >= f.failWrite
	f.mu.Unlock()
	if fail {
		return 0, ErrInjected
	}
	if f.w == nil {
		return len(p), nil
	}
	return f.w.Write(p)
}

// Calls returns how many Read and Write calls have been intercepted.
func (f *FailingReadWriter) Calls() (reads, writes int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reads, f.writes
}

// Blocker implements board.Interposer: the nth armed AddSegment attempt
// (1-based) blocks until Release is called — or forever, when nobody
// calls it. It models a wedged run: the router is stuck inside a board
// mutation, so the soft-abort machinery (which is only polled between
// mutations) can never fire, and only a hard process kill gets out. The
// grr second-signal test and the server drain tests use it to hold a run
// at an exact, reproducible point. It never vetoes: once released, the
// blocked call proceeds normally.
type Blocker struct {
	mu      sync.Mutex
	at      int
	calls   int
	fired   bool
	release chan struct{}
	once    sync.Once
}

// BlockAt builds a blocker whose nth AddSegment attempt blocks; n = 0
// never blocks.
func BlockAt(n int) *Blocker {
	return &Blocker{at: n, release: make(chan struct{})}
}

// Release unblocks the held call (and any future call that would block).
// Safe to call more than once, and before the blocker has fired.
func (b *Blocker) Release() { b.once.Do(func() { close(b.release) }) }

// Fired reports whether the blocking call has been reached.
func (b *Blocker) Fired() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fired
}

// AllowAddSegment implements board.Interposer.
func (b *Blocker) AllowAddSegment(li, ch, lo, hi int, owner layer.ConnID) bool {
	if owner.Permanent() {
		return true
	}
	b.mu.Lock()
	b.calls++
	block := b.at > 0 && b.calls == b.at
	if block {
		b.fired = true
	}
	b.mu.Unlock()
	if block {
		<-b.release
	}
	return true
}

// AllowPlaceVia implements board.Interposer; a Blocker only ever blocks
// segment placement.
func (b *Blocker) AllowPlaceVia(p geom.Point, owner layer.ConnID) bool { return true }
