package tuning

import "repro/internal/core"

// TuneByCost tunes connection i with the paper's first, rejected
// implementation: a delay-targeting Lee cost function (see
// core.TunedLee). It exists for the E-TUNE ablation; production tuning
// uses Tuner.Tune.
func (t *Tuner) TuneByCost(i int, maxAttempts int) core.TunedLeeResult {
	target := t.R.Conns[i].TargetDelayPs
	cellPs := make([]float64, len(t.M.InchesPerNs))
	for li := range cellPs {
		cellPs[li] = t.M.CellDelayPs(li)
	}
	return t.R.TunedLee(i, target, t.Opts.TolerancePs, cellPs, maxAttempts)
}
