package tuning

import (
	"testing"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/verify"
)

// tuneRig routes a single connection on an empty board and returns the
// pieces a tuning test needs.
func tuneRig(t *testing.T, viaCols, viaRows int, a, b geom.Point, targetPs float64) (*board.Board, *core.Router, *Tuner) {
	t.Helper()
	bd, err := board.New(grid.NewConfig(viaCols, viaRows, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	ga, gb := bd.Cfg.GridOf(a), bd.Cfg.GridOf(b)
	if err := bd.PlacePin(ga); err != nil {
		t.Fatal(err)
	}
	if err := bd.PlacePin(gb); err != nil {
		t.Fatal(err)
	}
	conns := []core.Connection{{A: ga, B: gb, Net: "clk", TargetDelayPs: targetPs}}
	r, err := core.New(bd, conns, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res := r.Route(); !res.Complete() {
		t.Fatal("base route failed")
	}
	tuner := New(bd, r, DefaultSpeeds(4), DefaultOptions())
	return bd, r, tuner
}

func TestSpeedModel(t *testing.T) {
	m := DefaultSpeeds(6)
	if m.InchesPerNs[0] != 6.6 || m.InchesPerNs[5] != 6.6 {
		t.Error("outer layers should run at 6.6 in/ns")
	}
	for li := 1; li <= 4; li++ {
		if m.InchesPerNs[li] != 6.0 {
			t.Errorf("inner layer %d speed %v", li, m.InchesPerNs[li])
		}
	}
	// One cell = 33.3 mils; at 6 in/ns that is ~5.56 ps.
	got := m.CellDelayPs(2)
	if got < 5.4 || got > 5.7 {
		t.Errorf("inner cell delay = %v ps", got)
	}
	if fast := m.CellDelayPs(0); fast >= got {
		t.Error("outer layer should be faster per cell")
	}
	if m.SlowestCellPs() != got {
		t.Error("SlowestCellPs should be the inner-layer delay")
	}
}

func TestRouteDelayMeasuresWire(t *testing.T) {
	bd, r, tuner := tuneRig(t, 20, 20, geom.Pt(2, 10), geom.Pt(16, 10), 0)
	d := tuner.DelayOf(0)
	// 14 via units = 42 grid cells ≈ minimum wire; delay must be at
	// least that at the fastest speed and not absurdly more.
	m := DefaultSpeeds(4)
	minPs := 40 * m.CellDelayPs(0)
	if d < minPs || d > 4*minPs {
		t.Errorf("delay %v ps outside plausible band [%v, %v]", d, minPs, 4*minPs)
	}
	_ = bd
	_ = r
}

func TestTuneStretchesToTarget(t *testing.T) {
	// Base delay ≈ 42 cells × ~5.1-5.6 ps ≈ 220-235 ps; ask for 500 ps.
	_, r, tuner := tuneRig(t, 24, 24, geom.Pt(2, 10), geom.Pt(16, 10), 500)
	res := tuner.Tune(0)
	if !res.Tuned {
		t.Fatalf("not tuned: %+v", res)
	}
	if res.AchievedPs < 500-tuner.Opts.TolerancePs || res.AchievedPs > 500+tuner.Opts.TolerancePs {
		t.Errorf("achieved %v ps, want 500±%v", res.AchievedPs, tuner.Opts.TolerancePs)
	}
	if res.AchievedPs <= res.BeforePs {
		t.Error("tuning did not lengthen the path")
	}
	// The stretched route must still be electrically sound.
	if err := verify.Routed(tuner.B, r); err != nil {
		t.Fatalf("verify after tuning: %v", err)
	}
	if err := tuner.B.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestTuneAlreadyOnTarget(t *testing.T) {
	_, _, tuner := tuneRig(t, 24, 24, geom.Pt(2, 10), geom.Pt(16, 10), 0)
	base := tuner.DelayOf(0)
	tuner.R.Conns[0].TargetDelayPs = base
	res := tuner.Tune(0)
	if !res.Tuned || res.Rounds != 0 {
		t.Errorf("on-target connection should tune trivially: %+v", res)
	}
}

func TestTuneUnachievableTarget(t *testing.T) {
	_, _, tuner := tuneRig(t, 24, 24, geom.Pt(2, 10), geom.Pt(16, 10), 50)
	res := tuner.Tune(0) // 50 ps is far below the minimal path delay
	if res.Tuned {
		t.Error("target below minimum reported as tuned")
	}
	if res.AchievedPs != res.BeforePs {
		t.Error("unachievable tuning should not modify the route")
	}
}

func TestTuneAllSelectsTargets(t *testing.T) {
	bd, err := board.New(grid.NewConfig(24, 24, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(vx1, vy1, vx2, vy2 int, target float64) core.Connection {
		a, b := bd.Cfg.GridOf(geom.Pt(vx1, vy1)), bd.Cfg.GridOf(geom.Pt(vx2, vy2))
		if err := bd.PlacePin(a); err != nil {
			t.Fatal(err)
		}
		if err := bd.PlacePin(b); err != nil {
			t.Fatal(err)
		}
		return core.Connection{A: a, B: b, TargetDelayPs: target}
	}
	conns := []core.Connection{
		mk(2, 4, 18, 4, 450),
		mk(2, 8, 18, 8, 0), // untuned
		mk(2, 12, 18, 12, 480),
	}
	r, err := core.New(bd, conns, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res := r.Route(); !res.Complete() {
		t.Fatal("routing failed")
	}
	tuner := New(bd, r, DefaultSpeeds(4), DefaultOptions())
	results := tuner.TuneAll()
	if len(results) != 2 {
		t.Fatalf("TuneAll handled %d connections, want 2", len(results))
	}
	for _, res := range results {
		if !res.Tuned {
			t.Errorf("connection %d not tuned: %+v", res.Conn, res)
		}
	}
	if Summary(results) != "tuned 2/2 connections" {
		t.Errorf("summary = %q", Summary(results))
	}
}

func TestClockTreeEqualization(t *testing.T) {
	// Three clock branches of different natural lengths; tune all to the
	// delay of the longest so they match (the Figure 16 scenario).
	bd, err := board.New(grid.NewConfig(30, 30, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	root := bd.Cfg.GridOf(geom.Pt(4, 15))
	if err := bd.PlacePin(root); err != nil {
		t.Fatal(err)
	}
	leaves := []geom.Point{geom.Pt(10, 15), geom.Pt(18, 10), geom.Pt(26, 20)}
	var conns []core.Connection
	for _, lv := range leaves {
		g := bd.Cfg.GridOf(lv)
		if err := bd.PlacePin(g); err != nil {
			t.Fatal(err)
		}
		conns = append(conns, core.Connection{A: root, B: g})
	}
	r, err := core.New(bd, conns, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res := r.Route(); !res.Complete() {
		t.Fatal("routing failed")
	}
	tuner := New(bd, r, DefaultSpeeds(4), DefaultOptions())
	worst := 0.0
	for i := range conns {
		if d := tuner.DelayOf(i); d > worst {
			worst = d
		}
	}
	target := worst + 100
	for i := range conns {
		tuner.R.Conns[i].TargetDelayPs = target
	}
	results := tuner.TuneAll()
	for _, res := range results {
		if !res.Tuned {
			t.Fatalf("branch %d not tuned: %+v", res.Conn, res)
		}
	}
	// All branches within 2×tolerance of each other.
	for i := range conns {
		for j := i + 1; j < len(conns); j++ {
			di, dj := tuner.DelayOf(i), tuner.DelayOf(j)
			if diff := di - dj; diff > 2*tuner.Opts.TolerancePs || diff < -2*tuner.Opts.TolerancePs {
				t.Errorf("branches %d and %d skewed: %v vs %v ps", i, j, di, dj)
			}
		}
	}
}

func TestTuneByCostExists(t *testing.T) {
	// The rejected cost-function tuner should find some solutions on an
	// open board but typically needs several attempts (false solutions).
	_, r, tuner := tuneRig(t, 24, 24, geom.Pt(2, 10), geom.Pt(16, 10), 500)
	res := tuner.TuneByCost(0, 60)
	t.Logf("cost-function tuner: ok=%v attempts=%d achieved=%.0f ps", res.Ok, res.Attempts, res.AchievedPs)
	if res.Attempts == 0 {
		t.Error("no attempts recorded")
	}
	if err := tuner.B.Audit(); err != nil {
		t.Fatal(err)
	}
	if err := verify.Routed(tuner.B, r); err != nil {
		t.Fatalf("verify: %v", err)
	}
}
