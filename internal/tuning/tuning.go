// Package tuning implements the length tuning of Section 10.1: adjusting
// ECL transmission-line connections to a target propagation delay by
// stretching routed paths with detours (Figure 17). Signals propagate
// about six inches per nanosecond in epoxy/glass boards, roughly 10%
// faster on the two outer layers than on inner layers, so a tuned
// connection's delay depends on which layers carry it — the reason the
// paper's first, cost-function-based tuner drowned in plausible but wrong
// solutions (that rejected approach is reproduced in costfn.go for the
// E-TUNE ablation).
package tuning

import (
	"fmt"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
)

// SpeedModel maps layers to propagation speeds and grid cells to physical
// length.
type SpeedModel struct {
	// InchesPerNs is the signal speed per signal layer.
	InchesPerNs []float64
	// MilsPerGrid is the physical size of one routing grid step
	// (100-mil via pitch / 3 in the paper's process).
	MilsPerGrid float64
	// ViaDelayPs is a fixed delay charged per drilled via.
	ViaDelayPs float64
}

// DefaultSpeeds returns the paper's model for the given layer count:
// 6.0 in/ns on inner layers, 6.6 in/ns (10% faster) on the two outer
// layers.
func DefaultSpeeds(layers int) SpeedModel {
	m := SpeedModel{
		InchesPerNs: make([]float64, layers),
		MilsPerGrid: 100.0 / 3.0,
	}
	for i := range m.InchesPerNs {
		if i == 0 || i == layers-1 {
			m.InchesPerNs[i] = 6.6
		} else {
			m.InchesPerNs[i] = 6.0
		}
	}
	return m
}

// CellDelayPs returns the delay of one grid cell of trace on a layer.
func (m SpeedModel) CellDelayPs(layerIdx int) float64 {
	inches := m.MilsPerGrid / 1000.0
	return inches / m.InchesPerNs[layerIdx] * 1000.0
}

// SlowestCellPs returns the per-cell delay of the slowest layer; the
// detour sizing uses it as a conservative estimate.
func (m SpeedModel) SlowestCellPs() float64 {
	worst := 0.0
	for li := range m.InchesPerNs {
		if d := m.CellDelayPs(li); d > worst {
			worst = d
		}
	}
	return worst
}

// RouteDelayPs computes the propagation delay of a realized route.
func RouteDelayPs(b *board.Board, rt *core.Route, m SpeedModel) float64 {
	total := 0.0
	for _, ps := range rt.Segs {
		total += float64(ps.Seg.Interval().Len()) * m.CellDelayPs(ps.Layer)
	}
	total += float64(len(rt.Vias)) * m.ViaDelayPs
	return total
}

// Options tune the tuner.
type Options struct {
	// TolerancePs accepts a delay within ±TolerancePs of the target.
	// The paper tunes "to accuracies of a few hundred picoseconds";
	// besides the ~35 ps granularity of one via-grid bump, every
	// re-route may shift legs between fast outer and slow inner layers,
	// a ±10% noise floor on the measured delay.
	TolerancePs float64
	// MaxRounds bounds detour attempts per connection.
	MaxRounds int
}

// DefaultOptions returns sensible tuning parameters.
func DefaultOptions() Options {
	return Options{TolerancePs: 100, MaxRounds: 64}
}

// Result reports one tuned connection.
type Result struct {
	Conn       int
	TargetPs   float64
	BeforePs   float64
	AchievedPs float64
	Rounds     int
	Tuned      bool
}

// Tuner stretches routed connections to their target delays.
type Tuner struct {
	B    *board.Board
	R    *core.Router
	M    SpeedModel
	Opts Options
}

// New builds a tuner over a routed board.
func New(b *board.Board, r *core.Router, m SpeedModel, opts Options) *Tuner {
	if opts.TolerancePs <= 0 {
		opts.TolerancePs = DefaultOptions().TolerancePs
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = DefaultOptions().MaxRounds
	}
	return &Tuner{B: b, R: r, M: m, Opts: opts}
}

// DelayOf returns the current delay of connection i.
func (t *Tuner) DelayOf(i int) float64 {
	return RouteDelayPs(t.B, t.R.RouteOf(i), t.M)
}

// TuneAll tunes every connection with a nonzero TargetDelayPs, returning
// one result per tuned connection.
func (t *Tuner) TuneAll() []Result {
	var out []Result
	for i := range t.R.Conns {
		if t.R.Conns[i].TargetDelayPs > 0 && t.R.RouteOf(i).Method != core.NotRouted {
			out = append(out, t.Tune(i))
		}
	}
	return out
}

// Tune stretches connection i toward its target delay by adding detours
// of increasing depth between the endpoints (Figure 17). Each candidate
// detour is realized with Router.RouteThrough and measured; the search
// over the detour depth stops inside the tolerance band or at the round
// limit.
func (t *Tuner) Tune(i int) Result {
	target := t.R.Conns[i].TargetDelayPs
	res := Result{Conn: i, TargetPs: target, BeforePs: t.DelayOf(i)}
	res.AchievedPs = res.BeforePs

	if res.BeforePs > target+t.Opts.TolerancePs {
		// The target is below the already-minimal path: unachievable.
		return res
	}
	if within(res.BeforePs, target, t.Opts.TolerancePs) {
		res.Tuned = true
		return res
	}

	pitch := t.B.Cfg.Pitch
	cellPs := t.M.SlowestCellPs()
	// bumps accumulate: the route is always re-realized through every
	// bump added so far, so each round extends rather than replaces the
	// stretching (the repeated-detour process of Section 10.1). Anchor
	// positions that round to the same via column are used only once.
	var bumps []bump
	usedAnchor := map[int]bool{}
	for res.Rounds < t.Opts.MaxRounds {
		res.Rounds++
		if within(res.AchievedPs, target, t.Opts.TolerancePs) {
			res.Tuned = true
			return res
		}
		need := target - res.AchievedPs
		if need < 0 {
			// Overshot beyond tolerance; detours only add length, so
			// report the best we reached.
			return res
		}
		// A depth-k U detour adds about 2·k·pitch cells of trace.
		k := int(need/cellPs)/(2*pitch) + 1
		stretched := false
	depths:
		for _, depth := range depthLadder(k) {
			// Middle-out anchor order: central bumps leave the endpoint
			// neighborhoods clear.
			for _, frac := range []int{6, 4, 8, 3, 9, 2, 10, 5, 7, 1, 11} {
				anchor := t.anchorOf(i, frac)
				if usedAnchor[anchor] {
					continue
				}
				for _, side := range []int{1, -1} {
					nb := bump{frac: frac, side: side, depth: depth}
					wps := t.waypoints(i, append(append([]bump(nil), bumps...), nb))
					if wps == nil {
						continue
					}
					if t.R.RouteThrough(i, wps) {
						bumps = append(bumps, nb)
						usedAnchor[anchor] = true
						res.AchievedPs = t.DelayOf(i)
						stretched = true
						break depths
					}
				}
			}
		}
		if !stretched {
			return res
		}
		// If the realized legs came out longer than the Manhattan
		// estimate, the bump overshot: shrink it one via unit at a time
		// until the delay is back inside (or below) the band; if even
		// that cannot fix it, drop the bump and let the next round pick
		// a different anchor with a recomputed depth.
		for res.AchievedPs > target+t.Opts.TolerancePs && bumps[len(bumps)-1].depth > 1 {
			bumps[len(bumps)-1].depth--
			wps := t.waypoints(i, append([]bump(nil), bumps...))
			if wps == nil || !t.R.RouteThrough(i, wps) {
				break
			}
			res.AchievedPs = t.DelayOf(i)
		}
		if res.AchievedPs > target+t.Opts.TolerancePs {
			shorter := bumps[:len(bumps)-1]
			wps := t.waypoints(i, append([]bump(nil), shorter...))
			if wps != nil && t.R.RouteThrough(i, wps) {
				bumps = shorter
				res.AchievedPs = t.DelayOf(i)
			}
		}
	}
	res.Tuned = within(res.AchievedPs, target, t.Opts.TolerancePs)
	return res
}

// depthLadder proposes bump depths from the wanted k downward, so a bump
// that cannot fit (off board, blocked) degrades gracefully.
func depthLadder(k int) []int {
	var out []int
	seen := map[int]bool{}
	for _, d := range []int{k, (k + 1) / 2, (k + 3) / 4, 2, 1} {
		if d >= 1 && !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}

// anchorOf returns the via-column (or row) a bump at the given frac
// anchors to, for deduplication.
func (t *Tuner) anchorOf(i, frac int) int {
	c := t.R.Conns[i]
	cfg := t.B.Cfg
	dx, dy := c.B.X-c.A.X, c.B.Y-c.A.Y
	if abs(dx) >= abs(dy) {
		return cfg.NearestViaSite(geom.Pt(c.A.X+dx*frac/12, c.A.Y)).X
	}
	return cfg.NearestViaSite(geom.Pt(c.A.X, c.A.Y+dy*frac/12)).Y
}

// bump describes one U detour: its anchor position along the main
// direction (frac twelfths of the span), which side it pops out to, and
// its depth in via units.
type bump struct {
	frac, side, depth int
}

// waypoints converts a bump list into the ordered waypoint via sites, or
// nil if any site falls off the board or collides with an endpoint.
func (t *Tuner) waypoints(i int, bumps []bump) []geom.Point {
	c := t.R.Conns[i]
	cfg := t.B.Cfg
	pitch := cfg.Pitch
	bounds := cfg.Bounds()
	dx, dy := c.B.X-c.A.X, c.B.Y-c.A.Y
	horizontalish := abs(dx) >= abs(dy)

	// Order bumps along the main direction so legs progress monotonely.
	sortBumps(bumps, dx, dy, horizontalish)

	var out []geom.Point
	for _, bp := range bumps {
		// Anchor each bump on the straight line between the endpoints so
		// the perpendicular offset really adds ~2·depth·pitch of wire
		// even on diagonal connections.
		base := cfg.NearestViaSite(geom.Pt(c.A.X+dx*bp.frac/12, c.A.Y+dy*bp.frac/12))
		var w1, w2 geom.Point
		if horizontalish {
			x2 := base.X + 2*pitch
			if dx < 0 {
				x2 = base.X - 2*pitch
			}
			y := base.Y + bp.side*bp.depth*pitch
			w1, w2 = geom.Pt(base.X, y), geom.Pt(x2, y)
		} else {
			y2 := base.Y + 2*pitch
			if dy < 0 {
				y2 = base.Y - 2*pitch
			}
			x := base.X + bp.side*bp.depth*pitch
			w1, w2 = geom.Pt(x, base.Y), geom.Pt(x, y2)
		}
		if !w1.In(bounds) || !w2.In(bounds) || w1 == w2 ||
			!cfg.IsViaSite(w1) || !cfg.IsViaSite(w2) ||
			w1 == c.A || w1 == c.B || w2 == c.A || w2 == c.B {
			return nil
		}
		out = append(out, w1, w2)
	}
	return out
}

func sortBumps(bumps []bump, dx, dy int, horizontalish bool) {
	ascending := (horizontalish && dx >= 0) || (!horizontalish && dy >= 0)
	for i := 1; i < len(bumps); i++ {
		for j := i; j > 0; j-- {
			less := bumps[j].frac < bumps[j-1].frac
			if !ascending {
				less = bumps[j].frac > bumps[j-1].frac
			}
			if !less {
				break
			}
			bumps[j], bumps[j-1] = bumps[j-1], bumps[j]
		}
	}
}

func within(v, target, tol float64) bool {
	d := v - target
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Summary formats tuning results for reports.
func Summary(results []Result) string {
	tuned := 0
	for _, r := range results {
		if r.Tuned {
			tuned++
		}
	}
	return fmt.Sprintf("tuned %d/%d connections", tuned, len(results))
}
