// Package timing analyzes signal propagation delays over routed boards.
// The paper's Titan flow revolved around delays: placement "was devoted
// to shortening the critical timing paths found by the timing verifier"
// (Section 13), and ECL transmission lines make trace delay a first-class
// design quantity (Section 10.1). This package computes, for every net,
// the source-to-sink delay along the routed chain, slack against the
// net's target, and the board's critical paths.
package timing

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/tuning"
)

// Sink is one destination of a net with its accumulated delay from the
// net's source.
type Sink struct {
	At      geom.Point
	DelayPs float64
}

// NetReport is the timing of one routed net.
type NetReport struct {
	Net   string
	Sinks []Sink
	// WorstPs is the largest source-to-sink delay.
	WorstPs float64
	// TargetPs is the net's tuning target (0 = untimed).
	TargetPs float64
	// SlackPs is TargetPs - WorstPs for timed nets (negative = late).
	SlackPs float64
	// Incomplete marks nets with unrouted connections; their delays are
	// lower bounds.
	Incomplete bool
}

// Analyze computes per-net timing over a routed board. Connections are
// grouped by their Net name in input order — the stringer emits each
// net's chain in sequence, so accumulated delay along the slice order is
// the source-to-sink delay of the chain.
func Analyze(b *board.Board, r *core.Router, m tuning.SpeedModel) []NetReport {
	type acc struct {
		rep   *NetReport
		total float64
	}
	byNet := map[string]*acc{}
	var order []string

	for i := range r.Conns {
		c := &r.Conns[i]
		name := c.Net
		if name == "" {
			name = fmt.Sprintf("conn%d", i)
		}
		a, ok := byNet[name]
		if !ok {
			a = &acc{rep: &NetReport{Net: name, TargetPs: c.TargetDelayPs}}
			byNet[name] = a
			order = append(order, name)
		}
		rt := r.RouteOf(i)
		if rt.Method == core.NotRouted {
			a.rep.Incomplete = true
			continue
		}
		a.total += tuning.RouteDelayPs(b, rt, m)
		a.rep.Sinks = append(a.rep.Sinks, Sink{At: c.B, DelayPs: a.total})
		if a.total > a.rep.WorstPs {
			a.rep.WorstPs = a.total
		}
	}

	reports := make([]NetReport, 0, len(order))
	for _, name := range order {
		rep := byNet[name].rep
		if rep.TargetPs > 0 {
			rep.SlackPs = rep.TargetPs - rep.WorstPs
		}
		reports = append(reports, *rep)
	}
	return reports
}

// CriticalPaths returns the k slowest nets, worst first.
func CriticalPaths(reports []NetReport, k int) []NetReport {
	sorted := append([]NetReport(nil), reports...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].WorstPs > sorted[j].WorstPs
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}

// Violations returns the timed nets whose worst sink misses its target by
// more than tolPs (in either direction: ECL clock trees care about early
// arrival too).
func Violations(reports []NetReport, tolPs float64) []NetReport {
	var out []NetReport
	for _, rep := range reports {
		if rep.TargetPs <= 0 {
			continue
		}
		if rep.SlackPs < -tolPs || rep.SlackPs > tolPs {
			out = append(out, rep)
		}
	}
	return out
}

// Format renders a timing report table.
func Format(reports []NetReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %6s %10s %10s %10s %s\n", "net", "sinks", "worst(ps)", "target", "slack", "flags")
	for _, rep := range reports {
		target, slack := "-", "-"
		if rep.TargetPs > 0 {
			target = fmt.Sprintf("%.0f", rep.TargetPs)
			slack = fmt.Sprintf("%+.0f", rep.SlackPs)
		}
		flags := ""
		if rep.Incomplete {
			flags = "INCOMPLETE"
		}
		fmt.Fprintf(&sb, "%-12s %6d %10.0f %10s %10s %s\n",
			rep.Net, len(rep.Sinks), rep.WorstPs, target, slack, flags)
	}
	return sb.String()
}
