package timing

import (
	"strings"
	"testing"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/tuning"
)

// chainBoard routes one three-hop net (A→B→C) plus a two-hop net.
func chainBoard(t *testing.T) (*board.Board, *core.Router, tuning.SpeedModel) {
	t.Helper()
	b, err := board.New(grid.NewConfig(40, 20, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	pin := func(vx, vy int) geom.Point {
		p := b.Cfg.GridOf(geom.Pt(vx, vy))
		if err := b.PlacePin(p); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, c, e := pin(2, 5), pin(14, 5), pin(30, 5)
	x, y := pin(2, 12), pin(20, 12)
	conns := []core.Connection{
		{A: a, B: c, Net: "BUS"},
		{A: c, B: e, Net: "BUS"},
		{A: x, B: y, Net: "CLK", TargetDelayPs: 900},
	}
	r, err := core.New(b, conns, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res := r.Route(); !res.Complete() {
		t.Fatal("routing failed")
	}
	return b, r, tuning.DefaultSpeeds(4)
}

func TestAnalyzeChainAccumulates(t *testing.T) {
	b, r, m := chainBoard(t)
	reports := Analyze(b, r, m)
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	bus := reports[0]
	if bus.Net != "BUS" || len(bus.Sinks) != 2 {
		t.Fatalf("bus report: %+v", bus)
	}
	// The second sink accumulates the first hop's delay.
	if bus.Sinks[1].DelayPs <= bus.Sinks[0].DelayPs {
		t.Errorf("chain delay not accumulating: %v then %v", bus.Sinks[0].DelayPs, bus.Sinks[1].DelayPs)
	}
	if bus.WorstPs != bus.Sinks[1].DelayPs {
		t.Errorf("worst %v != last sink %v", bus.WorstPs, bus.Sinks[1].DelayPs)
	}
	// Delay magnitudes: hop1 is 12 via units = 36 cells ≈ 185-200 ps.
	if bus.Sinks[0].DelayPs < 150 || bus.Sinks[0].DelayPs > 400 {
		t.Errorf("hop1 delay %v ps implausible", bus.Sinks[0].DelayPs)
	}
}

func TestSlackComputation(t *testing.T) {
	b, r, m := chainBoard(t)
	reports := Analyze(b, r, m)
	clk := reports[1]
	if clk.Net != "CLK" || clk.TargetPs != 900 {
		t.Fatalf("clk report: %+v", clk)
	}
	if clk.SlackPs != 900-clk.WorstPs {
		t.Errorf("slack %v, want %v", clk.SlackPs, 900-clk.WorstPs)
	}
	// An untuned 18-via-unit run is far faster than 900 ps: positive
	// slack beyond tolerance → a violation (the net needs tuning).
	viol := Violations(reports, 100)
	if len(viol) != 1 || viol[0].Net != "CLK" {
		t.Fatalf("violations = %+v", viol)
	}
}

func TestViolationClearsAfterTuning(t *testing.T) {
	b, r, m := chainBoard(t)
	tn := tuning.New(b, r, m, tuning.DefaultOptions())
	results := tn.TuneAll()
	if len(results) != 1 || !results[0].Tuned {
		t.Fatalf("tuning: %+v", results)
	}
	reports := Analyze(b, r, m)
	if viol := Violations(reports, tn.Opts.TolerancePs); len(viol) != 0 {
		t.Fatalf("violations remain after tuning: %+v", viol)
	}
}

func TestCriticalPaths(t *testing.T) {
	b, r, m := chainBoard(t)
	reports := Analyze(b, r, m)
	top := CriticalPaths(reports, 1)
	if len(top) != 1 {
		t.Fatalf("top = %d", len(top))
	}
	// BUS spans 28 via units total; CLK spans 18 — BUS is critical.
	if top[0].Net != "BUS" {
		t.Errorf("critical net = %s, want BUS", top[0].Net)
	}
	if got := CriticalPaths(reports, 99); len(got) != len(reports) {
		t.Errorf("oversized k should clamp")
	}
}

func TestIncompleteNetFlagged(t *testing.T) {
	b, err := board.New(grid.NewConfig(20, 20, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	a := b.Cfg.GridOf(geom.Pt(2, 2))
	c := b.Cfg.GridOf(geom.Pt(15, 15))
	if err := b.PlacePin(a); err != nil {
		t.Fatal(err)
	}
	if err := b.PlacePin(c); err != nil {
		t.Fatal(err)
	}
	r, err := core.New(b, []core.Connection{{A: a, B: c, Net: "N"}}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Do NOT route: the connection stays unrouted.
	reports := Analyze(b, r, tuning.DefaultSpeeds(2))
	if len(reports) != 1 || !reports[0].Incomplete {
		t.Fatalf("unrouted net not flagged: %+v", reports)
	}
}

func TestFormat(t *testing.T) {
	b, r, m := chainBoard(t)
	out := Format(Analyze(b, r, m))
	if !strings.Contains(out, "BUS") || !strings.Contains(out, "CLK") || !strings.Contains(out, "worst(ps)") {
		t.Errorf("format output incomplete:\n%s", out)
	}
}
