// Package viamap implements the via map of Section 4: a dense per-site
// count of how many signal layers currently have a segment covering each
// via location. The count is zero for a free site, equal to the number of
// signal layers for a drilled (or pin) via, and in between when traces on
// some layers run over the site.
//
// The map exists because via-availability inquiries are two to four
// orders of magnitude more frequent than channel updates; the package
// counts both so the benchmark harness can verify that ratio (experiment
// E-VMAP).
package viamap

import (
	"fmt"

	"repro/internal/geom"
)

// Map holds one count per via site, indexed by via coordinates.
type Map struct {
	cols, rows int
	counts     []uint16

	// Probes and Updates count Free/Count calls and Inc/Dec calls
	// respectively; Section 4 predicts Probes/Updates between 1e2 and
	// 1e4 on real routing problems.
	Probes  uint64
	Updates uint64

	// underflow records the first Dec-below-zero, a bookkeeping bug in
	// the caller; see Invariant.
	underflow *InvariantError
}

// InvariantError reports a via-map bookkeeping violation: a Dec on a
// site whose count was already zero. The count stays clamped at zero so
// availability data is not corrupted; the error is surfaced through
// Invariant (and from there board.Audit and the router's Paranoid mode).
type InvariantError struct {
	At         geom.Point // via coordinates of the first underflow
	Underflows int        // total underflowing Dec calls observed
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("viamap: Dec below zero at via %v (%d underflow(s) total)", e.At, e.Underflows)
}

// New builds a zeroed via map spanning cols × rows via sites.
func New(cols, rows int) *Map {
	return &Map{cols: cols, rows: rows, counts: make([]uint16, cols*rows)}
}

// Cols returns the number of via-grid columns.
func (m *Map) Cols() int { return m.cols }

// Rows returns the number of via-grid rows.
func (m *Map) Rows() int { return m.rows }

func (m *Map) idx(v geom.Point) int {
	if v.X < 0 || v.X >= m.cols || v.Y < 0 || v.Y >= m.rows {
		panic(fmt.Sprintf("viamap: via %v outside %dx%d map", v, m.cols, m.rows))
	}
	return v.Y*m.cols + v.X
}

// InRange reports whether via coordinates v lie on the map.
func (m *Map) InRange(v geom.Point) bool {
	return v.X >= 0 && v.X < m.cols && v.Y >= 0 && v.Y < m.rows
}

// Inc records that one more layer's channel structure covers site v.
func (m *Map) Inc(v geom.Point) {
	m.Updates++
	m.counts[m.idx(v)]++
}

// Dec undoes one Inc. Decrementing a zero count is a bookkeeping bug in
// the caller; instead of panicking (which would take down a whole
// routing worker) or wrapping below zero (which would silently corrupt
// availability data for 65535 further probes), the count clamps at zero
// and the violation is recorded for Invariant to surface.
func (m *Map) Dec(v geom.Point) {
	m.Updates++
	i := m.idx(v)
	if m.counts[i] == 0 {
		if m.underflow == nil {
			m.underflow = &InvariantError{At: v}
		}
		m.underflow.Underflows++
		return
	}
	m.counts[i]--
}

// Invariant returns the recorded bookkeeping violation, or nil if every
// Dec so far matched a prior Inc. board.Audit checks it, so the router's
// Options.Paranoid turns an underflow into AbortInvariant.
func (m *Map) Invariant() error {
	if m.underflow == nil {
		return nil // typed-nil guard: never wrap a nil *InvariantError
	}
	return m.underflow
}

// Count returns the number of layers occupied at site v.
func (m *Map) Count(v geom.Point) int {
	m.Probes++
	return int(m.counts[m.idx(v)])
}

// Free reports whether site v is unoccupied on every layer, i.e. a via
// may be drilled there.
func (m *Map) Free(v geom.Point) bool {
	m.Probes++
	return m.counts[m.idx(v)] == 0
}

// ResetCounters clears the probe/update statistics.
func (m *Map) ResetCounters() { m.Probes, m.Updates = 0, 0 }

// Checksum returns an FNV-64a hash over the raw count array. It is a
// fingerprint ingredient for board snapshots and rollback verification,
// so it deliberately bypasses the Probes counter.
func (m *Map) Checksum() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range m.counts {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
