// Package viamap implements the via map of Section 4: a dense per-site
// count of how many signal layers currently have a segment covering each
// via location. The count is zero for a free site, equal to the number of
// signal layers for a drilled (or pin) via, and in between when traces on
// some layers run over the site.
//
// The map exists because via-availability inquiries are two to four
// orders of magnitude more frequent than channel updates; the package
// counts both so the benchmark harness can verify that ratio (experiment
// E-VMAP).
package viamap

import (
	"fmt"

	"repro/internal/geom"
)

// Map holds one count per via site, indexed by via coordinates.
type Map struct {
	cols, rows int
	counts     []uint16

	// Probes and Updates count Free/Count calls and Inc/Dec calls
	// respectively; Section 4 predicts Probes/Updates between 1e2 and
	// 1e4 on real routing problems.
	Probes  uint64
	Updates uint64
}

// New builds a zeroed via map spanning cols × rows via sites.
func New(cols, rows int) *Map {
	return &Map{cols: cols, rows: rows, counts: make([]uint16, cols*rows)}
}

// Cols returns the number of via-grid columns.
func (m *Map) Cols() int { return m.cols }

// Rows returns the number of via-grid rows.
func (m *Map) Rows() int { return m.rows }

func (m *Map) idx(v geom.Point) int {
	if v.X < 0 || v.X >= m.cols || v.Y < 0 || v.Y >= m.rows {
		panic(fmt.Sprintf("viamap: via %v outside %dx%d map", v, m.cols, m.rows))
	}
	return v.Y*m.cols + v.X
}

// InRange reports whether via coordinates v lie on the map.
func (m *Map) InRange(v geom.Point) bool {
	return v.X >= 0 && v.X < m.cols && v.Y >= 0 && v.Y < m.rows
}

// Inc records that one more layer's channel structure covers site v.
func (m *Map) Inc(v geom.Point) {
	m.Updates++
	m.counts[m.idx(v)]++
}

// Dec undoes one Inc. Decrementing a zero count is a bookkeeping bug and
// panics rather than corrupting availability data.
func (m *Map) Dec(v geom.Point) {
	m.Updates++
	i := m.idx(v)
	if m.counts[i] == 0 {
		panic(fmt.Sprintf("viamap: Dec below zero at via %v", v))
	}
	m.counts[i]--
}

// Count returns the number of layers occupied at site v.
func (m *Map) Count(v geom.Point) int {
	m.Probes++
	return int(m.counts[m.idx(v)])
}

// Free reports whether site v is unoccupied on every layer, i.e. a via
// may be drilled there.
func (m *Map) Free(v geom.Point) bool {
	m.Probes++
	return m.counts[m.idx(v)] == 0
}

// ResetCounters clears the probe/update statistics.
func (m *Map) ResetCounters() { m.Probes, m.Updates = 0, 0 }
