package viamap

import (
	"errors"
	"testing"

	"repro/internal/geom"
)

func TestIncDecCount(t *testing.T) {
	m := New(4, 3)
	v := geom.Pt(2, 1)
	if !m.Free(v) {
		t.Fatal("fresh map not free")
	}
	m.Inc(v)
	m.Inc(v)
	if m.Free(v) {
		t.Error("occupied site reported free")
	}
	if m.Count(v) != 2 {
		t.Errorf("Count = %d", m.Count(v))
	}
	m.Dec(v)
	m.Dec(v)
	if !m.Free(v) {
		t.Error("emptied site not free")
	}
}

// TestDecBelowZeroRecordsInvariant: an underflowing Dec must clamp at
// zero (no 65535-count corruption) and surface a typed error through
// Invariant rather than panicking.
func TestDecBelowZeroRecordsInvariant(t *testing.T) {
	m := New(2, 2)
	v := geom.Pt(0, 0)
	if m.Invariant() != nil {
		t.Fatal("fresh map reports an invariant violation")
	}
	m.Dec(v)
	if !m.Free(v) {
		t.Error("underflowing Dec corrupted the count; site no longer free")
	}
	err := m.Invariant()
	if err == nil {
		t.Fatal("underflow not recorded")
	}
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("Invariant() = %T, want *InvariantError", err)
	}
	if ie.At != v || ie.Underflows != 1 {
		t.Errorf("InvariantError = %+v, want At=%v Underflows=1", ie, v)
	}
	m.Dec(geom.Pt(1, 1))
	if m.Invariant().(*InvariantError).Underflows != 2 {
		t.Error("second underflow not counted")
	}
	if m.Invariant().(*InvariantError).At != v {
		t.Error("first underflow site not preserved")
	}
}

func TestChecksumTracksCounts(t *testing.T) {
	m := New(3, 3)
	base := m.Checksum()
	m.Inc(geom.Pt(1, 1))
	changed := m.Checksum()
	if changed == base {
		t.Error("Inc did not change the checksum")
	}
	m.Dec(geom.Pt(1, 1))
	if m.Checksum() != base {
		t.Error("Inc+Dec did not restore the checksum")
	}
	probes := m.Probes
	m.Checksum()
	if m.Probes != probes {
		t.Error("Checksum counted as a probe")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	for _, v := range []geom.Point{{X: -1, Y: 0}, {X: 2, Y: 0}, {X: 0, Y: 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("access at %v should panic", v)
				}
			}()
			m.Inc(v)
		}()
	}
	if m.InRange(geom.Pt(1, 1)) != true || m.InRange(geom.Pt(2, 0)) {
		t.Error("InRange misjudges")
	}
}

func TestCounters(t *testing.T) {
	m := New(3, 3)
	v := geom.Pt(1, 1)
	m.Inc(v)
	m.Free(v)
	m.Free(v)
	m.Count(v)
	if m.Updates != 1 || m.Probes != 3 {
		t.Errorf("updates=%d probes=%d", m.Updates, m.Probes)
	}
	m.ResetCounters()
	if m.Updates != 0 || m.Probes != 0 {
		t.Error("ResetCounters did not clear")
	}
}

func TestSitesAreIndependent(t *testing.T) {
	m := New(5, 5)
	m.Inc(geom.Pt(0, 0))
	m.Inc(geom.Pt(4, 4))
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			v := geom.Pt(x, y)
			wantFree := !(x == 0 && y == 0) && !(x == 4 && y == 4)
			if m.Free(v) != wantFree {
				t.Errorf("site %v free=%v", v, m.Free(v))
			}
		}
	}
}
