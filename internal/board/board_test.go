package board

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/layer"
)

func testBoard(t *testing.T, viaCols, viaRows, layers int) *Board {
	t.Helper()
	b, err := New(grid.NewConfig(viaCols, viaRows, 3, layers))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(grid.Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := New(grid.Config{Width: 5, Height: 5, Pitch: 3,
		Layers: []grid.Orientation{grid.Vertical, grid.Vertical}}); err == nil {
		t.Error("single-orientation stack accepted")
	}
}

func TestAddSegmentUpdatesViaMap(t *testing.T) {
	b := testBoard(t, 5, 5, 2)
	// Layer 0 is vertical: channel index = x. A segment in channel 3
	// (not a via column) must not touch the map.
	s := b.AddSegment(0, 1, 0, 11, 1)
	if s == nil {
		t.Fatal("add failed")
	}
	for vy := 0; vy < 5; vy++ {
		if !b.Vias.Free(geom.Pt(0, vy)) {
			t.Error("non-via-column segment changed via map")
		}
	}
	// Channel 3 = via column 1: covers via rows 0..3 of column 1 when
	// spanning grid rows 0..11.
	s2 := b.AddSegment(0, 3, 0, 11, 1)
	if s2 == nil {
		t.Fatal("add failed")
	}
	for vy := 0; vy <= 3; vy++ {
		if c := b.Vias.Count(geom.Pt(1, vy)); c != 1 {
			t.Errorf("via (1,%d) count = %d, want 1", vy, c)
		}
	}
	if c := b.Vias.Count(geom.Pt(1, 4)); c != 0 {
		t.Errorf("via (1,4) count = %d, want 0", c)
	}
	b.RemoveSegment(0, s2)
	for vy := 0; vy <= 4; vy++ {
		if !b.Vias.Free(geom.Pt(1, vy)) {
			t.Error("remove did not restore via map")
		}
	}
	if err := b.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestPartialViaCoverage(t *testing.T) {
	b := testBoard(t, 5, 5, 2)
	// Segment covering grid rows 4..8 of via column 0 touches via rows
	// 2 only (grid row 6).
	b.AddSegment(0, 0, 4, 8, 1)
	for vy := 0; vy < 5; vy++ {
		want := vy == 2
		if got := !b.Vias.Free(geom.Pt(0, vy)); got != want {
			t.Errorf("via (0,%d) occupied=%v want %v", vy, got, want)
		}
	}
}

func TestPlaceVia(t *testing.T) {
	b := testBoard(t, 4, 4, 3)
	p := geom.Pt(3, 6)
	pv, ok := b.PlaceVia(p, 7)
	if !ok {
		t.Fatal("PlaceVia failed")
	}
	if got := b.Vias.Count(geom.Pt(1, 2)); got != 3 {
		t.Errorf("via count = %d, want layers=3", got)
	}
	if b.ViaFree(p) {
		t.Error("drilled site still free")
	}
	for li := range b.Layers {
		if b.OwnerAt(li, p) != 7 {
			t.Errorf("layer %d owner = %d", li, b.OwnerAt(li, p))
		}
	}
	// A second via at the same spot must fail without side effects.
	if _, ok := b.PlaceVia(p, 8); ok {
		t.Error("double drill accepted")
	}
	if got := b.Vias.Count(geom.Pt(1, 2)); got != 3 {
		t.Errorf("failed drill disturbed the map: count=%d", got)
	}
	b.RemoveVia(pv)
	if !b.ViaFree(p) {
		t.Error("RemoveVia did not free the site")
	}
	if err := b.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceViaPartialBlockRollsBack(t *testing.T) {
	b := testBoard(t, 4, 4, 3)
	p := geom.Pt(3, 3)
	// Block only layer 1 (horizontal: channel y=3) at the point.
	if b.AddSegment(1, 3, 3, 3, 9) == nil {
		t.Fatal("setup add failed")
	}
	if _, ok := b.PlaceVia(p, 7); ok {
		t.Fatal("PlaceVia should fail on a blocked layer")
	}
	// Layers 0 and 2 must be untouched.
	if b.OwnerAt(0, p) != layer.NoConn || b.OwnerAt(2, p) != layer.NoConn {
		t.Error("failed PlaceVia left segments behind")
	}
	if err := b.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestPlacePin(t *testing.T) {
	b := testBoard(t, 4, 4, 2)
	if err := b.PlacePin(geom.Pt(1, 0)); err == nil {
		t.Error("off-grid pin accepted")
	}
	if err := b.PlacePin(geom.Pt(3, 3)); err != nil {
		t.Fatalf("PlacePin: %v", err)
	}
	if err := b.PlacePin(geom.Pt(3, 3)); err == nil {
		t.Error("duplicate pin accepted")
	}
	for li := range b.Layers {
		if b.OwnerAt(li, geom.Pt(3, 3)) != layer.PinOwner {
			t.Errorf("layer %d pin owner = %d", li, b.OwnerAt(li, geom.Pt(3, 3)))
		}
	}
}

func TestViaFreeSlowPathAgrees(t *testing.T) {
	b := testBoard(t, 6, 6, 4)
	rng := rand.New(rand.NewSource(3))
	// Scatter random metal.
	for i := 0; i < 60; i++ {
		li := rng.Intn(4)
		ch := rng.Intn(b.Layers[li].NumChannels())
		lo := rng.Intn(b.Layers[li].ChannelLength())
		hi := min(b.Layers[li].ChannelLength()-1, lo+rng.Intn(5))
		b.AddSegment(li, ch, lo, hi, layer.ConnID(i))
	}
	for vx := 0; vx < 6; vx++ {
		for vy := 0; vy < 6; vy++ {
			p := b.Cfg.GridOf(geom.Pt(vx, vy))
			b.UseViaMap = true
			fast := b.ViaFree(p)
			b.UseViaMap = false
			slow := b.ViaFree(p)
			if fast != slow {
				t.Errorf("via %v: map says %v, probing says %v", p, fast, slow)
			}
		}
	}
	b.UseViaMap = true
	if err := b.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestAuditDetectsDrift(t *testing.T) {
	b := testBoard(t, 4, 4, 2)
	// Corrupt the via map behind the board's back.
	b.Vias.Inc(geom.Pt(2, 2))
	if err := b.Audit(); err == nil {
		t.Error("Audit missed via-map drift")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid config")
		}
	}()
	MustNew(grid.Config{})
}
