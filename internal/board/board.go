// Package board ties the per-layer channel structures and the via map
// together into one mutable routing surface. Every segment addition and
// removal flows through this package so the via map can never drift out
// of sync with the channels (Section 4: the map is "updated each time
// segments are added and deleted from a layer").
package board

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/layer"
	"repro/internal/viamap"
)

// Board is the mutable routing state for one printed circuit board.
type Board struct {
	Cfg    grid.Config
	Layers []*layer.Layer
	Vias   *viamap.Map

	// UseViaMap selects between the paper's via map (true, the default)
	// and direct per-layer probing (false) for via-availability checks.
	// The slow path exists only for the E-VMAP ablation.
	UseViaMap bool

	// OffGridHoles lists plated-through holes drilled off the via grid
	// (Section 11's off-grid pins extension). The via map cannot track
	// them — it is indexed by via coordinates — so the power-plane
	// generator consults this list separately.
	OffGridHoles []geom.Point

	// VerifyRollbacks makes a successful Tx.Rollback verify that the
	// board fingerprint returned to its Begin-time value. The check only
	// applies when no other transaction committed in between (see
	// commitEpoch) — a rip-up transaction held open across a successful
	// re-route legitimately rolls back onto a changed board. The router
	// sets it under Options.Paranoid; the cost is two Fingerprint passes
	// per verified rollback.
	VerifyRollbacks bool

	// interposer, when set, may veto mutations (see Interpose).
	interposer Interposer
	// observer, when set, is notified after every applied mutation.
	observer MutationObserver
	// onMutate, when set, is also notified after every applied mutation
	// (see OnMutate) — the concurrent router's commit-log feed, kept
	// separate from the Interpose seam so both can be active at once.
	onMutate func(Record)
	// hooks are further mutation listeners (AddMutateHook): the goal
	// engine's lower-bound index and the incremental router's turn
	// tracking both listen without displacing onMutate or the observer.
	hooks []func(Record)

	// seq counts applied mutations; openTxs counts transactions holding
	// unresolved journal entries (see OpenTxs); commitEpoch counts
	// transactions whose mutations became permanent, so a rollback can
	// tell whether the board may legally differ from its Begin-time state.
	seq         uint64
	openTxs     int
	commitEpoch uint64
}

// Interposer intercepts board mutations before they are applied. A
// vetoed AddSegment returns nil and a vetoed PlaceVia returns false —
// indistinguishable from a genuine collision, which is the point: the
// internal/faultinject package uses the seam to drive the router's
// rollback, put-back-denied and re-route paths on a deterministic
// schedule. Removals are never intercepted (they cannot fail), so a veto
// can never corrupt board state. Production boards leave it unset; the
// cost is one nil check per mutation.
type Interposer interface {
	AllowAddSegment(li, ch, lo, hi int, owner layer.ConnID) bool
	AllowPlaceVia(p geom.Point, owner layer.ConnID) bool
}

// MutationObserver is an optional extension of Interposer: an interposer
// that also implements it is notified after every applied mutation,
// including removals (which Interposer cannot veto). The crash-injection
// harness uses it to kill a run at exactly the Nth mutation.
type MutationObserver interface {
	ObserveMutation(rec Record)
}

// Interpose installs the mutation interposer; nil removes it. If the
// interposer also implements MutationObserver it is installed as the
// board's mutation observer.
func (b *Board) Interpose(i Interposer) {
	b.interposer = i
	b.observer, _ = i.(MutationObserver)
}

// Mutations returns the number of mutations applied to the board so far.
func (b *Board) Mutations() uint64 { return b.seq }

// mutated records one applied mutation and notifies the observers.
func (b *Board) mutated(rec Record) {
	b.seq++
	if b.observer != nil {
		b.observer.ObserveMutation(rec)
	}
	if b.onMutate != nil {
		b.onMutate(rec)
	}
	for _, h := range b.hooks {
		if h != nil {
			h(rec)
		}
	}
}

// AddMutateHook registers f to be called after every applied mutation,
// alongside the observer and OnMutate listeners. It returns a function
// removing the hook again. Hooks may not mutate the board.
func (b *Board) AddMutateHook(f func(Record)) (remove func()) {
	b.hooks = append(b.hooks, f)
	idx := len(b.hooks) - 1
	return func() {
		b.hooks[idx] = nil
		for n := len(b.hooks); n > 0 && b.hooks[n-1] == nil; n-- {
			b.hooks = b.hooks[:n-1]
		}
	}
}

// New builds an empty board for the given configuration.
func New(cfg grid.Config) (*Board, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &Board{
		Cfg:       cfg,
		Layers:    make([]*layer.Layer, len(cfg.Layers)),
		Vias:      viamap.New(cfg.ViaCols(), cfg.ViaRows()),
		UseViaMap: true,
	}
	for i, o := range cfg.Layers {
		b.Layers[i] = layer.NewLayer(o, i, cfg.ChannelCount(o), cfg.ChannelLength(o))
	}
	return b, nil
}

// MustNew is New for configurations known valid at compile time (tests,
// examples); it panics on error.
func MustNew(cfg grid.Config) *Board {
	b, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// NumLayers returns the number of signal layers.
func (b *Board) NumLayers() int { return len(b.Layers) }

// AddSegment places a segment on layer li covering [lo, hi] of channel ch
// and updates the via map for every via site the segment covers. It
// returns nil if the space is not free.
func (b *Board) AddSegment(li, ch, lo, hi int, owner layer.ConnID) *layer.Segment {
	if b.interposer != nil && !b.interposer.AllowAddSegment(li, ch, lo, hi, owner) {
		return nil
	}
	return b.applySegment(li, ch, lo, hi, owner)
}

// applySegment is AddSegment without the interposer veto — the internal
// mutation path, also used by rollback recovery (which must not be
// vetoed; see Tx.redoFrom).
func (b *Board) applySegment(li, ch, lo, hi int, owner layer.ConnID) *layer.Segment {
	s := b.Layers[li].Add(ch, lo, hi, owner)
	if s != nil {
		b.bumpVias(li, ch, lo, hi, +1)
		b.mutated(Record{Kind: OpAddSegment, Layer: li, Ch: ch, Span: geom.Iv(lo, hi), Owner: owner})
	}
	return s
}

// RemoveSegment removes a segment previously added to layer li and
// updates the via map.
func (b *Board) RemoveSegment(li int, s *layer.Segment) {
	ch, lo, hi := s.Channel(), s.Lo, s.Hi
	owner := s.Owner
	b.Layers[li].Remove(s)
	b.bumpVias(li, ch, lo, hi, -1)
	b.mutated(Record{Kind: OpRemoveSegment, Layer: li, Ch: ch, Span: geom.Iv(lo, hi), Owner: owner})
}

// bumpVias adjusts the via-map counts for every via site covered by the
// channel interval.
func (b *Board) bumpVias(li, ch, lo, hi, delta int) {
	pitch := b.Cfg.Pitch
	if ch%pitch != 0 {
		return // the whole channel misses the via grid
	}
	first := lo
	if r := first % pitch; r != 0 {
		first += pitch - r
	}
	orient := b.Layers[li].Orient
	for pos := first; pos <= hi; pos += pitch {
		v := b.Cfg.ViaOf(b.Cfg.PointAt(orient, ch, pos))
		if delta > 0 {
			b.Vias.Inc(v)
		} else {
			b.Vias.Dec(v)
		}
	}
}

// ViaFree reports whether a via may be drilled at grid point p (which
// must be a via site): no layer may have any metal there. With UseViaMap
// unset it probes every layer's channel structure instead, the behaviour
// the paper's via map was introduced to avoid.
func (b *Board) ViaFree(p geom.Point) bool {
	if b.UseViaMap {
		// Direct division rather than Cfg.ViaOf: this is the hottest
		// probe in the router and p is always a via site here.
		return b.Vias.Free(geom.Pt(p.X/b.Cfg.Pitch, p.Y/b.Cfg.Pitch))
	}
	for _, l := range b.Layers {
		ch, pos := b.Cfg.ChanPos(l.Orient, p)
		b.Vias.Probes++ // count slow probes too, for the E-VMAP ratio
		if !l.Chan(ch).Free(pos) {
			return false
		}
	}
	return true
}

// PlacedVia records the per-layer segments of one drilled via (or pin) so
// it can be removed again.
type PlacedVia struct {
	At   geom.Point // grid coordinates
	Segs []*layer.Segment
}

// PlaceVia drills a via at grid point p owned by owner: a unit segment on
// every signal layer, since a hole potentially connects all layers. It
// returns false without side effects if any layer is blocked at p.
func (b *Board) PlaceVia(p geom.Point, owner layer.ConnID) (PlacedVia, bool) {
	if b.interposer != nil && !b.interposer.AllowPlaceVia(p, owner) {
		return PlacedVia{}, false
	}
	return b.drillVia(p, owner, false)
}

// placeViaQuiet is PlaceVia without any interposer veto — the internal
// via path used by rollback recovery (see Tx.redoFrom).
func (b *Board) placeViaQuiet(p geom.Point, owner layer.ConnID) (PlacedVia, bool) {
	return b.drillVia(p, owner, true)
}

func (b *Board) drillVia(p geom.Point, owner layer.ConnID, quiet bool) (PlacedVia, bool) {
	pv := PlacedVia{At: p, Segs: make([]*layer.Segment, 0, len(b.Layers))}
	for li, l := range b.Layers {
		ch, pos := b.Cfg.ChanPos(l.Orient, p)
		var s *layer.Segment
		if quiet {
			s = b.applySegment(li, ch, pos, pos, owner)
		} else {
			s = b.AddSegment(li, ch, pos, pos, owner)
		}
		if s == nil {
			b.RemoveVia(pv)
			return PlacedVia{}, false
		}
		pv.Segs = append(pv.Segs, s)
	}
	return pv, true
}

// RemoveVia removes a previously placed via.
func (b *Board) RemoveVia(pv PlacedVia) {
	for li, s := range pv.Segs {
		if s != nil {
			b.RemoveSegment(li, s)
		}
	}
}

// PlacePin marks a component pin at grid point p: like a via (pins are
// plated through-holes contacting every layer) but owned by PinOwner so
// the router never rips it up. Pins must lie on the via grid (Section 11
// lists off-grid pins as a limitation of the original system; see
// PlacePinOffGrid for the extension lifting it).
func (b *Board) PlacePin(p geom.Point) error {
	if !b.Cfg.IsViaSite(p) {
		return fmt.Errorf("board: pin at %v is off the via grid (pitch %d)", p, b.Cfg.Pitch)
	}
	if _, ok := b.PlaceVia(p, layer.PinOwner); !ok {
		return fmt.Errorf("board: pin site %v already occupied", p)
	}
	return nil
}

// PlacePinOffGrid drills a plated-through pin at an arbitrary grid point
// — the extension Section 11 recommends ("this restriction can (and
// should) be removed by generalizing Trace to connect arbitrary grid
// points"). The hole contacts every layer like any pin; because it lies
// off the via grid it is recorded in OffGridHoles for the power planes.
func (b *Board) PlacePinOffGrid(p geom.Point) error {
	if b.Cfg.IsViaSite(p) {
		return b.PlacePin(p)
	}
	if _, ok := b.PlaceVia(p, layer.PinOwner); !ok {
		return fmt.Errorf("board: pin site %v already occupied", p)
	}
	b.OffGridHoles = append(b.OffGridHoles, p)
	return nil
}

// PlaceKeepout blocks every grid cell of rectangle r (inclusive, grid
// coordinates) on every signal layer with KeepoutOwner-owned segments —
// mounting holes, board cutouts, or a region blocked by a design edit.
// The rectangle is clipped to the board; a keepout colliding with
// existing metal (a pin, a routed trace) is an error, and the board is
// left with the partial keepout placed — callers treat it as a rejected
// design, not a recoverable state.
func (b *Board) PlaceKeepout(r geom.Rect) error {
	r = r.Intersect(b.Cfg.Bounds())
	if r.Empty() {
		return fmt.Errorf("board: keepout %v lies outside the board", r)
	}
	for li, l := range b.Layers {
		chans, pos := b.Cfg.ChanSpan(l.Orient, r)
		for ch := chans.Lo; ch <= chans.Hi; ch++ {
			if b.AddSegment(li, ch, pos.Lo, pos.Hi, layer.KeepoutOwner) == nil {
				return fmt.Errorf("board: keepout %v collides with existing metal on layer %d channel %d", r, li, ch)
			}
		}
	}
	return nil
}

// OwnerAt returns the owner of the metal at grid point p on layer li, or
// layer.NoConn if the point is free.
func (b *Board) OwnerAt(li int, p geom.Point) layer.ConnID {
	l := b.Layers[li]
	ch, pos := b.Cfg.ChanPos(l.Orient, p)
	if s := l.Chan(ch).SegmentAt(pos); s != nil {
		return s.Owner
	}
	return layer.NoConn
}

// FreeAt reports whether grid point p is free on layer li.
func (b *Board) FreeAt(li int, p geom.Point) bool {
	return b.OwnerAt(li, p) == layer.NoConn
}

// Fingerprint returns an FNV-64a hash of the complete board state:
// every segment on every layer (in canonical channel order), the
// off-grid hole list, and the via-map counts. Two boards with the same
// fingerprint hold bit-identical routing state; Tx rollback verification
// and the checkpoint/resume equivalence tests are built on it.
func (b *Board) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	for li, l := range b.Layers {
		mix(uint64(li))
		l.VisitSegments(func(ch int, s *layer.Segment) bool {
			mix(uint64(ch))
			mix(uint64(int64(s.Lo)))
			mix(uint64(int64(s.Hi)))
			mix(uint64(int64(s.Owner)))
			return true
		})
	}
	for _, p := range b.OffGridHoles {
		mix(uint64(int64(p.X)))
		mix(uint64(int64(p.Y)))
	}
	mix(b.Vias.Checksum())
	return h
}

// Audit cross-checks every layer's channel invariants and recomputes the
// via map from scratch, returning an error describing the first
// inconsistency. Integration tests call it after routing.
func (b *Board) Audit() error {
	if err := b.Vias.Invariant(); err != nil {
		return err
	}
	for _, l := range b.Layers {
		if err := l.Audit(); err != nil {
			return err
		}
	}
	want := viamap.New(b.Cfg.ViaCols(), b.Cfg.ViaRows())
	for _, l := range b.Layers {
		for ci := 0; ci < l.NumChannels(); ci++ {
			if ci%b.Cfg.Pitch != 0 {
				continue
			}
			l.Chan(ci).VisitUsed(geom.Iv(0, l.ChannelLength()-1), func(s *layer.Segment) bool {
				first := s.Lo
				if r := first % b.Cfg.Pitch; r != 0 {
					first += b.Cfg.Pitch - r
				}
				for pos := first; pos <= s.Hi; pos += b.Cfg.Pitch {
					want.Inc(b.Cfg.ViaOf(b.Cfg.PointAt(l.Orient, ci, pos)))
				}
				return true
			})
		}
	}
	for vy := 0; vy < b.Vias.Rows(); vy++ {
		for vx := 0; vx < b.Vias.Cols(); vx++ {
			v := geom.Pt(vx, vy)
			if want.Count(v) != b.Vias.Count(v) {
				return fmt.Errorf("board: via map drift at via %v: recorded %d, actual %d",
					v, b.Vias.Count(v), want.Count(v))
			}
		}
	}
	return nil
}
