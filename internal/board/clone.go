// Shadow-board support for the concurrent router (DESIGN §11): cloning
// a board for a worker's private read snapshot, replaying committed
// mutation records to keep a clone in sync, and mapping records to the
// grid rectangles they touch so the committer can test region overlap
// without replaying journals.
package board

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/layer"
)

// OnMutate installs f to be called after every applied mutation, in
// addition to any MutationObserver installed via Interpose. The
// concurrent router's committer uses it to feed the shared commit log
// that worker shadows replay; nil removes it. Unlike the interposer
// seam this hook can never veto anything.
func (b *Board) OnMutate(f func(Record)) { b.onMutate = f }

// Clone returns an independent board holding bit-identical routing
// state: every segment (with its owner), the off-grid hole list and the
// via-map counts. Interposer, observer and OnMutate hooks are not
// copied, and the clone's mutation/transaction counters start at zero —
// a clone is a fresh board that happens to hold the same metal, so
// clone.Fingerprint() == b.Fingerprint(). The concurrent router gives
// each worker a clone as its private read snapshot.
func (b *Board) Clone() *Board {
	c := MustNew(b.Cfg)
	c.UseViaMap = b.UseViaMap
	if len(b.OffGridHoles) > 0 {
		c.OffGridHoles = append([]geom.Point(nil), b.OffGridHoles...)
	}
	for li, l := range b.Layers {
		ok := true
		l.VisitSegments(func(ch int, s *layer.Segment) bool {
			if c.applySegment(li, ch, s.Lo, s.Hi, s.Owner) == nil {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			panic("board: Clone could not replay a segment")
		}
	}
	c.seq = 0
	return c
}

// ApplyRecord applies one committed mutation record to the board — the
// shadow-sync path: worker snapshots replay the committer's log through
// it. Records bypass the interposer (they already happened on the
// master board; a veto here could only desynchronize the shadow). A
// record that cannot be applied — its space is taken, or the metal it
// removes is not present — returns an error, which on a shadow means
// the shadow has diverged and is unusable.
func (b *Board) ApplyRecord(rec Record) error {
	switch rec.Kind {
	case OpAddSegment:
		if b.applySegment(rec.Layer, rec.Ch, rec.Span.Lo, rec.Span.Hi, rec.Owner) == nil {
			return fmt.Errorf("board: ApplyRecord: space for %v is taken", rec)
		}
	case OpRemoveSegment:
		s := b.Layers[rec.Layer].Chan(rec.Ch).SegmentAt(rec.Span.Lo)
		if s == nil || s.Lo != rec.Span.Lo || s.Hi != rec.Span.Hi || s.Owner != rec.Owner {
			return fmt.Errorf("board: ApplyRecord: no segment matching %v", rec)
		}
		b.RemoveSegment(rec.Layer, s)
	case OpPlaceVia:
		if _, ok := b.placeViaQuiet(rec.At, rec.Owner); !ok {
			return fmt.Errorf("board: ApplyRecord: space for %v is taken", rec)
		}
	case OpRemoveVia:
		pv := PlacedVia{At: rec.At, Segs: make([]*layer.Segment, 0, len(b.Layers))}
		for _, l := range b.Layers {
			ch, pos := b.Cfg.ChanPos(l.Orient, rec.At)
			s := l.Chan(ch).SegmentAt(pos)
			if s == nil || s.Lo != pos || s.Hi != pos || s.Owner != rec.Owner {
				return fmt.Errorf("board: ApplyRecord: no via metal matching %v on layer %d", rec, l.Index)
			}
			pv.Segs = append(pv.Segs, s)
		}
		b.RemoveVia(pv)
	default:
		return fmt.Errorf("board: ApplyRecord: unknown record kind %v", rec.Kind)
	}
	return nil
}

// RecordRect returns the grid rectangle covered by the record's metal: a
// 1-wide strip along the channel for segment ops, a single cell for via
// ops (a via occupies one grid point on every layer). Any grid cell
// whose occupancy — on any layer, or in the via map — the mutation
// changed lies inside the returned rectangle; the concurrent router's
// region-overlap test relies on that freedom from false negatives.
func (b *Board) RecordRect(rec Record) geom.Rect {
	switch rec.Kind {
	case OpPlaceVia, OpRemoveVia:
		return geom.Bounding(rec.At, rec.At)
	default:
		o := b.Layers[rec.Layer].Orient
		return geom.Bounding(
			b.Cfg.PointAt(o, rec.Ch, rec.Span.Lo),
			b.Cfg.PointAt(o, rec.Ch, rec.Span.Hi),
		)
	}
}
