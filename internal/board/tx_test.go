package board

import (
	"errors"
	"testing"

	"repro/internal/geom"
	"repro/internal/layer"
)

// txDenier vetoes segment adds matching a predicate; used to force
// rollback conflicts on the undo path.
type txDenier struct {
	denySeg func(li, ch, lo, hi int, owner layer.ConnID) bool
	denyVia func(p geom.Point, owner layer.ConnID) bool
}

func (d *txDenier) AllowAddSegment(li, ch, lo, hi int, owner layer.ConnID) bool {
	return d.denySeg == nil || !d.denySeg(li, ch, lo, hi, owner)
}

func (d *txDenier) AllowPlaceVia(p geom.Point, owner layer.ConnID) bool {
	return d.denyVia == nil || !d.denyVia(p, owner)
}

func TestTxRollbackRestoresFingerprint(t *testing.T) {
	b := testBoard(t, 5, 5, 2)
	b.VerifyRollbacks = true
	if b.AddSegment(0, 1, 0, 8, 7) == nil {
		t.Fatal("setup add failed")
	}
	base := b.Fingerprint()

	tx := b.Begin()
	if tx.AddSegment(0, 3, 0, 11, 9) == nil {
		t.Fatal("tx add failed")
	}
	if _, ok := tx.PlaceVia(geom.Pt(6, 6), 9); !ok {
		t.Fatal("tx via failed")
	}
	if tx.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tx.Len())
	}
	if b.OpenTxs() != 1 {
		t.Fatalf("OpenTxs = %d, want 1", b.OpenTxs())
	}
	if b.Fingerprint() == base {
		t.Fatal("mutations did not change the fingerprint")
	}
	undo, err := tx.Rollback()
	if err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	if len(undo.Segs) != 0 || len(undo.Vias) != 0 {
		t.Errorf("rollback of pure placements returned undo %+v", undo)
	}
	if b.Fingerprint() != base {
		t.Error("rollback did not restore the board")
	}
	if b.OpenTxs() != 0 {
		t.Errorf("OpenTxs = %d after rollback", b.OpenTxs())
	}
	if err := b.Audit(); err != nil {
		t.Errorf("Audit after rollback: %v", err)
	}
}

func TestTxRollbackRestoresRemovals(t *testing.T) {
	b := testBoard(t, 5, 5, 2)
	b.VerifyRollbacks = true
	s := b.AddSegment(0, 3, 0, 11, 7)
	pv, ok := b.PlaceVia(geom.Pt(6, 6), 7)
	if s == nil || !ok {
		t.Fatal("setup failed")
	}
	base := b.Fingerprint()

	tx := b.Begin()
	tx.RemoveVia(pv)
	tx.RemoveSegment(0, s)
	if !b.FreeAt(0, geom.Pt(3, 5)) {
		t.Fatal("removal did not free the space")
	}
	undo, err := tx.Rollback()
	if err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	if b.Fingerprint() != base {
		t.Error("rollback did not restore removed metal")
	}
	// Undo lists re-created metal newest-removal-first: the segment
	// (removed last, undone first), then the via.
	if len(undo.Segs) != 1 || len(undo.Vias) != 1 {
		t.Fatalf("undo = %d segs, %d vias; want 1, 1", len(undo.Segs), len(undo.Vias))
	}
	if undo.Segs[0].Seg.Owner != 7 || undo.Segs[0].Layer != 0 {
		t.Errorf("undone segment = %+v", undo.Segs[0])
	}
	if undo.Vias[0].At != geom.Pt(6, 6) {
		t.Errorf("undone via at %v", undo.Vias[0].At)
	}
	if err := b.Audit(); err != nil {
		t.Errorf("Audit after rollback: %v", err)
	}
}

// TestTxRollbackVerifySkipsInterleavedCommit models the rip-up/put-back
// shape: a rip transaction stays open while another transaction commits
// new metal, then rolls back. The board legally differs from the rip's
// Begin-time state, so verification must not fire.
func TestTxRollbackVerifySkipsInterleavedCommit(t *testing.T) {
	b := testBoard(t, 5, 5, 2)
	b.VerifyRollbacks = true
	victim := b.AddSegment(0, 1, 0, 8, 7)
	if victim == nil {
		t.Fatal("setup failed")
	}

	rip := b.Begin()
	rip.RemoveSegment(0, victim)

	other := b.Begin()
	if other.AddSegment(0, 3, 0, 8, 9) == nil {
		t.Fatal("interleaved add failed")
	}
	other.Commit()

	undo, err := rip.Rollback()
	if err != nil {
		t.Fatalf("put-back rollback after interleaved commit: %v", err)
	}
	if len(undo.Segs) != 1 {
		t.Fatalf("undo = %d segs, want 1", len(undo.Segs))
	}
	if b.FreeAt(0, geom.Pt(1, 5)) || b.FreeAt(0, geom.Pt(3, 5)) {
		t.Error("board lost metal: victim and interleaved route must both exist")
	}
	if err := b.Audit(); err != nil {
		t.Errorf("Audit after put-back: %v", err)
	}
}

// TestTxRollbackVerifyCatchesUnjournaledMutation: a mutation made behind
// the journal's back (no transaction committed it) survives the rollback
// and must trip the fingerprint check.
func TestTxRollbackVerifyCatchesUnjournaledMutation(t *testing.T) {
	b := testBoard(t, 5, 5, 2)
	b.VerifyRollbacks = true
	tx := b.Begin()
	if tx.AddSegment(0, 1, 0, 8, 7) == nil {
		t.Fatal("tx add failed")
	}
	if b.AddSegment(0, 3, 0, 8, 9) == nil { // unjournaled, uncommitted
		t.Fatal("direct add failed")
	}
	_, err := tx.Rollback()
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("Rollback error = %v, want *InvariantError", err)
	}
}

// TestTxRollbackConflict: when another connection occupies the freed
// space before rollback, Rollback must report ConflictError and leave the
// board exactly as it was just before the Rollback call.
func TestTxRollbackConflict(t *testing.T) {
	b := testBoard(t, 5, 5, 2)
	s := b.AddSegment(0, 1, 0, 8, 7)
	if s == nil {
		t.Fatal("setup failed")
	}
	tx := b.Begin()
	tx.AddSegment(1, 0, 0, 8, 7) // will be undone before the conflict
	tx.RemoveSegment(0, s)
	// Another connection takes part of the freed channel.
	if b.AddSegment(0, 1, 2, 4, 8) == nil {
		t.Fatal("intruder add failed")
	}
	pre := b.Fingerprint()
	_, err := tx.Rollback()
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("Rollback = %v, want *ConflictError", err)
	}
	if ce.Rec.Kind != OpRemoveSegment {
		t.Errorf("conflict record = %v", ce.Rec)
	}
	if b.Fingerprint() != pre {
		t.Error("failed rollback did not restore the pre-Rollback board")
	}
	if b.OpenTxs() != 0 {
		t.Errorf("OpenTxs = %d after failed rollback", b.OpenTxs())
	}
	if err := b.Audit(); err != nil {
		t.Errorf("Audit after failed rollback: %v", err)
	}
}

// TestTxRollbackVetoedUndo: an interposer veto on the undo path is
// reported as a conflict (indistinguishable from a collision, as with
// every vetoed mutation), with recovery bypassing the veto.
func TestTxRollbackVetoedUndo(t *testing.T) {
	b := testBoard(t, 5, 5, 2)
	s := b.AddSegment(0, 1, 0, 8, 7)
	if s == nil {
		t.Fatal("setup failed")
	}
	tx := b.Begin()
	tx.AddSegment(1, 0, 0, 8, 7)
	tx.RemoveSegment(0, s)
	pre := b.Fingerprint()
	den := &txDenier{denySeg: func(li, ch, lo, hi int, owner layer.ConnID) bool {
		return li == 0 // block re-adding the removed segment
	}}
	b.Interpose(den)
	_, err := tx.Rollback()
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("Rollback = %v, want *ConflictError", err)
	}
	b.Interpose(nil)
	if b.Fingerprint() != pre {
		t.Error("recovery redo did not restore the pre-Rollback board (veto must not block redo)")
	}
}

func TestTxCommitKeepsMutations(t *testing.T) {
	b := testBoard(t, 5, 5, 2)
	tx := b.Begin()
	if tx.AddSegment(0, 1, 0, 8, 7) == nil {
		t.Fatal("tx add failed")
	}
	tx.Commit()
	if b.OpenTxs() != 0 {
		t.Errorf("OpenTxs = %d after commit", b.OpenTxs())
	}
	if b.FreeAt(0, geom.Pt(1, 4)) {
		t.Error("committed segment missing")
	}
	defer func() {
		if recover() == nil {
			t.Error("mutation through a committed Tx did not panic")
		}
	}()
	tx.AddSegment(0, 3, 0, 8, 7)
}

func TestTxEmptyDoesNotCountAsOpen(t *testing.T) {
	b := testBoard(t, 5, 5, 2)
	tx := b.Begin()
	// A vetoed/blocked mutation journals nothing.
	b.AddSegment(0, 1, 0, 8, 7)
	if tx.AddSegment(0, 1, 2, 4, 8) != nil {
		t.Fatal("overlapping add succeeded")
	}
	if b.OpenTxs() != 0 {
		t.Errorf("OpenTxs = %d for an empty tx", b.OpenTxs())
	}
	if _, err := tx.Rollback(); err != nil {
		t.Errorf("empty rollback: %v", err)
	}
}

func TestTxAdopt(t *testing.T) {
	b := testBoard(t, 5, 5, 2)
	base := b.Fingerprint()
	main := b.Begin()
	if main.AddSegment(0, 1, 0, 4, 7) == nil {
		t.Fatal("main add failed")
	}
	leg := b.Begin()
	if leg.AddSegment(1, 0, 0, 4, 7) == nil {
		t.Fatal("leg add failed")
	}
	if b.OpenTxs() != 2 {
		t.Fatalf("OpenTxs = %d, want 2", b.OpenTxs())
	}
	main.Adopt(leg)
	if b.OpenTxs() != 1 {
		t.Fatalf("OpenTxs = %d after Adopt, want 1", b.OpenTxs())
	}
	if main.Len() != 2 {
		t.Fatalf("Len = %d after Adopt, want 2", main.Len())
	}
	if _, err := main.Rollback(); err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	if b.Fingerprint() != base {
		t.Error("rollback after Adopt did not undo the adopted leg")
	}
}

func TestMutationObserverSeesRemovals(t *testing.T) {
	b := testBoard(t, 5, 5, 2)
	var seen []Record
	b.Interpose(recorder{&seen})
	s := b.AddSegment(0, 1, 0, 8, 7)
	b.RemoveSegment(0, s)
	if b.Mutations() != 2 {
		t.Errorf("Mutations = %d, want 2", b.Mutations())
	}
	if len(seen) != 2 || seen[0].Kind != OpAddSegment || seen[1].Kind != OpRemoveSegment {
		t.Errorf("observed %v", seen)
	}
	if seen[1].Owner != 7 || seen[1].Span != geom.Iv(0, 8) {
		t.Errorf("removal record = %+v", seen[1])
	}
}

type recorder struct{ out *[]Record }

func (recorder) AllowAddSegment(li, ch, lo, hi int, owner layer.ConnID) bool { return true }
func (recorder) AllowPlaceVia(p geom.Point, owner layer.ConnID) bool         { return true }
func (r recorder) ObserveMutation(rec Record)                                { *r.out = append(*r.out, rec) }

func TestAuditSurfacesViaMapInvariant(t *testing.T) {
	b := testBoard(t, 5, 5, 2)
	b.Vias.Dec(geom.Pt(0, 0)) // underflow
	if err := b.Audit(); err == nil {
		t.Error("Audit ignored a via-map underflow")
	}
}
