// The mutation journal: every speculative burst of board mutations —
// placing a candidate route, ripping up victims, stretching a tuned
// connection through detour vias — runs inside a Tx that appends one
// typed record per applied mutation to an in-memory redo/undo log.
// Undoing the burst is then Tx.Rollback, which walks the log backwards
// applying exact inverses, instead of a hand-written inverse call per
// site; keeping it is Tx.Commit, which seals the log. With
// Board.VerifyRollbacks set (the router's Paranoid mode) a successful
// rollback is checked against a fingerprint taken at Begin whenever no
// other transaction committed in between, so "rollback restores a
// bit-identical board" is an enforced invariant rather than a
// convention wherever it is supposed to hold.
package board

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/layer"
)

// OpKind names one journaled mutation type.
type OpKind uint8

const (
	OpAddSegment OpKind = iota
	OpRemoveSegment
	OpPlaceVia
	OpRemoveVia
)

func (k OpKind) String() string {
	switch k {
	case OpAddSegment:
		return "AddSegment"
	case OpRemoveSegment:
		return "RemoveSegment"
	case OpPlaceVia:
		return "PlaceVia"
	case OpRemoveVia:
		return "RemoveVia"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Record describes one applied board mutation in board coordinates —
// enough to invert it, and enough for an observer (fault injection,
// tracing) to identify it. Layer/Ch/Span/Owner describe segment ops; At
// and Owner describe via ops.
type Record struct {
	Kind  OpKind
	Layer int
	Ch    int
	Span  geom.Interval
	Owner layer.ConnID
	At    geom.Point
}

func (r Record) String() string {
	switch r.Kind {
	case OpPlaceVia, OpRemoveVia:
		return fmt.Sprintf("%s %v owner %d", r.Kind, r.At, r.Owner)
	default:
		return fmt.Sprintf("%s layer %d ch %d %v owner %d", r.Kind, r.Layer, r.Ch, r.Span, r.Owner)
	}
}

// txEntry pairs a record with the live handles its inverse needs. The
// handles are refreshed whenever an undo or redo re-creates the metal.
type txEntry struct {
	rec Record
	seg *layer.Segment // segment ops
	via PlacedVia      // via ops
}

// Tx is one open transaction over a Board. Mutations made through it are
// applied to the board immediately (and are visible to every reader) and
// journaled; Rollback undoes them exactly, Commit makes them permanent.
// A Tx is single-threaded, like the Board it belongs to, and must end in
// exactly one Commit, Rollback or Adopt.
type Tx struct {
	b       *Board
	entries []txEntry
	done    bool

	fp     uint64 // board fingerprint at Begin, for VerifyRollbacks
	haveFP bool
	epoch  uint64 // b.commitEpoch at Begin; verification gate
}

// Begin opens a transaction. With VerifyRollbacks set on the board it
// snapshots the board fingerprint so Rollback can prove restoration.
func (b *Board) Begin() *Tx {
	tx := &Tx{b: b, epoch: b.commitEpoch}
	if b.VerifyRollbacks {
		tx.fp = b.Fingerprint()
		tx.haveFP = true
	}
	return tx
}

// OpenTxs returns the number of transactions that hold journaled,
// unresolved mutations. Checkpointing asserts it is zero before
// serializing the board, so a snapshot can never observe a half-applied
// transaction.
func (b *Board) OpenTxs() int { return b.openTxs }

// Len returns the number of journaled mutations.
func (tx *Tx) Len() int { return len(tx.entries) }

// Records returns a copy of the journal, oldest first.
func (tx *Tx) Records() []Record {
	out := make([]Record, len(tx.entries))
	for i, e := range tx.entries {
		out[i] = e.rec
	}
	return out
}

// Occupies summarizes the region the transaction's mutations touch as a
// small set of grid rectangles: one bounding rectangle per layer with
// segment records, plus one for all via records (a via touches every
// layer and the via map at its point). The summary is free of false
// negatives — every grid cell whose occupancy any journaled mutation
// changed lies inside one of the returned rectangles — so the
// concurrent router's committer can test two transactions for possible
// overlap without replaying either journal. False positives are
// expected: the rectangles are bounding boxes.
func (tx *Tx) Occupies() []geom.Rect {
	empty := geom.R(0, 0, -1, -1)
	perLayer := make([]geom.Rect, len(tx.b.Layers))
	for i := range perLayer {
		perLayer[i] = empty
	}
	vias := empty
	for i := range tx.entries {
		rec := tx.entries[i].rec
		r := tx.b.RecordRect(rec)
		switch rec.Kind {
		case OpPlaceVia, OpRemoveVia:
			vias = vias.Union(r)
		default:
			perLayer[rec.Layer] = perLayer[rec.Layer].Union(r)
		}
	}
	var out []geom.Rect
	for _, r := range perLayer {
		if !r.Empty() {
			out = append(out, r)
		}
	}
	if !vias.Empty() {
		out = append(out, vias)
	}
	return out
}

func (tx *Tx) append(e txEntry) {
	if tx.done {
		panic("board: mutation through a resolved Tx")
	}
	if len(tx.entries) == 0 {
		tx.b.openTxs++
	}
	tx.entries = append(tx.entries, e)
}

// AddSegment is Board.AddSegment journaled in tx.
func (tx *Tx) AddSegment(li, ch, lo, hi int, owner layer.ConnID) *layer.Segment {
	s := tx.b.AddSegment(li, ch, lo, hi, owner)
	if s != nil {
		tx.append(txEntry{
			rec: Record{Kind: OpAddSegment, Layer: li, Ch: ch, Span: geom.Iv(lo, hi), Owner: owner},
			seg: s,
		})
	}
	return s
}

// RemoveSegment is Board.RemoveSegment journaled in tx.
func (tx *Tx) RemoveSegment(li int, s *layer.Segment) {
	rec := Record{Kind: OpRemoveSegment, Layer: li, Ch: s.Channel(), Span: s.Interval(), Owner: s.Owner}
	tx.b.RemoveSegment(li, s)
	tx.append(txEntry{rec: rec, seg: s})
}

// PlaceVia is Board.PlaceVia journaled in tx.
func (tx *Tx) PlaceVia(p geom.Point, owner layer.ConnID) (PlacedVia, bool) {
	pv, ok := tx.b.PlaceVia(p, owner)
	if ok {
		tx.append(txEntry{rec: Record{Kind: OpPlaceVia, At: p, Owner: owner}, via: pv})
	}
	return pv, ok
}

// RemoveVia is Board.RemoveVia journaled in tx.
func (tx *Tx) RemoveVia(pv PlacedVia) {
	owner := layer.NoConn
	for _, s := range pv.Segs {
		if s != nil {
			owner = s.Owner
			break
		}
	}
	tx.b.RemoveVia(pv)
	tx.append(txEntry{rec: Record{Kind: OpRemoveVia, At: pv.At, Owner: owner}, via: pv})
}

// Adopt moves every journaled mutation of other into tx, after tx's own,
// and resolves other. Route assembly uses it when independently built
// legs merge into one placement that must commit or roll back as a unit.
func (tx *Tx) Adopt(other *Tx) {
	if other.done {
		panic("board: Adopt of a resolved Tx")
	}
	if other.b != tx.b {
		panic("board: Adopt across boards")
	}
	other.done = true
	if len(other.entries) == 0 {
		return
	}
	tx.b.openTxs--
	if tx.done {
		panic("board: Adopt into a resolved Tx")
	}
	if len(tx.entries) == 0 {
		tx.b.openTxs++
	}
	tx.entries = append(tx.entries, other.entries...)
	other.entries = nil
}

// Commit seals the transaction: the journaled mutations become
// permanent and the journal is discarded.
func (tx *Tx) Commit() {
	permanent := len(tx.entries) > 0
	tx.resolve()
	if permanent {
		tx.b.commitEpoch++
	}
}

func (tx *Tx) resolve() {
	if tx.done {
		panic("board: Tx resolved twice")
	}
	tx.done = true
	if len(tx.entries) > 0 {
		tx.b.openTxs--
	}
}

// ConflictError reports a Rollback that could not re-create removed
// metal because another connection has since taken the space. The board
// is left exactly as it was before the Rollback call (the partially
// undone prefix is redone), so the caller can respond — the router
// re-routes the connection — without any cleanup of its own. For the
// rip-up/put-back loop this is an expected outcome, not a bug.
type ConflictError struct {
	Rec Record // the journal record whose inverse was blocked
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("board: rollback conflict: space for %v is taken", e.Rec)
}

// InvariantError reports that a completed rollback failed verification:
// the board fingerprint after undoing every journaled mutation differs
// from the fingerprint at Begin. It is only produced with
// Board.VerifyRollbacks set.
type InvariantError struct {
	Before, After uint64
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("board: rollback did not restore the board: fingerprint %016x, want %016x", e.After, e.Before)
}

// Undo lists the metal a successful Rollback re-created while inverting
// removals, newest-removal-first (the order the undo walk runs in).
// Callers that track live segment handles — the router's put-back —
// rebuild their bookkeeping from it; rollbacks of pure placements
// return an empty Undo.
type Undo struct {
	Segs []UndoneSeg
	Vias []PlacedVia
}

// UndoneSeg is one segment re-added by Rollback.
type UndoneSeg struct {
	Layer int
	Seg   *layer.Segment
}

// Rollback undoes every journaled mutation in reverse order and resolves
// the transaction. Re-creating removed metal goes through the normal
// (interposable) mutation path, so a genuine collision — or an injected
// veto — surfaces as a *ConflictError with the board restored to its
// pre-Rollback state. With Board.VerifyRollbacks set, a successful
// rollback is additionally checked to restore the Begin-time fingerprint
// — but only when no other transaction committed since Begin (the
// rip-up/put-back loop rolls its rip transaction back after re-routed
// victims committed new metal, and the board then legally differs). A
// mismatch returns *InvariantError.
func (tx *Tx) Rollback() (Undo, error) {
	var undo Undo
	for i := len(tx.entries) - 1; i >= 0; i-- {
		e := &tx.entries[i]
		if !tx.undoEntry(e, &undo) {
			tx.redoFrom(i + 1)
			tx.resolve()
			// The journaled mutations stay applied, exactly as if the
			// transaction had committed.
			tx.b.commitEpoch++
			return Undo{}, &ConflictError{Rec: e.rec}
		}
	}
	tx.resolve()
	if tx.haveFP && tx.b.commitEpoch == tx.epoch {
		if after := tx.b.Fingerprint(); after != tx.fp {
			return Undo{}, &InvariantError{Before: tx.fp, After: after}
		}
	}
	return undo, nil
}

// undoEntry applies the inverse of one journal entry, refreshing the
// entry's live handles so a later redo can find the re-created metal.
func (tx *Tx) undoEntry(e *txEntry, undo *Undo) bool {
	switch e.rec.Kind {
	case OpAddSegment:
		tx.b.RemoveSegment(e.rec.Layer, e.seg)
		return true
	case OpRemoveSegment:
		s := tx.b.AddSegment(e.rec.Layer, e.rec.Ch, e.rec.Span.Lo, e.rec.Span.Hi, e.rec.Owner)
		if s == nil {
			return false
		}
		e.seg = s
		undo.Segs = append(undo.Segs, UndoneSeg{Layer: e.rec.Layer, Seg: s})
		return true
	case OpPlaceVia:
		tx.b.RemoveVia(e.via)
		return true
	case OpRemoveVia:
		pv, ok := tx.b.PlaceVia(e.rec.At, e.rec.Owner)
		if !ok {
			return false
		}
		e.via = pv
		undo.Vias = append(undo.Vias, pv)
		return true
	default:
		panic("board: unknown journal record")
	}
}

// redoFrom re-applies entries[from:] in original order after a failed
// undo, returning the board to its pre-Rollback state. The redo path
// only re-applies mutations whose space the interrupted undo freed
// moments ago, so it bypasses the interposer — a veto here could not be
// confused with a collision, only corrupt the recovery — and treats any
// failure as a broken invariant.
func (tx *Tx) redoFrom(from int) {
	for i := from; i < len(tx.entries); i++ {
		e := &tx.entries[i]
		switch e.rec.Kind {
		case OpAddSegment:
			s := tx.b.applySegment(e.rec.Layer, e.rec.Ch, e.rec.Span.Lo, e.rec.Span.Hi, e.rec.Owner)
			if s == nil {
				panic(fmt.Sprintf("board: rollback recovery could not redo %v", e.rec))
			}
			e.seg = s
		case OpRemoveSegment:
			tx.b.RemoveSegment(e.rec.Layer, e.seg)
		case OpPlaceVia:
			pv, ok := tx.b.placeViaQuiet(e.rec.At, e.rec.Owner)
			if !ok {
				panic(fmt.Sprintf("board: rollback recovery could not redo %v", e.rec))
			}
			e.via = pv
		case OpRemoveVia:
			tx.b.RemoveVia(e.via)
		}
	}
}
