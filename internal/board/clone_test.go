package board

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/layer"
)

// populate places a small spread of metal: two segments on different
// layers and a via, under three owners.
func populate(t *testing.T, b *Board) {
	t.Helper()
	if b.AddSegment(0, 1, 0, 8, 7) == nil {
		t.Fatal("setup segment 1 failed")
	}
	if b.AddSegment(1, 2, 3, 11, 8) == nil {
		t.Fatal("setup segment 2 failed")
	}
	if _, ok := b.PlaceVia(geom.Pt(9, 9), 9); !ok {
		t.Fatal("setup via failed")
	}
}

func TestCloneIsBitIdenticalAndIndependent(t *testing.T) {
	b := testBoard(t, 5, 5, 2)
	populate(t, b)
	c := b.Clone()
	if c.Fingerprint() != b.Fingerprint() {
		t.Fatal("clone fingerprint differs from original")
	}
	if err := c.Audit(); err != nil {
		t.Fatalf("clone fails audit: %v", err)
	}
	// Occupied space must be occupied by the same owner on the clone.
	if c.FreeAt(0, geom.Pt(1, 4)) {
		t.Error("segment metal missing on clone")
	}
	if c.ViaFree(geom.Pt(9, 9)) {
		t.Error("via missing on clone")
	}
	// Mutating the clone must not leak into the original, and vice versa.
	base := b.Fingerprint()
	if c.AddSegment(0, 3, 0, 5, 11) == nil {
		t.Fatal("clone add failed")
	}
	if b.Fingerprint() != base {
		t.Error("mutating the clone changed the original")
	}
	if b.AddSegment(1, 4, 0, 5, 12) == nil {
		t.Fatal("original add failed")
	}
	if c.Fingerprint() == b.Fingerprint() {
		t.Error("boards should have diverged")
	}
	// The clone's counters start fresh: it is a new board that happens to
	// hold the same metal.
	if got := c.Mutations(); got != 1 {
		t.Errorf("clone Mutations = %d after one mutation, want 1", got)
	}
}

// TestApplyRecordReplaysMutationStream drives a board through adds,
// removals and via ops while recording the mutation stream via OnMutate,
// replays the stream onto a clone taken at the start, and demands the
// final boards be bit-identical. This is exactly the shadow-sync path of
// the concurrent router.
func TestApplyRecordReplaysMutationStream(t *testing.T) {
	b := testBoard(t, 6, 6, 2)
	populate(t, b)
	shadow := b.Clone()

	var log []Record
	b.OnMutate(func(rec Record) { log = append(log, rec) })

	s := b.AddSegment(0, 3, 0, 11, 21)
	if s == nil {
		t.Fatal("add failed")
	}
	pv, ok := b.PlaceVia(geom.Pt(3, 12), 21)
	if !ok {
		t.Fatal("via failed")
	}
	b.RemoveVia(pv)
	b.RemoveSegment(0, s)
	tx := b.Begin()
	if tx.AddSegment(1, 1, 0, 8, 22) == nil {
		t.Fatal("tx add failed")
	}
	if _, ok := tx.PlaceVia(geom.Pt(12, 3), 22); !ok {
		t.Fatal("tx via failed")
	}
	tx.Commit()
	b.OnMutate(nil)

	// Via placement/removal decomposes into one unit-segment record per
	// layer on the mutation stream (drillVia runs through AddSegment), so
	// the three via ops contribute two records each on a 2-layer board:
	// 1 add + 2 via-place + 2 via-remove + 1 remove + 1 tx-add + 2 tx-via.
	if len(log) != 9 {
		t.Fatalf("observed %d records, want 9", len(log))
	}
	for _, rec := range log {
		if err := shadow.ApplyRecord(rec); err != nil {
			t.Fatalf("ApplyRecord(%v): %v", rec, err)
		}
	}
	if shadow.Fingerprint() != b.Fingerprint() {
		t.Error("replayed shadow differs from master")
	}
	if err := shadow.Audit(); err != nil {
		t.Errorf("shadow fails audit: %v", err)
	}
}

// TestApplyRecordViaOps covers the OpPlaceVia/OpRemoveVia branches the
// mutation stream never produces (it decomposes vias into segment
// records): the committer's adopt path replays worker Tx journals, which
// do journal via ops as single records.
func TestApplyRecordViaOps(t *testing.T) {
	b := testBoard(t, 5, 5, 2)
	ref := testBoard(t, 5, 5, 2)
	if err := b.ApplyRecord(Record{Kind: OpPlaceVia, At: geom.Pt(6, 6), Owner: 7}); err != nil {
		t.Fatalf("ApplyRecord place via: %v", err)
	}
	if _, ok := ref.PlaceVia(geom.Pt(6, 6), 7); !ok {
		t.Fatal("reference via failed")
	}
	if b.Fingerprint() != ref.Fingerprint() {
		t.Error("applied via differs from directly placed via")
	}
	if err := b.ApplyRecord(Record{Kind: OpRemoveVia, At: geom.Pt(6, 6), Owner: 7}); err != nil {
		t.Fatalf("ApplyRecord remove via: %v", err)
	}
	if b.Fingerprint() != testBoard(t, 5, 5, 2).Fingerprint() {
		t.Error("via removal did not restore the empty board")
	}
	if err := b.Audit(); err != nil {
		t.Errorf("audit: %v", err)
	}
}

// TestApplyRecordRejectsDivergence: records that do not match the
// board's state — occupied space on an add, missing or mismatched metal
// on a remove — must error rather than corrupt the board.
func TestApplyRecordRejectsDivergence(t *testing.T) {
	b := testBoard(t, 5, 5, 2)
	populate(t, b)
	fp := b.Fingerprint()
	bad := []Record{
		{Kind: OpAddSegment, Layer: 0, Ch: 1, Span: geom.Iv(2, 4), Owner: 30},   // space taken
		{Kind: OpRemoveSegment, Layer: 0, Ch: 1, Span: geom.Iv(0, 4), Owner: 7}, // span mismatch
		{Kind: OpRemoveSegment, Layer: 0, Ch: 1, Span: geom.Iv(0, 8), Owner: 8}, // owner mismatch
		{Kind: OpRemoveSegment, Layer: 0, Ch: 3, Span: geom.Iv(0, 8), Owner: 7}, // nothing there
		{Kind: OpPlaceVia, At: geom.Pt(9, 9), Owner: 30},                        // site taken
		{Kind: OpRemoveVia, At: geom.Pt(3, 3), Owner: 9},                        // no via there
		{Kind: OpRemoveVia, At: geom.Pt(9, 9), Owner: 8},                        // owner mismatch
		{Kind: OpKind(200)}, // unknown op
	}
	for _, rec := range bad {
		if err := b.ApplyRecord(rec); err == nil {
			t.Errorf("ApplyRecord(%v) accepted a divergent record", rec)
		}
	}
	if b.Fingerprint() != fp {
		t.Error("rejected records changed the board")
	}
}

// TestTxOccupiesCoversEveryRecord is the false-negative-freedom contract
// of the region fingerprint: every cell a journaled mutation touched
// must lie inside one of the Occupies rectangles, so the committer's
// overlap test can never miss a real conflict.
func TestTxOccupiesCoversEveryRecord(t *testing.T) {
	b := testBoard(t, 6, 6, 2)
	tx := b.Begin()
	if len(tx.Occupies()) != 0 {
		t.Error("empty Tx occupies something")
	}
	if tx.AddSegment(0, 1, 0, 8, 7) == nil {
		t.Fatal("add failed")
	}
	if tx.AddSegment(1, 4, 2, 9, 7) == nil {
		t.Fatal("add failed")
	}
	if _, ok := tx.PlaceVia(geom.Pt(12, 12), 7); !ok {
		t.Fatal("via failed")
	}
	occ := tx.Occupies()
	// Two layers touched plus a via rect.
	if len(occ) != 3 {
		t.Fatalf("Occupies returned %d rects, want 3: %v", len(occ), occ)
	}
	for _, rec := range tx.Records() {
		r := b.RecordRect(rec)
		covered := false
		for _, o := range occ {
			if o.Intersect(r) == r {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("record %v rect %v not covered by any Occupies rect %v", rec, r, occ)
		}
	}
	if _, err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
}

func TestRecordRectSpansSegmentMetal(t *testing.T) {
	b := testBoard(t, 5, 5, 2)
	var recs []Record
	b.OnMutate(func(rec Record) { recs = append(recs, rec) })
	if b.AddSegment(0, 2, 1, 7, 7) == nil {
		t.Fatal("add failed")
	}
	if _, ok := b.PlaceVia(geom.Pt(6, 9), 8); !ok {
		t.Fatal("via failed")
	}
	b.OnMutate(nil)
	segRect := b.RecordRect(recs[0])
	o := b.Layers[0].Orient
	for pos := 1; pos <= 7; pos++ {
		if p := b.Cfg.PointAt(o, 2, pos); !p.In(segRect) {
			t.Errorf("segment cell %v outside RecordRect %v", p, segRect)
		}
	}
	viaRect := b.RecordRect(recs[1])
	if want := geom.Bounding(geom.Pt(6, 9), geom.Pt(6, 9)); viaRect != want {
		t.Errorf("via RecordRect = %v, want %v", viaRect, want)
	}
}

// TestTxConcurrentShadows is the -race stress test for the concurrent
// engine's sharing pattern: one master board whose committed records
// feed a shared log, and N goroutines each owning a private Clone that
// replays the log and runs its own speculative Begin/Adopt/Rollback
// bursts — some touching regions disjoint from the master's commits,
// some overlapping them (overlap on a private shadow is legal; the
// journal just records what applied). Boards are never shared between
// goroutines; only the log is, under a mutex — exactly the discipline
// concurrent.go relies on. The test asserts OpenTxs accounting and
// post-rollback fingerprints stay exact on every shadow.
func TestTxConcurrentShadows(t *testing.T) {
	const workers = 4
	const rounds = 50

	b := testBoard(t, 8, 8, 2)
	populate(t, b)

	var mu sync.Mutex
	var log []Record
	b.OnMutate(func(rec Record) {
		mu.Lock()
		log = append(log, rec)
		mu.Unlock()
	})

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		shadow := b.Clone()
		wg.Add(1)
		go func() {
			defer wg.Done()
			applied := 0
			for round := 0; round < rounds; round++ {
				// Sync with the master's committed history so far.
				mu.Lock()
				pending := log[applied:]
				applied = len(log)
				mu.Unlock()
				for _, rec := range pending {
					if err := shadow.ApplyRecord(rec); err != nil {
						errs <- err
						return
					}
				}
				base := shadow.Fingerprint()

				// A speculative burst: a main tx adopting a leg tx, with
				// segment spans that sometimes collide with master metal
				// replayed above (the add just fails and journals nothing).
				main := shadow.Begin()
				ch := (w + round) % 7
				main.AddSegment(0, ch, 0, 5, layer.ConnID(100+w))
				leg := shadow.Begin()
				leg.AddSegment(1, ch, 6, 11, layer.ConnID(100+w))
				leg.PlaceVia(geom.Pt(3*ch, 3*ch), layer.ConnID(100+w))
				main.Adopt(leg)
				if _, err := main.Rollback(); err != nil {
					errs <- err
					return
				}
				if n := shadow.OpenTxs(); n != 0 {
					errs <- fmt.Errorf("shadow %d: OpenTxs = %d after rollback", w, n)
					return
				}
				if shadow.Fingerprint() != base {
					errs <- fmt.Errorf("shadow %d: rollback did not restore the shadow", w)
					return
				}
			}
			errs <- nil
		}()
	}

	// Concurrently, the master keeps committing fresh metal into the log.
	for round := 0; round < rounds; round++ {
		tx := b.Begin()
		tx.AddSegment(0, 7, round%12, round%12, layer.ConnID(200+round))
		tx.Commit()
	}
	wg.Wait()
	b.OnMutate(nil)
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Audit(); err != nil {
		t.Errorf("master fails audit: %v", err)
	}
}
