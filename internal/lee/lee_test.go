package lee

import (
	"testing"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/layer"
	"repro/internal/verify"
)

func emptyBoard(t *testing.T, viaCols, viaRows, layers int) *board.Board {
	t.Helper()
	b, err := board.New(grid.NewConfig(viaCols, viaRows, 3, layers))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func pin(t *testing.T, b *board.Board, via geom.Point) geom.Point {
	t.Helper()
	p := b.Cfg.GridOf(via)
	if err := b.PlacePin(p); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRouteStraight(t *testing.T) {
	b := emptyBoard(t, 8, 8, 2)
	a := pin(t, b, geom.Pt(1, 3))
	c := pin(t, b, geom.Pt(6, 3))
	r := New(b, Options{})
	conn := core.Connection{A: a, B: c}
	rt, ok := r.RouteOne(conn, 0)
	if !ok {
		t.Fatal("straight route failed")
	}
	if err := verify.Connection(b, &conn, &rt, 0); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := b.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestRouteWithBend(t *testing.T) {
	b := emptyBoard(t, 8, 8, 2)
	a := pin(t, b, geom.Pt(1, 1))
	c := pin(t, b, geom.Pt(6, 6))
	r := New(b, Options{})
	conn := core.Connection{A: a, B: c}
	rt, ok := r.RouteOne(conn, 0)
	if !ok {
		t.Fatal("diagonal route failed")
	}
	if err := verify.Connection(b, &conn, &rt, 0); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestRouteAroundWall(t *testing.T) {
	b := emptyBoard(t, 8, 8, 2)
	a := pin(t, b, geom.Pt(1, 3))
	c := pin(t, b, geom.Pt(6, 3))
	// Wall on both layers between them, with a gap near the top.
	for li := 0; li < 2; li++ {
		o := b.Layers[li].Orient
		for y := 3; y < b.Cfg.Height; y++ {
			ch, pos := b.Cfg.ChanPos(o, geom.Pt(11, y))
			b.Layers[li].Add(ch, pos, pos, layer.KeepoutOwner)
		}
	}
	r := New(b, Options{})
	conn := core.Connection{A: a, B: c}
	rt, ok := r.RouteOne(conn, 0)
	if !ok {
		t.Fatal("route around wall failed")
	}
	if err := verify.Connection(b, &conn, &rt, 0); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// The path must have gone above the wall (y < 3 at x=11).
	crossed := false
	for _, ps := range rt.Segs {
		o := b.Layers[ps.Layer].Orient
		for pos := ps.Seg.Lo; pos <= ps.Seg.Hi; pos++ {
			p := b.Cfg.PointAt(o, ps.Seg.Channel(), pos)
			if p.X == 11 && p.Y < 3 {
				crossed = true
			}
		}
	}
	if !crossed {
		t.Error("route did not detour above the wall")
	}
}

func TestBlockedReportsFailure(t *testing.T) {
	b := emptyBoard(t, 8, 8, 2)
	a := pin(t, b, geom.Pt(1, 3))
	c := pin(t, b, geom.Pt(6, 3))
	// Full walls on both layers, no gap.
	for li := 0; li < 2; li++ {
		o := b.Layers[li].Orient
		for y := 0; y < b.Cfg.Height; y++ {
			ch, pos := b.Cfg.ChanPos(o, geom.Pt(11, y))
			b.Layers[li].Add(ch, pos, pos, layer.KeepoutOwner)
		}
	}
	r := New(b, Options{})
	if _, ok := r.RouteOne(core.Connection{A: a, B: c}, 0); ok {
		t.Fatal("route through a solid wall succeeded")
	}
	if r.Metrics().Failed != 1 {
		t.Errorf("Failed = %d", r.Metrics().Failed)
	}
}

func TestRouteManyNoOverlap(t *testing.T) {
	b := emptyBoard(t, 10, 10, 2)
	var conns []core.Connection
	for i := 0; i < 5; i++ {
		a := pin(t, b, geom.Pt(1, 1+2*i))
		c := pin(t, b, geom.Pt(8, 1+2*i))
		conns = append(conns, core.Connection{A: a, B: c})
	}
	r := New(b, Options{})
	m := r.Route(conns)
	if m.Routed != 5 {
		t.Fatalf("routed %d of 5", m.Routed)
	}
	if err := b.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCellsCap(t *testing.T) {
	b := emptyBoard(t, 12, 12, 2)
	a := pin(t, b, geom.Pt(1, 1))
	c := pin(t, b, geom.Pt(10, 10))
	r := New(b, Options{MaxCells: 3})
	if _, ok := r.RouteOne(core.Connection{A: a, B: c}, 0); ok {
		t.Fatal("cap of 3 cells should prevent routing across the board")
	}
}

// TestCellCountScalesWithDistance demonstrates the paper's complaint
// about the original algorithm: expansion work grows with distance even
// on an empty board, unlike grr's segment-based search.
func TestCellCountScalesWithDistance(t *testing.T) {
	b := emptyBoard(t, 20, 20, 2)
	near1, near2 := pin(t, b, geom.Pt(1, 1)), pin(t, b, geom.Pt(3, 1))
	far1, far2 := pin(t, b, geom.Pt(1, 10)), pin(t, b, geom.Pt(18, 10))

	r1 := New(b, Options{})
	if _, ok := r1.RouteOne(core.Connection{A: near1, B: near2}, 0); !ok {
		t.Fatal("near route failed")
	}
	nearCells := r1.Metrics().CellsExpanded

	r2 := New(b, Options{})
	if _, ok := r2.RouteOne(core.Connection{A: far1, B: far2}, 1); !ok {
		t.Fatal("far route failed")
	}
	farCells := r2.Metrics().CellsExpanded

	if farCells < 4*nearCells {
		t.Errorf("far expansion %d not ≫ near %d; cell Lee should scale with distance", farCells, nearCells)
	}
}
