// Package lee implements the original Lee/Moore maze router
// [Moore 59, Lee 61] on the routing grid: wavefront expansion over
// individual grid cells, with layer changes at free via sites. It is the
// baseline the paper's Section 8.2 improves on — "this choice leads to
// very slow searches, since many individual grid points must be scanned
// to advance a small distance across the board surface" — and exists here
// for the E-NEIGH ablation comparing cell neighbors against grr's
// via-hop neighbors.
//
// The router shares the board representation with grr so both search the
// same obstacle field; routes it materializes are regular segments and
// vias, so the two routers' outputs are directly comparable.
package lee

import (
	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/layer"
)

// Options configures the baseline router.
type Options struct {
	// Box restricts the search area; the zero value (or any empty box)
	// means the whole board.
	Box geom.Rect
	// MaxCells caps the number of cell expansions per connection, as a
	// safety net on large boards (0 = unlimited).
	MaxCells int
}

// Metrics counts work done by the baseline.
type Metrics struct {
	CellsExpanded int
	Routed        int
	Failed        int
	ViasAdded     int
}

// Router routes connections with the original Lee algorithm.
type Router struct {
	B       *board.Board
	Opts    Options
	metrics Metrics

	// Per-search state, reused across connections.
	marks []cellMark
	epoch uint32
}

// cellMark stores the BFS predecessor direction, packed per cell.
type cellMark struct {
	epoch uint32
	dir   uint8 // direction walked to reach this cell (dirNone at source)
}

const (
	dirNone uint8 = iota
	dirXPlus
	dirXMinus
	dirYPlus
	dirYMinus
	dirUp   // layer+1 via a drilled hole
	dirDown // layer-1
)

// New builds a baseline router over b.
func New(b *board.Board, opts Options) *Router {
	if opts.Box == (geom.Rect{}) || opts.Box.Empty() {
		opts.Box = b.Cfg.Bounds()
	}
	nl := len(b.Layers)
	return &Router{
		B:     b,
		Opts:  opts,
		marks: make([]cellMark, nl*b.Cfg.Width*b.Cfg.Height),
	}
}

// Metrics returns accumulated counters.
func (r *Router) Metrics() Metrics { return r.metrics }

type cell struct {
	li   int8
	x, y int32
}

func (r *Router) idx(c cell) int {
	w := r.B.Cfg.Width
	return (int(c.li)*r.B.Cfg.Height+int(c.y))*w + int(c.x)
}

func (r *Router) marked(c cell) bool {
	return r.marks[r.idx(c)].epoch == r.epoch
}

func (r *Router) mark(c cell, dir uint8) {
	r.marks[r.idx(c)] = cellMark{epoch: r.epoch, dir: dir}
}

// free reports whether the cell may carry this connection's metal: the
// cell is unoccupied, or occupied by the connection's own endpoints
// (pins are owned by PinOwner; we allow entering any cell belonging to
// the target pin column, handled by the caller via goal cells).
func (r *Router) free(c cell) bool {
	return r.B.FreeAt(int(c.li), geom.Pt(int(c.x), int(c.y)))
}

// RouteOne routes a single connection, materializing segments owned by
// id. It returns the realized route and whether routing succeeded.
func (r *Router) RouteOne(conn core.Connection, id layer.ConnID) (core.Route, bool) {
	r.epoch++
	cfg := r.B.Cfg
	box := r.Opts.Box.Intersect(cfg.Bounds())

	// Start cells: free cells 4-adjacent to A on any layer (the pin
	// occupies its own cell on every layer). Goal cells: free cells
	// 4-adjacent to B.
	goal := make(map[cell]bool)
	for li := range r.B.Layers {
		for _, d := range [4]geom.Point{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}} {
			p := conn.B.Add(d)
			if p.In(box) {
				goal[cell{int8(li), int32(p.X), int32(p.Y)}] = true
			}
		}
	}

	var queue []cell
	push := func(c cell, dir uint8) {
		r.mark(c, dir)
		queue = append(queue, c)
	}
	for li := range r.B.Layers {
		for _, d := range [4]geom.Point{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}} {
			p := conn.A.Add(d)
			c := cell{int8(li), int32(p.X), int32(p.Y)}
			if p.In(box) && r.free(c) && !r.marked(c) {
				push(c, dirNone)
			}
		}
	}

	var meet cell
	found := false
	for head := 0; head < len(queue) && !found; head++ {
		cur := queue[head]
		r.metrics.CellsExpanded++
		if r.Opts.MaxCells > 0 && r.metrics.CellsExpanded > r.Opts.MaxCells {
			break
		}
		if goal[cur] {
			meet = cur
			found = true
			break
		}
		// In-plane moves.
		type move struct {
			dx, dy int32
			dir    uint8
		}
		for _, m := range [4]move{{1, 0, dirXPlus}, {-1, 0, dirXMinus}, {0, 1, dirYPlus}, {0, -1, dirYMinus}} {
			n := cell{cur.li, cur.x + m.dx, cur.y + m.dy}
			if !geom.Pt(int(n.x), int(n.y)).In(box) || r.marked(n) || !r.free(n) {
				continue
			}
			push(n, m.dir)
		}
		// Layer changes need a drillable via site.
		p := geom.Pt(int(cur.x), int(cur.y))
		if cfg.IsViaSite(p) && r.B.ViaFree(p) {
			if int(cur.li)+1 < len(r.B.Layers) {
				n := cell{cur.li + 1, cur.x, cur.y}
				if !r.marked(n) {
					push(n, dirUp)
				}
			}
			if cur.li > 0 {
				n := cell{cur.li - 1, cur.x, cur.y}
				if !r.marked(n) {
					push(n, dirDown)
				}
			}
		}
	}
	if !found {
		r.metrics.Failed++
		return core.Route{}, false
	}

	rt, ok := r.materialize(meet, id)
	if !ok {
		r.metrics.Failed++
		return core.Route{}, false
	}
	r.metrics.Routed++
	r.metrics.ViasAdded += len(rt.Vias)
	return rt, true
}

// materialize retraces the marks from the meeting cell back to the start
// and places the path as unit segments plus vias at layer changes.
// Adjacent same-layer cells merge into longer segments.
func (r *Router) materialize(meet cell, id layer.ConnID) (core.Route, bool) {
	// Walk back collecting cells (meet..start).
	var cells []cell
	cur := meet
	for {
		cells = append(cells, cur)
		m := r.marks[r.idx(cur)]
		if m.dir == dirNone {
			break
		}
		switch m.dir {
		case dirXPlus:
			cur = cell{cur.li, cur.x - 1, cur.y}
		case dirXMinus:
			cur = cell{cur.li, cur.x + 1, cur.y}
		case dirYPlus:
			cur = cell{cur.li, cur.x, cur.y - 1}
		case dirYMinus:
			cur = cell{cur.li, cur.x, cur.y + 1}
		case dirUp:
			cur = cell{cur.li - 1, cur.x, cur.y}
		case dirDown:
			cur = cell{cur.li + 1, cur.x, cur.y}
		}
	}

	var rt core.Route
	rollback := func() {
		for _, ps := range rt.Segs {
			r.B.RemoveSegment(ps.Layer, ps.Seg)
		}
		for _, pv := range rt.Vias {
			r.B.RemoveVia(pv)
		}
	}

	// Vias where the layer changes.
	for i := 0; i+1 < len(cells); i++ {
		if cells[i].li != cells[i+1].li {
			p := geom.Pt(int(cells[i].x), int(cells[i].y))
			if !r.B.ViaFree(p) {
				continue // already drilled for this path (stacked change)
			}
			pv, ok := r.B.PlaceVia(p, id)
			if !ok {
				rollback()
				return core.Route{}, false
			}
			rt.Vias = append(rt.Vias, pv)
		}
	}

	// Merge maximal same-layer straight runs into segments. The path may
	// bend within a layer, so split runs at direction changes too; the
	// channel store needs one segment per (channel, interval).
	i := 0
	for i < len(cells) {
		j := i
		// Extend while on the same layer and collinear in the layer's
		// storable direction (either same x or same y works; segments
		// lie along the channel direction of the layer's orientation,
		// but any straight run can be stored as consecutive unit
		// segments if perpendicular).
		li := int(cells[i].li)
		o := r.B.Layers[li].Orient
		ch, _ := r.B.Cfg.ChanPos(o, geom.Pt(int(cells[i].x), int(cells[i].y)))
		lo, hi := 0, 0
		_, lo = r.B.Cfg.ChanPos(o, geom.Pt(int(cells[i].x), int(cells[i].y)))
		hi = lo
		for j+1 < len(cells) && cells[j+1].li == cells[i].li {
			nch, npos := r.B.Cfg.ChanPos(o, geom.Pt(int(cells[j+1].x), int(cells[j+1].y)))
			if nch != ch {
				break
			}
			if npos < lo {
				lo = npos
			}
			if npos > hi {
				hi = npos
			}
			j++
		}
		// Skip cells already covered by a via of this route (the via's
		// unit segments occupy all layers at its point).
		seg := r.B.AddSegment(li, ch, lo, hi, id)
		if seg == nil {
			// The run overlaps a via drilled above or the path steps
			// through a single cell: fall back to per-cell placement,
			// skipping covered cells.
			for k := i; k <= j; k++ {
				p := geom.Pt(int(cells[k].x), int(cells[k].y))
				if r.B.OwnerAt(li, p) == id {
					continue // covered by this route's via
				}
				_, pos := r.B.Cfg.ChanPos(o, p)
				s := r.B.AddSegment(li, ch, pos, pos, id)
				if s == nil {
					rollback()
					return core.Route{}, false
				}
				rt.Segs = append(rt.Segs, core.PlacedSeg{Layer: li, Seg: s})
			}
		} else {
			rt.Segs = append(rt.Segs, core.PlacedSeg{Layer: li, Seg: seg})
		}
		i = j + 1
	}
	return rt, true
}

// Route routes every connection in order with no rip-up, reporting how
// many completed. The baseline has no sorting, optimal strategies or
// rip-up: it measures the raw cell-wavefront algorithm.
func (r *Router) Route(conns []core.Connection) Metrics {
	for i, c := range conns {
		if c.A == c.B {
			r.metrics.Routed++
			continue
		}
		r.RouteOne(c, layer.ConnID(i))
	}
	return r.metrics
}
