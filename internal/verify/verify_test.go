package verify

import (
	"strings"
	"testing"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/layer"
)

// routedPair builds and routes one straight connection.
func routedPair(t *testing.T) (*board.Board, *core.Router) {
	t.Helper()
	b, err := board.New(grid.NewConfig(14, 14, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	a := b.Cfg.GridOf(geom.Pt(2, 6))
	c := b.Cfg.GridOf(geom.Pt(11, 6))
	if err := b.PlacePin(a); err != nil {
		t.Fatal(err)
	}
	if err := b.PlacePin(c); err != nil {
		t.Fatal(err)
	}
	r, err := core.New(b, []core.Connection{{A: a, B: c}}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res := r.Route(); !res.Complete() {
		t.Fatal("routing failed")
	}
	return b, r
}

func TestRoutedAcceptsGoodBoard(t *testing.T) {
	b, r := routedPair(t)
	if err := Routed(b, r); err != nil {
		t.Fatalf("clean board rejected: %v", err)
	}
}

func TestDetectsSeveredTrace(t *testing.T) {
	b, r := routedPair(t)
	// Remove one trace segment behind the verifier's back: the
	// connection is no longer electrically continuous.
	rt := r.RouteOf(0)
	if len(rt.Segs) == 0 {
		t.Fatal("no segments to sever")
	}
	ps := rt.Segs[0]
	b.RemoveSegment(ps.Layer, ps.Seg)
	err := Routed(b, r)
	if err == nil {
		t.Fatal("severed trace not detected")
	}
	// Either the ownership check or the connectivity flood must trip.
	if !strings.Contains(err.Error(), "connection 0") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestDetectsStolenCell(t *testing.T) {
	b, r := routedPair(t)
	rt := r.RouteOf(0)
	ps := rt.Segs[0]
	ch, lo, hi := ps.Seg.Channel(), ps.Seg.Lo, ps.Seg.Hi
	// Replace the segment with one owned by someone else.
	b.RemoveSegment(ps.Layer, ps.Seg)
	if b.AddSegment(ps.Layer, ch, lo, hi, 99) == nil {
		t.Fatal("re-add failed")
	}
	if err := Routed(b, r); err == nil {
		t.Fatal("foreign ownership not detected")
	}
}

func TestDetectsMissingEndpointPin(t *testing.T) {
	b, err := board.New(grid.NewConfig(10, 10, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	a := b.Cfg.GridOf(geom.Pt(1, 1))
	c := b.Cfg.GridOf(geom.Pt(7, 7))
	if err := b.PlacePin(a); err != nil {
		t.Fatal(err)
	}
	if err := b.PlacePin(c); err != nil {
		t.Fatal(err)
	}
	conn := core.Connection{A: a, B: c}
	// Fabricate a claimed route with no metal at all.
	rt := &core.Route{Method: core.ZeroVia}
	if err := Connection(b, &conn, rt, layer.ConnID(0)); err == nil {
		t.Fatal("empty realization accepted")
	}
}

func TestTrivialAndUnroutedSkipped(t *testing.T) {
	b, err := board.New(grid.NewConfig(10, 10, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	a := b.Cfg.GridOf(geom.Pt(1, 1))
	c := b.Cfg.GridOf(geom.Pt(7, 7))
	if err := b.PlacePin(a); err != nil {
		t.Fatal(err)
	}
	if err := b.PlacePin(c); err != nil {
		t.Fatal(err)
	}
	r, err := core.New(b, []core.Connection{{A: a, B: a}, {A: a, B: c}}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Route only partially: the trivial connection routes, the other is
	// left unrouted by never calling Route. Routed() must not complain
	// about either.
	if err := Routed(b, r); err != nil {
		t.Fatalf("unroutable states should be skipped: %v", err)
	}
}

func TestDetectsViaMapDrift(t *testing.T) {
	b, r := routedPair(t)
	b.Vias.Inc(geom.Pt(0, 0))
	if err := Routed(b, r); err == nil {
		t.Fatal("via-map drift not detected")
	}
}
