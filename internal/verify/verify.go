// Package verify audits routed boards. It is used by integration tests
// and by the example programs to prove, independently of the router's own
// bookkeeping, that every routed connection is electrically realized:
// the connection's own metal (trace segments, drilled vias, endpoint
// pins) must connect its two endpoints under 4-adjacency within a layer
// and via adjacency across layers, and no grid cell may be owned by two
// different connections.
package verify

import (
	"fmt"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/layer"
)

type cell struct {
	layer int
	x, y  int
}

// Routed checks every non-failed connection of the router. It returns the
// first problem found, or nil.
func Routed(b *board.Board, r *core.Router) error {
	if err := b.Audit(); err != nil {
		return err
	}
	for i := range r.Conns {
		rt := r.RouteOf(i)
		switch rt.Method {
		case core.NotRouted, core.Trivial:
			continue
		}
		if err := Connection(b, &r.Conns[i], rt, layer.ConnID(i+r.Opts.IDBase)); err != nil {
			return fmt.Errorf("connection %d (%s %v-%v, %s): %w",
				i, r.Conns[i].Net, r.Conns[i].A, r.Conns[i].B, rt.Method, err)
		}
	}
	return nil
}

// Connection verifies a single realized route: ownership of every claimed
// cell, and end-to-end connectivity through the connection's own metal.
func Connection(b *board.Board, c *core.Connection, rt *core.Route, id layer.ConnID) error {
	cells := make(map[cell]struct{})
	vias := make(map[geom.Point]struct{})

	// Trace segments.
	for _, ps := range rt.Segs {
		if !ps.Seg.Stored() {
			return fmt.Errorf("segment handle on layer %d is stale (metal removed behind the route's back)", ps.Layer)
		}
		if ps.Seg.Owner != id {
			return fmt.Errorf("segment on layer %d owned by %d, want %d", ps.Layer, ps.Seg.Owner, id)
		}
		o := b.Layers[ps.Layer].Orient
		for pos := ps.Seg.Lo; pos <= ps.Seg.Hi; pos++ {
			p := b.Cfg.PointAt(o, ps.Seg.Channel(), pos)
			cells[cell{ps.Layer, p.X, p.Y}] = struct{}{}
		}
	}
	// Drilled vias connect all layers at their site.
	for _, pv := range rt.Vias {
		vias[pv.At] = struct{}{}
		for li := range b.Layers {
			cells[cell{li, pv.At.X, pv.At.Y}] = struct{}{}
		}
	}
	// Endpoint pins are plated through-holes: all layers, and they join
	// the connection's metal.
	for _, p := range []geom.Point{c.A, c.B} {
		vias[p] = struct{}{}
		for li := range b.Layers {
			if got := b.OwnerAt(li, p); got != layer.PinOwner {
				return fmt.Errorf("endpoint %v layer %d not a pin (owner %d)", p, li, got)
			}
			cells[cell{li, p.X, p.Y}] = struct{}{}
		}
	}

	// Every non-pin cell must really be owned by this connection on the
	// board (cross-check against the live channel structures).
	for cl := range cells {
		p := geom.Pt(cl.x, cl.y)
		got := b.OwnerAt(cl.layer, p)
		if got != id && got != layer.PinOwner {
			return fmt.Errorf("cell %v layer %d owned by %d on the board", p, cl.layer, got)
		}
	}

	// Flood from A across the connection's own metal.
	start := cell{0, c.A.X, c.A.Y}
	seen := map[cell]struct{}{start: {}}
	queue := []cell{start}
	reachedB := false
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.x == c.B.X && cur.y == c.B.Y {
			reachedB = true
			break
		}
		push := func(n cell) {
			if _, in := cells[n]; !in {
				return
			}
			if _, dup := seen[n]; dup {
				return
			}
			seen[n] = struct{}{}
			queue = append(queue, n)
		}
		// Same layer, 4-adjacency.
		push(cell{cur.layer, cur.x + 1, cur.y})
		push(cell{cur.layer, cur.x - 1, cur.y})
		push(cell{cur.layer, cur.x, cur.y + 1})
		push(cell{cur.layer, cur.x, cur.y - 1})
		// Across layers only through this connection's vias/pins.
		if _, isVia := vias[geom.Pt(cur.x, cur.y)]; isVia {
			for li := range b.Layers {
				push(cell{li, cur.x, cur.y})
			}
		}
	}
	if !reachedB {
		return fmt.Errorf("endpoints not connected through the route's own metal (%d cells, %d vias)",
			len(cells), len(vias))
	}
	return nil
}
