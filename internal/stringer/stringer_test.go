package stringer

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// rig builds a design with one DIP at each given via position plus a
// terminator SIP strip along the bottom.
type rig struct {
	d     *netlist.Design
	parts []*netlist.Part
}

func newRig(cols, rows int, partsAt []geom.Point) *rig {
	r := &rig{d: &netlist.Design{Name: "t", ViaCols: cols, ViaRows: rows, Layers: 2}}
	dip := netlist.DIP(24, 3)
	for i, at := range partsAt {
		p := &netlist.Part{Name: "U" + string(rune('A'+i)), Pkg: dip, At: at}
		r.d.Parts = append(r.d.Parts, p)
		r.parts = append(r.parts, p)
	}
	sip := netlist.SIP(12, true)
	r.d.Parts = append(r.d.Parts, &netlist.Part{Name: "RT", Pkg: sip, At: geom.Pt(1, rows-2)})
	return r
}

func (r *rig) net(name string, tech netlist.Tech, pins ...netlist.NetPin) *netlist.Net {
	n := &netlist.Net{Name: name, Tech: tech, Pins: pins}
	r.d.Nets = append(r.d.Nets, n)
	return n
}

func pinOf(p *netlist.Part, pin int, f netlist.PinFunc) netlist.NetPin {
	return netlist.NetPin{Ref: netlist.PinRef{Part: p, Pin: pin}, Func: f}
}

func TestTwoPinECLNetGetsTermination(t *testing.T) {
	r := newRig(30, 30, []geom.Point{geom.Pt(1, 1), geom.Pt(15, 1)})
	r.net("N1", netlist.ECL, pinOf(r.parts[0], 1, netlist.Output), pinOf(r.parts[1], 1, netlist.Input))

	res, err := String(r.d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Chain: out -> in -> terminator = 2 connections.
	if len(res.Conns) != 2 {
		t.Fatalf("conns = %d, want 2", len(res.Conns))
	}
	term, ok := res.TermAssignments["N1"]
	if !ok {
		t.Fatal("no terminator assigned")
	}
	if term.Part.Name != "RT" {
		t.Errorf("terminator from %s", term.Part.Name)
	}
	// The chain must start at the output pin.
	cfg := r.d.GridConfig()
	if res.Conns[0].A != cfg.GridOf(r.parts[0].PinPos(1)) {
		t.Errorf("chain does not start at the output pin")
	}
	// The termination hop ends at the assigned resistor.
	if res.Conns[1].B != cfg.GridOf(term.Pos()) {
		t.Errorf("last hop does not reach the terminator")
	}
}

func TestTTLNetNoTermination(t *testing.T) {
	r := newRig(30, 30, []geom.Point{geom.Pt(1, 1), geom.Pt(15, 1)})
	r.net("N1", netlist.TTL, pinOf(r.parts[0], 1, netlist.Output), pinOf(r.parts[1], 1, netlist.Input))
	res, err := String(r.d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conns) != 1 {
		t.Fatalf("conns = %d, want 1", len(res.Conns))
	}
	if len(res.TermAssignments) != 0 {
		t.Error("TTL net got a terminator")
	}
}

func TestNearestNeighborChaining(t *testing.T) {
	// Three parts in a row; output at the left, inputs middle and right.
	// The chain must visit middle before right.
	r := newRig(60, 20, []geom.Point{geom.Pt(1, 1), geom.Pt(20, 1), geom.Pt(40, 1)})
	r.net("N1", netlist.TTL,
		pinOf(r.parts[0], 1, netlist.Output),
		pinOf(r.parts[2], 1, netlist.Input),
		pinOf(r.parts[1], 1, netlist.Input),
	)
	res, err := String(r.d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := r.d.GridConfig()
	wantOrder := []geom.Point{
		cfg.GridOf(r.parts[0].PinPos(1)),
		cfg.GridOf(r.parts[1].PinPos(1)),
		cfg.GridOf(r.parts[2].PinPos(1)),
	}
	if len(res.Conns) != 2 {
		t.Fatalf("conns = %d", len(res.Conns))
	}
	if res.Conns[0].A != wantOrder[0] || res.Conns[0].B != wantOrder[1] || res.Conns[1].B != wantOrder[2] {
		t.Errorf("chain order wrong: %+v", res.Conns)
	}
}

func TestOutputsPrecedeInputs(t *testing.T) {
	// Output far right, inputs to its left: outputs must still come
	// first even though an input is nearer the chain start.
	r := newRig(60, 20, []geom.Point{geom.Pt(1, 1), geom.Pt(20, 1), geom.Pt(40, 1)})
	r.net("N1", netlist.ECL,
		pinOf(r.parts[2], 1, netlist.Output),
		pinOf(r.parts[2], 3, netlist.Output),
		pinOf(r.parts[0], 1, netlist.Input),
		pinOf(r.parts[1], 1, netlist.Input),
	)
	res, err := String(r.d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 4 pins + term = 4 connections; first hop must join the two outputs.
	if len(res.Conns) != 4 {
		t.Fatalf("conns = %d", len(res.Conns))
	}
	cfg := r.d.GridConfig()
	outA := cfg.GridOf(r.parts[2].PinPos(1))
	outB := cfg.GridOf(r.parts[2].PinPos(3))
	first := res.Conns[0]
	if !(first.A == outA && first.B == outB) && !(first.A == outB && first.B == outA) {
		t.Errorf("first hop %v-%v does not join the outputs", first.A, first.B)
	}
}

func TestShortestStartIsChosen(t *testing.T) {
	// Two outputs at opposite ends; starting from the one nearer the
	// inputs gives a shorter chain.
	r := newRig(80, 20, []geom.Point{geom.Pt(1, 1), geom.Pt(30, 1), geom.Pt(60, 1)})
	r.net("N1", netlist.TTL,
		pinOf(r.parts[0], 1, netlist.Output),
		pinOf(r.parts[2], 1, netlist.Output),
		pinOf(r.parts[2], 5, netlist.Input),
		pinOf(r.parts[2], 7, netlist.Input),
	)
	res, err := String(r.d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range res.Conns {
		total += c.A.ManhattanDist(c.B)
	}
	// Optimal: start at U-right's output: out2->out0->... no; outputs
	// must precede inputs: chains are either out0,out2,in,in or
	// out2,out0,in,in. The latter ends at out0 (far from inputs) — so
	// the former wins. Verify against both candidates explicitly.
	cfg := r.d.GridConfig()
	pos := func(pt netlist.NetPin) geom.Point { return cfg.GridOf(pt.Ref.Pos()) }
	chainLen := func(chain []netlist.NetPin) int {
		s := 0
		for i := 0; i+1 < len(chain); i++ {
			s += pos(chain[i]).ManhattanDist(pos(chain[i+1]))
		}
		return s
	}
	nets := r.d.Nets[0].Pins
	cand1 := []netlist.NetPin{nets[0], nets[1], nets[2], nets[3]}
	cand2 := []netlist.NetPin{nets[1], nets[0], nets[2], nets[3]}
	best := min(chainLen(cand1), chainLen(cand2))
	if total != best {
		t.Errorf("chain length %d, optimal-start gives %d", total, best)
	}
}

func TestRandomStringingIsLonger(t *testing.T) {
	// Build many multi-pin nets; random stringing should give a total
	// length no shorter than nearest-neighbor (it is the paper's 25×
	// runtime experiment precondition).
	parts := []geom.Point{}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			parts = append(parts, geom.Pt(1+i*15, 1+j*8))
		}
	}
	r := newRig(70, 40, parts)
	for n := 0; n < 10; n++ {
		r.net("N"+string(rune('0'+n)), netlist.TTL,
			pinOf(r.parts[n], 1, netlist.Output),
			pinOf(r.parts[(n+5)%16], 2, netlist.Input),
			pinOf(r.parts[(n+9)%16], 3, netlist.Input),
			pinOf(r.parts[(n+13)%16], 4, netlist.Input),
		)
	}
	ordered, err := String(r.d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	random, err := String(r.d, Options{Random: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if random.TotalViaLen < ordered.TotalViaLen {
		t.Errorf("random stringing (%d) shorter than ordered (%d)", random.TotalViaLen, ordered.TotalViaLen)
	}
}

func TestTerminatorExhaustion(t *testing.T) {
	// More ECL nets than free terminator pins must fail loudly.
	r := newRig(40, 20, []geom.Point{geom.Pt(1, 1), geom.Pt(20, 1)})
	for n := 0; n < 13; n++ { // SIP12 has 12 pins
		r.net("N"+string(rune('a'+n)), netlist.ECL,
			pinOf(r.parts[0], n+1, netlist.Output),
			pinOf(r.parts[1], n+1, netlist.Input),
		)
	}
	if _, err := String(r.d, Options{}); err == nil {
		t.Fatal("terminator exhaustion not reported")
	}
}

func TestTerminatorsNotReused(t *testing.T) {
	r := newRig(40, 30, []geom.Point{geom.Pt(1, 1), geom.Pt(20, 1)})
	for n := 0; n < 6; n++ {
		r.net("N"+string(rune('a'+n)), netlist.ECL,
			pinOf(r.parts[0], n+1, netlist.Output),
			pinOf(r.parts[1], n+1, netlist.Input),
		)
	}
	res, err := String(r.d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[geom.Point]string{}
	for net, ref := range res.TermAssignments {
		if prev, dup := seen[ref.Pos()]; dup {
			t.Fatalf("terminator %v assigned to both %s and %s", ref.Pos(), prev, net)
		}
		seen[ref.Pos()] = net
	}
}

func TestConnectionMetadata(t *testing.T) {
	r := newRig(30, 30, []geom.Point{geom.Pt(1, 1), geom.Pt(15, 1)})
	n := r.net("CLK", netlist.ECL, pinOf(r.parts[0], 1, netlist.Output), pinOf(r.parts[1], 1, netlist.Input))
	n.TargetDelayPs = 850
	res, err := String(r.d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Conns {
		if c.Net != "CLK" || c.Class != "ECL" || c.TargetDelayPs != 850 {
			t.Errorf("metadata not propagated: %+v", c)
		}
	}
}

func TestTreeStringingShorterOrEqual(t *testing.T) {
	// A star-shaped TTL net: center pin plus three distant pins. The
	// chain must pass through all four in sequence; the tree connects
	// each arm to the center directly and is strictly shorter.
	r := newRig(80, 40, []geom.Point{geom.Pt(30, 15), geom.Pt(1, 15), geom.Pt(60, 15), geom.Pt(30, 1)})
	r.net("STAR", netlist.TTL,
		pinOf(r.parts[0], 1, netlist.Output),
		pinOf(r.parts[1], 1, netlist.Input),
		pinOf(r.parts[2], 1, netlist.Input),
		pinOf(r.parts[3], 1, netlist.Input),
	)
	chain, err := String(r.d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := String(r.d, Options{Trees: true})
	if err != nil {
		t.Fatal(err)
	}
	if tree.TotalViaLen > chain.TotalViaLen {
		t.Errorf("tree stringing (%d) longer than chain (%d)", tree.TotalViaLen, chain.TotalViaLen)
	}
	if tree.TotalViaLen == chain.TotalViaLen {
		t.Error("star net should benefit from tree topology")
	}
	// Same number of connections (n-1 edges either way).
	if len(tree.Conns) != len(chain.Conns) {
		t.Errorf("tree %d conns, chain %d", len(tree.Conns), len(chain.Conns))
	}
}

func TestTreesLeaveECLChained(t *testing.T) {
	r := newRig(60, 30, []geom.Point{geom.Pt(1, 1), geom.Pt(20, 1), geom.Pt(40, 1)})
	r.net("E", netlist.ECL,
		pinOf(r.parts[0], 1, netlist.Output),
		pinOf(r.parts[1], 1, netlist.Input),
		pinOf(r.parts[2], 1, netlist.Input),
	)
	plain, err := String(r.d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	trees, err := String(r.d, Options{Trees: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Conns) != len(trees.Conns) {
		t.Fatalf("conn counts differ: %d vs %d", len(plain.Conns), len(trees.Conns))
	}
	for i := range plain.Conns {
		if plain.Conns[i] != trees.Conns[i] {
			t.Fatalf("ECL net restrung differently under Trees at conn %d", i)
		}
	}
	if _, ok := trees.TermAssignments["E"]; !ok {
		t.Error("ECL net lost its terminator under Trees")
	}
}

func TestSpanningTreeConnects(t *testing.T) {
	r := newRig(80, 40, []geom.Point{geom.Pt(1, 1), geom.Pt(20, 8), geom.Pt(40, 2), geom.Pt(60, 20)})
	pins := []netlist.NetPin{
		pinOf(r.parts[0], 1, netlist.Output),
		pinOf(r.parts[1], 1, netlist.Input),
		pinOf(r.parts[2], 1, netlist.Input),
		pinOf(r.parts[3], 1, netlist.Input),
	}
	edges := spanningTree(pins)
	if len(edges) != 3 {
		t.Fatalf("edges = %d", len(edges))
	}
	// Union-find check: every pin in one component.
	parent := []int{0, 1, 2, 3}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, e := range edges {
		parent[find(e[0])] = find(e[1])
	}
	for i := 1; i < 4; i++ {
		if find(i) != find(0) {
			t.Fatal("spanning tree does not connect all pins")
		}
	}
}
