// Package stringer implements the net-to-connection preprocessing of
// Section 3. Nets are connected as chains: starting at an output pin, the
// nearest remaining pin is repeatedly appended (all outputs before all
// inputs), and ECL nets then receive the nearest free terminating
// resistor. When a net has several legal starting pins the chaining is
// repeated for each and the shortest overall chain wins.
//
// The router's input is the resulting flat list of pin-to-pin
// connections, which it may treat independently and in any order.
package stringer

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/netlist"
)

// Options control stringing.
type Options struct {
	// Random replaces nearest-neighbor chaining with a random pin order
	// (the Section 3 experiment that ran 25× slower; E-STR ablation).
	Random bool
	// Seed drives the random order; ignored unless Random is set.
	Seed int64
	// Trees joins TTL nets as minimum spanning trees instead of chains.
	// Section 3 notes the chain-only stringing is suboptimal because
	// "TTL allows nets to be joined by trees, not just chains"; this
	// option implements that improvement. ECL nets remain chains — they
	// are transmission lines and must stay linear.
	Trees bool
}

// Result carries the stringer output.
type Result struct {
	Conns []core.Connection
	// TermAssignments maps net name → resistor pin chosen to terminate it.
	TermAssignments map[string]netlist.PinRef
	// TotalViaLen is the summed Manhattan length of all connections in
	// via units; the stats package turns it into Table 1's %chan.
	TotalViaLen int
}

// String converts every net of the design into chained pin-to-pin
// connections. Terminating resistors for ECL nets are allocated from the
// pins of terminator parts that no net references; each resistor pin is
// used at most once.
func String(d *netlist.Design, opts Options) (*Result, error) {
	cfg := d.GridConfig()
	pool := freeTerminators(d)
	rng := rand.New(rand.NewSource(opts.Seed))

	res := &Result{TermAssignments: make(map[string]netlist.PinRef)}
	emit := func(net *netlist.Net, a, b geom.Point) {
		res.Conns = append(res.Conns, core.Connection{
			A:             cfg.GridOf(a),
			B:             cfg.GridOf(b),
			Net:           net.Name,
			Class:         net.Tech.String(),
			TargetDelayPs: net.TargetDelayPs,
		})
		res.TotalViaLen += a.ManhattanDist(b)
	}
	for _, net := range d.Nets {
		if opts.Trees && net.Tech == netlist.TTL && !opts.Random {
			for _, e := range spanningTree(net.Pins) {
				emit(net, net.Pins[e[0]].Ref.Pos(), net.Pins[e[1]].Ref.Pos())
			}
			continue
		}
		chain, err := chainNet(net, opts, rng)
		if err != nil {
			return nil, err
		}
		if net.Tech == netlist.ECL {
			term, ok := pool.takeNearest(chain[len(chain)-1].Ref.Pos())
			if !ok {
				return nil, fmt.Errorf("stringer: no free terminating resistor for ECL net %s", net.Name)
			}
			chain = append(chain, netlist.NetPin{Ref: term, Func: netlist.Termination})
			res.TermAssignments[net.Name] = term
		}
		for i := 0; i+1 < len(chain); i++ {
			emit(net, chain[i].Ref.Pos(), chain[i+1].Ref.Pos())
		}
	}
	return res, nil
}

// spanningTree returns the edges (pin index pairs) of a minimum spanning
// tree over the net's pins under Manhattan distance (Prim's algorithm;
// net sizes are small, so the O(n²) form is fine).
func spanningTree(pins []netlist.NetPin) [][2]int {
	n := len(pins)
	if n < 2 {
		return nil
	}
	inTree := make([]bool, n)
	bestDist := make([]int, n)
	bestFrom := make([]int, n)
	for i := range bestDist {
		bestDist[i] = 1 << 30
	}
	inTree[0] = true
	for i := 1; i < n; i++ {
		bestDist[i] = pins[0].Ref.Pos().ManhattanDist(pins[i].Ref.Pos())
		bestFrom[i] = 0
	}
	var edges [][2]int
	for len(edges) < n-1 {
		next, nd := -1, 1<<30
		for i := 0; i < n; i++ {
			if !inTree[i] && bestDist[i] < nd {
				next, nd = i, bestDist[i]
			}
		}
		if next < 0 {
			break
		}
		inTree[next] = true
		edges = append(edges, [2]int{bestFrom[next], next})
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := pins[next].Ref.Pos().ManhattanDist(pins[i].Ref.Pos()); d < bestDist[i] {
					bestDist[i], bestFrom[i] = d, next
				}
			}
		}
	}
	return edges
}

// chainNet orders one net's pins into a chain.
func chainNet(net *netlist.Net, opts Options, rng *rand.Rand) ([]netlist.NetPin, error) {
	if len(net.Pins) < 2 {
		return nil, fmt.Errorf("stringer: net %s has fewer than 2 pins", net.Name)
	}
	if opts.Random {
		return randomChain(net, rng), nil
	}

	outputs := net.Outputs()
	if len(outputs) == 0 {
		// TTL nets sometimes carry no role information; any pin may
		// start the chain then.
		best := greedyChain(net.Pins, 0)
		bestLen := chainLen(best)
		for start := 1; start < len(net.Pins); start++ {
			c := greedyChain(net.Pins, start)
			if l := chainLen(c); l < bestLen {
				best, bestLen = c, l
			}
		}
		return best, nil
	}

	// Any output may start the chain, but all outputs must precede the
	// inputs; try each legal start and keep the shortest chain.
	var best []netlist.NetPin
	bestLen := 0
	for i := range outputs {
		c := greedyOrderedChain(net.Pins, i)
		if l := chainLen(c); best == nil || l < bestLen {
			best, bestLen = c, l
		}
	}
	return best, nil
}

// greedyOrderedChain chains outputs first (starting from the startIdx-th
// output), then inputs, each phase by repeated nearest-neighbor.
func greedyOrderedChain(pins []netlist.NetPin, startIdx int) []netlist.NetPin {
	var outs, ins []netlist.NetPin
	for _, p := range pins {
		if p.Func == netlist.Output {
			outs = append(outs, p)
		} else {
			ins = append(ins, p)
		}
	}
	chain := make([]netlist.NetPin, 0, len(pins))
	chain = append(chain, outs[startIdx])
	outs = append(append([]netlist.NetPin{}, outs[:startIdx]...), outs[startIdx+1:]...)
	chain = appendNearest(chain, outs)
	chain = appendNearest(chain, ins)
	return chain
}

// greedyChain chains all pins by nearest-neighbor from the given start.
func greedyChain(pins []netlist.NetPin, start int) []netlist.NetPin {
	rest := make([]netlist.NetPin, 0, len(pins)-1)
	rest = append(rest, pins[:start]...)
	rest = append(rest, pins[start+1:]...)
	return appendNearest([]netlist.NetPin{pins[start]}, rest)
}

// appendNearest repeatedly moves the pin nearest the chain tail from rest
// to the chain.
func appendNearest(chain, rest []netlist.NetPin) []netlist.NetPin {
	rest = append([]netlist.NetPin(nil), rest...)
	for len(rest) > 0 {
		tail := chain[len(chain)-1].Ref.Pos()
		bi, bd := 0, -1
		for i, p := range rest {
			d := tail.ManhattanDist(p.Ref.Pos())
			if bd < 0 || d < bd {
				bi, bd = i, d
			}
		}
		chain = append(chain, rest[bi])
		rest = append(rest[:bi], rest[bi+1:]...)
	}
	return chain
}

// randomChain shuffles the pins, keeping some output first so the chain
// stays electrically legal.
func randomChain(net *netlist.Net, rng *rand.Rand) []netlist.NetPin {
	chain := append([]netlist.NetPin(nil), net.Pins...)
	rng.Shuffle(len(chain), func(i, j int) { chain[i], chain[j] = chain[j], chain[i] })
	for i, p := range chain {
		if p.Func == netlist.Output {
			chain[0], chain[i] = chain[i], chain[0]
			break
		}
	}
	return chain
}

func chainLen(chain []netlist.NetPin) int {
	total := 0
	for i := 0; i+1 < len(chain); i++ {
		total += chain[i].Ref.Pos().ManhattanDist(chain[i+1].Ref.Pos())
	}
	return total
}

// termPool is the set of unallocated terminator pins.
type termPool struct {
	free []netlist.PinRef
}

// freeTerminators collects every pin of terminator packages that no net
// references.
func freeTerminators(d *netlist.Design) *termPool {
	used := make(map[geom.Point]bool)
	for _, net := range d.Nets {
		for _, np := range net.Pins {
			used[np.Ref.Pos()] = true
		}
	}
	pool := &termPool{}
	for _, part := range d.Parts {
		if !part.Pkg.Terminator {
			continue
		}
		for pin := 1; pin <= part.Pkg.Pins(); pin++ {
			ref := netlist.PinRef{Part: part, Pin: pin}
			if !used[ref.Pos()] {
				pool.free = append(pool.free, ref)
			}
		}
	}
	// Deterministic order regardless of design construction order.
	sort.Slice(pool.free, func(i, j int) bool {
		a, b := pool.free[i].Pos(), pool.free[j].Pos()
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		if a.X != b.X {
			return a.X < b.X
		}
		return pool.free[i].Pin < pool.free[j].Pin
	})
	return pool
}

// takeNearest removes and returns the pool pin nearest p.
func (t *termPool) takeNearest(p geom.Point) (netlist.PinRef, bool) {
	if len(t.free) == 0 {
		return netlist.PinRef{}, false
	}
	bi, bd := 0, -1
	for i, ref := range t.free {
		d := p.ManhattanDist(ref.Pos())
		if bd < 0 || d < bd {
			bi, bd = i, d
		}
	}
	ref := t.free[bi]
	t.free = append(t.free[:bi], t.free[bi+1:]...)
	return ref, true
}
