package power

import (
	"testing"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/stringer"
	"repro/internal/workload"
)

// routedBoard generates, strings and routes a small workload board.
func routedBoard(t *testing.T) (*board.Board, *netlist.Design, *core.Router) {
	t.Helper()
	d, err := workload.Generate(workload.SmallSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := board.New(d.GridConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PlacePins(b); err != nil {
		t.Fatal(err)
	}
	sr, err := stringer.String(d, stringer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.New(b, sr.Conns, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res := r.Route(); !res.Complete() {
		t.Fatal("routing incomplete")
	}
	return b, d, r
}

func TestDefaultAssignment(t *testing.T) {
	dip := &netlist.Part{Name: "U", Pkg: netlist.DIP(24, 3)}
	sip := &netlist.Part{Name: "R", Pkg: netlist.SIP(12, true)}
	if DefaultAssignment(dip, 18) != "VCC" || DefaultAssignment(dip, 6) != "VEE" {
		t.Error("DIP power pins misassigned")
	}
	if DefaultAssignment(dip, 1) != "" || DefaultAssignment(dip, 12) != "" {
		t.Error("signal pins assigned to power")
	}
	if DefaultAssignment(sip, 1) != "VTT" || DefaultAssignment(sip, 2) != "" {
		t.Error("SIP rail pin misassigned")
	}
}

func TestGenerateCoversEveryHole(t *testing.T) {
	b, d, _ := routedBoard(t)
	plane, err := Generate(b, d, nil, "VCC", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Count drilled holes directly.
	holes := 0
	for vy := 0; vy < b.Cfg.ViaRows(); vy++ {
		for vx := 0; vx < b.Cfg.ViaCols(); vx++ {
			if b.Vias.Count(geom.Pt(vx, vy)) == b.NumLayers() {
				holes++
			}
		}
	}
	anti, thermal, clear := plane.Counts()
	if anti+thermal != holes {
		t.Errorf("features %d+%d cover %d of %d holes", anti, thermal, clear, holes)
	}
	// One VCC pin per DIP part.
	dips := 0
	for _, p := range d.Parts {
		if !p.Pkg.Terminator {
			dips++
		}
	}
	if thermal != dips {
		t.Errorf("thermals = %d, want one per DIP = %d", thermal, dips)
	}
}

func TestThermalsOnlyOnNetPins(t *testing.T) {
	b, d, _ := routedBoard(t)
	plane, err := Generate(b, d, nil, "VEE", Options{})
	if err != nil {
		t.Fatal(err)
	}
	veePins := map[geom.Point]bool{}
	for _, part := range d.Parts {
		for pin := 1; pin <= part.Pkg.Pins(); pin++ {
			if DefaultAssignment(part, pin) == "VEE" {
				veePins[b.Cfg.GridOf(part.PinPos(pin))] = true
			}
		}
	}
	for _, f := range plane.Features {
		if f.Kind == Thermal && !veePins[f.At] {
			t.Errorf("thermal at %v is not a VEE pin", f.At)
		}
		if f.Kind == Antipad && veePins[f.At] {
			t.Errorf("antipad at %v is a VEE pin", f.At)
		}
	}
}

func TestSignalViasGetAntipads(t *testing.T) {
	b, d, r := routedBoard(t)
	plane, err := Generate(b, d, nil, "VCC", Options{})
	if err != nil {
		t.Fatal(err)
	}
	feats := map[geom.Point]FeatureKind{}
	for _, f := range plane.Features {
		feats[f.At] = f.Kind
	}
	checked := 0
	for i := range r.Conns {
		for _, pv := range r.RouteOf(i).Vias {
			k, ok := feats[pv.At]
			if !ok {
				t.Fatalf("routed via at %v has no plane feature", pv.At)
			}
			if k != Antipad {
				t.Fatalf("routed via at %v is %v, want antipad", pv.At, k)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Skip("routing used no vias; nothing to check")
	}
}

func TestMountingHolesAppended(t *testing.T) {
	b, d, _ := routedBoard(t)
	opts := Options{MountingHoles: []Feature{
		{Kind: Clearance, At: geom.Pt(0, 0), RadiusMils: 150},
		{Kind: Clearance, At: geom.Pt(b.Cfg.Width-1, b.Cfg.Height-1), RadiusMils: 150},
	}}
	plane, err := Generate(b, d, nil, "VTT", opts)
	if err != nil {
		t.Fatal(err)
	}
	_, _, clear := plane.Counts()
	if clear != 2 {
		t.Errorf("clearances = %d", clear)
	}
}

func TestGenerateAll(t *testing.T) {
	b, d, _ := routedBoard(t)
	planes, err := GenerateAll(b, d, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(planes) != 3 {
		t.Fatalf("planes = %d, want VCC/VEE/VTT", len(planes))
	}
	want := []string{"VCC", "VEE", "VTT"}
	for i, p := range planes {
		if p.Net != want[i] {
			t.Errorf("plane %d = %s, want %s", i, p.Net, want[i])
		}
	}
}

func TestGenerateRejectsEmptyNet(t *testing.T) {
	b, d, _ := routedBoard(t)
	if _, err := Generate(b, d, nil, "", Options{}); err == nil {
		t.Error("empty net accepted")
	}
}

func TestFeatureKindString(t *testing.T) {
	if Antipad.String() != "antipad" || Thermal.String() != "thermal" || Clearance.String() != "clearance" {
		t.Error("FeatureKind strings wrong")
	}
}
