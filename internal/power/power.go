// Package power generates power-plane etching patterns (Section 2 and the
// appendix, Figure 22). A power layer is left as solid copper except
// where connections must be prevented: every drilled hole that does not
// belong to the plane's net gets a clearance disk (antipad), every pin of
// the plane's net gets a thermal relief (spoked connection that slows
// heat flow into the copper mass during soldering), and mounting screws
// get large clearance circles. Generation is straightforward once the
// complete pattern of vias is known — i.e. after routing.
package power

import (
	"fmt"

	"repro/internal/board"
	"repro/internal/geom"
	"repro/internal/netlist"
)

// Assignment maps a part pin to the power net it belongs to, or "" for
// signal pins. The router never sees power pins in this model; they exist
// only for plane generation.
type Assignment func(part *netlist.Part, pin int) string

// DefaultAssignment models the common ECL convention on this board
// family: DIP logic parts take VCC on pin 18 and VEE on pin 6; resistor
// SIPs tie pin 1 to VTT (the -2V termination rail).
func DefaultAssignment(part *netlist.Part, pin int) string {
	if part.Pkg.Terminator {
		if pin == 1 {
			return "VTT"
		}
		return ""
	}
	switch pin {
	case 18:
		return "VCC"
	case 6:
		return "VEE"
	}
	return ""
}

// Feature kinds on a plane.
type FeatureKind uint8

const (
	// Antipad is a clearance disk around a hole not connected to this
	// plane.
	Antipad FeatureKind = iota
	// Thermal is a spoked connection of a hole that IS connected to this
	// plane.
	Thermal
	// Clearance is a large etched circle (mounting screws).
	Clearance
)

func (k FeatureKind) String() string {
	switch k {
	case Antipad:
		return "antipad"
	case Thermal:
		return "thermal"
	default:
		return "clearance"
	}
}

// Feature is one etched element of a plane.
type Feature struct {
	Kind FeatureKind
	At   geom.Point // grid units
	// RadiusMils is the etched radius; antipads default to the process
	// clearance, Clearances are caller-specified.
	RadiusMils int
}

// Plane is the generated pattern for one power net.
type Plane struct {
	Net      string
	Features []Feature
}

// Counts returns how many features of each kind the plane holds.
func (p *Plane) Counts() (antipads, thermals, clearances int) {
	for _, f := range p.Features {
		switch f.Kind {
		case Antipad:
			antipads++
		case Thermal:
			thermals++
		case Clearance:
			clearances++
		}
	}
	return
}

// Options control plane generation.
type Options struct {
	// AntipadRadiusMils is the clearance disk radius (default 40: a
	// 60-mil pad plus isolation).
	AntipadRadiusMils int
	// ThermalRadiusMils is the thermal relief outer radius (default 45).
	ThermalRadiusMils int
	// MountingHoles lists screw locations (grid units) with clearance
	// radii in mils.
	MountingHoles []Feature
}

// Generate builds the plane for one power net after routing: every
// drilled hole on the board (pin or signal via) gets an antipad unless it
// is a pin assigned to this net, which gets a thermal relief instead.
//
// A hole exists wherever the via map shows every layer occupied at a via
// site (pins and completed vias cover all layers; a site merely crossed
// by traces is not drilled).
func Generate(b *board.Board, d *netlist.Design, assign Assignment, net string, opts Options) (*Plane, error) {
	if net == "" {
		return nil, fmt.Errorf("power: empty net name")
	}
	if assign == nil {
		assign = DefaultAssignment
	}
	if opts.AntipadRadiusMils == 0 {
		opts.AntipadRadiusMils = 40
	}
	if opts.ThermalRadiusMils == 0 {
		opts.ThermalRadiusMils = 45
	}

	// Pins of this net, by grid position.
	netPins := make(map[geom.Point]bool)
	for _, part := range d.Parts {
		for pin := 1; pin <= part.Pkg.Pins(); pin++ {
			if assign(part, pin) == net {
				netPins[b.Cfg.GridOf(part.PinPos(pin))] = true
			}
		}
	}

	plane := &Plane{Net: net}
	layers := b.NumLayers()
	for vy := 0; vy < b.Cfg.ViaRows(); vy++ {
		for vx := 0; vx < b.Cfg.ViaCols(); vx++ {
			v := geom.Pt(vx, vy)
			if b.Vias.Count(v) != layers {
				continue // no hole drilled here
			}
			at := b.Cfg.GridOf(v)
			if netPins[at] {
				plane.Features = append(plane.Features, Feature{Kind: Thermal, At: at, RadiusMils: opts.ThermalRadiusMils})
			} else {
				plane.Features = append(plane.Features, Feature{Kind: Antipad, At: at, RadiusMils: opts.AntipadRadiusMils})
			}
		}
	}
	// Off-grid pins (Section 11 extension) are holes too; the via map
	// does not see them, so they come from the board's explicit list.
	for _, at := range b.OffGridHoles {
		if netPins[at] {
			plane.Features = append(plane.Features, Feature{Kind: Thermal, At: at, RadiusMils: opts.ThermalRadiusMils})
		} else {
			plane.Features = append(plane.Features, Feature{Kind: Antipad, At: at, RadiusMils: opts.AntipadRadiusMils})
		}
	}
	plane.Features = append(plane.Features, opts.MountingHoles...)
	return plane, nil
}

// GenerateAll builds one plane per power net named by the assignment over
// the design's parts, in deterministic (sorted) net order.
func GenerateAll(b *board.Board, d *netlist.Design, assign Assignment, opts Options) ([]*Plane, error) {
	if assign == nil {
		assign = DefaultAssignment
	}
	seen := map[string]bool{}
	var nets []string
	for _, part := range d.Parts {
		for pin := 1; pin <= part.Pkg.Pins(); pin++ {
			if n := assign(part, pin); n != "" && !seen[n] {
				seen[n] = true
				nets = append(nets, n)
			}
		}
	}
	sortStrings(nets)
	var planes []*Plane
	for _, n := range nets {
		p, err := Generate(b, d, assign, n, opts)
		if err != nil {
			return nil, err
		}
		planes = append(planes, p)
	}
	return planes, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
