package smd

import (
	"testing"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/layer"
	"repro/internal/verify"
)

func smdBoard(t *testing.T) *board.Board {
	t.Helper()
	b, err := board.New(grid.NewConfig(30, 30, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestPlaceSimplePart(t *testing.T) {
	b := smdBoard(t)
	part := Part{Name: "U1", Pads: []geom.Point{
		geom.Pt(10, 10), geom.Pt(11, 10), geom.Pt(12, 10), geom.Pt(13, 10),
	}}
	res, err := Place(b, part, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ViaOf) != 4 {
		t.Fatalf("vias = %d", len(res.ViaOf))
	}
	seen := map[geom.Point]bool{}
	for i, v := range res.ViaOf {
		if !b.Cfg.IsViaSite(v) {
			t.Errorf("pad %d dispersion point %v is not a via site", i, v)
		}
		if seen[v] {
			t.Errorf("via %v assigned to two pads", v)
		}
		seen[v] = true
		// The via is drilled through all layers with the pin owner.
		for li := range b.Layers {
			if got := b.OwnerAt(li, v); got != layer.PinOwner {
				t.Errorf("via %v layer %d owner %d", v, li, got)
			}
		}
	}
	// Pads occupy only the top layer.
	for _, pad := range part.Pads {
		if b.OwnerAt(0, pad) != layer.PinOwner {
			t.Errorf("pad %v not occupied on top layer", pad)
		}
		for li := 1; li < b.NumLayers(); li++ {
			if b.OwnerAt(li, pad) != layer.NoConn {
				// The cell may legitimately hold dispersion trace of a
				// via drilled at the same (x,y), but pads are off the
				// via grid here, so it must be free.
				if !b.Cfg.IsViaSite(pad) {
					t.Errorf("pad %v leaked onto layer %d", pad, li)
				}
			}
		}
	}
	if err := b.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestDispersionIsTopLayerOnly(t *testing.T) {
	b := smdBoard(t)
	part := Part{Name: "U1", Pads: []geom.Point{geom.Pt(10, 10), geom.Pt(11, 10)}}
	// Count metal on non-top layers before and after: only the drilled
	// vias (one cell per layer each) may appear.
	res, err := Place(b, part, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for li := 1; li < b.NumLayers(); li++ {
		l := b.Layers[li]
		cells := 0
		for ci := 0; ci < l.NumChannels(); ci++ {
			l.Chan(ci).VisitUsed(geom.Iv(0, l.ChannelLength()-1), func(s *layer.Segment) bool {
				cells += s.Interval().Len()
				return true
			})
		}
		if cells != len(res.ViaOf) {
			t.Errorf("layer %d holds %d cells, want %d via cells only", li, cells, len(res.ViaOf))
		}
	}
}

func TestRouteFromDispersedPads(t *testing.T) {
	b := smdBoard(t)
	part := QFP("U1", geom.Pt(30, 30), 4, 2)
	res, err := Place(b, part, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Through-hole pins along the right edge to route to.
	var conns []core.Connection
	for i := 0; i < 4; i++ {
		pin := b.Cfg.GridOf(geom.Pt(25, 5+5*i))
		if err := b.PlacePin(pin); err != nil {
			t.Fatal(err)
		}
		conns = append(conns, core.Connection{A: res.ViaOf[i], B: pin})
	}
	r, err := core.New(b, conns, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	routeRes := r.Route()
	if !routeRes.Complete() {
		t.Fatalf("routing from dispersed pads failed: %v", routeRes.FailedConns)
	}
	if err := verify.Routed(b, r); err != nil {
		t.Fatal(err)
	}
}

func TestQFPGeometry(t *testing.T) {
	p := QFP("U", geom.Pt(9, 9), 6, 2)
	if len(p.Pads) != 24 {
		t.Fatalf("pads = %d", len(p.Pads))
	}
	seen := map[geom.Point]bool{}
	for _, pad := range p.Pads {
		if seen[pad] {
			t.Fatalf("duplicate pad %v", pad)
		}
		seen[pad] = true
	}
}

func TestPlaceErrors(t *testing.T) {
	b := smdBoard(t)
	if _, err := Place(b, Part{Name: "X", Pads: []geom.Point{geom.Pt(-1, 0)}}, Options{}); err == nil {
		t.Error("off-board pad accepted")
	}
	if _, err := Place(b, Part{Name: "X", Pads: []geom.Point{geom.Pt(5, 5)}}, Options{TopLayer: 9}); err == nil {
		t.Error("bad top layer accepted")
	}
	// Overlapping pads of two parts.
	if _, err := Place(b, Part{Name: "A", Pads: []geom.Point{geom.Pt(5, 5)}}, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Place(b, Part{Name: "B", Pads: []geom.Point{geom.Pt(5, 5)}}, Options{}); err == nil {
		t.Error("overlapping pad accepted")
	}
}

func TestDispersionExhaustion(t *testing.T) {
	// A tiny search radius with every nearby via blocked must fail
	// loudly.
	b := smdBoard(t)
	pad := geom.Pt(15, 15)
	// Blanket the neighborhood's via sites.
	for vx := 3; vx <= 7; vx++ {
		for vy := 3; vy <= 7; vy++ {
			if _, ok := b.PlaceVia(b.Cfg.GridOf(geom.Pt(vx, vy)), layer.KeepoutOwner); !ok {
				t.Fatal("setup failed")
			}
		}
	}
	if _, err := Place(b, Part{Name: "X", Pads: []geom.Point{pad}}, Options{SearchRadius: 2}); err == nil {
		t.Error("dispersion with no free vias should fail")
	}
}
