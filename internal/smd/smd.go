// Package smd supports surface-mount parts, the workaround of Section 11:
// SMD pads contact only the top routing layer, violating grr's assumption
// that every pin is a plated-through hole reaching all layers. The
// original system used "a hand-designed dispersion pattern ... to connect
// the pads to a regular array of vias by traces lying only on the top
// surface"; this package generates such dispersion patterns
// automatically. The router is then "told to consider the vias as the end
// points of the connections".
//
// Pads may sit on any routing-grid point — fine-pitch parts place pads at
// single-grid (33 mil) pitch, finer than the 100-mil via grid — exactly
// the density mismatch the dispersion pattern exists to bridge.
package smd

import (
	"fmt"
	"sort"

	"repro/internal/board"
	"repro/internal/geom"
	"repro/internal/layer"
	"repro/internal/sla"
)

// Part is a surface-mounted component: named pads on the top layer.
type Part struct {
	Name string
	// Pads are grid points (any grid point, not only via sites).
	Pads []geom.Point
}

// Options tune dispersion generation.
type Options struct {
	// SearchRadius is how far (in via units) from a pad to look for a
	// dispersion via. Default 4.
	SearchRadius int
	// TopLayer is the layer index pads contact. Default 0.
	TopLayer int
}

// Result maps each pad index to its dispersion via (the connection
// endpoint the router should use).
type Result struct {
	Part Part
	// ViaOf[i] is the via site serving pad i.
	ViaOf []geom.Point
}

// Place writes one part's pads and dispersion pattern onto the board:
// each pad cell is occupied on the top layer only, a nearby via is
// drilled for it, and a top-layer trace joins them. All dispersion metal
// is permanent (PinOwner) — like the pins it stands in for, the router
// may never rip it up.
func Place(b *board.Board, part Part, opts Options) (*Result, error) {
	if opts.SearchRadius <= 0 {
		opts.SearchRadius = 4
	}
	if opts.TopLayer < 0 || opts.TopLayer >= b.NumLayers() {
		return nil, fmt.Errorf("smd: top layer %d out of range", opts.TopLayer)
	}
	top := b.Layers[opts.TopLayer]
	bounds := b.Cfg.Bounds()

	// Occupy every pad cell first so dispersion traces of one pad cannot
	// run over a neighboring pad.
	for i, pad := range part.Pads {
		if !pad.In(bounds) {
			return nil, fmt.Errorf("smd: %s pad %d at %v off board", part.Name, i, pad)
		}
		ch, pos := b.Cfg.ChanPos(top.Orient, pad)
		if b.AddSegment(opts.TopLayer, ch, pos, pos, layer.PinOwner) == nil {
			return nil, fmt.Errorf("smd: %s pad %d site %v already occupied", part.Name, i, pad)
		}
	}

	// Fan out AWAY from the part: dispersion vias between the pads and
	// the part body wall later pads in, so candidates on the far side of
	// each pad from the centroid are preferred.
	var cx, cy int
	for _, pad := range part.Pads {
		cx += pad.X
		cy += pad.Y
	}
	centroid := geom.Pt(cx/len(part.Pads), cy/len(part.Pads))

	// Reserve every pad's along-channel touch cells so one pad's stub can
	// never seal a neighbor in; each reservation lifts just before its
	// own pad disperses.
	reserved := make(map[int][]*layer.Segment)
	for i, pad := range part.Pads {
		ch, pos := b.Cfg.ChanPos(top.Orient, pad)
		for _, d := range [2]int{-1, 1} {
			if s := b.AddSegment(opts.TopLayer, ch, pos+d, pos+d, layer.FillOwner); s != nil {
				reserved[i] = append(reserved[i], s)
			}
		}
	}

	res := &Result{Part: part, ViaOf: make([]geom.Point, len(part.Pads))}
	search := sla.NewSearcher(b.Cfg)
	for i, pad := range part.Pads {
		for _, s := range reserved[i] {
			b.RemoveSegment(opts.TopLayer, s)
		}
		delete(reserved, i)
		v, found := dispersePad(b, search, top, opts, pad, centroid)
		if !found {
			for _, segs := range reserved {
				for _, s := range segs {
					b.RemoveSegment(opts.TopLayer, s)
				}
			}
			return nil, fmt.Errorf("smd: %s pad %d at %v: no reachable dispersion via within %d via units",
				part.Name, i, pad, opts.SearchRadius)
		}
		res.ViaOf[i] = v
	}
	return res, nil
}

// dispersePad drills the nearest reachable free via for one pad and lays
// the top-layer trace to it. Candidates nearer the part centroid than the
// pad itself (i.e. under the part body) are deprioritized: real
// dispersion patterns fan outward.
func dispersePad(b *board.Board, search *sla.Searcher, top *layer.Layer, opts Options, pad, centroid geom.Point) (geom.Point, bool) {
	pitch := b.Cfg.Pitch

	// First preference: a straight outward stub, the way hand-designed
	// dispersion patterns are drawn. The search box is a narrow strip
	// (±1 cell) pointing away from the part, so stubs of neighboring
	// pads stay parallel and never wall each other in.
	dx, dy := pad.X-centroid.X, pad.Y-centroid.Y
	var strip geom.Rect
	if abs(dx) >= abs(dy) {
		if dx >= 0 {
			strip = geom.R(pad.X, pad.Y-1, pad.X+opts.SearchRadius*pitch, pad.Y+1)
		} else {
			strip = geom.R(pad.X-opts.SearchRadius*pitch, pad.Y-1, pad.X, pad.Y+1)
		}
	} else {
		if dy >= 0 {
			strip = geom.R(pad.X-1, pad.Y, pad.X+1, pad.Y+opts.SearchRadius*pitch)
		} else {
			strip = geom.R(pad.X-1, pad.Y-opts.SearchRadius*pitch, pad.X+1, pad.Y)
		}
	}
	if v, ok := disperseWithin(b, search, top, opts, pad, centroid, strip.Intersect(b.Cfg.Bounds())); ok {
		return v, true
	}

	// Fallback: the full neighborhood.
	box := geom.Bounding(pad, pad).Expand(opts.SearchRadius * pitch).Intersect(b.Cfg.Bounds())
	return disperseWithin(b, search, top, opts, pad, centroid, box)
}

// disperseWithin tries every free via in box, best first, drilling and
// tracing on the top layer.
func disperseWithin(b *board.Board, search *sla.Searcher, top *layer.Layer, opts Options, pad, centroid geom.Point, box geom.Rect) (geom.Point, bool) {
	pitch := b.Cfg.Pitch

	// Candidate vias: free sites within the box, nearest first with an
	// inward penalty.
	var candidates []geom.Point
	lo := b.Cfg.NearestViaSite(geom.Pt(box.MinX, box.MinY))
	hi := b.Cfg.NearestViaSite(geom.Pt(box.MaxX, box.MaxY))
	for x := lo.X; x <= hi.X; x += pitch {
		for y := lo.Y; y <= hi.Y; y += pitch {
			v := geom.Pt(x, y)
			if v.In(box) && b.ViaFree(v) {
				candidates = append(candidates, v)
			}
		}
	}
	padToCenter := pad.ManhattanDist(centroid)
	score := func(v geom.Point) int {
		s := pad.ManhattanDist(v)
		if v.ManhattanDist(centroid) < padToCenter {
			s += 6 * pitch // inward: under or across the part body
		}
		return s
	}
	sort.Slice(candidates, func(i, j int) bool {
		di, dj := score(candidates[i]), score(candidates[j])
		if di != dj {
			return di < dj
		}
		if candidates[i].X != candidates[j].X {
			return candidates[i].X < candidates[j].X
		}
		return candidates[i].Y < candidates[j].Y
	})

	for _, v := range candidates {
		pv, ok := b.PlaceVia(v, layer.PinOwner)
		if !ok {
			continue
		}
		runs, ok := search.Trace(top, pad, v, box)
		if !ok {
			b.RemoveVia(pv)
			continue
		}
		placed := make([]*layer.Segment, 0, len(runs))
		good := true
		for _, run := range runs {
			s := b.AddSegment(opts.TopLayer, run.Chan, run.Span.Lo, run.Span.Hi, layer.PinOwner)
			if s == nil {
				good = false
				break
			}
			placed = append(placed, s)
		}
		if good {
			return v, true
		}
		for _, s := range placed {
			b.RemoveSegment(opts.TopLayer, s)
		}
		b.RemoveVia(pv)
	}
	return geom.Point{}, false
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// QFP builds a quad-flat-pack style SMD part: padsPerSide pads along each
// of the four sides of a square whose side length accommodates them at
// the given pad pitch (grid units). The origin is the top-left pad of the
// top edge.
func QFP(name string, origin geom.Point, padsPerSide, padPitch int) Part {
	side := (padsPerSide + 1) * padPitch
	p := Part{Name: name}
	for i := 0; i < padsPerSide; i++ {
		off := (i + 1) * padPitch
		p.Pads = append(p.Pads,
			geom.Pt(origin.X+off, origin.Y),      // top edge
			geom.Pt(origin.X+side, origin.Y+off), // right edge
			geom.Pt(origin.X+off, origin.Y+side), // bottom edge
			geom.Pt(origin.X, origin.Y+off),      // left edge
		)
	}
	return p
}
