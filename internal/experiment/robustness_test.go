package experiment

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/verify"
	"repro/internal/workload"
)

// withRouteSpecHook substitutes the sweep's per-board routing function
// for one test.
func withRouteSpecHook(t *testing.T, fn func(context.Context, workload.Spec, core.Options) (*Run, error)) {
	t.Helper()
	orig := routeSpecHook
	routeSpecHook = fn
	t.Cleanup(func() { routeSpecHook = orig })
}

// TestSweepSurvivesPanickingBoard makes one board's router panic on
// every attempt: the sweep must finish the other eight boards and report
// the casualty as a *BoardError carrying the board name and a stack.
func TestSweepSurvivesPanickingBoard(t *testing.T) {
	var attempts atomic.Int32
	withRouteSpecHook(t, func(ctx context.Context, spec workload.Spec, opts core.Options) (*Run, error) {
		if strings.HasPrefix(spec.Name, "tna") {
			attempts.Add(1)
			panic("injected router crash")
		}
		return RouteSpecContext(ctx, spec, opts)
	})

	rows, err := Table1Parallel(8, core.DefaultOptions(), 4)
	if err == nil {
		t.Fatal("sweep with a permanently panicking board reported no error")
	}
	var be *BoardError
	if !errors.As(err, &be) {
		t.Fatalf("error is not a *BoardError: %v", err)
	}
	if !strings.HasPrefix(be.Board, "tna") {
		t.Errorf("BoardError names %q, want the tna board", be.Board)
	}
	if be.Attempts != 2 {
		t.Errorf("panicked board tried %d times, want 2 (one retry)", be.Attempts)
	}
	if !bytes.Contains(be.Stack, []byte("panic")) && !bytes.Contains(be.Stack, []byte("routeBoardOnce")) {
		t.Errorf("BoardError stack looks empty: %q", be.Stack)
	}
	if !strings.Contains(be.Error(), "injected router crash") {
		t.Errorf("error lost the panic value: %v", be)
	}

	completed := 0
	for _, r := range rows {
		if r.Board != "" {
			completed++
		}
	}
	if completed != len(rows)-1 {
		t.Errorf("sweep completed %d of %d boards; the panic should cost exactly one", completed, len(rows))
	}
}

// TestSweepRetriesTransientPanic panics a board's first attempt only:
// the retry on a fresh router must succeed and the sweep report no
// error at all.
func TestSweepRetriesTransientPanic(t *testing.T) {
	var attempts atomic.Int32
	withRouteSpecHook(t, func(ctx context.Context, spec workload.Spec, opts core.Options) (*Run, error) {
		if strings.HasPrefix(spec.Name, "coproc") && attempts.Add(1) == 1 {
			panic("transient crash")
		}
		return RouteSpecContext(ctx, spec, opts)
	})

	rows, err := Table1Parallel(8, core.DefaultOptions(), 2)
	if err != nil {
		t.Fatalf("transient panic not healed by the retry: %v", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Errorf("coproc attempted %d times, want 2", got)
	}
	for _, r := range rows {
		if r.Board == "" {
			t.Error("a row is missing after a healed retry")
		}
	}
}

// TestSweepDoesNotRetryPlainErrors: deterministic failures (generation,
// validation) reproduce on a rebuild, so the sweep must not waste a
// second attempt on them.
func TestSweepDoesNotRetryPlainErrors(t *testing.T) {
	var attempts atomic.Int32
	withRouteSpecHook(t, func(ctx context.Context, spec workload.Spec, opts core.Options) (*Run, error) {
		if strings.HasPrefix(spec.Name, "dpath") {
			attempts.Add(1)
			return nil, errors.New("deterministic generation failure")
		}
		return RouteSpecContext(ctx, spec, opts)
	})

	_, err := Table1Parallel(8, core.DefaultOptions(), 2)
	if err == nil {
		t.Fatal("sweep swallowed a board error")
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("plain error retried: %d attempts, want 1", got)
	}
	var be *BoardError
	if !errors.As(err, &be) || be.Stack != nil {
		t.Errorf("plain error should carry no stack: %+v", err)
	}
}

func TestClampWorkers(t *testing.T) {
	cases := []struct{ n, boards, want int }{
		{1, 9, 1},
		{4, 9, 4},
		{100, 9, 9}, // more workers than boards is wasted
		{-3, 9, -1}, // -1 = "GOMAXPROCS, clamped to boards" (checked below)
		{0, 1, 1},
	}
	for _, c := range cases {
		got := clampWorkers(c.n, c.boards)
		want := c.want
		if want == -1 {
			want = min(9, maxProcs())
		}
		if got != want {
			t.Errorf("clampWorkers(%d, %d) = %d, want %d", c.n, c.boards, got, want)
		}
		if got < 1 || got > c.boards {
			t.Errorf("clampWorkers(%d, %d) = %d out of [1,%d]", c.n, c.boards, got, c.boards)
		}
	}
}

func maxProcs() int { return clampWorkers(0, 1<<30) }

// TestTimeBudgetOnTable1Board is the issue's acceptance scenario: a
// tight wall-clock budget on a full-size Table 1 board must stop the
// route promptly with AbortTime and partial metrics, and leave the board
// in a state that passes both the channel audit and route verification.
func TestTimeBudgetOnTable1Board(t *testing.T) {
	spec, ok := workload.Table1Spec("coproc")
	if !ok {
		t.Fatal("coproc spec missing from Table 1")
	}
	opts := core.DefaultOptions()
	opts.TimeBudget = 100 * time.Millisecond

	start := time.Now()
	run, err := RouteSpec(spec, opts)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if run.Result.Aborted != core.AbortTime {
		t.Fatalf("Aborted = %v, want AbortTime (board finished in %v? raise difficulty)",
			run.Result.Aborted, elapsed)
	}
	// The unbudgeted coproc run takes over a second; the budgeted one must
	// come back close to its 100ms allowance. Generous slack for slow or
	// loaded machines — the point is "promptly", not "exactly".
	if elapsed > 5*time.Second {
		t.Errorf("budgeted route took %v", elapsed)
	}
	m := run.Result.Metrics
	if m.Routed == 0 {
		t.Error("no partial progress before the abort")
	}
	if m.Routed == m.Connections {
		t.Error("abort reported but every connection routed")
	}
	if run.Result.Complete() {
		t.Error("aborted run claims completeness")
	}
	if err := run.Board.Audit(); err != nil {
		t.Errorf("board audit after abort: %v", err)
	}
	if err := verify.Routed(run.Board, run.Router); err != nil {
		t.Errorf("partial routes do not verify: %v", err)
	}
}

// TestSweepHonorsCancellation cancels the sweep context up front: every
// board must come back promptly with an aborted (but consistent) result
// rather than routing to completion.
func TestSweepHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	rows, err := Table1ParallelContext(ctx, 8, core.DefaultOptions(), 3)
	if err != nil {
		t.Fatalf("cancelled sweep errored: %v", err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	// A div-8 sweep takes well under a second even uncancelled; this
	// bound only has to catch "cancellation ignored entirely" without
	// being flaky on slow machines.
	if d := time.Since(start); d > 30*time.Second {
		t.Errorf("cancelled sweep still took %v", d)
	}
	aborted := 0
	for _, r := range rows {
		if r.Routed < r.Conns {
			aborted++
		}
	}
	if aborted == 0 {
		t.Error("pre-cancelled sweep routed every board fully; cancellation had no effect")
	}
}
