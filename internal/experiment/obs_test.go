package experiment

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// TestInstrumentedScaledBoard routes a scaled Table 1 board — congested
// enough to exercise the full strategy ladder, Lee included — with a
// registry armed, and checks three things end to end: the routed output
// is bit-identical to an uninstrumented run, the registry's counters
// agree with the one-shot Metrics struct, and the exposition both
// parses and carries non-zero search-effort and phase-timing series.
func TestInstrumentedScaledBoard(t *testing.T) {
	spec := workload.Table1Specs()[0].Scale(3) // kdj11-2L/3: 2 layers, real congestion

	bare, err := RouteSpec(spec, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	opts := core.DefaultOptions()
	opts.Metrics = reg
	inst, err := RouteSpec(spec, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Bit-identical: same counters, same realized board.
	if bare.Result.Metrics != inst.Result.Metrics {
		t.Errorf("metrics differ:\n bare         %+v\n instrumented %+v",
			bare.Result.Metrics, inst.Result.Metrics)
	}
	if f1, f2 := bare.Board.Fingerprint(), inst.Board.Fingerprint(); f1 != f2 {
		t.Errorf("board fingerprints differ: %#x vs %#x", f1, f2)
	}

	m := inst.Result.Metrics
	if m.LeeExpansions == 0 || m.RipUps == 0 || m.ByMethod[core.Lee] == 0 {
		t.Fatalf("scaled board not congested enough to exercise the ladder: %+v", m)
	}

	// Registry agrees with the struct on the search-effort counters.
	counters := map[string]int{
		"grr_router_lee_expansions_total": m.LeeExpansions,
		"grr_router_rip_ups_total":        m.RipUps,
		"grr_router_put_backs_total":      m.PutBacks,
		"grr_router_trace_calls_total":    m.TraceCalls,
		"grr_router_via_queries_total":    m.ViasCalls,
		"grr_router_routed_total":         m.Routed,
	}
	for name, want := range counters {
		if got := reg.Counter(name).Value(); got != int64(want) {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Gauge("grr_router_vias_placed").Value(); got != int64(m.ViasAdded) {
		t.Errorf("grr_router_vias_placed = %d, want %d", got, m.ViasAdded)
	}

	// Every ladder phase ran and was timed.
	for _, phase := range []string{"zero_via", "one_via", "lee", "put_back"} {
		h := reg.Histogram(`grr_router_phase_seconds{phase="`+phase+`"}`, obs.DurationBuckets())
		if h.Count() == 0 {
			t.Errorf("phase %s recorded no observations", phase)
		}
	}

	// And the whole thing renders as valid exposition.
	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	vals, err := obs.ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition malformed: %v", err)
	}
	if vals["grr_router_lee_expansions_total"] != float64(m.LeeExpansions) {
		t.Errorf("scraped expansions %g, want %d",
			vals["grr_router_lee_expansions_total"], m.LeeExpansions)
	}
}
