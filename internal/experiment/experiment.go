// Package experiment wires the full pipeline — workload generation,
// pin placement, stringing, routing, statistics — into one call. The
// benchmark harness, the grr command and the integration tests all run
// experiments through this package so that "the Table 1 run" means the
// same thing everywhere.
package experiment

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/stats"
	"repro/internal/stringer"
	"repro/internal/workload"
)

// Run is one completed routing experiment.
type Run struct {
	Design  *netlist.Design
	Board   *board.Board
	Strung  *stringer.Result
	Router  *core.Router
	Result  core.Result
	Elapsed time.Duration // routing time only (generation excluded)
}

// RouteSpec generates the workload for spec and routes it.
func RouteSpec(spec workload.Spec, opts core.Options) (*Run, error) {
	return RouteSpecStrung(spec, opts, stringer.Options{})
}

// RouteSpecStrung is RouteSpec with explicit stringer options (the E-STR
// experiment passes Random here).
func RouteSpecStrung(spec workload.Spec, opts core.Options, sopts stringer.Options) (*Run, error) {
	d, err := workload.Generate(spec)
	if err != nil {
		return nil, err
	}
	return RouteDesign(d, opts, sopts)
}

// RouteDesign strings and routes an existing design.
func RouteDesign(d *netlist.Design, opts core.Options, sopts stringer.Options) (*Run, error) {
	b, err := board.New(d.GridConfig())
	if err != nil {
		return nil, err
	}
	if err := d.PlacePins(b); err != nil {
		return nil, err
	}
	strung, err := stringer.String(d, sopts)
	if err != nil {
		return nil, err
	}
	r, err := core.New(b, strung.Conns, opts)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res := r.Route()
	return &Run{
		Design:  d,
		Board:   b,
		Strung:  strung,
		Router:  r,
		Result:  res,
		Elapsed: time.Since(start),
	}, nil
}

// Row summarizes the run as a Table 1 line.
func (r *Run) Row() stats.Row {
	return stats.NewRow(r.Design, r.Board, r.Strung.Conns, r.Result, r.Elapsed)
}

// Table1 routes every Table 1 board (optionally scaled down by div > 1)
// and returns the rows in the paper's order.
func Table1(div int, opts core.Options) ([]stats.Row, error) {
	return Table1Parallel(div, opts, 1)
}

// Table1Parallel is Table1 with the boards spread over up to workers
// goroutines. The boards are independent problems and every worker
// routes on its own Board/Router/Searcher, so the sweep shares nothing
// but the job queue; each board's result is identical to a sequential
// run. Rows still come back in the paper's order regardless of which
// worker finished first. workers <= 0 means one worker per available
// CPU.
func Table1Parallel(div int, opts core.Options, workers int) ([]stats.Row, error) {
	specs := workload.Table1Specs()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}

	rows := make([]stats.Row, len(specs))
	errs := make([]error, len(specs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				run, err := RouteSpec(specs[i].Scale(div), opts)
				if err != nil {
					errs[i] = err
					continue
				}
				rows[i] = run.Row()
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}
