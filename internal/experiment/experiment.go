// Package experiment wires the full pipeline — workload generation,
// pin placement, stringing, routing, statistics — into one call. The
// benchmark harness, the grr command and the integration tests all run
// experiments through this package so that "the Table 1 run" means the
// same thing everywhere.
package experiment

import (
	"time"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/stats"
	"repro/internal/stringer"
	"repro/internal/workload"
)

// Run is one completed routing experiment.
type Run struct {
	Design  *netlist.Design
	Board   *board.Board
	Strung  *stringer.Result
	Router  *core.Router
	Result  core.Result
	Elapsed time.Duration // routing time only (generation excluded)
}

// RouteSpec generates the workload for spec and routes it.
func RouteSpec(spec workload.Spec, opts core.Options) (*Run, error) {
	return RouteSpecStrung(spec, opts, stringer.Options{})
}

// RouteSpecStrung is RouteSpec with explicit stringer options (the E-STR
// experiment passes Random here).
func RouteSpecStrung(spec workload.Spec, opts core.Options, sopts stringer.Options) (*Run, error) {
	d, err := workload.Generate(spec)
	if err != nil {
		return nil, err
	}
	return RouteDesign(d, opts, sopts)
}

// RouteDesign strings and routes an existing design.
func RouteDesign(d *netlist.Design, opts core.Options, sopts stringer.Options) (*Run, error) {
	b, err := board.New(d.GridConfig())
	if err != nil {
		return nil, err
	}
	if err := d.PlacePins(b); err != nil {
		return nil, err
	}
	strung, err := stringer.String(d, sopts)
	if err != nil {
		return nil, err
	}
	r, err := core.New(b, strung.Conns, opts)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res := r.Route()
	return &Run{
		Design:  d,
		Board:   b,
		Strung:  strung,
		Router:  r,
		Result:  res,
		Elapsed: time.Since(start),
	}, nil
}

// Row summarizes the run as a Table 1 line.
func (r *Run) Row() stats.Row {
	return stats.NewRow(r.Design, r.Board, r.Strung.Conns, r.Result, r.Elapsed)
}

// Table1 routes every Table 1 board (optionally scaled down by div > 1)
// and returns the rows in the paper's order.
func Table1(div int, opts core.Options) ([]stats.Row, error) {
	var rows []stats.Row
	for _, spec := range workload.Table1Specs() {
		run, err := RouteSpec(spec.Scale(div), opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, run.Row())
	}
	return rows, nil
}
