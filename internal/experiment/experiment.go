// Package experiment wires the full pipeline — workload generation,
// pin placement, stringing, routing, statistics — into one call. The
// benchmark harness, the grr command and the integration tests all run
// experiments through this package so that "the Table 1 run" means the
// same thing everywhere.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/board"
	"repro/internal/boardio"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/stats"
	"repro/internal/stringer"
	"repro/internal/workload"
)

// Run is one completed routing experiment.
type Run struct {
	Design  *netlist.Design
	Board   *board.Board
	Strung  *stringer.Result
	Router  *core.Router
	Result  core.Result
	Elapsed time.Duration // routing time only (generation excluded)
}

// RouteSpec generates the workload for spec and routes it.
func RouteSpec(spec workload.Spec, opts core.Options) (*Run, error) {
	return RouteSpecContext(context.Background(), spec, opts)
}

// RouteSpecContext is RouteSpec under a context: cancellation stops the
// router at its next abort checkpoint (see core.RouteContext).
func RouteSpecContext(ctx context.Context, spec workload.Spec, opts core.Options) (*Run, error) {
	return RouteSpecStrungContext(ctx, spec, opts, stringer.Options{})
}

// RouteSpecStrung is RouteSpec with explicit stringer options (the E-STR
// experiment passes Random here).
func RouteSpecStrung(spec workload.Spec, opts core.Options, sopts stringer.Options) (*Run, error) {
	return RouteSpecStrungContext(context.Background(), spec, opts, sopts)
}

// RouteSpecStrungContext is RouteSpecStrung under a context.
func RouteSpecStrungContext(ctx context.Context, spec workload.Spec, opts core.Options, sopts stringer.Options) (*Run, error) {
	d, err := workload.Generate(spec)
	if err != nil {
		return nil, err
	}
	return RouteDesignContext(ctx, d, opts, sopts)
}

// RouteDesign strings and routes an existing design.
func RouteDesign(d *netlist.Design, opts core.Options, sopts stringer.Options) (*Run, error) {
	return RouteDesignContext(context.Background(), d, opts, sopts)
}

// RouteDesignContext is RouteDesign under a context.
func RouteDesignContext(ctx context.Context, d *netlist.Design, opts core.Options, sopts stringer.Options) (*Run, error) {
	b, err := board.New(d.GridConfig())
	if err != nil {
		return nil, err
	}
	if err := d.PlacePins(b); err != nil {
		return nil, err
	}
	strung, err := stringer.String(d, sopts)
	if err != nil {
		return nil, err
	}
	r, err := core.New(b, strung.Conns, opts)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res := r.RouteContext(ctx)
	return &Run{
		Design:  d,
		Board:   b,
		Strung:  strung,
		Router:  r,
		Result:  res,
		Elapsed: time.Since(start),
	}, nil
}

// ResumeSnapshot rebuilds a run from a checkpoint snapshot and routes
// the remainder. The snapshot carries its own connections (already
// strung by the original run), so the design is not re-strung; the
// returned Run's Strung holds those connections with no terminal
// assignments. Elapsed covers only the resumed portion.
func ResumeSnapshot(ctx context.Context, snap *boardio.Snapshot) (*Run, error) {
	b, r, err := snap.Restore()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res := r.RouteContext(ctx)
	return &Run{
		Design:  snap.Design,
		Board:   b,
		Strung:  &stringer.Result{Conns: snap.Conns},
		Router:  r,
		Result:  res,
		Elapsed: time.Since(start),
	}, nil
}

// Row summarizes the run as a Table 1 line.
func (r *Run) Row() stats.Row {
	return stats.NewRow(r.Design, r.Board, r.Strung.Conns, r.Result, r.Elapsed)
}

// BoardError is one board of a sweep that could not be routed. When the
// failure was a panic inside the routing stack, Stack carries the
// recovering goroutine's stack and Attempts counts the tries (a panicked
// board is retried once on a completely fresh board and Router before
// being declared failed).
type BoardError struct {
	Board    string
	Attempts int
	Err      error
	Stack    []byte // non-nil when the failure was a recovered panic
}

func (e *BoardError) Error() string {
	return fmt.Sprintf("board %s failed after %d attempt(s): %v", e.Board, e.Attempts, e.Err)
}

func (e *BoardError) Unwrap() error { return e.Err }

// Table1 routes every Table 1 board (optionally scaled down by div > 1)
// and returns the rows in the paper's order.
func Table1(div int, opts core.Options) ([]stats.Row, error) {
	return Table1Parallel(div, opts, 1)
}

// Table1Parallel is Table1 with the boards spread over up to workers
// goroutines. The boards are independent problems and every worker
// routes on its own Board/Router/Searcher, so the sweep shares nothing
// but the job queue; each board's result is identical to a sequential
// run. Rows still come back in the paper's order regardless of which
// worker finished first. workers <= 0 means one worker per available
// CPU; either way the count is clamped to the number of boards.
//
// The sweep is panic-isolated: a panic while routing one board is
// recovered into a *BoardError (with the board's name and the stack
// attached), the board is retried once from scratch, and the remaining
// boards keep routing. The returned rows are always complete for every
// board that succeeded; the error, if non-nil, joins one *BoardError per
// failed board.
func Table1Parallel(div int, opts core.Options, workers int) ([]stats.Row, error) {
	return Table1ParallelContext(context.Background(), div, opts, workers)
}

// Table1ParallelContext is Table1Parallel under a context; cancellation
// aborts in-flight boards at their next checkpoint.
func Table1ParallelContext(ctx context.Context, div int, opts core.Options, workers int) ([]stats.Row, error) {
	specs := workload.Table1Specs()
	workers = clampWorkers(workers, len(specs))

	rows := make([]stats.Row, len(specs))
	errs := make([]error, len(specs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				rows[i], errs[i] = routeBoard(ctx, specs[i].Scale(div), opts)
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	return rows, errors.Join(errs...)
}

// clampWorkers resolves a requested worker count: n <= 0 asks for one
// worker per available CPU, and anything beyond the board count would
// only park idle goroutines on the job channel, so the result is clamped
// to [1, boards].
func clampWorkers(n, boards int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > boards {
		n = boards
	}
	if n < 1 {
		n = 1
	}
	return n
}

// routeSpecHook is what a sweep worker runs per board; tests substitute
// failing or panicking implementations.
var routeSpecHook = RouteSpecContext

// routeBoard routes one sweep board with panic isolation: a panic is
// recovered into a *BoardError and the board is retried once on a fresh
// Board/Router (a crash can depend on rip-up state that a clean rebuild
// avoids). Deterministic errors — generation or validation failures —
// are not retried; rebuilding the same input reproduces them.
func routeBoard(ctx context.Context, spec workload.Spec, opts core.Options) (stats.Row, error) {
	const maxAttempts = 2
	for attempt := 1; ; attempt++ {
		row, err := routeBoardOnce(ctx, spec, opts)
		if err == nil {
			return row, nil
		}
		var be *BoardError
		if errors.As(err, &be) {
			be.Attempts = attempt
			if be.Stack != nil && attempt < maxAttempts {
				continue
			}
		}
		return stats.Row{}, err
	}
}

// routeBoardOnce runs one attempt, converting a panic anywhere in the
// generation/stringing/routing stack into a *BoardError.
func routeBoardOnce(ctx context.Context, spec workload.Spec, opts core.Options) (row stats.Row, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &BoardError{
				Board: spec.Name,
				Err:   fmt.Errorf("panic: %v", p),
				Stack: debug.Stack(),
			}
		}
	}()
	run, err := routeSpecHook(ctx, spec, opts)
	if err != nil {
		return stats.Row{}, &BoardError{Board: spec.Name, Err: err}
	}
	return run.Row(), nil
}
