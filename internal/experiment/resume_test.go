package experiment

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/board"
	"repro/internal/boardio"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/stringer"
	"repro/internal/workload"
)

// TestCrashResumeEquivalence is the fault-injected proof of the
// checkpoint/resume protocol: the router is killed (a faultinject.Crash
// panic, standing in for SIGKILL) at a spread of mutation counts across
// the whole run, restarted from the latest snapshot, and the finished
// board must be bit-identical — same Fingerprint, same Audit, same
// metrics — to an uninterrupted run. Because checkpoints land only at
// connection boundaries and the router is deterministic, no crash point
// may change the outcome.
func TestCrashResumeEquivalence(t *testing.T) {
	spec := workload.Table1Specs()[0].Scale(4)
	opts := core.DefaultOptions()

	base, err := RouteSpec(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if base.Result.Metrics.Routed == 0 {
		t.Fatal("degenerate test: baseline routed nothing")
	}
	if err := base.Board.Audit(); err != nil {
		t.Fatalf("baseline board fails audit: %v", err)
	}
	wantFP := base.Board.Fingerprint()
	wantMetrics := base.Result.Metrics
	totalMut := base.Board.Mutations()
	if totalMut == 0 {
		t.Fatal("degenerate test: no mutations recorded")
	}

	// Crash at ~8 points spread across the run, including the very first
	// routing mutation. Crash points beyond the routing mutation count
	// (pins mutate the board before the crasher is armed) simply complete,
	// which doubles as a checkpointing-on vs checkpointing-off identity
	// check.
	stride := totalMut/8 + 1
	for n := uint64(1); n <= totalMut; n += stride {
		n := n
		t.Run(fmt.Sprintf("crash-at-%d", n), func(t *testing.T) {
			crashResumeOnce(t, spec, opts, n, wantFP, wantMetrics)
		})
	}
}

// crashResumeOnce routes spec with a crash armed at mutation n and
// checkpoints after every attempt, then resumes from the latest snapshot
// and compares the finished board against the uninterrupted run.
func crashResumeOnce(t *testing.T, spec workload.Spec, opts core.Options, n uint64, wantFP uint64, wantMetrics core.Metrics) {
	d, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := board.New(d.GridConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PlacePins(b); err != nil {
		t.Fatal(err)
	}
	strung, err := stringer.String(d, stringer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	conns := strung.Conns

	ckOpts := opts
	ckOpts.CheckpointEvery = 1
	serial := ckOpts // the options a resumed run replays with
	var mu sync.Mutex
	var latest []byte
	ckOpts.CheckpointSink = func(cp *core.Checkpoint) error {
		var buf bytes.Buffer
		if err := boardio.WriteSnapshot(&buf, &boardio.Snapshot{
			Design: d, Conns: conns, Opts: serial, Check: cp,
		}); err != nil {
			return err
		}
		mu.Lock()
		latest = buf.Bytes()
		mu.Unlock()
		return nil
	}

	b.Interpose(faultinject.CrashAt(n))
	r, err := core.New(b, conns, ckOpts)
	if err != nil {
		t.Fatal(err)
	}

	var res core.Result
	crashed := false
	func() {
		defer func() {
			if p := recover(); p != nil {
				if _, ok := p.(faultinject.Crash); !ok {
					panic(p)
				}
				crashed = true
			}
		}()
		res = r.Route()
	}()

	if !crashed {
		// n landed past this run's routing mutations: the checkpointed run
		// completed. Its board must still match the unjournaled baseline.
		if res.Aborted != core.AbortNone {
			t.Fatalf("checkpointed run aborted: %v (%v)", res.Aborted, res.Invariant)
		}
		compareFinal(t, b, res.Metrics, wantFP, wantMetrics)
		return
	}

	var fin *Run
	if latest == nil {
		// Killed before the first checkpoint was cut: nothing to resume,
		// the operator restarts from scratch.
		fin, err = RouteSpec(spec, opts)
	} else {
		var snap *boardio.Snapshot
		snap, err = boardio.ReadSnapshot(bytes.NewReader(latest))
		if err != nil {
			t.Fatalf("snapshot written mid-run does not decode: %v", err)
		}
		snap.Opts.CheckpointEvery = 0
		fin, err = ResumeSnapshot(context.Background(), snap)
	}
	if err != nil {
		t.Fatal(err)
	}
	if fin.Result.Aborted != core.AbortNone {
		t.Fatalf("resumed run aborted: %v (%v)", fin.Result.Aborted, fin.Result.Invariant)
	}
	compareFinal(t, fin.Board, fin.Result.Metrics, wantFP, wantMetrics)
}

// compareFinal checks a finished board against the uninterrupted run.
func compareFinal(t *testing.T, b *board.Board, got core.Metrics, wantFP uint64, want core.Metrics) {
	t.Helper()
	if err := b.Audit(); err != nil {
		t.Errorf("finished board fails audit: %v", err)
	}
	if fp := b.Fingerprint(); fp != wantFP {
		t.Errorf("final board fingerprint %016x, want %016x (board differs from uninterrupted run)", fp, wantFP)
	}
	if got != want {
		t.Errorf("final metrics differ from uninterrupted run:\n got  %+v\n want %+v", got, want)
	}
}

// TestTable1ParallelWithCheckpointing runs the concurrent sweep with
// paranoid audits on and a checkpoint cut after every routing attempt;
// under -race this doubles as the data-race check for the snapshot path.
// The sink asserts that no checkpoint ever observes a half-applied
// transaction: the realized-route count in the snapshot must equal the
// ByMethod tally taken at the same boundary (Routed itself is only
// computed at end of run).
func TestTable1ParallelWithCheckpointing(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Paranoid = true
	opts.CheckpointEvery = 1
	var mu sync.Mutex
	snaps := 0
	opts.CheckpointSink = func(cp *core.Checkpoint) error {
		realized, tallied := 0, 0
		for _, cr := range cp.Routes {
			if cr.Method != core.NotRouted {
				realized++
			}
		}
		for m := core.Trivial; m <= core.PutBack; m++ {
			tallied += cp.Metrics.ByMethod[m]
		}
		if realized != tallied {
			return fmt.Errorf("checkpoint observes a half-applied board: %d realized routes, ByMethod tally %d", realized, tallied)
		}
		mu.Lock()
		snaps++
		mu.Unlock()
		return nil
	}

	rows, err := Table1ParallelContext(context.Background(), 8, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Board == "" {
			t.Error("a board dropped out of the checkpointed sweep")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if snaps == 0 {
		t.Fatal("checkpoint sink never ran")
	}
}
