package experiment

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/verify"
	"repro/internal/workload"
)

func TestRouteSpecPipeline(t *testing.T) {
	run, err := RouteSpec(workload.SmallSpec(6), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !run.Result.Complete() {
		t.Fatalf("small board incomplete: %v", run.Result.FailedConns)
	}
	if err := verify.Routed(run.Board, run.Router); err != nil {
		t.Fatal(err)
	}
	row := run.Row()
	if row.Conns != len(run.Strung.Conns) || row.Routed != row.Conns {
		t.Errorf("row inconsistent: %+v", row)
	}
	if row.ChanPct <= 0 || row.PinsIn2 <= 0 {
		t.Errorf("degenerate row metrics: %+v", row)
	}
	if !strings.Contains(row.Format(), "small") {
		t.Error("row formatting lost the board name")
	}
}

func TestScaledTable1RunsQuickly(t *testing.T) {
	rows, err := Table1(4, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	table := stats.FormatTable(rows)
	for _, name := range []string{"kdj11", "coproc", "tna"} {
		if !strings.Contains(table, name) {
			t.Errorf("table missing %s:\n%s", name, table)
		}
	}
}

// TestTable1ParallelMatchesSequential checks that spreading the sweep
// over goroutines changes nothing but wall time: every board routes on
// its own Board/Router, so each row must be field-for-field identical to
// the sequential run (Elapsed excepted — it is the one nondeterministic
// column).
func TestTable1ParallelMatchesSequential(t *testing.T) {
	opts := core.DefaultOptions()
	seq, err := Table1(6, opts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Table1Parallel(6, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Fatalf("parallel returned %d rows, sequential %d", len(par), len(seq))
	}
	for i := range seq {
		a, b := seq[i], par[i]
		a.Elapsed, b.Elapsed = 0, 0
		if a != b {
			t.Errorf("row %d differs:\n sequential %+v\n parallel   %+v", i, a, b)
		}
	}
}

// TestTable1Shape runs the full-size Table 1 and asserts the paper's
// qualitative results (~15 s; skipped with -short):
//
//   - the 2-layer kdj11 fails around the paper's 80% completion and the
//     same board completes on 4 layers;
//   - every other board routes completely;
//   - vias per connection stay below 2 on every completed board and
//     below 1 on the easy half (paper: 0.40–0.99);
//   - %lee decreases from the hardest completed board to the easiest
//     band (the paper's "denser boards have higher %lee").
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size Table 1 (~15s); run without -short")
	}
	rows, err := Table1(1, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]stats.Row{}
	for _, r := range rows {
		byName[r.Board] = r
	}

	k2 := byName["kdj11-2L"]
	if k2.Failed == 0 {
		t.Error("kdj11 on 2 layers should fail (the paper's first row)")
	}
	if pct := float64(k2.Routed) / float64(k2.Conns); pct < 0.7 || pct > 0.95 {
		t.Errorf("kdj11-2L completed %.0f%%, paper gave up near 80%%", 100*pct)
	}
	for _, name := range []string{"nmc-4L", "dpath", "coproc", "kdj11-4L", "icache", "nmc-6L", "dcache", "tna"} {
		r := byName[name]
		if r.Failed != 0 {
			t.Errorf("%s left %d connections unrouted; the paper routed it fully", name, r.Failed)
		}
		if r.ViasPC >= 2 {
			t.Errorf("%s vias/conn = %.2f, implausibly high", name, r.ViasPC)
		}
	}
	// %chan ordering must follow the paper's difficulty ordering.
	order := []string{"nmc-4L", "dpath", "coproc", "kdj11-4L", "icache", "nmc-6L", "dcache", "tna"}
	for i := 1; i < len(order); i++ {
		if byName[order[i-1]].ChanPct < byName[order[i]].ChanPct {
			t.Errorf("%%chan ordering violated: %s (%.1f) < %s (%.1f)",
				order[i-1], byName[order[i-1]].ChanPct, order[i], byName[order[i]].ChanPct)
		}
	}
	// The hardest completed boards need Lee more than the easiest.
	if byName["nmc-4L"].LeePct <= byName["tna"].LeePct {
		t.Errorf("%%lee should fall with difficulty: nmc-4L %.1f vs tna %.1f",
			byName["nmc-4L"].LeePct, byName["tna"].LeePct)
	}
	t.Logf("\n%s", stats.FormatTable(rows))
}
