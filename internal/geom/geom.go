// Package geom provides the planar geometry primitives used throughout the
// router: integer grid points, axis-aligned rectangles, one-dimensional
// intervals, and Manhattan metrics.
//
// Two coordinate systems appear in the paper and in this code base:
//
//   - grid units: the fine routing grid on which every trace lies;
//   - via units: the coarser via grid, embedded in the routing grid so
//     that a via site occurs every Pitch grid lines in each dimension
//     (Figure 3 of the paper; Pitch is 3 for the 100-mil process with two
//     traces between via pads).
//
// All types in this package are plain values and safe to copy.
package geom

import "fmt"

// Point is a location on the routing grid in grid units.
type Point struct {
	X, Y int
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int) Point { return Point{x, y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// ManhattanDist returns the L1 distance between p and q.
func (p Point) ManhattanDist(q Point) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y)
}

// ChebyshevDist returns the L∞ distance between p and q.
func (p Point) ChebyshevDist(q Point) int {
	return max(abs(p.X-q.X), abs(p.Y-q.Y))
}

// In reports whether p lies inside r (inclusive of all edges).
func (p Point) In(r Rect) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Rect is a closed axis-aligned rectangle in grid units. A Rect with
// MinX > MaxX or MinY > MaxY is empty.
type Rect struct {
	MinX, MinY, MaxX, MaxY int
}

// R builds the rectangle with the given inclusive bounds.
func R(minX, minY, maxX, maxY int) Rect { return Rect{minX, minY, maxX, maxY} }

// Bounding returns the smallest rectangle containing both p and q.
func Bounding(p, q Point) Rect {
	return Rect{min(p.X, q.X), min(p.Y, q.Y), max(p.X, q.X), max(p.Y, q.Y)}
}

// Empty reports whether r contains no points.
func (r Rect) Empty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Width returns the number of grid columns spanned by r (0 if empty).
func (r Rect) Width() int {
	if r.Empty() {
		return 0
	}
	return r.MaxX - r.MinX + 1
}

// Height returns the number of grid rows spanned by r (0 if empty).
func (r Rect) Height() int {
	if r.Empty() {
		return 0
	}
	return r.MaxY - r.MinY + 1
}

// Area returns the number of grid points in r.
func (r Rect) Area() int { return r.Width() * r.Height() }

// Expand grows r by d grid units on every side. Negative d shrinks it.
func (r Rect) Expand(d int) Rect {
	return Rect{r.MinX - d, r.MinY - d, r.MaxX + d, r.MaxY + d}
}

// ExpandXY grows r by dx horizontally and dy vertically on each side.
func (r Rect) ExpandXY(dx, dy int) Rect {
	return Rect{r.MinX - dx, r.MinY - dy, r.MaxX + dx, r.MaxY + dy}
}

// Intersect returns the intersection of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		max(r.MinX, s.MinX), max(r.MinY, s.MinY),
		min(r.MaxX, s.MaxX), min(r.MaxY, s.MaxY),
	}
}

// Union returns the smallest rectangle containing both r and s. The union
// with an empty rectangle is the other rectangle.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		min(r.MinX, s.MinX), min(r.MinY, s.MinY),
		max(r.MaxX, s.MaxX), max(r.MaxY, s.MaxY),
	}
}

// Contains reports whether s lies entirely within r. An empty s is
// contained in everything.
func (r Rect) Contains(s Rect) bool {
	if s.Empty() {
		return true
	}
	return r.MinX <= s.MinX && r.MinY <= s.MinY && r.MaxX >= s.MaxX && r.MaxY >= s.MaxY
}

func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d..%d,%d]", r.MinX, r.MinY, r.MaxX, r.MaxY)
}

// Interval is a closed one-dimensional range [Lo, Hi] in grid units.
// An Interval with Lo > Hi is empty.
type Interval struct {
	Lo, Hi int
}

// Iv builds the interval [lo, hi].
func Iv(lo, hi int) Interval { return Interval{lo, hi} }

// Empty reports whether i contains no points.
func (i Interval) Empty() bool { return i.Lo > i.Hi }

// Len returns the number of grid points in i (0 if empty).
func (i Interval) Len() int {
	if i.Empty() {
		return 0
	}
	return i.Hi - i.Lo + 1
}

// Contains reports whether v lies within i.
func (i Interval) Contains(v int) bool { return v >= i.Lo && v <= i.Hi }

// Overlaps reports whether i and j share at least one point.
func (i Interval) Overlaps(j Interval) bool {
	return i.Lo <= j.Hi && j.Lo <= i.Hi && !i.Empty() && !j.Empty()
}

// Intersect returns the common part of i and j (possibly empty).
func (i Interval) Intersect(j Interval) Interval {
	return Interval{max(i.Lo, j.Lo), min(i.Hi, j.Hi)}
}

// Clamp returns v limited to lie within i. Calling Clamp on an empty
// interval is a programming error and panics.
func (i Interval) Clamp(v int) int {
	if i.Empty() {
		panic("geom: Clamp on empty interval " + i.String())
	}
	if v < i.Lo {
		return i.Lo
	}
	if v > i.Hi {
		return i.Hi
	}
	return v
}

func (i Interval) String() string { return fmt.Sprintf("[%d..%d]", i.Lo, i.Hi) }

// DistToInterval returns the distance from v to the nearest point of i,
// or 0 if v lies inside i.
func (i Interval) DistTo(v int) int {
	switch {
	case v < i.Lo:
		return i.Lo - v
	case v > i.Hi:
		return v - i.Hi
	default:
		return 0
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
