package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestManhattanDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want int
	}{
		{Pt(0, 0), Pt(0, 0), 0},
		{Pt(0, 0), Pt(3, 4), 7},
		{Pt(3, 4), Pt(0, 0), 7},
		{Pt(-2, -3), Pt(2, 3), 10},
		{Pt(5, 5), Pt(5, 9), 4},
	}
	for _, c := range cases {
		if got := c.p.ManhattanDist(c.q); got != c.want {
			t.Errorf("ManhattanDist(%v,%v) = %d, want %d", c.p, c.q, got, c.want)
		}
	}
}

func TestManhattanDistProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a, b, c := Pt(int(ax), int(ay)), Pt(int(bx), int(by)), Pt(int(cx), int(cy))
		d := a.ManhattanDist(b)
		// Symmetry, non-negativity, identity, triangle inequality.
		return d == b.ManhattanDist(a) &&
			d >= 0 &&
			(d == 0) == (a == b) &&
			a.ManhattanDist(c) <= d+b.ManhattanDist(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChebyshevDist(t *testing.T) {
	if got := Pt(0, 0).ChebyshevDist(Pt(3, 7)); got != 7 {
		t.Errorf("ChebyshevDist = %d, want 7", got)
	}
	if got := Pt(-1, 0).ChebyshevDist(Pt(3, 2)); got != 4 {
		t.Errorf("ChebyshevDist = %d, want 4", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := R(1, 2, 4, 6)
	if r.Empty() {
		t.Fatal("non-empty rect reported empty")
	}
	if r.Width() != 4 || r.Height() != 5 || r.Area() != 20 {
		t.Errorf("got w=%d h=%d area=%d", r.Width(), r.Height(), r.Area())
	}
	if !Pt(1, 2).In(r) || !Pt(4, 6).In(r) || Pt(5, 6).In(r) || Pt(0, 2).In(r) {
		t.Error("In() misjudges corners or outside points")
	}
	empty := R(3, 3, 2, 3)
	if !empty.Empty() || empty.Width() != 0 || empty.Area() != 0 {
		t.Error("empty rect misreported")
	}
}

func TestRectExpandIntersect(t *testing.T) {
	r := R(2, 2, 5, 5)
	if got := r.Expand(1); got != R(1, 1, 6, 6) {
		t.Errorf("Expand(1) = %v", got)
	}
	if got := r.ExpandXY(2, 0); got != R(0, 2, 7, 5) {
		t.Errorf("ExpandXY = %v", got)
	}
	if got := r.Intersect(R(4, 4, 9, 9)); got != R(4, 4, 5, 5) {
		t.Errorf("Intersect = %v", got)
	}
	if got := r.Intersect(R(6, 6, 9, 9)); !got.Empty() {
		t.Errorf("disjoint Intersect = %v, want empty", got)
	}
}

func TestRectUnionContains(t *testing.T) {
	a, b := R(0, 0, 2, 2), R(4, 1, 5, 6)
	u := a.Union(b)
	if u != R(0, 0, 5, 6) {
		t.Errorf("Union = %v", u)
	}
	if !u.Contains(a) || !u.Contains(b) {
		t.Error("union does not contain operands")
	}
	var empty Rect
	empty = R(1, 1, 0, 0)
	if a.Union(empty) != a || empty.Union(a) != a {
		t.Error("union with empty is not identity")
	}
	if !a.Contains(empty) {
		t.Error("every rect should contain the empty rect")
	}
}

func TestBounding(t *testing.T) {
	if got := Bounding(Pt(5, 1), Pt(2, 7)); got != R(2, 1, 5, 7) {
		t.Errorf("Bounding = %v", got)
	}
	if got := Bounding(Pt(3, 3), Pt(3, 3)); got != R(3, 3, 3, 3) {
		t.Errorf("degenerate Bounding = %v", got)
	}
}

func TestRectIntersectProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randRect := func() Rect {
		return R(rng.Intn(20), rng.Intn(20), rng.Intn(20), rng.Intn(20))
	}
	for i := 0; i < 2000; i++ {
		a, b := randRect(), randRect()
		got := a.Intersect(b)
		// Point-wise oracle over a small domain.
		for x := 0; x < 20; x++ {
			for y := 0; y < 20; y++ {
				p := Pt(x, y)
				want := p.In(a) && p.In(b)
				if p.In(got) != want {
					t.Fatalf("Intersect(%v,%v): point %v mismatch", a, b, p)
				}
			}
		}
	}
}

func TestIntervalBasics(t *testing.T) {
	i := Iv(3, 7)
	if i.Empty() || i.Len() != 5 {
		t.Errorf("Iv(3,7): empty=%v len=%d", i.Empty(), i.Len())
	}
	if !i.Contains(3) || !i.Contains(7) || i.Contains(8) || i.Contains(2) {
		t.Error("Contains misjudges bounds")
	}
	if Iv(5, 4).Len() != 0 || !Iv(5, 4).Empty() {
		t.Error("empty interval misreported")
	}
}

func TestIntervalOverlapIntersect(t *testing.T) {
	cases := []struct {
		a, b    Interval
		overlap bool
	}{
		{Iv(0, 5), Iv(5, 9), true},
		{Iv(0, 5), Iv(6, 9), false},
		{Iv(3, 3), Iv(3, 3), true},
		{Iv(0, 9), Iv(2, 3), true},
		{Iv(5, 4), Iv(0, 9), false}, // empty never overlaps
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.overlap {
			t.Errorf("Overlaps(%v,%v) = %v", c.a, c.b, got)
		}
		if got := c.b.Overlaps(c.a); got != c.overlap {
			t.Errorf("Overlaps(%v,%v) = %v (asymmetric)", c.b, c.a, got)
		}
	}
	if got := Iv(0, 5).Intersect(Iv(3, 9)); got != Iv(3, 5) {
		t.Errorf("Intersect = %v", got)
	}
}

func TestIntervalClampDist(t *testing.T) {
	i := Iv(4, 8)
	for v, want := range map[int]int{2: 4, 4: 4, 6: 6, 8: 8, 11: 8} {
		if got := i.Clamp(v); got != want {
			t.Errorf("Clamp(%d) = %d, want %d", v, got, want)
		}
	}
	for v, want := range map[int]int{2: 2, 4: 0, 6: 0, 8: 0, 11: 3} {
		if got := i.DistTo(v); got != want {
			t.Errorf("DistTo(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestClampEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Clamp on empty interval should panic")
		}
	}()
	Iv(5, 4).Clamp(1)
}

func TestIntervalQuickProperties(t *testing.T) {
	f := func(a1, a2, b1, b2 int8) bool {
		a, b := Iv(int(a1), int(a2)), Iv(int(b1), int(b2))
		inter := a.Intersect(b)
		// Intersection is symmetric and contained in both.
		if inter != b.Intersect(a) {
			return false
		}
		if !inter.Empty() {
			if !a.Contains(inter.Lo) || !a.Contains(inter.Hi) ||
				!b.Contains(inter.Lo) || !b.Contains(inter.Hi) {
				return false
			}
		}
		// Overlaps iff intersection non-empty.
		return a.Overlaps(b) == !inter.Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointAddSub(t *testing.T) {
	p := Pt(3, -2)
	if p.Add(Pt(1, 2)) != Pt(4, 0) {
		t.Error("Add wrong")
	}
	if p.Sub(Pt(1, 2)) != Pt(2, -4) {
		t.Error("Sub wrong")
	}
}

func TestStringers(t *testing.T) {
	if Pt(1, 2).String() != "(1,2)" {
		t.Error("Point.String")
	}
	if R(1, 2, 3, 4).String() != "[1,2..3,4]" {
		t.Error("Rect.String")
	}
	if Iv(1, 2).String() != "[1..2]" {
		t.Error("Interval.String")
	}
}
