// Package netlist models the logical side of a circuit board (Section 2):
// parts with packages and pins, and the nets interconnecting them. The
// stringer consumes a Design and produces the pin-to-pin connection list
// the router works on.
//
// Positions in this package are in via units (100-mil pin pitch in the
// paper's process); the grid configuration converts them to routing-grid
// coordinates.
package netlist

import (
	"fmt"

	"repro/internal/board"
	"repro/internal/geom"
	"repro/internal/grid"
)

// Tech is a signal technology. ECL nets are transmission lines that must
// be chained and terminated; TTL nets allow arbitrary topology but grr
// chains them too (Section 3).
type Tech uint8

const (
	ECL Tech = iota
	TTL
)

func (t Tech) String() string {
	if t == ECL {
		return "ECL"
	}
	return "TTL"
}

// Package is a part footprint: named pin offsets from the part origin, in
// via units. Pins are numbered from 1, as on real packages.
type Package struct {
	Name string
	// Offsets[i] is the position of pin i+1 relative to the part origin.
	Offsets []geom.Point
	// Terminator marks resistor packs whose pins may be allocated by the
	// stringer as ECL termination points.
	Terminator bool
}

// Pins returns the number of pins in the package.
func (p *Package) Pins() int { return len(p.Offsets) }

// Span returns the bounding box of the package's pins relative to its
// origin.
func (p *Package) Span() geom.Rect {
	r := geom.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0} // empty
	for _, o := range p.Offsets {
		r = r.Union(geom.Bounding(o, o))
	}
	return r
}

// DIP builds a dual in-line package with pins pins (pins/2 per row), rows
// rowSpan via units apart, at 1 via unit pitch. Pin 1 is at the origin;
// numbering runs down one row and back up the other, as on real DIPs.
func DIP(pins, rowSpan int) *Package {
	if pins%2 != 0 || pins <= 0 {
		panic(fmt.Sprintf("netlist: DIP needs a positive even pin count, got %d", pins))
	}
	half := pins / 2
	p := &Package{Name: fmt.Sprintf("DIP%d", pins), Offsets: make([]geom.Point, pins)}
	for i := 0; i < half; i++ {
		p.Offsets[i] = geom.Pt(i, 0)
	}
	for i := 0; i < half; i++ {
		p.Offsets[half+i] = geom.Pt(half-1-i, rowSpan)
	}
	return p
}

// SIP builds a single in-line package with the given pin count at 1 via
// unit pitch. With terminator set its pins form an ECL termination pool.
func SIP(pins int, terminator bool) *Package {
	if pins <= 0 {
		panic(fmt.Sprintf("netlist: SIP needs a positive pin count, got %d", pins))
	}
	p := &Package{Name: fmt.Sprintf("SIP%d", pins), Terminator: terminator}
	for i := 0; i < pins; i++ {
		p.Offsets = append(p.Offsets, geom.Pt(i, 0))
	}
	return p
}

// Part is one placed component.
type Part struct {
	Name string
	Pkg  *Package
	At   geom.Point // origin in via units
	Tech Tech       // dominant technology of the part (for tesselation)
}

// PinPos returns the via-unit position of pin number pin (1-based).
func (p *Part) PinPos(pin int) geom.Point {
	return p.At.Add(p.Pkg.Offsets[pin-1])
}

// PinRef names one pin of one part.
type PinRef struct {
	Part *Part
	Pin  int // 1-based
}

// Pos returns the via-unit position of the referenced pin.
func (r PinRef) Pos() geom.Point { return r.Part.PinPos(r.Pin) }

func (r PinRef) String() string { return fmt.Sprintf("%s.%d", r.Part.Name, r.Pin) }

// PinFunc is the electrical role of a pin within a net.
type PinFunc uint8

const (
	Input PinFunc = iota
	Output
	Termination
)

func (f PinFunc) String() string {
	switch f {
	case Output:
		return "out"
	case Termination:
		return "term"
	default:
		return "in"
	}
}

// NetPin is one net membership: a pin and its role.
type NetPin struct {
	Ref  PinRef
	Func PinFunc
}

// Net is a set of pins to be electrically interconnected.
type Net struct {
	Name string
	Tech Tech
	Pins []NetPin
	// TargetDelayPs propagates to every connection of the net for length
	// tuning; zero means untuned.
	TargetDelayPs float64
}

// Outputs returns the net's output pins.
func (n *Net) Outputs() []NetPin {
	var out []NetPin
	for _, p := range n.Pins {
		if p.Func == Output {
			out = append(out, p)
		}
	}
	return out
}

// Design is a complete logical board: geometry, placement and nets.
// Power nets are omitted — they go to power planes, not signal routing
// (Section 2); the power package generates those planes after routing.
type Design struct {
	Name     string
	ViaCols  int // board width in via units
	ViaRows  int // board height in via units
	Layers   int // signal layer count
	Pitch    int // routing grid points per via unit (3 in the paper)
	Parts    []*Part
	Nets     []*Net
	PinPitch float64 // inches between via sites, for pins/in² reporting (0.1 in the paper)
	// Keepouts are board rectangles, in routing-grid units, forbidden to
	// every signal layer: connector zones, mounting hardware, regions
	// reserved for a later edit. PlacePins realizes them as permanent
	// keepout metal, so routing never enters them.
	Keepouts []geom.Rect
}

// GridConfig derives the routing-grid configuration for the design.
func (d *Design) GridConfig() grid.Config {
	pitch := d.Pitch
	if pitch == 0 {
		pitch = 3
	}
	return grid.NewConfig(d.ViaCols, d.ViaRows, pitch, d.Layers)
}

// AreaSqIn returns the board area in square inches.
func (d *Design) AreaSqIn() float64 {
	pp := d.PinPitch
	if pp == 0 {
		pp = 0.1
	}
	return float64(d.ViaCols) * pp * float64(d.ViaRows) * pp
}

// TotalPins counts the pins of every placed part.
func (d *Design) TotalPins() int {
	n := 0
	for _, p := range d.Parts {
		n += p.Pkg.Pins()
	}
	return n
}

// PinDensity returns pins per square inch (Table 1 "pins/in²").
func (d *Design) PinDensity() float64 {
	a := d.AreaSqIn()
	if a == 0 {
		return 0
	}
	return float64(d.TotalPins()) / a
}

// Validate checks that every part fits the board, every pin lands on a
// distinct via site, and net pin references are in range.
func (d *Design) Validate() error {
	bounds := geom.R(0, 0, d.ViaCols-1, d.ViaRows-1)
	used := make(map[geom.Point]string)
	for _, part := range d.Parts {
		for pin := 1; pin <= part.Pkg.Pins(); pin++ {
			pos := part.PinPos(pin)
			if !pos.In(bounds) {
				return fmt.Errorf("netlist: %s pin %d at %v is off the %dx%d board",
					part.Name, pin, pos, d.ViaCols, d.ViaRows)
			}
			ref := fmt.Sprintf("%s.%d", part.Name, pin)
			if prev, clash := used[pos]; clash {
				return fmt.Errorf("netlist: %s and %s both at via %v", prev, ref, pos)
			}
			used[pos] = ref
		}
	}
	gridBounds := d.GridConfig().Bounds()
	for i, r := range d.Keepouts {
		if r.Empty() {
			return fmt.Errorf("netlist: keepout %d is empty", i)
		}
		if !gridBounds.Contains(r) {
			return fmt.Errorf("netlist: keepout %d (%v) lies outside the %v routing grid", i, r, gridBounds)
		}
	}
	for _, net := range d.Nets {
		if len(net.Pins) < 2 {
			return fmt.Errorf("netlist: net %s has %d pins; need at least 2", net.Name, len(net.Pins))
		}
		for _, np := range net.Pins {
			if np.Ref.Part == nil {
				return fmt.Errorf("netlist: net %s references a nil part", net.Name)
			}
			if np.Ref.Pin < 1 || np.Ref.Pin > np.Ref.Part.Pkg.Pins() {
				return fmt.Errorf("netlist: net %s references %s pin %d of %d",
					net.Name, np.Ref.Part.Name, np.Ref.Pin, np.Ref.Part.Pkg.Pins())
			}
		}
	}
	return nil
}

// PlacePins drills every part pin into the routing board as a permanent
// plated-through hole and realizes the design's keepouts. Call once
// before routing.
func (d *Design) PlacePins(b *board.Board) error {
	for _, part := range d.Parts {
		for pin := 1; pin <= part.Pkg.Pins(); pin++ {
			p := b.Cfg.GridOf(part.PinPos(pin))
			if err := b.PlacePin(p); err != nil {
				return fmt.Errorf("netlist: %s pin %d: %w", part.Name, pin, err)
			}
		}
	}
	for i, r := range d.Keepouts {
		if err := b.PlaceKeepout(r); err != nil {
			return fmt.Errorf("netlist: keepout %d: %w", i, err)
		}
	}
	return nil
}
