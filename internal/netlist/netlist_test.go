package netlist

import (
	"testing"

	"repro/internal/board"
	"repro/internal/geom"
	"repro/internal/layer"
)

func TestDIPGeometry(t *testing.T) {
	d := DIP(24, 3)
	if d.Pins() != 24 {
		t.Fatalf("pins = %d", d.Pins())
	}
	// Pin 1 at origin, pin 12 at the row end, pin 13 directly below it,
	// pin 24 below pin 1 (standard DIP counter-clockwise numbering).
	cases := map[int]geom.Point{
		1:  geom.Pt(0, 0),
		12: geom.Pt(11, 0),
		13: geom.Pt(11, 3),
		24: geom.Pt(0, 3),
	}
	for pin, want := range cases {
		if got := d.Offsets[pin-1]; got != want {
			t.Errorf("pin %d at %v, want %v", pin, got, want)
		}
	}
	if span := d.Span(); span != geom.R(0, 0, 11, 3) {
		t.Errorf("span = %v", span)
	}
}

func TestDIPPanicsOnOddPins(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("DIP(7) should panic")
		}
	}()
	DIP(7, 3)
}

func TestSIPGeometry(t *testing.T) {
	s := SIP(12, true)
	if !s.Terminator || s.Pins() != 12 {
		t.Fatal("SIP misbuilt")
	}
	if s.Offsets[0] != geom.Pt(0, 0) || s.Offsets[11] != geom.Pt(11, 0) {
		t.Error("SIP pin positions wrong")
	}
}

func TestPartPinPos(t *testing.T) {
	p := &Part{Name: "U1", Pkg: DIP(24, 3), At: geom.Pt(5, 7)}
	if got := p.PinPos(1); got != geom.Pt(5, 7) {
		t.Errorf("pin 1 at %v", got)
	}
	if got := p.PinPos(13); got != geom.Pt(16, 10) {
		t.Errorf("pin 13 at %v", got)
	}
	ref := PinRef{Part: p, Pin: 13}
	if ref.Pos() != geom.Pt(16, 10) || ref.String() != "U1.13" {
		t.Error("PinRef misbehaves")
	}
}

func smallDesign() *Design {
	u1 := &Part{Name: "U1", Pkg: DIP(24, 3), At: geom.Pt(1, 1)}
	u2 := &Part{Name: "U2", Pkg: DIP(24, 3), At: geom.Pt(1, 8)}
	r1 := &Part{Name: "R1", Pkg: SIP(12, true), At: geom.Pt(1, 6)}
	d := &Design{
		Name: "small", ViaCols: 20, ViaRows: 20, Layers: 2,
		Parts: []*Part{u1, u2, r1},
		Nets: []*Net{{
			Name: "N1", Tech: ECL,
			Pins: []NetPin{
				{Ref: PinRef{Part: u1, Pin: 2}, Func: Output},
				{Ref: PinRef{Part: u2, Pin: 5}, Func: Input},
			},
		}},
	}
	return d
}

func TestDesignValidate(t *testing.T) {
	d := smallDesign()
	if err := d.Validate(); err != nil {
		t.Fatalf("valid design rejected: %v", err)
	}

	// Off-board part.
	d2 := smallDesign()
	d2.Parts[0].At = geom.Pt(15, 1) // DIP spans 12 wide; 15+11=26 > 19
	if err := d2.Validate(); err == nil {
		t.Error("off-board part accepted")
	}

	// Overlapping pins.
	d3 := smallDesign()
	d3.Parts[1].At = d3.Parts[0].At
	if err := d3.Validate(); err == nil {
		t.Error("overlapping parts accepted")
	}

	// Bad pin reference.
	d4 := smallDesign()
	d4.Nets[0].Pins[0].Ref.Pin = 99
	if err := d4.Validate(); err == nil {
		t.Error("out-of-range pin reference accepted")
	}

	// Single-pin net.
	d5 := smallDesign()
	d5.Nets[0].Pins = d5.Nets[0].Pins[:1]
	if err := d5.Validate(); err == nil {
		t.Error("1-pin net accepted")
	}
}

func TestPlacePins(t *testing.T) {
	d := smallDesign()
	b := board.MustNew(d.GridConfig())
	if err := d.PlacePins(b); err != nil {
		t.Fatal(err)
	}
	// Every pin site occupied by PinOwner on every layer.
	for _, part := range d.Parts {
		for pin := 1; pin <= part.Pkg.Pins(); pin++ {
			p := b.Cfg.GridOf(part.PinPos(pin))
			for li := range b.Layers {
				if got := b.OwnerAt(li, p); got != layer.PinOwner {
					t.Fatalf("%s.%d layer %d owner %d", part.Name, pin, li, got)
				}
			}
		}
	}
	if err := b.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestDensityAndArea(t *testing.T) {
	d := smallDesign()
	if got := d.AreaSqIn(); got != 4.0 { // 20×0.1 × 20×0.1
		t.Errorf("area = %v", got)
	}
	if got := d.TotalPins(); got != 60 {
		t.Errorf("pins = %d", got)
	}
	if got := d.PinDensity(); got != 15.0 {
		t.Errorf("density = %v", got)
	}
}

func TestGridConfigDefaults(t *testing.T) {
	d := smallDesign()
	cfg := d.GridConfig()
	if cfg.Pitch != 3 {
		t.Errorf("default pitch = %d", cfg.Pitch)
	}
	if cfg.Width != 58 || cfg.Height != 58 {
		t.Errorf("grid %dx%d", cfg.Width, cfg.Height)
	}
	if len(cfg.Layers) != 2 {
		t.Errorf("layers = %d", len(cfg.Layers))
	}
}

func TestNetOutputs(t *testing.T) {
	d := smallDesign()
	outs := d.Nets[0].Outputs()
	if len(outs) != 1 || outs[0].Func != Output {
		t.Errorf("Outputs = %v", outs)
	}
}

func TestStringers(t *testing.T) {
	if ECL.String() != "ECL" || TTL.String() != "TTL" {
		t.Error("Tech.String")
	}
	if Output.String() != "out" || Input.String() != "in" || Termination.String() != "term" {
		t.Error("PinFunc.String")
	}
}
