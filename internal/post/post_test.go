package post

import (
	"math"
	"testing"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/stringer"
	"repro/internal/workload"
)

func routedPair(t *testing.T, aVia, bVia geom.Point) (*board.Board, *core.Router) {
	t.Helper()
	b, err := board.New(grid.NewConfig(16, 16, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	a, c := b.Cfg.GridOf(aVia), b.Cfg.GridOf(bVia)
	if err := b.PlacePin(a); err != nil {
		t.Fatal(err)
	}
	if err := b.PlacePin(c); err != nil {
		t.Fatal(err)
	}
	r, err := core.New(b, []core.Connection{{A: a, B: c}}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res := r.Route(); !res.Complete() {
		t.Fatal("routing failed")
	}
	return b, r
}

func TestPolylineStraight(t *testing.T) {
	b, r := routedPair(t, geom.Pt(2, 7), geom.Pt(12, 7))
	poly, err := Polyline(b, &r.Conns[0], r.RouteOf(0))
	if err != nil {
		t.Fatal(err)
	}
	if poly[0].P != r.Conns[0].A || poly[len(poly)-1].P != r.Conns[0].B {
		t.Fatalf("polyline endpoints wrong: %v ... %v", poly[0], poly[len(poly)-1])
	}
	// A straight horizontal route compresses to few vertices, all on the
	// same row.
	for _, n := range poly {
		if n.P.Y != r.Conns[0].A.Y {
			t.Fatalf("straight route wanders to %v", n.P)
		}
	}
	if len(poly) > 3 {
		t.Errorf("straight route has %d vertices, expected <= 3", len(poly))
	}
}

func TestPolylineLShape(t *testing.T) {
	b, r := routedPair(t, geom.Pt(2, 2), geom.Pt(12, 12))
	poly, err := Polyline(b, &r.Conns[0], r.RouteOf(0))
	if err != nil {
		t.Fatal(err)
	}
	// An L route crosses one via: the polyline must change layer exactly
	// where x,y stays put.
	layerChanges := 0
	for i := 1; i < len(poly); i++ {
		if poly[i].Layer != poly[i-1].Layer {
			layerChanges++
			if poly[i].P != poly[i-1].P {
				t.Fatalf("layer change moves in plane: %v -> %v", poly[i-1], poly[i])
			}
		}
	}
	if layerChanges == 0 {
		t.Error("L route shows no layer change")
	}
	// Consecutive same-layer vertices must be axis-aligned.
	for i := 1; i < len(poly); i++ {
		a, c := poly[i-1], poly[i]
		if a.Layer == c.Layer && a.P.X != c.P.X && a.P.Y != c.P.Y {
			t.Fatalf("non-rectilinear polyline edge %v -> %v", a, c)
		}
	}
}

func TestSmoothCutsCorners(t *testing.T) {
	poly := []Node{
		{geom.Pt(0, 0), 0},
		{geom.Pt(4, 0), 0},
		{geom.Pt(4, 4), 0},
	}
	segs := Smooth(poly, 0.5)
	if len(segs) != 1 {
		t.Fatalf("segments = %d", len(segs))
	}
	pts := segs[0].Points
	// 0,0 → 3.5,0 → 4,0.5 → 4,4: corner replaced with a diagonal.
	want := []FPoint{{0, 0}, {3.5, 0}, {4, 0.5}, {4, 4}}
	if len(pts) != len(want) {
		t.Fatalf("points = %v", pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("points = %v, want %v", pts, want)
		}
	}
	// The cut is strictly shorter than the staircase.
	if l := Length(segs); l >= 8 {
		t.Errorf("smoothed length %v, want < 8", l)
	}
}

func TestSmoothSplitsAtVias(t *testing.T) {
	poly := []Node{
		{geom.Pt(0, 0), 0},
		{geom.Pt(0, 6), 0},
		{geom.Pt(0, 6), 1}, // via
		{geom.Pt(6, 6), 1},
	}
	segs := Smooth(poly, 0.5)
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want split at the via", len(segs))
	}
	if segs[0].Layer != 0 || segs[1].Layer != 1 {
		t.Errorf("layers = %d,%d", segs[0].Layer, segs[1].Layer)
	}
}

func TestSmoothedNeverLongerOnRealBoard(t *testing.T) {
	d, err := workload.Generate(workload.SmallSpec(13))
	if err != nil {
		t.Fatal(err)
	}
	b, err := board.New(d.GridConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PlacePins(b); err != nil {
		t.Fatal(err)
	}
	sr, err := stringer.String(d, stringer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.New(b, sr.Conns, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res := r.Route(); !res.Complete() {
		t.Fatal("routing failed")
	}
	smoothedShorter := 0
	for i := range r.Conns {
		poly, err := Polyline(b, &r.Conns[i], r.RouteOf(i))
		if err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
		// Rectilinear length of the polyline.
		rect := 0.0
		for j := 1; j < len(poly); j++ {
			if poly[j].Layer == poly[j-1].Layer {
				rect += math.Abs(float64(poly[j].P.X-poly[j-1].P.X)) +
					math.Abs(float64(poly[j].P.Y-poly[j-1].P.Y))
			}
		}
		sm := Length(Smooth(poly, 0.5))
		if sm > rect+1e-9 {
			t.Fatalf("conn %d: smoothing lengthened the path: %v > %v", i, sm, rect)
		}
		if sm < rect-1e-9 {
			smoothedShorter++
		}
	}
	if smoothedShorter == 0 {
		t.Error("no route had corners to cut; workload too trivial for this test")
	}
}

func TestSmoothDegenerate(t *testing.T) {
	if segs := Smooth(nil, 0.5); len(segs) != 0 {
		t.Error("empty polyline produced segments")
	}
	one := []Node{{geom.Pt(1, 1), 0}}
	if segs := Smooth(one, 0.5); len(segs) != 0 {
		t.Error("single point produced segments")
	}
}
