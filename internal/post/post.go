// Package post implements the photoplot post-processing the paper applies
// to grr's rectilinear output (Section 13, footnote 2): each connection's
// cell-level realization is reconstructed into an ordered polyline, and
// single-cell staircase corners are cut at 45° — the "local modifications
// ... to produce the rounded corners and diagonal traces" visible in
// Figure 21. The smoothing is cosmetic/manufacturing-oriented and never
// feeds back into the routing model.
package post

import (
	"fmt"
	"math"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
)

// Node is one vertex of a reconstructed route path: a grid point on a
// specific layer.
type Node struct {
	P     geom.Point
	Layer int
}

// FPoint is a sub-grid point used by smoothed output.
type FPoint struct {
	X, Y float64
}

// Segment is one single-layer piece of a smoothed polyline.
type Segment struct {
	Layer  int
	Points []FPoint
}

// Polyline reconstructs the ordered vertex path of a realized route from
// connection endpoint A to endpoint B, walking only the connection's own
// metal (trace cells, via cells, endpoint pins). Vertices appear at
// direction changes and at layer changes (vias); collinear runs are
// compressed.
func Polyline(b *board.Board, c *core.Connection, rt *core.Route) ([]Node, error) {
	cells := make(map[Node]bool)
	vias := make(map[geom.Point]bool)

	for _, ps := range rt.Segs {
		if !ps.Seg.Stored() {
			return nil, fmt.Errorf("post: stale segment handle on layer %d", ps.Layer)
		}
		o := b.Layers[ps.Layer].Orient
		for pos := ps.Seg.Lo; pos <= ps.Seg.Hi; pos++ {
			cells[Node{b.Cfg.PointAt(o, ps.Seg.Channel(), pos), ps.Layer}] = true
		}
	}
	for _, pv := range rt.Vias {
		vias[pv.At] = true
		for li := range b.Layers {
			cells[Node{pv.At, li}] = true
		}
	}
	for _, p := range []geom.Point{c.A, c.B} {
		vias[p] = true
		for li := range b.Layers {
			cells[Node{p, li}] = true
		}
	}

	// BFS from A (layer 0) to B over the connection's own metal,
	// recording parents; this mirrors the verify package's audit, but
	// keeps the path.
	start := Node{c.A, 0}
	parent := map[Node]Node{start: start}
	queue := []Node{start}
	var goal *Node
	for len(queue) > 0 && goal == nil {
		cur := queue[0]
		queue = queue[1:]
		if cur.P == c.B {
			goal = &cur
			break
		}
		push := func(n Node) {
			if !cells[n] {
				return
			}
			if _, seen := parent[n]; seen {
				return
			}
			parent[n] = cur
			queue = append(queue, n)
		}
		push(Node{geom.Pt(cur.P.X+1, cur.P.Y), cur.Layer})
		push(Node{geom.Pt(cur.P.X-1, cur.P.Y), cur.Layer})
		push(Node{geom.Pt(cur.P.X, cur.P.Y+1), cur.Layer})
		push(Node{geom.Pt(cur.P.X, cur.P.Y-1), cur.Layer})
		if vias[cur.P] {
			for li := range b.Layers {
				push(Node{cur.P, li})
			}
		}
	}
	if goal == nil {
		return nil, fmt.Errorf("post: endpoints not connected through the route's metal")
	}

	// Walk back, then reverse.
	var path []Node
	for n := *goal; ; n = parent[n] {
		path = append(path, n)
		if n == parent[n] {
			break
		}
	}
	reverse(path)
	return compress(path), nil
}

// compress removes interior vertices of straight same-layer runs.
func compress(path []Node) []Node {
	if len(path) <= 2 {
		return path
	}
	out := []Node{path[0]}
	for i := 1; i+1 < len(path); i++ {
		a, b, c := out[len(out)-1], path[i], path[i+1]
		if a.Layer == b.Layer && b.Layer == c.Layer && collinear(a.P, b.P, c.P) {
			continue
		}
		out = append(out, b)
	}
	return append(out, path[len(path)-1])
}

func collinear(a, b, c geom.Point) bool {
	return (a.X == b.X && b.X == c.X) || (a.Y == b.Y && b.Y == c.Y)
}

// Smooth converts a route polyline into per-layer smoothed segments,
// cutting every 90° corner back by cut grid units on each side (0 < cut
// ≤ 0.5) and joining the cut points with a 45° diagonal. Layer changes
// split the polyline; the via sits at the split point.
func Smooth(poly []Node, cut float64) []Segment {
	if cut <= 0 {
		cut = 0.5
	}
	if cut > 0.5 {
		cut = 0.5
	}
	var out []Segment
	var cur *Segment

	flush := func() {
		if cur != nil && len(cur.Points) >= 2 {
			out = append(out, *cur)
		}
		cur = nil
	}

	for i := 0; i < len(poly); i++ {
		n := poly[i]
		if cur == nil || cur.Layer != n.Layer {
			flush()
			cur = &Segment{Layer: n.Layer}
			cur.Points = append(cur.Points, fp(n.P))
			continue
		}
		prevSame := poly[i-1].Layer == n.Layer
		nextSame := i+1 < len(poly) && poly[i+1].Layer == n.Layer
		if prevSame && nextSame && corner(poly[i-1].P, n.P, poly[i+1].P) {
			// Cut the corner: approach point, then leave point.
			a, b, c := poly[i-1].P, n.P, poly[i+1].P
			cur.Points = append(cur.Points,
				towards(b, a, cut),
				towards(b, c, cut),
			)
			continue
		}
		cur.Points = append(cur.Points, fp(n.P))
	}
	flush()
	return out
}

// corner reports whether a→b→c turns 90° with both arms at least one
// grid unit long.
func corner(a, b, c geom.Point) bool {
	d1x, d1y := sign(b.X-a.X), sign(b.Y-a.Y)
	d2x, d2y := sign(c.X-b.X), sign(c.Y-b.Y)
	if d1x == 0 && d1y == 0 || d2x == 0 && d2y == 0 {
		return false
	}
	return (d1x == 0) != (d2x == 0) // one arm horizontal, the other vertical
}

// towards returns the point cut grid units from b along the direction of
// other.
func towards(b, other geom.Point, cut float64) FPoint {
	dx, dy := float64(sign(other.X-b.X)), float64(sign(other.Y-b.Y))
	return FPoint{float64(b.X) + dx*cut, float64(b.Y) + dy*cut}
}

func fp(p geom.Point) FPoint { return FPoint{float64(p.X), float64(p.Y)} }

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// Length returns the total geometric length of smoothed segments in grid
// units (diagonals count √2/2 per cut corner, so smoothing always
// shortens a staircase).
func Length(segs []Segment) float64 {
	total := 0.0
	for _, s := range segs {
		for i := 1; i < len(s.Points); i++ {
			dx := s.Points[i].X - s.Points[i-1].X
			dy := s.Points[i].Y - s.Points[i-1].Y
			total += math.Hypot(dx, dy)
		}
	}
	return total
}

func reverse(p []Node) {
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
}
